module ogdp

go 1.22
