package ogdp_test

import (
	"fmt"
	"net/http/httptest"
	"strings"

	"ogdp"
)

// ExampleReadCSV demonstrates the paper's parsing pipeline: header
// inference skips preamble rows and trailing empty columns are
// removed.
func ExampleReadCSV() {
	csv := "Quarterly Report,,\n,,\nid,city,province\n1,Waterloo,ON\n2,Montreal,QC\n"
	t, err := ogdp.ReadCSV("cities.csv", strings.NewReader(csv))
	if err != nil {
		panic(err)
	}
	fmt.Println(t)
	fmt.Println(t.Cols)
	// Output:
	// cities.csv (3 cols × 2 rows)
	// [id city province]
}

// ExampleDiscoverFDs mines the classic City → Province dependency.
func ExampleDiscoverFDs() {
	csv := "id,city,province\n1,Waterloo,ON\n2,Toronto,ON\n3,Montreal,QC\n4,Waterloo,ON\n"
	t, _ := ogdp.ReadCSV("cities.csv", strings.NewReader(csv))
	for _, f := range ogdp.DiscoverFDs(t) {
		fmt.Println(f.Format(t))
	}
	// Output:
	// city -> province
}

// ExampleDecomposeBCNF splits a denormalized table into BCNF
// sub-tables.
func ExampleDecomposeBCNF() {
	var b strings.Builder
	b.WriteString("grant_id,city,province\n")
	cities := []string{"Waterloo,ON", "Toronto,ON", "Montreal,QC"}
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&b, "%d,%s\n", i+1, cities[i%3])
	}
	t, _ := ogdp.ReadCSV("grants.csv", strings.NewReader(b.String()))
	res := ogdp.DecomposeBCNF(t, 1)
	fmt.Println(len(res.Tables) > 1)
	// Output:
	// true
}

// ExampleFindJoinable finds the high-overlap pair between two tables
// sharing an id domain.
func ExampleFindJoinable() {
	mk := func(name string) *ogdp.Table {
		var b strings.Builder
		b.WriteString("id,payload\n")
		for i := 1; i <= 20; i++ {
			fmt.Fprintf(&b, "%d,%s\n", i, name)
		}
		t, _ := ogdp.ReadCSV(name, strings.NewReader(b.String()))
		return t
	}
	tables := []*ogdp.Table{mk("a.csv"), mk("b.csv")}
	an := ogdp.FindJoinable(tables, ogdp.JoinOptions{})
	p := an.Pairs[0]
	fmt.Printf("%s.%s ⨝ %s.%s J=%.1f expansion=%.1f\n",
		tables[p.T1].Name, tables[p.T1].Cols[p.C1],
		tables[p.T2].Name, tables[p.T2].Cols[p.C2], p.Jaccard, p.Expansion)
	// Output:
	// a.csv.id ⨝ b.csv.id J=1.0 expansion=1.0
}

// ExampleFindUnionable groups periodically published tables by exact
// schema identity.
func ExampleFindUnionable() {
	mk := func(name, year string) *ogdp.Table {
		csv := "year,value\n" + year + ",1.5\n" + year + ",2.5\n"
		t, _ := ogdp.ReadCSV(name, strings.NewReader(csv))
		return t
	}
	tables := []*ogdp.Table{mk("s-2020.csv", "2020"), mk("s-2021.csv", "2021"), mk("s-2022.csv", "2022")}
	a := ogdp.FindUnionable(tables)
	fmt.Println(len(a.Groups), a.UnionableTables())
	// Output:
	// 1 3
}

// ExampleFaults crawls a deliberately flaky portal: 30% of metadata
// and download requests answer 500, the client retries them with
// deterministic seeded backoff, and a metrics registry records the
// funnel. Every printed value is identical for any Workers setting.
func ExampleFaults() {
	prof, _ := ogdp.Portal("SG")
	corpus := ogdp.GenerateCorpus(prof, 0.05, 1)
	server := ogdp.NewCKANServer(ogdp.BuildCKANPortal(corpus, 1))
	server.InjectFaults(ogdp.Faults{
		Seed:        1,
		PackageShow: ogdp.FaultSpec{Rate500: 0.3},
		Download:    ogdp.FaultSpec{Rate500: 0.3},
	})
	ts := httptest.NewServer(server)
	defer ts.Close()

	client := ogdp.NewFetchClient(ts.URL)
	client.Workers = 4
	client.Seed = 1
	client.Backoff = -1 // retry immediately: no reason to sleep here
	reg := ogdp.NewMetricsRegistry()
	client.Metrics = reg

	tables, stats, err := client.FetchAll()
	if err != nil {
		panic(err)
	}
	fmt.Println("readable tables:", len(tables))
	fmt.Println("retries:", stats.Retries, "transient failures:", stats.TransientFailures)
	snap := reg.Snapshot()
	downloads, _ := snap.Value("ogdp_fetch_requests_total", "stage", "download")
	fmt.Println("download request attempts:", downloads)
	// Output:
	// readable tables: 10
	// retries: 7 transient failures: 7
	// download request attempts: 15
}

// ExampleExtractDictionary parses an unstructured metadata document.
func ExampleExtractDictionary() {
	doc := "# Fish landings\n\n- species: The species recorded\n- weight: Landed weight in tonnes\n"
	d := ogdp.ExtractDictionary(doc)
	desc, _ := d.Lookup("species")
	fmt.Println(d.Format, len(d.Entries), desc)
	// Output:
	// bullets 2 The species recorded
}
