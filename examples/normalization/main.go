// Normalization: take a pre-joined table like those OGDPs publish (the
// Chicago budget-recommendations pattern of §4.3: FundCode ->
// FundDescription, FundType) and decompose it into BCNF, exposing the
// useful sub-tables hidden inside.
//
//	go run ./examples/normalization
package main

import (
	"fmt"
	"log"
	"strings"

	"ogdp"
)

func main() {
	// Build the denormalized budget table: one row per appropriation
	// line, with fund and department attributes repeated everywhere.
	var b strings.Builder
	b.WriteString("line_id,fund_code,fund_description,fund_type,dept_number,dept_description,amount\n")
	fundTypes := []string{"Operating", "Capital", "Grant"}
	for i := 0; i < 90; i++ {
		fund := 100 + (i%6)*7
		dept := 10 + (i%9)*3
		fmt.Fprintf(&b, "%d,%d,Fund %d Appropriations,%s,%d,Department of Service %d,%d\n",
			i+1, fund, fund, fundTypes[i%3], dept, dept, 1000+(i*137)%9000)
	}

	t, err := ogdp.ReadCSV("budget.csv", strings.NewReader(b.String()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: %s\n", t)

	fds := ogdp.DiscoverFDs(t)
	fmt.Printf("\n%d minimal non-trivial FDs, e.g.:\n", len(fds))
	for i, f := range fds {
		if i == 4 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", f.Format(t))
	}

	res := ogdp.DecomposeBCNF(t, 42)
	fmt.Printf("\nBCNF decomposition: %d sub-tables (%d steps)\n", len(res.Tables), res.Steps)
	for _, st := range res.Tables {
		fmt.Printf("  [%s]  %d rows\n", strings.Join(st.Cols, ", "), st.NumRows())
	}
	fmt.Printf("\navg uniqueness gain for unrepeated columns: %.2fx\n", res.UniquenessGain())
	fmt.Println("\nthe fund and department lookup sub-tables are exactly the kind of")
	fmt.Println("useful base tables the paper suggests systems should surface (§4.3).")

	fmt.Println("\nthe decomposition as a relational schema (inferred types, keys, fks):")
	fmt.Println(ogdp.ExportSQL(res.Tables, true))
}
