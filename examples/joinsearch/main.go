// Joinsearch: generate a calibrated synthetic portal, find joinable
// table pairs by value overlap (Jaccard >= 0.9, >= 10 distinct values),
// and show why raw overlap is a weak signal: expansion ratios and the
// paper-recommended filters separate useful joins from accidental ones.
//
//	go run ./examples/joinsearch
package main

import (
	"fmt"
	"log"
	"sort"

	"ogdp"
)

func main() {
	prof, ok := ogdp.Portal("CA")
	if !ok {
		log.Fatal("CA profile missing")
	}
	corpus := ogdp.GenerateCorpus(prof, 0.08, 7)
	tables := corpus.Tables()
	fmt.Printf("generated %d tables across %d datasets\n", len(tables), len(corpus.Datasets))

	analysis := ogdp.FindJoinable(tables, ogdp.JoinOptions{})
	fmt.Printf("joinable pairs at Jaccard >= 0.9: %d\n\n", len(analysis.Pairs))

	// Sort by expansion ratio to contrast tight and exploding joins.
	pairs := append([]ogdp.JoinPair(nil), analysis.Pairs...)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Expansion < pairs[j].Expansion })

	show := func(p ogdp.JoinPair) {
		t1, t2 := tables[p.T1], tables[p.T2]
		fmt.Printf("  %s.%s  ⨝  %s.%s\n", t1.Name, t1.Cols[p.C1], t2.Name, t2.Cols[p.C2])
		fmt.Printf("    jaccard=%.3f expansion=%.2f key1=%v key2=%v\n",
			p.Jaccard, p.Expansion, p.Key1, p.Key2)
	}
	if len(pairs) > 0 {
		fmt.Println("tightest join (likely useful — non-growing):")
		show(pairs[0])
		fmt.Println("\nmost explosive join (likely accidental — §5.2):")
		show(pairs[len(pairs)-1])
	}

	// Apply the paper-recommended filters (same dataset, key involved,
	// non-incremental type, bounded expansion).
	var kept int
	for _, p := range analysis.Pairs {
		var pred predictor
		if pred.keep(tables, p) {
			kept++
		}
	}
	fmt.Printf("\npairs surviving the paper-recommended filters: %d of %d (%.1f%%)\n",
		kept, len(analysis.Pairs), 100*float64(kept)/float64(max(1, len(analysis.Pairs))))
	fmt.Println("the paper finds ~81-87% of high-overlap pairs accidental; filtering")
	fmt.Println("on non-value signals is how integration systems should rank them.")
}

// predictor mirrors classify.Predictor through the public surface.
type predictor struct{}

func (predictor) keep(tables []*ogdp.Table, p ogdp.JoinPair) bool {
	if p.Expansion > 2 {
		return false
	}
	if !p.Key1 && !p.Key2 {
		return false
	}
	t1 := tables[p.T1]
	return t1.DatasetID != "" && t1.DatasetID == tables[p.T2].DatasetID
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
