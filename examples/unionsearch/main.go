// Unionsearch: generate a synthetic portal and find unionable table
// sets by exact schema identity (§6), showing the periodic-publication
// pattern that dominates them and the schema-collision false positives.
//
//	go run ./examples/unionsearch
package main

import (
	"fmt"
	"log"
	"strings"

	"ogdp"
)

func main() {
	prof, ok := ogdp.Portal("UK")
	if !ok {
		log.Fatal("UK profile missing")
	}
	corpus := ogdp.GenerateCorpus(prof, 0.06, 11)
	tables := corpus.Tables()

	analysis := ogdp.FindUnionable(tables)
	fmt.Printf("tables: %d   unique schemas: %d   unionable groups: %d\n",
		len(tables), analysis.UniqueSchemas, len(analysis.Groups))
	fmt.Printf("unionable tables: %d (%.1f%%)\n\n",
		analysis.UnionableTables(),
		100*float64(analysis.UnionableTables())/float64(len(tables)))

	for i, g := range analysis.Groups {
		if i == 5 {
			fmt.Println("...")
			break
		}
		first := tables[g.Tables[0]]
		where := "across datasets"
		if g.SingleDataset() {
			where = "single dataset"
		}
		fmt.Printf("group of %d (%s): schema [%s]\n", len(g.Tables), where, strings.Join(first.Cols, ", "))
		for j, ti := range g.Tables {
			if j == 4 {
				fmt.Println("    ...")
				break
			}
			fmt.Printf("    %s\n", tables[ti].Name)
		}
		u := analysis.Union(g)
		fmt.Printf("    union-all: %d rows\n", u.NumRows())
	}

	fmt.Println("\nperiodically published tables dominate unionable sets (§6); schema")
	fmt.Println("identity is a robust signal except for standardized schemas and duplicates.")
}
