// Dictextract: the paper (§3.4) finds that outside Singapore nearly
// all data dictionaries are published in unstructured formats and
// names automatic extraction an important research topic. This example
// generates a portal whose datasets carry CSV, HTML, markdown, and
// plain-prose dictionaries, extracts them all, and measures how much
// of each dataset's schema the extraction explains.
//
//	go run ./examples/dictextract
package main

import (
	"fmt"
	"log"

	"ogdp"
)

func main() {
	prof, ok := ogdp.Portal("CA")
	if !ok {
		log.Fatal("CA profile missing")
	}
	corpus := ogdp.GenerateCorpus(prof, 0.1, 21)

	byFormat := map[string]int{}
	var docs, covered, tables int
	var coverageSum float64
	shown := 0
	for _, m := range corpus.Metas {
		tables++
		doc, ok := ogdp.DatasetMetadataDoc(corpus, m.Dataset, 77)
		if !ok {
			continue
		}
		d := ogdp.ExtractDictionary(doc)
		if len(d.Entries) == 0 {
			continue
		}
		docs++
		byFormat[d.Format]++
		cov := ogdp.DictionaryCoverage(d, m.Table)
		coverageSum += cov
		if cov > 0.99 {
			covered++
		}
		if shown < 3 {
			shown++
			fmt.Printf("table %s (dictionary format: %s, coverage %.0f%%):\n", m.Table.Name, d.Format, cov*100)
			for i, e := range d.Entries {
				if i == 3 {
					fmt.Println("   ...")
					break
				}
				fmt.Printf("   %-18s %s\n", e.Column, e.Description)
			}
		}
	}

	fmt.Printf("\n%d of %d tables belong to datasets with an extractable dictionary\n", docs, tables)
	fmt.Printf("formats extracted: %v\n", byFormat)
	if docs > 0 {
		fmt.Printf("average schema coverage: %.0f%%, fully covered: %d\n", 100*coverageSum/float64(docs), covered)
	}
	fmt.Println("\nthe remainder matches Table 3's 'outside portal' and 'lacking' mass —")
	fmt.Println("no dictionary exists to extract, which is the paper's core complaint.")
}
