// FDquality: the paper's §4.3 closes asking how to tell real from
// accidental functional dependencies, and real OGDP tables often break
// real FDs with a few dirty rows. This example shows both extensions:
// approximate FD discovery (g3 error) recovering a dependency hidden
// by data-entry errors, and plausibility scoring separating a semantic
// FD from an instance coincidence.
//
//	go run ./examples/fdquality
package main

import (
	"fmt"
	"log"
	"strings"

	"ogdp"
)

func main() {
	// A licensing table where three rows misspell the province — the
	// real City -> Province dependency no longer holds exactly.
	var b strings.Builder
	b.WriteString("licence_id,city,province,fee\n")
	cities := []struct{ c, p string }{
		{"Waterloo", "ON"}, {"Toronto", "ON"}, {"Montreal", "QC"}, {"Vancouver", "BC"},
	}
	for i := 0; i < 120; i++ {
		c := cities[i%len(cities)]
		prov := c.p
		if i == 13 || i == 47 || i == 90 {
			prov = "Ontario" // inconsistent spelling: breaks the exact FD
		}
		fmt.Fprintf(&b, "%d,%s,%s,%d\n", i+1, c.c, prov, 50+(i*7)%200)
	}
	t, err := ogdp.ReadCSV("licences.csv", strings.NewReader(b.String()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("exact FDs (city -> province is broken by 3 dirty rows):")
	for _, f := range ogdp.DiscoverFDs(t) {
		fmt.Printf("  %s\n", f.Format(t))
	}

	fmt.Println("\napproximate FDs at g3 error <= 5%:")
	for _, af := range ogdp.DiscoverApproximateFDs(t, 2, 0.05) {
		fmt.Printf("  %-30s g3=%.3f\n", af.Format(t), af.Error)
	}

	// Plausibility: a real lookup dependency vs a small-table
	// coincidence.
	real := ogdp.FD{LHS: []int{t.ColumnIndex("city")}, RHS: t.ColumnIndex("province")}
	fmt.Printf("\nplausibility(city -> province) = %.2f\n", ogdp.FDPlausibility(t, real))

	tiny, err := ogdp.ReadCSV("tiny.csv", strings.NewReader(
		"id,revenue,complaints\n1,107,3\n2,54,9\n3,107,3\n4,54,9\n"))
	if err != nil {
		log.Fatal(err)
	}
	acc := ogdp.FD{LHS: []int{1}, RHS: 2}
	fmt.Printf("plausibility(revenue -> complaints, 4 rows) = %.2f\n", ogdp.FDPlausibility(tiny, acc))
	fmt.Println("\nhigh-plausibility FDs mark the sub-tables worth surfacing after")
	fmt.Println("BCNF decomposition; low scores mark instance accidents to ignore.")
}
