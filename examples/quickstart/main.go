// Quickstart: parse a CSV with the paper's pipeline, profile its
// columns, and discover functional dependencies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"ogdp"
)

// A small denormalized table in the style OGDPs publish: one row per
// grant with the city's province repeated (City -> Province FD).
const grantsCSV = `grant_id,city,province,amount,year
1,Waterloo,ON,12000,2021
2,Toronto,ON,8000,2021
3,Montreal,QC,15000,2021
4,Waterloo,ON,9500,2022
5,Vancouver,BC,20000,2022
6,Toronto,ON,7000,2022
7,Montreal,QC,11000,2022
8,Vancouver,BC,13500,2021
`

func main() {
	t, err := ogdp.ReadCSV("grants.csv", strings.NewReader(grantsCSV))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s\n\n", t)

	fmt.Println("column profiles:")
	for c := range t.Cols {
		p := t.Profile(c)
		fmt.Printf("  %-10s type=%-20s distinct=%d nulls=%d uniqueness=%.2f key=%v\n",
			p.Name, p.Type, p.Distinct, p.Nulls, p.Uniqueness(), p.IsKey())
	}

	fmt.Printf("\nsingle-column keys: ")
	for _, c := range ogdp.KeyColumns(t) {
		fmt.Printf("%s ", t.Cols[c])
	}
	fmt.Printf("\nminimum candidate key size: %d\n", ogdp.MinCandidateKeySize(t))

	fmt.Println("\nfunctional dependencies (FUN algorithm, |LHS| <= 4):")
	for _, f := range ogdp.DiscoverFDs(t) {
		fmt.Printf("  %s\n", f.Format(t))
	}
}
