// Command ogdpsearch runs one-shot queries over a directory of CSV
// files through the same execution-and-rendering layer
// (internal/query) as the long-lived ogdpserve service, so its output
// is byte-identical to the corresponding server response bodies.
//
// The default mode is discovery search: given a query table (and
// optionally a column), it prints the top-k joinable columns by exact
// value overlap (the JOSIE-style operation behind Auctus and Toronto
// Open Data Search), the same search accelerated with MinHash/LSH for
// comparison, and the unionable tables, ranked. -mode rank prints the
// table-level ranked integration hypotheses (the /search endpoint's
// semantics: value, schema, and metadata evidence combined into one
// weighted score); -mode profile the per-column profile; -mode fd the
// minimal functional dependencies.
//
// Usage:
//
//	ogdpgen -portal CA -scale 0.1 -out /tmp/corpus
//	ogdpsearch -dir /tmp/corpus -query fish-landings-part1-4.csv -col species -k 5
//	ogdpsearch -dir /tmp/corpus -query fish-landings-part1-4.csv -mode rank
//	ogdpsearch -dir /tmp/corpus -query fish-landings-part1-4.csv -mode fd
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/minhash"
	"ogdp/internal/query"
	"ogdp/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpsearch: ")

	dir := flag.String("dir", "", "directory of CSV files (required)")
	qname := flag.String("query", "", "query table file name within -dir (required)")
	col := flag.String("col", "", "query column name (default: first join-eligible column)")
	k := flag.Int("k", 5, "top-k results")
	mode := flag.String("mode", "search", "what to run: search, rank, profile, or fd")
	lhs := flag.Int("lhs", 0, "-mode fd: max left-hand-side size (0 = the paper's bound)")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs, 1 = sequential; results are identical)")
	ob := cli.StandardObs()
	flag.Parse()
	if err := ob.Start("ogdpsearch"); err != nil {
		log.Fatal(err)
	}
	if *dir == "" || *qname == "" {
		log.Fatal("-dir and -query are required")
	}

	sw := cli.Start()
	loadSpan := ob.Trace().Child("load")
	c, err := diskcorpus.Load(*dir)
	if err != nil {
		log.Fatal(err)
	}
	loadSpan.AddItems(len(c.Tables))
	svc := query.New(c, query.Options{Workers: *workers})
	loadSpan.End()
	ti := svc.TableIndex(*qname)
	if ti < 0 {
		log.Fatalf("query table %s not found in %s", *qname, *dir)
	}

	switch *mode {
	case "search":
		runSearch(ob, svc, c, ti, *col, *k)
	case "rank", "profile", "fd":
		span := ob.Trace().Child(*mode)
		out, err := svc.Do(context.Background(), query.Request{
			Kind: *mode, Table: *qname, K: *k, MaxLHS: *lhs,
		})
		if err != nil {
			log.Fatal(err)
		}
		span.End()
		fmt.Print(out)
	default:
		log.Fatalf("unknown -mode %q (want search, rank, profile, or fd)", *mode)
	}
	sw.PrintCompleted(os.Stdout)
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runSearch prints the discovery-search report: the exact join
// search and the union search come from the shared renderers (the
// parity surface with ogdpserve's /join and /union), with the
// LSH-accelerated comparison — a CLI-only diagnostic — in between.
func runSearch(ob *cli.Obs, svc *query.Service, c *diskcorpus.Corpus, ti int, col string, k int) {
	ci, err := svc.PickColumn(ti, col)
	if err != nil {
		log.Fatalf("no eligible query column in %s", c.Tables[ti].Name)
	}
	fmt.Print(svc.HeaderText(ti, ci))
	fmt.Print("\n")

	joinSpan := ob.Trace().Child("join-search")
	fmt.Print(svc.JoinText(ti, ci, k))
	joinSpan.End()

	lshSpan := ob.Trace().Child("lsh")
	fmt.Printf("\nLSH (MinHash 128, 16×8 bands) candidates at est. J >= 0.8:\n")
	tables := c.Tables
	q := tables[ti]
	ix := minhash.NewIndex(16, 8)
	var refs []search.ColumnRef
	for t2, t := range tables {
		if t2 == ti {
			continue
		}
		for c := range t.Cols {
			p := t.Profile(c)
			if p.Distinct < search.MinUniqueDefault {
				continue
			}
			ix.Add(minhash.Sketch(p.ValueHashes(), 128))
			refs = append(refs, search.ColumnRef{Table: t2, Column: c})
		}
	}
	qsig := minhash.Sketch(q.Profile(ci).ValueHashes(), 128)
	for i, cand := range ix.Query(qsig, 0.8) {
		if i == k {
			break
		}
		ref := refs[cand.ID]
		t := tables[ref.Table]
		fmt.Printf("  est=%.3f  %s.%s\n", cand.Estimate, t.Name, t.Cols[ref.Column])
	}
	lshSpan.AddTasks(len(refs))
	lshSpan.End()

	unionSpan := ob.Trace().Child("union")
	fmt.Print("\n")
	fmt.Print(svc.UnionText(ti, k))
	unionSpan.End()
}
