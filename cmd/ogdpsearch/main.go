// Command ogdpsearch runs query-table discovery over a directory of
// CSV files: given a query table (and optionally a column), it prints
// the top-k joinable columns by exact value overlap (the JOSIE-style
// operation behind Auctus and Toronto Open Data Search), the same
// search accelerated with MinHash/LSH for comparison, and the
// unionable tables, ranked.
//
// Usage:
//
//	ogdpgen -portal CA -scale 0.1 -out /tmp/corpus
//	ogdpsearch -dir /tmp/corpus -query fish-landings-part1-4.csv -col species -k 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/minhash"
	"ogdp/internal/rank"
	"ogdp/internal/search"
	"ogdp/internal/table"
	"ogdp/internal/union"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpsearch: ")

	dir := flag.String("dir", "", "directory of CSV files (required)")
	query := flag.String("query", "", "query table file name within -dir (required)")
	col := flag.String("col", "", "query column name (default: first join-eligible column)")
	k := flag.Int("k", 5, "top-k results")
	ob := cli.StandardObs()
	flag.Parse()
	ob.Start("ogdpsearch")
	if *dir == "" || *query == "" {
		log.Fatal("-dir and -query are required")
	}

	sw := cli.Start()
	loadSpan := ob.Trace().Child("load")
	c, err := diskcorpus.Load(*dir)
	if err != nil {
		log.Fatal(err)
	}
	loadSpan.AddItems(len(c.Tables))
	loadSpan.End()
	tables := c.Tables
	queryIdx := c.ByName(*query)
	if queryIdx < 0 {
		log.Fatalf("query table %s not found in %s", *query, *dir)
	}
	q := tables[queryIdx]

	ci := pickColumn(q, *col)
	if ci < 0 {
		log.Fatalf("no eligible query column in %s", *query)
	}
	fmt.Printf("query: %s.%s (%d distinct values)\n\n", q.Name, q.Cols[ci], q.Profile(ci).Distinct)

	joinSpan := ob.Trace().Child("join-search")
	eng := search.New(tables, search.MinUniqueDefault)
	fmt.Printf("top-%d joinable columns by exact overlap (JOSIE semantics):\n", *k)
	for _, r := range eng.TopKJoinable(q, ci, *k, queryIdx) {
		c := tables[r.Ref.Table]
		fmt.Printf("  overlap=%-5d J=%.3f containment=%.3f  %s.%s\n",
			r.Overlap, r.Jaccard, r.Containment, c.Name, c.Cols[r.Ref.Column])
	}

	joinSpan.End()

	lshSpan := ob.Trace().Child("lsh")
	fmt.Printf("\nLSH (MinHash 128, 16×8 bands) candidates at est. J >= 0.8:\n")
	ix := minhash.NewIndex(16, 8)
	var refs []search.ColumnRef
	for ti, t := range tables {
		if ti == queryIdx {
			continue
		}
		for c := range t.Cols {
			p := t.Profile(c)
			if p.Distinct < search.MinUniqueDefault {
				continue
			}
			ix.Add(minhash.Sketch(p.ValueHashes(), 128))
			refs = append(refs, search.ColumnRef{Table: ti, Column: c})
		}
	}
	qsig := minhash.Sketch(q.Profile(ci).ValueHashes(), 128)
	for i, cand := range ix.Query(qsig, 0.8) {
		if i == *k {
			break
		}
		ref := refs[cand.ID]
		c := tables[ref.Table]
		fmt.Printf("  est=%.3f  %s.%s\n", cand.Estimate, c.Name, c.Cols[ref.Column])
	}
	lshSpan.AddTasks(len(refs))
	lshSpan.End()

	unionSpan := ob.Trace().Child("union")
	fmt.Println("\nunionable tables (exact schema identity), ranked by relatedness:")
	ua := union.Find(tables)
	ranked := rank.RankUnionCandidates(ua, queryIdx, rank.UnionWeights{})
	if len(ranked) == 0 {
		fmt.Println("  none")
	}
	for i, r := range ranked {
		if i == *k {
			break
		}
		fmt.Printf("  score=%.2f  %s\n", r.Score, tables[r.Table].Name)
	}
	unionSpan.End()
	sw.PrintCompleted(os.Stdout)
	ob.Finish(os.Stdout)
}

func pickColumn(t *table.Table, name string) int {
	if name != "" {
		return t.ColumnIndex(name)
	}
	for c := range t.Cols {
		if t.Profile(c).Distinct >= search.MinUniqueDefault {
			return c
		}
	}
	return -1
}
