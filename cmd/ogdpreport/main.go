// Command ogdpreport runs the paper's entire study end to end — all
// four portals, every analysis — and prints every table and figure of
// the evaluation with the paper's reported values alongside.
//
// Usage:
//
//	ogdpreport -scale 0.5 -seed 1        # heavier, closer to calibrated sizes
//	ogdpreport -scale 0.1 -fast          # quick pass
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/core"
	"ogdp/internal/gen"
	"ogdp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpreport: ")

	scale := flag.Float64("scale", 0.25, "corpus scale (1.0 = full calibrated size)")
	seed := flag.Int64("seed", 1, "generation seed")
	fast := flag.Bool("fast", false, "skip the HTTP funnel and cap FD analysis")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs, 1 = sequential; results are identical)")
	ob := cli.StandardObs()
	flag.Parse()
	ob.Start("ogdpreport")

	opts := core.Options{
		Scale:       *scale,
		Seed:        *seed,
		Compress:    true,
		FetchFunnel: true,
		Sensitivity: true,
		Extensions:  true,
		Workers:     *workers,
		Metrics:     ob.Registry(),
		Trace:       ob.Trace(),
		Clock:       ob.Clock(),
	}
	if *fast {
		opts.FetchFunnel = false
		opts.MaxFDTables = 100
		opts.Sensitivity = false
		opts.Extensions = false
	}

	sw := cli.Start()
	res := core.Run(gen.Profiles(), opts)
	report.All(os.Stdout, res)
	report.Summary(os.Stdout, res)
	fmt.Printf("\nfull study completed in %s (scale %.2f, seed %d)\n",
		sw, *scale, *seed)
	ob.Finish(os.Stdout)
}
