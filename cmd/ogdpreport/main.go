// Command ogdpreport runs the paper's entire study end to end — all
// four portals, every analysis — and prints every table and figure of
// the evaluation with the paper's reported values alongside.
//
// Usage:
//
//	ogdpreport -scale 0.5 -seed 1        # heavier, closer to calibrated sizes
//	ogdpreport -scale 0.1 -fast          # quick pass
//	ogdpreport -dir ./corpus-ca          # study an on-disk corpus
//
// With -dir the study runs over a saved corpus instead of generating
// one: a directory written by ogdpgen (with its provenance.json)
// reproduces the full study including ground-truth labeling, while
// any other directory of CSVs gets the structural analyses.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/core"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/gen"
	"ogdp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpreport: ")

	scale := flag.Float64("scale", 0.25, "corpus scale (1.0 = full calibrated size)")
	seed := flag.Int64("seed", 1, "generation seed")
	fast := flag.Bool("fast", false, "skip the HTTP funnel and cap FD analysis")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs, 1 = sequential; results are identical)")
	dir := flag.String("dir", "", "run the study over an on-disk corpus instead of generating one")
	ob := cli.StandardObs()
	flag.Parse()
	if err := ob.Start("ogdpreport"); err != nil {
		log.Fatal(err)
	}

	opts := core.Options{
		Scale:       *scale,
		Seed:        *seed,
		Compress:    true,
		FetchFunnel: true,
		Sensitivity: true,
		Extensions:  true,
		Workers:     *workers,
		Metrics:     ob.Registry(),
		Trace:       ob.Trace(),
		Clock:       ob.Clock(),
	}
	if *fast {
		opts.FetchFunnel = false
		opts.MaxFDTables = 100
		opts.Sensitivity = false
		opts.Extensions = false
	}

	sw := cli.Start()
	var res *core.StudyResult
	if *dir != "" {
		src, err := diskcorpus.LoadStudy(*dir)
		if err != nil {
			log.Fatal(err)
		}
		if dc, ok := src.(*diskcorpus.Corpus); ok {
			for _, s := range dc.Skips {
				log.Printf("skipped %s", s)
			}
		}
		res = &core.StudyResult{Options: opts, Portals: []core.PortalResult{core.RunPortal(src, opts)}}
	} else {
		res = core.Run(gen.Profiles(), opts)
	}
	report.All(os.Stdout, res)
	report.Summary(os.Stdout, res)
	fmt.Printf("\nfull study completed in %s (scale %.2f, seed %d)\n",
		sw, *scale, *seed)
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
