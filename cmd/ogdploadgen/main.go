// Command ogdploadgen stress-tests a running ogdpserve instance with
// a mixed query workload and reports throughput and latency
// percentiles.
//
// Usage:
//
//	ogdpserve -dir ./corpus-sg -addr 127.0.0.1:8080 &
//	ogdploadgen -addr http://127.0.0.1:8080 -duration 30s -workers 8 \
//	    -mix join=4,union=2,profile=2,fd=1 -out BENCH_serve.json
//
// The generator first fetches /tables and probes each endpoint per
// table once, so the timed run only issues queries the corpus can
// answer (a table whose columns never reach the join-eligibility bar
// is excluded from /join picks rather than counted as a failure).
// Each worker then runs a seeded closed loop — or an open loop when
// -push-interval sets a per-worker pacing delay — drawing endpoints
// from the -mix weights and tables uniformly. 429 responses count as
// rejected (backpressure working as designed), anything else but 200
// counts as failed. The report lands in -out as JSON: per-endpoint
// and total request counts, cache hits observed via X-Ogdp-Cache,
// and p50/p90/p99/max latency in milliseconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdploadgen: ")

	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the ogdpserve instance")
	duration := flag.Duration("duration", 30*time.Second, "how long to push load")
	workers := flag.Int("workers", 8, "concurrent client workers")
	pushInterval := flag.Duration("push-interval", 0, "per-worker delay between requests (0 = closed loop)")
	reportInterval := flag.Duration("report-interval", 5*time.Second, "progress line cadence on stderr (0 disables)")
	mix := flag.String("mix", "join=4,union=2,profile=2,fd=1", "endpoint weights, comma-separated kind=weight")
	k := flag.Int("k", 5, "k parameter for /join and /union queries")
	seed := flag.Int64("seed", 1, "workload seed (per-worker streams derive from it)")
	out := flag.String("out", "BENCH_serve.json", `report file ("-" = stdout only)`)
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	weights, err := parseMix(*mix)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Timeout: 60 * time.Second}

	inv, err := fetchTables(client, base)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("server %s: portal %s, corpus %s, %d tables",
		base, inv.Portal, inv.Corpus, inv.NumTables)

	targets := probeTargets(client, base, inv, *k, weights)
	var kinds []string
	for _, kind := range []string{"join", "union", "profile", "fd"} {
		if weights[kind] > 0 && len(targets[kind]) > 0 {
			kinds = append(kinds, kind)
		} else if weights[kind] > 0 {
			log.Printf("dropping %s from the mix: no eligible table answered the probe", kind)
		}
	}
	if len(kinds) == 0 {
		log.Fatal("no endpoint in the mix has an eligible table")
	}

	run := runLoad(client, base, loadSpec{
		kinds:        kinds,
		weights:      weights,
		targets:      targets,
		k:            *k,
		workers:      *workers,
		duration:     *duration,
		pushInterval: *pushInterval,
		report:       *reportInterval,
		seed:         *seed,
	})

	rep := buildReport(run, *addr, inv, *mix, *k, *seed, *workers, *pushInterval)
	printSummary(os.Stdout, rep)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		werr := enc.Encode(rep)
		cerr := f.Close()
		if werr != nil {
			log.Fatal(werr)
		}
		if cerr != nil {
			log.Fatal(cerr)
		}
		log.Printf("report written to %s", *out)
	}
	if rep.Totals.Failed > 0 {
		log.Fatalf("%d requests failed", rep.Totals.Failed)
	}
}

// parseMix turns "join=4,union=2" into weight-by-kind.
func parseMix(s string) (map[string]int, error) {
	weights := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight in %q", part)
		}
		switch kind {
		case "join", "union", "profile", "fd":
			weights[kind] = w
		default:
			return nil, fmt.Errorf("unknown -mix kind %q", kind)
		}
	}
	return weights, nil
}

// inventory is the subset of ogdpserve's /tables document the
// generator needs.
type inventory struct {
	Portal    string `json:"portal"`
	Corpus    string `json:"corpus_hash"`
	NumTables int    `json:"num_tables"`
	Tables    []struct {
		Name string   `json:"name"`
		Rows int      `json:"rows"`
		Cols []string `json:"cols"`
	} `json:"tables"`
}

func fetchTables(client *http.Client, base string) (*inventory, error) {
	resp, err := client.Get(base + "/tables")
	if err != nil {
		return nil, fmt.Errorf("fetch /tables: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch /tables: status %d", resp.StatusCode)
	}
	var inv inventory
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		return nil, fmt.Errorf("decode /tables: %w", err)
	}
	if len(inv.Tables) == 0 {
		return nil, fmt.Errorf("server inventory is empty")
	}
	return &inv, nil
}

// probeTargets asks each endpoint about each table once and keeps the
// tables that answered 200, so the timed run never counts a
// structurally unanswerable query (table with no join-eligible
// column, too-wide FD input) as a server failure. The probes also
// warm the server's result cache, which the timed run then exercises.
func probeTargets(client *http.Client, base string, inv *inventory, k int, weights map[string]int) map[string][]string {
	targets := map[string][]string{}
	for _, kind := range []string{"join", "union", "profile", "fd"} {
		if weights[kind] == 0 {
			continue
		}
		for _, t := range inv.Tables {
			resp, err := client.Get(queryURL(base, kind, t.Name, k))
			if err != nil {
				log.Fatalf("probe %s for %s: %v", kind, t.Name, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				targets[kind] = append(targets[kind], t.Name)
			}
		}
	}
	return targets
}

func queryURL(base, kind, table string, k int) string {
	v := url.Values{"table": {table}}
	if kind == "join" || kind == "union" {
		v.Set("k", strconv.Itoa(k))
	}
	return base + "/" + kind + "?" + v.Encode()
}

type loadSpec struct {
	kinds        []string
	weights      map[string]int
	targets      map[string][]string
	k            int
	workers      int
	duration     time.Duration
	pushInterval time.Duration
	report       time.Duration
	seed         int64
}

// endpointTally accumulates one endpoint's outcomes; latencies are
// kept for successful requests only.
type endpointTally struct {
	Requests  int
	OK        int
	Rejected  int
	Failed    int
	CacheHits int
	Latencies []time.Duration
}

type runResult struct {
	byKind  map[string]*endpointTally
	elapsed time.Duration
}

func runLoad(client *http.Client, base string, spec loadSpec) *runResult {
	// picks flattens the mix weights into a slice to draw from
	// uniformly: join=4,fd=1 yields four "join" entries and one "fd".
	var picks []string
	for _, kind := range spec.kinds {
		for i := 0; i < spec.weights[kind]; i++ {
			picks = append(picks, kind)
		}
	}
	var done, okN, rejN, failN atomic.Int64
	stop := make(chan struct{})
	if spec.report > 0 {
		go func() { //lint:allow(gorolife) shutdown owner: runLoad closes stop after wg.Wait, ending this reporter
			tick := time.NewTicker(spec.report)
			defer tick.Stop()
			start := time.Now()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					log.Printf("t=%s requests=%d ok=%d rejected=%d failed=%d",
						time.Since(start).Round(time.Second), done.Load(), okN.Load(), rejN.Load(), failN.Load())
				}
			}
		}()
	}

	start := time.Now()
	deadline := start.Add(spec.duration)
	perWorker := make([]map[string]*endpointTally, spec.workers)
	var wg sync.WaitGroup
	for w := 0; w < spec.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.seed + int64(w)))
			tally := map[string]*endpointTally{}
			perWorker[w] = tally
			for time.Now().Before(deadline) {
				kind := picks[rng.Intn(len(picks))]
				tables := spec.targets[kind]
				table := tables[rng.Intn(len(tables))]
				t0 := time.Now()
				resp, err := client.Get(queryURL(base, kind, table, spec.k))
				lat := time.Since(t0)
				et := tally[kind]
				if et == nil {
					et = &endpointTally{}
					tally[kind] = et
				}
				et.Requests++
				done.Add(1)
				if err != nil {
					et.Failed++
					failN.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				cache := resp.Header.Get("X-Ogdp-Cache")
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					et.OK++
					okN.Add(1)
					et.Latencies = append(et.Latencies, lat)
					if cache == "hit" {
						et.CacheHits++
					}
				case http.StatusTooManyRequests:
					et.Rejected++
					rejN.Add(1)
				default:
					et.Failed++
					failN.Add(1)
				}
				if spec.pushInterval > 0 {
					time.Sleep(spec.pushInterval)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	merged := map[string]*endpointTally{}
	for _, tally := range perWorker {
		for _, kind := range spec.kinds {
			et := tally[kind]
			if et == nil {
				continue
			}
			m := merged[kind]
			if m == nil {
				m = &endpointTally{}
				merged[kind] = m
			}
			m.Requests += et.Requests
			m.OK += et.OK
			m.Rejected += et.Rejected
			m.Failed += et.Failed
			m.CacheHits += et.CacheHits
			m.Latencies = append(m.Latencies, et.Latencies...)
		}
	}
	return &runResult{byKind: merged, elapsed: time.Since(start)}
}

// BenchEndpoint is one endpoint's (or the total's) slice of the
// BENCH_serve.json report.
type BenchEndpoint struct {
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Rejected  int     `json:"rejected"`
	Failed    int     `json:"failed"`
	CacheHits int     `json:"cache_hits"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// BenchReport is the BENCH_serve.json document.
type BenchReport struct {
	Addr            string                   `json:"addr"`
	Portal          string                   `json:"portal"`
	CorpusHash      string                   `json:"corpus_hash"`
	NumTables       int                      `json:"num_tables"`
	Workers         int                      `json:"workers"`
	Mix             string                   `json:"mix"`
	K               int                      `json:"k"`
	Seed            int64                    `json:"seed"`
	PushIntervalMs  float64                  `json:"push_interval_ms"`
	DurationSeconds float64                  `json:"duration_seconds"`
	ThroughputRPS   float64                  `json:"throughput_rps"`
	Totals          BenchEndpoint            `json:"totals"`
	Endpoints       map[string]BenchEndpoint `json:"endpoints"`
}

func buildReport(run *runResult, addr string, inv *inventory, mix string, k int, seed int64, workers int, push time.Duration) *BenchReport {
	rep := &BenchReport{
		Addr:            addr,
		Portal:          inv.Portal,
		CorpusHash:      inv.Corpus,
		NumTables:       inv.NumTables,
		Workers:         workers,
		Mix:             mix,
		K:               k,
		Seed:            seed,
		PushIntervalMs:  float64(push) / float64(time.Millisecond),
		DurationSeconds: run.elapsed.Seconds(),
		Endpoints:       map[string]BenchEndpoint{},
	}
	var kinds []string
	for kind := range run.byKind {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	var allLat []time.Duration
	for _, kind := range kinds {
		et := run.byKind[kind]
		rep.Endpoints["/"+kind] = summarize(et)
		rep.Totals.Requests += et.Requests
		rep.Totals.OK += et.OK
		rep.Totals.Rejected += et.Rejected
		rep.Totals.Failed += et.Failed
		rep.Totals.CacheHits += et.CacheHits
		allLat = append(allLat, et.Latencies...)
	}
	total := summarize(&endpointTally{Latencies: allLat})
	rep.Totals.P50Ms, rep.Totals.P90Ms = total.P50Ms, total.P90Ms
	rep.Totals.P99Ms, rep.Totals.MaxMs = total.P99Ms, total.MaxMs
	if run.elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Totals.Requests) / run.elapsed.Seconds()
	}
	return rep
}

func summarize(et *endpointTally) BenchEndpoint {
	be := BenchEndpoint{
		Requests:  et.Requests,
		OK:        et.OK,
		Rejected:  et.Rejected,
		Failed:    et.Failed,
		CacheHits: et.CacheHits,
	}
	if len(et.Latencies) == 0 {
		return be
	}
	lat := make([]time.Duration, len(et.Latencies))
	copy(lat, et.Latencies)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
	be.P50Ms = ms(pct(0.50))
	be.P90Ms = ms(pct(0.90))
	be.P99Ms = ms(pct(0.99))
	be.MaxMs = ms(lat[len(lat)-1])
	return be
}

func printSummary(w io.Writer, rep *BenchReport) {
	fmt.Fprintf(w, "load run against %s (corpus %s): %d requests in %.1fs (%.1f req/s)\n",
		rep.Addr, rep.CorpusHash, rep.Totals.Requests, rep.DurationSeconds, rep.ThroughputRPS)
	fmt.Fprintf(w, "  ok=%d rejected=%d failed=%d cache-hits=%d\n",
		rep.Totals.OK, rep.Totals.Rejected, rep.Totals.Failed, rep.Totals.CacheHits)
	var kinds []string
	for kind := range rep.Endpoints {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		be := rep.Endpoints[kind]
		fmt.Fprintf(w, "  %-9s n=%-6d p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			kind, be.OK, be.P50Ms, be.P90Ms, be.P99Ms, be.MaxMs)
	}
}
