// Command ogdpinspect runs the paper's analyses over a directory of
// CSV files on disk (for example one produced by ogdpgen, or any
// folder of downloaded open-data CSVs): parsing funnel, profile
// summary, key/FD statistics, joinability, and unionability.
//
// Usage:
//
//	ogdpgen -portal CA -scale 0.1 -out /tmp/corpus
//	ogdpinspect -dir /tmp/corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/fd"
	"ogdp/internal/join"
	"ogdp/internal/keys"
	"ogdp/internal/normalize"
	"ogdp/internal/rank"
	"ogdp/internal/stats"
	"ogdp/internal/table"
	"ogdp/internal/union"
	"ogdp/internal/values"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpinspect: ")

	dir := flag.String("dir", "", "directory of CSV files (required)")
	maxFD := flag.Int("max-fd-tables", 200, "cap on tables entering the FD analysis")
	topJoins := flag.Int("top-joins", 5, "ranked join suggestions to print")
	ob := cli.StandardObs()
	flag.Parse()
	if err := ob.Start("ogdpinspect"); err != nil {
		log.Fatal(err)
	}
	if *dir == "" {
		log.Fatal("-dir is required")
	}

	sw := cli.Start()
	loadSpan := ob.Trace().Child("load")
	c, err := diskcorpus.Load(*dir)
	if err != nil {
		log.Fatal(err)
	}
	tables := c.Tables
	loadSpan.AddTasks(len(tables) + c.Skipped)
	loadSpan.AddItems(len(tables))
	loadSpan.End()
	if len(tables) == 0 {
		log.Fatalf("no readable CSV tables in %s", *dir)
	}

	fmt.Printf("readable tables: %d (skipped %d files, %d too wide)\n\n",
		len(tables), c.Skipped, c.SkippedWide)
	for _, phase := range []struct {
		name string
		run  func()
	}{
		{"profile", func() { printProfile(tables) }},
		{"keys+fd", func() { printKeysAndFDs(tables, *maxFD) }},
		{"join", func() { printJoins(tables, *topJoins) }},
		{"union", func() { printUnions(tables) }},
	} {
		span := ob.Trace().Child(phase.name)
		span.AddTasks(len(tables))
		phase.run()
		span.End()
	}
	sw.PrintCompleted(os.Stdout)
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func printProfile(tables []*table.Table) {
	var rows, cols []float64
	var nullCols, totalCols, allNull int
	for _, t := range tables {
		rows = append(rows, float64(t.NumRows()))
		cols = append(cols, float64(t.NumCols()))
		for c := range t.Cols {
			totalCols++
			r := t.Profile(c).NullRatio()
			if r > 0 {
				nullCols++
			}
			if stats.ApproxEq(r, 1) {
				allNull++
			}
		}
	}
	fmt.Println("profile:")
	fmt.Printf("  rows: median %.0f, max %.0f; columns: median %.0f, max %.0f\n",
		stats.Median(rows), stats.Summarize(rows).Max, stats.Median(cols), stats.Summarize(cols).Max)
	fmt.Printf("  columns with nulls: %.1f%%; entirely null: %.1f%%\n",
		100*float64(nullCols)/float64(totalCols), 100*float64(allNull)/float64(totalCols))

	counts := map[values.ColumnType]int{}
	for _, t := range tables {
		for c := range t.Cols {
			counts[t.Profile(c).Type]++
		}
	}
	var types []values.ColumnType
	for ct := range counts {
		types = append(types, ct)
	}
	sort.Slice(types, func(i, j int) bool { return counts[types[i]] > counts[types[j]] })
	fmt.Printf("  column types:")
	for _, ct := range types {
		fmt.Printf(" %s:%d", ct, counts[ct])
	}
	fmt.Println()
	fmt.Println()
}

func printKeysAndFDs(tables []*table.Table, maxFD int) {
	noKey := 0
	for _, t := range tables {
		if !keys.HasKeyColumn(t) {
			noKey++
		}
	}
	fmt.Printf("keys: %d of %d tables lack a single-column key (%.1f%%)\n",
		noKey, len(tables), 100*float64(noKey)/float64(len(tables)))

	var eligible []*table.Table
	for _, t := range tables {
		if t.NumRows() >= 10 && t.NumRows() <= 10000 && t.NumCols() >= 5 && t.NumCols() <= 20 {
			eligible = append(eligible, t)
			if len(eligible) == maxFD {
				break
			}
		}
	}
	withFD := 0
	var decomposed []float64
	rng := rand.New(rand.NewSource(1))
	for _, t := range eligible {
		if !fd.HasNontrivialFD(t, fd.MaxLHS) {
			continue
		}
		withFD++
		res := normalize.Decompose(t, fd.MaxLHS, rng)
		decomposed = append(decomposed, float64(len(res.Tables)))
	}
	if len(eligible) > 0 {
		fmt.Printf("FDs: %d of %d analyzed tables have a non-trivial FD (%.1f%%); avg BCNF sub-tables %.2f\n\n",
			withFD, len(eligible), 100*float64(withFD)/float64(len(eligible)), stats.Mean(decomposed))
	} else {
		fmt.Println("FDs: no tables in the 10..10000 rows × 5..20 columns analysis window")
	}
}

func printJoins(tables []*table.Table, top int) {
	ja := join.Find(tables, join.Options{})
	joinable := map[int]bool{}
	for _, p := range ja.Pairs {
		joinable[p.T1] = true
		joinable[p.T2] = true
	}
	fmt.Printf("joinability (Jaccard >= 0.9, >= 10 uniques): %d pairs; %d of %d tables joinable (%.1f%%)\n",
		len(ja.Pairs), len(joinable), len(tables), 100*float64(len(joinable))/float64(len(tables)))
	ranked := rank.RankJoins(tables, ja.Pairs, rank.JoinWeights{})
	for i, sp := range ranked {
		if i == top {
			break
		}
		p := sp.Pair
		fmt.Printf("  %.2f  %s.%s ⨝ %s.%s (J=%.2f, expansion %.2f)\n",
			sp.Score, tables[p.T1].Name, tables[p.T1].Cols[p.C1],
			tables[p.T2].Name, tables[p.T2].Cols[p.C2], p.Jaccard, p.Expansion)
	}
	fmt.Println()
}

func printUnions(tables []*table.Table) {
	ua := union.Find(tables)
	fmt.Printf("unionability: %d of %d tables unionable (%.1f%%) across %d shared schemas\n",
		ua.UnionableTables(), len(tables), 100*float64(ua.UnionableTables())/float64(len(tables)), len(ua.Groups))
	for i, g := range ua.Groups {
		if i == 3 {
			break
		}
		fmt.Printf("  group of %d: %s ...\n", len(g.Tables), tables[g.Tables[0]].Name)
	}
}
