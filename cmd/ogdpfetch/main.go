// Command ogdpfetch reproduces the paper's acquisition pipeline
// (§2.2): it generates a portal, serves it through a CKAN-compatible
// HTTP API on a local port, fetches every advertised CSV resource
// through the real client — HTTP status check, libmagic-style
// sniffing, header inference, parsing, wide-table cutoff — and prints
// the downloadable/readable funnel of Table 1.
//
// The fetch fans out over -workers concurrent requests and retries
// transient failures -retries times with deterministic backoff, so a
// flaky portal (simulated with -failrate/-truncrate/-latency) yields
// the same funnel as a healthy one.
//
// Usage:
//
//	ogdpfetch -portal CA -scale 0.1 -seed 1
//	ogdpfetch -portal CA -workers 8 -retries 4 -failrate 0.3
//	ogdpfetch -portal SG -serve :8085    # keep serving for inspection
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/ckan"
	"ogdp/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpfetch: ")

	portal := flag.String("portal", "CA", "portal profile: SG, CA, UK, or US")
	scale := flag.Float64("scale", 0.1, "corpus scale")
	seed := flag.Int64("seed", 1, "generation seed (also drives retry jitter and fault schedules)")
	serve := flag.String("serve", "", "keep serving the CKAN API on this address after fetching")
	workers := flag.Int("workers", 0, "concurrent fetch requests (0 = all CPUs, 1 = sequential)")
	retries := flag.Int("retries", ckan.DefaultRetries, "retry budget for transient failures (0 disables)")
	timeout := flag.Duration("timeout", ckan.DefaultTimeout, "per-request deadline")
	failRate := flag.Float64("failrate", 0, "inject transient 500s on every endpoint at this rate")
	truncRate := flag.Float64("truncrate", 0, "inject truncated download bodies at this rate")
	latency := flag.Duration("latency", 0, "inject this much latency per response")
	ob := cli.StandardObs().EnableDebugServer()
	flag.Parse()
	if err := ob.Start("ogdpfetch"); err != nil {
		log.Fatal(err)
	}

	prof, ok := gen.ProfileByName(*portal)
	if !ok {
		log.Fatalf("unknown portal %q", *portal)
	}
	corpus := gen.Generate(prof, *scale, *seed)
	p := gen.BuildPortal(corpus, *seed)

	ckanSrv := ckan.NewServer(p)
	if *failRate > 0 || *truncRate > 0 || *latency > 0 {
		api := ckan.FaultSpec{Rate500: *failRate, Latency: *latency}
		ckanSrv.InjectFaults(ckan.Faults{
			Seed:        *seed,
			PackageList: api,
			PackageShow: api,
			Download:    ckan.FaultSpec{Rate500: *failRate, TruncateRate: *truncRate, Latency: *latency},
		})
	}

	addr := *serve
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	// cli.StartHTTP owns the listener goroutine and its error channel;
	// a raw `go srv.Serve(ln)` here would leak the goroutine and drop
	// its terminal error (gorolife).
	hs, err := cli.StartHTTP(addr, ckanSrv)
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + hs.Addr().String()
	fmt.Printf("CKAN API serving %s at %s\n", prof.Name, base)

	client := ckan.NewClient(base)
	client.Workers = *workers
	client.Timeout = *timeout
	client.Seed = *seed
	client.Metrics = ob.Registry()
	client.MetricLabels = []string{"portal", prof.Name}
	client.Trace = ob.Trace()
	client.Now = ob.Clock()
	if *retries <= 0 {
		client.Retries = -1
	} else {
		client.Retries = *retries
	}

	sw := cli.Start()
	tables, stats, err := client.FetchAll()
	if err != nil {
		log.Fatal(err)
	}
	pct := func(n int) float64 {
		if stats.Tables == 0 {
			return 0
		}
		return 100 * float64(n) / float64(stats.Tables)
	}
	fmt.Printf("datasets:      %d\n", stats.Datasets)
	fmt.Printf("tables (CSV):  %d\n", stats.Tables)
	fmt.Printf("downloadable:  %d (%.1f%%)\n", stats.Downloadable, pct(stats.Downloadable))
	fmt.Printf("readable:      %d (%.1f%%)\n", stats.Readable, pct(stats.Readable))
	fmt.Printf("too wide:      %d\n", stats.TooWide)
	fmt.Printf("retries:       %d (%d transient failures)\n", stats.Retries, stats.TransientFailures)
	fmt.Printf("permanent:     %d failed requests, %d unparseable dates\n", stats.PermanentFailures, stats.UnparsedDates)

	var rows, cols int
	for _, ft := range tables {
		rows += ft.Table.NumRows()
		cols += ft.Table.NumCols()
	}
	fmt.Printf("parsed: %d tables, %d columns, %d rows in %s\n", len(tables), cols, rows, sw)
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *serve != "" {
		fmt.Printf("serving until interrupted: try %s/api/3/action/package_list\n", base)
		log.Fatalf("serve: %v", <-hs.ServeErr())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
