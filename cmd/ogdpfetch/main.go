// Command ogdpfetch reproduces the paper's acquisition pipeline
// (§2.2): it generates a portal, serves it through a CKAN-compatible
// HTTP API on a local port, fetches every advertised CSV resource
// through the real client — HTTP status check, libmagic-style
// sniffing, header inference, parsing, wide-table cutoff — and prints
// the downloadable/readable funnel of Table 1.
//
// Usage:
//
//	ogdpfetch -portal CA -scale 0.1 -seed 1
//	ogdpfetch -portal SG -serve :8085    # keep serving for inspection
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"ogdp/internal/ckan"
	"ogdp/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpfetch: ")

	portal := flag.String("portal", "CA", "portal profile: SG, CA, UK, or US")
	scale := flag.Float64("scale", 0.1, "corpus scale")
	seed := flag.Int64("seed", 1, "generation seed")
	serve := flag.String("serve", "", "keep serving the CKAN API on this address after fetching")
	flag.Parse()

	prof, ok := gen.ProfileByName(*portal)
	if !ok {
		log.Fatalf("unknown portal %q", *portal)
	}
	corpus := gen.Generate(prof, *scale, *seed)
	p := gen.BuildPortal(corpus, *seed)

	addr := *serve
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: ckan.NewServer(p)}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("CKAN API serving %s at %s\n", prof.Name, base)

	client := ckan.NewClient(base)
	tables, stats, err := client.FetchAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datasets:      %d\n", stats.Datasets)
	fmt.Printf("tables (CSV):  %d\n", stats.Tables)
	fmt.Printf("downloadable:  %d (%.1f%%)\n", stats.Downloadable, 100*float64(stats.Downloadable)/float64(stats.Tables))
	fmt.Printf("readable:      %d (%.1f%%)\n", stats.Readable, 100*float64(stats.Readable)/float64(stats.Tables))
	fmt.Printf("too wide:      %d\n", stats.TooWide)

	var rows, cols int
	for _, ft := range tables {
		rows += ft.Table.NumRows()
		cols += ft.Table.NumCols()
	}
	fmt.Printf("parsed: %d tables, %d columns, %d rows\n", len(tables), cols, rows)

	if *serve != "" {
		fmt.Printf("serving until interrupted: try %s/api/3/action/package_list\n", base)
		select {}
	}
	srv.Close()
}
