// Command ogdpgen generates a synthetic portal corpus to a directory:
// one CSV file per table plus a datasets.json manifest with the CKAN
// metadata (dataset ids, titles, publication dates, metadata styles).
//
// Usage:
//
//	ogdpgen -portal CA -scale 0.2 -seed 1 -out ./corpus-ca
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/csvio"
	"ogdp/internal/gen"
)

type manifestDataset struct {
	ID        string    `json:"id"`
	Title     string    `json:"title"`
	Category  string    `json:"category"`
	Published time.Time `json:"published"`
	Metadata  string    `json:"metadata_style"`
	Tables    []string  `json:"tables"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpgen: ")

	portal := flag.String("portal", "CA", "portal profile: SG, CA, UK, or US")
	scale := flag.Float64("scale", 0.1, "corpus scale (1.0 = full calibrated size)")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "output directory (required)")
	ob := cli.StandardObs()
	flag.Parse()
	ob.Start("ogdpgen")

	if *out == "" {
		log.Fatal("-out directory is required")
	}
	prof, ok := gen.ProfileByName(*portal)
	if !ok {
		log.Fatalf("unknown portal %q (want SG, CA, UK, or US)", *portal)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	sw := cli.Start()
	corpus := gen.Generate(prof, *scale, *seed)
	styleNames := []string{"lacking", "structured", "unstructured", "outside"}

	manifest := make([]manifestDataset, 0, len(corpus.Datasets))
	byDataset := map[string][]string{}
	var totalBytes int64
	for _, m := range corpus.Metas {
		path := filepath.Join(*out, m.Table.Name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := csvio.Write(f, m.Table); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		byDataset[m.Dataset] = append(byDataset[m.Dataset], m.Table.Name)
		totalBytes += m.RawSize
	}
	for _, d := range corpus.Datasets {
		manifest = append(manifest, manifestDataset{
			ID:        d.ID,
			Title:     d.Title,
			Category:  d.Category,
			Published: d.Published,
			Metadata:  styleNames[d.Metadata],
			Tables:    byDataset[d.ID],
		})
	}
	mf, err := os.Create(filepath.Join(*out, "datasets.json"))
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		log.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		log.Fatal(err)
	}

	ob.Trace().AddTasks(len(corpus.Metas))
	ob.Trace().AddItems(len(corpus.Datasets))
	ob.Trace().AddBytes(totalBytes)
	fmt.Printf("wrote %d datasets, %d tables (%.1f MiB) to %s\n",
		len(corpus.Datasets), len(corpus.Metas), float64(totalBytes)/(1<<20), *out)
	sw.PrintCompleted(os.Stdout)
	ob.Finish(os.Stdout)
}
