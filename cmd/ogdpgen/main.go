// Command ogdpgen generates a synthetic portal corpus to a directory:
// one CSV file per table, a datasets.json manifest with the CKAN
// metadata (dataset ids, titles, publication dates, metadata styles),
// and a provenance.json recording the full generation provenance so
// the corpus can be reloaded for an identical study run
// (ogdpreport -dir).
//
// Usage:
//
//	ogdpgen -portal CA -scale 0.2 -seed 1 -out ./corpus-ca
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpgen: ")

	portal := flag.String("portal", "CA", "portal profile: SG, CA, UK, or US")
	scale := flag.Float64("scale", 0.1, "corpus scale (1.0 = full calibrated size)")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "output directory (required)")
	ob := cli.StandardObs()
	flag.Parse()
	if err := ob.Start("ogdpgen"); err != nil {
		log.Fatal(err)
	}

	if *out == "" {
		log.Fatal("-out directory is required")
	}
	prof, ok := gen.ProfileByName(*portal)
	if !ok {
		log.Fatalf("unknown portal %q (want SG, CA, UK, or US)", *portal)
	}

	sw := cli.Start()
	corpus := gen.Generate(prof, *scale, *seed)
	st, err := gen.SaveCorpus(*out, corpus)
	if err != nil {
		log.Fatal(err)
	}

	ob.Trace().AddTasks(st.Tables)
	ob.Trace().AddItems(st.Datasets)
	ob.Trace().AddBytes(st.Bytes)
	fmt.Printf("wrote %d datasets, %d tables (%.1f MiB) to %s\n",
		st.Datasets, st.Tables, float64(st.Bytes)/(1<<20), *out)
	sw.PrintCompleted(os.Stdout)
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
