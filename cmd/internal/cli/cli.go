// Package cli holds the small helpers shared by the ogdp command-line
// tools. It lives under cmd/ on purpose: the tools report
// operator-facing wall-clock timing, which the detrand analyzer bans
// from the study packages, so the clock reads are concentrated here
// instead of being re-typed in every main. Rendering and measurement
// delegate to internal/obs, which never reads the clock itself — the
// time.Now injection happens here.
package cli

import (
	"fmt"
	"io"
	"time"

	"ogdp/internal/obs"
)

// Stopwatch measures a command's elapsed wall time.
type Stopwatch struct {
	sw obs.Stopwatch
}

// Start begins timing a command run.
func Start() Stopwatch {
	return Stopwatch{sw: obs.NewStopwatch(time.Now)}
}

// Elapsed returns the time since Start, rounded to the millisecond —
// the resolution every tool prints.
func (s Stopwatch) Elapsed() time.Duration {
	return s.sw.Elapsed()
}

// String renders the elapsed time in obs.FormatDuration's fixed
// "1.234s" spelling, so timing lines never change unit or precision
// with magnitude the way time.Duration's String does.
func (s Stopwatch) String() string {
	return s.sw.String()
}

// PrintCompleted writes the standard trailing timing line
// ("\ncompleted in 1.234s\n") all tools share. Verification recipes
// strip this line before diffing runs, so keeping the one spelling
// here is what keeps those recipes honest.
func (s Stopwatch) PrintCompleted(w io.Writer) {
	fmt.Fprintf(w, "\ncompleted in %s\n", s)
}
