// Package cli holds the small helpers shared by the ogdp command-line
// tools. It lives under cmd/ on purpose: the tools report
// operator-facing wall-clock timing, which the detrand analyzer bans
// from the study packages, so the clock reads are concentrated here
// instead of being re-typed in every main.
package cli

import (
	"fmt"
	"io"
	"time"
)

// Stopwatch measures a command's elapsed wall time.
type Stopwatch struct {
	start time.Time
}

// Start begins timing a command run.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the time since Start, rounded to the millisecond —
// the resolution every tool prints.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start).Round(time.Millisecond)
}

// PrintCompleted writes the standard trailing timing line
// ("\ncompleted in 1.234s\n") all tools share. Verification recipes
// strip this line before diffing runs, so keeping the one spelling
// here is what keeps those recipes honest.
func (s Stopwatch) PrintCompleted(w io.Writer) {
	fmt.Fprintf(w, "\ncompleted in %v\n", s.Elapsed())
}
