package cli

import (
	"regexp"
	"strings"
	"testing"
)

func TestPrintCompletedFormat(t *testing.T) {
	var b strings.Builder
	Start().PrintCompleted(&b)
	// The exact spelling is load-bearing: the verify recipe and the
	// determinism diffs strip `grep -v "completed in"` lines.
	if !regexp.MustCompile(`^\ncompleted in [0-9]`).MatchString(b.String()) {
		t.Errorf("unexpected timing line %q", b.String())
	}
	if !strings.HasSuffix(b.String(), "\n") {
		t.Errorf("timing line must end with a newline: %q", b.String())
	}
}

func TestElapsedRounding(t *testing.T) {
	d := Start().Elapsed()
	if d < 0 {
		t.Errorf("elapsed went backwards: %v", d)
	}
	if d.Nanoseconds()%int64(1e6) != 0 {
		t.Errorf("elapsed %v is not rounded to milliseconds", d)
	}
}
