package cli

import (
	"regexp"
	"strings"
	"testing"
)

func TestPrintCompletedFormat(t *testing.T) {
	var b strings.Builder
	Start().PrintCompleted(&b)
	// The exact spelling is load-bearing: the verify recipe and the
	// determinism diffs strip `grep -v "completed in"` lines, and the
	// fixed seconds.millis form is what keeps one grep pattern
	// sufficient at every magnitude.
	if !regexp.MustCompile(`^\ncompleted in [0-9]+\.[0-9]{3}s\n$`).MatchString(b.String()) {
		t.Errorf("unexpected timing line %q", b.String())
	}
}

func TestElapsedRounding(t *testing.T) {
	d := Start().Elapsed()
	if d < 0 {
		t.Errorf("elapsed went backwards: %v", d)
	}
	if d.Nanoseconds()%int64(1e6) != 0 {
		t.Errorf("elapsed %v is not rounded to milliseconds", d)
	}
}

func TestStopwatchString(t *testing.T) {
	s := Start().String()
	if !regexp.MustCompile(`^[0-9]+\.[0-9]{3}s$`).MatchString(s) {
		t.Errorf("Stopwatch.String() = %q, want fixed seconds.millis form", s)
	}
}
