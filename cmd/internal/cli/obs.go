package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ogdp/internal/obs"
	"ogdp/internal/parallel"
	"ogdp/internal/table"
)

// Obs bundles the observability flags the ogdp tools share:
//
//	-metrics        print the stage tree and metrics snapshot after the run
//	-metrics-json   write the snapshot as JSON to a file ("-" = stdout)
//	-trace          arm wall-clock spans and pool telemetry (diagnostic)
//	-debug-addr     serve /metrics + /debug/pprof while running (opt-in
//	                via EnableDebugServer)
//
// Everything recorded without -trace is deterministic: the registry
// and trace carry no clock, so -metrics output is byte-identical for
// every -workers value. -trace injects time.Now into the root span
// and installs pool telemetry (per-pool batch/queue-depth series) and
// the table layer's encode-wait histogram; that output varies run to
// run and is for diagnosis, not diffing.
type Obs struct {
	metrics     bool
	metricsJSON string
	trace       bool
	debugAddr   string

	reg   *obs.Registry
	root  *obs.Span
	debug *HTTPServer
}

// StandardObs registers -metrics, -metrics-json, and -trace on the
// default flag set. Call before flag.Parse, then Start after it.
func StandardObs() *Obs {
	o := &Obs{}
	flag.BoolVar(&o.metrics, "metrics", false,
		"print the stage tree and metrics snapshot after the run (deterministic across -workers)")
	flag.StringVar(&o.metricsJSON, "metrics-json", "",
		`write the metrics snapshot as JSON to this file ("-" = stdout)`)
	flag.BoolVar(&o.trace, "trace", false,
		"record wall-clock spans and worker-pool telemetry (diagnostic; varies run to run)")
	return o
}

// EnableDebugServer additionally registers -debug-addr, for the
// long-running tools where live /metrics and pprof profiles are worth
// having. Call before flag.Parse.
func (o *Obs) EnableDebugServer() *Obs {
	flag.StringVar(&o.debugAddr, "debug-addr", "",
		"serve /metrics (Prometheus) and /debug/pprof on this address while running, e.g. 127.0.0.1:6060")
	return o
}

// Start initializes the registry and root span according to the
// parsed flags and, when -debug-addr was given, starts the debug
// server. Call once, after flag.Parse. The debug server's lifecycle
// is owned here: its serve error surfaces through Finish (it is not
// dropped on a goroutine), and Finish shuts its listener down.
func (o *Obs) Start(root string) error {
	o.reg = obs.NewRegistry()
	if o.trace {
		o.root = obs.NewTimedTrace(root, time.Now)
		parallel.SetObserver(obs.NewPoolStats(o.reg))
		table.SetBuildObserver(obs.NewEncodeStats(o.reg, time.Now))
	} else {
		o.root = obs.NewTrace(root)
	}
	if o.debugAddr != "" {
		srv, err := StartHTTP(o.debugAddr, obs.NewDebugHandler(o.reg))
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		o.debug = srv
		fmt.Fprintf(os.Stderr, "debug server at http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}
	return nil
}

// Registry returns the run's metrics registry (non-nil after Start).
func (o *Obs) Registry() *obs.Registry { return o.reg }

// Trace returns the run's root span (non-nil after Start).
func (o *Obs) Trace() *obs.Span { return o.root }

// Clock returns time.Now when -trace armed wall-clock measurement,
// nil otherwise — the injection point for packages that must not read
// the clock themselves.
func (o *Obs) Clock() func() time.Time {
	if o.trace {
		return time.Now
	}
	return nil
}

// Finish ends the root span and emits whatever the flags asked for:
// the stage tree plus text snapshot on w under -metrics, and the JSON
// snapshot to -metrics-json's destination. It also shuts down the
// -debug-addr server, surfacing any error its serve loop died with.
// Call once, after the run; the caller decides how fatal an error is.
func (o *Obs) Finish(w io.Writer) error {
	if o.reg == nil {
		return nil // Start was never called: no flags armed
	}
	o.root.End()
	if o.metrics {
		fmt.Fprintln(w)
		o.root.WriteTree(w)
		fmt.Fprintln(w)
		o.reg.Snapshot().WriteText(w)
	}
	if o.metricsJSON != "" {
		if err := o.writeMetricsJSON(w); err != nil {
			return fmt.Errorf("metrics-json: %w", err)
		}
	}
	if o.debug != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := o.debug.Shutdown(ctx); err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		o.debug = nil
	}
	return nil
}

// writeMetricsJSON writes the snapshot to the -metrics-json
// destination, closing (and flushing) the file on the error path too —
// the old log.Fatalf exit used to skip the deferred Close.
func (o *Obs) writeMetricsJSON(w io.Writer) error {
	if o.metricsJSON == "-" {
		return o.reg.Snapshot().WriteJSON(w)
	}
	f, err := os.Create(o.metricsJSON)
	if err != nil {
		return err
	}
	werr := o.reg.Snapshot().WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
