package cli

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// HTTPServer is a running http.Server bound to a live listener, with
// the lifecycle the long-running tools need and the one-shot tools
// used to get wrong: the Serve error is surfaced (not dropped on a
// bare goroutine) and the listener is closed through Shutdown on
// exit, draining in-flight requests first. Both the -debug-addr
// observability endpoint (Obs.Start) and ogdpserve's query service
// run through it.
type HTTPServer struct {
	srv     *http.Server
	ln      net.Listener
	serveCh chan error // receives Serve's return exactly once
}

// StartHTTP binds addr and starts serving h on a background
// goroutine. The returned server is already accepting connections;
// its Serve error is delivered on ServeErr instead of being
// discarded. Pass addr with port 0 to let the kernel pick, then read
// the bound address back with Addr.
func StartHTTP(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	s := &HTTPServer{
		srv:     &http.Server{Handler: h},
		ln:      ln,
		serveCh: make(chan error, 1),
	}
	go func() { s.serveCh <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *HTTPServer) Addr() net.Addr { return s.ln.Addr() }

// ServeErr delivers the Serve loop's terminal error. It fires at most
// once: after a clean Shutdown the http.ErrServerClosed sentinel is
// consumed by Shutdown itself, so a receive here always means the
// accept loop died on its own (port stolen, listener broken) and the
// process should treat it as fatal.
func (s *HTTPServer) ServeErr() <-chan error { return s.serveCh }

// Shutdown stops accepting new connections, waits for in-flight
// requests to drain (bounded by ctx), closes the listener, and joins
// the serve goroutine. The expected http.ErrServerClosed is folded to
// nil; anything else — a drain timeout or a Serve loop that failed
// before shutdown — comes back as the error.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	shutErr := s.srv.Shutdown(ctx)
	// Serve returns promptly once Shutdown closes the listener; the
	// timer only guards a pathologically wedged accept loop.
	var serveErr error
	select {
	case serveErr = <-s.serveCh:
	case <-time.After(5 * time.Second):
		serveErr = errors.New("serve goroutine did not exit after shutdown")
	}
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	if shutErr != nil {
		return fmt.Errorf("http shutdown: %w", shutErr)
	}
	if serveErr != nil {
		return fmt.Errorf("http serve: %w", serveErr)
	}
	return nil
}
