package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestStartHTTPServesAndShutdownClosesListener(t *testing.T) {
	srv, err := StartHTTP("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "pong")
	}))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatalf("GET before shutdown: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The listener must actually be closed: the port can be re-bound.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Shutdown: %v", err)
	}
	ln.Close()
}

func TestShutdownDrainsInflightRequests(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	srv, err := StartHTTP("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained")
	}))
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr().String() + "/")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight request, not kill it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request: body=%q err=%v", r.body, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}
}

func TestObsStartBadDebugAddrReturnsError(t *testing.T) {
	o := &Obs{debugAddr: "127.0.0.1:-1"}
	if err := o.Start("test"); err == nil {
		t.Fatal("Start with an unbindable -debug-addr must return an error")
	} else if !strings.Contains(err.Error(), "debug server") {
		t.Errorf("error %q does not name the debug server", err)
	}
}

func TestObsDebugServerLifecycle(t *testing.T) {
	o := &Obs{debugAddr: "127.0.0.1:0"}
	if err := o.Start("test"); err != nil {
		t.Fatal(err)
	}
	addr := o.debug.Addr().String()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if err := o.Finish(io.Discard); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("debug port not released after Finish: %v", err)
	}
	ln.Close()
}

func TestFinishMetricsJSONErrorReturnedNotFatal(t *testing.T) {
	o := &Obs{metricsJSON: filepath.Join(t.TempDir(), "no-such-dir", "m.json")}
	if err := o.Start("test"); err != nil {
		t.Fatal(err)
	}
	// Before the fix this path called log.Fatalf and killed the
	// process (skipping the deferred file close); now it reports.
	if err := o.Finish(io.Discard); err == nil {
		t.Fatal("Finish with an uncreatable -metrics-json path must return an error")
	} else if !strings.Contains(err.Error(), "metrics-json") {
		t.Errorf("error %q does not name metrics-json", err)
	}
}

func TestFinishMetricsJSONWritesValidSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	o := &Obs{metricsJSON: path}
	if err := o.Start("test"); err != nil {
		t.Fatal(err)
	}
	o.Registry().Counter("test_total", "Test counter.").Inc()
	if err := o.Finish(io.Discard); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, data)
	}
}
