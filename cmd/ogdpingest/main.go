// Command ogdpingest incrementally updates a saved corpus from a new
// snapshot of its tables. It detects the delta by content hash against
// provenance.json (no parsing of unchanged tables), commits it to the
// corpus directory — CSVs, colstore files, and manifests patched with
// SaveCorpus's crash-safety — and can verify that a live service
// patched in place lands on exactly the state a from-scratch rebuild
// of the updated corpus produces.
//
// Usage:
//
//	ogdpingest -corpus ./corpus-ca -snapshot ./snapshot        # detect + apply
//	ogdpingest -corpus ./corpus-ca -snapshot ./snapshot -dry-run
//	ogdpingest -corpus ./corpus-ca -snapshot ./snapshot -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/ingest"
	"ogdp/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpingest: ")

	corpusDir := flag.String("corpus", "", "saved corpus directory to update (required)")
	snapshot := flag.String("snapshot", "", "directory holding the new table snapshot (required)")
	dryRun := flag.Bool("dry-run", false, "detect and print the delta without applying it")
	verify := flag.Bool("verify", false, "after applying, check that an in-place service patch matches a from-scratch rebuild")
	workers := flag.Int("workers", 0, "worker pool size for profiling (0 = all CPUs)")
	flag.Parse()
	if *corpusDir == "" || *snapshot == "" {
		log.Fatal("-corpus and -snapshot directories are required")
	}

	sw := cli.Start()
	plan, err := ingest.Detect(*corpusDir, *snapshot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta for %s: %s\n", plan.Portal, plan.Summary())
	for _, ch := range plan.Added {
		fmt.Printf("  add    %s (%d rows)\n", ch.Name, ch.Table.NumRows())
	}
	for _, ch := range plan.Updated {
		fmt.Printf("  update %s (%d rows)\n", ch.Name, ch.Table.NumRows())
	}
	for _, name := range plan.Deleted {
		fmt.Printf("  delete %s\n", name)
	}
	if *dryRun {
		sw.PrintCompleted(os.Stdout)
		return
	}
	if plan.Empty() {
		fmt.Println("corpus is current; nothing to apply")
		sw.PrintCompleted(os.Stdout)
		return
	}

	// For -verify the pre-patch service must be built before the
	// directory changes underneath it.
	var patched *query.Service
	if *verify {
		src, err := diskcorpus.LoadStudy(*corpusDir)
		if err != nil {
			log.Fatal(err)
		}
		patched = query.New(src, query.Options{Workers: *workers})
		if err := patched.ApplyDelta(ingest.QueryDelta(plan)); err != nil {
			log.Fatal(err)
		}
	}
	if err := ingest.Apply(*corpusDir, plan); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied: re-profiled %d tables, removed %d\n",
		len(plan.Added)+len(plan.Updated), len(plan.Deleted))

	if *verify {
		src, err := diskcorpus.LoadStudy(*corpusDir)
		if err != nil {
			log.Fatal(err)
		}
		rebuilt := query.New(src, query.Options{Workers: *workers})
		if patched.Hash() != rebuilt.Hash() {
			log.Fatalf("verify: patched service hash %s != rebuilt %s", patched.HashString(), rebuilt.HashString())
		}
		if patched.NumIndexed() != rebuilt.NumIndexed() {
			log.Fatalf("verify: patched service indexes %d columns, rebuild indexes %d",
				patched.NumIndexed(), rebuilt.NumIndexed())
		}
		if patched.NumTables() != rebuilt.NumTables() {
			log.Fatalf("verify: patched service has %d tables, rebuild has %d",
				patched.NumTables(), rebuilt.NumTables())
		}
		fmt.Printf("verify: in-place patch matches rebuild (hash %s, %d tables, %d indexed columns)\n",
			rebuilt.HashString(), rebuilt.NumTables(), rebuilt.NumIndexed())
	}
	sw.PrintCompleted(os.Stdout)
}
