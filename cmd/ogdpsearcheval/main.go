// Command ogdpsearcheval evaluates the ranked table-search engine
// against the generator's planted ground truth: it generates the four
// paper portals, grades every query/candidate table pair with the
// labeling oracle (gen.Truth), ranks every table against the rest of
// its corpus, and reports precision@k, recall@k, and NDCG@k for the
// exact candidate path and several LSH band settings, with the
// engine's candidate/verification work counters alongside so quality
// can be read against work.
//
// Usage:
//
//	ogdpsearcheval                            # evaluate, print JSON
//	ogdpsearcheval -out BENCH_search.json     # also write the JSON to a file
//	ogdpsearcheval -check                     # exit non-zero below the NDCG floor
//	ogdpsearcheval -check -floor 0.95         # pin the floor explicitly
//
// The -check floor applies to the exact path and the recall-safe
// default band setting (64×2) — the configurations the /search
// endpoint actually runs. The lower-band settings (16×8, 32×4) are
// measured to chart the recall-vs-work tradeoff and may legitimately
// fall below the floor.
//
// Timing lives here, in the cmd/ layer: the eval package itself is
// clock-free so its metrics are byte-identical for every worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"ogdp/internal/gen"
	"ogdp/internal/search"
	"ogdp/internal/search/eval"
)

// config is one candidate-generation setting under evaluation.
type config struct {
	Name    string
	Opts    search.Options
	Checked bool // counts toward the -check floor
}

// configs lists the evaluated settings: the exact scan, the engine's
// recall-safe default banding, and two cheaper band settings that
// chart the recall-vs-work tradeoff. All index under the paper's
// distinct-value filter, like the served engine.
func configs() []config {
	return []config{
		{Name: "exact", Opts: search.Options{MinUnique: search.MinUniqueDefault, ExactCutoff: math.MaxInt}, Checked: true},
		{Name: "lsh-64x2", Opts: search.Options{MinUnique: search.MinUniqueDefault, ExactCutoff: 1, Bands: 64, Rows: 2}, Checked: true},
		{Name: "lsh-32x4", Opts: search.Options{MinUnique: search.MinUniqueDefault, ExactCutoff: 1, Bands: 32, Rows: 4}},
		{Name: "lsh-16x8", Opts: search.Options{MinUnique: search.MinUniqueDefault, ExactCutoff: 1, Bands: 16, Rows: 8}},
	}
}

// entry is one (portal, config) evaluation.
type entry struct {
	Portal string `json:"portal"`
	Config string `json:"config"`
	eval.Result
	Seconds float64 `json:"seconds"`
}

// result is the harness's JSON document; BENCH_search.json at the
// repo root is one of these, produced with -out.
type result struct {
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
	K       int     `json:"k"`
	Entries []entry `json:"entries"`
	// MinCheckedNDCG is the smallest NDCG@k across the checked
	// configurations (exact and the default banding) on all portals —
	// the number -check compares against the floor.
	MinCheckedNDCG float64 `json:"min_checked_ndcg"`
	Floor          float64 `json:"floor"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpsearcheval: ")

	scale := flag.Float64("scale", 0.1, "corpus scale per portal")
	seed := flag.Int64("seed", 1, "generation seed")
	k := flag.Int("k", eval.DefaultK, "ranking depth for the @k metrics")
	portals := flag.String("portals", "SG,CA,UK,US", "comma-separated portal codes")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs; results are identical)")
	out := flag.String("out", "", "also write the JSON result to this file")
	check := flag.Bool("check", false, "exit 1 when a checked config's NDCG misses the floor")
	floor := flag.Float64("floor", 0.9, "NDCG@k floor for -check")
	flag.Parse()

	res := result{Scale: *scale, Seed: *seed, K: *k, MinCheckedNDCG: math.Inf(1), Floor: *floor}
	for _, code := range strings.Split(*portals, ",") {
		code = strings.TrimSpace(code)
		if code == "" {
			continue
		}
		prof, ok := gen.ProfileByName(code)
		if !ok {
			log.Fatalf("unknown portal %q (want one of SG, CA, UK, US)", code)
		}
		c := gen.Generate(prof, *scale, *seed)
		grades := eval.Grades(c)
		for _, cfg := range configs() {
			start := time.Now()
			r := eval.Evaluate(c, grades, cfg.Opts, *k, *workers)
			secs := time.Since(start).Seconds()
			res.Entries = append(res.Entries, entry{
				Portal: code, Config: cfg.Name, Result: r,
				Seconds: round(secs),
			})
			fmt.Fprintf(os.Stderr, "%s %-8s  ndcg@%d=%.3f p@%d=%.3f r@%d=%.3f  verified=%d  %.2fs\n",
				code, cfg.Name, *k, r.NDCG, *k, r.Precision, *k, r.Recall, r.Verified, secs)
			if cfg.Checked && r.NDCG < res.MinCheckedNDCG {
				res.MinCheckedNDCG = r.NDCG
			}
		}
	}
	if math.IsInf(res.MinCheckedNDCG, 1) {
		log.Fatal("no portals evaluated")
	}

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	doc = append(doc, '\n')
	os.Stdout.Write(doc)
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	if *check && res.MinCheckedNDCG < *floor {
		log.Fatalf("FAIL: NDCG@%d %.3f below floor %.3f on a checked configuration",
			*k, res.MinCheckedNDCG, *floor)
	}
}

func round(f float64) float64 {
	return float64(int(f*100+0.5)) / 100
}
