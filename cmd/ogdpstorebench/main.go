// Command ogdpstorebench measures the corpus load paths against each
// other: the colstore mmap fast path (encodings served zero-copy from
// the binary columnar files) versus CSV re-parsing, over the same
// saved corpus. It reports wall time and allocated bytes per load,
// checks that the full study over both loads produces the identical
// PortalResult, and with -check fails when the mmap path misses the
// improvement floors — the CI gate for the storage layer.
//
// Usage:
//
//	ogdpstorebench -portal CA -scale 0.1 -seed 1 -out BENCH.json -check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/colstore"
	"ogdp/internal/core"
	"ogdp/internal/corpus"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/gen"
)

// loadSample is one measured load path.
type loadSample struct {
	NsPerLoad     int64 `json:"ns_per_load"`
	AllocsPerLoad int64 `json:"alloc_bytes_per_load"`
	Runs          int   `json:"runs"`
	FallbackNotes int   `json:"fallback_notes"`
	EncodedServed int   `json:"tables_served_encoded"`
	TablesLoaded  int   `json:"tables_loaded"`
}

// benchReport is the JSON the tool writes (and CI uploads).
type benchReport struct {
	Benchmark     string     `json:"benchmark"`
	Command       string     `json:"command"`
	Portal        string     `json:"portal"`
	Scale         float64    `json:"scale"`
	Seed          int64      `json:"seed"`
	Tables        int        `json:"tables"`
	CSVBytes      int64      `json:"csv_bytes"`
	ColstoreBytes int64      `json:"colstore_bytes"`
	CSVLoad       loadSample `json:"csv_load"`
	MmapLoad      loadSample `json:"mmap_load"`
	TimeRatio     float64    `json:"mmap_time_ratio"`
	AllocRatio    float64    `json:"mmap_alloc_ratio"`
	StudyParity   string     `json:"study_parity"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpstorebench: ")

	portal := flag.String("portal", "CA", "portal profile: SG, CA, UK, or US")
	scale := flag.Float64("scale", 0.1, "corpus scale")
	seed := flag.Int64("seed", 1, "generation seed")
	reps := flag.Int("reps", 3, "load repetitions per path (best run reported)")
	out := flag.String("out", "", "write the JSON report here")
	check := flag.Bool("check", false, "fail unless mmap beats the floors and study parity holds")
	maxTimeRatio := flag.Float64("max-time-ratio", 0.5, "-check: mmap load time must be at most this fraction of CSV load time")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 0.5, "-check: mmap load allocations must be at most this fraction of CSV load")
	flag.Parse()

	prof, ok := gen.ProfileByName(*portal)
	if !ok {
		log.Fatalf("unknown portal %q (want SG, CA, UK, or US)", *portal)
	}
	dir, err := os.MkdirTemp("", "ogdpstorebench-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	c := gen.Generate(prof, *scale, *seed)
	st, err := gen.SaveCorpus(dir, c)
	if err != nil {
		log.Fatal(err)
	}
	rep := benchReport{
		Benchmark: "ogdpstorebench",
		Command:   fmt.Sprintf("ogdpstorebench -portal %s -scale %g -seed %d -reps %d", *portal, *scale, *seed, *reps),
		Portal:    *portal, Scale: *scale, Seed: *seed,
		Tables: st.Tables, CSVBytes: st.Bytes, ColstoreBytes: st.ColBytes,
	}

	// Pass 1: colstore present — the mmap fast path.
	mmapSrc, mmapSample := measure(dir, *reps)
	if mmapSample.EncodedServed != mmapSample.TablesLoaded || mmapSample.FallbackNotes != 0 {
		log.Fatalf("mmap pass not fully colstore-served: %d/%d tables encoded, %d fallbacks",
			mmapSample.EncodedServed, mmapSample.TablesLoaded, mmapSample.FallbackNotes)
	}
	// Pass 2: colstore files removed — every table re-parses from CSV.
	if err := removeColstore(dir); err != nil {
		log.Fatal(err)
	}
	csvSrc, csvSample := measure(dir, *reps)
	if csvSample.EncodedServed != 0 {
		log.Fatalf("csv pass unexpectedly served %d tables from colstore", csvSample.EncodedServed)
	}
	rep.MmapLoad, rep.CSVLoad = mmapSample, csvSample
	rep.TimeRatio = ratio(mmapSample.NsPerLoad, csvSample.NsPerLoad)
	rep.AllocRatio = ratio(mmapSample.AllocsPerLoad, csvSample.AllocsPerLoad)

	// Study parity: the full portal study over both loads must agree
	// exactly (DeepEqual on PortalResult).
	opts := core.Options{Scale: *scale, Seed: *seed, MaxFDTables: 10, SamplePerCell: 2, UnionSamples: 4}
	want := core.RunPortal(csvSrc, opts)
	got := core.RunPortal(mmapSrc, opts)
	want.Corpus, got.Corpus = nil, nil
	if reflect.DeepEqual(want, got) {
		rep.StudyParity = "ok"
	} else {
		rep.StudyParity = "MISMATCH"
	}

	fmt.Printf("corpus: %d tables, %.2f MiB CSV, %.2f MiB colstore\n",
		rep.Tables, float64(rep.CSVBytes)/(1<<20), float64(rep.ColstoreBytes)/(1<<20))
	fmt.Printf("csv_load:  %12d ns  %12d alloc bytes\n", csvSample.NsPerLoad, csvSample.AllocsPerLoad)
	fmt.Printf("mmap_load: %12d ns  %12d alloc bytes\n", mmapSample.NsPerLoad, mmapSample.AllocsPerLoad)
	fmt.Printf("ratios: time %.3f, alloc %.3f (floors %.2f / %.2f)\n",
		rep.TimeRatio, rep.AllocRatio, *maxTimeRatio, *maxAllocRatio)
	fmt.Printf("study parity: %s\n", rep.StudyParity)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *check {
		if rep.StudyParity != "ok" {
			log.Fatal("check failed: study results differ between load paths")
		}
		if rep.TimeRatio > *maxTimeRatio {
			log.Fatalf("check failed: mmap load time ratio %.3f exceeds floor %.2f", rep.TimeRatio, *maxTimeRatio)
		}
		if rep.AllocRatio > *maxAllocRatio {
			log.Fatalf("check failed: mmap load alloc ratio %.3f exceeds floor %.2f", rep.AllocRatio, *maxAllocRatio)
		}
		fmt.Println("check passed")
	}
}

// measure loads the corpus reps times, returning the last loaded
// source and the best (minimum) wall time and allocation figures.
func measure(dir string, reps int) (corpus.Source, loadSample) {
	var src corpus.Source
	var sample loadSample
	for r := 0; r < reps; r++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		sw := cli.Start()
		loaded, notes, err := diskcorpus.LoadStudyNotes(dir)
		if err != nil {
			log.Fatal(err)
		}
		ns := sw.Elapsed().Nanoseconds()
		runtime.ReadMemStats(&m1)
		alloc := int64(m1.TotalAlloc - m0.TotalAlloc)
		if r == 0 || ns < sample.NsPerLoad {
			sample.NsPerLoad = ns
		}
		if r == 0 || alloc < sample.AllocsPerLoad {
			sample.AllocsPerLoad = alloc
		}
		sample.FallbackNotes = len(notes)
		sample.EncodedServed, sample.TablesLoaded = countEncoded(loaded)
		src = loaded
	}
	sample.Runs = reps
	return src, sample
}

// countEncoded reports how many loaded tables are encoding-backed
// (served from colstore) out of the total.
func countEncoded(src corpus.Source) (encoded, total int) {
	for _, m := range src.TableMetas() {
		total++
		if m.Table.Encoded() {
			encoded++
		}
	}
	return encoded, total
}

// removeColstore deletes every colstore file in dir, forcing the CSV
// fallback path.
func removeColstore(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), colstore.Ext) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// ratio is a/b, 0 when b is 0.
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
