// Command ogdpscaling is the parallel-scaling harness: it runs the
// full four-portal study at each requested worker count, checks that
// every run produced identical results, and reports wall-clock
// speedups relative to the sequential (workers=1) baseline as JSON.
//
// Usage:
//
//	ogdpscaling                          # measure workers 1,2,4,8, print JSON
//	ogdpscaling -out BENCH_scaling.json  # also write the JSON to a file
//	ogdpscaling -check                   # exit non-zero below the threshold
//	ogdpscaling -check -threshold 3.0    # pin the threshold explicitly
//
// The -check threshold is core-count-aware by default, because the
// achievable speedup is bounded by the hardware the harness happens to
// run on: with C usable cores the default demands the best measured
// speedup reach 0.75 × min(4, C) — 3.0× on the ≥4-core CI runners the
// scaling contract targets — while on a single-core machine (where
// speedup > 1 is physically impossible) it degrades to an overhead
// guard: the most parallel run must not be slower than 1/0.85 ≈ 1.18×
// the sequential baseline. Pass -threshold to pin the bar explicitly.
//
// Timing lives here, in the cmd/ layer, for the usual reason: the
// study itself must stay clock-free so its output is byte-identical
// for every worker count — a property this harness also re-verifies on
// every run before it trusts the timings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ogdp/internal/core"
	"ogdp/internal/gen"
)

// run is one measured study execution.
type run struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
}

// result is the harness's JSON document; BENCH_scaling.json at the
// repo root is one of these, produced with -out.
type result struct {
	Cores      int     `json:"cores"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	Runs       []run   `json:"runs"`
	// Speedups maps "workers-N" to baseline_seconds / N_seconds.
	Speedups map[string]float64 `json:"speedups"`
	// BestSpeedup is the largest entry of Speedups.
	BestSpeedup float64 `json:"best_speedup"`
	// Threshold is the bar BestSpeedup was (or would be) checked
	// against; ThresholdSource records whether it came from -threshold
	// or the core-count-aware default.
	Threshold       float64 `json:"threshold"`
	ThresholdSource string  `json:"threshold_source"`
	Identical       bool    `json:"results_identical"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpscaling: ")

	scale := flag.Float64("scale", 0.15, "corpus scale (matches the BenchmarkStudyParallel harness)")
	seed := flag.Int64("seed", 100, "generation seed")
	workersList := flag.String("workers", "1,2,4,8", "comma-separated worker counts; the first is the baseline")
	out := flag.String("out", "", "also write the JSON result to this file")
	check := flag.Bool("check", false, "exit 1 when the best speedup misses the threshold")
	threshold := flag.Float64("threshold", 0, "speedup bar for -check (0 = core-count-aware default)")
	flag.Parse()

	counts, err := parseCounts(*workersList)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.Options{
		Scale:         *scale,
		Seed:          *seed,
		MaxFDTables:   150,
		SamplePerCell: 8,
		UnionSamples:  10,
	}

	res := result{
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      *scale,
		Seed:       *seed,
		Speedups:   map[string]float64{},
		Identical:  true,
	}

	// One untimed warm-up pass populates the OS page cache and the Go
	// runtime's memory before anything is measured.
	study(opts, counts[0])

	var baseline *core.StudyResult
	var baselineSecs float64
	for i, w := range counts {
		start := time.Now()
		sr := study(opts, w)
		secs := time.Since(start).Seconds()
		res.Runs = append(res.Runs, run{Workers: w, Seconds: round(secs)})
		fmt.Fprintf(os.Stderr, "workers=%d: %.2fs\n", w, secs)

		normalize(sr)
		if i == 0 {
			baseline, baselineSecs = sr, secs
			continue
		}
		speedup := round(baselineSecs / secs)
		res.Speedups[fmt.Sprintf("workers-%d", w)] = speedup
		if speedup > res.BestSpeedup {
			res.BestSpeedup = speedup
		}
		if !reflect.DeepEqual(sr, baseline) {
			res.Identical = false
		}
	}
	res.Threshold, res.ThresholdSource = pickThreshold(*threshold, res.Cores)

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	doc = append(doc, '\n')
	os.Stdout.Write(doc)
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	if !res.Identical {
		log.Fatal("FAIL: study results differ across worker counts (determinism contract broken)")
	}
	if *check && res.BestSpeedup < res.Threshold {
		log.Fatalf("FAIL: best speedup %.2f× below threshold %.2f× (%s, %d cores)",
			res.BestSpeedup, res.Threshold, res.ThresholdSource, res.Cores)
	}
}

// study runs the full four-portal study at one worker count.
func study(opts core.Options, workers int) *core.StudyResult {
	opts.Workers = workers
	return core.Run(gen.Profiles(), opts)
}

// normalize strips the fields that differ across runs by construction:
// Options records the worker count, and each run generates its own
// (deeply equal) corpus.
func normalize(sr *core.StudyResult) {
	sr.Options = core.Options{}
	for i := range sr.Portals {
		sr.Portals[i].Corpus = nil
	}
}

// pickThreshold returns the -check bar. An explicit -threshold wins;
// otherwise the bar scales with the cores actually available, capped
// at the 4-worker target the scaling contract is written against.
func pickThreshold(flagVal float64, cores int) (float64, string) {
	if flagVal > 0 {
		return flagVal, "flag"
	}
	if cores <= 1 {
		// Speedup is impossible on one core; guard against parallel
		// overhead instead: best "speedup" must stay above 0.85 (i.e.
		// the most parallel run at most ~1.18× slower than sequential).
		return 0.85, "auto-1core-overhead-guard"
	}
	n := cores
	if n > 4 {
		n = 4
	}
	return 0.75 * float64(n), "auto-0.75x-min(4,cores)"
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("-workers needs at least a baseline and one parallel count")
	}
	return out, nil
}

func round(f float64) float64 {
	return float64(int(f*100+0.5)) / 100
}
