// Command ogdpunion runs the unionability analysis of §6 over all four
// portals and prints Table 11 plus the union-pair labeling summary.
//
// Usage:
//
//	ogdpunion -scale 0.2 -seed 1 -samples 25
package main

import (
	"flag"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/core"
	"ogdp/internal/gen"
	"ogdp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpunion: ")

	scale := flag.Float64("scale", 0.2, "corpus scale")
	seed := flag.Int64("seed", 1, "generation seed")
	samples := flag.Int("samples", 25, "union pairs labeled per portal")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs, 1 = sequential; results are identical)")
	ob := cli.StandardObs()
	flag.Parse()
	if err := ob.Start("ogdpunion"); err != nil {
		log.Fatal(err)
	}

	sw := cli.Start()
	res := core.Run(gen.Profiles(), core.Options{
		Scale:        *scale,
		Seed:         *seed,
		MaxFDTables:  1,
		UnionSamples: *samples,
		Workers:      *workers,
		Metrics:      ob.Registry(),
		Trace:        ob.Trace(),
		Clock:        ob.Clock(),
	})
	report.Table11(os.Stdout, res)
	report.UnionLabels(os.Stdout, res)
	sw.PrintCompleted(os.Stdout)
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
