// Command ogdpfd runs the key, functional-dependency, and BCNF
// decomposition analyses of §4 over all four portals and prints
// Table 5 and the data behind Figures 6-7.
//
// Usage:
//
//	ogdpfd -scale 0.2 -seed 1 -max-tables 0
package main

import (
	"flag"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/core"
	"ogdp/internal/gen"
	"ogdp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpfd: ")

	scale := flag.Float64("scale", 0.2, "corpus scale")
	seed := flag.Int64("seed", 1, "generation seed")
	maxTables := flag.Int("max-tables", 0, "cap the FD-analysis subset (0 = all eligible tables)")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs, 1 = sequential; results are identical)")
	ob := cli.StandardObs().EnableDebugServer()
	flag.Parse()
	if err := ob.Start("ogdpfd"); err != nil {
		log.Fatal(err)
	}

	sw := cli.Start()
	res := core.Run(gen.Profiles(), core.Options{
		Scale:       *scale,
		Seed:        *seed,
		MaxFDTables: *maxTables,
		Workers:     *workers,
		Metrics:     ob.Registry(),
		Trace:       ob.Trace(),
		Clock:       ob.Clock(),
	})
	report.Figure6(os.Stdout, res)
	report.Table5(os.Stdout, res)
	report.Figure7(os.Stdout, res)
	sw.PrintCompleted(os.Stdout)
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
