// Command ogdplint runs the repo's determinism-aware static-analysis
// suite (internal/analyze) over the module: it loads every non-test
// package, type-checks it against the standard library from source
// (no toolchain artifacts, no external dependencies), runs all
// registered checks, prints findings as "file:line: [check] message",
// and exits non-zero if any survive suppression.
//
// Suppress a finding with a justification comment on the offending
// line or on the enclosing function declaration:
//
//	t := time.Now() //lint:allow(detrand) boot stamp, never compared
//
// Usage:
//
//	ogdplint ./...              # whole module (default)
//	ogdplint ./internal/join    # restrict findings to a subtree
//	ogdplint -json ./...        # full findings ledger as stable JSON
//	ogdplint -list              # describe the checks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/analyze"
)

// jsonFinding is the -json wire shape: one object per finding, sorted
// by position then check name (the order analyze.RunDetailed already
// guarantees), so CI artifacts diff cleanly across runs. Suppressed
// findings are included with the allow comment's position, making the
// artifact a ledger of what every //lint:allow is absorbing.
type jsonFinding struct {
	Check        string `json:"check"`
	Pos          string `json:"pos"`
	Msg          string `json:"msg"`
	SuppressedBy string `json:"suppressed_by,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdplint: ")

	list := flag.Bool("list", false, "list registered checks and exit")
	asJSON := flag.Bool("json", false, "emit every finding (suppressed ones included) as sorted JSON")
	ob := cli.StandardObs()
	flag.Parse()
	if err := ob.Start("ogdplint"); err != nil {
		log.Fatal(err)
	}

	if *list {
		for _, c := range analyze.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	root, err := moduleRoot(cwd)
	if err != nil {
		log.Fatal(err)
	}
	prefixes, err := pathFilters(flag.Args(), cwd, root)
	if err != nil {
		log.Fatal(err)
	}

	loadSpan := ob.Trace().Child("load")
	prog, err := analyze.NewLoader().Load(root)
	if err != nil {
		log.Fatal(err)
	}
	loadSpan.AddItems(len(prog.Pkgs))
	loadSpan.End()

	checkSpan := ob.Trace().Child("checks")
	checkSpan.AddTasks(len(prog.Pkgs) * len(analyze.Checks()))
	detailed := analyze.RunDetailed(prog.Pkgs, analyze.Checks())
	checkSpan.AddItems(len(detailed))
	checkSpan.End()

	live := 0
	var out []jsonFinding
	for _, f := range detailed {
		if !underAny(f.Pos.Filename, prefixes) {
			continue
		}
		f = f.RelativeTo(cwd)
		if *asJSON {
			out = append(out, jsonFinding{
				Check:        f.Check,
				Pos:          fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line),
				Msg:          f.Msg,
				SuppressedBy: f.SuppressedBy,
			})
		} else if f.SuppressedBy == "" {
			fmt.Println(f)
		}
		if f.SuppressedBy == "" {
			live++
		}
	}
	ob.Registry().Counter("ogdplint_packages_total", "Packages loaded and checked.").Add(int64(len(prog.Pkgs)))
	ob.Registry().Counter("ogdplint_findings_total", "Findings surviving suppression.").Add(int64(live))
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if out == nil {
			out = []jsonFinding{} // stable artifact: "[]", never "null"
		}
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		// Keep stdout pure JSON; the obs footer goes to stderr.
		if err := ob.Finish(os.Stderr); err != nil {
			log.Fatal(err)
		}
	} else if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if live > 0 {
		log.Fatalf("%d finding(s)", live)
	}
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
	}
}

// pathFilters turns package-pattern arguments into absolute directory
// prefixes findings must live under. "./..." (and no arguments) means
// the whole module; "./internal/join" or "./internal/join/..."
// restricts output to that subtree. The full module is always loaded
// and checked — a pattern only filters what is printed, it cannot
// hide findings by skipping type-checking.
func pathFilters(args []string, cwd, root string) ([]string, error) {
	if len(args) == 0 {
		return []string{root}, nil
	}
	var prefixes []string
	for _, arg := range args {
		p := strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
		if p == "." || p == "" {
			prefixes = append(prefixes, root)
			continue
		}
		abs := p
		if !filepath.IsAbs(p) {
			abs = filepath.Join(cwd, p)
		}
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("pattern %q: %w", arg, err)
		}
		prefixes = append(prefixes, abs)
	}
	return prefixes, nil
}

func underAny(file string, prefixes []string) bool {
	for _, p := range prefixes {
		if file == p || strings.HasPrefix(file, strings.TrimSuffix(p, "/")+"/") {
			return true
		}
	}
	return false
}
