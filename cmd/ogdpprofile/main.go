// Command ogdpprofile runs the general-characteristics analyses of §3
// and §4.1 over all four portals and prints Tables 1-4 and the data
// behind Figures 1-5.
//
// Usage:
//
//	ogdpprofile -scale 0.2 -seed 1 -compress
package main

import (
	"flag"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/core"
	"ogdp/internal/gen"
	"ogdp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpprofile: ")

	scale := flag.Float64("scale", 0.2, "corpus scale")
	seed := flag.Int64("seed", 1, "generation seed")
	compress := flag.Bool("compress", true, "measure gzip-compressed sizes")
	funnel := flag.Bool("funnel", true, "measure the download funnel over HTTP")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs, 1 = sequential; results are identical)")
	ob := cli.StandardObs()
	flag.Parse()
	if err := ob.Start("ogdpprofile"); err != nil {
		log.Fatal(err)
	}

	sw := cli.Start()
	res := core.Run(gen.Profiles(), core.Options{
		Scale:       *scale,
		Seed:        *seed,
		Compress:    *compress,
		FetchFunnel: *funnel,
		MaxFDTables: 1, // skip the expensive FD analysis; see ogdpfd
		Workers:     *workers,
		Metrics:     ob.Registry(),
		Trace:       ob.Trace(),
		Clock:       ob.Clock(),
	})
	report.Table1(os.Stdout, res)
	report.Figure1(os.Stdout, res)
	report.Figure2(os.Stdout, res)
	report.Table2(os.Stdout, res)
	report.Figure3(os.Stdout, res)
	report.Figure4(os.Stdout, res)
	report.Table3(os.Stdout, res)
	report.Figure5(os.Stdout, res)
	report.Table4(os.Stdout, res)
	sw.PrintCompleted(os.Stdout)
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
