// Command ogdpserve is the long-lived query service over a saved
// corpus: it loads a corpus directory once — building the inverted
// join index, the unionability grouping, and every column profile up
// front — and then answers join/union/profile/fd queries over HTTP
// until told to stop.
//
// Usage:
//
//	ogdpgen -out ./corpus-sg -scale 0.1
//	ogdpserve -dir ./corpus-sg -addr 127.0.0.1:8080
//
// Endpoints (all GET):
//
//	/join?table=T&col=C&k=N     top-k joinable columns (JOSIE semantics)
//	/union?table=T&k=N          unionable tables, ranked
//	/search?table=T&k=N         ranked integration hypotheses (LSH-accelerated)
//	/profile?table=T            per-column profile
//	/fd?table=T&lhs=N           minimal functional dependencies
//	/tables                     corpus inventory (JSON)
//	/healthz                    liveness
//	/metrics                    Prometheus snapshot
//	/debug/pprof/               runtime profiles
//
// Response bodies are byte-identical to the one-shot CLI output for
// the same question (ogdpsearch, and its -mode profile/fd) — both
// run through internal/query. Results are cached in an LRU keyed on
// (corpus content hash, normalized query); X-Ogdp-Cache reports
// hit/miss. When every execution slot and wait-queue place is taken
// the server answers 429 with Retry-After rather than queueing
// without bound. SIGINT/SIGTERM drain in-flight requests (bounded by
// -drain) before the process exits.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/query"
	"ogdp/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpserve: ")

	dir := flag.String("dir", "", "corpus directory to serve (required)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port, :0 picks a free port)")
	workers := flag.Int("request-workers", 0, "parallel workers per request (0 = all CPUs; results are identical)")
	concurrency := flag.Int("concurrency", serve.DefaultMaxConcurrent, "queries executing at once")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "queries waiting for a slot before arrivals get 429")
	timeout := flag.Duration("timeout", serve.DefaultTimeout, "per-query execution deadline (queue wait included)")
	cache := flag.Int("cache", serve.DefaultCacheEntries, "result-cache capacity in entries (negative disables)")
	drain := flag.Duration("drain", 10*time.Second, "how long shutdown waits for in-flight queries")
	ob := cli.StandardObs()
	flag.Parse()
	if *dir == "" {
		log.Fatal("missing -dir: path to a saved corpus directory (e.g. written by ogdpgen -out)")
	}
	if err := ob.Start("ogdpserve"); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	src, err := diskcorpus.LoadStudy(*dir)
	if err != nil {
		log.Fatal(err)
	}
	if dc, ok := src.(*diskcorpus.Corpus); ok {
		for _, s := range dc.Skips {
			log.Printf("skipped %s", s)
		}
	}
	svc := query.New(src, query.Options{Workers: *workers, Registry: ob.Registry()})
	log.Printf("loaded %d tables, %d join-indexed columns from %s in %s",
		svc.NumTables(), svc.NumIndexed(), *dir, time.Since(start).Round(time.Millisecond))
	if sk := svc.IndexSkips(); sk.MinUnique+sk.Empty > 0 {
		log.Printf("search index skipped %d columns below the distinct-value bar, %d with no values",
			sk.MinUnique, sk.Empty)
	}

	srv := serve.New(svc, serve.Options{
		Workers:       *workers,
		MaxConcurrent: *concurrency,
		QueueDepth:    *queue,
		Timeout:       *timeout,
		CacheEntries:  *cache,
		Registry:      ob.Registry(),
	})
	hs, err := cli.StartHTTP(*addr, srv)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving corpus %s on http://%s", svc.HashString(), hs.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %s, draining in-flight queries (up to %s)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Fatal(err)
		}
		log.Print("shut down cleanly")
	case err := <-hs.ServeErr():
		// The listener died underneath us (not a shutdown we asked
		// for): nothing to drain.
		log.Fatalf("serve: %v", err)
	}
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
