package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeEndToEnd drives the built ogdpserve binary through its
// whole lifecycle: load a corpus, answer every endpoint with bodies
// byte-identical to the one-shot ogdpsearch CLI, and exit cleanly on
// SIGINT with in-flight work drained.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "ogdp/cmd/ogdpserve", "ogdp/cmd/ogdpsearch")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	corpus := writeCorpus(t)

	serve := exec.Command(filepath.Join(bin, "ogdpserve"), "-dir", corpus, "-addr", "127.0.0.1:0")
	stderr, err := serve.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()

	// The server logs its chosen address; scan for it, keep draining
	// stderr afterwards so the process never blocks on the pipe.
	addrRe := regexp.MustCompile(`serving corpus [0-9a-f]+ on http://([0-9.]+:[0-9]+)`)
	sc := bufio.NewScanner(stderr)
	var addr string
	var tail strings.Builder
	var tailMu sync.Mutex
	for sc.Scan() {
		line := sc.Text()
		tail.WriteString(line + "\n")
		if m := addrRe.FindStringSubmatch(line); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no serving line on stderr:\n%s", tail.String())
	}
	stderrDone := make(chan struct{})
	go func() {
		defer close(stderrDone)
		for sc.Scan() {
			tailMu.Lock()
			tail.WriteString(sc.Text() + "\n")
			tailMu.Unlock()
		}
	}()
	base := "http://" + addr

	waitHealthy(t, base)

	// Every query endpoint must reproduce the one-shot CLI's output
	// for the same question, byte for byte (the CLI's trailing
	// "\ncompleted in ..." timing epilogue aside).
	searchOut := runCLI(t, filepath.Join(bin, "ogdpsearch"),
		"-dir", corpus, "-query", "landings.csv", "-col", "species", "-k", "5")
	joinWant, _, found := strings.Cut(searchOut, "\nLSH (MinHash")
	if !found {
		t.Fatalf("no LSH section in ogdpsearch output:\n%s", searchOut)
	}
	_, unionWant, found := strings.Cut(searchOut, "\nunionable tables")
	if !found {
		t.Fatalf("no union section in ogdpsearch output:\n%s", searchOut)
	}
	for _, tc := range []struct {
		path string
		want string
	}{
		{"/join?table=landings.csv&col=species&k=5", joinWant},
		{"/union?table=landings.csv&k=5", "unionable tables" + unionWant},
		{"/profile?table=species.csv", runCLI(t, filepath.Join(bin, "ogdpsearch"),
			"-dir", corpus, "-query", "species.csv", "-mode", "profile")},
		{"/fd?table=species.csv", runCLI(t, filepath.Join(bin, "ogdpsearch"),
			"-dir", corpus, "-query", "species.csv", "-mode", "fd")},
		{"/search?table=landings.csv&k=5", runCLI(t, filepath.Join(bin, "ogdpsearch"),
			"-dir", corpus, "-query", "landings.csv", "-mode", "rank", "-k", "5")},
	} {
		resp, err := http.Get(base + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", tc.path, resp.StatusCode, body)
			continue
		}
		if string(body) != tc.want {
			t.Errorf("%s: body differs from CLI output:\n got %q\nwant %q", tc.path, body, tc.want)
		}
	}

	// SIGINT must drain and exit 0. Drain stderr to EOF before Wait:
	// Wait closes the pipe and would drop the shutdown log lines.
	if err := serve.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stderrDone:
	case <-time.After(15 * time.Second):
		t.Fatal("ogdpserve stderr still open 15s after SIGINT")
	}
	done := make(chan error, 1)
	go func() { done <- serve.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ogdpserve exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("ogdpserve did not exit within 15s of SIGINT")
	}
	tailMu.Lock()
	logs := tail.String()
	tailMu.Unlock()
	if !strings.Contains(logs, "shut down cleanly") {
		t.Errorf("no clean-shutdown log line:\n%s", logs)
	}
}

// runCLI runs a one-shot CLI and returns its stdout with the timing
// epilogue ("\ncompleted in ...") stripped.
func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("%s %v: %v", bin, args, err)
	}
	s := string(out)
	if i := strings.LastIndex(s, "\ncompleted in "); i >= 0 {
		s = s[:i] // the section's own trailing newline sits before i
	}
	return s
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

// writeCorpus lays down a small corpus with joinable, unionable, and
// FD structure.
func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	var species, landings strings.Builder
	species.WriteString("species_id,species,region,climate\n")
	landings.WriteString("code,species,tonnage\n")
	climates := []string{"temperate", "arctic", "tropical"}
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&species, "S%02d,name-%02d,region-%d,%s\n", i, i, i%3, climates[i%3])
		fmt.Fprintf(&landings, "C%02d,name-%02d,%d\n", i, i, 10*i)
	}
	files := []struct{ name, content string }{
		{"species.csv", species.String()},
		{"landings.csv", landings.String()},
		{"parts-2019.csv", "city,country,count\na,AA,1\nb,BB,2\nc,AA,3\n"},
		{"parts-2020.csv", "city,country,count\nd,AA,4\ne,BB,5\nf,CC,6\n"},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}
