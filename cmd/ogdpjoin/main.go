// Command ogdpjoin runs the joinability analyses of §5 over all four
// portals and prints Table 6, the expansion-ratio distribution of
// Figure 8, and the usefulness study of Tables 7-10 (labels come from
// the generator's provenance oracle, standing in for the paper's
// manual annotation).
//
// Usage:
//
//	ogdpjoin -scale 0.2 -seed 1 -jaccard 0.9 -min-unique 10
package main

import (
	"flag"
	"log"
	"os"

	"ogdp/cmd/internal/cli"
	"ogdp/internal/core"
	"ogdp/internal/gen"
	"ogdp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogdpjoin: ")

	scale := flag.Float64("scale", 0.2, "corpus scale")
	seed := flag.Int64("seed", 1, "generation seed")
	perCell := flag.Int("per-cell", 17, "labeling sample quota per size×key cell")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs, 1 = sequential; results are identical)")
	ob := cli.StandardObs().EnableDebugServer()
	flag.Parse()
	if err := ob.Start("ogdpjoin"); err != nil {
		log.Fatal(err)
	}

	sw := cli.Start()
	res := core.Run(gen.Profiles(), core.Options{
		Scale:         *scale,
		Seed:          *seed,
		MaxFDTables:   1, // FD analysis handled by ogdpfd
		SamplePerCell: *perCell,
		Workers:       *workers,
		Metrics:       ob.Registry(),
		Trace:         ob.Trace(),
		Clock:         ob.Clock(),
	})
	report.Table6(os.Stdout, res)
	report.Figure8(os.Stdout, res)
	report.Table7(os.Stdout, res)
	report.Table8(os.Stdout, res)
	report.Table9(os.Stdout, res)
	report.Table10(os.Stdout, res)
	report.PredictorReport(os.Stdout, res)
	sw.PrintCompleted(os.Stdout)
	if err := ob.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
