// Package corpus defines the storage-agnostic interface between a
// corpus of tables and the study pipeline. The paper's analyses only
// need three things from a corpus — a portal identifier, the tables
// with their dataset attribution, and the dataset records — so that is
// the whole interface. Both the synthetic generator (gen.Corpus) and
// the on-disk loader (diskcorpus.Corpus) implement Source, which lets
// core.RunPortal execute the identical study over a generated portal
// or a directory of CSV files.
//
// Optional capabilities (a provenance oracle for §5.3 labeling, a
// servable CKAN portal for the Table 1 funnel) are discovered by type
// assertion in core, not declared here: a corpus that cannot provide
// them still supports every structural analysis.
package corpus

import (
	"time"

	"ogdp/internal/table"
)

// TableMeta is one corpus table with the dataset-level facts the
// study needs. It deliberately carries no generation provenance —
// provenance-dependent analyses (oracle labeling, planted-FK
// recovery) live behind optional capabilities of the concrete type.
type TableMeta struct {
	// Table is the parsed table.
	Table *table.Table
	// DatasetID attributes the table to its dataset ("" when unknown).
	DatasetID string
	// Published is the dataset publication date (zero when unknown).
	Published time.Time
	// RawSize is the size of the table serialized as CSV, in bytes.
	RawSize int64
	// Metadata is the dataset's dictionary style
	// (ckan.MetadataStyle as int; drives Table 3).
	Metadata int
}

// Dataset is one dataset record.
type Dataset struct {
	ID        string
	Title     string
	Category  string
	Published time.Time
	// Metadata is the dictionary style (ckan.MetadataStyle as int).
	Metadata int
}

// Source is a corpus the study can run over. Implementations must
// return the same slices (same order, same contents) on every call:
// analysis indices are positions in TableMetas, and the determinism
// contract of core depends on a stable order.
type Source interface {
	// PortalID names the corpus (the portal code for generated
	// corpora, the directory name for on-disk ones).
	PortalID() string
	// TableMetas lists the corpus tables in canonical order.
	TableMetas() []TableMeta
	// DatasetMetas lists the dataset records.
	DatasetMetas() []Dataset
}

// Tables projects a source to its bare tables, in TableMetas order;
// analysis indices line up with TableMetas indices.
func Tables(s Source) []*table.Table {
	metas := s.TableMetas()
	out := make([]*table.Table, len(metas))
	for i, m := range metas {
		out[i] = m.Table
	}
	return out
}
