// Package corpus defines the storage-agnostic interface between a
// corpus of tables and the study pipeline. The paper's analyses only
// need three things from a corpus — a portal identifier, the tables
// with their dataset attribution, and the dataset records — so that is
// the whole interface. Both the synthetic generator (gen.Corpus) and
// the on-disk loader (diskcorpus.Corpus) implement Source, which lets
// core.RunPortal execute the identical study over a generated portal
// or a directory of CSV files.
//
// Optional capabilities (a provenance oracle for §5.3 labeling, a
// servable CKAN portal for the Table 1 funnel) are discovered by type
// assertion in core, not declared here: a corpus that cannot provide
// them still supports every structural analysis.
package corpus

import (
	"time"

	"ogdp/internal/table"
)

// TableMeta is one corpus table with the dataset-level facts the
// study needs. It deliberately carries no generation provenance —
// provenance-dependent analyses (oracle labeling, planted-FK
// recovery) live behind optional capabilities of the concrete type.
type TableMeta struct {
	// Table is the parsed table.
	Table *table.Table
	// DatasetID attributes the table to its dataset ("" when unknown).
	DatasetID string
	// Published is the dataset publication date (zero when unknown).
	Published time.Time
	// RawSize is the size of the table serialized as CSV, in bytes.
	RawSize int64
	// Metadata is the dataset's dictionary style
	// (ckan.MetadataStyle as int; drives Table 3).
	Metadata int
}

// Dataset is one dataset record.
type Dataset struct {
	ID        string
	Title     string
	Category  string
	Published time.Time
	// Metadata is the dictionary style (ckan.MetadataStyle as int).
	Metadata int
}

// Source is a corpus the study can run over. Implementations must
// return the same slices (same order, same contents) on every call:
// analysis indices are positions in TableMetas, and the determinism
// contract of core depends on a stable order.
type Source interface {
	// PortalID names the corpus (the portal code for generated
	// corpora, the directory name for on-disk ones).
	PortalID() string
	// TableMetas lists the corpus tables in canonical order.
	TableMetas() []TableMeta
	// DatasetMetas lists the dataset records.
	DatasetMetas() []Dataset
}

// ColumnSource is an optional capability of a Source: column-level
// access to the corpus's dictionary encodings, so consumers that run
// entirely on encoded columns (content hashing, index building, join
// search) never touch table rows — for mmap-backed corpora that keeps
// the row data unmaterialized. Discovered by type assertion, like the
// other optional capabilities; ColumnEncodings falls back to the
// table's own lazy encoder for sources without it.
type ColumnSource interface {
	// ColumnEncoding returns the dictionary encoding of column c of
	// the table at index ti (TableMetas order).
	ColumnEncoding(ti, c int) *table.Encoding
}

// ColumnEncodings returns the encodings of every column of the table
// at index ti, through the ColumnSource capability when s has it and
// the table's own lazy encoder otherwise.
func ColumnEncodings(s Source, ti int) []*table.Encoding {
	t := s.TableMetas()[ti].Table
	out := make([]*table.Encoding, t.NumCols())
	if cs, ok := s.(ColumnSource); ok {
		for c := range out {
			out[c] = cs.ColumnEncoding(ti, c)
		}
		return out
	}
	for c := range out {
		out[c] = t.Encoding(c)
	}
	return out
}

// Tables projects a source to its bare tables, in TableMetas order;
// analysis indices line up with TableMetas indices.
func Tables(s Source) []*table.Table {
	metas := s.TableMetas()
	out := make([]*table.Table, len(metas))
	for i, m := range metas {
		out[i] = m.Table
	}
	return out
}
