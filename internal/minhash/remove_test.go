package minhash

import (
	"reflect"
	"testing"
)

// set builds element hashes for a synthetic set id range.
func set(lo, hi int) []uint64 {
	out := make([]uint64, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, uint64(v)*0x9E3779B97F4A7C15)
	}
	return out
}

func TestRemoveHidesIdEverywhere(t *testing.T) {
	ix := NewIndex(64, 2)
	sigs := []Signature{
		Sketch(set(0, 100), 128),
		Sketch(set(0, 100), 128), // twin of 0: collides everywhere
		Sketch(set(50, 150), 128),
	}
	for _, s := range sigs {
		ix.Add(s)
	}
	if got := ix.Candidates(sigs[0]); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("pre-remove candidates = %v", got)
	}

	ix.Remove(1)
	if got := ix.Candidates(sigs[0]); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("candidates after remove = %v, want [0 2]", got)
	}
	for _, c := range ix.Query(sigs[0], 0) {
		if c.ID == 1 {
			t.Error("Query returned a removed id")
		}
	}
	for _, p := range ix.AllPairs(0) {
		if p[0] == 1 || p[1] == 1 {
			t.Errorf("AllPairs returned removed id in %v", p)
		}
	}

	// Ids are never reused: adding after a removal extends the sequence.
	if id := ix.Add(Sketch(set(200, 300), 128)); id != 3 {
		t.Errorf("post-remove Add assigned id %d, want 3", id)
	}
	// Unknown and repeated removals are no-ops.
	ix.Remove(-1)
	ix.Remove(99)
	ix.Remove(1)
	if got := ix.Candidates(sigs[0]); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("candidates after no-op removes = %v, want [0 2]", got)
	}
}
