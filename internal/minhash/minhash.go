// Package minhash implements MinHash signatures and LSH banding for
// approximate Jaccard search over column value sets — the
// internet-scale alternative (LSH Ensemble, Zhu et al. [35] in the
// paper) to the exact set-similarity join used in the main study. The
// study uses it to quantify what the approximation trades away: the
// ablation bench compares recall and runtime against the exact
// prefix-filter search.
package minhash

import (
	"sort"
)

// SignatureSize is the default number of MinHash permutations.
const SignatureSize = 128

// Signature is a MinHash sketch of a set.
type Signature []uint64

// hashPerm applies the i-th permutation to a base hash via a
// multiply-shift family (deterministic, no per-Signer state).
func hashPerm(h uint64, i int) uint64 {
	// Odd multipliers derived from splitmix64 of the index.
	z := uint64(i)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0x94D049BB133111EB
	z ^= z >> 27
	return (h ^ z) * (2*z + 1)
}

// Sketch builds a MinHash signature of size k from a set of 64-bit
// element hashes (e.g. a column profile's ValueHashes). An empty set
// yields a signature of all-ones maxima (never matches anything).
func Sketch(elements []uint64, k int) Signature {
	if k <= 0 {
		k = SignatureSize
	}
	sig := make(Signature, k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, h := range elements {
		for i := 0; i < k; i++ {
			if v := hashPerm(h, i); v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// Similarity estimates the Jaccard similarity of the sketched sets as
// the fraction of agreeing signature positions.
func Similarity(a, b Signature) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(a))
}

// Index is an LSH index over signatures: signatures are split into
// bands of rows; two signatures collide when any band hashes equally.
// Bands and rows trade recall against candidate volume: with b bands
// of r rows, a pair of similarity s collides with probability
// 1-(1-s^r)^b.
type Index struct {
	bands, rows int
	sigs        []Signature
	tables      map[uint64][]int // band-hash -> signature ids

	// removed tombstones ids deleted by Remove. Dead ids stay in the
	// band tables (their lists are shared and ascending; splicing every
	// list would cost a full scan) and are filtered at read time; ids
	// are never reused, so Add after Remove keeps ids stable.
	removed map[int]struct{}
}

// NewIndex creates an LSH index. bands*rows must not exceed the
// signature size used with Add.
func NewIndex(bands, rows int) *Index {
	return &Index{bands: bands, rows: rows, tables: make(map[uint64][]int)}
}

// Add inserts a signature and returns its id. Ids are assigned
// sequentially and never reused, so an index maintained incrementally
// (Add/Remove) keeps every surviving id stable.
func (ix *Index) Add(sig Signature) int {
	id := len(ix.sigs)
	ix.sigs = append(ix.sigs, sig)
	for b := 0; b < ix.bands; b++ {
		ix.tables[ix.bandHash(sig, b)] = append(ix.tables[ix.bandHash(sig, b)], id)
	}
	return id
}

// Remove deletes an indexed signature: the id no longer appears in
// Candidates, Query, or AllPairs results. Removing an unknown id is a
// no-op.
func (ix *Index) Remove(id int) {
	if id < 0 || id >= len(ix.sigs) {
		return
	}
	if ix.removed == nil {
		ix.removed = make(map[int]struct{})
	}
	ix.removed[id] = struct{}{}
	ix.sigs[id] = nil // the signature itself is dead weight now
}

// alive reports whether an id is still indexed.
func (ix *Index) alive(id int) bool {
	_, dead := ix.removed[id]
	return !dead
}

func (ix *Index) bandHash(sig Signature, band int) uint64 {
	const prime64 = 1099511628211
	var h uint64 = 14695981039346656037
	h ^= uint64(band)
	h *= prime64
	for r := band * ix.rows; r < (band+1)*ix.rows && r < len(sig); r++ {
		h ^= sig[r]
		h *= prime64
	}
	return h
}

// Candidates returns the ids of indexed signatures that collide with
// sig in at least one band, in ascending id order, without computing
// similarity estimates. This is the raw LSH candidate set: the caller
// owns verification (exact overlap, estimate filtering), which is how
// the ranked search engine uses banding — candidates are generated
// here in sublinear time and verified against the true value sets
// afterwards.
func (ix *Index) Candidates(sig Signature) []int {
	seen := map[int]struct{}{}
	var out []int
	for b := 0; b < ix.bands; b++ {
		for _, id := range ix.tables[ix.bandHash(sig, b)] {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			if ix.alive(id) {
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Candidate is a query result.
type Candidate struct {
	ID int
	// Estimate is the signature-based Jaccard estimate.
	Estimate float64
}

// Query returns indexed signatures that collide with sig in at least
// one band and whose estimated similarity is at least minSim, sorted
// by estimate descending.
func (ix *Index) Query(sig Signature, minSim float64) []Candidate {
	seen := map[int]struct{}{}
	var out []Candidate
	for b := 0; b < ix.bands; b++ {
		for _, id := range ix.tables[ix.bandHash(sig, b)] {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			if !ix.alive(id) {
				continue
			}
			est := Similarity(sig, ix.sigs[id])
			if est >= minSim {
				out = append(out, Candidate{ID: id, Estimate: est})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate > out[j].Estimate {
			return true
		}
		if out[i].Estimate < out[j].Estimate {
			return false
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// AllPairs reports every distinct indexed pair that collides in some
// band with estimated similarity ≥ minSim; pairs are (smaller id,
// larger id), sorted.
func (ix *Index) AllPairs(minSim float64) [][2]int {
	seen := map[[2]int]struct{}{}
	var out [][2]int
	for _, ids := range ix.tables {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if a == b || !ix.alive(a) || !ix.alive(b) {
					continue
				}
				if b < a {
					a, b = b, a
				}
				key := [2]int{a, b}
				if _, ok := seen[key]; ok {
					continue
				}
				seen[key] = struct{}{}
				if Similarity(ix.sigs[a], ix.sigs[b]) >= minSim {
					out = append(out, key)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
