package minhash

import (
	"math"
	"math/rand"
	"testing"

	"ogdp/internal/table"
)

// sketchSet adapts the tests' map-based element sets to Sketch's
// hash-slice input.
func sketchSet(m map[uint64]int, k int) Signature {
	hs := make([]uint64, 0, len(m))
	for h := range m {
		hs = append(hs, h)
	}
	return Sketch(hs, k)
}

// setOf builds a hashed element set from strings.
func setOf(vals ...string) map[uint64]int {
	m := make(map[uint64]int, len(vals))
	for _, v := range vals {
		m[table.HashValue(v)]++
	}
	return m
}

func randomSets(rng *rand.Rand, n, overlap int) (a, b map[uint64]int) {
	a = make(map[uint64]int)
	b = make(map[uint64]int)
	for i := 0; i < overlap; i++ {
		h := rng.Uint64()
		a[h] = 1
		b[h] = 1
	}
	for len(a) < n {
		a[rng.Uint64()] = 1
	}
	for len(b) < n {
		b[rng.Uint64()] = 1
	}
	return a, b
}

func TestSimilarityEstimatesJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, wantJ := range []float64{0.0, 0.3, 0.5, 0.9, 1.0} {
		n := 500
		overlap := int(wantJ * float64(n) * 2 / (1 + wantJ)) // |A∩B| for |A|=|B|=n
		a, b := randomSets(rng, n, overlap)
		trueJ := jaccardExact(a, b)
		est := Similarity(sketchSet(a, 256), sketchSet(b, 256))
		if math.Abs(est-trueJ) > 0.12 {
			t.Errorf("target %g: estimate %.3f vs true %.3f", wantJ, est, trueJ)
		}
	}
}

func jaccardExact(a, b map[uint64]int) float64 {
	inter := 0
	for h := range a {
		if _, ok := b[h]; ok {
			inter++
		}
	}
	u := len(a) + len(b) - inter
	if u == 0 {
		return 0
	}
	return float64(inter) / float64(u)
}

func TestIdenticalSetsSimilarityOne(t *testing.T) {
	s := setOf("a", "b", "c", "d", "e")
	if got := Similarity(sketchSet(s, 64), sketchSet(s, 64)); got != 1 {
		t.Errorf("identical sets estimate %g", got)
	}
}

func TestEmptyAndMismatched(t *testing.T) {
	empty := sketchSet(nil, 32)
	s := sketchSet(setOf("a"), 32)
	if Similarity(empty, s) != 0 {
		t.Error("empty vs non-empty should estimate 0")
	}
	if Similarity(s, sketchSet(setOf("a"), 64)) != 0 {
		t.Error("mismatched sizes should estimate 0")
	}
	if Similarity(nil, nil) != 0 {
		t.Error("nil signatures should estimate 0")
	}
}

func TestSketchDeterministic(t *testing.T) {
	s := setOf("x", "y", "z")
	a := sketchSet(s, 64)
	b := sketchSet(s, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sketch is not deterministic")
		}
	}
}

func TestIndexFindsHighSimilarityPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ix := NewIndex(16, 8) // 16 bands × 8 rows = 128 positions

	// Two near-identical sets plus unrelated noise sets.
	base, near := randomSets(rng, 300, 285) // J ≈ 0.9
	ids := []int{ix.Add(sketchSet(base, 128)), ix.Add(sketchSet(near, 128))}
	for i := 0; i < 20; i++ {
		noise, _ := randomSets(rng, 300, 0)
		ix.Add(sketchSet(noise, 128))
	}

	cands := ix.Query(sketchSet(base, 128), 0.8)
	foundSelf, foundNear := false, false
	for _, c := range cands {
		if c.ID == ids[0] {
			foundSelf = true
		}
		if c.ID == ids[1] {
			foundNear = true
		}
	}
	if !foundSelf || !foundNear {
		t.Errorf("high-similarity pair missed: %+v", cands)
	}

	pairs := ix.AllPairs(0.8)
	want := [2]int{ids[0], ids[1]}
	ok := false
	for _, p := range pairs {
		if p == want {
			ok = true
		}
	}
	if !ok {
		t.Errorf("AllPairs missed %v: %v", want, pairs)
	}
}

func TestIndexRejectsLowSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := NewIndex(16, 8)
	var sigs []Signature
	for i := 0; i < 30; i++ {
		s, _ := randomSets(rng, 200, 0)
		sig := sketchSet(s, 128)
		sigs = append(sigs, sig)
		ix.Add(sig)
	}
	for _, p := range ix.AllPairs(0.8) {
		t.Errorf("unrelated sets reported similar: %v (est %.2f)", p, Similarity(sigs[p[0]], sigs[p[1]]))
	}
}

// TestRecallAgainstExact measures LSH recall of true J ≥ 0.9 pairs on
// a synthetic workload; the banded index must recover nearly all.
func TestRecallAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var sets []map[uint64]int
	// 15 clusters of 3 near-duplicate sets each.
	for c := 0; c < 15; c++ {
		base, _ := randomSets(rng, 400, 0)
		for v := 0; v < 3; v++ {
			s := make(map[uint64]int, len(base))
			for h := range base {
				s[h] = 1
			}
			// Perturb ~1.5% of elements (deletions differ per variant
			// because of map iteration order, so the effective distance
			// between two variants is about twice this).
			drop := 6
			for h := range s {
				if drop == 0 {
					break
				}
				delete(s, h)
				drop--
			}
			for i := 0; i < 6; i++ {
				s[rng.Uint64()] = 1
			}
			sets = append(sets, s)
		}
	}
	ix := NewIndex(32, 4)
	for _, s := range sets {
		ix.Add(sketchSet(s, 128))
	}
	got := map[[2]int]bool{}
	for _, p := range ix.AllPairs(0.85) {
		got[p] = true
	}
	trueHigh, hit := 0, 0
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if jaccardExact(sets[i], sets[j]) >= 0.9 {
				trueHigh++
				if got[[2]int{i, j}] {
					hit++
				}
			}
		}
	}
	if trueHigh == 0 {
		t.Fatal("workload has no true high-similarity pairs")
	}
	recall := float64(hit) / float64(trueHigh)
	if recall < 0.9 {
		t.Errorf("LSH recall %.2f (%d/%d), want >= 0.9", recall, hit, trueHigh)
	}
}

func BenchmarkSketch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s, _ := randomSets(rng, 1000, 0)
	hs := make([]uint64, 0, len(s))
	for h := range s {
		hs = append(hs, h)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sketch(hs, 128)
	}
}

func BenchmarkQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ix := NewIndex(16, 8)
	var probe Signature
	for i := 0; i < 500; i++ {
		s, _ := randomSets(rng, 300, 0)
		sig := sketchSet(s, 128)
		if i == 0 {
			probe = sig
		}
		ix.Add(sig)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(probe, 0.8)
	}
}

// TestCandidatesMatchQueryIDs pins the raw candidate set: Candidates
// must return exactly the ids Query would consider (minSim 0), in
// ascending order, without similarity filtering.
func TestCandidatesMatchQueryIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := NewIndex(16, 8)
	var sigs []Signature
	for i := 0; i < 40; i++ {
		a, _ := randomSets(rng, 60, 0)
		sig := sketchSet(a, 128)
		ix.Add(sig)
		sigs = append(sigs, sig)
	}
	for i, sig := range sigs {
		got := ix.Candidates(sig)
		want := map[int]bool{}
		for _, c := range ix.Query(sig, 0) {
			want[c.ID] = true
		}
		if len(got) != len(want) {
			t.Fatalf("sig %d: Candidates = %v, Query ids = %v", i, got, want)
		}
		for j, id := range got {
			if !want[id] {
				t.Errorf("sig %d: candidate %d not in Query results", i, id)
			}
			if j > 0 && got[j-1] >= id {
				t.Errorf("sig %d: candidates not strictly ascending: %v", i, got)
			}
		}
	}
}

// TestCandidatesRecallIdentical pins that an indexed signature always
// collides with itself (every band agrees).
func TestCandidatesRecallIdentical(t *testing.T) {
	a := setOf("x", "y", "z", "w")
	ix := NewIndex(16, 8)
	sig := sketchSet(a, 128)
	id := ix.Add(sig)
	got := ix.Candidates(sig)
	found := false
	for _, c := range got {
		if c == id {
			found = true
		}
	}
	if !found {
		t.Errorf("identical signature not among candidates: %v", got)
	}
}
