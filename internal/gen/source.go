package gen

import (
	"ogdp/internal/ckan"
	"ogdp/internal/corpus"
	"ogdp/internal/table"
)

// PortalID implements corpus.Source.
func (c *Corpus) PortalID() string { return c.PortalName }

// TableMetas implements corpus.Source: the generated tables in
// generation order, each carrying its dataset's publication date and
// metadata style.
func (c *Corpus) TableMetas() []corpus.TableMeta {
	metaStyle := make(map[string]int, len(c.Datasets))
	for _, d := range c.Datasets {
		metaStyle[d.ID] = d.Metadata
	}
	out := make([]corpus.TableMeta, len(c.Metas))
	for i, m := range c.Metas {
		out[i] = corpus.TableMeta{
			Table:     m.Table,
			DatasetID: m.Dataset,
			Published: m.Published,
			RawSize:   m.RawSize,
			Metadata:  metaStyle[m.Dataset],
		}
	}
	return out
}

// DatasetMetas implements corpus.Source.
func (c *Corpus) DatasetMetas() []corpus.Dataset {
	out := make([]corpus.Dataset, len(c.Datasets))
	for i, d := range c.Datasets {
		out[i] = corpus.Dataset{
			ID:        d.ID,
			Title:     d.Title,
			Category:  d.Category,
			Published: d.Published,
			Metadata:  d.Metadata,
		}
	}
	return out
}

// ColumnEncoding implements corpus.ColumnSource: column-level access
// to the corpus without materializing rows. For corpora loaded from
// colstore files the encodings alias the read-only mapping.
func (c *Corpus) ColumnEncoding(ti, col int) *table.Encoding {
	return c.Metas[ti].Table.Encoding(col)
}

// ServablePortal is the optional funnel capability core looks for: a
// generated corpus can serialize itself into a servable CKAN portal
// with the profile's broken-resource rates, so the Table 1
// acquisition funnel is measurable over live HTTP.
func (c *Corpus) ServablePortal(seed int64) *ckan.Portal {
	return BuildPortal(c, seed)
}
