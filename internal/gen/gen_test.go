package gen

import (
	"testing"

	"ogdp/internal/classify"
	"ogdp/internal/fd"
	"ogdp/internal/join"
	"ogdp/internal/keys"
	"ogdp/internal/table"
	"ogdp/internal/union"
	"ogdp/internal/values"
)

const (
	testScale = 0.25
	testSeed  = 7
)

func testCorpus(t *testing.T, prof PortalProfile) *Corpus {
	t.Helper()
	return Generate(prof, testScale, testSeed)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(CA(), 0.1, 3)
	b := Generate(CA(), 0.1, 3)
	if len(a.Metas) != len(b.Metas) {
		t.Fatalf("table counts differ: %d vs %d", len(a.Metas), len(b.Metas))
	}
	for i := range a.Metas {
		ta, tb := a.Metas[i].Table, b.Metas[i].Table
		if ta.Name != tb.Name || ta.NumRows() != tb.NumRows() || ta.NumCols() != tb.NumCols() {
			t.Fatalf("table %d differs: %v vs %v", i, ta, tb)
		}
		for c := range ta.Data {
			for r := range ta.Data[c] {
				if ta.Data[c][r] != tb.Data[c][r] {
					t.Fatalf("cell differs at table %d col %d row %d", i, c, r)
				}
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := Generate(CA(), 0.1, 3)
	b := Generate(CA(), 0.1, 4)
	same := len(a.Metas) == len(b.Metas)
	if same {
		for i := range a.Metas {
			if a.Metas[i].Table.NumRows() != b.Metas[i].Table.NumRows() {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical corpora shapes")
	}
}

func TestCorpusBasicShape(t *testing.T) {
	for _, prof := range Profiles() {
		c := testCorpus(t, prof)
		if len(c.Datasets) == 0 || len(c.Metas) == 0 {
			t.Fatalf("%s: empty corpus", prof.Name)
		}
		if float64(len(c.Metas)) < 1.2*float64(len(c.Datasets)) && prof.Name != "US" {
			t.Errorf("%s: tables/dataset = %.2f, want > 1.2",
				prof.Name, float64(len(c.Metas))/float64(len(c.Datasets)))
		}
		for i, m := range c.Metas {
			if m.Table.NumRows() == 0 || m.Table.NumCols() == 0 {
				t.Errorf("%s: table %d is empty", prof.Name, i)
			}
			if len(m.Cols) != m.Table.NumCols() {
				t.Errorf("%s: table %d provenance arity mismatch", prof.Name, i)
			}
			if m.Dataset == "" || m.Topic == "" || m.RawSize == 0 {
				t.Errorf("%s: table %d missing meta: %+v", prof.Name, i, m)
			}
		}
	}
}

func TestDenormalizedTablesHaveFDs(t *testing.T) {
	c := testCorpus(t, CA())
	checked, withFD := 0, 0
	for _, m := range c.Metas {
		if m.Style != StyleDenormalized || m.Table.NumCols() > 20 || m.Table.NumRows() > 5000 {
			continue
		}
		checked++
		if fd.HasNontrivialFD(m.Table, fd.MaxLHS) {
			withFD++
		}
	}
	if checked == 0 {
		t.Skip("no small denormalized tables in sample")
	}
	if frac := float64(withFD) / float64(checked); frac < 0.5 {
		t.Errorf("only %.0f%% of denormalized tables have FDs, want most", frac*100)
	}
}

func TestKeyScarcityOrdering(t *testing.T) {
	// The US portal publishes tables with key columns more often than SG
	// (paper §4.1: 33%% vs 58%% of tables lack a single key).
	noKeyFrac := func(c *Corpus) float64 {
		n := 0
		for _, m := range c.Metas {
			if !keys.HasKeyColumn(m.Table) {
				n++
			}
		}
		return float64(n) / float64(len(c.Metas))
	}
	sg := noKeyFrac(testCorpus(t, SG()))
	us := noKeyFrac(testCorpus(t, US()))
	if us >= sg {
		t.Errorf("no-key fraction: US %.2f should be below SG %.2f", us, sg)
	}
}

func TestNullProfiles(t *testing.T) {
	// SG is nearly null-free; CA has many null-bearing columns (§3.3).
	nullColFrac := func(c *Corpus) float64 {
		cols, withNull := 0, 0
		for _, m := range c.Metas {
			for ci := range m.Table.Cols {
				cols++
				if m.Table.Profile(ci).Nulls > 0 {
					withNull++
				}
			}
		}
		return float64(withNull) / float64(cols)
	}
	sg := nullColFrac(testCorpus(t, SG()))
	ca := nullColFrac(testCorpus(t, CA()))
	if sg > 0.2 {
		t.Errorf("SG null column fraction = %.2f, want < 0.2", sg)
	}
	if ca < 0.3 {
		t.Errorf("CA null column fraction = %.2f, want > 0.3", ca)
	}
}

func TestUnionableGroupsExist(t *testing.T) {
	c := testCorpus(t, UK())
	ua := union.Find(c.Tables())
	frac := float64(ua.UnionableTables()) / float64(len(c.Metas))
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("UK unionable fraction = %.2f, want the paper's band (~0.77)", frac)
	}
}

func TestJoinabilityBand(t *testing.T) {
	for _, prof := range Profiles() {
		c := testCorpus(t, prof)
		ja := join.Find(c.Tables(), join.Options{})
		joinable := map[int]bool{}
		for _, p := range ja.Pairs {
			joinable[p.T1] = true
			joinable[p.T2] = true
		}
		frac := float64(len(joinable)) / float64(len(c.Metas))
		// The paper reports 48.4%..66.4%; allow slack for sampling noise
		// at small scale.
		if frac < 0.30 || frac > 0.85 {
			t.Errorf("%s: joinable table fraction = %.2f, outside the plausible band", prof.Name, frac)
		}
	}
}

func TestOracleLabelsPlantedJoins(t *testing.T) {
	c := testCorpus(t, CA())
	oracle := Truth(c)
	ja := join.Find(c.Tables(), join.Options{})

	var plantedUseful, crossTopic int
	for _, p := range ja.Pairs {
		l := oracle.LabelJoin(p)
		m1, m2 := c.Metas[p.T1], c.Metas[p.T2]
		c1, c2 := m1.Cols[p.C1], m2.Cols[p.C2]
		// Master-aspect joins within one dataset on the entity key must
		// be useful.
		if m1.Dataset == m2.Dataset && c1.Role == RoleEntityKey && c2.Role == RoleEntityKey {
			plantedUseful++
			if l != classify.LabelUseful {
				t.Errorf("intra-dataset entity-key join labeled %v", l)
			}
		}
		// Cross-category pairs must never be useful.
		if m1.Category != m2.Category {
			crossTopic++
			if l == classify.LabelUseful &&
				!(c1.Role == RoleDateKey && c2.Role == RoleDateKey && m1.EventClass == m2.EventClass) {
				t.Errorf("cross-category join labeled useful: %v ⨝ %v", m1.Topic, m2.Topic)
			}
		}
	}
	if plantedUseful == 0 {
		t.Error("no intra-dataset entity-key joins found; generator should plant them")
	}
	if crossTopic == 0 {
		t.Error("no cross-category joinable pairs found; generator should produce accidental joins")
	}
}

func TestOracleEventStatsUseful(t *testing.T) {
	c := testCorpus(t, US())
	oracle := Truth(c)
	ja := join.Find(c.Tables(), join.Options{})
	found := false
	for _, p := range ja.Pairs {
		m1, m2 := c.Metas[p.T1], c.Metas[p.T2]
		if m1.Style == StyleEventStats && m2.Style == StyleEventStats &&
			m1.EventClass == m2.EventClass && m1.Dataset != m2.Dataset &&
			m1.Cols[p.C1].Role == RoleDateKey && m2.Cols[p.C2].Role == RoleDateKey {
			found = true
			if oracle.LabelJoin(p) != classify.LabelUseful {
				t.Errorf("same-event date-key join should be useful")
			}
		}
	}
	if !found {
		t.Error("no inter-dataset event-stats date joins found")
	}
}

func TestOracleUnionLabels(t *testing.T) {
	c := testCorpus(t, US())
	oracle := Truth(c)
	ua := union.Find(c.Tables())
	var useful, accidental int
	for _, g := range ua.Groups {
		for i := 1; i < len(g.Tables); i++ {
			l := oracle.LabelUnion(g.Tables[0], g.Tables[i])
			if l == classify.LabelUseful {
				useful++
			} else {
				accidental++
			}
		}
	}
	if useful == 0 {
		t.Error("no useful unions in US corpus")
	}
	// The paper: union pairs are overwhelmingly useful.
	if useful < accidental {
		t.Errorf("useful unions (%d) should dominate accidental (%d)", useful, accidental)
	}
}

func TestDuplicateTablesAreCopies(t *testing.T) {
	c := testCorpus(t, US())
	found := false
	for _, m := range c.Metas {
		if m.Style != StyleDuplicate {
			continue
		}
		found = true
		var src *TableMeta
		for _, o := range c.Metas {
			if o.Table.Name == m.DuplicateOf && o.Style != StyleDuplicate {
				src = o
				break
			}
		}
		if src == nil {
			t.Errorf("duplicate without source: %s", m.DuplicateOf)
			continue
		}
		if src.Table.SchemaKey() != m.Table.SchemaKey() {
			t.Error("duplicate schema differs from source")
		}
		if src.Dataset == m.Dataset {
			t.Error("duplicate republished under the same dataset")
		}
	}
	if !found {
		t.Skip("no duplicates at this scale/seed")
	}
}

func TestPartitionedTablesShape(t *testing.T) {
	c := testCorpus(t, CA())
	for _, m := range c.Metas {
		if m.Style != StylePartitioned {
			continue
		}
		sp := m.Table.ColumnIndex("species")
		if sp < 0 {
			t.Fatalf("partitioned table lacks species column: %v", m.Table.Cols)
		}
		p := m.Table.Profile(sp)
		if p.IsKey() {
			t.Error("partition key must not be a perfect key (Total/Other rows)")
		}
		hasTotal := false
		for _, v := range m.Table.Column(sp) {
			if v == "Total" {
				hasTotal = true
				break
			}
		}
		if !hasTotal {
			t.Error("partitioned table lacks Total aggregate rows")
		}
		return
	}
	t.Skip("no partitioned tables at this scale/seed")
}

func TestStandardizedSchemaSG(t *testing.T) {
	c := testCorpus(t, SG())
	n := 0
	for _, m := range c.Metas {
		if m.Style != StyleStandardized {
			continue
		}
		n++
		if m.Table.ColumnIndex("level_1") < 0 || m.Table.ColumnIndex("year") < 0 || m.Table.ColumnIndex("value") < 0 {
			t.Errorf("standardized table columns = %v", m.Table.Cols)
		}
	}
	if n == 0 {
		t.Error("SG corpus has no standardized tables")
	}
}

func TestMetadataDistribution(t *testing.T) {
	sg := testCorpus(t, SG())
	for _, d := range sg.Datasets {
		if d.Metadata != 1 {
			t.Fatalf("SG dataset %s metadata = %d, want structured (1)", d.ID, d.Metadata)
		}
	}
	us := testCorpus(t, US())
	for _, d := range us.Datasets {
		if d.Metadata == 1 {
			t.Fatalf("US dataset %s has structured metadata, paper says 0%%", d.ID)
		}
	}
}

func TestIncrementalIDColumns(t *testing.T) {
	c := testCorpus(t, US())
	bare, incremental := 0, 0
	for _, m := range c.Metas {
		for ci, info := range m.Cols {
			if info.Role != RoleSequentialID {
				continue
			}
			// Prefixed ids are strings; bare ids should mostly type as
			// incremental ints (dirty small tables can fall to integer).
			if v := m.Table.Data[ci][0]; values.KindOf(v) == values.KindInt {
				bare++
				if m.Table.Profile(ci).Type == values.ColIncrementalInt {
					incremental++
				}
			}
		}
	}
	if bare == 0 {
		t.Fatal("no bare sequential id columns found")
	}
	if frac := float64(incremental) / float64(bare); frac < 0.7 {
		t.Errorf("only %.0f%% of bare ids typed incremental", frac*100)
	}
}

func TestTablesProjection(t *testing.T) {
	c := testCorpus(t, SG())
	tabs := c.Tables()
	if len(tabs) != len(c.Metas) {
		t.Fatal("Tables() length mismatch")
	}
	for i := range tabs {
		if tabs[i] != c.MetaByTable(i).Table {
			t.Fatal("Tables() order mismatch")
		}
	}
}

var benchSink *Corpus

func BenchmarkGenerateCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = Generate(CA(), 0.1, int64(i))
	}
}

func sampleTables(c *Corpus, max int) []*table.Table {
	tabs := c.Tables()
	if len(tabs) > max {
		tabs = tabs[:max]
	}
	return tabs
}

func BenchmarkJoinOverCorpus(b *testing.B) {
	c := Generate(CA(), 0.15, 1)
	tabs := sampleTables(c, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join.Find(tabs, join.Options{})
	}
}

// TestIntegrationGrade pins the ranked-search ground truth: grades
// are in range, zero on the diagonal, symmetric, and consistent with
// the pairwise labels they are derived from.
func TestIntegrationGrade(t *testing.T) {
	c := testCorpus(t, CA())
	oracle := Truth(c)
	n := len(c.Metas)
	counts := [3]int{}
	for q := 0; q < n; q++ {
		for p := 0; p < n; p++ {
			g := oracle.IntegrationGrade(q, p)
			if g < 0 || g > 2 {
				t.Fatalf("grade [%d][%d] = %d out of range", q, p, g)
			}
			counts[g]++
			if q == p && g != 0 {
				t.Errorf("self-grade [%d] = %d", q, g)
			}
			if back := oracle.IntegrationGrade(p, q); back != g {
				t.Errorf("asymmetric grade: [%d][%d]=%d but [%d][%d]=%d", q, p, g, p, q, back)
			}
		}
	}
	if counts[2] == 0 {
		t.Error("no useful pairs graded 2; generator plants them")
	}
	if counts[0] == 0 {
		t.Error("no irrelevant pairs graded 0")
	}
	// A planted useful join must always lift the pair to grade 2.
	ja := join.Find(c.Tables(), join.Options{})
	for _, p := range ja.Pairs {
		if oracle.LabelJoin(p) == classify.LabelUseful {
			if g := oracle.IntegrationGrade(p.T1, p.T2); g != 2 {
				t.Errorf("useful join pair (%d,%d) graded %d", p.T1, p.T2, g)
			}
		}
	}
}
