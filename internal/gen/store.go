package gen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ogdp/internal/ckan"
	"ogdp/internal/csvio"
	"ogdp/internal/table"
)

// On-disk corpus layout: one CSV file per table, a datasets.json
// manifest (dataset ids, titles, publication dates, metadata styles —
// enough for the generic diskcorpus loader), and a provenance.json
// recording the full generation provenance (styles, topics, column
// roles, entity pools). LoadCorpus reconstructs a *Corpus from the
// provenance that is analysis-equivalent to the generated original:
// running the study over it yields the identical PortalResult.
const (
	// ManifestFile is the generic dataset manifest read by diskcorpus.
	ManifestFile = "datasets.json"
	// ProvenanceFile is the full-provenance manifest read by LoadCorpus.
	ProvenanceFile = "provenance.json"
)

// ManifestDataset is one datasets.json entry.
type ManifestDataset struct {
	ID        string    `json:"id"`
	Title     string    `json:"title"`
	Category  string    `json:"category"`
	Published time.Time `json:"published"`
	Metadata  string    `json:"metadata_style"`
	Tables    []string  `json:"tables"`
}

// provCorpus is the provenance.json schema.
type provCorpus struct {
	Portal   string        `json:"portal"`
	Profile  string        `json:"profile"`
	Datasets []provDataset `json:"datasets"`
	Tables   []provTable   `json:"tables"`
}

type provDataset struct {
	ID        string    `json:"id"`
	Title     string    `json:"title"`
	Category  string    `json:"category"`
	Published time.Time `json:"published"`
	Metadata  int       `json:"metadata_style"`
}

type provTable struct {
	File         string    `json:"file"`
	Dataset      string    `json:"dataset"`
	DatasetTitle string    `json:"dataset_title"`
	Topic        string    `json:"topic"`
	Category     string    `json:"category"`
	Style        int       `json:"style"`
	EventClass   string    `json:"event_class,omitempty"`
	DuplicateOf  string    `json:"duplicate_of,omitempty"`
	Published    time.Time `json:"published"`
	RawSize      int64     `json:"raw_size"`
	Cols         []provCol `json:"cols"`
}

type provCol struct {
	Name string `json:"name"`
	Role int    `json:"role"`
	Pool string `json:"pool,omitempty"`
}

// SaveStats summarizes what SaveCorpus wrote.
type SaveStats struct {
	Datasets int
	Tables   int
	Bytes    int64
}

// SaveCorpus writes a corpus to dir: one CSV per table plus the
// datasets.json and provenance.json manifests. The directory is
// created if needed.
func SaveCorpus(dir string, c *Corpus) (SaveStats, error) {
	var st SaveStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return st, err
	}

	byDataset := map[string][]string{}
	prov := provCorpus{Portal: c.PortalName, Profile: c.Profile.Name}
	for _, m := range c.Metas {
		if err := os.WriteFile(filepath.Join(dir, m.Table.Name), csvio.Bytes(m.Table), 0o644); err != nil {
			return st, err
		}
		byDataset[m.Dataset] = append(byDataset[m.Dataset], m.Table.Name)
		st.Tables++
		st.Bytes += m.RawSize

		pt := provTable{
			File:         m.Table.Name,
			Dataset:      m.Dataset,
			DatasetTitle: m.DatasetTitle,
			Topic:        m.Topic,
			Category:     m.Category,
			Style:        int(m.Style),
			EventClass:   m.EventClass,
			DuplicateOf:  m.DuplicateOf,
			Published:    m.Published,
			RawSize:      m.RawSize,
		}
		for _, ci := range m.Cols {
			pt.Cols = append(pt.Cols, provCol{Name: ci.Name, Role: int(ci.Role), Pool: ci.Pool})
		}
		prov.Tables = append(prov.Tables, pt)
	}

	manifest := make([]ManifestDataset, 0, len(c.Datasets))
	for _, d := range c.Datasets {
		manifest = append(manifest, ManifestDataset{
			ID:        d.ID,
			Title:     d.Title,
			Category:  d.Category,
			Published: d.Published,
			Metadata:  ckan.MetadataStyle(d.Metadata).String(),
			Tables:    byDataset[d.ID],
		})
		prov.Datasets = append(prov.Datasets, provDataset{
			ID:        d.ID,
			Title:     d.Title,
			Category:  d.Category,
			Published: d.Published,
			Metadata:  d.Metadata,
		})
	}
	st.Datasets = len(manifest)

	if err := writeJSON(filepath.Join(dir, ManifestFile), manifest); err != nil {
		return st, err
	}
	if err := writeJSON(filepath.Join(dir, ProvenanceFile), prov); err != nil {
		return st, err
	}
	return st, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCorpus reads a corpus saved by SaveCorpus back from dir,
// reconstructing the full generation provenance from provenance.json.
// Tables are reparsed with the cleaning pipeline disabled
// (KeepEmptyTrailingColumns, no wide-table cutoff) so the cells
// roundtrip exactly; the result is analysis-equivalent to the corpus
// that was saved.
func LoadCorpus(dir string) (*Corpus, error) {
	data, err := os.ReadFile(filepath.Join(dir, ProvenanceFile))
	if err != nil {
		return nil, fmt.Errorf("gen: loading corpus: %w", err)
	}
	var prov provCorpus
	if err := json.Unmarshal(data, &prov); err != nil {
		return nil, fmt.Errorf("gen: parsing %s: %w", ProvenanceFile, err)
	}

	c := &Corpus{PortalName: prov.Portal}
	if p, ok := ProfileByName(prov.Profile); ok {
		c.Profile = p
	}
	for _, d := range prov.Datasets {
		c.Datasets = append(c.Datasets, DatasetMeta{
			ID:        d.ID,
			Title:     d.Title,
			Category:  d.Category,
			Published: d.Published,
			Metadata:  d.Metadata,
		})
	}
	for _, pt := range prov.Tables {
		t, err := loadTable(dir, pt.File)
		if err != nil {
			return nil, err
		}
		t.DatasetID = pt.Dataset
		if got, want := t.NumCols(), len(pt.Cols); got != want {
			return nil, fmt.Errorf("gen: %s: %d columns on disk, %d in provenance", pt.File, got, want)
		}
		m := &TableMeta{
			Table:        t,
			Dataset:      pt.Dataset,
			DatasetTitle: pt.DatasetTitle,
			Topic:        pt.Topic,
			Category:     pt.Category,
			Style:        TableStyle(pt.Style),
			EventClass:   pt.EventClass,
			DuplicateOf:  pt.DuplicateOf,
			Published:    pt.Published,
			RawSize:      pt.RawSize,
		}
		for _, pc := range pt.Cols {
			m.Cols = append(m.Cols, ColumnInfo{Name: pc.Name, Role: ColumnRole(pc.Role), Pool: pc.Pool})
		}
		c.Metas = append(c.Metas, m)
	}
	return c, nil
}

// loadTable reparses one saved table without the cleaning pipeline:
// the file was written by csvio.Write from an already-clean table, so
// header inference must not rename columns, drop all-null trailing
// columns, or reject wide tables.
func loadTable(dir, file string) (*table.Table, error) {
	body, err := os.ReadFile(filepath.Join(dir, file))
	if err != nil {
		return nil, fmt.Errorf("gen: loading corpus table: %w", err)
	}
	t, err := csvio.ReadWith(file, strings.NewReader(string(body)), csvio.Options{
		KeepEmptyTrailingColumns: true,
		MaxColumns:               -1,
	})
	if err != nil {
		return nil, fmt.Errorf("gen: parsing %s: %w", file, err)
	}
	return t, nil
}
