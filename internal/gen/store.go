package gen

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ogdp/internal/ckan"
	"ogdp/internal/colstore"
	"ogdp/internal/csvio"
	"ogdp/internal/parallel"
	"ogdp/internal/table"
)

// On-disk corpus layout: one CSV file per table, a datasets.json
// manifest (dataset ids, titles, publication dates, metadata styles —
// enough for the generic diskcorpus loader), and a provenance.json
// recording the full generation provenance (styles, topics, column
// roles, entity pools). LoadCorpus reconstructs a *Corpus from the
// provenance that is analysis-equivalent to the generated original:
// running the study over it yields the identical PortalResult.
const (
	// ManifestFile is the generic dataset manifest read by diskcorpus.
	ManifestFile = "datasets.json"
	// ProvenanceFile is the full-provenance manifest read by LoadCorpus.
	ProvenanceFile = "provenance.json"
)

// ManifestDataset is one datasets.json entry.
type ManifestDataset struct {
	ID        string    `json:"id"`
	Title     string    `json:"title"`
	Category  string    `json:"category"`
	Published time.Time `json:"published"`
	Metadata  string    `json:"metadata_style"`
	Tables    []string  `json:"tables"`
}

// provCorpus is the provenance.json schema.
type provCorpus struct {
	Portal   string        `json:"portal"`
	Profile  string        `json:"profile"`
	Datasets []provDataset `json:"datasets"`
	Tables   []provTable   `json:"tables"`
}

type provDataset struct {
	ID        string    `json:"id"`
	Title     string    `json:"title"`
	Category  string    `json:"category"`
	Published time.Time `json:"published"`
	Metadata  int       `json:"metadata_style"`
}

type provTable struct {
	File         string    `json:"file"`
	Dataset      string    `json:"dataset"`
	DatasetTitle string    `json:"dataset_title"`
	Topic        string    `json:"topic"`
	Category     string    `json:"category"`
	Style        int       `json:"style"`
	EventClass   string    `json:"event_class,omitempty"`
	DuplicateOf  string    `json:"duplicate_of,omitempty"`
	Published    time.Time `json:"published"`
	RawSize      int64     `json:"raw_size"`
	// ContentHash is the FNV-64a hash (hex) of the table's CSV bytes;
	// ingest delta detection compares it instead of parsing the file,
	// and the colstore loader rejects stale .col files against it.
	ContentHash string `json:"content_hash,omitempty"`
	// Colstore names the binary columnar serialization written
	// alongside the CSV, when one exists.
	Colstore string    `json:"colstore,omitempty"`
	Cols     []provCol `json:"cols"`
}

type provCol struct {
	Name string `json:"name"`
	Role int    `json:"role"`
	Pool string `json:"pool,omitempty"`
}

// SaveStats summarizes what SaveCorpus wrote.
type SaveStats struct {
	Datasets int
	Tables   int
	Bytes    int64 // raw CSV bytes
	ColBytes int64 // colstore (binary columnar) bytes
}

// SaveCorpus writes a corpus to dir: one CSV plus one colstore file
// per table, and the datasets.json and provenance.json manifests. The
// directory is created if needed. Every file is written via temp file
// + rename so a crash mid-save never leaves a partially written file,
// and the manifests are fsynced — an interrupted save is either
// invisible (old manifests still describe the old files) or complete.
// Table serialization fans out over the worker pool; manifest order is
// the deterministic Metas order regardless of worker scheduling.
func SaveCorpus(dir string, c *Corpus) (SaveStats, error) {
	var st SaveStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return st, err
	}

	type tableFiles struct {
		csvBytes int64
		colBytes int64
		hash     uint64
		err      error
	}
	ctx := parallel.WithPool(context.Background(), "gen/save")
	written := parallel.MustMap(parallel.Map(ctx, len(c.Metas), 0, func(i int) tableFiles {
		m := c.Metas[i]
		body := csvio.Bytes(m.Table)
		hash := colstore.HashBytes(body)
		if err := colstore.AtomicWrite(filepath.Join(dir, m.Table.Name), body, false); err != nil {
			return tableFiles{err: err}
		}
		n, err := colstore.WriteFile(filepath.Join(dir, m.Table.Name+colstore.Ext), m.Table, hash)
		if err != nil {
			return tableFiles{err: err}
		}
		return tableFiles{csvBytes: int64(len(body)), colBytes: n, hash: hash}
	}))

	byDataset := map[string][]string{}
	prov := provCorpus{Portal: c.PortalName, Profile: c.Profile.Name}
	for i, m := range c.Metas {
		w := written[i]
		if w.err != nil {
			return st, fmt.Errorf("gen: saving %s: %w", m.Table.Name, w.err)
		}
		byDataset[m.Dataset] = append(byDataset[m.Dataset], m.Table.Name)
		st.Tables++
		st.Bytes += w.csvBytes
		st.ColBytes += w.colBytes

		pt := provTable{
			File:         m.Table.Name,
			Dataset:      m.Dataset,
			DatasetTitle: m.DatasetTitle,
			Topic:        m.Topic,
			Category:     m.Category,
			Style:        int(m.Style),
			EventClass:   m.EventClass,
			DuplicateOf:  m.DuplicateOf,
			Published:    m.Published,
			RawSize:      m.RawSize,
			ContentHash:  formatHash(w.hash),
			Colstore:     m.Table.Name + colstore.Ext,
		}
		for _, ci := range m.Cols {
			pt.Cols = append(pt.Cols, provCol{Name: ci.Name, Role: int(ci.Role), Pool: ci.Pool})
		}
		prov.Tables = append(prov.Tables, pt)
	}

	manifest := make([]ManifestDataset, 0, len(c.Datasets))
	for _, d := range c.Datasets {
		manifest = append(manifest, ManifestDataset{
			ID:        d.ID,
			Title:     d.Title,
			Category:  d.Category,
			Published: d.Published,
			Metadata:  ckan.MetadataStyle(d.Metadata).String(),
			Tables:    byDataset[d.ID],
		})
		prov.Datasets = append(prov.Datasets, provDataset{
			ID:        d.ID,
			Title:     d.Title,
			Category:  d.Category,
			Published: d.Published,
			Metadata:  d.Metadata,
		})
	}
	st.Datasets = len(manifest)

	if err := writeJSON(filepath.Join(dir, ManifestFile), manifest); err != nil {
		return st, err
	}
	if err := writeJSON(filepath.Join(dir, ProvenanceFile), prov); err != nil {
		return st, err
	}
	return st, nil
}

// writeJSON atomically writes an indented, fsynced JSON manifest: the
// manifests are the corpus's commit record, so they must hit disk
// before the rename makes them visible.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return colstore.AtomicWrite(path, append(data, '\n'), true)
}

// formatHash renders a content hash the way provenance.json stores it.
func formatHash(h uint64) string { return fmt.Sprintf("%016x", h) }

// parseHash parses a provenance content hash; ok is false for empty or
// malformed values.
func parseHash(s string) (h uint64, ok bool) {
	h, err := strconv.ParseUint(s, 16, 64)
	return h, err == nil && s != ""
}

// LoadNote records one per-file deviation taken while loading a saved
// corpus — typically a fall back from the colstore fast path to CSV
// re-parsing, with the reason.
type LoadNote struct {
	File   string
	Reason string
}

// LoadCorpus reads a corpus saved by SaveCorpus back from dir; see
// LoadCorpusNotes.
func LoadCorpus(dir string) (*Corpus, error) {
	c, _, err := LoadCorpusNotes(dir)
	return c, err
}

// LoadCorpusNotes reads a corpus saved by SaveCorpus back from dir,
// reconstructing the full generation provenance from provenance.json.
// Tables are served from their colstore files when present, current
// (content hash matches the provenance), and intact — the encodings
// then alias a read-only mapping and no rows are materialized. A
// missing, stale, or corrupt colstore falls back to re-parsing the CSV
// with the cleaning pipeline disabled (KeepEmptyTrailingColumns, no
// wide-table cutoff) so the cells roundtrip exactly; each fallback is
// reported as a LoadNote. Either way the result is
// analysis-equivalent to the corpus that was saved.
func LoadCorpusNotes(dir string) (*Corpus, []LoadNote, error) {
	data, err := os.ReadFile(filepath.Join(dir, ProvenanceFile))
	if err != nil {
		return nil, nil, fmt.Errorf("gen: loading corpus: %w", err)
	}
	var prov provCorpus
	if err := json.Unmarshal(data, &prov); err != nil {
		return nil, nil, fmt.Errorf("gen: parsing %s: %w", ProvenanceFile, err)
	}

	c := &Corpus{PortalName: prov.Portal}
	if p, ok := ProfileByName(prov.Profile); ok {
		c.Profile = p
	}
	for _, d := range prov.Datasets {
		c.Datasets = append(c.Datasets, DatasetMeta{
			ID:        d.ID,
			Title:     d.Title,
			Category:  d.Category,
			Published: d.Published,
			Metadata:  d.Metadata,
		})
	}
	var notes []LoadNote
	for _, pt := range prov.Tables {
		t, note, err := loadProvTable(dir, &pt)
		if err != nil {
			return nil, notes, err
		}
		if note != "" {
			notes = append(notes, LoadNote{File: pt.File, Reason: note})
		}
		t.DatasetID = pt.Dataset
		if got, want := t.NumCols(), len(pt.Cols); got != want {
			return nil, notes, fmt.Errorf("gen: %s: %d columns on disk, %d in provenance", pt.File, got, want)
		}
		m := &TableMeta{
			Table:        t,
			Dataset:      pt.Dataset,
			DatasetTitle: pt.DatasetTitle,
			Topic:        pt.Topic,
			Category:     pt.Category,
			Style:        TableStyle(pt.Style),
			EventClass:   pt.EventClass,
			DuplicateOf:  pt.DuplicateOf,
			Published:    pt.Published,
			RawSize:      pt.RawSize,
		}
		for _, pc := range pt.Cols {
			m.Cols = append(m.Cols, ColumnInfo{Name: pc.Name, Role: ColumnRole(pc.Role), Pool: pc.Pool})
		}
		c.Metas = append(c.Metas, m)
	}
	return c, notes, nil
}

// loadProvTable loads one table, preferring its colstore serialization
// and falling back to CSV re-parsing with a non-empty reason when the
// colstore is absent, stale, or fails validation. A fallback whose CSV
// is also unreadable is an error: the manifest references data the
// corpus no longer has.
func loadProvTable(dir string, pt *provTable) (t *table.Table, note string, err error) {
	if pt.Colstore != "" {
		t, hash, err := colstore.Load(filepath.Join(dir, pt.Colstore))
		want, ok := parseHash(pt.ContentHash)
		switch {
		case err != nil:
			note = fmt.Sprintf("colstore unusable (%v); re-parsed CSV", err)
		case !ok:
			note = "colstore ignored: provenance content_hash missing or malformed; re-parsed CSV"
		case hash != want:
			note = fmt.Sprintf("colstore stale: stamped content hash %016x, provenance has %s; re-parsed CSV", hash, pt.ContentHash)
		default:
			return t, "", nil
		}
	}
	t, err = loadTable(dir, pt.File)
	if err != nil && note != "" {
		err = fmt.Errorf("%w (after: %s)", err, note)
	}
	return t, note, err
}

// loadTable reparses one saved table without the cleaning pipeline:
// the file was written by csvio.Write from an already-clean table, so
// header inference must not rename columns, drop all-null trailing
// columns, or reject wide tables.
func loadTable(dir, file string) (*table.Table, error) {
	body, err := os.ReadFile(filepath.Join(dir, file))
	if err != nil {
		return nil, fmt.Errorf("gen: loading corpus table: %w", err)
	}
	t, err := csvio.ReadWith(file, strings.NewReader(string(body)), csvio.Options{
		KeepEmptyTrailingColumns: true,
		MaxColumns:               -1,
	})
	if err != nil {
		return nil, fmt.Errorf("gen: parsing %s: %w", file, err)
	}
	return t, nil
}
