// Package gen generates synthetic open-government-data portals whose
// relational structure is calibrated to the four portals the paper
// studies (SG, CA, UK, US). The generator plants exactly the
// publication phenomena the paper measures — denormalized pre-joined
// tables (functional dependencies), semi-normalized datasets (useful
// intra-dataset joins), periodically published tables (unionable
// sets), Singapore's standardized schemas, US duplicate tables,
// sequential-ID columns and shared value domains (accidental joins) —
// and records the provenance of every column, which serves as the
// ground truth standing in for the paper's manual labeling.
package gen

import (
	"time"

	"ogdp/internal/table"
)

// ColumnRole describes why a generated column exists; labeling rules
// are written against roles.
type ColumnRole int

// Column roles.
const (
	// RoleSequentialID: incremental integer identifier (1..n).
	RoleSequentialID ColumnRole = iota
	// RoleEntityKey: natural key of an entity pool, one row per entity.
	RoleEntityKey
	// RoleForeignKey: reference to an entity pool from a fact table
	// (values repeat).
	RoleForeignKey
	// RoleEntityAttr: attribute functionally dependent on an entity key
	// in the same table.
	RoleEntityAttr
	// RoleDomain: a common domain column (state, province, year, date)
	// present in many unrelated tables.
	RoleDomain
	// RoleDateKey: a date column that keys an event-statistics table;
	// joining two event-stats tables of the same event class on their
	// date keys is the paper's useful inter-dataset pattern.
	RoleDateKey
	// RolePartitionKey: the semi-key of a partitioned statistics table
	// (the fisheries pattern: one row per species plus Total/Other
	// aggregate rows).
	RolePartitionKey
	// RoleMeasure: numeric measurement.
	RoleMeasure
	// RoleFreeText: free-form text.
	RoleFreeText
	// RoleLevel: level_1/level_2 columns of SG's standardized schemas.
	RoleLevel
)

var roleNames = [...]string{
	"sequential-id", "entity-key", "foreign-key", "entity-attr",
	"domain", "date-key", "partition-key", "measure", "free-text", "level",
}

func (r ColumnRole) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return "invalid"
}

// TableStyle describes the publication pattern a table was generated
// under.
type TableStyle int

// Table styles.
const (
	// StyleDenormalized: a single pre-joined table with planted FDs.
	StyleDenormalized TableStyle = iota
	// StyleMaster: the entity table of a semi-normalized dataset.
	StyleMaster
	// StyleAspect: a per-entity aspect table of a semi-normalized
	// dataset (keyed by the same entity as the master).
	StyleAspect
	// StyleTransactions: an event/transaction table of a
	// semi-normalized dataset (foreign key to the entity).
	StyleTransactions
	// StylePeriodic: one period of a periodically published table set.
	StylePeriodic
	// StyleStandardized: SG's {level_1, level_2, year, value} schema.
	StyleStandardized
	// StyleEventStats: daily statistics keyed by date for some event
	// class.
	StyleEventStats
	// StylePartitioned: statistics partitioned over a categorical
	// attribute with aggregate (Total/Other) rows.
	StylePartitioned
	// StyleDuplicate: an exact copy of another table republished under
	// a different dataset (the US pattern).
	StyleDuplicate
)

var styleNames = [...]string{
	"denormalized", "master", "aspect", "transactions", "periodic",
	"standardized", "event-stats", "partitioned", "duplicate",
}

func (s TableStyle) String() string {
	if int(s) < len(styleNames) {
		return styleNames[s]
	}
	return "invalid"
}

// ColumnInfo is the provenance of one generated column.
type ColumnInfo struct {
	Name string
	Role ColumnRole
	// Pool names the entity pool the values come from (empty for
	// measures/free text).
	Pool string
}

// TableMeta is one generated table with its provenance.
type TableMeta struct {
	Table *table.Table
	// Dataset and DatasetTitle identify the CKAN dataset.
	Dataset      string
	DatasetTitle string
	// Topic and Category place the table in a subject domain; tables of
	// the same category are "related" in the paper's labeling sense.
	Topic    string
	Category string
	// Style is the publication pattern.
	Style TableStyle
	// EventClass groups event-statistics tables about the same event
	// (e.g. all COVID tables); empty otherwise.
	EventClass string
	// DuplicateOf holds the table name this is a copy of, for
	// StyleDuplicate.
	DuplicateOf string
	// Published is the dataset publication date.
	Published time.Time
	// Cols is per-column provenance, parallel to Table.Cols.
	Cols []ColumnInfo
	// RawSize is the size of the table serialized as CSV, in bytes.
	RawSize int64
}

// Role returns the provenance of column c.
func (m *TableMeta) Role(c int) ColumnInfo { return m.Cols[c] }

// DatasetMeta describes one generated dataset.
type DatasetMeta struct {
	ID        string
	Title     string
	Category  string
	Published time.Time
	// Metadata is the dictionary style (drives Table 3).
	Metadata int // ckan.MetadataStyle value; int to avoid the dependency here
}

// Corpus is a generated portal: readable tables with provenance plus
// dataset-level metadata.
type Corpus struct {
	// PortalName is the portal code (SG, CA, UK, US).
	PortalName string
	// Profile the corpus was generated from.
	Profile PortalProfile
	// Metas are the readable tables, in generation order.
	Metas []*TableMeta
	// Datasets are the dataset records.
	Datasets []DatasetMeta
}

// Tables projects the corpus to its bare tables, in the same order as
// Metas; analysis indices line up with Metas indices.
func (c *Corpus) Tables() []*table.Table {
	out := make([]*table.Table, len(c.Metas))
	for i, m := range c.Metas {
		out[i] = m.Table
	}
	return out
}

// MetaByTable maps a table index (into Tables()) to its provenance.
func (c *Corpus) MetaByTable(i int) *TableMeta { return c.Metas[i] }
