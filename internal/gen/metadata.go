package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// MetadataDoc renders a dataset's data dictionary document in the
// style its metadata field indicates: structured datasets get a clean
// CSV dictionary; unstructured ones get an HTML page, a markdown-ish
// bullet list, or loose prose lines, at random (seeded). Datasets with
// metadata outside the portal or lacking it return ok=false — there is
// nothing to download, exactly the situation Table 3 quantifies.
func MetadataDoc(c *Corpus, datasetID string, seed int64) (doc string, ok bool) {
	var ds *DatasetMeta
	for i := range c.Datasets {
		if c.Datasets[i].ID == datasetID {
			ds = &c.Datasets[i]
			break
		}
	}
	if ds == nil {
		return "", false
	}
	var metas []*TableMeta
	for _, m := range c.Metas {
		if m.Dataset == datasetID {
			metas = append(metas, m)
		}
	}
	if len(metas) == 0 {
		return "", false
	}

	// Collect the union of columns across the dataset's tables.
	seen := map[string]bool{}
	type colDoc struct{ name, desc string }
	var cols []colDoc
	for _, m := range metas {
		for i, info := range m.Cols {
			name := m.Table.Cols[i]
			if seen[name] {
				continue
			}
			seen[name] = true
			cols = append(cols, colDoc{name: name, desc: describeColumn(info, m.Topic)})
		}
	}

	switch ds.Metadata {
	case 1: // structured: CSV dictionary
		var b strings.Builder
		b.WriteString("column,description\n")
		for _, c := range cols {
			fmt.Fprintf(&b, "%s,%s\n", c.name, c.desc)
		}
		return b.String(), true
	case 2: // unstructured: one of three messy formats
		rng := rand.New(rand.NewSource(seed + int64(len(cols))))
		switch rng.Intn(3) {
		case 0:
			var b strings.Builder
			fmt.Fprintf(&b, "<html><body><h1>%s</h1><p>Data dictionary.</p><dl>\n", ds.Title)
			for _, c := range cols {
				fmt.Fprintf(&b, "<dt>%s</dt><dd>%s</dd>\n", c.name, c.desc)
			}
			b.WriteString("</dl></body></html>\n")
			return b.String(), true
		case 1:
			var b strings.Builder
			fmt.Fprintf(&b, "# %s\n\nColumns:\n\n", ds.Title)
			for _, c := range cols {
				fmt.Fprintf(&b, "- %s: %s\n", c.name, c.desc)
			}
			return b.String(), true
		default:
			var b strings.Builder
			fmt.Fprintf(&b, "%s\n\nThe following fields are included in this release.\n\n", ds.Title)
			for _, c := range cols {
				fmt.Fprintf(&b, "%s: %s\n", c.name, c.desc)
			}
			return b.String(), true
		}
	default: // outside portal or lacking
		return "", false
	}
}

// describeColumn writes a one-line description from provenance.
func describeColumn(info ColumnInfo, topic string) string {
	switch info.Role {
	case RoleSequentialID:
		return "Unique record identifier assigned on export"
	case RoleEntityKey:
		return fmt.Sprintf("The %s this record describes", strings.ReplaceAll(info.Pool, "_", " "))
	case RoleForeignKey:
		return fmt.Sprintf("Reference to the %s the observation belongs to", info.Pool)
	case RoleEntityAttr:
		return fmt.Sprintf("Attribute of the associated %s", info.Pool)
	case RoleDomain:
		return fmt.Sprintf("Reporting %s of the observation", info.Pool)
	case RoleDateKey:
		return "Observation date (one row per day)"
	case RolePartitionKey:
		return "Category the statistics are partitioned by; includes Total and Other aggregate rows"
	case RoleMeasure:
		return fmt.Sprintf("Reported measurement for %s", topic)
	case RoleFreeText:
		return "Free-form notes"
	case RoleLevel:
		return "Statistical breakdown level"
	default:
		return "Undocumented field"
	}
}
