package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ogdp/internal/csvio"
	"ogdp/internal/stats"
	"ogdp/internal/table"
)

// Generate builds a synthetic portal corpus from a profile. scale
// multiplies the dataset count (1.0 reproduces the calibrated size;
// tests use smaller scales); seed makes generation deterministic.
func Generate(prof PortalProfile, scale float64, seed int64) *Corpus {
	if scale <= 0 {
		scale = 1
	}
	g := &generator{
		prof:   prof,
		scale:  scale,
		rng:    rand.New(rand.NewSource(seed)),
		pools:  buildPools(prof.StatePool),
		topics: topicList(),
		corpus: &Corpus{PortalName: prof.Name, Profile: prof},
	}
	g.buildEventDates()

	nDatasets := int(float64(prof.BaseDatasets) * scale)
	if nDatasets < 4 {
		nDatasets = 4
	}
	for i := 0; i < nDatasets; i++ {
		g.makeDataset()
	}
	return g.corpus
}

// commonRowCounts are "round" sizes many unrelated tables share, which
// makes their sequential-ID columns overlap (the paper's most common
// accidental join pattern).
var commonRowCounts = []int{50, 100, 150, 200, 365, 500, 1000}

type generator struct {
	prof   PortalProfile
	scale  float64
	rng    *rand.Rand
	pools  map[string]*entityPool
	topics []struct{ topic, category string }
	corpus *Corpus

	dsCounter  int
	tblCounter int

	// nullPlan, when non-nil, fixes the per-column null ratios used by
	// injectNulls (indexable by column position; -1 means no nulls).
	nullPlan []float64

	// eventDates maps event class -> its shared date range.
	eventDates map[string][]string
	eventNames []string
	eventIdx   int
}

func (g *generator) buildEventDates() {
	g.eventNames = []string{"covid", "influenza", "air quality alerts", "road safety", "energy demand"}
	g.eventDates = make(map[string][]string)
	for i, name := range g.eventNames {
		year := 2017 + i
		var dates []string
		for m := 1; m <= 12; m++ {
			for d := 1; d <= 28; d++ {
				dates = append(dates, fmt.Sprintf("%d-%02d-%02d", year, m, d))
			}
		}
		g.eventDates[name] = dates
	}
}

// ---- dataset dispatch ----

func (g *generator) makeDataset() {
	w := []float64{
		g.prof.WDenormalized, g.prof.WSemiNorm, g.prof.WPeriodic,
		g.prof.WStandardized, g.prof.WEventStats, g.prof.WPartitioned,
		g.prof.WDuplicate,
	}
	switch g.pickWeighted(w) {
	case 0:
		g.makeDenormalizedDataset()
	case 1:
		g.makeSemiNormalizedDataset()
	case 2:
		g.makePeriodicDataset()
	case 3:
		g.makeStandardizedDataset()
	case 4:
		g.makeEventStatsDataset()
	case 5:
		g.makePartitionedDataset()
	case 6:
		g.makeDuplicateDataset()
	}
}

func (g *generator) pickWeighted(w []float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	if stats.ApproxEq(total, 0) {
		return 0
	}
	r := g.rng.Float64() * total
	for i, x := range w {
		r -= x
		if r < 0 {
			return i
		}
	}
	return len(w) - 1
}

func (g *generator) pickTopic() (topic, category string) {
	t := g.topics[g.rng.Intn(len(g.topics))]
	return t.topic, t.category
}

func (g *generator) newDataset(topic, category string) *DatasetMeta {
	g.dsCounter++
	ds := DatasetMeta{
		ID:        fmt.Sprintf("%s-ds-%05d", g.prof.Name, g.dsCounter),
		Title:     fmt.Sprintf("%s (%s dataset %d)", topic, g.prof.Name, g.dsCounter),
		Category:  category,
		Published: g.publicationDate(),
		Metadata:  g.metadataStyle(),
	}
	g.corpus.Datasets = append(g.corpus.Datasets, ds)
	return &g.corpus.Datasets[len(g.corpus.Datasets)-1]
}

func (g *generator) publicationDate() time.Time {
	from, to := g.prof.YearFrom, g.prof.YearTo
	var year int
	if g.prof.BulkYear != 0 && g.rng.Float64() < 0.7 {
		year = g.prof.BulkYear
	} else {
		year = from + g.rng.Intn(to-from+1)
	}
	month := 1 + g.rng.Intn(12)
	day := 1 + g.rng.Intn(28)
	return time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
}

// metadataStyle draws per the Table 3 distribution. The returned int
// matches ckan.MetadataStyle: 0 lacking, 1 structured, 2 unstructured,
// 3 outside.
func (g *generator) metadataStyle() int {
	r := g.rng.Float64()
	switch {
	case r < g.prof.MetaStructured:
		return 1
	case r < g.prof.MetaStructured+g.prof.MetaUnstructured:
		return 2
	case r < g.prof.MetaStructured+g.prof.MetaUnstructured+g.prof.MetaOutside:
		return 3
	default:
		return 0
	}
}

// rowCount draws a lognormal row count around the portal median, with
// a chance of snapping to a common "round" size.
func (g *generator) rowCount() int {
	if g.rng.Float64() < 0.12 {
		return commonRowCounts[g.rng.Intn(len(commonRowCounts))]
	}
	m := float64(g.prof.MedianRows)
	n := int(m * math.Exp(g.rng.NormFloat64()*g.prof.RowSigma))
	maxRows := int(float64(g.prof.MaxRows) * g.scale)
	if maxRows < 2000 {
		maxRows = 2000
	}
	if n < 10 {
		n = 10
	}
	if n > maxRows {
		n = maxRows
	}
	return n
}

// ---- column builders ----

// attrNames returns a pool's attribute names in sorted order; map
// iteration order would otherwise make generation non-deterministic.
func attrNames(pool *entityPool) []string {
	names := make([]string, 0, len(pool.attrs))
	for name := range pool.attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// colSpec pairs provenance with a per-row value generator.
type colSpec struct {
	info ColumnInfo
	gen  func(r int) string
}

// materialize builds the table from specs, injects nulls, and records
// the meta. It fills columns wholesale during construction, before any
// profile or encoding exists to invalidate.
//
//lint:allow(rawdata) generator constructs the cell store itself
func (g *generator) materialize(ds *DatasetMeta, topic string, style TableStyle, event string, name string, nRows int, specs []colSpec) *TableMeta {
	g.tblCounter++
	cols := make([]string, len(specs))
	infos := make([]ColumnInfo, len(specs))
	for i, s := range specs {
		cols[i] = s.info.Name
		infos[i] = s.info
	}
	t := table.New(name, cols)
	t.DatasetID = ds.ID
	for c, s := range specs {
		col := make([]string, nRows)
		for r := 0; r < nRows; r++ {
			col[r] = s.gen(r)
		}
		t.Data[c] = col
	}
	g.injectNulls(t, infos)

	meta := &TableMeta{
		Table:        t,
		Dataset:      ds.ID,
		DatasetTitle: ds.Title,
		Topic:        topic,
		Category:     ds.Category,
		Style:        style,
		EventClass:   event,
		Published:    ds.Published,
		Cols:         infos,
	}
	meta.RawSize = int64(len(csvio.Bytes(t)))
	g.corpus.Metas = append(g.corpus.Metas, meta)
	return meta
}

// injectNulls applies the portal's null profile to non-key columns,
// rewriting cells in place and invalidating cached profiles after.
//
//lint:allow(rawdata) in-place mutation during generation; caches invalidated below
func (g *generator) injectNulls(t *table.Table, infos []ColumnInfo) {
	nullTokens := []string{"", "", "", "n/a", "null", "-"}
	for c, info := range infos {
		switch info.Role {
		case RoleSequentialID, RoleEntityKey, RoleDateKey, RolePartitionKey:
			continue // preserve planted keys
		}
		var ratio float64
		if g.nullPlan != nil && c < len(g.nullPlan) {
			ratio = g.nullPlan[c]
		} else {
			ratio = g.rollNullRatio()
		}
		if ratio <= 0 {
			continue
		}
		col := t.Data[c]
		for i := range col {
			if g.rng.Float64() < ratio {
				col[i] = nullTokens[g.rng.Intn(len(nullTokens))]
			}
		}
	}
	t.InvalidateProfiles()
}

// rollNullRatio draws one column's null ratio from the portal profile
// (0 means no nulls).
func (g *generator) rollNullRatio() float64 {
	r := g.rng.Float64()
	switch {
	case r < g.prof.AllNullFrac:
		return 1.0
	case r < g.prof.AllNullFrac+g.prof.HeavyNullFrac:
		return 0.5 + g.rng.Float64()*0.45
	case r < g.prof.NullColFrac:
		return 0.005 + g.rng.Float64()*0.25
	default:
		return 0
	}
}

// rollNullPlan pre-draws null ratios for n columns.
func (g *generator) rollNullPlan(n int) []float64 {
	plan := make([]float64, n)
	for i := range plan {
		plan[i] = g.rollNullRatio()
	}
	return plan
}

// seqIDSpec emits an incremental identifier column. About half of
// publishers prefix record ids with a dataset-specific code, which
// keeps their id columns from overlapping with anyone else's; ids
// exported from live systems usually continue from an arbitrary
// offset, so only 1-based ids overlap with other 1-based tables of a
// similar size. A third of id columns contain occasional duplicate
// ids (dirty exports), which keeps their overlap near-perfect while
// disqualifying them as keys.
func (g *generator) seqIDSpec(name string) colSpec {
	prefix := ""
	if g.rng.Float64() < 0.45 {
		prefix = fmt.Sprintf("%s%04d-", strings.ToUpper(g.prof.Name[:1]), g.dsCounter)
	}
	start := 1
	if g.rng.Float64() >= 0.45 {
		start = 1 + (1+g.rng.Intn(400))*250
	}
	dirty := g.rng.Float64() < 0.25
	return colSpec{
		info: ColumnInfo{Name: name, Role: RoleSequentialID},
		gen: func(r int) string {
			id := start + r
			if dirty && r%89 == 13 {
				id-- // duplicate of the previous row's id
			}
			if prefix != "" {
				return fmt.Sprintf("%s%d", prefix, id)
			}
			return fmt.Sprintf("%d", id)
		},
	}
}

// fkSpec draws repeating values from a pool (foreign-key style) with
// full pool coverage (given enough rows).
func (g *generator) fkSpec(pool *entityPool, role ColumnRole) []colSpec {
	return g.fkSpecCovering(pool, role, pool.size())
}

// fkSpecPartial draws foreign keys that only touch part of the pool:
// most transaction tables do not reference every entity, which is a
// big reason real intra-dataset joins fall below the 0.9 Jaccard bar.
func (g *generator) fkSpecPartial(pool *entityPool, role ColumnRole) []colSpec {
	n := pool.size()
	k := n
	if g.rng.Float64() >= 0.4 {
		k = int((0.55 + g.rng.Float64()*0.4) * float64(n))
		if k < 3 {
			k = 3
		}
	}
	return g.fkSpecCovering(pool, role, k)
}

// fkSpecCovering draws foreign keys restricted to k entities of the
// pool.
func (g *generator) fkSpecCovering(pool *entityPool, role ColumnRole, k int) []colSpec {
	rng := g.rng
	n := pool.size()
	if k > n {
		k = n
	}
	touchable := rng.Perm(n)[:k]
	// Per-row entity choice is memoized so dependent attributes agree.
	choice := map[int]int{}
	pick := func(r int) int {
		if v, ok := choice[r]; ok {
			return v
		}
		v := touchable[rng.Intn(k)]
		choice[r] = v
		return v
	}
	specs := []colSpec{{
		info: ColumnInfo{Name: pool.keyName, Role: role, Pool: pool.name},
		gen:  func(r int) string { return pool.values[pick(r)] },
	}}
	for _, attrName := range attrNames(pool) {
		vals := pool.attrs[attrName]
		specs = append(specs, colSpec{
			info: ColumnInfo{Name: attrName, Role: RoleEntityAttr, Pool: pool.name},
			gen:  func(r int) string { return vals[pick(r)] },
		})
	}
	return specs
}

// measureSpec generates a numeric measure column. Ranges are drawn per
// column; small ranges create the repetitive integer columns behind
// large join expansions.
func (g *generator) measureSpec(name string) colSpec {
	rng := g.rng
	switch g.rng.Intn(4) {
	case 0: // small-range count; the base offset keeps unrelated
		// columns from overlapping by accident more than occasionally
		limit := 100 + g.rng.Intn(400)
		base := g.rng.Intn(200) * 500
		return colSpec{
			info: ColumnInfo{Name: name, Role: RoleMeasure},
			gen:  func(r int) string { return fmt.Sprintf("%d", base+skewed(rng, limit)) },
		}
	case 1: // wide-range count
		limit := 10000 + g.rng.Intn(90000)
		base := g.rng.Intn(500) * 10000
		return colSpec{
			info: ColumnInfo{Name: name, Role: RoleMeasure},
			gen:  func(r int) string { return fmt.Sprintf("%d", base+skewed(rng, limit)) },
		}
	case 2: // one-decimal float
		limit := 1000 + g.rng.Intn(9000)
		base := g.rng.Intn(250) * 40
		return colSpec{
			info: ColumnInfo{Name: name, Role: RoleMeasure},
			gen:  func(r int) string { return fmt.Sprintf("%.1f", float64(base+skewed(rng, limit))/10) },
		}
	default: // percentage, quantized to one decimal so values repeat;
		// the per-column offset keeps unrelated percent columns from
		// sharing the same low-value vocabulary
		off := g.rng.Intn(60) * 10
		return colSpec{
			info: ColumnInfo{Name: name, Role: RoleMeasure},
			gen:  func(r int) string { return fmt.Sprintf("%.1f", float64(off+skewed(rng, 1000-off))/10) },
		}
	}
}

// domainSpec draws from a shared domain pool (state/province/year),
// covering the pool when the table is large.
func (g *generator) domainSpec(pool *entityPool) colSpec {
	rng := g.rng
	return colSpec{
		info: ColumnInfo{Name: pool.keyName, Role: RoleDomain, Pool: pool.name},
		gen:  func(r int) string { return pool.values[rng.Intn(pool.size())] },
	}
}

func (g *generator) freeTextSpec(name, topic string) colSpec {
	return colSpec{
		info: ColumnInfo{Name: name, Role: RoleFreeText},
		gen:  func(r int) string { return fmt.Sprintf("%s record %d notes", topic, r+1) },
	}
}

// skewed draws an integer in [0, limit) with a heavy skew toward small
// values and progressive rounding of large ones — the Zipf-like,
// rounded shape real counts and amounts have. It is what gives measure
// columns the high value repetition of §4.1.
func skewed(rng *rand.Rand, limit int) int {
	f := rng.Float64()
	v := int(float64(limit) * f * f * f * f * f)
	if v > 20 {
		step := v / 20
		v -= v % step
	}
	return v
}

// measureNames supplies plausible measure column names.
var measureNames = []string{
	"value", "amount", "count", "total", "rate", "average",
	"expenditure", "population", "score", "quantity", "volume",
	"budget", "revenue", "incidents", "duration",
}

func (g *generator) measureName(i int) string {
	return measureNames[(i+g.rng.Intn(3))%len(measureNames)]
}

// uniqueName disambiguates duplicate column names within one table.
func uniqueNames(specs []colSpec) {
	seen := map[string]int{}
	for i := range specs {
		n := specs[i].info.Name
		seen[n]++
		if seen[n] > 1 {
			specs[i].info.Name = fmt.Sprintf("%s_%d", n, seen[n])
		}
	}
}

// subset returns a view of the pool restricted to a random subset of
// its entities, modelling that different publishers cover different
// slices of a domain (one dataset's species differ from another's).
// Roughly a third of tables use the full pool, which is what makes
// high-overlap accidental joins possible without making every pair of
// fact tables joinable. Temporal pools subset to contiguous ranges.
func (g *generator) subset(pool *entityPool) *entityPool {
	return g.subsetMaybeFull(pool, false)
}

// subsetMaybeFull restricts a pool; with forceProper the result is
// always a proper subset (used by drifting periodic publications).
func (g *generator) subsetMaybeFull(pool *entityPool, forceProper bool) *entityPool {
	n := pool.size()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if forceProper || g.rng.Float64() >= 0.18 { // some publishers cover the full domain
		frac := 0.3 + g.rng.Float64()*0.6
		k := int(frac * float64(n))
		if k < 3 {
			k = 3
		}
		if k < n {
			if pool.name == "year" || pool.name == "date" {
				start := g.rng.Intn(n - k + 1)
				idx = idx[start : start+k]
			} else {
				idx = g.rng.Perm(n)[:k]
				sort.Ints(idx)
			}
		}
	}
	variant := g.spellingVariant(pool)
	sub := &entityPool{name: pool.name, keyName: pool.keyName, attrs: map[string][]string{}}
	for _, i := range idx {
		sub.values = append(sub.values, variant(pool.values[i], i))
	}
	for _, attr := range attrNames(pool) {
		vals := pool.attrs[attr]
		sv := make([]string, 0, len(idx))
		for _, i := range idx {
			// Attribute spellings follow the publisher's convention too.
			sv = append(sv, variant(vals[i], -1))
		}
		sub.attrs[attr] = sv
	}
	return sub
}

// spellingVariant picks the publisher's value-spelling convention for
// a pool: canonical, upper-case, or coded. Conventions are stable
// functions of the original values, so two publishers using the same
// convention still join while publishers with different conventions do
// not — value heterogeneity the paper's value-overlap metric is blind
// to.
func (g *generator) spellingVariant(pool *entityPool) func(v string, origIdx int) string {
	if pool.name == "year" || pool.name == "date" {
		return func(v string, _ int) string { return v }
	}
	r := g.rng.Float64()
	switch {
	case r < 0.62:
		return func(v string, _ int) string { return v }
	case r < 0.82:
		return func(v string, _ int) string { return strings.ToUpper(v) }
	default:
		return func(v string, origIdx int) string {
			if origIdx >= 0 {
				return fmt.Sprintf("%s (%s-%02d)", v, pool.name[:2], origIdx)
			}
			return v + " *"
		}
	}
}

// ---- dataset styles ----

// factPools are the entity chains denormalized tables pre-join.
var factPools = []string{"city", "species", "industry", "fund", "department", "facility"}

// makeDenormalizedDataset publishes one pre-joined table: entity
// chains with their dependent attributes (planted FDs), shared-domain
// columns, and measures.
func (g *generator) makeDenormalizedDataset() {
	topic, category := g.pickTopic()
	ds := g.newDataset(topic, category)
	nRows := g.rowCount()

	var specs []colSpec
	if g.rng.Float64() < g.prof.KeyProb {
		specs = append(specs, g.seqIDSpec("objectid"))
	}
	nChains := 1 + g.rng.Intn(2)
	for i := 0; i < nChains; i++ {
		pool := g.subset(g.pools[factPools[g.rng.Intn(len(factPools))]])
		specs = append(specs, g.fkSpecPartial(pool, RoleForeignKey)...)
	}
	if g.rng.Float64() < g.prof.DomainColProb {
		specs = append(specs, g.domainSpec(g.subset(g.pools[g.prof.StatePool])))
	}
	if g.rng.Float64() < g.prof.DomainColProb {
		specs = append(specs, g.domainSpec(g.subset(g.pools["year"])))
	}
	if nRows >= 400 && g.rng.Float64() < g.prof.CodeColProb {
		specs = append(specs, g.domainSpec(g.pools["code"]))
	}
	target := g.colTarget()
	for i := 0; len(specs) < target; i++ {
		specs = append(specs, g.measureSpec(g.measureName(i)))
	}
	if g.rng.Float64() < 0.2 {
		specs = append(specs, g.freeTextSpec("description", topic))
	}
	uniqueNames(specs)
	g.materialize(ds, topic, StyleDenormalized, "", g.fileName(topic, ""), nRows, specs)
}

// measureCount draws how many measure columns a fact table gets,
// scaled to the portal's typical table width.
func (g *generator) measureCount() int {
	m := g.prof.MedianCols - 4
	if m < 2 {
		m = 2
	}
	return 2 + g.rng.Intn(m)
}

// colTarget draws a column count around the portal median.
func (g *generator) colTarget() int {
	m := g.prof.MedianCols
	n := int(float64(m) * math.Exp(g.rng.NormFloat64()*0.5))
	if n < 3 {
		n = 3
	}
	if n > 45 {
		n = 45
	}
	return n
}

func (g *generator) fileName(topic, suffix string) string {
	base := ""
	for _, r := range topic {
		if r == ' ' {
			base += "-"
		} else {
			base += string(r)
		}
	}
	if suffix != "" {
		base += "-" + suffix
	}
	return fmt.Sprintf("%s-%d.csv", base, g.tblCounter+1)
}

// makeSemiNormalizedDataset publishes a master entity table plus
// aspect and transaction tables, the pattern behind useful
// intra-dataset joins.
func (g *generator) makeSemiNormalizedDataset() {
	topic, category := g.pickTopic()
	ds := g.newDataset(topic, category)
	pool := g.subset(g.pools[factPools[g.rng.Intn(len(factPools))]])

	// Master: one row per entity; the entity key is a key column.
	master := []colSpec{{
		info: ColumnInfo{Name: pool.keyName, Role: RoleEntityKey, Pool: pool.name},
		gen:  func(r int) string { return pool.values[r] },
	}}
	for _, attrName := range attrNames(pool) {
		vals := pool.attrs[attrName]
		master = append(master, colSpec{
			info: ColumnInfo{Name: attrName, Role: RoleEntityAttr, Pool: pool.name},
			gen:  func(r int) string { return vals[r] },
		})
	}
	master = append(master, g.measureSpec("registered_"+g.measureName(0)))
	uniqueNames(master)
	g.materialize(ds, topic, StyleMaster, "", g.fileName(topic, "master"), pool.size(), master)

	// Aspect tables: also one row per entity, different measures
	// (key-key joins with the master are useful).
	nAspects := 1 + g.rng.Intn(2)
	for a := 0; a < nAspects; a++ {
		aspect := []colSpec{{
			info: ColumnInfo{Name: pool.keyName, Role: RoleEntityKey, Pool: pool.name},
			gen:  func(r int) string { return pool.values[r] },
		}}
		nm := g.measureCount()
		for i := 0; i < nm; i++ {
			aspect = append(aspect, g.measureSpec(g.measureName(a*3+i)))
		}
		uniqueNames(aspect)
		g.materialize(ds, topic, StyleAspect, "", g.fileName(topic, fmt.Sprintf("aspect%d", a+1)), pool.size(), aspect)
	}

	// Transactions: foreign key to the entity plus measures
	// (key-nonkey joins with the master are useful).
	nTx := 1 + g.rng.Intn(2)
	for x := 0; x < nTx; x++ {
		nRows := g.rowCount()
		tx := []colSpec{}
		if g.rng.Float64() < g.prof.KeyProb {
			tx = append(tx, g.seqIDSpec("record_id"))
		}
		tx = append(tx, g.fkSpecPartial(pool, RoleForeignKey)...)
		if g.rng.Float64() < g.prof.DomainColProb {
			tx = append(tx, g.domainSpec(g.subset(g.pools["year"])))
		}
		nm := 1 + g.measureCount()
		for i := 0; i < nm; i++ {
			tx = append(tx, g.measureSpec(g.measureName(x*2+i)))
		}
		uniqueNames(tx)
		g.materialize(ds, topic, StyleTransactions, "", g.fileName(topic, fmt.Sprintf("records%d", x+1)), nRows, tx)
	}
}

// makePeriodicDataset publishes one schema across several periods: the
// dominant unionable pattern.
func (g *generator) makePeriodicDataset() {
	topic, category := g.pickTopic()
	ds := g.newDataset(topic, category)

	k := g.prof.PeriodicMin + g.rng.Intn(g.prof.PeriodicMax-g.prof.PeriodicMin+1)
	nRows := g.rowCount()
	hasID := g.rng.Float64() < 0.65
	basePool := g.pools[factPools[g.rng.Intn(len(factPools))]]
	pool := g.subset(basePool)
	// Half of periodic publications keep stable entity coverage and
	// sizes (their periods join on the shared columns); the other half
	// drift year over year, so the same schema no longer implies high
	// value overlap.
	drifting := g.rng.Float64() < g.prof.PeriodicDriftProb
	hasRefPeriod := g.rng.Float64() < 0.5
	nMeasures := g.measureCount()
	measureSeeds := g.rng.Int63()
	measureBase := g.rng.Intn(40) * 750

	// One null plan for the whole dataset: periodic publications keep a
	// consistent null pattern, which also preserves schema identity for
	// the unionability analysis.
	g.nullPlan = g.rollNullPlan(3 + nMeasures)
	defer func() { g.nullPlan = nil }()

	startYear := 2005 + g.rng.Intn(10)
	idSpec := g.seqIDSpec("row_id")
	for p := 0; p < k; p++ {
		year := startYear + p
		periodRows := nRows
		periodPool := pool
		if drifting {
			periodRows = nRows * (50 + g.rng.Intn(90)) / 100
			periodPool = g.subsetMaybeFull(basePool, true)
		} else {
			// Even stable publications vary a little year over year.
			periodRows = nRows * (95 + g.rng.Intn(11)) / 100
		}
		if periodRows < 10 {
			periodRows = 10
		}
		var specs []colSpec
		if hasID {
			if drifting {
				// Drifting exports restart from fresh id offsets, so the
				// id columns of different periods do not overlap.
				specs = append(specs, g.seqIDSpec("row_id"))
			} else {
				specs = append(specs, idSpec)
			}
		}
		specs = append(specs, g.fkSpec(periodPool, RoleForeignKey)...)
		if hasRefPeriod {
			y := fmt.Sprintf("%d", year)
			specs = append(specs, colSpec{
				info: ColumnInfo{Name: "ref_period", Role: RoleDomain, Pool: "year"},
				gen:  func(r int) string { return y },
			})
		}
		// Same measure shapes across periods so schemas stay identical.
		mrng := rand.New(rand.NewSource(measureSeeds + int64(p)))
		for i := 0; i < nMeasures; i++ {
			name := measureNames[i%len(measureNames)]
			limit := 100 + (i+1)*137
			specs = append(specs, colSpec{
				info: ColumnInfo{Name: name, Role: RoleMeasure},
				gen:  func(r int) string { return fmt.Sprintf("%d", measureBase+mrng.Intn(limit)) },
			})
		}
		uniqueNames(specs)
		g.materialize(ds, topic, StylePeriodic, "", g.fileName(topic, fmt.Sprintf("%d", year)), periodRows, specs)
	}
}

// makeStandardizedDataset publishes SG's {level_1, level_2, year,
// value} schema with topic-specific level vocabularies.
func (g *generator) makeStandardizedDataset() {
	topic, category := g.pickTopic()
	ds := g.newDataset(topic, category)

	nL1 := 2 + g.rng.Intn(3)
	nL2 := 6 + g.rng.Intn(8)
	l1 := make([]string, nL1)
	for i := range l1 {
		l1[i] = fmt.Sprintf("%s group %c", topic, 'A'+i)
	}
	l2 := make([]string, nL2)
	l2parent := make([]string, nL2)
	for i := range l2 {
		l2[i] = fmt.Sprintf("%s subgroup %d", topic, i+1)
		l2parent[i] = l1[i%nL1]
	}

	twoLevels := g.rng.Float64() < 0.4
	// Half of the standardized tables span the portal's full reference
	// period, so their year columns overlap almost perfectly — SG's
	// signature accidental-join pattern.
	yearFrom, yearTo := 2000, 2022
	if g.rng.Float64() < 0.5 {
		yearFrom = 2000 + g.rng.Intn(12)
		yearTo = 2012 + g.rng.Intn(11)
	}
	nYears := yearTo - yearFrom + 1
	nRows := nL2 * nYears

	// Standardized datasets often publish a second table of the same
	// shape (another statistic over the same breakdown).
	nTables := 1
	if g.rng.Float64() < 0.4 {
		nTables = 2
	}
	rng := g.rng
	for k := 0; k < nTables; k++ {
		var specs []colSpec
		specs = append(specs, colSpec{
			info: ColumnInfo{Name: "level_1", Role: RoleLevel},
			gen:  func(r int) string { return l2parent[r%nL2] },
		})
		if twoLevels {
			specs = append(specs, colSpec{
				info: ColumnInfo{Name: "level_2", Role: RoleLevel},
				gen:  func(r int) string { return l2[r%nL2] },
			})
		}
		specs = append(specs, colSpec{
			info: ColumnInfo{Name: "year", Role: RoleDomain, Pool: "year"},
			gen:  func(r int) string { return fmt.Sprintf("%d", yearFrom+r/nL2) },
		})
		specs = append(specs, colSpec{
			info: ColumnInfo{Name: "value", Role: RoleMeasure},
			gen:  func(r int) string { return fmt.Sprintf("%.1f", float64(rng.Intn(600))/2) },
		})
		g.materialize(ds, topic, StyleStandardized, "", g.fileName(topic, fmt.Sprintf("t%d", k+1)), nRows, specs)
	}
}

// makeEventStatsDataset publishes one table of daily statistics keyed
// by date for an event class; several datasets share each class, so
// their date keys join usefully across datasets (Anecdote 2).
func (g *generator) makeEventStatsDataset() {
	event := g.eventNames[g.eventIdx%len(g.eventNames)]
	g.eventIdx++
	aspects := []string{"testing", "cases", "hospitalizations", "responses", "readings"}
	aspect := aspects[g.rng.Intn(len(aspects))]
	topic := event + " " + aspect
	category := "health"
	if event == "road safety" {
		category = "transport"
	} else if event == "energy demand" {
		category = "energy"
	} else if event == "air quality alerts" {
		category = "environment"
	}
	ds := g.newDataset(topic, category)

	dates := g.eventDates[event]
	var specs []colSpec
	specs = append(specs, colSpec{
		info: ColumnInfo{Name: "date", Role: RoleDateKey, Pool: "event:" + event},
		gen:  func(r int) string { return dates[r] },
	})
	nm := 3 + g.rng.Intn(5)
	for i := 0; i < nm; i++ {
		specs = append(specs, g.measureSpec(g.measureName(i)))
	}
	if g.rng.Float64() < 0.3 {
		specs = append(specs, g.domainSpec(g.subset(g.pools[g.prof.StatePool])))
	}
	uniqueNames(specs)
	g.materialize(ds, topic, StyleEventStats, event, g.fileName(topic, "daily"), len(dates), specs)
}

// makePartitionedDataset publishes statistics partitioned over a
// categorical attribute, with Total/Other aggregate rows that make the
// partition column a non-key (Anecdote 3: useful nonkey-nonkey joins
// with expansion slightly above 1).
func (g *generator) makePartitionedDataset() {
	topic, category := "fish landings", "fisheries"
	if g.rng.Float64() < 0.4 {
		topic, category = g.pickTopic()
	}
	ds := g.newDataset(topic, category)
	pool := g.subset(g.pools["species"])

	k := 2 + g.rng.Intn(3) // partitions (e.g. years or coasts)
	nm := 2 + g.rng.Intn(2)
	g.nullPlan = g.rollNullPlan(1 + nm)
	defer func() { g.nullPlan = nil }()
	for p := 0; p < k; p++ {
		n := pool.size()
		nRows := n + 7 // + 4 Total + 3 Other rows
		rng := g.rng
		var specs []colSpec
		specs = append(specs, colSpec{
			info: ColumnInfo{Name: pool.keyName, Role: RolePartitionKey, Pool: pool.name},
			gen: func(r int) string {
				switch {
				case r < n:
					return pool.values[r]
				case r < n+4:
					return "Total"
				default:
					return "Other"
				}
			},
		})
		for i := 0; i < nm; i++ {
			limit := 5000 + rng.Intn(20000)
			specs = append(specs, colSpec{
				info: ColumnInfo{Name: measureNames[i%len(measureNames)], Role: RoleMeasure},
				gen:  func(r int) string { return fmt.Sprintf("%d", rng.Intn(limit)) },
			})
		}
		uniqueNames(specs)
		g.materialize(ds, topic, StylePartitioned, "", g.fileName(topic, fmt.Sprintf("part%d", p+1)), nRows, specs)
	}
}

// makeDuplicateDataset republishes a previously generated table under
// a new dataset (the US accidental-union pattern). Falls back to a
// denormalized dataset when nothing exists yet.
func (g *generator) makeDuplicateDataset() {
	if len(g.corpus.Metas) == 0 {
		g.makeDenormalizedDataset()
		return
	}
	src := g.corpus.Metas[g.rng.Intn(len(g.corpus.Metas))]
	ds := g.newDataset(src.Topic, src.Category)
	g.tblCounter++
	t := src.Table.Clone()
	t.DatasetID = ds.ID
	meta := &TableMeta{
		Table:        t,
		Dataset:      ds.ID,
		DatasetTitle: ds.Title,
		Topic:        src.Topic,
		Category:     src.Category,
		Style:        StyleDuplicate,
		EventClass:   src.EventClass,
		DuplicateOf:  src.Table.Name,
		Published:    ds.Published,
		Cols:         append([]ColumnInfo(nil), src.Cols...),
		RawSize:      src.RawSize,
	}
	g.corpus.Metas = append(g.corpus.Metas, meta)
}
