package gen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ogdp/internal/colstore"
	"ogdp/internal/table"
)

// Ingest primitives: the pieces of incremental corpus maintenance that
// touch the provenance schema. Delta detection and orchestration live
// in internal/ingest; this file owns reading the per-table content
// digests out of provenance.json and committing a patch (added,
// updated, deleted tables) back into a saved corpus directory with the
// same atomicity guarantees as SaveCorpus.

// CorpusDigest is the identity summary of a saved corpus: the portal,
// the manifest's table order, and each table's CSV content hash plus
// dataset attribution — everything delta detection needs without
// parsing a single table.
type CorpusDigest struct {
	// Portal is the corpus's portal id.
	Portal string
	// Files lists the table file names in provenance order.
	Files []string
	// Hash maps a file name to its CSV content hash; files whose
	// provenance entry lacks a parseable hash are absent (they always
	// count as changed).
	Hash map[string]uint64
	// Dataset and Published map a file name to its dataset attribution.
	Dataset   map[string]string
	Published map[string]time.Time
}

// Digest reads the per-table content digests of a saved corpus from
// its provenance manifest.
func Digest(dir string) (*CorpusDigest, error) {
	prov, err := readProvenance(dir)
	if err != nil {
		return nil, err
	}
	d := &CorpusDigest{
		Portal:    prov.Portal,
		Hash:      make(map[string]uint64, len(prov.Tables)),
		Dataset:   make(map[string]string, len(prov.Tables)),
		Published: make(map[string]time.Time, len(prov.Tables)),
	}
	for _, pt := range prov.Tables {
		d.Files = append(d.Files, pt.File)
		if h, ok := parseHash(pt.ContentHash); ok {
			d.Hash[pt.File] = h
		}
		d.Dataset[pt.File] = pt.Dataset
		d.Published[pt.File] = pt.Published
	}
	return d, nil
}

// IngestTable is one added or updated table handed to PatchCorpus: the
// parsed revision plus the exact CSV bytes to store (the content hash
// stamps both the provenance entry and the colstore file).
type IngestTable struct {
	Table *table.Table
	Body  []byte
	Hash  uint64
}

// PatchCorpus commits an ingest delta to a saved corpus directory:
// added and updated tables get their CSV and colstore files written
// (temp + rename, like SaveCorpus), the provenance manifest is patched
// — updated entries in place, added entries appended in the given
// order, deleted entries removed — and the dataset manifest drops
// deleted tables from its table lists. The fsynced manifest writes are
// the commit point; the deleted tables' files are removed only
// afterwards, so a crash at any step leaves a corpus the loaders read
// consistently. Updated entries keep their dataset attribution and the
// generation roles of columns whose names survive the revision; added
// tables carry no generation provenance.
func PatchCorpus(dir string, added, updated []IngestTable, deleted []string) error {
	prov, err := readProvenance(dir)
	if err != nil {
		return err
	}
	byFile := make(map[string]int, len(prov.Tables))
	for i, pt := range prov.Tables {
		byFile[pt.File] = i
	}

	for _, in := range updated {
		i, ok := byFile[in.Table.Name]
		if !ok {
			return fmt.Errorf("gen: patch: update %q: not in provenance", in.Table.Name)
		}
		if err := writeIngestTable(dir, in); err != nil {
			return err
		}
		pt := &prov.Tables[i]
		roles := make(map[string]provCol, len(pt.Cols))
		for _, pc := range pt.Cols {
			roles[pc.Name] = pc
		}
		pt.Cols = pt.Cols[:0]
		for _, name := range in.Table.Cols {
			pt.Cols = append(pt.Cols, provCol{Name: name, Role: roles[name].Role, Pool: roles[name].Pool})
		}
		pt.RawSize = int64(len(in.Body))
		pt.ContentHash = formatHash(in.Hash)
		pt.Colstore = in.Table.Name + colstore.Ext
	}
	for _, in := range added {
		if _, ok := byFile[in.Table.Name]; ok {
			return fmt.Errorf("gen: patch: add %q: already in provenance", in.Table.Name)
		}
		if err := writeIngestTable(dir, in); err != nil {
			return err
		}
		pt := provTable{
			File:        in.Table.Name,
			RawSize:     int64(len(in.Body)),
			ContentHash: formatHash(in.Hash),
			Colstore:    in.Table.Name + colstore.Ext,
		}
		for _, name := range in.Table.Cols {
			pt.Cols = append(pt.Cols, provCol{Name: name})
		}
		prov.Tables = append(prov.Tables, pt)
	}
	drop := make(map[string]bool, len(deleted))
	for _, name := range deleted {
		if _, ok := byFile[name]; !ok {
			return fmt.Errorf("gen: patch: delete %q: not in provenance", name)
		}
		drop[name] = true
	}
	kept := prov.Tables[:0]
	for _, pt := range prov.Tables {
		if !drop[pt.File] {
			kept = append(kept, pt)
		}
	}
	prov.Tables = kept

	if err := patchManifestTables(dir, drop); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, ProvenanceFile), prov); err != nil {
		return err
	}
	// The manifests no longer reference the deleted tables; their files
	// are now garbage and safe to drop (a crash here merely leaves
	// orphans no loader reads).
	for _, name := range deleted {
		for _, f := range []string{name, name + colstore.Ext} {
			if err := os.Remove(filepath.Join(dir, f)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("gen: patch: removing %s: %w", f, err)
			}
		}
	}
	return nil
}

// writeIngestTable writes one table's CSV and colstore files the way
// SaveCorpus does.
func writeIngestTable(dir string, in IngestTable) error {
	if err := colstore.AtomicWrite(filepath.Join(dir, in.Table.Name), in.Body, false); err != nil {
		return fmt.Errorf("gen: patch: %w", err)
	}
	if _, err := colstore.WriteFile(filepath.Join(dir, in.Table.Name+colstore.Ext), in.Table, in.Hash); err != nil {
		return fmt.Errorf("gen: patch: %w", err)
	}
	return nil
}

// readProvenance loads and parses the provenance manifest.
func readProvenance(dir string) (*provCorpus, error) {
	data, err := os.ReadFile(filepath.Join(dir, ProvenanceFile))
	if err != nil {
		return nil, fmt.Errorf("gen: reading provenance: %w", err)
	}
	var prov provCorpus
	if err := json.Unmarshal(data, &prov); err != nil {
		return nil, fmt.Errorf("gen: parsing %s: %w", ProvenanceFile, err)
	}
	return &prov, nil
}

// patchManifestTables rewrites datasets.json without the deleted
// tables in its per-dataset table lists. A corpus without a dataset
// manifest (or with nothing to drop) is left untouched.
func patchManifestTables(dir string, drop map[string]bool) error {
	if len(drop) == 0 {
		return nil
	}
	path := filepath.Join(dir, ManifestFile)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("gen: patch: reading manifest: %w", err)
	}
	var manifest []ManifestDataset
	if err := json.Unmarshal(data, &manifest); err != nil {
		return fmt.Errorf("gen: patch: parsing %s: %w", ManifestFile, err)
	}
	for i := range manifest {
		kept := manifest[i].Tables[:0]
		for _, name := range manifest[i].Tables {
			if !drop[name] {
				kept = append(kept, name)
			}
		}
		manifest[i].Tables = kept
	}
	return writeJSON(path, manifest)
}
