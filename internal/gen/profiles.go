package gen

// PortalProfile holds the per-portal generation knobs, calibrated
// against the statistics the paper reports for each portal. All
// probabilities are in [0, 1]; style weights need not sum to 1 (they
// are normalized).
type PortalProfile struct {
	// Name is the portal code.
	Name string

	// BaseDatasets is the dataset count at Scale 1.0.
	BaseDatasets int

	// Style weights: probability mass of each dataset publication
	// pattern.
	WDenormalized float64
	WSemiNorm     float64
	WPeriodic     float64
	WStandardized float64
	WEventStats   float64
	WPartitioned  float64
	WDuplicate    float64

	// MedianRows and MaxRows shape the lognormal row-count
	// distribution.
	MedianRows int
	MaxRows    int
	// RowSigma is the lognormal shape parameter (larger = heavier
	// tail).
	RowSigma float64

	// MedianCols shapes the column-count distribution of denormalized
	// tables.
	MedianCols int

	// PeriodicMin/Max bound the number of period tables per periodic
	// dataset.
	PeriodicMin, PeriodicMax int

	// PeriodicDriftProb is the probability a periodic dataset's entity
	// coverage and size drift between periods (drifting periods share a
	// schema but not a 0.9 value overlap).
	PeriodicDriftProb float64

	// KeyProb is the probability a fact table receives a sequential-ID
	// key column (drives the key-scarcity figures).
	KeyProb float64

	// Null injection: fraction of data columns with some nulls, with
	// heavy (> 50%) nulls, and entirely null.
	NullColFrac   float64
	HeavyNullFrac float64
	AllNullFrac   float64

	// Metadata style distribution (Table 3): structured, unstructured,
	// outside; the remainder is lacking.
	MetaStructured   float64
	MetaUnstructured float64
	MetaOutside      float64

	// Funnel rates (Table 1): fraction of advertised tables that fail
	// to download, that download but are not readable, and that are
	// rejected as too wide.
	NotDownloadableFrac float64
	UnreadableFrac      float64
	WideFrac            float64

	// Growth: publication years. With BulkYear != 0, most datasets are
	// stamped with that year (the step-function ingest the paper saw);
	// otherwise dates spread uniformly over [YearFrom, YearTo] (UK's
	// linear growth).
	YearFrom, YearTo int
	BulkYear         int

	// DomainColProb is the probability a fact table carries an extra
	// shared-domain column (state/province/year), the raw material of
	// accidental joins.
	DomainColProb float64

	// CodeColProb is the probability a denormalized table carries a
	// low-cardinality integer code column (the plntendem pattern):
	// such columns overlap perfectly across unrelated tables and
	// produce the enormous join expansions of Figure 8.
	CodeColProb float64

	// StatePool names the geographic pool this portal uses
	// ("province" for CA, "state" for US, "council" for UK/SG).
	StatePool string
}

// Profiles returns the four calibrated portal profiles in the paper's
// order: SG, CA, UK, US.
func Profiles() []PortalProfile {
	return []PortalProfile{SG(), CA(), UK(), US()}
}

// ProfileByName returns the profile for a portal code, or ok=false.
func ProfileByName(name string) (PortalProfile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return PortalProfile{}, false
}

// SG models Singapore: few, narrow, clean tables; standardized
// {level_1, level_2, year, value} schemas across many topics; every
// dataset has structured metadata; almost everything downloads.
func SG() PortalProfile {
	return PortalProfile{
		Name:         "SG",
		BaseDatasets: 90,

		WDenormalized: 0.12,
		WSemiNorm:     0.08,
		WPeriodic:     0.18,
		WStandardized: 0.55,
		WEventStats:   0.05,
		WPartitioned:  0.02,

		MedianRows: 95, MaxRows: 20000, RowSigma: 1.7,
		MedianCols:  4,
		PeriodicMin: 2, PeriodicMax: 5,
		PeriodicDriftProb: 0.35,
		KeyProb:           0.40,

		NullColFrac: 0.05, HeavyNullFrac: 0.01, AllNullFrac: 0.0,

		MetaStructured: 1.0,

		NotDownloadableFrac: 0.01, UnreadableFrac: 0.0, WideFrac: 0.0,

		YearFrom: 2016, YearTo: 2022, BulkYear: 2019,

		DomainColProb: 0.30,
		CodeColProb:   0.02,
		StatePool:     "council",
	}
}

// CA models Canada: multi-table datasets, many semi-normalized and
// periodic publications, 41% downloadable, mostly unstructured or
// missing metadata.
func CA() PortalProfile {
	return PortalProfile{
		Name:         "CA",
		BaseDatasets: 190,

		WDenormalized: 0.32,
		WSemiNorm:     0.18,
		WPeriodic:     0.30,
		WStandardized: 0.02,
		WEventStats:   0.10,
		WPartitioned:  0.08,

		MedianRows: 148, MaxRows: 45000, RowSigma: 1.6,
		MedianCols:  10,
		PeriodicMin: 2, PeriodicMax: 10,
		PeriodicDriftProb: 0.60,
		KeyProb:           0.46,

		NullColFrac: 0.55, HeavyNullFrac: 0.23, AllNullFrac: 0.03,

		MetaStructured: 0.04, MetaUnstructured: 0.08, MetaOutside: 0.29,

		NotDownloadableFrac: 0.59, UnreadableFrac: 0.005, WideFrac: 0.014,

		YearFrom: 2014, YearTo: 2022, BulkYear: 2018,

		DomainColProb: 0.35,
		CodeColProb:   0.10,
		StatePool:     "province",
	}
}

// UK models the United Kingdom: the most tables, dominated by
// periodically published multi-table datasets, metadata mostly
// lacking, slow linear growth (Figure 2).
func UK() PortalProfile {
	return PortalProfile{
		Name:         "UK",
		BaseDatasets: 300,

		WDenormalized: 0.29,
		WSemiNorm:     0.17,
		WPeriodic:     0.40,
		WStandardized: 0.02,
		WEventStats:   0.07,
		WPartitioned:  0.05,

		MedianRows: 86, MaxRows: 35000, RowSigma: 1.6,
		MedianCols:  9,
		PeriodicMin: 3, PeriodicMax: 12,
		PeriodicDriftProb: 0.80,
		KeyProb:           0.50,

		NullColFrac: 0.50, HeavyNullFrac: 0.13, AllNullFrac: 0.03,

		MetaStructured: 0.04, MetaUnstructured: 0.05, MetaOutside: 0.03,

		NotDownloadableFrac: 0.55, UnreadableFrac: 0.005, WideFrac: 0.048,

		YearFrom: 2017, YearTo: 2022, BulkYear: 0, // linear growth

		DomainColProb: 0.32,
		CodeColProb:   0.25,
		StatePool:     "council",
	}
}

// US models the United States: most datasets but ~1.5 tables each,
// large tables, better key discipline, duplicate publications, no
// structured metadata.
func US() PortalProfile {
	return PortalProfile{
		Name:         "US",
		BaseDatasets: 640,

		WDenormalized: 0.62,
		WSemiNorm:     0.08,
		WPeriodic:     0.12,
		WStandardized: 0.0,
		WEventStats:   0.05,
		WPartitioned:  0.02,
		WDuplicate:    0.07,

		MedianRows: 447, MaxRows: 90000, RowSigma: 1.7,
		MedianCols:  10,
		PeriodicMin: 2, PeriodicMax: 6,
		PeriodicDriftProb: 0.60,
		KeyProb:           0.85,

		NullColFrac: 0.50, HeavyNullFrac: 0.13, AllNullFrac: 0.03,

		MetaStructured: 0.0, MetaUnstructured: 0.0, MetaOutside: 0.27,

		NotDownloadableFrac: 0.43, UnreadableFrac: 0.003, WideFrac: 0.021,

		YearFrom: 2013, YearTo: 2022, BulkYear: 2017,

		DomainColProb: 0.20,
		CodeColProb:   0.75,
		StatePool:     "state",
	}
}
