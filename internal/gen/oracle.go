package gen

import (
	"ogdp/internal/classify"
	"ogdp/internal/join"
)

// Oracle labels joinable and unionable pairs from generation
// provenance, standing in for the paper's manual annotation (§5.3.2).
// The rules encode the paper's definitions: a pair is Useful when the
// join output has a clear interpretation (which, in a synthetic
// corpus, is decidable from how the tables were constructed), R-Acc
// when the tables share a context but the join does not, and U-Acc
// when the tables are unrelated.
type Oracle struct {
	corpus *Corpus
}

// Truth creates the labeling oracle for a generated corpus.
func Truth(c *Corpus) *Oracle { return &Oracle{corpus: c} }

// LabelJoin labels one joinable pair. Table indices in p refer to
// corpus.Tables() order.
func (o *Oracle) LabelJoin(p join.Pair) classify.Label {
	m1 := o.corpus.Metas[p.T1]
	m2 := o.corpus.Metas[p.T2]
	c1 := m1.Cols[p.C1]
	c2 := m2.Cols[p.C2]

	sameDataset := m1.Dataset == m2.Dataset
	sameTopic := m1.Topic == m2.Topic
	related := m1.Category == m2.Category

	// Useful pattern 1: joining on the planted entity key of a
	// semi-normalized dataset — key-key between master/aspect tables,
	// or key-foreign-key between the master and a transaction table —
	// when the tables belong to the same topic. Joins of two fact
	// tables on their foreign keys (nonkey-nonkey) blow up without a
	// clear interpretation and are accidental, matching the paper's
	// "joins of semi-normalized tables on non-key columns" pattern.
	if c1.Pool != "" && c1.Pool == c2.Pool && sameTopic {
		if isEntityJoinRole(c1.Role) && isEntityJoinRole(c2.Role) &&
			(c1.Role == RoleEntityKey || c2.Role == RoleEntityKey) {
			return classify.LabelUseful
		}
	}

	// Useful pattern 2: two statistics tables about the same event
	// class joined on their date keys (COVID testing ⨝ COVID cases).
	if c1.Role == RoleDateKey && c2.Role == RoleDateKey && m1.EventClass == m2.EventClass && m1.EventClass != "" {
		return classify.LabelUseful
	}

	// Useful pattern 3: partitioned statistics joined on the partition
	// key (species tables with Total/Other rows, Anecdote 3).
	if c1.Role == RolePartitionKey && c2.Role == RolePartitionKey && sameTopic {
		return classify.LabelUseful
	}

	// Everything else is accidental. Same dataset or same topic or the
	// same broad category means the tables are related (R-Acc); tables
	// from different categories are unrelated (U-Acc).
	if sameDataset || sameTopic || related {
		return classify.LabelRAcc
	}
	return classify.LabelUAcc
}

// isEntityJoinRole reports whether a column role represents the
// entity identity a semi-normalized dataset is organized around.
func isEntityJoinRole(r ColumnRole) bool {
	switch r {
	case RoleEntityKey, RoleForeignKey:
		return true
	}
	return false
}

// IntegrationGrade grades table t2 as an integration partner for
// query table t1 (indices into corpus.Tables()), for ranked-search
// evaluation. The grades follow the labeling study's usefulness
// ladder: 2 for a Useful planted join (any column pair LabelJoin says
// Useful) or a Useful union (exact schema match with LabelUnion
// Useful), 1 for a related-accidental union (duplicate
// republications: same data, so retrieving it is defensible but not
// useful), 0 for everything else.
func (o *Oracle) IntegrationGrade(t1, t2 int) int {
	if t1 == t2 {
		return 0
	}
	m1 := o.corpus.Metas[t1]
	m2 := o.corpus.Metas[t2]
	for c1 := range m1.Cols {
		for c2 := range m2.Cols {
			p := join.Pair{T1: t1, C1: c1, T2: t2, C2: c2}
			if o.LabelJoin(p) == classify.LabelUseful {
				return 2
			}
		}
	}
	if m1.Table.SchemaKey() == m2.Table.SchemaKey() {
		switch o.LabelUnion(t1, t2) {
		case classify.LabelUseful:
			return 2
		case classify.LabelRAcc:
			return 1
		}
	}
	return 0
}

// LabelUnion labels a unionable pair of tables (indices into
// corpus.Tables()). Periodic and partitioned same-schema publications
// are useful unions; SG's standardized schemas across unrelated topics
// and US duplicate republications are accidental.
func (o *Oracle) LabelUnion(t1, t2 int) classify.Label {
	m1 := o.corpus.Metas[t1]
	m2 := o.corpus.Metas[t2]

	// Duplicate republication: the union just doubles every row.
	if m1.DuplicateOf != "" || m2.DuplicateOf != "" {
		if m1.Topic == m2.Topic {
			return classify.LabelRAcc
		}
	}
	// Standardized schemas across different topics are schema
	// collisions, not real unions.
	if m1.Style == StyleStandardized && m2.Style == StyleStandardized && m1.Topic != m2.Topic {
		return classify.LabelUAcc
	}
	// Same topic (periodic partitions, aspect re-publications,
	// cross-year datasets by the same organization): interpretable.
	if m1.Topic == m2.Topic {
		return classify.LabelUseful
	}
	// Same schema, same category, different topic: still generally
	// interpretable (e.g. the same statistical table family), matching
	// the paper's finding that union false positives are rare.
	if m1.Category == m2.Category {
		return classify.LabelUseful
	}
	return classify.LabelUAcc
}
