package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"ogdp/internal/ckan"
	"ogdp/internal/csvio"
)

// BuildPortal serializes a corpus into a ckan.Portal, adding the
// deliberately broken resources (404s, HTML pages, binary garbage) and
// very wide tables at the profile's rates so a ckan.Client fetching
// the portal observes the paper's downloadable/readable funnel
// (Table 1). seed drives the placement of broken resources.
// csvFormatVariants are the advertised-format spellings real CKAN
// metadata uses for CSV resources; the fetch client must match them
// case-insensitively.
var csvFormatVariants = []string{"CSV", "csv", "Csv", " CSV", "csv "}

func BuildPortal(c *Corpus, seed int64) *ckan.Portal {
	rng := rand.New(rand.NewSource(seed))
	// Format spellings draw from their own stream so they don't
	// disturb the broken-resource placement of existing seeds.
	frng := rand.New(rand.NewSource(seed ^ 0x43535646))
	format := func() string { return csvFormatVariants[frng.Intn(len(csvFormatVariants))] }
	p := &ckan.Portal{Name: c.PortalName}

	byDataset := make(map[string][]*TableMeta)
	for _, m := range c.Metas {
		byDataset[m.Dataset] = append(byDataset[m.Dataset], m)
	}

	resCounter := 0
	nextID := func() string {
		resCounter++
		return fmt.Sprintf("%s-res-%06d", c.PortalName, resCounter)
	}

	prof := c.Profile
	for _, dm := range c.Datasets {
		d := &ckan.Dataset{
			ID:          dm.ID,
			Title:       dm.Title,
			Description: fmt.Sprintf("%s data published by the %s portal (%s).", dm.Title, c.PortalName, dm.Category),
			Published:   dm.Published,
			Metadata:    ckan.MetadataStyle(dm.Metadata),
		}
		for _, m := range byDataset[dm.ID] {
			id := nextID()
			d.Resources = append(d.Resources, &ckan.Resource{
				ID:     id,
				Name:   m.Table.Name,
				Format: format(),
				URL:    "/download/" + id,
				Body:   csvio.Bytes(m.Table),
			})
		}
		// Broken and wide resources, proportional to the dataset's real
		// tables. The funnel rates are fractions of *advertised* tables:
		// readable = 1 - notDownloadable - unreadable - wide, so each
		// real table spawns extras with the corresponding odds.
		nReal := len(byDataset[dm.ID])
		readableFrac := 1 - prof.NotDownloadableFrac - prof.UnreadableFrac - prof.WideFrac
		if readableFrac < 0.05 {
			readableFrac = 0.05
		}
		expected := float64(nReal) / readableFrac
		addBroken := func(kind ckan.BrokenKind, frac float64) {
			n := expected * frac
			count := int(n)
			if rng.Float64() < n-float64(count) {
				count++
			}
			for i := 0; i < count; i++ {
				id := nextID()
				r := &ckan.Resource{
					ID:     id,
					Name:   fmt.Sprintf("archived-%d.csv", resCounter),
					Format: format(),
					URL:    "/download/" + id,
					Broken: kind,
				}
				if kind == ckan.BrokenNone {
					r.Body = wideTableBody(rng)
					r.Name = fmt.Sprintf("matrix-%d.csv", resCounter)
				}
				d.Resources = append(d.Resources, r)
			}
		}
		addBroken(ckan.BrokenNotFound, prof.NotDownloadableFrac)
		addBroken(ckan.BrokenHTMLPage, prof.UnreadableFrac/2)
		addBroken(ckan.BrokenGarbage, prof.UnreadableFrac/2)
		addBroken(ckan.BrokenNone, prof.WideFrac) // wide but parseable-looking
		p.Datasets = append(p.Datasets, d)
	}
	return p
}

// wideTableBody builds a malformed very wide CSV (repeated periodical
// columns, the publication error the paper excludes with the 100-column
// cutoff).
func wideTableBody(rng *rand.Rand) []byte {
	nCols := 120 + rng.Intn(200)
	nRows := 3 + rng.Intn(20)
	var b strings.Builder
	for c := 0; c < nCols; c++ {
		if c > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "w%d", c%12) // repeated periodical headers
	}
	b.WriteByte('\n')
	for r := 0; r < nRows; r++ {
		for c := 0; c < nCols; c++ {
			if c > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", rng.Intn(10))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}
