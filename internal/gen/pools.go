package gen

import "fmt"

// entityPool is a closed domain of entity values with functionally
// dependent attributes, the raw material for denormalized tables
// (City → Province style FDs) and for value-overlap joins.
type entityPool struct {
	// name identifies the pool ("city", "species", ...); columns drawn
	// from the same pool overlap in values.
	name string
	// keyName is the column name used for the key values.
	keyName string
	// values are the key values.
	values []string
	// attrs maps attribute column name -> values parallel to values
	// (each attribute is functionally dependent on the key).
	attrs map[string][]string
}

func (p *entityPool) size() int { return len(p.values) }

var provinceNames = []string{
	"Ontario", "Quebec", "British Columbia", "Alberta", "Manitoba",
	"Saskatchewan", "Nova Scotia", "New Brunswick",
	"Newfoundland and Labrador", "Prince Edward Island",
	"Northwest Territories", "Yukon", "Nunavut",
}

var stateNames = []string{
	"Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
	"Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
	"Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
	"Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
	"Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
	"New Hampshire", "New Jersey", "New Mexico", "New York",
	"North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
	"Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
	"Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
	"West Virginia", "Wisconsin", "Wyoming",
}

var cityNames = []string{
	"Toronto", "Montreal", "Vancouver", "Calgary", "Edmonton", "Ottawa",
	"Winnipeg", "Quebec City", "Hamilton", "Kitchener", "London",
	"Victoria", "Halifax", "Oshawa", "Windsor", "Saskatoon", "Regina",
	"Sherbrooke", "Barrie", "Kelowna", "Abbotsford", "Kingston",
	"Sudbury", "Trois-Rivieres", "Guelph", "Moncton", "Brantford",
	"Saint John", "Thunder Bay", "Waterloo", "Charlottetown",
	"Fredericton", "Nanaimo", "Red Deer", "Lethbridge", "Kamloops",
	"Prince George", "Medicine Hat", "Drummondville", "Saint-Jerome",
}

var speciesNames = []string{
	"Atlantic Cod", "Haddock", "Pollock", "Lumpfish", "Halibut",
	"Herring", "Mackerel", "Capelin", "Redfish", "Greenland Turbot",
	"American Plaice", "Yellowtail Flounder", "Witch Flounder",
	"Winter Flounder", "Skate", "Dogfish", "Atlantic Salmon",
	"Arctic Char", "Rainbow Trout", "Brook Trout", "Lake Whitefish",
	"Walleye", "Northern Pike", "Yellow Perch", "Smallmouth Bass",
	"Striped Bass", "American Eel", "Snow Crab", "Lobster", "Shrimp",
}

var industryL1 = []string{
	"Manufacturing", "Services", "Construction", "Agriculture",
	"Mining", "Utilities", "Transport", "Finance",
}

var fundTypes = []string{"Operating", "Capital", "Grant"}

var councilNames = []string{
	"Camden", "Greenwich", "Hackney", "Islington", "Lambeth",
	"Lewisham", "Southwark", "Tower Hamlets", "Wandsworth",
	"Westminster", "Barnet", "Bexley", "Brent", "Bromley", "Croydon",
	"Ealing", "Enfield", "Haringey", "Harrow", "Havering", "Hillingdon",
	"Hounslow", "Kingston", "Merton", "Newham", "Redbridge", "Richmond",
	"Sutton", "Waltham Forest", "Bristol", "Leeds", "Manchester",
}

// buildPools constructs the shared entity pools. Pools are shared per
// generator so columns drawn from the same pool across tables have
// overlapping values. regionPool names the portal's regional domain
// ("province", "state", or "council"); city entities map onto it, so
// the saturation of the derived attribute matches the portal's
// geography.
func buildPools(regionPool string) map[string]*entityPool {
	pools := make(map[string]*entityPool)

	pools["province"] = &entityPool{
		name: "province", keyName: "province", values: provinceNames,
		attrs: map[string][]string{},
	}
	pools["state"] = &entityPool{
		name: "state", keyName: "state", values: stateNames,
		attrs: map[string][]string{},
	}
	pools["council"] = &entityPool{
		name: "council", keyName: "council", values: councilNames,
		attrs: map[string][]string{},
	}

	region := pools[regionPool]
	if region == nil {
		region = pools["province"]
	}
	cityRegion := make([]string, len(cityNames))
	for i := range cityNames {
		cityRegion[i] = region.values[i%len(region.values)]
	}
	pools["city"] = &entityPool{
		name: "city", keyName: "city", values: cityNames,
		attrs: map[string][]string{region.keyName: cityRegion},
	}

	spGroup := make([]string, len(speciesNames))
	for i := range speciesNames {
		if i < 18 {
			spGroup[i] = "Groundfish"
		} else if i < 27 {
			spGroup[i] = "Freshwater"
		} else {
			spGroup[i] = "Shellfish"
		}
	}
	pools["species"] = &entityPool{
		name: "species", keyName: "species", values: speciesNames,
		attrs: map[string][]string{"species_group": spGroup},
	}

	// Industry hierarchy: 32 level-2 industries under 8 level-1 groups.
	var l2 []string
	var l2parent []string
	for i := 0; i < 32; i++ {
		parent := industryL1[i%len(industryL1)]
		l2 = append(l2, fmt.Sprintf("%s Sector %d", parent, i/len(industryL1)+1))
		l2parent = append(l2parent, parent)
	}
	pools["industry"] = &entityPool{
		name: "industry", keyName: "industry_2", values: l2,
		attrs: map[string][]string{"industry_1": l2parent},
	}

	// Fund codes: code -> description, type (the Chicago budget FD).
	var codes, descs, types []string
	for i := 0; i < 20; i++ {
		codes = append(codes, fmt.Sprintf("%03d", 100+i*7))
		descs = append(descs, fmt.Sprintf("Fund %03d - %s Appropriations", 100+i*7, fundTypes[i%3]))
		types = append(types, fundTypes[i%3])
	}
	pools["fund"] = &entityPool{
		name: "fund", keyName: "fund_code", values: codes,
		attrs: map[string][]string{"fund_description": descs, "fund_type": types},
	}

	// Departments: number -> description.
	var depts, deptDescs []string
	for i := 0; i < 25; i++ {
		depts = append(depts, fmt.Sprintf("%d", 10+i*3))
		deptDescs = append(deptDescs, fmt.Sprintf("Department of Service %d", 10+i*3))
	}
	pools["department"] = &entityPool{
		name: "department", keyName: "dept_number", values: depts,
		attrs: map[string][]string{"dept_description": deptDescs},
	}

	// Facilities with geo coordinates (for geo-spatial join columns).
	var facs, coords []string
	for i := 0; i < 40; i++ {
		facs = append(facs, fmt.Sprintf("Facility %02d", i+1))
		lat := 43.0 + float64(i)*0.137
		lon := -80.0 - float64(i)*0.211
		coords = append(coords, fmt.Sprintf("%.4f, %.4f", lat, lon))
	}
	pools["facility"] = &entityPool{
		name: "facility", keyName: "facility", values: facs,
		attrs: map[string][]string{"location": coords},
	}

	// Small integer codes (the plntendem pattern of Anecdote 1): a
	// 30-value integer domain that repeats massively in large tables
	// and overlaps perfectly across unrelated publishers. Step 3 keeps
	// the values non-contiguous (plain integers, not incremental ids).
	var codes30 []string
	for i := 0; i < 15; i++ {
		codes30 = append(codes30, fmt.Sprintf("%d", i*3+1))
	}
	pools["code"] = &entityPool{
		name: "code", keyName: "plan_code", values: codes30,
		attrs: map[string][]string{},
	}

	// Years as a shared numeric domain.
	var years []string
	for y := 2000; y <= 2022; y++ {
		years = append(years, fmt.Sprintf("%d", y))
	}
	pools["year"] = &entityPool{
		name: "year", keyName: "year", values: years,
		attrs: map[string][]string{},
	}

	// Shared daily date range (the COVID-style common domain).
	var dates []string
	for d := 0; d < 365; d++ {
		month := d/31 + 1
		day := d%31 + 1
		if month > 12 {
			month = 12
		}
		dates = append(dates, fmt.Sprintf("2021-%02d-%02d", month, day))
	}
	dates = dedupeStrings(dates)
	pools["date"] = &entityPool{
		name: "date", keyName: "date", values: dates,
		attrs: map[string][]string{},
	}

	return pools
}

func dedupeStrings(in []string) []string {
	seen := make(map[string]struct{}, len(in))
	out := in[:0]
	for _, s := range in {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// topicCategory groups topics into broad domains; tables from the same
// category are "related" for labeling purposes.
var topicCategories = map[string][]string{
	"health":      {"covid testing", "covid cases", "covid vaccinations", "hospital wait times", "immunization coverage", "specialist service costs"},
	"fisheries":   {"fish landings", "lumpfish catch rates", "aquaculture production", "commercial licences"},
	"finance":     {"budget recommendations", "tax statistics", "research awards", "spending over 25k", "grants and contributions"},
	"environment": {"air quality", "co2 emissions", "water quality", "terrestrial biodiversity"},
	"transport":   {"road collisions", "transit ridership", "ev charging stations", "parking tickets"},
	"labour":      {"labour statistics", "employment by industry", "average wages", "job vacancies"},
	"housing":     {"housing starts", "property assessments", "social housing waitlist", "building permits"},
	"justice":     {"crime statistics", "conditional release decisions", "court cases", "police calls"},
	"education":   {"school enrolment", "graduation rates", "research funding", "library usage"},
	"energy":      {"electricity generation", "fuel prices", "energy consumption", "renewable capacity"},
}

// topicList flattens topicCategories deterministically.
func topicList() []struct{ topic, category string } {
	var out []struct{ topic, category string }
	// Deterministic order: iterate a fixed category order.
	for _, cat := range []string{
		"health", "fisheries", "finance", "environment", "transport",
		"labour", "housing", "justice", "education", "energy",
	} {
		for _, t := range topicCategories[cat] {
			out = append(out, struct{ topic, category string }{t, cat})
		}
	}
	return out
}
