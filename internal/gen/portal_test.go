package gen

import (
	"strings"
	"testing"

	"ogdp/internal/ckan"
	"ogdp/internal/csvio"
	"ogdp/internal/sniff"
)

func TestBuildPortalStructure(t *testing.T) {
	corpus := Generate(CA(), 0.1, 13)
	portal := BuildPortal(corpus, 13)

	if portal.Name != "CA" {
		t.Errorf("portal name = %q", portal.Name)
	}
	if len(portal.Datasets) != len(corpus.Datasets) {
		t.Fatalf("datasets = %d, want %d", len(portal.Datasets), len(corpus.Datasets))
	}

	var good, broken, wide int
	spellings := map[string]bool{}
	for _, d := range portal.Datasets {
		for _, r := range d.Resources {
			if !ckan.IsCSVFormat(r.Format) {
				t.Errorf("unexpected format %q", r.Format)
			}
			spellings[r.Format] = true
			switch r.Broken {
			case ckan.BrokenNone:
				if len(r.Body) == 0 {
					t.Errorf("resource %s has no body", r.ID)
				}
				if tb, err := csvio.ReadBytes(r.Name, r.Body); err == nil && tb.NumCols() >= 100 {
					t.Errorf("unexpectedly parsed a wide table: %d cols", tb.NumCols())
				} else if err != nil {
					wide++ // wide filler bodies fail the cutoff
				} else {
					good++
				}
			default:
				broken++
			}
		}
	}
	if good != len(corpus.Metas) {
		t.Errorf("readable resources = %d, want %d", good, len(corpus.Metas))
	}
	// CA drops ~59% at download: broken resources must be substantial.
	if broken == 0 {
		t.Error("CA portal should contain broken resources")
	}
	if wide == 0 {
		t.Error("CA portal should contain wide filler tables")
	}
	// Real CKAN metadata spells the format inconsistently; the portal
	// must exercise the client's case-insensitive matching.
	if len(spellings) < 2 {
		t.Errorf("formats = %v, want mixed-case CSV spellings", spellings)
	}
}

func TestBuildPortalWideBodiesAreCSVLooking(t *testing.T) {
	corpus := Generate(UK(), 0.06, 5)
	portal := BuildPortal(corpus, 5)
	foundWide := false
	for _, d := range portal.Datasets {
		for _, r := range d.Resources {
			if r.Broken != ckan.BrokenNone || len(r.Body) == 0 {
				continue
			}
			if _, err := csvio.ReadBytes(r.Name, r.Body); err != nil {
				foundWide = true
				// Wide bodies must still sniff as CSV (downloadable but
				// rejected at the cutoff, like the paper's 100+-column
				// publications).
				if f := sniff.Detect(r.Body); !f.IsTabular() {
					t.Errorf("wide body sniffs as %v", f)
				}
			}
		}
	}
	if !foundWide {
		t.Skip("no wide resources at this scale/seed")
	}
}

func TestMetadataDocDeterministic(t *testing.T) {
	corpus := Generate(CA(), 0.1, 13)
	for _, ds := range corpus.Datasets {
		a, okA := MetadataDoc(corpus, ds.ID, 3)
		b, okB := MetadataDoc(corpus, ds.ID, 3)
		if okA != okB || a != b {
			t.Fatalf("MetadataDoc not deterministic for %s", ds.ID)
		}
	}
}

func TestMetadataDocStyles(t *testing.T) {
	corpus := Generate(SG(), 0.2, 13)
	// SG: every dataset has structured (CSV) metadata.
	for _, ds := range corpus.Datasets {
		doc, ok := MetadataDoc(corpus, ds.ID, 3)
		if !ok {
			t.Fatalf("SG dataset %s lacks metadata", ds.ID)
		}
		if !strings.HasPrefix(doc, "column,description\n") {
			t.Fatalf("SG metadata not structured CSV:\n%s", doc[:60])
		}
	}
	if _, ok := MetadataDoc(corpus, "no-such-dataset", 3); ok {
		t.Error("unknown dataset should return ok=false")
	}
}

func TestMetadataDocColumnCoverage(t *testing.T) {
	corpus := Generate(SG(), 0.15, 13)
	for _, m := range corpus.Metas {
		doc, ok := MetadataDoc(corpus, m.Dataset, 3)
		if !ok {
			continue
		}
		for _, col := range m.Table.Cols {
			if !strings.Contains(doc, col) {
				t.Errorf("dataset %s metadata misses column %q", m.Dataset, col)
			}
		}
	}
}

func TestStyleAndRoleStrings(t *testing.T) {
	for s := StyleDenormalized; s <= StyleDuplicate; s++ {
		if s.String() == "invalid" {
			t.Errorf("TableStyle(%d) unnamed", s)
		}
	}
	for r := RoleSequentialID; r <= RoleLevel; r++ {
		if r.String() == "invalid" {
			t.Errorf("ColumnRole(%d) unnamed", r)
		}
	}
	if TableStyle(99).String() != "invalid" || ColumnRole(99).String() != "invalid" {
		t.Error("out-of-range names")
	}
}
