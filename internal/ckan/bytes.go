package ckan

import (
	"bytes"
	"io"
)

// bytesReader adapts a byte slice to io.Reader without copying.
func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
