package ckan

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"ogdp/internal/csvio"
	"ogdp/internal/sniff"
	"ogdp/internal/table"
)

// Client fetches a portal's CSV resources through the CKAN API,
// reproducing the paper's acquisition pipeline.
type Client struct {
	// BaseURL of the CKAN API, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// ReadOptions tunes the parsing step.
	ReadOptions csvio.Options
}

// NewClient creates a fetch client for the portal at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
	}
}

// FetchedTable is a resource that survived the full pipeline.
type FetchedTable struct {
	DatasetID    string
	DatasetTitle string
	Published    time.Time
	Resource     string
	Table        *table.Table
	RawSize      int64 // bytes of the raw CSV body
}

// FunnelStats counts resources through the pipeline stages the paper
// reports in Table 1.
type FunnelStats struct {
	Datasets     int
	Tables       int // resources advertised as CSV
	Downloadable int // HTTP 200
	Readable     int // sniffed as tabular, header inferred, parsed
	TooWide      int // rejected by the wide-table cutoff
}

// FetchAll runs the pipeline over every dataset in the portal and
// returns the readable tables along with funnel statistics.
func (c *Client) FetchAll() ([]*FetchedTable, FunnelStats, error) {
	var stats FunnelStats
	ids, err := c.packageList()
	if err != nil {
		return nil, stats, err
	}
	stats.Datasets = len(ids)

	var out []*FetchedTable
	for _, id := range ids {
		pkg, err := c.packageShow(id)
		if err != nil {
			return nil, stats, err
		}
		published, _ := time.Parse("2006-01-02T15:04:05", pkg.Created)
		for _, res := range pkg.Resources {
			if res.Format != "CSV" {
				continue
			}
			stats.Tables++
			body, ok := c.download(res.URL)
			if !ok {
				continue
			}
			stats.Downloadable++

			ft, wide := c.process(res.ID, res.Name, body)
			if wide {
				stats.TooWide++
				continue
			}
			if ft == nil {
				continue
			}
			stats.Readable++
			ft.DatasetID = pkg.ID
			ft.DatasetTitle = pkg.Title
			ft.Published = published
			ft.Table.DatasetID = pkg.ID
			out = append(out, ft)
		}
	}
	return out, stats, nil
}

// process runs sniffing, header inference and parsing over one
// downloaded body. It returns (nil, true) for wide-table rejections and
// (nil, false) for other unreadable resources.
func (c *Client) process(resID, name string, body []byte) (*FetchedTable, bool) {
	format := sniff.Detect(body)
	if !format.IsTabular() {
		return nil, false
	}
	opts := c.ReadOptions
	if format == sniff.FormatTSV {
		opts.Comma = '\t'
	}
	t, err := csvio.ReadWith(name, bytesReader(body), opts)
	if err != nil {
		if isWideError(err) {
			return nil, true
		}
		return nil, false
	}
	if t.NumCols() == 0 || t.NumRows() == 0 {
		return nil, false
	}
	return &FetchedTable{Resource: resID, Table: t, RawSize: int64(len(body))}, false
}

func isWideError(err error) bool {
	for err != nil {
		if err == csvio.ErrTooWide {
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func (c *Client) packageList() ([]string, error) {
	var resp struct {
		Success bool     `json:"success"`
		Result  []string `json:"result"`
	}
	if err := c.getJSON(c.BaseURL+"/api/3/action/package_list", &resp); err != nil {
		return nil, err
	}
	if !resp.Success {
		return nil, fmt.Errorf("ckan: package_list unsuccessful")
	}
	return resp.Result, nil
}

func (c *Client) packageShow(id string) (*packageJSON, error) {
	var resp struct {
		Success bool        `json:"success"`
		Result  packageJSON `json:"result"`
	}
	u := c.BaseURL + "/api/3/action/package_show?id=" + url.QueryEscape(id)
	if err := c.getJSON(u, &resp); err != nil {
		return nil, err
	}
	if !resp.Success {
		return nil, fmt.Errorf("ckan: package_show(%s) unsuccessful", id)
	}
	return &resp.Result, nil
}

// download fetches a resource URL; ok is true only for HTTP 200, the
// paper's "downloadable" criterion.
func (c *Client) download(resourceURL string) ([]byte, bool) {
	u := resourceURL
	if len(u) > 0 && u[0] == '/' {
		u = c.BaseURL + u
	}
	resp, err := c.httpClient().Get(u)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false
	}
	return body, true
}

func (c *Client) getJSON(u string, v interface{}) error {
	resp, err := c.httpClient().Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ckan: GET %s: status %d", u, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}
