package ckan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"ogdp/internal/csvio"
	"ogdp/internal/obs"
	"ogdp/internal/parallel"
	"ogdp/internal/sniff"
	"ogdp/internal/table"
)

// Default knobs for the fetch pipeline.
const (
	// DefaultTimeout is the per-request deadline when Client.Timeout is
	// zero. The zero-value Client's HTTP transport carries the same
	// timeout, so a portal that accepts a connection and then stalls
	// can never hang the crawl.
	DefaultTimeout = 30 * time.Second
	// DefaultRetries is the transient-failure retry budget when
	// Client.Retries is zero.
	DefaultRetries = 2
	// DefaultBackoff is the nominal delay before the first retry when
	// Client.Backoff is zero; later retries double it, with
	// deterministic seeded jitter.
	DefaultBackoff = 100 * time.Millisecond
)

// Ledger stages, the pipeline phases a request can permanently fail in.
const (
	StagePackageList = "package_list"
	StagePackageShow = "package_show"
	StageDownload    = "download"
)

// defaultHTTPClient backs Clients without an explicit HTTPClient.
// Unlike http.DefaultClient it has a timeout, so even a zero-value
// Client cannot hang forever on a stalled server.
var defaultHTTPClient = &http.Client{Timeout: DefaultTimeout}

// Client fetches a portal's CSV resources through the CKAN API,
// reproducing the paper's acquisition pipeline. Real portals fail
// constantly — only ~77–95% of advertised CSVs are downloadable at
// all (Table 1) — so the client is built for graceful degradation:
// transient failures (5xx, timeouts, truncated bodies) are retried
// with deterministic exponential backoff, permanent failures are
// recorded in a ledger and skipped, and requests fan out over a
// bounded worker pool with results merged in dataset-index order so
// output is byte-identical for every worker count.
type Client struct {
	// BaseURL of the CKAN API, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a DefaultTimeout timeout.
	HTTPClient *http.Client
	// ReadOptions tunes the parsing step.
	ReadOptions csvio.Options
	// Workers bounds the concurrent package_show and download
	// requests: 0 uses all CPUs, 1 runs sequentially. Results are
	// identical for every value.
	Workers int
	// Retries is the number of extra attempts after a transient
	// failure. Zero selects DefaultRetries; negative disables retries.
	Retries int
	// Timeout is the per-request deadline. Zero selects DefaultTimeout.
	Timeout time.Duration
	// Backoff is the nominal delay before the first retry, doubling
	// per attempt with seeded jitter. Zero selects DefaultBackoff;
	// negative disables waiting (useful in tests).
	Backoff time.Duration
	// Seed salts the retry jitter so backoff schedules are
	// reproducible run to run.
	Seed int64

	// Metrics, when non-nil, receives the fetch pipeline's counters
	// and histograms (requests, retries, fault classifications,
	// backoff delays, body sizes, funnel stages). Everything recorded
	// through it is deterministic for a fixed portal, seed, and fault
	// schedule — durations enter only via Now.
	Metrics *obs.Registry
	// MetricLabels are extra name, value pairs stamped on every
	// series this client records (the study pipeline passes
	// "portal", name so per-portal crawls stay distinguishable).
	MetricLabels []string
	// Trace, when non-nil, gains one child span per pipeline stage
	// (package_list, package_show, download) carrying task, item, and
	// byte counts.
	Trace *obs.Span
	// Now, when non-nil, measures per-request wall time into the
	// ogdp_fetch_request_seconds histogram. Leave nil (the default)
	// to keep the metrics snapshot free of wall-clock values; the
	// CLIs inject time.Now only under -trace.
	Now func() time.Time
}

// NewClient creates a fetch client for the portal at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: DefaultTimeout},
	}
}

// FetchedTable is a resource that survived the full pipeline.
type FetchedTable struct {
	DatasetID    string
	DatasetTitle string
	Published    time.Time
	Resource     string
	Table        *table.Table
	RawSize      int64 // bytes of the raw CSV body
}

// FetchFailure is one permanently failed request in the acquisition
// error ledger: it was retried while its failures looked transient,
// then given up on and skipped without aborting the crawl.
type FetchFailure struct {
	// Stage is the pipeline stage that failed: StagePackageList,
	// StagePackageShow or StageDownload.
	Stage string
	// DatasetID and ResourceID locate the failed request; ResourceID
	// is empty for metadata failures.
	DatasetID  string
	ResourceID string
	// Attempts is how many times the request was tried.
	Attempts int
	// Err is the final error, kept as a string so ledgers compare
	// cleanly across runs.
	Err string
}

// FunnelStats counts resources through the pipeline stages the paper
// reports in Table 1, plus the fault accounting of the crawl itself.
type FunnelStats struct {
	Datasets     int
	Tables       int // resources advertised as CSV
	Downloadable int // HTTP 200
	Readable     int // sniffed as tabular, header inferred, parsed
	TooWide      int // rejected by the wide-table cutoff
	// UnparsedDates counts datasets whose metadata_created matched no
	// accepted layout; their publication date is left zero rather than
	// silently skewing the growth analysis.
	UnparsedDates int
	// Retries counts retry attempts performed after transient
	// failures.
	Retries int
	// TransientFailures counts request attempts that failed in a
	// retryable way (5xx, timeout, truncated body), whether or not a
	// later attempt succeeded.
	TransientFailures int
	// PermanentFailures counts requests that failed for good: a
	// non-downloadable resource, or transient faults outlasting the
	// retry budget.
	PermanentFailures int
	// Failures is the per-stage ledger of permanent failures, in
	// deterministic (dataset, resource) order.
	Failures []FetchFailure
}

// tally counts the request attempts behind one logical fetch.
type tally struct {
	attempts  int
	retries   int
	transient int
}

func (s *FunnelStats) add(t tally) {
	s.Retries += t.retries
	s.TransientFailures += t.transient
}

// FetchAll runs the pipeline over every dataset in the portal and
// returns the readable tables along with funnel statistics. It is
// FetchAllContext with a background context.
func (c *Client) FetchAll() ([]*FetchedTable, FunnelStats, error) {
	return c.FetchAllContext(context.Background())
}

// FetchAllContext crawls the portal under ctx. Individual dataset or
// resource failures are never fatal: transient ones are retried, and
// permanent ones are recorded in the stats ledger and skipped, so the
// crawl returns partial results. The only error conditions are an
// unreachable package_list (there is nothing to crawl) and context
// cancellation.
func (c *Client) FetchAllContext(ctx context.Context) ([]*FetchedTable, FunnelStats, error) {
	var stats FunnelStats
	spanList := c.Trace.Child(StagePackageList)
	ids, lt, err := c.packageList(ctx)
	spanList.AddTasks(1)
	spanList.AddItems(len(ids))
	spanList.End()
	stats.add(lt)
	if err != nil {
		stats.PermanentFailures++
		stats.Failures = append(stats.Failures, FetchFailure{
			Stage: StagePackageList, Attempts: lt.attempts, Err: err.Error(),
		})
		c.recordFunnel(stats)
		return nil, stats, err
	}
	stats.Datasets = len(ids)
	spanShow := c.Trace.Child(StagePackageShow)
	spanShow.AddTasks(len(ids))

	// Stage 1: dataset metadata, fanned out index-addressed over the
	// pool.
	type showResult struct {
		pkg   *packageJSON
		tally tally
		err   error
	}
	shows, err := parallel.Map(ctx, len(ids), c.Workers, func(i int) showResult {
		pkg, t, err := c.packageShow(ctx, ids[i])
		return showResult{pkg: pkg, tally: t, err: err}
	})
	if err != nil {
		return nil, stats, err
	}

	// Merge metadata in dataset order and flatten the advertised CSV
	// resources into one work list, so stage 2 shares a single bounded
	// pool across datasets of any shape.
	type workItem struct {
		pkg       *packageJSON
		res       resourceJSON
		published time.Time
	}
	var work []workItem
	for i, sr := range shows {
		stats.add(sr.tally)
		if sr.err != nil {
			stats.PermanentFailures++
			stats.Failures = append(stats.Failures, FetchFailure{
				Stage: StagePackageShow, DatasetID: ids[i],
				Attempts: sr.tally.attempts, Err: sr.err.Error(),
			})
			continue
		}
		published, ok := parseCreated(sr.pkg.Created)
		if !ok {
			stats.UnparsedDates++
		}
		for _, res := range sr.pkg.Resources {
			if !IsCSVFormat(res.Format) {
				continue
			}
			work = append(work, workItem{pkg: sr.pkg, res: res, published: published})
		}
	}
	stats.Tables = len(work)
	spanShow.AddItems(len(work))
	spanShow.End()
	spanDownload := c.Trace.Child(StageDownload)
	spanDownload.AddTasks(len(work))

	// Stage 2: downloads and parsing over the same pool.
	type fetchResult struct {
		ft    *FetchedTable
		wide  bool
		tally tally
		err   error
	}
	results, err := parallel.Map(ctx, len(work), c.Workers, func(i int) fetchResult {
		w := work[i]
		body, t, err := c.download(ctx, w.res.ID, w.res.URL)
		r := fetchResult{tally: t, err: err}
		if err != nil {
			return r
		}
		r.ft, r.wide = c.process(w.res.ID, w.res.Name, body)
		return r
	})
	if err != nil {
		return nil, stats, err
	}

	var out []*FetchedTable
	for i, r := range results {
		w := work[i]
		stats.add(r.tally)
		if r.err != nil {
			stats.PermanentFailures++
			stats.Failures = append(stats.Failures, FetchFailure{
				Stage: StageDownload, DatasetID: w.pkg.ID, ResourceID: w.res.ID,
				Attempts: r.tally.attempts, Err: r.err.Error(),
			})
			continue
		}
		stats.Downloadable++
		if r.wide {
			stats.TooWide++
			continue
		}
		if r.ft == nil {
			continue
		}
		stats.Readable++
		r.ft.DatasetID = w.pkg.ID
		r.ft.DatasetTitle = w.pkg.Title
		r.ft.Published = w.published
		r.ft.Table.DatasetID = w.pkg.ID
		spanDownload.AddBytes(r.ft.RawSize)
		out = append(out, r.ft)
	}
	spanDownload.AddItems(len(out))
	spanDownload.End()
	c.recordFunnel(stats)
	return out, stats, nil
}

// recordFunnel publishes the crawl's funnel and fault totals as
// counters. Everything here derives from FunnelStats, which is already
// deterministic for every worker count.
func (c *Client) recordFunnel(stats FunnelStats) {
	r := c.Metrics
	if r == nil {
		return
	}
	ls := c.MetricLabels
	add := func(name, help string, n int) {
		r.Counter(name, help, ls...).Add(int64(n))
	}
	add("ogdp_fetch_datasets_total", "Datasets advertised by package_list.", stats.Datasets)
	add("ogdp_fetch_csv_resources_total", "Resources advertised as CSV (the paper's Tables column).", stats.Tables)
	add("ogdp_fetch_downloadable_total", "CSV resources that answered HTTP 200.", stats.Downloadable)
	add("ogdp_fetch_readable_total", "Resources sniffed as tabular and parsed.", stats.Readable)
	add("ogdp_fetch_too_wide_total", "Resources rejected by the wide-table cutoff.", stats.TooWide)
	add("ogdp_fetch_unparsed_dates_total", "Datasets whose metadata_created matched no accepted layout.", stats.UnparsedDates)
	for _, f := range stats.Failures {
		r.Counter("ogdp_fetch_permanent_failures_total",
			"Requests that permanently failed and were skipped, by stage.",
			c.stageLabels(f.Stage)...).Inc()
	}
}

// createdLayouts are the metadata_created shapes real portals emit:
// CKAN's naive ISO-8601 with optional fractional seconds, RFC3339
// (zoned, optional fractions), and bare dates.
var createdLayouts = []string{
	"2006-01-02T15:04:05",
	"2006-01-02T15:04:05.999999999",
	time.RFC3339Nano,
	"2006-01-02",
}

func parseCreated(s string) (time.Time, bool) {
	for _, layout := range createdLayouts {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts, true
		}
	}
	return time.Time{}, false
}

// process runs sniffing, header inference and parsing over one
// downloaded body. It returns (nil, true) for wide-table rejections and
// (nil, false) for other unreadable resources.
func (c *Client) process(resID, name string, body []byte) (*FetchedTable, bool) {
	format := sniff.Detect(body)
	if !format.IsTabular() {
		return nil, false
	}
	opts := c.ReadOptions
	if format == sniff.FormatTSV {
		opts.Comma = '\t'
	}
	t, err := csvio.ReadWith(name, bytesReader(body), opts)
	if err != nil {
		if errors.Is(err, csvio.ErrTooWide) {
			return nil, true
		}
		return nil, false
	}
	if t.NumCols() == 0 || t.NumRows() == 0 {
		return nil, false
	}
	return &FetchedTable{Resource: resID, Table: t, RawSize: int64(len(body))}, false
}

func (c *Client) packageList(ctx context.Context) ([]string, tally, error) {
	body, status, t, err := c.getWithRetry(ctx, StagePackageList, "package_list", c.BaseURL+"/api/3/action/package_list")
	if err != nil {
		return nil, t, fmt.Errorf("ckan: package_list: %w", err)
	}
	if status != http.StatusOK {
		return nil, t, fmt.Errorf("ckan: package_list: status %d", status)
	}
	var resp struct {
		Success bool     `json:"success"`
		Result  []string `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, t, fmt.Errorf("ckan: package_list: %w", err)
	}
	if !resp.Success {
		return nil, t, fmt.Errorf("ckan: package_list unsuccessful")
	}
	return resp.Result, t, nil
}

func (c *Client) packageShow(ctx context.Context, id string) (*packageJSON, tally, error) {
	u := c.BaseURL + "/api/3/action/package_show?id=" + url.QueryEscape(id)
	body, status, t, err := c.getWithRetry(ctx, StagePackageShow, "package_show:"+id, u)
	if err != nil {
		return nil, t, fmt.Errorf("ckan: package_show(%s): %w", id, err)
	}
	if status != http.StatusOK {
		return nil, t, fmt.Errorf("ckan: package_show(%s): status %d", id, status)
	}
	var resp struct {
		Success bool        `json:"success"`
		Result  packageJSON `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, t, fmt.Errorf("ckan: package_show(%s): %w", id, err)
	}
	if !resp.Success {
		return nil, t, fmt.Errorf("ckan: package_show(%s) unsuccessful", id)
	}
	return &resp.Result, t, nil
}

// download fetches a resource URL with retries. A non-nil error is the
// permanent failure — non-200 status (the paper's "not downloadable"
// criterion) or exhausted transport retries — recorded in the ledger.
func (c *Client) download(ctx context.Context, resID, resourceURL string) ([]byte, tally, error) {
	u := resourceURL
	if len(u) > 0 && u[0] == '/' {
		u = c.BaseURL + u
	}
	body, status, t, err := c.getWithRetry(ctx, StageDownload, "download:"+resID, u)
	if err != nil {
		return nil, t, err
	}
	if status != http.StatusOK {
		return nil, t, fmt.Errorf("status %d", status)
	}
	return body, t, nil
}

// stageMetrics bundles the per-stage series of the retry loop. All
// handles are nil (and so no-ops) when the client carries no registry.
type stageMetrics struct {
	requests   *obs.Counter
	retries    *obs.Counter
	bytes      *obs.Counter
	bodyBytes  *obs.Histogram
	backoff    *obs.Histogram
	reqSeconds *obs.Histogram // only under an injected clock
	failures   func(kind string) *obs.Counter
}

// stageLabels returns the client's MetricLabels plus the stage label
// and any extra pairs — the label set shared by per-stage series.
func (c *Client) stageLabels(stage string, extra ...string) []string {
	kv := make([]string, 0, len(c.MetricLabels)+2+len(extra))
	kv = append(kv, c.MetricLabels...)
	kv = append(kv, "stage", stage)
	return append(kv, extra...)
}

func (c *Client) stageMetrics(stage string) stageMetrics {
	r := c.Metrics
	ls := c.stageLabels(stage)
	sm := stageMetrics{
		requests: r.Counter("ogdp_fetch_requests_total",
			"HTTP request attempts issued by the fetch pipeline.", ls...),
		retries: r.Counter("ogdp_fetch_retries_total",
			"Retry attempts performed after transient failures.", ls...),
		bytes: r.Counter("ogdp_fetch_bytes_total",
			"Response body bytes received on successful requests.", ls...),
		bodyBytes: r.Histogram("ogdp_fetch_body_bytes",
			"Response body size per successful request, in bytes.",
			obs.SizeBuckets, ls...),
		backoff: r.Histogram("ogdp_fetch_backoff_seconds",
			"Deterministic seeded backoff delay before each retry, in seconds.",
			obs.DurationBuckets, ls...),
		failures: func(kind string) *obs.Counter {
			return r.Counter("ogdp_fetch_attempt_failures_total",
				"Request attempts that failed transiently, by fault kind.",
				c.stageLabels(stage, "kind", kind)...)
		},
	}
	if c.Now != nil {
		sm.reqSeconds = r.Histogram("ogdp_fetch_request_seconds",
			"Wall time per request attempt, in seconds (recorded only under -trace's injected clock).",
			obs.DurationBuckets, ls...)
	}
	return sm
}

// getWithRetry GETs u under the per-request deadline, retrying
// transient failures — 5xx statuses, timeouts, connection errors,
// truncated bodies — with deterministic exponential backoff. stage
// names the pipeline stage for metric labels; key salts the backoff
// jitter per logical request. It returns the final body and status;
// err is non-nil only when the last attempt still failed transiently.
func (c *Client) getWithRetry(ctx context.Context, stage, key, u string) ([]byte, int, tally, error) {
	base := c.backoffBase()
	bo := parallel.Backoff{Base: base, Max: 32 * base, Seed: c.Seed}
	retries := c.retryBudget()
	sm := c.stageMetrics(stage)
	var t tally
	for attempt := 1; ; attempt++ {
		t.attempts++
		sm.requests.Inc()
		var start time.Time
		if c.Now != nil {
			start = c.Now()
		}
		body, status, err := c.getOnce(ctx, u)
		if c.Now != nil {
			sm.reqSeconds.ObserveDuration(c.Now().Sub(start))
		}
		if err == nil && status < 500 {
			sm.bytes.Add(int64(len(body)))
			sm.bodyBytes.Observe(float64(len(body)))
			return body, status, t, nil
		}
		kind := "transport"
		if err == nil {
			err = fmt.Errorf("status %d", status)
			kind = "status_5xx"
		}
		t.transient++
		sm.failures(kind).Inc()
		if attempt > retries || ctx.Err() != nil {
			return nil, status, t, err
		}
		t.retries++
		sm.retries.Inc()
		// The delay is a pure function of (Seed, key, attempt), so this
		// histogram is byte-identical for every worker count even under
		// injected faults.
		sm.backoff.Observe(bo.Delay(key, attempt).Seconds())
		if bo.Sleep(ctx, key, attempt) != nil {
			return nil, status, t, err
		}
	}
}

func (c *Client) getOnce(ctx context.Context, u string) ([]byte, int, error) {
	reqCtx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, fmt.Errorf("reading body: %w", err)
	}
	return body, resp.StatusCode, nil
}

func (c *Client) retryBudget() int {
	switch {
	case c.Retries < 0:
		return 0
	case c.Retries == 0:
		return DefaultRetries
	}
	return c.Retries
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c *Client) backoffBase() time.Duration {
	switch {
	case c.Backoff < 0:
		return 0
	case c.Backoff == 0:
		return DefaultBackoff
	}
	return c.Backoff
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}
