package ckan

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ogdp/internal/parallel"
)

// Server exposes a Portal over the CKAN Action API v3 surface the
// paper's pipeline uses:
//
//	GET /api/3/action/package_list          -> {"success": true, "result": [ids...]}
//	GET /api/3/action/package_show?id=<id>  -> {"success": true, "result": {dataset}}
//	GET /download/<resourceID>              -> raw resource body
//
// Deliberately broken resources behave accordingly: BrokenNotFound
// URLs return 404, BrokenHTMLPage URLs return an HTML error page with
// status 200, and so on, so that a client exercising the pipeline
// observes the same downloadable/readable funnel as the paper.
//
// On top of those data-quality defects, InjectFaults arms transport-
// level fault injection — transient 500s, truncated bodies, latency —
// per endpoint, so the client's retry, backoff and partial-failure
// accounting can be tested against a deterministic flaky portal.
type Server struct {
	portal *Portal
	mux    *http.ServeMux

	mu       sync.Mutex
	faults   Faults
	attempts map[string]int
}

// FaultSpec describes the faults injected into one endpoint class.
// The zero value injects nothing.
type FaultSpec struct {
	// FailFirst makes the first N attempts at each distinct request
	// fail with a 500 before the endpoint starts succeeding — the
	// "fail N times, then recover" shape retry tests need.
	FailFirst int
	// Rate500 is the probability in [0,1) that an attempt fails with
	// a 500. Decisions hash (seed, request key, attempt number), so
	// schedules are reproducible and independent of arrival order.
	Rate500 float64
	// TruncateRate is the probability that a response body is cut off
	// mid-transfer; the client observes an unexpected EOF.
	TruncateRate float64
	// Latency delays every response.
	Latency time.Duration
}

// Faults configures the server's injected failures per endpoint.
type Faults struct {
	// Seed drives every probabilistic decision.
	Seed        int64
	PackageList FaultSpec
	PackageShow FaultSpec
	Download    FaultSpec
}

// NewServer creates a CKAN API server for the portal.
func NewServer(p *Portal) *Server {
	s := &Server{portal: p, mux: http.NewServeMux(), attempts: make(map[string]int)}
	s.mux.HandleFunc("/api/3/action/package_list", s.packageList)
	s.mux.HandleFunc("/api/3/action/package_show", s.packageShow)
	s.mux.HandleFunc("/download/", s.download)
	return s
}

// InjectFaults arms (or, with the zero Faults, disarms) fault
// injection and resets the per-request attempt counters, so
// back-to-back runs against the same server see identical fault
// schedules.
func (s *Server) InjectFaults(f Faults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
	s.attempts = make(map[string]int)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiResponse is the CKAN action API envelope.
type apiResponse struct {
	Success bool        `json:"success"`
	Result  interface{} `json:"result,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// packageJSON mirrors the subset of CKAN package metadata the client
// needs.
type packageJSON struct {
	ID        string         `json:"id"`
	Title     string         `json:"title"`
	Notes     string         `json:"notes"`
	Created   string         `json:"metadata_created"`
	Resources []resourceJSON `json:"resources"`
}

type resourceJSON struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Format string `json:"format"`
	URL    string `json:"url"`
}

// mustJSON marshals an API envelope; the payload types cannot fail.
func mustJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

type faultAction int

const (
	faultNone faultAction = iota
	fault500
	faultTruncate
)

// decide registers one attempt at key and returns its injected fate.
func (s *Server) decide(sp FaultSpec, key string) faultAction {
	if sp == (FaultSpec{}) {
		return faultNone
	}
	s.mu.Lock()
	n := s.attempts[key]
	s.attempts[key] = n + 1
	seed := s.faults.Seed
	s.mu.Unlock()
	if sp.Latency > 0 {
		time.Sleep(sp.Latency)
	}
	if n < sp.FailFirst {
		return fault500
	}
	if sp.Rate500 > 0 && parallel.Hash01(seed, "500:"+key, n) < sp.Rate500 {
		return fault500
	}
	if sp.TruncateRate > 0 && parallel.Hash01(seed, "truncate:"+key, n) < sp.TruncateRate {
		return faultTruncate
	}
	return faultNone
}

// deliver writes a response through the fault injector: the attempt
// may be replaced by a 500, truncated mid-body, or delayed, per the
// endpoint's FaultSpec.
func (s *Server) deliver(w http.ResponseWriter, sp FaultSpec, key string, status int, contentType string, body []byte) {
	switch s.decide(sp, key) {
	case fault500:
		http.Error(w, "injected transient failure", http.StatusInternalServerError)
		return
	case faultTruncate:
		// Declaring the full length and writing half of it makes
		// net/http drop the connection, so the client reads a
		// truncated body (unexpected EOF).
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(status)
		w.Write(body[:len(body)/2])
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) spec() Faults {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

func (s *Server) packageList(w http.ResponseWriter, r *http.Request) {
	ids := make([]string, len(s.portal.Datasets))
	for i, d := range s.portal.Datasets {
		ids[i] = d.ID
	}
	body := mustJSON(apiResponse{Success: true, Result: ids})
	s.deliver(w, s.spec().PackageList, "package_list", http.StatusOK, "application/json", body)
}

func (s *Server) packageShow(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	sp := s.spec().PackageShow
	key := "package_show:" + id
	d := s.portal.Dataset(id)
	if d == nil {
		body := mustJSON(apiResponse{Success: false, Error: "Not found"})
		s.deliver(w, sp, key, http.StatusNotFound, "application/json", body)
		return
	}
	pkg := packageJSON{
		ID:      d.ID,
		Title:   d.Title,
		Notes:   d.Description,
		Created: d.Published.Format("2006-01-02T15:04:05"),
	}
	for _, res := range d.Resources {
		pkg.Resources = append(pkg.Resources, resourceJSON{
			ID:     res.ID,
			Name:   res.Name,
			Format: res.Format,
			URL:    res.URL,
		})
	}
	body := mustJSON(apiResponse{Success: true, Result: pkg})
	s.deliver(w, sp, key, http.StatusOK, "application/json", body)
}

func (s *Server) download(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/download/")
	sp := s.spec().Download
	key := "download:" + id
	res := s.portal.Resource(id)
	if res == nil {
		s.deliver(w, sp, key, http.StatusNotFound, "text/plain; charset=utf-8", []byte("not found\n"))
		return
	}
	switch res.Broken {
	case BrokenNotFound:
		s.deliver(w, sp, key, http.StatusNotFound, "text/plain; charset=utf-8", []byte("not found\n"))
	case BrokenHTMLPage:
		page := []byte("<!DOCTYPE html><html><body><h1>Resource moved</h1><p>This dataset is no longer available at this address.</p></body></html>")
		s.deliver(w, sp, key, http.StatusOK, "text/html", page)
	case BrokenGarbage:
		garbage := make([]byte, 512)
		for i := range garbage {
			garbage[i] = byte(i*7 + 3)
		}
		s.deliver(w, sp, key, http.StatusOK, "application/octet-stream", garbage)
	default:
		s.deliver(w, sp, key, http.StatusOK, "text/csv", res.Body)
	}
}
