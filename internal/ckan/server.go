package ckan

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Server exposes a Portal over the CKAN Action API v3 surface the
// paper's pipeline uses:
//
//	GET /api/3/action/package_list          -> {"success": true, "result": [ids...]}
//	GET /api/3/action/package_show?id=<id>  -> {"success": true, "result": {dataset}}
//	GET /download/<resourceID>              -> raw resource body
//
// Deliberately broken resources behave accordingly: BrokenNotFound
// URLs return 404, BrokenHTMLPage URLs return an HTML error page with
// status 200, and so on, so that a client exercising the pipeline
// observes the same downloadable/readable funnel as the paper.
type Server struct {
	portal *Portal
	mux    *http.ServeMux
}

// NewServer creates a CKAN API server for the portal.
func NewServer(p *Portal) *Server {
	s := &Server{portal: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/3/action/package_list", s.packageList)
	s.mux.HandleFunc("/api/3/action/package_show", s.packageShow)
	s.mux.HandleFunc("/download/", s.download)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiResponse is the CKAN action API envelope.
type apiResponse struct {
	Success bool        `json:"success"`
	Result  interface{} `json:"result,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// packageJSON mirrors the subset of CKAN package metadata the client
// needs.
type packageJSON struct {
	ID        string         `json:"id"`
	Title     string         `json:"title"`
	Notes     string         `json:"notes"`
	Created   string         `json:"metadata_created"`
	Resources []resourceJSON `json:"resources"`
}

type resourceJSON struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Format string `json:"format"`
	URL    string `json:"url"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) packageList(w http.ResponseWriter, r *http.Request) {
	ids := make([]string, len(s.portal.Datasets))
	for i, d := range s.portal.Datasets {
		ids[i] = d.ID
	}
	writeJSON(w, http.StatusOK, apiResponse{Success: true, Result: ids})
}

func (s *Server) packageShow(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	d := s.portal.Dataset(id)
	if d == nil {
		writeJSON(w, http.StatusNotFound, apiResponse{Success: false, Error: "Not found"})
		return
	}
	pkg := packageJSON{
		ID:      d.ID,
		Title:   d.Title,
		Notes:   d.Description,
		Created: d.Published.Format("2006-01-02T15:04:05"),
	}
	for _, res := range d.Resources {
		pkg.Resources = append(pkg.Resources, resourceJSON{
			ID:     res.ID,
			Name:   res.Name,
			Format: res.Format,
			URL:    res.URL,
		})
	}
	writeJSON(w, http.StatusOK, apiResponse{Success: true, Result: pkg})
}

func (s *Server) download(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/download/")
	res := s.portal.Resource(id)
	if res == nil {
		http.NotFound(w, r)
		return
	}
	switch res.Broken {
	case BrokenNotFound:
		http.NotFound(w, r)
	case BrokenHTMLPage:
		w.Header().Set("Content-Type", "text/html")
		w.Write([]byte("<!DOCTYPE html><html><body><h1>Resource moved</h1><p>This dataset is no longer available at this address.</p></body></html>"))
	case BrokenGarbage:
		garbage := make([]byte, 512)
		for i := range garbage {
			garbage[i] = byte(i*7 + 3)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(garbage)
	default:
		w.Header().Set("Content-Type", "text/csv")
		w.Write(res.Body)
	}
}
