package ckan

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// testPortal builds a small portal with every failure mode.
func testPortal() *Portal {
	good := []byte("id,name,province\n1,Waterloo,ON\n2,Toronto,ON\n")
	wide := func() []byte {
		row1, row2 := "", ""
		for i := 0; i < 150; i++ {
			if i > 0 {
				row1 += ","
				row2 += ","
			}
			row1 += "c"
			row2 += "1"
		}
		return []byte(row1 + "\n" + row2 + "\n")
	}()
	return &Portal{
		Name: "T",
		Datasets: []*Dataset{
			{
				ID: "ds-1", Title: "Cities", Published: time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC),
				Metadata: MetadataStructured,
				Resources: []*Resource{
					{ID: "r-1", Name: "cities.csv", Format: "CSV", URL: "/download/r-1", Body: good},
					{ID: "r-2", Name: "notes.pdf", Format: "PDF", URL: "/download/r-2", Body: []byte("%PDF-1.4")},
				},
			},
			{
				ID: "ds-2", Title: "Broken things", Published: time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC),
				Resources: []*Resource{
					{ID: "r-3", Name: "gone.csv", Format: "CSV", URL: "/download/r-3", Broken: BrokenNotFound},
					{ID: "r-4", Name: "page.csv", Format: "CSV", URL: "/download/r-4", Broken: BrokenHTMLPage},
					{ID: "r-5", Name: "junk.csv", Format: "CSV", URL: "/download/r-5", Broken: BrokenGarbage},
					{ID: "r-6", Name: "wide.csv", Format: "CSV", URL: "/download/r-6", Body: wide},
					{ID: "r-7", Name: "more.csv", Format: "CSV", URL: "/download/r-7", Body: good},
				},
			},
		},
	}
}

func TestServerPackageList(t *testing.T) {
	srv := httptest.NewServer(NewServer(testPortal()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/3/action/package_list")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Success bool     `json:"success"`
		Result  []string `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Success || len(out.Result) != 2 || out.Result[0] != "ds-1" {
		t.Errorf("package_list = %+v", out)
	}
}

func TestServerPackageShow(t *testing.T) {
	srv := httptest.NewServer(NewServer(testPortal()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/3/action/package_show?id=ds-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Success bool        `json:"success"`
		Result  packageJSON `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Success || out.Result.Title != "Cities" || len(out.Result.Resources) != 2 {
		t.Errorf("package_show = %+v", out)
	}

	resp2, err := http.Get(srv.URL + "/api/3/action/package_show?id=missing")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("missing dataset: status %d", resp2.StatusCode)
	}
}

func TestServerDownloadModes(t *testing.T) {
	srv := httptest.NewServer(NewServer(testPortal()))
	defer srv.Close()

	get := func(id string) *http.Response {
		resp, err := http.Get(srv.URL + "/download/" + id)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := get("r-1"); resp.StatusCode != 200 {
		t.Errorf("good resource: %d", resp.StatusCode)
	}
	if resp := get("r-3"); resp.StatusCode != 404 {
		t.Errorf("BrokenNotFound: %d", resp.StatusCode)
	}
	if resp := get("r-4"); resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/html" {
		t.Errorf("BrokenHTMLPage: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if resp := get("nope"); resp.StatusCode != 404 {
		t.Errorf("unknown resource: %d", resp.StatusCode)
	}
}

func TestClientFetchAllFunnel(t *testing.T) {
	srv := httptest.NewServer(NewServer(testPortal()))
	defer srv.Close()

	client := NewClient(srv.URL)
	tables, stats, err := client.FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	// 6 advertised CSVs; r-3 not downloadable; r-4 (html), r-5 (binary)
	// unreadable; r-6 too wide; r-1 and r-7 readable.
	if stats.Datasets != 2 || stats.Tables != 6 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Downloadable != 5 {
		t.Errorf("downloadable = %d, want 5", stats.Downloadable)
	}
	if stats.Readable != 2 {
		t.Errorf("readable = %d, want 2", stats.Readable)
	}
	if stats.TooWide != 1 {
		t.Errorf("tooWide = %d, want 1", stats.TooWide)
	}
	// The one non-downloadable resource is accounted on the ledger
	// rather than silently dropped.
	if stats.PermanentFailures != 1 || len(stats.Failures) != 1 {
		t.Errorf("failure accounting = %+v", stats)
	}
	if len(stats.Failures) == 1 {
		f := stats.Failures[0]
		if f.Stage != StageDownload || f.ResourceID != "r-3" || f.Attempts != 1 {
			t.Errorf("ledger entry = %+v", f)
		}
	}
	if stats.Retries != 0 || stats.TransientFailures != 0 || stats.UnparsedDates != 0 {
		t.Errorf("healthy portal recorded faults: %+v", stats)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	ft := tables[0]
	if ft.DatasetID != "ds-1" || ft.Table.NumRows() != 2 || ft.RawSize == 0 {
		t.Errorf("fetched table = %+v", ft)
	}
	if ft.Published.Year() != 2020 {
		t.Errorf("published = %v", ft.Published)
	}
	if ft.Table.DatasetID != "ds-1" {
		t.Errorf("table DatasetID not propagated: %q", ft.Table.DatasetID)
	}
}

func TestPortalLookups(t *testing.T) {
	p := testPortal()
	if p.NumTables() != 6 {
		t.Errorf("NumTables = %d", p.NumTables())
	}
	if p.Resource("r-5") == nil || p.Resource("zzz") != nil {
		t.Error("Resource lookup wrong")
	}
	if p.Dataset("ds-2") == nil || p.Dataset("zzz") != nil {
		t.Error("Dataset lookup wrong")
	}
}

func TestMetadataStyleString(t *testing.T) {
	for m := MetadataLacking; m <= MetadataOutside; m++ {
		if m.String() == "invalid" {
			t.Errorf("MetadataStyle(%d) unnamed", m)
		}
	}
}
