package ckan

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fastClient returns a client tuned for fault tests: near-zero
// backoff so retries are exercised without slowing the suite.
func fastClient(base string, workers, retries int) *Client {
	c := NewClient(base)
	c.Workers = workers
	c.Retries = retries
	c.Backoff = time.Microsecond
	c.Seed = 42
	return c
}

// faultPortal is testPortal scaled out to enough datasets that the
// worker pool actually interleaves requests.
func faultPortal() *Portal {
	p := testPortal()
	for i := 0; i < 10; i++ {
		body := []byte(fmt.Sprintf("id,city,rank\n%d,Kitchener,%d\n%d,Guelph,%d\n", i, i+1, i+10, i+2))
		p.Datasets = append(p.Datasets, &Dataset{
			ID:        fmt.Sprintf("ds-extra-%02d", i),
			Title:     fmt.Sprintf("Extra %d", i),
			Published: time.Date(2019, time.Month(i%12+1), 3, 0, 0, 0, 0, time.UTC),
			Resources: []*Resource{
				{ID: fmt.Sprintf("rx-%02d", i), Name: "extra.csv", Format: "csv",
					URL: fmt.Sprintf("/download/rx-%02d", i), Body: body},
			},
		})
	}
	return p
}

// normalized strips the retry accounting and ledger, leaving the pure
// funnel for comparisons between faulted and fault-free runs (retry
// counts legitimately differ; the funnel must not).
func normalized(s FunnelStats) FunnelStats {
	s.Retries = 0
	s.TransientFailures = 0
	s.Failures = nil
	return s
}

// TestFetchAllRecoversFromTransientFaults: every endpoint fails its
// first two attempts at every request; with a retry budget of three,
// the crawl must reproduce the fault-free funnel and tables exactly.
func TestFetchAllRecoversFromTransientFaults(t *testing.T) {
	s := NewServer(faultPortal())
	srv := httptest.NewServer(s)
	defer srv.Close()

	wantTables, wantStats, err := fastClient(srv.URL, 4, -1).FetchAll()
	if err != nil {
		t.Fatal(err)
	}

	fail2 := FaultSpec{FailFirst: 2}
	s.InjectFaults(Faults{Seed: 1, PackageList: fail2, PackageShow: fail2, Download: fail2})
	gotTables, gotStats, err := fastClient(srv.URL, 4, 3).FetchAll()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(gotTables, wantTables) {
		t.Errorf("tables differ from the fault-free run: %d vs %d", len(gotTables), len(wantTables))
	}
	if got, want := normalized(gotStats), normalized(wantStats); !reflect.DeepEqual(got, want) {
		t.Errorf("funnel differs:\nfaulted    %+v\nfault-free %+v", got, want)
	}
	if gotStats.Retries == 0 || gotStats.TransientFailures == 0 {
		t.Errorf("no retries recorded under FailFirst faults: %+v", gotStats)
	}
	if wantStats.Retries != 0 {
		t.Errorf("fault-free run recorded retries: %+v", wantStats)
	}
}

// TestFetchAllDeterministicAcrossWorkersUnderFaults is the acceptance
// criterion: against a portal injecting ~30% transient faults, the
// crawl is byte-identical for Workers=1 and Workers=8 — including the
// retry counters and the failure ledger — and, with enough retry
// budget, identical to the fault-free funnel.
func TestFetchAllDeterministicAcrossWorkersUnderFaults(t *testing.T) {
	s := NewServer(faultPortal())
	srv := httptest.NewServer(s)
	defer srv.Close()

	faults := Faults{
		Seed:        99,
		PackageList: FaultSpec{Rate500: 0.3},
		PackageShow: FaultSpec{Rate500: 0.3},
		Download:    FaultSpec{Rate500: 0.3, TruncateRate: 0.15},
	}

	s.InjectFaults(faults)
	t1, s1, err := fastClient(srv.URL, 1, 6).FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	s.InjectFaults(faults) // reset attempt counters: identical schedule
	t8, s8, err := fastClient(srv.URL, 8, 6).FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t8) {
		t.Errorf("tables differ across worker counts: %d vs %d", len(t1), len(t8))
	}
	if !reflect.DeepEqual(s1, s8) {
		t.Errorf("stats differ across worker counts:\nW=1 %+v\nW=8 %+v", s1, s8)
	}
	if s1.Retries == 0 {
		t.Error("a 30% fault rate should force retries")
	}

	s.InjectFaults(Faults{})
	t0, s0, err := fastClient(srv.URL, 4, -1).FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t0) {
		t.Errorf("retries did not recover the fault-free tables: %d vs %d", len(t1), len(t0))
	}
	if got, want := normalized(s1), normalized(s0); !reflect.DeepEqual(got, want) {
		t.Errorf("retries did not recover the fault-free funnel:\nfaulted    %+v\nfault-free %+v", got, want)
	}
}

// TestServerFaultInjectionFailFirst checks the server-side schedule
// directly: two 500s, then the real response.
func TestServerFaultInjectionFailFirst(t *testing.T) {
	s := NewServer(testPortal())
	srv := httptest.NewServer(s)
	defer srv.Close()
	s.InjectFaults(Faults{PackageList: FaultSpec{FailFirst: 2}})

	want := []int{500, 500, 200, 200}
	for i, w := range want {
		resp, err := http.Get(srv.URL + "/api/3/action/package_list")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != w {
			t.Errorf("attempt %d: status %d, want %d", i+1, resp.StatusCode, w)
		}
	}
	// Other endpoints are unaffected.
	resp, err := http.Get(srv.URL + "/download/r-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("download with no faults: status %d", resp.StatusCode)
	}
}

// TestServerFaultInjectionTruncates checks that a truncated download
// surfaces as a body-read error on the client side.
func TestServerFaultInjectionTruncates(t *testing.T) {
	s := NewServer(testPortal())
	srv := httptest.NewServer(s)
	defer srv.Close()
	s.InjectFaults(Faults{Download: FaultSpec{TruncateRate: 1}})

	resp, err := http.Get(srv.URL + "/download/r-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Error("reading a truncated body should fail")
	}
}

// TestClientDateVariantsAndFormatCase covers the metadata quirks of
// real portals: RFC3339 and fractional-second creation dates, and
// mixed-case format spellings.
func TestClientDateVariantsAndFormatCase(t *testing.T) {
	show := map[string]string{
		"ds-z": `{"success": true, "result": {"id": "ds-z", "title": "Zoned",
			"metadata_created": "2020-05-01T10:00:00Z",
			"resources": [{"id": "rz", "name": "z.csv", "format": "csv", "url": "/dl/t"}]}}`,
		"ds-f": `{"success": true, "result": {"id": "ds-f", "title": "Fractional",
			"metadata_created": "2021-01-02T03:04:05.123456",
			"resources": [{"id": "rf", "name": "f.csv", "format": " Csv ", "url": "/dl/t"}]}}`,
		"ds-b": `{"success": true, "result": {"id": "ds-b", "title": "Bad date",
			"metadata_created": "yesterday",
			"resources": [{"id": "rb", "name": "b.csv", "format": "CSV", "url": "/dl/t"}]}}`,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-z", "ds-f", "ds-b"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(show[r.URL.Query().Get("id")]))
	})
	mux.HandleFunc("/dl/t", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("a,b\n1,2\n"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	client := fastClient(srv.URL, 1, -1)
	tables, stats, err := client.FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tables != 3 || stats.Readable != 3 {
		t.Fatalf("mixed-case formats dropped: %+v", stats)
	}
	if stats.UnparsedDates != 1 {
		t.Errorf("UnparsedDates = %d, want 1", stats.UnparsedDates)
	}
	byDS := map[string]time.Time{}
	for _, ft := range tables {
		byDS[ft.DatasetID] = ft.Published
	}
	if byDS["ds-z"].Year() != 2020 || byDS["ds-z"].Hour() != 10 {
		t.Errorf("RFC3339 date = %v", byDS["ds-z"])
	}
	if byDS["ds-f"].Year() != 2021 || byDS["ds-f"].Nanosecond() == 0 {
		t.Errorf("fractional date = %v", byDS["ds-f"])
	}
	if !byDS["ds-b"].IsZero() {
		t.Errorf("unparseable date should stay zero, got %v", byDS["ds-b"])
	}
}

// TestZeroValueClientHasTimeout: the zero-value Client must never
// fall back to the timeout-less http.DefaultClient.
func TestZeroValueClientHasTimeout(t *testing.T) {
	var c Client
	hc := c.httpClient()
	if hc == http.DefaultClient {
		t.Fatal("zero-value Client uses http.DefaultClient")
	}
	if hc.Timeout <= 0 {
		t.Errorf("default transport timeout = %v, want > 0", hc.Timeout)
	}
}

// TestFetchAllContextCanceled: a canceled context stops the crawl
// promptly with the context error, not a hang or a panic.
func TestFetchAllContextCanceled(t *testing.T) {
	srv := httptest.NewServer(NewServer(testPortal()))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := fastClient(srv.URL, 2, 3).FetchAllContext(ctx)
	if err == nil {
		t.Fatal("want an error from a canceled context")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("err = %v, want context cancellation", err)
	}
}
