// Package ckan models an open government data portal the way CKAN
// (the content management system behind data.gov, open.canada.ca and
// data.gov.uk) does: a portal is a set of datasets, each dataset holds
// resource files. The package also provides a CKAN-compatible HTTP API
// server and a fetch client that reproduces the paper's acquisition
// pipeline (§2.2): metadata listing → download → type sniffing →
// header inference → parsing, yielding the downloadable/readable
// funnel reported in Table 1. The client fans requests out over a
// bounded pool with deterministic retries; the server can inject
// transient faults to exercise that machinery.
package ckan

import (
	"strings"
	"time"
)

// IsCSVFormat reports whether an advertised resource format means CSV,
// tolerating the case and whitespace variants real CKAN metadata
// contains ("CSV", "csv", " Csv ").
func IsCSVFormat(format string) bool {
	return strings.EqualFold(strings.TrimSpace(format), "csv")
}

// MetadataStyle classifies how a dataset documents its columns
// (Table 3 of the paper).
type MetadataStyle int

// Metadata styles, from most to least machine-usable.
const (
	// MetadataLacking: no data dictionary at all.
	MetadataLacking MetadataStyle = iota
	// MetadataStructured: a machine-readable dictionary (CSV/JSON or a
	// consistently formatted webpage, as in SG).
	MetadataStructured
	// MetadataUnstructured: a PDF or free-form page in the portal.
	MetadataUnstructured
	// MetadataOutside: documentation hosted outside the portal.
	MetadataOutside
)

var metadataStyleNames = [...]string{"lacking", "structured", "unstructured", "outside portal"}

func (m MetadataStyle) String() string {
	if int(m) < len(metadataStyleNames) {
		return metadataStyleNames[m]
	}
	return "invalid"
}

// BrokenKind describes how a resource fails the acquisition pipeline,
// mirroring the failure modes the paper observed.
type BrokenKind int

// Resource failure modes.
const (
	// BrokenNone: the resource downloads and parses.
	BrokenNone BrokenKind = iota
	// BrokenNotFound: the download URL returns a non-200 status; the
	// resource is not downloadable.
	BrokenNotFound
	// BrokenHTMLPage: the URL returns 200 but serves an HTML page
	// instead of a CSV; downloadable but not readable.
	BrokenHTMLPage
	// BrokenGarbage: the URL serves binary garbage; downloadable but
	// not readable.
	BrokenGarbage
	// BrokenNoHeader: the CSV has no parsable header row; downloadable
	// but not readable.
	BrokenNoHeader
)

// Portal is one open government data portal.
type Portal struct {
	// Name is the short portal code, e.g. "CA".
	Name string
	// Datasets are the published datasets.
	Datasets []*Dataset
}

// Dataset is a CKAN package: a titled collection of resource files.
type Dataset struct {
	ID          string
	Title       string
	Description string
	// Published is the dataset publication date (drives the growth
	// analysis of Figure 2).
	Published time.Time
	// Metadata records how the dataset documents its columns.
	Metadata MetadataStyle
	// Resources are the dataset's files.
	Resources []*Resource
}

// Resource is one file in a dataset.
type Resource struct {
	ID string
	// Name is the file name, e.g. "awards-2021.csv".
	Name string
	// Format is the advertised (not sniffed) format from the metadata.
	Format string
	// URL is the download path the portal serves the resource under.
	URL string
	// Body is the raw file content.
	Body []byte
	// Broken describes a deliberate publication defect, if any.
	Broken BrokenKind
}

// NumTables counts resources advertised as CSV across the portal.
func (p *Portal) NumTables() int {
	n := 0
	for _, d := range p.Datasets {
		for _, r := range d.Resources {
			if IsCSVFormat(r.Format) {
				n++
			}
		}
	}
	return n
}

// Resource looks up a resource by ID across all datasets.
func (p *Portal) Resource(id string) *Resource {
	for _, d := range p.Datasets {
		for _, r := range d.Resources {
			if r.ID == id {
				return r
			}
		}
	}
	return nil
}

// Dataset looks up a dataset by ID.
func (p *Portal) Dataset(id string) *Dataset {
	for _, d := range p.Datasets {
		if d.ID == id {
			return d
		}
	}
	return nil
}
