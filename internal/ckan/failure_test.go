package ckan

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestClientServerErrors exercises the client against broken API
// servers: the fetch pipeline must fail cleanly, never panic.
func TestClientServerErrors(t *testing.T) {
	cases := []struct {
		name    string
		handler http.HandlerFunc
	}{
		{"500 on package_list", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}},
		{"invalid json", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("{not json"))
		}},
		{"html instead of json", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("<html><body>maintenance</body></html>"))
		}},
		{"success false", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"success": false, "error": "nope"}`))
		}},
		{"empty body", func(w http.ResponseWriter, r *http.Request) {}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			srv := httptest.NewServer(c.handler)
			defer srv.Close()
			client := NewClient(srv.URL)
			_, _, err := client.FetchAll()
			if err == nil {
				t.Error("FetchAll should fail against a broken server")
			}
		})
	}
}

// TestClientPackageShowFails covers a portal whose listing works but
// whose package metadata endpoint is broken.
func TestClientPackageShowFails(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-1"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	if _, _, err := NewClient(srv.URL).FetchAll(); err == nil {
		t.Error("expected error from broken package_show")
	}
}

// TestClientDownloadFailuresAreSkipped covers per-resource failures:
// the pipeline drops the resource and continues, as the paper's
// funnel semantics require.
func TestClientDownloadFailuresAreSkipped(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-1"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": {"id": "ds-1", "title": "T",
			"metadata_created": "2020-01-01T00:00:00",
			"resources": [
				{"id": "ok", "name": "ok.csv", "format": "CSV", "url": "/dl/ok"},
				{"id": "gone", "name": "gone.csv", "format": "CSV", "url": "/dl/gone"},
				{"id": "slowfail", "name": "s.csv", "format": "CSV", "url": "/dl/reset"}
			]}}`))
	})
	mux.HandleFunc("/dl/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("a,b\n1,2\n3,4\n"))
	})
	mux.HandleFunc("/dl/gone", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	mux.HandleFunc("/dl/reset", func(w http.ResponseWriter, r *http.Request) {
		// Advertise a body length then cut the connection short.
		w.Header().Set("Content-Length", "1000")
		w.Write([]byte("partial"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	tables, stats, err := NewClient(srv.URL).FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tables != 3 {
		t.Errorf("tables = %d", stats.Tables)
	}
	if stats.Downloadable != 1 || stats.Readable != 1 {
		t.Errorf("funnel = %+v, want only the good resource through", stats)
	}
	if len(tables) != 1 || tables[0].Table.NumRows() != 2 {
		t.Errorf("fetched = %v", tables)
	}
}

// TestClientRelativeAndAbsoluteURLs verifies both URL shapes download.
func TestClientRelativeAndAbsoluteURLs(t *testing.T) {
	var srvURL string
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-1"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		body := `{"success": true, "result": {"id": "ds-1", "title": "T",
			"metadata_created": "2020-01-01T00:00:00",
			"resources": [
				{"id": "rel", "name": "rel.csv", "format": "CSV", "url": "/dl/a"},
				{"id": "abs", "name": "abs.csv", "format": "CSV", "url": "` + srvURL + `/dl/a"}
			]}}`
		w.Write([]byte(body))
	})
	mux.HandleFunc("/dl/a", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("x,y\n1,2\n"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	srvURL = srv.URL

	_, stats, err := NewClient(srv.URL).FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Downloadable != 2 || stats.Readable != 2 {
		t.Errorf("funnel = %+v", stats)
	}
}

// TestClientNonCSVFormatsIgnored verifies only advertised-CSV
// resources enter the funnel.
func TestClientNonCSVFormatsIgnored(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-1"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": {"id": "ds-1", "title": "T",
			"metadata_created": "2020-01-01T00:00:00",
			"resources": [
				{"id": "p", "name": "doc.pdf", "format": "PDF", "url": "/dl/p"},
				{"id": "j", "name": "api.json", "format": "JSON", "url": "/dl/j"}
			]}}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	_, stats, err := NewClient(srv.URL).FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tables != 0 {
		t.Errorf("non-CSV resources entered the funnel: %+v", stats)
	}
	_ = strings.TrimSpace("")
}
