package ckan

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// noRetryClient returns a client that never retries or waits, for
// tests that exercise permanent-failure paths directly.
func noRetryClient(base string) *Client {
	c := NewClient(base)
	c.Retries = -1
	c.Backoff = -1
	return c
}

// TestClientServerErrors exercises the client against portals whose
// package_list endpoint is broken: with nothing to crawl, FetchAll
// must fail cleanly (and record the failure), never panic.
func TestClientServerErrors(t *testing.T) {
	cases := []struct {
		name    string
		handler http.HandlerFunc
	}{
		{"500 on package_list", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}},
		{"invalid json", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("{not json"))
		}},
		{"html instead of json", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("<html><body>maintenance</body></html>"))
		}},
		{"success false", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"success": false, "error": "nope"}`))
		}},
		{"empty body", func(w http.ResponseWriter, r *http.Request) {}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			srv := httptest.NewServer(c.handler)
			defer srv.Close()
			client := noRetryClient(srv.URL)
			_, stats, err := client.FetchAll()
			if err == nil {
				t.Error("FetchAll should fail against a broken package_list")
			}
			if stats.PermanentFailures != 1 || len(stats.Failures) != 1 {
				t.Errorf("stats = %+v, want one ledger entry", stats)
			}
			if len(stats.Failures) == 1 && stats.Failures[0].Stage != StagePackageList {
				t.Errorf("stage = %q", stats.Failures[0].Stage)
			}
		})
	}
}

// TestClientPackageShowFails covers a portal whose listing works but
// whose package metadata endpoint is broken: the crawl degrades to an
// empty partial result with the failure on the ledger — it does not
// abort.
func TestClientPackageShowFails(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-1"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	tables, stats, err := noRetryClient(srv.URL).FetchAll()
	if err != nil {
		t.Fatalf("a broken package_show must not abort the crawl: %v", err)
	}
	if len(tables) != 0 || stats.Datasets != 1 {
		t.Errorf("tables = %d, stats = %+v", len(tables), stats)
	}
	if stats.PermanentFailures != 1 || len(stats.Failures) != 1 ||
		stats.Failures[0].Stage != StagePackageShow || stats.Failures[0].DatasetID != "ds-1" {
		t.Errorf("ledger = %+v", stats.Failures)
	}
}

// TestClientPartialPackageShowFailure is the paper's graceful-
// degradation requirement: one dataset's metadata endpoint 500s
// permanently, the rest of the crawl still delivers its tables.
func TestClientPartialPackageShowFailure(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-ok", "ds-dead"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("id") == "ds-dead" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"success": true, "result": {"id": "ds-ok", "title": "OK",
			"metadata_created": "2020-01-01T00:00:00",
			"resources": [{"id": "good", "name": "good.csv", "format": "CSV", "url": "/dl/good"}]}}`))
	})
	mux.HandleFunc("/dl/good", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("a,b\n1,2\n3,4\n"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retries = 1
	client.Backoff = -1
	tables, stats, err := client.FetchAll()
	if err != nil {
		t.Fatalf("one dead dataset must not abort the crawl: %v", err)
	}
	if len(tables) != 1 || tables[0].DatasetID != "ds-ok" {
		t.Fatalf("tables = %+v", tables)
	}
	if stats.Datasets != 2 || stats.Tables != 1 || stats.Readable != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.PermanentFailures != 1 || len(stats.Failures) != 1 {
		t.Fatalf("ledger = %+v", stats.Failures)
	}
	f := stats.Failures[0]
	if f.Stage != StagePackageShow || f.DatasetID != "ds-dead" || f.Attempts != 2 {
		t.Errorf("ledger entry = %+v", f)
	}
	if stats.TransientFailures != 2 || stats.Retries != 1 {
		t.Errorf("retry accounting = %+v", stats)
	}
}

// TestClientDownloadFailuresAreSkipped covers per-resource failures:
// the pipeline drops the resource, records it, and continues, as the
// paper's funnel semantics require.
func TestClientDownloadFailuresAreSkipped(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-1"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": {"id": "ds-1", "title": "T",
			"metadata_created": "2020-01-01T00:00:00",
			"resources": [
				{"id": "ok", "name": "ok.csv", "format": "CSV", "url": "/dl/ok"},
				{"id": "gone", "name": "gone.csv", "format": "CSV", "url": "/dl/gone"},
				{"id": "slowfail", "name": "s.csv", "format": "CSV", "url": "/dl/reset"}
			]}}`))
	})
	mux.HandleFunc("/dl/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("a,b\n1,2\n3,4\n"))
	})
	mux.HandleFunc("/dl/gone", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	mux.HandleFunc("/dl/reset", func(w http.ResponseWriter, r *http.Request) {
		// Advertise a body length then cut the connection short.
		w.Header().Set("Content-Length", "1000")
		w.Write([]byte("partial"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	tables, stats, err := noRetryClient(srv.URL).FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tables != 3 {
		t.Errorf("tables = %d", stats.Tables)
	}
	if stats.Downloadable != 1 || stats.Readable != 1 {
		t.Errorf("funnel = %+v, want only the good resource through", stats)
	}
	if len(tables) != 1 || tables[0].Table.NumRows() != 2 {
		t.Errorf("fetched = %v", tables)
	}
	// Both the 404 and the truncated download land on the ledger.
	if stats.PermanentFailures != 2 || len(stats.Failures) != 2 {
		t.Fatalf("ledger = %+v", stats.Failures)
	}
	if stats.Failures[0].ResourceID != "gone" || stats.Failures[1].ResourceID != "slowfail" {
		t.Errorf("ledger order = %+v", stats.Failures)
	}
}

// TestClientRelativeAndAbsoluteURLs verifies both URL shapes download.
func TestClientRelativeAndAbsoluteURLs(t *testing.T) {
	var srvURL string
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-1"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		body := `{"success": true, "result": {"id": "ds-1", "title": "T",
			"metadata_created": "2020-01-01T00:00:00",
			"resources": [
				{"id": "rel", "name": "rel.csv", "format": "CSV", "url": "/dl/a"},
				{"id": "abs", "name": "abs.csv", "format": "CSV", "url": "` + srvURL + `/dl/a"}
			]}}`
		w.Write([]byte(body))
	})
	mux.HandleFunc("/dl/a", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("x,y\n1,2\n"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	srvURL = srv.URL

	_, stats, err := NewClient(srv.URL).FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Downloadable != 2 || stats.Readable != 2 {
		t.Errorf("funnel = %+v", stats)
	}
}

// TestClientNonCSVFormatsIgnored verifies only advertised-CSV
// resources enter the funnel — but any spelling of CSV counts.
func TestClientNonCSVFormatsIgnored(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/3/action/package_list", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": ["ds-1"]}`))
	})
	mux.HandleFunc("/api/3/action/package_show", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"success": true, "result": {"id": "ds-1", "title": "T",
			"metadata_created": "2020-01-01T00:00:00",
			"resources": [
				{"id": "p", "name": "doc.pdf", "format": "PDF", "url": "/dl/p"},
				{"id": "j", "name": "api.json", "format": "JSON", "url": "/dl/j"}
			]}}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	_, stats, err := NewClient(srv.URL).FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tables != 0 {
		t.Errorf("non-CSV resources entered the funnel: %+v", stats)
	}
}
