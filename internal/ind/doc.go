// Package ind discovers unary inclusion dependencies across a corpus:
// column pairs A ⊆ B where every distinct value of A appears in B.
// Inclusion dependencies are the formal shape of foreign-key
// relationships, the joins §5.3 of the paper finds most likely to be
// useful (key-involved, non-growing); discovering them complements the
// Jaccard analysis of §5.1–§5.2, which misses containments between
// columns of very different sizes (a 13-value province column inside a
// 5000-row fact table never reaches 0.9 Jaccard against the 13-row
// lookup).
package ind
