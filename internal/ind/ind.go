package ind

import (
	"sort"

	"ogdp/internal/table"
)

// Options tunes Find.
type Options struct {
	// MinDistinct is the minimum distinct-value count of the dependent
	// (left) column; low-cardinality columns are trivially included in
	// many others. Defaults to 10, matching the paper's joinability
	// filter.
	MinDistinct int
	// MaxViolations allows an approximate inclusion: up to this many
	// distinct values of A may be missing from B (0 = exact).
	MaxViolations int
	// RequireKeyReferenced keeps only INDs whose referenced column is a
	// key of its table — the genuine foreign-key shape.
	RequireKeyReferenced bool
}

func (o Options) withDefaults() Options {
	if o.MinDistinct == 0 {
		o.MinDistinct = 10
	}
	return o
}

// IND is one inclusion dependency: (DepTable, DepCol) ⊆ (RefTable,
// RefCol).
type IND struct {
	DepTable, DepCol int
	RefTable, RefCol int
	// Missing counts dependent values absent from the referenced column
	// (0 for exact INDs).
	Missing int
	// Coverage is |A ∩ B| / |A|.
	Coverage float64
	// RefIsKey reports whether the referenced column is a key.
	RefIsKey bool
}

// Find discovers unary inclusion dependencies between columns of
// different tables. Self-inclusions (same table) and symmetric
// duplicates are all reported individually: A ⊆ B and B ⊆ A are
// distinct dependencies.
func Find(tables []*table.Table, opts Options) []IND {
	opts = opts.withDefaults()

	type colRef struct{ t, c int }
	// Posting lists over distinct values.
	postings := map[uint64][]int32{}
	var cols []colRef
	var profiles []*table.ColumnProfile
	for ti, t := range tables {
		for ci := range t.Cols {
			p := t.Profile(ci)
			if p.Distinct == 0 {
				continue
			}
			id := int32(len(cols))
			cols = append(cols, colRef{ti, ci})
			profiles = append(profiles, p)
			for _, h := range p.ValueHashes() {
				postings[h] = append(postings[h], id)
			}
		}
	}

	var out []IND
	for depID, dep := range cols {
		p := profiles[depID]
		if p.Distinct < opts.MinDistinct {
			continue
		}
		// Count how many of dep's distinct values each candidate holds.
		counts := map[int32]int{}
		for _, h := range p.ValueHashes() {
			for _, id := range postings[h] {
				if int(id) == depID || cols[id].t == dep.t {
					continue
				}
				counts[id]++
			}
		}
		for id, inter := range counts {
			missing := p.Distinct - inter
			if missing > opts.MaxViolations {
				continue
			}
			refP := profiles[id]
			refIsKey := refP.IsKey()
			if opts.RequireKeyReferenced && !refIsKey {
				continue
			}
			out = append(out, IND{
				DepTable: dep.t, DepCol: dep.c,
				RefTable: cols[id].t, RefCol: cols[id].c,
				Missing:  missing,
				Coverage: float64(inter) / float64(p.Distinct),
				RefIsKey: refIsKey,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.DepTable != b.DepTable {
			return a.DepTable < b.DepTable
		}
		if a.DepCol != b.DepCol {
			return a.DepCol < b.DepCol
		}
		if a.RefTable != b.RefTable {
			return a.RefTable < b.RefTable
		}
		return a.RefCol < b.RefCol
	})
	return out
}

// ForeignKeyCandidates filters INDs to the foreign-key shape the
// paper's useful joins take: the referenced column is a key and the
// dependent column is not (a fact table referencing a lookup).
func ForeignKeyCandidates(tables []*table.Table, inds []IND) []IND {
	var out []IND
	for _, d := range inds {
		if !d.RefIsKey {
			continue
		}
		if tables[d.DepTable].Profile(d.DepCol).IsKey() {
			continue
		}
		out = append(out, d)
	}
	return out
}
