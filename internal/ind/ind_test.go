package ind

import (
	"fmt"
	"strconv"
	"testing"

	"ogdp/internal/gen"
	"ogdp/internal/table"
)

// lookupAndFacts builds a lookup table (key) plus a fact table whose
// fk column draws a subset of the lookup's keys.
func lookupAndFacts() []*table.Table {
	lookup := table.New("species.csv", []string{"species", "group"})
	for i := 0; i < 20; i++ {
		lookup.AppendRow([]string{fmt.Sprintf("Species %02d", i), "G" + strconv.Itoa(i%3)})
	}
	facts := table.New("landings.csv", []string{"id", "species", "weight"})
	for r := 0; r < 100; r++ {
		facts.AppendRow([]string{
			strconv.Itoa(r + 1),
			fmt.Sprintf("Species %02d", r%15), // touches 15 of 20 keys
			strconv.Itoa(r * 3),
		})
	}
	return []*table.Table{lookup, facts}
}

func TestFindDetectsForeignKey(t *testing.T) {
	tables := lookupAndFacts()
	inds := Find(tables, Options{})
	found := false
	for _, d := range inds {
		if d.DepTable == 1 && tables[1].Cols[d.DepCol] == "species" &&
			d.RefTable == 0 && tables[0].Cols[d.RefCol] == "species" {
			found = true
			if d.Missing != 0 || d.Coverage != 1 {
				t.Errorf("fk IND metrics = %+v", d)
			}
			if !d.RefIsKey {
				t.Error("referenced lookup key not flagged")
			}
		}
		// The reverse containment does not hold (lookup has 20, facts 15).
		if d.DepTable == 0 && tables[0].Cols[d.DepCol] == "species" && d.RefTable == 1 {
			t.Errorf("reverse inclusion wrongly reported: %+v", d)
		}
	}
	if !found {
		t.Errorf("foreign-key IND not found: %+v", inds)
	}
}

func TestFindApproximate(t *testing.T) {
	tables := lookupAndFacts()
	// Dirty fact: add rows referencing unknown species.
	tables[1].AppendRow([]string{"101", "Unknown A", "5"})
	tables[1].AppendRow([]string{"102", "Unknown B", "7"})
	tables[1].InvalidateProfiles()

	exact := Find(tables, Options{})
	for _, d := range exact {
		if d.DepTable == 1 && tables[1].Cols[d.DepCol] == "species" {
			t.Errorf("dirty inclusion reported exactly: %+v", d)
		}
	}
	approx := Find(tables, Options{MaxViolations: 2})
	found := false
	for _, d := range approx {
		if d.DepTable == 1 && tables[1].Cols[d.DepCol] == "species" && d.RefTable == 0 {
			found = true
			if d.Missing != 2 {
				t.Errorf("missing = %d, want 2", d.Missing)
			}
		}
	}
	if !found {
		t.Error("approximate IND not recovered")
	}
}

func TestMinDistinctFilter(t *testing.T) {
	small := table.FromRows("flags.csv", []string{"flag"}, [][]string{{"yes"}, {"no"}})
	big := table.New("all.csv", []string{"word"})
	for i := 0; i < 30; i++ {
		big.AppendRow([]string{[]string{"yes", "no", "maybe"}[i%3] + strconv.Itoa(i/3)})
	}
	big.AppendRow([]string{"yes"})
	big.AppendRow([]string{"no"})
	inds := Find([]*table.Table{small, big}, Options{})
	for _, d := range inds {
		if d.DepTable == 0 {
			t.Errorf("low-cardinality dependent reported: %+v", d)
		}
	}
}

func TestRequireKeyReferenced(t *testing.T) {
	// Both columns non-key: A ⊆ B holds but is filtered.
	a := table.New("a.csv", []string{"v"})
	b := table.New("b.csv", []string{"v"})
	for i := 0; i < 30; i++ {
		a.AppendRow([]string{strconv.Itoa(i % 15)})
		b.AppendRow([]string{strconv.Itoa(i % 15)})
		b.AppendRow([]string{strconv.Itoa(i%15 + 100)})
	}
	all := Find([]*table.Table{a, b}, Options{})
	if len(all) == 0 {
		t.Fatal("expected inclusions between overlapping columns")
	}
	keyed := Find([]*table.Table{a, b}, Options{RequireKeyReferenced: true})
	if len(keyed) != 0 {
		t.Errorf("non-key references kept: %+v", keyed)
	}
}

func TestForeignKeyCandidates(t *testing.T) {
	tables := lookupAndFacts()
	inds := Find(tables, Options{})
	fks := ForeignKeyCandidates(tables, inds)
	if len(fks) == 0 {
		t.Fatal("no fk candidates")
	}
	for _, d := range fks {
		if !d.RefIsKey {
			t.Errorf("fk candidate with non-key reference: %+v", d)
		}
		if tables[d.DepTable].Profile(d.DepCol).IsKey() {
			t.Errorf("fk candidate with key dependent: %+v", d)
		}
	}
}

// TestOnGeneratedCorpus: the generator plants master/transaction
// relationships; IND discovery must surface some of them as fk
// candidates.
func TestOnGeneratedCorpus(t *testing.T) {
	corpus := gen.Generate(gen.CA(), 0.1, 19)
	tables := corpus.Tables()
	inds := Find(tables, Options{MaxViolations: 0})
	fks := ForeignKeyCandidates(tables, inds)
	planted := 0
	for _, d := range fks {
		m1 := corpus.Metas[d.DepTable]
		m2 := corpus.Metas[d.RefTable]
		if m1.Cols[d.DepCol].Role == gen.RoleForeignKey && m2.Cols[d.RefCol].Role == gen.RoleEntityKey &&
			m1.Cols[d.DepCol].Pool == m2.Cols[d.RefCol].Pool {
			planted++
		}
	}
	if planted == 0 {
		t.Errorf("no planted fk relationships discovered among %d candidates", len(fks))
	}
}

func BenchmarkFind(b *testing.B) {
	corpus := gen.Generate(gen.CA(), 0.1, 19)
	tables := corpus.Tables()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Find(tables, Options{})
	}
}
