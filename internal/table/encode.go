package table

import (
	"sort"

	"ogdp/internal/values"
)

// FNV-64a parameters, shared by HashValue, RowHashes, and the encoded
// value-hash sets so every layer agrees on what a value hashes to.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Encoding is the dictionary encoding of one column: the distinct raw
// values interned once at first access, with every cell reduced to a
// dense code. Codes are assigned by ascending byte order of the raw
// values, so the encoding is deterministic for a given column content.
//
// An Encoding is immutable once built; callers must treat every slice
// as read-only. Obtain one via Table.Encoding.
type Encoding struct {
	// Dict holds the column's distinct raw values in ascending byte
	// order; Dict[Codes[r]] recovers the raw cell of row r.
	Dict []string
	// Codes holds one dictionary code per row.
	Codes []uint32
	// DictCounts[i] is the multiplicity of Dict[i] in the column.
	DictCounts []int32
	// DictNull[i] reports whether Dict[i] spells a null
	// (values.IsNull).
	DictNull []bool

	nulls int // total null cells

	// hashes holds the ascending distinct FNV-64a hashes of the
	// non-null dictionary entries; hashCounts is aligned with it. In
	// the astronomically unlikely event two distinct raw values share a
	// hash, their counts are merged, matching the historical
	// ColumnProfile.Counts map semantics.
	hashes     []uint64
	hashCounts []int32

	// canon is the lazily built per-row canonical code stream: every
	// null spelling maps to 0 and the k-th non-null dictionary entry
	// (in Dict order) maps to k+1. canonSize is the code-space size
	// (distinct non-null entries + 1), so canon values are always in
	// [0, canonSize). Built under the owning table's lock.
	canon     []uint32
	canonSize int
}

// Nulls returns the number of null cells in the column.
func (e *Encoding) Nulls() int { return e.nulls }

// ValueHashes returns the ascending distinct FNV-64a hashes of the
// column's non-null values. The slice is shared and must not be
// mutated.
func (e *Encoding) ValueHashes() []uint64 { return e.hashes }

// ValueHashCounts returns the multiplicities aligned with ValueHashes.
// The slice is shared and must not be mutated.
func (e *Encoding) ValueHashCounts() []int32 { return e.hashCounts }

// encodeColumn builds the eager part of a column's encoding (the canon
// stream is materialized separately, on demand).
func encodeColumn(col []string) *Encoding {
	e := &Encoding{Codes: make([]uint32, len(col))}
	idx := make(map[string]uint32, 64)
	for r, v := range col {
		c, ok := idx[v]
		if !ok {
			c = uint32(len(e.Dict))
			idx[v] = c
			e.Dict = append(e.Dict, v)
		}
		e.Codes[r] = c
	}
	// Re-assign codes by ascending raw value so they are independent of
	// row order for a given multiset of values.
	order := make([]int, len(e.Dict))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return e.Dict[order[a]] < e.Dict[order[b]] })
	perm := make([]uint32, len(e.Dict)) // first-seen code -> sorted code
	sorted := make([]string, len(e.Dict))
	for newCode, old := range order {
		sorted[newCode] = e.Dict[old]
		perm[old] = uint32(newCode)
	}
	e.Dict = sorted
	e.DictCounts = make([]int32, len(e.Dict))
	for r, c := range e.Codes {
		nc := perm[c]
		e.Codes[r] = nc
		e.DictCounts[nc]++
	}
	e.DictNull = make([]bool, len(e.Dict))
	nonNull := 0
	for i, v := range e.Dict {
		if values.IsNull(v) {
			e.DictNull[i] = true
			e.nulls += int(e.DictCounts[i])
		} else {
			nonNull++
		}
	}
	e.buildHashes(nonNull)
	return e
}

// buildHashes fills hashes/hashCounts from the non-null dictionary
// entries, merging counts on (vanishingly rare) hash collisions.
func (e *Encoding) buildHashes(nonNull int) {
	if nonNull == 0 {
		return
	}
	hs := make([]uint64, 0, nonNull)
	cs := make([]int32, 0, nonNull)
	for i, v := range e.Dict {
		if e.DictNull[i] {
			continue
		}
		hs = append(hs, hashString(v))
		cs = append(cs, e.DictCounts[i])
	}
	ord := make([]int, len(hs))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return hs[ord[a]] < hs[ord[b]] })
	outH := hs[:0:0]
	outC := cs[:0:0]
	for _, i := range ord {
		if n := len(outH); n > 0 && outH[n-1] == hs[i] {
			outC[n-1] += cs[i]
			continue
		}
		outH = append(outH, hs[i])
		outC = append(outC, cs[i])
	}
	e.hashes = outH
	e.hashCounts = outC
}

// materializeCanon builds the canonical code stream; the caller must
// hold the owning table's lock.
func (e *Encoding) materializeCanon() {
	entryCanon := make([]uint32, len(e.Dict))
	next := uint32(1)
	for i := range e.Dict {
		if e.DictNull[i] {
			entryCanon[i] = 0
			continue
		}
		entryCanon[i] = next
		next++
	}
	canon := make([]uint32, len(e.Codes))
	for r, c := range e.Codes {
		canon[r] = entryCanon[c]
	}
	e.canon = canon
	e.canonSize = int(next)
}

// hashString is FNV-64a, identical to hash/fnv but allocation-free.
func hashString(v string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= fnvPrime64
	}
	return h
}

// Encoding returns the cached dictionary encoding of column c,
// building it on first use. Safe for concurrent use; the column is
// encoded at most once.
func (t *Table) Encoding(c int) *Encoding {
	t.profMu.Lock()
	defer t.profMu.Unlock()
	return t.encodingLocked(c)
}

// encodingLocked returns (building if needed) column c's encoding; the
// caller must hold profMu.
func (t *Table) encodingLocked(c int) *Encoding {
	if t.enc == nil {
		t.enc = make([]*Encoding, len(t.Cols))
	}
	if t.enc[c] == nil {
		t.enc[c] = encodeColumn(t.Data[c])
	}
	return t.enc[c]
}

// CanonCodes returns column c's canonical per-row codes and the size
// of their code space: all null spellings share code 0 and the k-th
// distinct non-null value (in ascending raw order) is k+1, so two rows
// agree on the column exactly when their codes are equal. The slice is
// shared and must not be mutated. FD partition refinement and row
// hashing run entirely on these streams.
func (t *Table) CanonCodes(c int) (codes []uint32, size int) {
	t.profMu.Lock()
	defer t.profMu.Unlock()
	e := t.encodingLocked(c)
	if e.canon == nil {
		e.materializeCanon()
	}
	return e.canon, e.canonSize
}

// Value returns the raw cell value of column c, row r.
func (t *Table) Value(c, r int) string { return t.Data[c][r] }

// PrefixShared returns a table over the first n rows of t. Cell data
// is shared with the receiver (no copying); the prefix table computes
// its own profiles.
func (t *Table) PrefixShared(n int) *Table {
	p := New(t.Name, t.Cols)
	p.DatasetID = t.DatasetID
	for c := range t.Data {
		p.Data[c] = t.Data[c][:n]
	}
	return p
}

// AppendTable appends all rows of src, which must have the same column
// count, preserving row order. Used by the union-all materialization.
func (t *Table) AppendTable(src *Table) {
	if src.NumCols() != t.NumCols() {
		panic("table: AppendTable column count mismatch")
	}
	for c := range t.Data {
		t.Data[c] = append(t.Data[c], src.Data[c]...)
	}
	t.InvalidateProfiles()
}
