package table

import (
	"sort"
	"sync"
	"sync/atomic"

	"ogdp/internal/values"
)

// FNV-64a parameters, shared by HashValue, RowHashes, and the encoded
// value-hash sets so every layer agrees on what a value hashes to.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Encoding is the dictionary encoding of one column: the distinct raw
// values interned once at first access, with every cell reduced to a
// dense code. Codes are assigned by ascending byte order of the raw
// values, so the encoding is deterministic for a given column content.
//
// An Encoding is immutable once published; callers must treat every
// slice as read-only and may share the value freely across goroutines
// without synchronization. The only lazily attached extension — the
// canonical code stream — is published through its own atomic pointer
// and is itself immutable, so the Encoding never mutates in place.
// Obtain one via Table.Encoding.
type Encoding struct {
	// Dict holds the column's distinct raw values in ascending byte
	// order; Dict[Codes[r]] recovers the raw cell of row r.
	Dict []string
	// Codes holds one dictionary code per row.
	Codes []uint32
	// DictCounts[i] is the multiplicity of Dict[i] in the column.
	DictCounts []int32
	// DictNull[i] reports whether Dict[i] spells a null
	// (values.IsNull).
	DictNull []bool

	nulls int // total null cells

	// hashes holds the ascending distinct FNV-64a hashes of the
	// non-null dictionary entries; hashCounts is aligned with it. In
	// the astronomically unlikely event two distinct raw values share a
	// hash, their counts are merged, matching the historical
	// ColumnProfile.Counts map semantics.
	hashes     []uint64
	hashCounts []int32

	// canon is the lazily built per-row canonical code stream,
	// published atomically (nil until first use). The stream is built
	// exactly once under canonMu and never mutated afterwards; readers
	// only ever load the pointer.
	canonMu sync.Mutex
	canon   atomic.Pointer[canonStream]
}

// canonStream is a column's canonical per-row code stream: every null
// spelling maps to 0 and the k-th non-null dictionary entry (in Dict
// order) maps to k+1. size is the code-space size (distinct non-null
// entries + 1), so codes are always in [0, size). Immutable once
// published.
type canonStream struct {
	codes []uint32
	size  int
}

// Nulls returns the number of null cells in the column.
func (e *Encoding) Nulls() int { return e.nulls }

// ValueHashes returns the ascending distinct FNV-64a hashes of the
// column's non-null values. The slice is shared and must not be
// mutated.
func (e *Encoding) ValueHashes() []uint64 { return e.hashes }

// ValueHashCounts returns the multiplicities aligned with ValueHashes.
// The slice is shared and must not be mutated.
func (e *Encoding) ValueHashCounts() []int32 { return e.hashCounts }

// encodeColumn builds the eager part of a column's encoding (the canon
// stream is materialized separately, on demand).
func encodeColumn(col []string) *Encoding {
	e := &Encoding{Codes: make([]uint32, len(col))}
	idx := make(map[string]uint32, 64)
	for r, v := range col {
		c, ok := idx[v]
		if !ok {
			c = uint32(len(e.Dict))
			idx[v] = c
			e.Dict = append(e.Dict, v)
		}
		e.Codes[r] = c
	}
	// Re-assign codes by ascending raw value so they are independent of
	// row order for a given multiset of values.
	order := make([]int, len(e.Dict))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return e.Dict[order[a]] < e.Dict[order[b]] })
	perm := make([]uint32, len(e.Dict)) // first-seen code -> sorted code
	sorted := make([]string, len(e.Dict))
	for newCode, old := range order {
		sorted[newCode] = e.Dict[old]
		perm[old] = uint32(newCode)
	}
	e.Dict = sorted
	e.DictCounts = make([]int32, len(e.Dict))
	for r, c := range e.Codes {
		nc := perm[c]
		e.Codes[r] = nc
		e.DictCounts[nc]++
	}
	e.DictNull = make([]bool, len(e.Dict))
	nonNull := 0
	for i, v := range e.Dict {
		if values.IsNull(v) {
			e.DictNull[i] = true
			e.nulls += int(e.DictCounts[i])
		} else {
			nonNull++
		}
	}
	e.buildHashes(nonNull)
	return e
}

// buildHashes fills hashes/hashCounts from the non-null dictionary
// entries, merging counts on (vanishingly rare) hash collisions.
func (e *Encoding) buildHashes(nonNull int) {
	if nonNull == 0 {
		return
	}
	hs := make([]uint64, 0, nonNull)
	cs := make([]int32, 0, nonNull)
	for i, v := range e.Dict {
		if e.DictNull[i] {
			continue
		}
		hs = append(hs, hashString(v))
		cs = append(cs, e.DictCounts[i])
	}
	ord := make([]int, len(hs))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return hs[ord[a]] < hs[ord[b]] })
	outH := hs[:0:0]
	outC := cs[:0:0]
	for _, i := range ord {
		if n := len(outH); n > 0 && outH[n-1] == hs[i] {
			outC[n-1] += cs[i]
			continue
		}
		outH = append(outH, hs[i])
		outC = append(outC, cs[i])
	}
	e.hashes = outH
	e.hashCounts = outC
}

// CanonCodes returns the column's canonical per-row codes and code
// space size, building the stream exactly once on first use. The fast
// path is a single atomic load; misses serialize on this encoding's
// build lock only.
func (e *Encoding) CanonCodes() (codes []uint32, size int) {
	if cs := e.canon.Load(); cs != nil {
		return cs.codes, cs.size
	}
	done := buildStart(BuildCanon)
	e.canonMu.Lock()
	defer e.canonMu.Unlock()
	if cs := e.canon.Load(); cs != nil {
		done(false)
		return cs.codes, cs.size
	}
	cs := e.materializeCanon()
	e.canon.Store(cs)
	done(true)
	return cs.codes, cs.size
}

// materializeCanon builds the canonical code stream. The result is
// published (and thereby frozen) by the caller.
func (e *Encoding) materializeCanon() *canonStream {
	entryCanon := make([]uint32, len(e.Dict))
	next := uint32(1)
	for i := range e.Dict {
		if e.DictNull[i] {
			entryCanon[i] = 0
			continue
		}
		entryCanon[i] = next
		next++
	}
	canon := make([]uint32, len(e.Codes))
	for r, c := range e.Codes {
		canon[r] = entryCanon[c]
	}
	return &canonStream{codes: canon, size: int(next)}
}

// hashString is FNV-64a, identical to hash/fnv but allocation-free.
func hashString(v string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= fnvPrime64
	}
	return h
}

// Encoding returns the cached dictionary encoding of column c,
// building it on first use. The fast path is a single atomic pointer
// load; after the encoding has been published, concurrent readers
// never contend on a lock. A cache miss builds the column exactly once
// under that column's build lock — racing goroutines block only for
// the duration of the one build and then share the published value.
func (t *Table) Encoding(c int) *Encoding {
	slot := &t.state().cols[c]
	if e := slot.enc.Load(); e != nil {
		return e
	}
	return t.buildEncoding(slot, c)
}

// encodingOf returns column c's encoding given its slot (avoiding a
// second state() load on slow paths that already resolved it).
func (t *Table) encodingOf(slot *colSlot, c int) *Encoding {
	if e := slot.enc.Load(); e != nil {
		return e
	}
	return t.buildEncoding(slot, c)
}

// buildEncoding is Encoding's slow path: exactly-once build under the
// column's lock, then atomic publication.
func (t *Table) buildEncoding(slot *colSlot, c int) *Encoding {
	done := buildStart(BuildEncode)
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if e := slot.enc.Load(); e != nil {
		done(false)
		return e
	}
	e := encodeColumn(t.Data[c])
	slot.enc.Store(e)
	done(true)
	return e
}

// CanonCodes returns column c's canonical per-row codes and the size
// of their code space: all null spellings share code 0 and the k-th
// distinct non-null value (in ascending raw order) is k+1, so two rows
// agree on the column exactly when their codes are equal. The slice is
// shared and must not be mutated. FD partition refinement and row
// hashing run entirely on these streams; reads are lock-free after the
// stream's exactly-once build.
func (t *Table) CanonCodes(c int) (codes []uint32, size int) {
	return t.Encoding(c).CanonCodes()
}

// Value returns the raw cell value of column c, row r.
func (t *Table) Value(c, r int) string { return t.data()[c][r] }

// PrefixShared returns a table over the first n rows of t. Cell data
// is shared with the receiver (no copying); the prefix table computes
// its own profiles.
func (t *Table) PrefixShared(n int) *Table {
	d := t.data()
	p := New(t.Name, t.Cols)
	p.DatasetID = t.DatasetID
	for c := range d {
		p.Data[c] = d[c][:n]
	}
	return p
}

// AppendTable appends all rows of src, which must have the same column
// count, preserving row order. Used by the union-all materialization.
func (t *Table) AppendTable(src *Table) {
	if src.NumCols() != t.NumCols() {
		panic("table: AppendTable column count mismatch")
	}
	t.data()
	sd := src.data()
	for c := range t.Data {
		t.Data[c] = append(t.Data[c], sd[c]...)
	}
	t.InvalidateProfiles()
}
