package table

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"ogdp/internal/values"
)

func sample() *Table {
	return FromRows("t.csv", []string{"id", "city", "province"}, [][]string{
		{"1", "Waterloo", "ON"},
		{"2", "Toronto", "ON"},
		{"3", "Montreal", "QC"},
		{"4", "Waterloo", "ON"},
	})
}

func TestBasics(t *testing.T) {
	tb := sample()
	if tb.NumRows() != 4 || tb.NumCols() != 3 {
		t.Fatalf("shape = %d×%d", tb.NumCols(), tb.NumRows())
	}
	if tb.ColumnIndex("city") != 1 || tb.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex wrong")
	}
	row := tb.Row(2)
	if row[0] != "3" || row[1] != "Montreal" || row[2] != "QC" {
		t.Errorf("Row(2) = %v", row)
	}
	if got := len(tb.Rows()); got != 4 {
		t.Errorf("Rows() = %d", got)
	}
	if s := tb.String(); s != "t.csv (3 cols × 4 rows)" {
		t.Errorf("String() = %q", s)
	}
}

func TestAppendRow(t *testing.T) {
	tb := New("x", []string{"a", "b"})
	tb.AppendRow([]string{"1", "2"})
	tb.AppendRow([]string{"3", "4"})
	if tb.NumRows() != 2 || tb.Data[1][1] != "4" {
		t.Errorf("AppendRow failed: %+v", tb.Data)
	}
	defer func() {
		if recover() == nil {
			t.Error("AppendRow with wrong arity should panic")
		}
	}()
	tb.AppendRow([]string{"only-one"})
}

func TestFromRowsPadding(t *testing.T) {
	tb := FromRows("x", []string{"a", "b", "c"}, [][]string{
		{"1"},
		{"1", "2", "3", "4"},
	})
	if tb.Data[1][0] != "" || tb.Data[2][1] != "3" {
		t.Errorf("padding/truncation wrong: %+v", tb.Data)
	}
}

func TestProfile(t *testing.T) {
	tb := sample()
	id := tb.Profile(0)
	if !id.IsKey() || id.Uniqueness() != 1.0 || id.Type != values.ColIncrementalInt {
		t.Errorf("id profile = %+v", id)
	}
	prov := tb.Profile(2)
	if prov.IsKey() || prov.Distinct != 2 || prov.Uniqueness() != 0.5 {
		t.Errorf("province profile = %+v", prov)
	}
}

func TestProfileNulls(t *testing.T) {
	tb := FromRows("x", []string{"a"}, [][]string{{""}, {"n/a"}, {"v"}, {"v"}})
	p := tb.Profile(0)
	if p.Nulls != 2 || p.Distinct != 1 || p.NullRatio() != 0.5 {
		t.Errorf("profile = %+v", p)
	}
	if p.IsKey() {
		t.Error("column with nulls cannot be a key")
	}
}

func TestEmptyProfile(t *testing.T) {
	tb := New("x", []string{"a"})
	p := tb.Profile(0)
	if p.NullRatio() != 0 || p.Uniqueness() != 0 || p.IsKey() {
		t.Errorf("empty profile = %+v", p)
	}
}

func TestProject(t *testing.T) {
	tb := sample()
	p := tb.Project([]int{2, 0})
	if p.NumCols() != 2 || p.Cols[0] != "province" || p.Cols[1] != "id" {
		t.Errorf("Project cols = %v", p.Cols)
	}
	if p.Data[0][0] != "ON" || p.Data[1][3] != "4" {
		t.Errorf("Project data wrong")
	}
}

func TestClone(t *testing.T) {
	tb := sample()
	c := tb.Clone()
	c.Data[0][0] = "changed"
	if tb.Data[0][0] == "changed" {
		t.Error("Clone shares data")
	}
}

func TestSchemaKey(t *testing.T) {
	a := FromRows("a", []string{"Year", "Value"}, [][]string{{"2020", "1.5"}, {"2021", "2.5"}})
	b := FromRows("b", []string{"year", " value "}, [][]string{{"1999", "9.25"}, {"1998", "8.75"}})
	if a.SchemaKey() != b.SchemaKey() {
		t.Errorf("case/space-insensitive schemas should match:\n%q\n%q", a.SchemaKey(), b.SchemaKey())
	}
	c := FromRows("c", []string{"year", "value"}, [][]string{{"2020", "high"}, {"2021", "low"}})
	if a.SchemaKey() == c.SchemaKey() {
		t.Error("different broad types should not match")
	}
	d := FromRows("d", []string{"value", "year"}, [][]string{{"1.5", "2020"}, {"2.0", "2021"}})
	if a.SchemaKey() == d.SchemaKey() {
		t.Error("column order matters for schema identity")
	}
}

func TestDistinctCount(t *testing.T) {
	tb := sample()
	if got := tb.DistinctCount([]int{2}); got != 2 {
		t.Errorf("distinct(province) = %d", got)
	}
	if got := tb.DistinctCount([]int{1, 2}); got != 3 {
		t.Errorf("distinct(city,province) = %d", got)
	}
	if got := tb.DistinctCount([]int{0, 1, 2}); got != 4 {
		t.Errorf("distinct(all) = %d", got)
	}
	if got := tb.DistinctCount(nil); got != 1 {
		t.Errorf("distinct(empty projection) = %d", got)
	}
	empty := New("e", []string{"a"})
	if got := empty.DistinctCount(nil); got != 0 {
		t.Errorf("distinct on empty table = %d", got)
	}
}

func TestDistinctCountWithNulls(t *testing.T) {
	tb := FromRows("x", []string{"a"}, [][]string{{"v"}, {""}, {"v"}, {"n/a"}})
	// "v" plus one null bucket; note "" and "n/a" hash differently but both
	// are null — single-column distinct uses the profile (1 distinct + null).
	if got := tb.DistinctCount([]int{0}); got != 2 {
		t.Errorf("distinct with nulls = %d, want 2", got)
	}
}

func TestDistinctCountAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		nRows := 1 + rng.Intn(200)
		rows := make([][]string, nRows)
		for r := range rows {
			rows[r] = []string{
				strconv.Itoa(rng.Intn(5)),
				strconv.Itoa(rng.Intn(7)),
				strconv.Itoa(rng.Intn(3)),
			}
		}
		tb := FromRows("t", []string{"a", "b", "c"}, rows)
		cols := []int{0, 2}
		naive := make(map[string]struct{})
		for _, row := range rows {
			naive[row[0]+"\x00"+row[2]] = struct{}{}
		}
		if got := tb.DistinctCount(cols); got != len(naive) {
			t.Fatalf("trial %d: DistinctCount = %d, naive = %d", trial, got, len(naive))
		}
	}
}

func TestRowHashesProjectionSensitivity(t *testing.T) {
	tb := FromRows("x", []string{"a", "b"}, [][]string{{"ab", ""}, {"a", "b"}})
	h := tb.RowHashes([]int{0, 1})
	if h[0] == h[1] {
		t.Error("rows (ab, '') and (a, b) must hash differently")
	}
}

func TestHashValueStable(t *testing.T) {
	f := func(s string) bool {
		return HashValue(s) == HashValue(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidateProfiles(t *testing.T) {
	tb := sample()
	p1 := tb.Profile(0)
	tb.Data[0][0] = "99"
	tb.InvalidateProfiles()
	p2 := tb.Profile(0)
	if p1 == p2 {
		t.Error("InvalidateProfiles did not drop cache")
	}
}

func TestProfilesAll(t *testing.T) {
	tb := sample()
	ps := tb.Profiles()
	if len(ps) != 3 || ps[1].Name != "city" {
		t.Errorf("Profiles = %v", ps)
	}
}

func BenchmarkProfile(b *testing.B) {
	rows := make([][]string, 10000)
	for r := range rows {
		rows[r] = []string{strconv.Itoa(r), fmt.Sprintf("city-%d", r%50), "ON"}
	}
	for i := 0; i < b.N; i++ {
		tb := FromRows("t", []string{"id", "city", "province"}, rows)
		tb.Profiles()
	}
}

func BenchmarkDistinctCount(b *testing.B) {
	rows := make([][]string, 10000)
	for r := range rows {
		rows[r] = []string{strconv.Itoa(r % 100), strconv.Itoa(r % 37), strconv.Itoa(r % 11)}
	}
	tb := FromRows("t", []string{"a", "b", "c"}, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.DistinctCount([]int{0, 1, 2})
	}
}
