// Package table implements the in-memory relational table model the
// study operates on: columnar storage with a lazily built dictionary
// encoding per column (sorted distinct values, dense uint32 codes),
// cached column profiles (inferred type, null ratio, distinct values,
// uniqueness score), and the projection/hashing primitives used by key
// discovery, functional dependency mining, and join analysis.
//
// Raw strings are kept as the ingest and serialization representation
// (Data); every analysis hot path runs on the encoded form instead and
// recovers raw values through the dictionary. Direct Data access
// outside this package and csvio is flagged by the ogdplint rawdata
// check.
//
// # Concurrency and the publication contract
//
// Every lazy cache (Encoding, ColumnProfile, canonical code stream,
// SchemaKey) follows the same build-once/publish-once protocol:
//
//   - The read path is lock-free: a single atomic pointer load. Once a
//     value has been published, readers never touch a mutex again, so
//     the §4–§6 analyses can hammer the same table from every worker
//     without serializing.
//   - The build path is exactly-once: a goroutine that misses the
//     published pointer takes that column's build lock, re-checks, and
//     either builds-and-publishes or returns the value a racing
//     builder published first. Locks are per column, so building
//     column 3 never blocks a reader (or builder) of column 4.
//   - Published values are immutable. Encoding slices, canonical code
//     streams, and profiles must never be written after the atomic
//     store that publishes them; callers share them freely across
//     goroutines and must treat them as read-only.
//
// Mutation (AppendRow, AppendTable, direct Data writes followed by
// InvalidateProfiles) still must not overlap with any concurrent
// access: invalidation swaps in a fresh cache generation but cannot
// recall values already handed out.
package table

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ogdp/internal/values"
)

// RaggedCells counts the row-normalization fixes applied while a table
// was ingested: cells dropped from over-long rows and cells invented
// to pad short rows. Both are data-quality signals the profiling layer
// surfaces instead of losing silently.
type RaggedCells struct {
	Truncated int // cells dropped from rows wider than the header
	Padded    int // empty cells appended to rows narrower than the header
}

// Table is a named relational table. Values are stored column-major as
// raw CSV strings; nulls are any value for which values.IsNull is true.
//
// Profile, Profiles, Encoding, CanonCodes, SchemaKey, and
// DistinctCount are safe for concurrent use (lock-free after first
// publication; see the package comment for the publication contract),
// so analyses may share a table across goroutines as long as none of
// them mutates Cols or Data. Mutation (AppendRow, direct Data writes
// plus InvalidateProfiles) must not overlap with any other access.
type Table struct {
	// Name identifies the table (typically the resource file name).
	Name string
	// DatasetID is the identifier of the CKAN dataset the table was
	// published under; empty when the table is free-standing.
	DatasetID string
	// Cols holds the column names, in order.
	Cols []string
	// Data holds the cell values: Data[c][r] is row r of column c.
	// All columns have the same length. For encoding-backed tables
	// (FromEncodings) Data starts nil and is materialized from the
	// dictionaries on first row-level access; always read it through
	// accessors (or data()) so materialization can happen.
	Data [][]string
	// Ragged records cells truncated or padded at ingest time.
	Ragged RaggedCells

	initMu sync.Mutex                 // guards st creation and invalidation
	st     atomic.Pointer[tableState] // current lazy-cache generation

	// ext marks an encoding-backed table whose Data has not been
	// materialized yet (see FromEncodings); extRows carries its row
	// count, since len(Data[0]) is meaningless until materialization.
	ext     atomic.Bool
	extRows int
	dataMu  sync.Mutex // serializes the one Data materialization
}

// tableState is one generation of a table's lazy caches. Invalidation
// publishes a fresh generation instead of clearing slots in place, so
// readers of the old generation keep a consistent view.
type tableState struct {
	cols []colSlot // indexed like Table.Cols

	schemaMu  sync.Mutex // serializes SchemaKey builds
	schemaKey atomic.Pointer[string]
}

// colSlot holds one column's published caches plus the build lock that
// makes each cache exactly-once. The atomic pointers are the only
// fields readers touch after publication.
type colSlot struct {
	mu   sync.Mutex // serializes builds of this column only
	enc  atomic.Pointer[Encoding]
	prof atomic.Pointer[ColumnProfile]
}

// state returns the current cache generation, creating it on first
// use.
func (t *Table) state() *tableState {
	if s := t.st.Load(); s != nil {
		return s
	}
	t.initMu.Lock()
	defer t.initMu.Unlock()
	if s := t.st.Load(); s != nil {
		return s
	}
	s := &tableState{cols: make([]colSlot, len(t.Cols))}
	t.st.Store(s)
	return s
}

// New creates an empty table with the given column names.
func New(name string, cols []string) *Table {
	t := &Table{Name: name, Cols: append([]string(nil), cols...)}
	t.Data = make([][]string, len(cols))
	return t
}

// FromRows builds a table from row-major data. Short rows are padded
// with empty strings and long rows are truncated to the header width;
// both fixes are counted in Ragged rather than applied silently.
func FromRows(name string, cols []string, rows [][]string) *Table {
	t := New(name, cols)
	for c := range t.Data {
		t.Data[c] = make([]string, len(rows))
	}
	for r, row := range rows {
		if d := len(row) - len(cols); d > 0 {
			t.Ragged.Truncated += d
		} else if d < 0 {
			t.Ragged.Padded -= d
		}
		for c := 0; c < len(cols); c++ {
			if c < len(row) {
				t.Data[c][r] = row[c]
			}
		}
	}
	return t
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int {
	if t.ext.Load() {
		return t.extRows
	}
	if len(t.Data) == 0 {
		return 0
	}
	return len(t.Data[0])
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Cols) }

// AppendRow adds one tuple. The row must have exactly NumCols values.
func (t *Table) AppendRow(row []string) {
	if len(row) != len(t.Cols) {
		panic(fmt.Sprintf("table %s: AppendRow got %d values, want %d", t.Name, len(row), len(t.Cols)))
	}
	t.data()
	for c, v := range row {
		t.Data[c] = append(t.Data[c], v)
	}
	t.InvalidateProfiles()
}

// Column returns the values of column c.
func (t *Table) Column(c int) []string { return t.data()[c] }

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, n := range t.Cols {
		if n == name {
			return i
		}
	}
	return -1
}

// Row materializes row r (a fresh slice).
func (t *Table) Row(r int) []string {
	d := t.data()
	row := make([]string, len(t.Cols))
	for c := range t.Cols {
		row[c] = d[c][r]
	}
	return row
}

// Rows materializes all rows (fresh slices); intended for tests and
// small tables.
func (t *Table) Rows() [][]string {
	rows := make([][]string, t.NumRows())
	for r := range rows {
		rows[r] = t.Row(r)
	}
	return rows
}

// Project returns a new table with only the given column indices, in
// the given order. Data slices are shared with the receiver, and so
// are any column profiles and encodings already published (both are
// immutable, so sharing them across tables is safe).
func (t *Table) Project(cols []int) *Table {
	d := t.data()
	p := &Table{Name: t.Name, DatasetID: t.DatasetID}
	src := t.state()
	ps := &tableState{cols: make([]colSlot, len(cols))}
	for i, c := range cols {
		p.Cols = append(p.Cols, t.Cols[c])
		p.Data = append(p.Data, d[c])
		if e := src.cols[c].enc.Load(); e != nil {
			ps.cols[i].enc.Store(e)
		}
		if pr := src.cols[c].prof.Load(); pr != nil {
			ps.cols[i].prof.Store(pr)
		}
	}
	p.st.Store(ps)
	return p
}

// SelectRows returns a new table containing the given rows of t, in
// the given order. Cell values are copied, so the result is
// independent of the receiver.
func (t *Table) SelectRows(rows []int) *Table {
	d := t.data()
	out := New(t.Name, t.Cols)
	out.DatasetID = t.DatasetID
	for c := range out.Data {
		col := make([]string, len(rows))
		src := d[c]
		for i, r := range rows {
			col[i] = src[r]
		}
		out.Data[c] = col
	}
	return out
}

// Clone returns a deep copy of the table (excluding cached profiles
// and encodings).
func (t *Table) Clone() *Table {
	d := t.data()
	c := &Table{Name: t.Name, DatasetID: t.DatasetID, Cols: append([]string(nil), t.Cols...), Ragged: t.Ragged}
	c.Data = make([][]string, len(d))
	for i, col := range d {
		c.Data[i] = append([]string(nil), col...)
	}
	return c
}

// ColumnProfile is the cached per-column profile used throughout the
// study. Profiles are immutable once published.
type ColumnProfile struct {
	Name     string
	Type     values.ColumnType
	NumRows  int
	Nulls    int // count of null cells
	Distinct int // count of distinct non-null values

	enc *Encoding // the column's dictionary encoding
}

// NullRatio is the fraction of cells that are null.
func (p *ColumnProfile) NullRatio() float64 {
	if p.NumRows == 0 {
		return 0
	}
	return float64(p.Nulls) / float64(p.NumRows)
}

// Uniqueness is the paper's uniqueness score |set(c)| / |c|: distinct
// non-null values over total rows. A score of 1.0 with no nulls means
// the column is a key.
func (p *ColumnProfile) Uniqueness() float64 {
	if p.NumRows == 0 {
		return 0
	}
	return float64(p.Distinct) / float64(p.NumRows)
}

// IsKey reports whether the column is a single-column key: every row
// has a distinct non-null value.
func (p *ColumnProfile) IsKey() bool {
	return p.NumRows > 0 && p.Nulls == 0 && p.Distinct == p.NumRows
}

// ValueHashes returns the ascending distinct FNV-64a hashes of the
// column's non-null values (len == Distinct). The slice is shared and
// must not be mutated; it is what the join, search, and inclusion
// analyses intersect instead of rebuilding hash sets per call.
func (p *ColumnProfile) ValueHashes() []uint64 { return p.enc.hashes }

// ValueHashCounts returns the multiplicities aligned with ValueHashes.
// The slice is shared and must not be mutated.
func (p *ColumnProfile) ValueHashCounts() []int32 { return p.enc.hashCounts }

// HashValue hashes a cell value with FNV-64a, the hash underlying
// ValueHashes.
func HashValue(v string) uint64 { return hashString(v) }

// Profile returns the cached profile of column c, computing it on
// first use. The fast path is a single atomic load; a cache miss
// builds the profile exactly once under the column's build lock (see
// the package comment).
func (t *Table) Profile(c int) *ColumnProfile {
	slot := &t.state().cols[c]
	if p := slot.prof.Load(); p != nil {
		return p
	}
	return t.buildProfile(slot, c)
}

// buildProfile is Profile's slow path. The encoding is obtained first
// (it has its own exactly-once protocol on the same slot lock), then
// the profile is derived and published under the lock.
func (t *Table) buildProfile(slot *colSlot, c int) *ColumnProfile {
	e := t.encodingOf(slot, c)
	done := buildStart(BuildProfile)
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if p := slot.prof.Load(); p != nil {
		done(false)
		return p
	}
	p := profileColumn(t.Cols[c], e)
	slot.prof.Store(p)
	done(true)
	return p
}

// Profiles returns profiles for every column.
func (t *Table) Profiles() []*ColumnProfile {
	out := make([]*ColumnProfile, len(t.Cols))
	for c := range t.Cols {
		out[c] = t.Profile(c)
	}
	return out
}

// profileColumn derives a column's profile entirely from its
// dictionary encoding: nulls and distinct counts are precomputed
// aggregates, and type inference classifies each distinct value once.
func profileColumn(name string, e *Encoding) *ColumnProfile {
	return &ColumnProfile{
		Name:     name,
		NumRows:  len(e.Codes),
		Nulls:    e.nulls,
		Distinct: len(e.hashes),
		Type:     values.InferCounted(e.Dict, e.DictCounts, values.InferOptions{}),
		enc:      e,
	}
}

// InvalidateProfiles drops cached column profiles, encodings, and the
// schema key by publishing a fresh cache generation; call after
// mutating Data directly. Values handed out before the invalidation
// stay valid for (stale) readers but are never returned again.
// Encoding-backed tables materialize their Data first — the encodings
// about to be dropped are the only copy of the cell values.
func (t *Table) InvalidateProfiles() {
	t.data()
	t.initMu.Lock()
	t.st.Store(&tableState{cols: make([]colSlot, len(t.Cols))})
	t.initMu.Unlock()
}

// SchemaKey returns the canonical schema identity used for the
// unionability analysis (§6): the ordered, case-folded column names
// joined with the columns' broad type classes. Two tables are
// unionable exactly when their SchemaKeys are equal. The key is
// computed exactly once and read lock-free afterwards.
func (t *Table) SchemaKey() string {
	s := t.state()
	if k := s.schemaKey.Load(); k != nil {
		return *k
	}
	done := buildStart(BuildSchemaKey)
	s.schemaMu.Lock()
	defer s.schemaMu.Unlock()
	if k := s.schemaKey.Load(); k != nil {
		done(false)
		return *k
	}
	var b strings.Builder
	for c, name := range t.Cols {
		if c > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(strings.ToLower(strings.TrimSpace(name)))
		b.WriteByte('\x1e')
		b.WriteString(t.Profile(c).Type.BroadClass())
	}
	key := b.String()
	s.schemaKey.Store(&key)
	done(true)
	return key
}

// RowHashes returns one 64-bit hash per row over the given column
// subset, suitable for distinct counting and duplicate-row grouping.
// Hashes are mixed from the columns' canonical codes, so all null
// spellings of a cell compare equal and two rows collide exactly when
// they agree on every projected column (up to 64-bit hash collisions).
func (t *Table) RowHashes(cols []int) []uint64 {
	n := t.NumRows()
	hashes := make([]uint64, n)
	for i := range hashes {
		hashes[i] = fnvOffset64
	}
	for _, c := range cols {
		codes, _ := t.CanonCodes(c)
		for r := 0; r < n; r++ {
			h := hashes[r]
			h ^= uint64(codes[r])
			h *= fnvPrime64
			h ^= 0x1f // field separator
			h *= fnvPrime64
			hashes[r] = h
		}
	}
	return hashes
}

// DistinctCount returns the number of distinct tuples in the projection
// of the table onto cols. With an empty projection it returns 1 when
// the table has rows (the empty tuple) and 0 otherwise.
func (t *Table) DistinctCount(cols []int) int {
	if len(cols) == 0 {
		if t.NumRows() > 0 {
			return 1
		}
		return 0
	}
	if len(cols) == 1 {
		// Use the cached profile; count nulls as one extra distinct
		// value when present, matching tuple semantics where null cells
		// are a distinguishable value.
		p := t.Profile(cols[0])
		d := p.Distinct
		if p.Nulls > 0 {
			d++
		}
		return d
	}
	seen := make(map[uint64]struct{}, t.NumRows())
	for _, h := range t.RowHashes(cols) {
		seen[h] = struct{}{}
	}
	return len(seen)
}

// String returns a short description, e.g. "awards.csv (5 cols × 120 rows)".
func (t *Table) String() string {
	return fmt.Sprintf("%s (%d cols × %d rows)", t.Name, t.NumCols(), t.NumRows())
}
