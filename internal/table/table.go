// Package table implements the in-memory relational table model the
// study operates on: columnar string storage with lazily computed,
// cached column profiles (inferred type, null ratio, distinct values,
// uniqueness score) and the projection/hashing primitives used by key
// discovery, functional dependency mining, and join analysis.
package table

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"ogdp/internal/values"
)

// Table is a named relational table. Values are stored column-major as
// raw CSV strings; nulls are any value for which values.IsNull is true.
//
// Profile, Profiles, and DistinctCount are safe for concurrent use, so
// analyses may share a table across goroutines as long as none of them
// mutates Cols or Data. Mutation (AppendRow, direct Data writes plus
// InvalidateProfiles) must not overlap with any other access.
type Table struct {
	// Name identifies the table (typically the resource file name).
	Name string
	// DatasetID is the identifier of the CKAN dataset the table was
	// published under; empty when the table is free-standing.
	DatasetID string
	// Cols holds the column names, in order.
	Cols []string
	// Data holds the cell values: Data[c][r] is row r of column c.
	// All columns have the same length.
	Data [][]string

	profMu   sync.Mutex       // guards profiles
	profiles []*ColumnProfile // lazily built, indexed like Cols
}

// New creates an empty table with the given column names.
func New(name string, cols []string) *Table {
	t := &Table{Name: name, Cols: append([]string(nil), cols...)}
	t.Data = make([][]string, len(cols))
	return t
}

// FromRows builds a table from row-major data. Short rows are padded
// with empty strings; long rows are truncated to the header width.
func FromRows(name string, cols []string, rows [][]string) *Table {
	t := New(name, cols)
	for c := range t.Data {
		t.Data[c] = make([]string, len(rows))
	}
	for r, row := range rows {
		for c := 0; c < len(cols); c++ {
			if c < len(row) {
				t.Data[c][r] = row[c]
			}
		}
	}
	return t
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int {
	if len(t.Data) == 0 {
		return 0
	}
	return len(t.Data[0])
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Cols) }

// AppendRow adds one tuple. The row must have exactly NumCols values.
func (t *Table) AppendRow(row []string) {
	if len(row) != len(t.Cols) {
		panic(fmt.Sprintf("table %s: AppendRow got %d values, want %d", t.Name, len(row), len(t.Cols)))
	}
	for c, v := range row {
		t.Data[c] = append(t.Data[c], v)
	}
	t.InvalidateProfiles()
}

// Column returns the values of column c.
func (t *Table) Column(c int) []string { return t.Data[c] }

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, n := range t.Cols {
		if n == name {
			return i
		}
	}
	return -1
}

// Row materializes row r (a fresh slice).
func (t *Table) Row(r int) []string {
	row := make([]string, len(t.Cols))
	for c := range t.Cols {
		row[c] = t.Data[c][r]
	}
	return row
}

// Rows materializes all rows (fresh slices); intended for tests and
// small tables.
func (t *Table) Rows() [][]string {
	rows := make([][]string, t.NumRows())
	for r := range rows {
		rows[r] = t.Row(r)
	}
	return rows
}

// Project returns a new table with only the given column indices, in
// the given order. Data slices are shared with the receiver.
func (t *Table) Project(cols []int) *Table {
	p := &Table{Name: t.Name, DatasetID: t.DatasetID}
	for _, c := range cols {
		p.Cols = append(p.Cols, t.Cols[c])
		p.Data = append(p.Data, t.Data[c])
	}
	return p
}

// Clone returns a deep copy of the table (excluding cached profiles).
func (t *Table) Clone() *Table {
	c := &Table{Name: t.Name, DatasetID: t.DatasetID, Cols: append([]string(nil), t.Cols...)}
	c.Data = make([][]string, len(t.Data))
	for i, col := range t.Data {
		c.Data[i] = append([]string(nil), col...)
	}
	return c
}

// ColumnProfile is the cached per-column profile used throughout the
// study.
type ColumnProfile struct {
	Name     string
	Type     values.ColumnType
	NumRows  int
	Nulls    int            // count of null cells
	Distinct int            // count of distinct non-null values
	Counts   map[uint64]int // hashed non-null value -> multiplicity
}

// NullRatio is the fraction of cells that are null.
func (p *ColumnProfile) NullRatio() float64 {
	if p.NumRows == 0 {
		return 0
	}
	return float64(p.Nulls) / float64(p.NumRows)
}

// Uniqueness is the paper's uniqueness score |set(c)| / |c|: distinct
// non-null values over total rows. A score of 1.0 with no nulls means
// the column is a key.
func (p *ColumnProfile) Uniqueness() float64 {
	if p.NumRows == 0 {
		return 0
	}
	return float64(p.Distinct) / float64(p.NumRows)
}

// IsKey reports whether the column is a single-column key: every row
// has a distinct non-null value.
func (p *ColumnProfile) IsKey() bool {
	return p.NumRows > 0 && p.Nulls == 0 && p.Distinct == p.NumRows
}

// HashValue hashes a cell value the way ColumnProfile.Counts does.
func HashValue(v string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(v))
	return h.Sum64()
}

// Profile returns the cached profile of column c, computing it on
// first use. Safe for concurrent use; the column is profiled at most
// once.
func (t *Table) Profile(c int) *ColumnProfile {
	t.profMu.Lock()
	defer t.profMu.Unlock()
	if t.profiles == nil {
		t.profiles = make([]*ColumnProfile, len(t.Cols))
	}
	if t.profiles[c] == nil {
		t.profiles[c] = profileColumn(t.Cols[c], t.Data[c])
	}
	return t.profiles[c]
}

// Profiles returns profiles for every column.
func (t *Table) Profiles() []*ColumnProfile {
	out := make([]*ColumnProfile, len(t.Cols))
	for c := range t.Cols {
		out[c] = t.Profile(c)
	}
	return out
}

func profileColumn(name string, col []string) *ColumnProfile {
	p := &ColumnProfile{
		Name:    name,
		NumRows: len(col),
		Counts:  make(map[uint64]int),
	}
	for _, v := range col {
		if values.IsNull(v) {
			p.Nulls++
			continue
		}
		p.Counts[HashValue(v)]++
	}
	p.Distinct = len(p.Counts)
	p.Type = values.Infer(col)
	return p
}

// InvalidateProfiles drops cached column profiles; call after mutating
// Data directly.
func (t *Table) InvalidateProfiles() {
	t.profMu.Lock()
	t.profiles = nil
	t.profMu.Unlock()
}

// SchemaKey returns the canonical schema identity used for the
// unionability analysis (§6): the ordered, case-folded column names
// joined with the columns' broad type classes. Two tables are
// unionable exactly when their SchemaKeys are equal.
func (t *Table) SchemaKey() string {
	var b strings.Builder
	for c, name := range t.Cols {
		if c > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(strings.ToLower(strings.TrimSpace(name)))
		b.WriteByte('\x1e')
		b.WriteString(t.Profile(c).Type.BroadClass())
	}
	return b.String()
}

// RowHashes returns one 64-bit hash per row over the given column
// subset, suitable for distinct counting. Null cells hash as a
// reserved sentinel so that rows with nulls still compare consistently.
func (t *Table) RowHashes(cols []int) []uint64 {
	n := t.NumRows()
	hashes := make([]uint64, n)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	for r := 0; r < n; r++ {
		var h uint64 = offset64
		for _, c := range cols {
			v := t.Data[c][r]
			if values.IsNull(v) {
				// All null spellings hash identically, matching the
				// single-column profile's null bucket.
				h ^= 0x01
				h *= prime64
			} else {
				for i := 0; i < len(v); i++ {
					h ^= uint64(v[i])
					h *= prime64
				}
			}
			h ^= 0x1f // field separator
			h *= prime64
		}
		hashes[r] = h
	}
	return hashes
}

// DistinctCount returns the number of distinct tuples in the projection
// of the table onto cols. With an empty projection it returns 1 when
// the table has rows (the empty tuple) and 0 otherwise.
func (t *Table) DistinctCount(cols []int) int {
	if len(cols) == 0 {
		if t.NumRows() > 0 {
			return 1
		}
		return 0
	}
	if len(cols) == 1 {
		// Use the cached profile; count nulls as one extra distinct
		// value when present, matching tuple semantics where null cells
		// are a distinguishable value.
		p := t.Profile(cols[0])
		d := p.Distinct
		if p.Nulls > 0 {
			d++
		}
		return d
	}
	seen := make(map[uint64]struct{}, t.NumRows())
	for _, h := range t.RowHashes(cols) {
		seen[h] = struct{}{}
	}
	return len(seen)
}

// String returns a short description, e.g. "awards.csv (5 cols × 120 rows)".
func (t *Table) String() string {
	return fmt.Sprintf("%s (%d cols × %d rows)", t.Name, t.NumCols(), t.NumRows())
}
