package table

import "fmt"

// This file is the externally-backed half of the publication contract:
// a table whose dictionary encodings were built elsewhere (typically
// deserialized from a colstore file and pointing into a read-only
// mmap) is constructed with every per-column cache pre-published and
// no raw Data at all. Analyses that run on codes and hashes — the
// study's hot paths — never materialize a single row; the cold
// row-level accessors rebuild Data from the dictionaries on first use.

// EncodingFromParts assembles an Encoding from externally serialized
// parts — the read-only construction path used by the colstore reader.
// The slices are adopted, not copied: the caller must never mutate
// them afterwards (they typically point into a read-only mapping).
// Codes are validated against the dictionary size, since an
// out-of-range code would otherwise panic arbitrarily later; the
// dictionary is trusted to be in ascending byte order with counts and
// hash blocks consistent, which the colstore checksum protects.
func EncodingFromParts(dict []string, codes []uint32, dictCounts []int32, dictNull []bool, hashes []uint64, hashCounts []int32) (*Encoding, error) {
	if len(dictCounts) != len(dict) || len(dictNull) != len(dict) {
		return nil, fmt.Errorf("table: encoding parts disagree: %d dict entries, %d counts, %d null flags",
			len(dict), len(dictCounts), len(dictNull))
	}
	if len(hashCounts) != len(hashes) {
		return nil, fmt.Errorf("table: encoding parts disagree: %d hashes, %d hash counts", len(hashes), len(hashCounts))
	}
	n := uint32(len(dict))
	for r, c := range codes {
		if c >= n {
			return nil, fmt.Errorf("table: code %d at row %d out of dictionary range [0, %d)", c, r, n)
		}
	}
	e := &Encoding{
		Dict:       dict,
		Codes:      codes,
		DictCounts: dictCounts,
		DictNull:   dictNull,
		hashes:     hashes,
		hashCounts: hashCounts,
	}
	for i, null := range dictNull {
		if null {
			e.nulls += int(dictCounts[i])
		}
	}
	return e, nil
}

// FromEncodings constructs a table directly from pre-built column
// encodings, one per column. The encodings are published into the
// table's caches at construction — before any reader can exist, so the
// stores need no build mutex (the still-private half of the
// publication protocol) — and Data stays nil until a row-level
// accessor materializes it. Row counts must agree across columns.
func FromEncodings(name string, cols []string, encs []*Encoding) (*Table, error) {
	if len(cols) != len(encs) {
		return nil, fmt.Errorf("table: %s: %d columns, %d encodings", name, len(cols), len(encs))
	}
	rows := 0
	if len(encs) > 0 {
		rows = len(encs[0].Codes)
	}
	for i, e := range encs {
		if e == nil {
			return nil, fmt.Errorf("table: %s: nil encoding for column %d", name, i)
		}
		if len(e.Codes) != rows {
			return nil, fmt.Errorf("table: %s: column %d has %d rows, column 0 has %d", name, i, len(e.Codes), rows)
		}
	}
	t := &Table{Name: name, Cols: append([]string(nil), cols...), extRows: rows}
	s := &tableState{cols: make([]colSlot, len(cols))}
	for i, e := range encs {
		s.cols[i].enc.Store(e)
	}
	t.st.Store(s)
	t.ext.Store(true)
	return t, nil
}

// Encoded reports whether the table is encoding-backed and has not
// materialized its raw Data yet.
func (t *Table) Encoded() bool { return t.ext.Load() }

// data returns the raw cell columns, materializing them from the
// dictionary encodings first when the table is encoding-backed. The
// fast path for ordinary tables is one atomic load.
func (t *Table) data() [][]string {
	if !t.ext.Load() {
		return t.Data
	}
	t.materializeData()
	return t.Data
}

// materializeData rebuilds Data from the published encodings, exactly
// once. Data is fully built before the ext flag flips, so concurrent
// readers either see the nil Data (and come here) or the complete
// materialization — never a partial one.
func (t *Table) materializeData() {
	t.dataMu.Lock()
	defer t.dataMu.Unlock()
	if !t.ext.Load() {
		return
	}
	d := make([][]string, len(t.Cols))
	s := t.state()
	for c := range t.Cols {
		e := s.cols[c].enc.Load()
		col := make([]string, len(e.Codes))
		for r, code := range e.Codes {
			col[r] = e.Dict[code]
		}
		d[c] = col
	}
	t.Data = d
	t.ext.Store(false)
}
