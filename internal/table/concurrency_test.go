package table

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// countingObserver tallies the slow-path build events of the lazy
// column caches, split into actual builds and wait-outs.
type countingObserver struct {
	mu     sync.Mutex
	built  map[string]int
	waited map[string]int
}

func newCountingObserver() *countingObserver {
	return &countingObserver{built: map[string]int{}, waited: map[string]int{}}
}

func (o *countingObserver) BuildStart(kind string) func(built bool) {
	return func(built bool) {
		o.mu.Lock()
		defer o.mu.Unlock()
		if built {
			o.built[kind]++
		} else {
			o.waited[kind]++
		}
	}
}

func (o *countingObserver) builds(kind string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.built[kind]
}

func stressTable(cols, rows int) *Table {
	header := make([]string, cols)
	data := make([][]string, rows)
	for c := range header {
		header[c] = fmt.Sprintf("c%d", c)
	}
	for r := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprintf("v%d", (r*31+c*7)%(10+c*5))
		}
		data[r] = row
	}
	return FromRows("stress.csv", header, data)
}

// TestConcurrentBuildExactlyOnce is the publication contract under
// fire: many goroutines hammer every lazy accessor of a shared table
// and each cache must be built exactly once per column (once per
// table for the schema key), with every goroutine observing the same
// published pointer. Run under -race this also proves the fast paths
// are data-race-free.
func TestConcurrentBuildExactlyOnce(t *testing.T) {
	const goroutines = 16
	obs := newCountingObserver()
	SetBuildObserver(obs)
	t.Cleanup(func() { SetBuildObserver(nil) })

	tb := stressTable(6, 300)
	nc := tb.NumCols()

	type view struct {
		encs  []*Encoding
		profs []*ColumnProfile
		key   string
	}
	views := make([]view, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			v := view{encs: make([]*Encoding, nc), profs: make([]*ColumnProfile, nc)}
			for c := 0; c < nc; c++ {
				// Interleave accessor order per goroutine so builds race
				// through different entry points (Profile pulls in the
				// encoding, CanonCodes pulls it in via Encoding).
				if g%2 == 0 {
					v.profs[c] = tb.Profile(c)
					v.encs[c] = tb.Encoding(c)
				} else {
					v.encs[c] = tb.Encoding(c)
					v.profs[c] = tb.Profile(c)
				}
				tb.CanonCodes(c)
				tb.DistinctCount([]int{c})
			}
			tb.RowHashes([]int{0, 1})
			v.key = tb.SchemaKey()
			views[g] = v
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for c := 0; c < nc; c++ {
			if views[g].encs[c] != views[0].encs[c] {
				t.Fatalf("goroutine %d observed a different *Encoding for column %d", g, c)
			}
			if views[g].profs[c] != views[0].profs[c] {
				t.Fatalf("goroutine %d observed a different *ColumnProfile for column %d", g, c)
			}
		}
		if views[g].key != views[0].key {
			t.Fatalf("goroutine %d observed schema key %q, goroutine 0 %q", g, views[g].key, views[0].key)
		}
	}

	for _, want := range []struct {
		kind string
		n    int
	}{
		{BuildEncode, nc},
		{BuildProfile, nc},
		{BuildCanon, nc},
		{BuildSchemaKey, 1},
	} {
		if got := obs.builds(want.kind); got != want.n {
			t.Errorf("%s built %d times, want exactly %d", want.kind, got, want.n)
		}
	}
}

// TestCanonCodesConcurrentIdentical checks the canon stream built
// under contention matches a cold sequential build value-for-value.
func TestCanonCodesConcurrentIdentical(t *testing.T) {
	hot := stressTable(4, 200)
	cold := stressTable(4, 200)

	var wg sync.WaitGroup
	got := make([][]uint32, 8)
	sizes := make([]int, 8)
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g], sizes[g] = hot.CanonCodes(g % hot.NumCols())
		}(g)
	}
	wg.Wait()

	for g := range got {
		wantCodes, wantSize := cold.CanonCodes(g % cold.NumCols())
		if sizes[g] != wantSize || !reflect.DeepEqual(got[g], wantCodes) {
			t.Fatalf("concurrent canon stream for column %d differs from sequential", g%hot.NumCols())
		}
	}
}

// TestProjectSharesPublishedCaches: projecting a table must hand the
// child the parent's already-published (immutable) encodings and
// profiles instead of recomputing them.
func TestProjectSharesPublishedCaches(t *testing.T) {
	tb := stressTable(5, 50)
	for c := 0; c < tb.NumCols(); c++ {
		tb.Profile(c)
	}

	obs := newCountingObserver()
	SetBuildObserver(obs)
	t.Cleanup(func() { SetBuildObserver(nil) })

	proj := tb.Project([]int{3, 1})
	if proj.Encoding(0) != tb.Encoding(3) || proj.Encoding(1) != tb.Encoding(1) {
		t.Error("projection did not share the parent's published encodings")
	}
	if proj.Profile(0) != tb.Profile(3) || proj.Profile(1) != tb.Profile(1) {
		t.Error("projection did not share the parent's published profiles")
	}
	if n := obs.builds(BuildEncode) + obs.builds(BuildProfile); n != 0 {
		t.Errorf("projection rebuilt %d shared caches", n)
	}
}

// TestInvalidateProfilesPublishesFreshGeneration: invalidation must
// swap in a whole new cache generation — later accessors rebuild and
// republish rather than seeing stale values.
func TestInvalidateProfilesPublishesFreshGeneration(t *testing.T) {
	tb := stressTable(3, 40)
	before := tb.Profile(1)
	keyBefore := tb.SchemaKey()

	tb.InvalidateProfiles()
	after := tb.Profile(1)
	if after == before {
		t.Error("InvalidateProfiles left the old *ColumnProfile published")
	}
	if !reflect.DeepEqual(after, before) {
		t.Error("rebuilt profile differs in value from the original")
	}
	if tb.SchemaKey() != keyBefore {
		t.Error("schema key changed across invalidation of an unchanged table")
	}
}
