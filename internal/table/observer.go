package table

import "sync/atomic"

// Build kinds reported to the BuildObserver, one per lazy cache of
// the table layer.
const (
	BuildEncode    = "encode"    // dictionary encoding of one column
	BuildProfile   = "profile"   // column profile derived from the encoding
	BuildCanon     = "canon"     // canonical per-row code stream
	BuildSchemaKey = "schemakey" // table schema identity
)

// BuildObserver receives slow-path events from the lazy column
// caches: every time a goroutine misses a published value and has to
// take a build lock, BuildStart is called with the cache kind and the
// returned func is invoked once the value is available — built=true
// when this goroutine performed the build, false when it merely
// waited out a racing builder.
//
// The observer interface carries no clock: an implementation that
// wants wait durations times the window between BuildStart and the
// done call itself (obs.NewEncodeStats does exactly that with an
// injected clock). Wait times and the waited-event count depend on
// scheduling, so observers are diagnostic-only — the CLIs install one
// under -trace, never in the deterministic -metrics mode. The
// built=true event count, by contrast, is exactly the number of cache
// builds and is deterministic (exactly once per column per kind).
type BuildObserver interface {
	BuildStart(kind string) func(built bool)
}

// buildObserver holds the installed BuildObserver; atomic so
// installation never races with running analyses.
var buildObserver atomic.Value // of buildObsBox

// buildObsBox keeps atomic.Value happy when storing different
// concrete BuildObserver types (including nil).
type buildObsBox struct{ o BuildObserver }

// SetBuildObserver installs (or, with nil, removes) the process-wide
// build observer. Intended to be called once at CLI startup, before
// any analyses run.
func SetBuildObserver(o BuildObserver) {
	buildObserver.Store(buildObsBox{o: o})
}

// nopDone is returned when no observer is installed, so slow paths
// never branch on "is observability enabled".
var nopDone = func(bool) {}

// buildStart notifies the installed observer (if any) that a
// slow-path build/wait window opened, returning the func to invoke
// when it closes.
func buildStart(kind string) func(built bool) {
	if b, ok := buildObserver.Load().(buildObsBox); ok && b.o != nil {
		return b.o.BuildStart(kind)
	}
	return nopDone
}
