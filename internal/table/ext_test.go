package table

import (
	"reflect"
	"testing"
)

// extTable builds an encoding-backed clone of a regular table by
// stealing its published encodings, as the colstore reader does.
func extTable(t *testing.T, src *Table) *Table {
	t.Helper()
	encs := make([]*Encoding, src.NumCols())
	for c := range encs {
		e := src.Encoding(c)
		enc, err := EncodingFromParts(e.Dict, e.Codes, e.DictCounts, e.DictNull, e.hashes, e.hashCounts)
		if err != nil {
			t.Fatalf("EncodingFromParts: %v", err)
		}
		encs[c] = enc
	}
	ext, err := FromEncodings(src.Name, src.Cols, encs)
	if err != nil {
		t.Fatalf("FromEncodings: %v", err)
	}
	return ext
}

func TestFromEncodingsMatchesSource(t *testing.T) {
	src := FromRows("t.csv", []string{"id", "city", "n"}, [][]string{
		{"1", "Wien", "3"},
		{"2", "Graz", ""},
		{"3", "Wien", "5"},
		{"4", "", "3"},
	})
	ext := extTable(t, src)

	if !ext.Encoded() {
		t.Fatal("fresh FromEncodings table should report Encoded")
	}
	if got, want := ext.NumRows(), src.NumRows(); got != want {
		t.Fatalf("NumRows = %d, want %d", got, want)
	}
	if got, want := ext.NumCols(), src.NumCols(); got != want {
		t.Fatalf("NumCols = %d, want %d", got, want)
	}

	// Encoded-path reads must not materialize Data.
	for c := range src.Cols {
		se, ee := src.Profile(c), ext.Profile(c)
		if se.Type != ee.Type || se.Nulls != ee.Nulls || se.Distinct != ee.Distinct || se.NumRows != ee.NumRows {
			t.Fatalf("col %d profile mismatch: %+v vs %+v", c, se, ee)
		}
		if !reflect.DeepEqual(se.ValueHashes(), ee.ValueHashes()) {
			t.Fatalf("col %d value hashes differ", c)
		}
		sc, ss := src.CanonCodes(c)
		ec, es := ext.CanonCodes(c)
		if ss != es || !reflect.DeepEqual(sc, ec) {
			t.Fatalf("col %d canon codes differ", c)
		}
	}
	if ext.SchemaKey() != src.SchemaKey() {
		t.Fatalf("SchemaKey = %q, want %q", ext.SchemaKey(), src.SchemaKey())
	}
	if !ext.Encoded() {
		t.Fatal("encoded-path reads materialized Data")
	}

	// Row-level access materializes once and matches the source cells.
	if !reflect.DeepEqual(ext.Rows(), src.Rows()) {
		t.Fatalf("Rows mismatch after materialization")
	}
	if ext.Encoded() {
		t.Fatal("row access should clear the encoded state")
	}
	if got, want := ext.Value(1, 2), "Wien"; got != want {
		t.Fatalf("Value(1,2) = %q, want %q", got, want)
	}
}

func TestFromEncodingsMutationAfterMaterialize(t *testing.T) {
	src := FromRows("t.csv", []string{"a"}, [][]string{{"x"}, {"y"}})
	ext := extTable(t, src)
	ext.AppendRow([]string{"z"})
	if got, want := ext.NumRows(), 3; got != want {
		t.Fatalf("NumRows = %d, want %d", got, want)
	}
	if got, want := ext.Value(0, 2), "z"; got != want {
		t.Fatalf("Value = %q, want %q", got, want)
	}
	if got, want := ext.Profile(0).Distinct, 3; got != want {
		t.Fatalf("Distinct = %d, want %d", got, want)
	}
}

func TestEncodingFromPartsValidation(t *testing.T) {
	if _, err := EncodingFromParts([]string{"a"}, []uint32{0, 1}, []int32{2}, []bool{false}, []uint64{1}, []int32{2}); err == nil {
		t.Fatal("out-of-range code not rejected")
	}
	if _, err := EncodingFromParts([]string{"a", "b"}, []uint32{0}, []int32{1}, []bool{false}, nil, nil); err == nil {
		t.Fatal("dict/count length mismatch not rejected")
	}
	if _, err := FromEncodings("t", []string{"a", "b"}, make([]*Encoding, 1)); err == nil {
		t.Fatal("col/encoding count mismatch not rejected")
	}
}
