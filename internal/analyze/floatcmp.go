package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatcmpCheck guards the score and threshold arithmetic: uniqueness
// ratios, Jaccard similarities, and FD support values are accumulated
// floats, so exact ==/!= comparisons flip on rounding differences
// that are invisible in the printed tables. Sites compare through an
// epsilon helper (stats.ApproxEq) instead; the rare exact-sentinel
// comparison carries a //lint:allow(floatcmp) with its justification.
var floatcmpCheck = &Check{
	Name: "floatcmp",
	Doc:  "no ==/!= between float operands; compare scores and thresholds through an epsilon helper (stats.ApproxEq)",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	info := p.Pkg.Info
	inspectAll(p, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		xtv, ytv := info.Types[bin.X], info.Types[bin.Y]
		if xtv.Value != nil && ytv.Value != nil {
			return true // constant-folded at compile time
		}
		if isFloat(xtv.Type) && isFloat(ytv.Type) {
			p.Reportf(bin.Pos(), "%s between float operands: exact float comparison is fragile under accumulation-order changes; use an epsilon helper (stats.ApproxEq)", bin.Op)
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
