package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// orderedemitCheck catches the nondeterminism class the parallel
// refactor fixed by hand across the tree: Go randomizes map iteration
// order per run, so a `for range m` whose body emits into ordered
// output — appends to a slice, or writes a struct field such as a
// running "best" — produces a different ordering (or winner on ties)
// every execution unless the function canonicalizes afterwards. The
// check requires a sort.* / slices.Sort* call after the loop in the
// same function; the blessed alternative of sorting the keys first
// and ranging over the sorted slice never trips it, because that
// loop does not range over a map.
var orderedemitCheck = &Check{
	Name: "orderedemit",
	Doc:  "a map-range loop that appends to a slice or writes a result field must be followed by a canonical sort.*/slices.Sort* call in the same function",
	Run:  runOrderedEmit,
}

func runOrderedEmit(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		bodies := funcBodies(file)
		var sortCalls []token.Pos
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
				pkg, name := fn.Pkg().Path(), fn.Name()
				if pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort")) {
					sortCalls = append(sortCalls, call.Pos())
				}
			}
			return true
		})

		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if !emitsOrderedOutput(info, rs.Body) {
				return true
			}
			enc := enclosingFunc(bodies, rs.Pos())
			if enc == nil {
				return true
			}
			for _, sp := range sortCalls {
				if sp > rs.End() && enclosingFunc(bodies, sp) == enc {
					return true // canonicalized after the loop
				}
			}
			p.Reportf(rs.Pos(), "range over map emits into ordered output with no canonical sort afterwards in this function: map iteration order is randomized per run")
			return true
		})
	}
}

// emitsOrderedOutput reports whether the loop body produces
// order-sensitive output: an append call (slice element order follows
// iteration order) or an assignment through a field selector (last
// writer wins, so ties depend on iteration order). Writes keyed by
// the loop variable (m2[k] = v) and commutative accumulation into
// plain variables are order-independent and ignored.
func emitsOrderedOutput(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}
