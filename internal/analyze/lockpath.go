package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// lockpathCheck enforces lock discipline on the build-mutex slow paths
// and every other critical section: a function that takes a
// Lock/RLock must release it on every exit path — a defer registered
// before any exit, or an explicit unlock on each return edge (panic
// edges need the defer). A lock handed off to another function for
// unlocking is flagged at the acquisition site unless an allow comment
// names the unlock owner.
var lockpathCheck = &Check{
	Name: "lockpath",
	Doc:  "a Lock()/RLock() is released on every exit path of the acquiring function (defer, or unlock on each return/panic edge)",
	Run:  runLockpath,
}

// lockSite is one (key, read/write) lock the walk tracks through a
// function, anchored at its first acquisition.
type lockSite struct {
	key  string
	read bool
	pos  token.Pos
	line int
}

func runLockpath(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, fb := range funcBodies(file) {
			runLockpathFunc(p, fb.body)
		}
	}
}

func runLockpathFunc(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info

	// Collect the locks this function acquires, keyed so a RLock and a
	// Lock on the same mutex are tracked independently (they pair with
	// different unlocks).
	sites := map[string]*lockSite{}
	var order []string
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := mutexCall(info, call)
		if !ok || (method != "Lock" && method != "RLock") {
			return true
		}
		id := key + "\x00" + method
		if _, seen := sites[id]; !seen {
			sites[id] = &lockSite{
				key:  key,
				read: method == "RLock",
				pos:  call.Pos(),
				line: p.Pkg.Fset.Position(call.Pos()).Line,
			}
			order = append(order, id)
		}
		return true
	})
	sort.Strings(order) // deterministic walk order per function

	for _, id := range order {
		site := sites[id]
		lockName, unlockName := "Lock", "Unlock"
		if site.read {
			lockName, unlockName = "RLock", "RUnlock"
		}
		var leaks []string
		flowWalk(body, flowHooks{
			info: info,
			effect: func(call *ast.CallExpr) flowEffect {
				key, method, ok := mutexCall(info, call)
				if !ok || key != site.key {
					return flowNone
				}
				switch method {
				case lockName:
					return flowAcquire
				case unlockName:
					return flowRelease
				}
				return flowNone
			},
			onExit: func(pos token.Pos, kind string) {
				leaks = append(leaks, kindAtLine(p, pos, kind))
			},
		})
		if len(leaks) > 0 {
			p.Reportf(site.pos, "%s.%s() is not released on every exit path (%s); defer %s.%s() or unlock on each edge, or //lint:allow(lockpath) naming the unlock owner",
				site.key, lockName, leaks[0], site.key, unlockName)
		}
	}
}

// kindAtLine renders an exit edge for the finding message.
func kindAtLine(p *Pass, pos token.Pos, kind string) string {
	if kind == "end of function" {
		return kind
	}
	return fmt.Sprintf("%s at line %d", kind, p.Pkg.Fset.Position(pos).Line)
}
