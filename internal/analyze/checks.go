package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// Checks returns the full analyzer suite in registration order.
func Checks() []*Check {
	return []*Check{
		detrandCheck,
		orderedemitCheck,
		wraperrCheck,
		floatcmpCheck,
		ctxfirstCheck,
		rawdataCheck,
		atomicpubCheck,
		lockpathCheck,
		gorolifeCheck,
		ctxloopCheck,
	}
}

// CheckByName returns the named check, or nil.
func CheckByName(name string) *Check {
	for _, c := range Checks() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// studyPackages are the packages whose outputs feed the paper's
// tables directly. The determinism contract — byte-identical results
// for any worker count — binds these; cmd/ and the acquisition/report
// layers may read the wall clock for operator-facing timing.
var studyPackages = map[string]bool{
	"ogdp/internal/core":     true,
	"ogdp/internal/join":     true,
	"ogdp/internal/fd":       true,
	"ogdp/internal/keys":     true,
	"ogdp/internal/union":    true,
	"ogdp/internal/gen":      true,
	"ogdp/internal/profile":  true,
	"ogdp/internal/stats":    true,
	"ogdp/internal/classify": true,
	"ogdp/internal/minhash":  true,
	// obs records into the deterministic snapshot; all wall time it
	// handles must flow in through injected clocks, never time.Now.
	"ogdp/internal/obs": true,
}

// calleeFunc resolves a call expression to the package-level function
// or method it invokes, or nil for builtins, conversions, and
// function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// inspectAll walks every file of the pass's package.
func inspectAll(p *Pass, fn func(n ast.Node) bool) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, fn)
	}
}

// shortPath trims the module prefix off an import path for messages.
func shortPath(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
