package analyze

// flow.go is the lightweight intraprocedural control-flow walk shared
// by the concurrency checks (lockpath, atomicpub). It interprets one
// function body at a time over the typed AST — no SSA, no external
// packages — tracking whether an acquired resource (a mutex) is still
// held along each path, and surfacing every exit edge (return, panic,
// falling off the end) reached while the resource may be held without
// a registered deferred release.
//
// The walk is deliberately conservative: branches merge with
// may-be-held semantics, loop bodies are interpreted once, `goto`
// terminates a path without a verdict, and function literals are never
// inlined (each literal is walked as its own function). Intentional
// protocol violations — lock handoffs across functions, single-writer
// init paths — are expressed with //lint:allow and a justification,
// the same escape hatch the determinism checks use.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flowEffect classifies what a statement-level call does to the
// tracked resource.
type flowEffect int

const (
	flowNone flowEffect = iota
	// flowAcquire marks the resource held from here on.
	flowAcquire
	// flowRelease marks the resource released.
	flowRelease
)

// termKind classifies calls that end the current path.
type termKind int

const (
	termNone termKind = iota
	// termPanics unwinds the stack (panic, log.Panic*): a held lock
	// leaks to recovering frames unless a defer releases it.
	termPanics
	// termExits ends the process (os.Exit, log.Fatal*): held locks are
	// moot, so no exit edge is reported.
	termExits
)

// flowHooks parameterizes one walk of one function body.
type flowHooks struct {
	info *types.Info
	// effect classifies a statement-level call against the tracked
	// resource.
	effect func(*ast.CallExpr) flowEffect
	// onExit receives each exit edge (kind "return", "panic", or
	// "end of function") reachable while the resource may be held and
	// no deferred release has been registered.
	onExit func(pos token.Pos, kind string)
	// onCall, when non-nil, observes every statement-level call with
	// the held state in force when it runs.
	onCall func(call *ast.CallExpr, held bool)
}

// flowState is the abstract state at one program point.
type flowState struct {
	held     bool // the resource may be held
	deferred bool // a defer releasing the resource has been registered
	dead     bool // the point is unreachable (path already exited)
}

// flowMerge joins two branch states: a resource possibly held on
// either side counts as held, and a deferred release must be
// registered on both sides to cover the join.
func flowMerge(a, b flowState) flowState {
	if a.dead {
		return b
	}
	if b.dead {
		return a
	}
	return flowState{held: a.held || b.held, deferred: a.deferred && b.deferred}
}

// flowWalker carries the walk's hooks plus the stacks of enclosing
// break/continue targets, so a branch statement folds its state into
// the construct it jumps out of.
type flowWalker struct {
	hooks     flowHooks
	breaks    []*[]flowState // innermost-last breakable constructs
	continues []*[]flowState // innermost-last loops
}

// flowWalk interprets body under hooks. Nested function literals are
// not entered — walk them separately via funcBodies.
func flowWalk(body *ast.BlockStmt, hooks flowHooks) {
	w := &flowWalker{hooks: hooks}
	st := w.stmts(body.List, flowState{})
	if !st.dead && st.held && !st.deferred {
		w.exit(body.Rbrace, "end of function")
	}
}

func (w *flowWalker) stmts(list []ast.Stmt, st flowState) flowState {
	for _, s := range list {
		if st.dead {
			return st
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *flowWalker) stmt(s ast.Stmt, st flowState) flowState {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ExprStmt:
		return w.call(s.X, st)
	case *ast.DeferStmt:
		if w.releasesInDefer(s.Call) {
			st.deferred = true
		}
		return st
	case *ast.ReturnStmt:
		if st.held && !st.deferred {
			w.exit(s.Pos(), "return")
		}
		st.dead = true
		return st
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		a := w.stmt(s.Body, st)
		b := st
		if s.Else != nil {
			b = w.stmt(s.Else, st)
		}
		return flowMerge(a, b)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		var exits []flowState
		w.breaks = append(w.breaks, &exits)
		w.continues = append(w.continues, &exits)
		after := w.stmt(s.Body, st)
		w.breaks = w.breaks[:len(w.breaks)-1]
		w.continues = w.continues[:len(w.continues)-1]
		out := flowState{dead: true}
		if s.Cond != nil {
			// The condition can be false on entry: the loop may run
			// zero times.
			out = flowMerge(out, st)
			out = flowMerge(out, after)
		}
		// for {} without a break never falls through; with breaks, the
		// recorded branch states are the only way out.
		for _, e := range exits {
			out = flowMerge(out, e)
		}
		return out
	case *ast.RangeStmt:
		var exits []flowState
		w.breaks = append(w.breaks, &exits)
		w.continues = append(w.continues, &exits)
		after := w.stmt(s.Body, st)
		w.breaks = w.breaks[:len(w.breaks)-1]
		w.continues = w.continues[:len(w.continues)-1]
		out := flowMerge(st, after) // zero iterations possible
		for _, e := range exits {
			out = flowMerge(out, e)
		}
		return out
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		return w.clauses(s.Body, st, switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		return w.clauses(s.Body, st, switchHasDefault(s.Body))
	case *ast.SelectStmt:
		if len(s.Body.List) == 0 {
			// select {} blocks forever.
			st.dead = true
			return st
		}
		// A select always runs exactly one of its cases (a default
		// counts), so the entry state does not fall through on its own.
		return w.clauses(s.Body, st, true)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			w.recordBranch(w.breaks, s.Label, st)
		case token.CONTINUE:
			w.recordBranch(w.continues, s.Label, st)
		}
		// goto and fallthrough: end this path without a verdict
		// (fallthrough's target case is analyzed from the switch entry
		// state anyway).
		st.dead = true
		return st
	default:
		// Assignments, declarations, sends, go statements: no
		// statement-level effect on the tracked resource (Lock/Store
		// return nothing, so they cannot hide in subexpressions, and
		// goroutine bodies are separate functions).
		return st
	}
}

// clauses merges the outcomes of a switch/select body's case clauses.
// When exhaustive is false (a switch without default), the entry state
// itself can fall through untouched.
func (w *flowWalker) clauses(body *ast.BlockStmt, st flowState, exhaustive bool) flowState {
	var exits []flowState
	w.breaks = append(w.breaks, &exits)
	out := flowState{dead: true}
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = flowMerge(out, w.stmts(c.Body, st))
		case *ast.CommClause:
			cs := st
			if c.Comm != nil {
				cs = w.stmt(c.Comm, cs)
			}
			out = flowMerge(out, w.stmts(c.Body, cs))
		}
	}
	w.breaks = w.breaks[:len(w.breaks)-1]
	for _, e := range exits {
		out = flowMerge(out, e)
	}
	if !exhaustive {
		out = flowMerge(out, st)
	}
	return out
}

// recordBranch folds st into the jump's target construct. Unlabeled
// branches go to the innermost target; labeled ones are folded into
// every enclosing target, which can only make the result more
// conservative.
func (w *flowWalker) recordBranch(targets []*[]flowState, label *ast.Ident, st flowState) {
	if len(targets) == 0 {
		return
	}
	if label == nil {
		t := targets[len(targets)-1]
		*t = append(*t, st)
		return
	}
	for _, t := range targets {
		*t = append(*t, st)
	}
}

// exit reports an exit edge to the onExit hook, if one is installed.
func (w *flowWalker) exit(pos token.Pos, kind string) {
	if w.hooks.onExit != nil {
		w.hooks.onExit(pos, kind)
	}
}

// call interprets one statement-level expression.
func (w *flowWalker) call(x ast.Expr, st flowState) flowState {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return st
	}
	if w.hooks.onCall != nil {
		w.hooks.onCall(call, st.held)
	}
	if w.hooks.effect != nil {
		switch w.hooks.effect(call) {
		case flowAcquire:
			st.held = true
		case flowRelease:
			st.held = false
		}
	}
	switch terminalKind(w.hooks.info, call) {
	case termPanics:
		if st.held && !st.deferred {
			w.exit(call.Pos(), "panic")
		}
		st.dead = true
	case termExits:
		st.dead = true
	}
	return st
}

// releasesInDefer reports whether a deferred call releases the tracked
// resource, either directly (defer mu.Unlock()) or inside a deferred
// function literal.
func (w *flowWalker) releasesInDefer(call *ast.CallExpr) bool {
	if w.hooks.effect == nil {
		return false
	}
	if w.hooks.effect(call) == flowRelease {
		return true
	}
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && w.hooks.effect(c) == flowRelease {
			found = true
		}
		return !found
	})
	return found
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// terminalKind classifies calls that end the current path: the panic
// builtin and log.Panic* unwind, os.Exit and log.Fatal* end the
// process. runtime.Goexit runs defers on its way out, so it counts as
// a return edge for lock purposes — but nothing in this module uses
// it, and treating it as non-terminal only makes the walk more
// conservative.
func terminalKind(info *types.Info, call *ast.CallExpr) termKind {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return termPanics
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return termNone
	}
	switch fn.Pkg().Path() {
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln":
			return termExits
		case "Panic", "Panicf", "Panicln":
			return termPanics
		}
	case "os":
		if fn.Name() == "Exit" {
			return termExits
		}
	}
	return termNone
}

// inspectShallow walks root without descending into nested function
// literals, so a per-function analysis never sees another function's
// statements. root itself may be (inside) a literal.
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return fn(n)
	})
}

// mutexCall resolves call to a sync.Mutex / sync.RWMutex method
// invocation (possibly through embedding), returning the rendered
// receiver expression as the lock key ("s.mu") and the method name
// ("Lock", "Unlock", "RLock", "RUnlock", "TryLock", ...).
func mutexCall(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	if !isSyncType(sig.Recv().Type(), "Mutex") && !isSyncType(sig.Recv().Type(), "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// atomicPointerCall reports whether call invokes the named method
// (e.g. "Load", "Store") on a sync/atomic.Pointer[T] receiver.
func atomicPointerCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isPkgType(sig.Recv().Type(), "sync/atomic", "Pointer")
}

// waitGroupCall resolves call to a sync.WaitGroup method invocation,
// returning the rendered receiver expression and method name.
func waitGroupCall(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	if !isSyncType(sig.Recv().Type(), "WaitGroup") {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// isSyncType reports whether t (possibly a pointer) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	return isPkgType(t, "sync", name)
}

// isPkgType reports whether t (possibly behind one pointer) is the
// named type pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
