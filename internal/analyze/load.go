// Package analyze is the repo's determinism-aware static-analysis
// framework: a stdlib-only package loader (go/parser + go/types, no
// external dependencies), a Finding/Check/Pass model, and
// //lint:allow(<check>) suppression comments. cmd/ogdplint is the
// driver; the checks encode the invariants the deterministic parallel
// execution layer and the fault-tolerant fetch pipeline rely on.
package analyze

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked, non-test package of the module
// under analysis.
type Package struct {
	// Path is the import path ("ogdp/internal/join").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Fset is the loader's shared FileSet; all positions in Files
	// and Info resolve against it.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name,
	// with comments attached.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker results for Files.
	Info *types.Info
}

// Program is a set of loaded packages sharing one FileSet.
type Program struct {
	Fset *token.FileSet
	// Pkgs is sorted by import path.
	Pkgs []*Package
}

// Loader parses and type-checks packages. It is stdlib-only: module
// packages are parsed and checked directly, and every other import
// (the standard library) is type-checked from source via
// go/importer's "source" compiler. One Loader caches the stdlib
// type-checks, so loading several fixtures through the same Loader
// only pays for each stdlib package once.
//
// The loader skips _test.go files: the invariants the checks encode
// are about study outputs, and test files routinely use wall-clock
// timeouts and ad-hoc randomness on purpose.
type Loader struct {
	fset  *token.FileSet
	std   types.ImporterFrom
	mod   map[string]*types.Package // checked module packages by import path
	progs map[string]*Program       // memoized Load results by absolute root
	dirs  map[string]*Package       // memoized LoadDir results by dir + import path
}

// NewLoader returns a Loader with an empty cache. It disables cgo in
// go/build's default context so the source importer always selects
// the pure-Go fallback files of packages like net and os/user.
func NewLoader() *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		mod:   map[string]*types.Package{},
		progs: map[string]*Program{},
		dirs:  map[string]*Package{},
	}
}

// Load walks the module rooted at root (the directory holding go.mod),
// parses every non-test package outside testdata/ and hidden
// directories, and type-checks them in dependency order. The returned
// Program lists packages sorted by import path.
//
// Results are memoized per absolute root: every check, golden test,
// and self-check sharing one Loader shares one type-checked module
// instead of re-parsing it per caller.
func (l *Loader) Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if prog, ok := l.progs[root]; ok {
		return prog, nil
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	parsed := map[string]*Package{} // by import path
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.parseDir(dir, path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		parsed[path] = pkg
	}

	order, err := topoOrder(parsed, modPath)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.fset}
	for _, path := range order {
		pkg := parsed[path]
		if err := l.check(pkg, modPath); err != nil {
			return nil, err
		}
		l.mod[path] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	l.progs[root] = prog
	return prog, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path, without walking a module. It is the fixture
// entry point: testdata packages get whatever import path the test
// assigns (a study-package path makes path-scoped checks apply).
// Imports must resolve from the standard library or from module
// packages already loaded through this Loader. Results are memoized
// per (dir, import path) pair.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	key := dir + "\x00" + importPath
	if pkg, ok := l.dirs[key]; ok {
		return pkg, nil
	}
	pkg, err := l.parseDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analyze: no Go files in %s", dir)
	}
	if err := l.check(pkg, importPath); err != nil {
		return nil, err
	}
	l.dirs[key] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of dir, or returns nil if it
// has none. Files excluded by build constraints for the current
// platform (//go:build lines, GOOS/GOARCH name suffixes) are skipped,
// so platform-variant pairs like colstore's mmap files type-check as
// one coherent package instead of colliding.
func (l *Loader) parseDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files}, nil
}

// check type-checks pkg, resolving module-internal imports from the
// loader's cache and everything else from stdlib source.
func (l *Loader) check(pkg *Package, modPath string) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: &moduleImporter{l: l, modPrefix: modulePrefix(modPath)}}
	tpkg, err := conf.Check(pkg.Path, l.fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analyze: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// modulePrefix returns the prefix that identifies module-internal
// import paths ("ogdp/").
func modulePrefix(modPath string) string {
	return modPath + "/"
}

// moduleImporter resolves module-internal imports from the loader's
// cache of already-checked packages and delegates the rest to the
// stdlib source importer.
type moduleImporter struct {
	l         *Loader
	modPrefix string
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := im.l.mod[path]; ok {
		return p, nil
	}
	if strings.HasPrefix(path, im.modPrefix) {
		return nil, fmt.Errorf("module package %s not loaded yet (import cycle or load order bug)", path)
	}
	return im.l.std.ImportFrom(path, dir, mode)
}

// packageDirs lists the directories under root that may hold Go
// packages, skipping hidden directories, testdata, and vendor trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// topoOrder sorts import paths so every module-internal dependency
// precedes its importers. Ties break alphabetically, keeping load
// order deterministic.
func topoOrder(pkgs map[string]*Package, modPath string) ([]string, error) {
	prefix := modulePrefix(modPath)
	deps := map[string][]string{}
	var paths []string
	for path, pkg := range pkgs {
		paths = append(paths, path)
		seen := map[string]bool{}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				target, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if (target == modPath || strings.HasPrefix(target, prefix)) && !seen[target] {
					seen[target] = true
					deps[path] = append(deps[path], target)
				}
			}
		}
		sort.Strings(deps[path])
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analyze: import cycle through %s", path)
		}
		state[path] = visiting
		for _, dep := range deps[path] {
			if _, ok := pkgs[dep]; !ok {
				return fmt.Errorf("analyze: %s imports %s, which has no source directory in the module", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analyze: no module directive in %s", gomod)
}
