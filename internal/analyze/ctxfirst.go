package analyze

import (
	"go/ast"
	"go/types"
)

// ctxfirstCheck pins the ckan client's calling convention: a function
// that takes a context.Context takes it as the first parameter, the
// way the fetch pipeline and internal/parallel entry points already
// do, so deadlines thread uniformly through new call layers.
var ctxfirstCheck = &Check{
	Name: "ctxfirst",
	Doc:  "functions taking a context.Context take it as the first parameter",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	info := p.Pkg.Info
	inspectAll(p, func(n ast.Node) bool {
		var ft *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			return true
		}
		if ft.Params == nil {
			return true
		}
		idx := 0
		for _, field := range ft.Params.List {
			names := len(field.Names)
			if names == 0 {
				names = 1 // unnamed parameter
			}
			if isContextType(info.TypeOf(field.Type)) && idx > 0 {
				p.Reportf(field.Pos(), "context.Context is parameter %d; it must come first (ckan client convention)", idx+1)
				return true
			}
			idx += names
		}
		return true
	})
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
