package analyze

import (
	"go/ast"
	"go/types"
)

// gorolifeCheck enforces the goroutine-lifecycle contract: study and
// serving code does not spawn raw goroutines. Concurrency flows
// through the internal/parallel pool (deterministic fan-out, joined
// fan-in) or the cli.HTTPServer lifecycle (listener goroutine owned by
// StartHTTP/Shutdown); those two packages are the only sanctioned `go`
// sites. Everywhere else a goroutine must be provably joined in the
// spawning function — a `go func(){ ... wg.Done() ... }()` literal
// whose WaitGroup is Wait()ed in the same function — or carry
// //lint:allow(gorolife) naming its shutdown owner.
var gorolifeCheck = &Check{
	Name: "gorolife",
	Doc:  "no raw go statements outside internal/parallel and the cli.HTTPServer lifecycle; goroutines are pool-run, WaitGroup-joined in-function, or allow-listed with a shutdown owner",
	Run:  runGorolife,
}

// goroutineOwnerPackages may use raw go statements: they own the two
// sanctioned goroutine lifecycles (pool workers; HTTP listeners).
var goroutineOwnerPackages = map[string]bool{
	"ogdp/internal/parallel": true,
	"ogdp/cmd/internal/cli":  true,
}

func runGorolife(p *Pass) {
	if goroutineOwnerPackages[p.Pkg.Path] {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, fb := range funcBodies(file) {
			runGorolifeFunc(p, fb.body)
		}
	}
}

func runGorolifeFunc(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info

	// WaitGroups this function joins: wg.Wait() at this function's
	// level makes a `go func(){ defer wg.Done() }()` here accountable.
	waited := map[string]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, method, ok := waitGroupCall(info, call); ok && method == "Wait" {
				waited[key] = true
			}
		}
		return true
	})

	inspectShallow(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goStmtJoined(info, g, waited) {
			return true
		}
		p.Reportf(g.Pos(), "raw go statement: run it on the internal/parallel pool, join it with a WaitGroup in this function, or add //lint:allow(gorolife) naming the shutdown owner")
		return true
	})
}

// goStmtJoined reports whether the spawned goroutine is a function
// literal that signals a WaitGroup the spawning function waits on.
func goStmtJoined(info *types.Info, g *ast.GoStmt, waited map[string]bool) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, method, ok := waitGroupCall(info, call); ok && method == "Done" && waited[key] {
				joined = true
			}
		}
		return !joined
	})
	return joined
}
