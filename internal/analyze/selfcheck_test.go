package analyze

import (
	"path/filepath"
	"testing"
)

// TestSelfCheckRepoClean loads the repo's own source and runs the
// full suite over it, so a regression against any encoded invariant
// fails `go test ./...` even when CI isn't in the loop. The tree must
// stay at zero unsuppressed findings — fix the site or add a
// justified //lint:allow, exactly as cmd/ogdplint would demand.
func TestSelfCheckRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := testLoader().Load(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	// A sanity floor: if the walk or the type-checker silently loses
	// packages, zero findings would be vacuous.
	if len(prog.Pkgs) < 25 {
		t.Fatalf("loaded only %d packages from %s; loader lost part of the module", len(prog.Pkgs), root)
	}
	for _, f := range Run(prog.Pkgs, Checks()) {
		t.Errorf("%s", f.RelativeTo(root))
	}
}
