package analyze

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// wraperrCheck keeps error classification working: the fetch
// pipeline's transient-vs-permanent split runs on errors.Is, which
// only sees through chains built with %w. An fmt.Errorf that formats
// an error operand with %v or %s flattens it to text and silently
// breaks every errors.Is/errors.As downstream.
var wraperrCheck = &Check{
	Name: "wraperr",
	Doc:  "fmt.Errorf with an error-typed operand must wrap it with %w so errors.Is/As classification keeps working",
	Run:  runWrapErr,
}

func runWrapErr(p *Pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	info := p.Pkg.Info
	inspectAll(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPkgFunc(calleeFunc(info, call), "fmt", "Errorf") || len(call.Args) < 2 {
			return true
		}
		tv, ok := info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true // dynamic format string; out of scope
		}
		format := constant.StringVal(tv.Value)
		wraps := strings.Count(strings.ReplaceAll(format, "%%", ""), "%w")
		errOperands := 0
		for _, arg := range call.Args[1:] {
			if t := info.TypeOf(arg); t != nil && types.Implements(t, errIface) {
				errOperands++
			}
		}
		if errOperands > wraps {
			p.Reportf(call.Pos(), "fmt.Errorf formats an error operand without %%w: the cause is flattened to text and errors.Is/As classification breaks")
		}
		return true
	})
}
