package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicpubCheck enforces the table layer's publication protocol on
// every atomic.Pointer in the module (ARCHITECTURE.md, "The
// publication memory model"):
//
//  1. Published values are immutable: no field or element write whose
//     receiver chain passes through a Load() call (directly or via a
//     local alias of a Load result).
//  2. Publication is guarded: a Store() must run either while a build
//     mutex is held in the same function, or into a still-private
//     value (a local built from a composite literal that no reader can
//     have seen yet).
//
// Deliberate single-writer paths carry //lint:allow(atomicpub) with a
// justification naming why no reader can race the write.
var atomicpubCheck = &Check{
	Name: "atomicpub",
	Doc:  "atomic.Pointer values are published under the owning build mutex (or into still-private state) and never written through after a Load",
	Run:  runAtomicpub,
}

func runAtomicpub(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, fb := range funcBodies(file) {
			runAtomicpubFunc(p, fb.body)
		}
	}
}

func runAtomicpubFunc(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info

	// Locals bound to Load results: `p := x.Load()` makes every write
	// rooted at p a write-through-Load.
	loadVars := map[types.Object]bool{}
	// Locals born private: `s := &tableState{...}` may be stored into
	// freely until it is published.
	freshVars := map[types.Object]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue
			}
			if chainHasLoad(info, as.Rhs[i], loadVars) {
				loadVars[obj] = true
			}
			if isCompositeBirth(as.Rhs[i]) {
				freshVars[obj] = true
			}
		}
		return true
	})

	// Rule 1: writes through a Load.
	inspectShallow(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				reportWriteThroughLoad(p, info, lhs, loadVars)
			}
		case *ast.IncDecStmt:
			reportWriteThroughLoad(p, info, s.X, loadVars)
		}
		return true
	})

	// Rule 2: Stores outside the build mutex. The flow walk supplies
	// the held state: any write-mutex Lock in this function guards the
	// Stores that follow it.
	flowWalk(body, flowHooks{
		info: info,
		effect: func(call *ast.CallExpr) flowEffect {
			_, method, ok := mutexCall(info, call)
			if !ok {
				return flowNone
			}
			switch method {
			case "Lock":
				return flowAcquire
			case "Unlock":
				return flowRelease
			}
			return flowNone
		},
		onCall: func(call *ast.CallExpr, held bool) {
			if held || !atomicPointerCall(info, call, "Store") {
				return
			}
			if root := chainRoot(call); root != nil && freshVars[info.ObjectOf(root)] {
				return
			}
			p.Reportf(call.Pos(), "atomic.Pointer Store outside the owning build mutex: publish under the build lock or into a still-private value (publication protocol, ARCHITECTURE.md)")
		},
	})
}

// reportWriteThroughLoad flags lhs when its receiver chain passes
// through an atomic.Pointer Load.
func reportWriteThroughLoad(p *Pass, info *types.Info, lhs ast.Expr, loadVars map[types.Object]bool) {
	// The written expression itself (an identifier being reassigned)
	// is fine; only writes *through* a loaded pointer mutate published
	// state, so the chain must be a selector/index path.
	if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return
	}
	if chainHasLoad(info, lhs, loadVars) {
		p.Reportf(lhs.Pos(), "write through an atomic.Pointer Load: published values are immutable — build a fresh value and Store it (publication protocol, ARCHITECTURE.md)")
	}
}

// chainHasLoad walks a selector/index/deref chain toward its root and
// reports whether it passes through an atomic.Pointer Load call or a
// local alias of one.
func chainHasLoad(info *types.Info, expr ast.Expr, loadVars map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.CallExpr:
			return atomicPointerCall(info, x, "Load")
		case *ast.Ident:
			return loadVars[info.ObjectOf(x)]
		default:
			return false
		}
	}
}

// chainRoot returns the root identifier of a method call's receiver
// chain (`ps` for ps.cols[i].enc.Store(v)), or nil when the chain
// roots in a call or other non-identifier.
func chainRoot(call *ast.CallExpr) *ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	expr := sel.X
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// isCompositeBirth reports whether rhs constructs a brand-new value: a
// composite literal or its address. Such a value is private to the
// function until it is itself published.
func isCompositeBirth(rhs ast.Expr) bool {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		return ok && x.Op.String() == "&"
	}
	return false
}
