// Package analyze implements the project's static analyzers — the
// checks behind cmd/ogdplint. They mechanize the two contracts the
// study code must keep for the paper's measurements to be
// reproducible: determinism (byte-identical output for a given
// corpus and seed, regardless of worker count — detrand, orderedemit,
// floatcmp, rawdata) and concurrency hygiene for the code that fans
// out to get there (gorolife, lockpath, atomicpub, ctxfirst,
// ctxloop, wraperr).
//
// The determinism checks exist because the paper's numbers are
// claims about datasets, not about a particular run: a map-order
// leak or a wall-clock read inside a study package would make the
// §3–§6 measurements unrepeatable. Checks operate on type-checked
// ASTs loaded by Loader; findings can be suppressed one at a time
// with //lint:allow comments, and RunDetailed keeps the suppressed
// findings with the position of the absorbing comment so the CI
// ledger can diff suppressions across PRs.
package analyze
