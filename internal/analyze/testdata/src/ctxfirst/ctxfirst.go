// Package ctxfirst exercises the ctxfirst check: context.Context is
// always the first parameter, per the ckan client convention.
package ctxfirst

import "context"

func ok(ctx context.Context, id int) error { return ctx.Err() }

func bad(id int, ctx context.Context) error { return ctx.Err() } // finding

type client struct{}

// ok: the receiver does not count as a parameter.
func (c *client) fetch(ctx context.Context, q string) error { return ctx.Err() }

func litBad() func(int, context.Context) error {
	return func(id int, ctx context.Context) error { // finding: literal too
		return ctx.Err()
	}
}

func noCtx(a, b int) int { return a + b } // ok

//lint:allow(ctxfirst) mirrors a third-party callback signature
func suppressed(id int, ctx context.Context) error { return ctx.Err() }
