// Package floatcmp exercises the floatcmp check: no exact ==/!=
// between float operands in score and threshold code.
package floatcmp

import "math"

const eps = 1e-9

type score float64

func exact(a, b float64) bool {
	return a == b // finding
}

func exactNeq(a, b float32) bool {
	return a != b // finding
}

func namedFloat(a, b score) bool {
	return a != b // finding: underlying type is float64
}

func viaEpsilon(a, b float64) bool {
	return math.Abs(a-b) <= eps // ok: epsilon comparison
}

func ordered(a, b float64) bool {
	return a < b // ok: ordering comparisons are allowed
}

func ints(a, b int) bool {
	return a == b // ok: not floats
}

func constFolded() bool {
	return 1.5 == 3.0/2.0 // ok: folded at compile time
}

func suppressed(a float64) bool {
	return a == 0 //lint:allow(floatcmp) exact zero is the documented unset sentinel
}
