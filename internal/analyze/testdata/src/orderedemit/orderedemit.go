// Package orderedemit exercises the orderedemit check: map-range
// loops that emit into ordered output must canonicalize afterwards.
package orderedemit

import "sort"

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // finding: appended order is the map's random order
		out = append(out, k)
	}
	return out
}

func sortedAfter(m map[string]int) []string {
	var out []string
	for k := range m { // ok: canonical sort follows in this function
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type winner struct {
	Name  string
	Score int
}

func badField(m map[string]int) winner {
	var w winner
	for k, v := range m { // finding: ties depend on iteration order
		if v > w.Score {
			w.Score = v
			w.Name = k
		}
	}
	return w
}

func countOnly(m map[string]int) int {
	n := 0
	for range m { // ok: commutative accumulation into a local
		n++
	}
	return n
}

func keyedWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // ok: writes keyed by the loop variable
		out[k] = v * 2
	}
	return out
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m { //lint:allow(orderedemit) consumed as a set downstream
		out = append(out, k)
	}
	return out
}
