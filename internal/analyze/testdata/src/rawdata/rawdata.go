// Package rawdata exercises the rawdata check: Table.Data, the raw
// cell store behind the dictionary-encoded columns, may be touched
// only inside the storage layer (internal/table, internal/csvio).
package rawdata

// Table mirrors the storage layout of ogdp/internal/table.Table. The
// check matches the shape — a named Table carrying Data [][]string —
// so the fixture stays self-contained.
type Table struct {
	Cols []string
	Data [][]string
}

type meta struct {
	Table *Table
}

func read(t *Table) string {
	return t.Data[0][0] // finding: raw cell read
}

func iterate(t *Table) int {
	n := 0
	for _, col := range t.Data { // finding: raw column walk
		n += len(col)
	}
	return n
}

func write(t *Table, rows [][]string) {
	t.Data = rows // finding: writes bypass the encoding cache
}

func chained(m meta) int {
	return len(m.Table.Data) // finding: chained selector still raw access
}

func cols(t *Table) []string {
	return t.Cols // ok: schema, not raw cells
}

type report struct {
	Data []byte
}

func otherData(r report) []byte {
	return r.Data // ok: Data field on a non-Table type
}

type logTable struct {
	Data []string
}

func otherShape(t logTable) []string {
	return t.Data // ok: not the [][]string cell store
}

func allowed(t *Table) int {
	return len(t.Data) //lint:allow(rawdata) capacity probe documented in the storage notes
}
