// Package atomicpub exercises the publication-protocol check: a Store
// into an atomic.Pointer runs under the owning build mutex (or into a
// still-private value), and nothing writes through a Load.
package atomicpub

import (
	"sync"
	"sync/atomic"
)

type payload struct {
	n    int
	tags []string
}

type box struct {
	mu  sync.Mutex
	ptr atomic.Pointer[payload]
}

// ok: the canonical slow path — Lock, double-check, build, Store,
// Unlock.
func (b *box) publish(n int) *payload {
	if p := b.ptr.Load(); p != nil {
		return p
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if p := b.ptr.Load(); p != nil {
		return p
	}
	p := &payload{n: n}
	b.ptr.Store(p)
	return p
}

// bad: publication with no lock held and no fresh receiver.
func (b *box) racyPublish(p *payload) {
	b.ptr.Store(p) // finding
}

// ok: Store into a still-private value — the box was built in this
// function and no reader can have seen it yet.
func newBox(n int) *box {
	b := &box{}
	b.ptr.Store(&payload{n: n})
	return b
}

// bad: writes through a Load mutate published state, directly or via
// a local alias of the Load result.
func (b *box) mutateLoaded() {
	b.ptr.Load().n = 1 // finding
	p := b.ptr.Load()
	p.n = 2         // finding
	p.tags[0] = "x" // finding
}

// ok: reading through a Load is the fast path working as designed.
func (b *box) read() int {
	return b.ptr.Load().n
}

//lint:allow(atomicpub) init-time single writer: seed runs before any reader goroutine starts
func (b *box) seed(p *payload) {
	b.ptr.Store(p)
}
