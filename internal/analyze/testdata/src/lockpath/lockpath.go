// Package lockpath exercises the lock-discipline check: every
// Lock/RLock is released on every exit path of the acquiring
// function.
package lockpath

import "sync"

type store struct {
	mu   sync.RWMutex
	vals map[string]int
}

// ok: defer covers every edge, including panics.
func (s *store) get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.vals[k]
}

// ok: explicit unlock on each return edge.
func (s *store) put(k string, v int) bool {
	s.mu.Lock()
	if s.vals == nil {
		s.mu.Unlock()
		return false
	}
	s.vals[k] = v
	s.mu.Unlock()
	return true
}

// bad: the early return leaks the write lock.
func (s *store) leakyPut(k string, v int) bool {
	s.mu.Lock() // finding
	if s.vals == nil {
		return false
	}
	s.vals[k] = v
	s.mu.Unlock()
	return true
}

// bad: the panic edge escapes with the read lock held; only a defer
// covers unwinding.
func (s *store) mustGet(k string) int {
	s.mu.RLock() // finding
	v, ok := s.vals[k]
	if !ok {
		panic("missing " + k)
	}
	s.mu.RUnlock()
	return v
}

// bad: falls off the end still holding the lock — a cross-function
// handoff needs an allow naming the unlock owner.
func (s *store) lockForBatch() {
	s.mu.Lock() // finding
}

// ok: balanced within each loop iteration.
func (s *store) sweep(keys []string) {
	for _, k := range keys {
		s.mu.Lock()
		delete(s.vals, k)
		s.mu.Unlock()
	}
}

//lint:allow(lockpath) handoff: endBatch is the unlock owner; callers pair the two
func (s *store) beginBatch() {
	s.mu.Lock()
}

func (s *store) endBatch() {
	s.mu.Unlock()
}
