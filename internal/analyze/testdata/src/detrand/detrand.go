// Package detrand exercises the detrand check. The golden test loads
// it under the study-package import path ogdp/internal/gen, where the
// reproducibility contract applies.
package detrand

import (
	"math/rand"
	"time"
)

// seeded is the blessed pattern: an explicit per-unit stream.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: seeded constructor
	return r.Intn(10)                   // ok: method on the local stream
}

func wallClock() int64 {
	t := time.Now()    // finding: wall-clock read
	d := time.Since(t) // finding: time.Now through a thinner straw
	return d.Nanoseconds()
}

func globalRand() int {
	return rand.Intn(10) // finding: global math/rand source
}

func suppressedLine() time.Time {
	return time.Now() //lint:allow(detrand) boot stamp, never feeds study results
}

//lint:allow(detrand) timing-only scaffolding, not study output
func suppressedFunc() time.Duration {
	start := time.Now()
	return time.Since(start)
}
