// Package gorolife exercises the goroutine-lifecycle check: no raw go
// statements unless the goroutine is WaitGroup-joined in the spawning
// function or an allow comment names its shutdown owner.
package gorolife

import "sync"

// ok: joined in-function — the literal signals a WaitGroup this
// function waits on.
func fanOut(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j()
		}()
	}
	wg.Wait()
}

// bad: fire-and-forget.
func fireAndForget(f func()) {
	go f() // finding
}

// bad: the WaitGroup is signaled but never waited on here, so nothing
// in this function accounts for the goroutine's lifetime.
func halfJoined(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // finding
		defer wg.Done()
		f()
	}()
}

// bad: raw named-function goroutine.
func spawnWorker() {
	go worker() // finding
}

func worker() {}

//lint:allow(gorolife) shutdown owner: Shutdown closes done, which ends this goroutine
func allowed(done chan struct{}) {
	go func() {
		<-done
	}()
}
