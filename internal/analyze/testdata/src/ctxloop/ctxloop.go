// Package ctxloop exercises the serving-loop cancellation check: a
// for+select loop in serving/fetch code observes shutdown through a
// ctx.Done() or equivalent close-signal case. The test loads it under
// a cmd/ import path so the path-scoped check applies.
package ctxloop

import (
	"context"
	"os"
	"time"
)

// ok: ctx.Done() case.
func pollCtx(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case w := <-work:
			_ = w
		}
	}
}

// ok: a close-signal channel (chan struct{}) is equivalent.
func pollStop(stop chan struct{}, tick *time.Ticker) {
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
	}
}

// ok: a signal.Notify channel is a shutdown source.
func waitSignals(sigs chan os.Signal, work chan int) {
	for {
		select {
		case <-sigs:
			return
		case <-work:
		}
	}
}

// bad: a ticker-only loop never exits on shutdown.
func tickerOnly(tick *time.Ticker, out chan<- int) {
	for { // finding
		select {
		case <-tick.C:
			out <- 1
		}
	}
}

// bad: a data-only pump; default is polling, not cancellation.
func pump(in <-chan int, out chan<- int) {
	for { // finding
		select {
		case v := <-in:
			out <- v
		default:
		}
	}
}

// ok: loops without a select are out of scope.
func busy(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

//lint:allow(ctxloop) exit owner: the caller closes lines on stdin EOF, ending the loop
func repl(lines chan string) {
	for {
		select {
		case l := <-lines:
			_ = l
		}
	}
}
