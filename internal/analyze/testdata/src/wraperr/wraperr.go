// Package wraperr exercises the wraperr check: fmt.Errorf must wrap
// error operands with %w so errors.Is/As keep seeing through.
package wraperr

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func flattened(err error) error {
	return fmt.Errorf("fetch: %v", err) // finding: cause flattened to text
}

func wrapped(err error) error {
	return fmt.Errorf("fetch: %w", err) // ok
}

func noErrorOperand(status int) error {
	return fmt.Errorf("status %d", status) // ok: no error operand
}

func twoErrorsOneWrap(a, b error) error {
	return fmt.Errorf("%w after %v", a, b) // finding: second error unwrapped
}

func percentLiteral(err error) error {
	return fmt.Errorf("100%% failed: %w", err) // ok: %% is not a verb
}

func suppressed() error {
	return fmt.Errorf("log: %v", errBase) //lint:allow(wraperr) display string, never classified
}
