// Package suppress exercises the //lint:allow machinery itself: line
// scope, function scope, check selectivity, comma lists, and the
// unknown-name diagnostic. The golden test runs the full suite here.
package suppress

import (
	"fmt"
	"sync"
)

// Line-level selectivity: this line carries a floatcmp finding and a
// wraperr finding; the allow names only floatcmp, so wraperr survives
// into the golden file.
func lineSelective(a, b float64, err error) error {
	return errIf(a == b, fmt.Errorf("equal: %v", err)) //lint:allow(floatcmp) exact compare intended; the missing %w must still be reported
}

func errIf(ok bool, err error) error {
	if ok {
		return err
	}
	return nil
}

// Function-level scope via the doc comment: every floatcmp finding in
// the body is silenced, but the wraperr finding is a different check
// and survives.
//
//lint:allow(floatcmp) scratch helper, exact comparisons intended throughout
func funcScoped(a, b float64, err error) error {
	if a == b {
		return fmt.Errorf("eq: %v", err) // wraperr still reported
	}
	if a != b {
		return nil
	}
	return nil
}

// Comma lists silence several checks from one comment.
func commaList(a, b float64, err error) error {
	return errIf(a != b, fmt.Errorf("ne: %v", err)) //lint:allow(floatcmp, wraperr) both intended here
}

// A function-level allow does not leak into the next function.
func afterScoped(a, b float64) bool {
	return a == b // finding: previous function's allow ended with it
}

var _ = fmt.Sprint("x") //lint:allow(nosuchcheck) typo'd name is itself reported

// New-check selectivity: the allow names only lockpath, so the
// cross-function lock handoff is sanctioned while the raw go
// statement on the next line keeps its gorolife finding.
var handMu sync.Mutex

//lint:allow(lockpath) handoff: unlockHandoff is the unlock owner; callers pair the two
func lockHandoff(ready chan struct{}) {
	handMu.Lock()
	go notify(ready) // finding: gorolife survives the lockpath-only allow
}

func unlockHandoff() {
	handMu.Unlock()
}

func notify(ready chan struct{}) {
	ready <- struct{}{}
}
