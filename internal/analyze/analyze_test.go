package analyze

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current findings")

// testLoader is shared across tests so each stdlib package is
// type-checked from source at most once per test process.
var testLoader = sync.OnceValue(NewLoader)

// fixturePaths assigns import paths to fixtures that need one with
// meaning: detrand only fires inside study packages, so its fixture
// is loaded as ogdp/internal/gen, and ctxloop only fires on the
// serving surface, so its fixture loads as a cmd/ package. Everything
// else gets fix/<name>.
var fixturePaths = map[string]string{
	"detrand": "ogdp/internal/gen",
	"ctxloop": "ogdp/cmd/ctxloop",
}

// fixtureChecks names the checks to run over a fixture. The suppress
// fixture runs the full suite (its point is cross-check selectivity);
// every other fixture runs only its namesake.
func fixtureChecks(t *testing.T, name string) []*Check {
	if name == "suppress" {
		return Checks()
	}
	c := CheckByName(name)
	if c == nil {
		t.Fatalf("fixture %q has no registered check of that name", name)
	}
	return []*Check{c}
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	path, ok := fixturePaths[name]
	if !ok {
		path = "fix/" + name
	}
	pkg, err := testLoader().LoadDir(filepath.Join("testdata", "src", name), path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func fixtureFindings(t *testing.T, name string) []Finding {
	t.Helper()
	base, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	raw := Run([]*Package{loadFixture(t, name)}, fixtureChecks(t, name))
	out := make([]Finding, len(raw))
	for i, f := range raw {
		out[i] = f.RelativeTo(base)
	}
	return out
}

// TestGolden runs each check over its fixture and compares the
// formatted, suppression-filtered findings against the .golden file
// in the fixture directory. Regenerate with: go test -run Golden
// -update ./internal/analyze
func TestGolden(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			var lines []string
			for _, f := range fixtureFindings(t, name) {
				lines = append(lines, f.String())
			}
			got := strings.Join(lines, "\n") + "\n"
			goldenPath := filepath.Join("testdata", "src", name, name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// findingsAt filters findings to one check name.
func findingsAt(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// fixtureLine returns the 1-based line of the first source line in
// the fixture containing substr, so tests don't hardcode line numbers.
func fixtureLine(t *testing.T, name, substr string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "src", name, name+".go"))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range strings.Split(string(data), "\n") {
		if strings.Contains(l, substr) {
			return i + 1
		}
	}
	t.Fatalf("fixture %s has no line containing %q", name, substr)
	return 0
}

// TestSuppressionLineSelective: a //lint:allow(floatcmp) on a line
// carrying both a floatcmp and a wraperr finding silences exactly
// floatcmp; wraperr must survive on that same line.
func TestSuppressionLineSelective(t *testing.T) {
	fs := fixtureFindings(t, "suppress")
	var wraperrLines, floatcmpLines []int
	for _, f := range findingsAt(fs, "wraperr") {
		wraperrLines = append(wraperrLines, f.Pos.Line)
	}
	for _, f := range findingsAt(fs, "floatcmp") {
		floatcmpLines = append(floatcmpLines, f.Pos.Line)
	}
	line := fixtureLine(t, "suppress", "exact compare intended")
	if !containsInt(wraperrLines, line) {
		t.Errorf("wraperr finding on line %d was lost (lines with wraperr: %v)", line, wraperrLines)
	}
	if containsInt(floatcmpLines, line) {
		t.Errorf("floatcmp finding on line %d survived its //lint:allow", line)
	}
}

// TestSuppressionFunctionScope: an allow in the doc comment covers the
// whole function for that check only, and ends with the function.
func TestSuppressionFunctionScope(t *testing.T) {
	fs := fixtureFindings(t, "suppress")
	funcStart := fixtureLine(t, "suppress", "func funcScoped")
	funcEnd := fixtureLine(t, "suppress", "// Comma lists")
	for _, f := range findingsAt(fs, "floatcmp") {
		if funcStart <= f.Pos.Line && f.Pos.Line < funcEnd {
			t.Errorf("floatcmp finding inside funcScoped (line %d) survived the function-level allow", f.Pos.Line)
		}
	}
	wrapLine := fixtureLine(t, "suppress", "wraperr still reported")
	var wraperrLines []int
	for _, f := range findingsAt(fs, "wraperr") {
		wraperrLines = append(wraperrLines, f.Pos.Line)
	}
	if !containsInt(wraperrLines, wrapLine) {
		t.Errorf("wraperr inside funcScoped should survive the floatcmp-only allow; wraperr lines: %v", wraperrLines)
	}
	// afterScoped's exact compare sits past the allowed function and
	// must be reported again.
	afterLine := fixtureLine(t, "suppress", "previous function's allow ended")
	var floatcmpLines []int
	for _, f := range findingsAt(fs, "floatcmp") {
		floatcmpLines = append(floatcmpLines, f.Pos.Line)
	}
	if !containsInt(floatcmpLines, afterLine) {
		t.Error("function-level allow leaked past the end of its function")
	}
}

// TestSuppressionUnknownName: a typo'd check name in an allow comment
// is itself reported, as pseudo-check "allow".
func TestSuppressionUnknownName(t *testing.T) {
	fs := fixtureFindings(t, "suppress")
	bad := findingsAt(fs, "allow")
	if len(bad) != 1 {
		t.Fatalf("want exactly one unknown-name diagnostic, got %v", bad)
	}
	if !strings.Contains(bad[0].Msg, "nosuchcheck") {
		t.Errorf("diagnostic should quote the unknown name: %s", bad[0].Msg)
	}
}

// TestCommaList: one comment naming several checks silences each of
// them on its line.
func TestCommaList(t *testing.T) {
	fs := fixtureFindings(t, "suppress")
	line := fixtureLine(t, "suppress", "both intended here")
	for _, f := range fs {
		if f.Pos.Line == line {
			t.Errorf("finding on the comma-list allow line survived: %s", f)
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestSuppressionNewCheckSelective: the lockpath-only allow on the
// handoff function sanctions the lock leak but not the raw go
// statement inside it — gorolife keeps its finding.
func TestSuppressionNewCheckSelective(t *testing.T) {
	fs := fixtureFindings(t, "suppress")
	if len(findingsAt(fs, "lockpath")) != 0 {
		t.Errorf("lockpath finding survived its function-level allow: %v", findingsAt(fs, "lockpath"))
	}
	goLine := fixtureLine(t, "suppress", "go notify(ready)")
	var goroLines []int
	for _, f := range findingsAt(fs, "gorolife") {
		goroLines = append(goroLines, f.Pos.Line)
	}
	if !containsInt(goroLines, goLine) {
		t.Errorf("gorolife finding on line %d was swallowed by a lockpath-only allow (gorolife lines: %v)", goLine, goroLines)
	}
}

// TestPathScope: path-scoped checks stay quiet outside their scope.
// The same fixture sources that produce findings under their scoped
// import paths produce none when loaded elsewhere.
func TestPathScope(t *testing.T) {
	l := testLoader()
	cases := []struct {
		fixture, path, check string
	}{
		// ctxloop only fires on the serving surface (cmd/, serve, ckan,
		// query); under a neutral path the same loops are fine.
		{"ctxloop", "fix/unscoped/ctxloop", "ctxloop"},
		// gorolife exempts the goroutine-owner packages.
		{"gorolife", "ogdp/internal/parallel", "gorolife"},
	}
	for _, tc := range cases {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", tc.fixture), tc.path)
		if err != nil {
			t.Fatalf("loading %s as %s: %v", tc.fixture, tc.path, err)
		}
		fs := Run([]*Package{pkg}, []*Check{CheckByName(tc.check)})
		if len(fs) != 0 {
			t.Errorf("%s under import path %s should report nothing, got %v", tc.check, tc.path, fs)
		}
	}
}

// TestLoaderMemoizes: a Loader hands back the same type-checked
// package for repeated LoadDir calls (and the same Program for
// repeated module Loads), so the self-check, the golden tests, and
// ogdplint's driver all share one type-check of the module.
func TestLoaderMemoizes(t *testing.T) {
	l := testLoader()
	dir := filepath.Join("testdata", "src", "gorolife")
	p1, err := l.LoadDir(dir, "fix/gorolife")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := l.LoadDir(dir, "fix/gorolife")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("LoadDir re-parsed an already-loaded (dir, import path) pair")
	}
	if testing.Short() {
		t.Skip("module Load memoization needs the full type-check; skipped in -short")
	}
	root := filepath.Join("..", "..")
	prog1, err := l.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := l.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if prog1 != prog2 {
		t.Error("Load re-type-checked an already-loaded module root")
	}
}

// TestRunDetailedSuppressedBy: RunDetailed keeps suppressed findings,
// stamping each with the position of the allow comment that silenced
// it; Run is exactly the SuppressedBy == "" subset.
func TestRunDetailedSuppressedBy(t *testing.T) {
	base, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs := []*Package{loadFixture(t, "suppress")}
	var detailed []Finding
	for _, f := range RunDetailed(pkgs, Checks()) {
		detailed = append(detailed, f.RelativeTo(base))
	}

	allowLine := fixtureLine(t, "suppress", "exact compare intended")
	wantBy := fmt.Sprintf("suppress/suppress.go:%d", allowLine)
	found := false
	for _, f := range detailed {
		if f.Check == "floatcmp" && f.Pos.Line == allowLine {
			found = true
			if f.SuppressedBy != wantBy {
				t.Errorf("suppressed floatcmp finding carries SuppressedBy %q, want %q", f.SuppressedBy, wantBy)
			}
		}
	}
	if !found {
		t.Error("RunDetailed dropped the suppressed floatcmp finding")
	}

	var live []string
	for _, f := range detailed {
		if f.SuppressedBy == "" {
			live = append(live, f.String())
		}
	}
	var ran []string
	for _, f := range fixtureFindings(t, "suppress") {
		ran = append(ran, f.String())
	}
	if strings.Join(live, "\n") != strings.Join(ran, "\n") {
		t.Errorf("Run is not the unsuppressed subset of RunDetailed\n--- RunDetailed live ---\n%s\n--- Run ---\n%s",
			strings.Join(live, "\n"), strings.Join(ran, "\n"))
	}
}

// TestCheckDocs: every registered check has a name and an invariant
// statement, and names are unique (suppressions address them).
func TestCheckDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checks() {
		if c.Name == "" || c.Doc == "" || c.Run == nil {
			t.Errorf("check %+v is missing name, doc, or run", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
	}
	if seen["allow"] {
		t.Error(`"allow" is reserved for the suppression scanner`)
	}
}
