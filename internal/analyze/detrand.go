package analyze

import (
	"go/ast"
	"go/types"
)

// detrandCheck enforces the study packages' reproducibility contract:
// no wall-clock reads and no global math/rand state. Every random
// draw must flow through a seeded *rand.Rand owned by the work unit
// (the per-section/per-index streams internal/parallel callers carve
// out), so reruns and worker-count changes cannot move a single
// value. Constructors that build such streams (rand.New,
// rand.NewSource, ...) are fine; the package-level convenience
// functions draw from a process-global source and are not.
var detrandCheck = &Check{
	Name: "detrand",
	Doc:  "study packages must not read the wall clock or the global math/rand source; use seeded per-unit *rand.Rand streams",
	Run:  runDetrand,
}

// seededConstructors are the math/rand (and math/rand/v2) functions
// that build an explicitly-seeded generator rather than drawing from
// the global one.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// wallClockFuncs are the package-level time functions that read the
// wall clock. time.Since and time.Until call time.Now internally, so
// they are the same leak through a thinner straw.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetrand(p *Pass) {
	if !studyPackages[p.Pkg.Path] {
		return
	}
	inspectAll(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods (e.g. on a local *rand.Rand) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				p.Reportf(call.Pos(), "time.%s in study package %s: study results must derive from seeds, not the wall clock (report timing from cmd/ instead)",
					fn.Name(), shortPath(p.Pkg.Path))
			}
		case "math/rand", "math/rand/v2":
			if !seededConstructors[fn.Name()] {
				p.Reportf(call.Pos(), "global rand.%s in study package %s: draw from a seeded per-unit *rand.Rand (see internal/parallel) so output is identical across reruns and worker counts",
					fn.Name(), shortPath(p.Pkg.Path))
			}
		}
		return true
	})
}
