package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxloopCheck enforces cancellation on serving loops: a `for` loop
// whose body is built around a `select` — the shape of every poller,
// reporter, and connection pump in the serve/fetch layers — must have
// a case that observes shutdown. A case counts when it receives from a
// ctx.Done() channel or an equivalent close-signal channel (element
// type struct{} or os.Signal). Without one, the loop outlives drain
// and leaks its goroutine.
var ctxloopCheck = &Check{
	Name: "ctxloop",
	Doc:  "for+select loops in serving/fetch code include a ctx.Done() or equivalent cancellation case",
	Run:  runCtxloop,
}

// servingPackage reports whether the import path is part of the
// serving/fetch surface, where every long-lived loop must answer to a
// shutdown signal. Study packages run under the parallel pool and end
// when their work does, so they are out of scope.
func servingPackage(path string) bool {
	switch path {
	case "ogdp/internal/serve", "ogdp/internal/ckan", "ogdp/internal/query":
		return true
	}
	return strings.HasPrefix(path, "ogdp/cmd/")
}

func runCtxloop(p *Pass) {
	if !servingPackage(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info
	inspectAll(p, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		sel := directSelect(loop.Body)
		if sel == nil {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if ch := receivedChan(cc.Comm); ch != nil && cancelChan(info, ch) {
				return true
			}
		}
		p.Reportf(loop.Pos(), "for+select loop without a cancellation case: receive from ctx.Done() or a close-signal channel so the loop exits on shutdown, or add //lint:allow(ctxloop) naming the exit owner")
		return true
	})
}

// directSelect returns the select statement the loop body is built
// around: a select that is a direct child of the body (possibly after
// other statements), or nil.
func directSelect(body *ast.BlockStmt) *ast.SelectStmt {
	for _, s := range body.List {
		if sel, ok := s.(*ast.SelectStmt); ok {
			return sel
		}
	}
	return nil
}

// receivedChan extracts the channel expression a comm clause receives
// from (`<-ch`, `v := <-ch`, `v, ok = <-ch`), or nil for sends.
func receivedChan(comm ast.Stmt) ast.Expr {
	var x ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		x = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			x = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(x).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

// cancelChan reports whether ch is a shutdown-signal channel: the type
// carries no data (chan struct{}, which is also what ctx.Done()
// returns) or carries os.Signal (signal.Notify channels).
func cancelChan(info *types.Info, ch ast.Expr) bool {
	typ := info.TypeOf(ch)
	if typ == nil {
		return false
	}
	t, ok := typ.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	elem := t.Elem()
	if st, ok := elem.Underlying().(*types.Struct); ok && st.NumFields() == 0 {
		return true
	}
	return isPkgType(elem, "os", "Signal")
}
