package analyze

import (
	"go/ast"
	"go/types"
)

// rawdataCheck guards the dictionary-encoded storage layer: Table.Data
// holds the raw cell strings, and every analysis path is expected to
// go through the Value/Column accessors or the per-column Encoding
// (dictionary + codes) so profiling stays cache-backed and the
// encoding invariants hold. Direct Data access outside internal/table
// and internal/csvio reintroduces string-at-a-time hot loops and can
// observe cells the encoding cache has not seen. The check matches the
// storage shape — a named type Table carrying a Data [][]string field
// — rather than the declaring package path, so the fixture stays
// self-contained under the test loader (which cannot import module
// packages); the real table.Table is the only such type in the tree.
var rawdataCheck = &Check{
	Name: "rawdata",
	Doc:  "Table.Data may be touched only inside internal/table and internal/csvio; analysis code goes through Value/Column accessors or the column Encoding",
	Run:  runRawData,
}

// rawdataExempt are the storage-layer packages that own the raw cell
// representation.
var rawdataExempt = map[string]bool{
	"ogdp/internal/table": true,
	"ogdp/internal/csvio": true,
}

// rawCellStore is the storage layout the check keys on: [][]string.
var rawCellStore = types.NewSlice(types.NewSlice(types.Typ[types.String]))

func runRawData(p *Pass) {
	if rawdataExempt[p.Pkg.Path] {
		return
	}
	info := p.Pkg.Info
	inspectAll(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		f := s.Obj()
		if f.Name() != "Data" || !types.Identical(f.Type(), rawCellStore) {
			return true
		}
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Name() != "Table" {
			return true
		}
		p.Reportf(sel.Pos(), "direct access to Table.Data outside the storage layer: raw cells bypass the dictionary encoding; use Value/Column or the column Encoding")
		return true
	})
}
