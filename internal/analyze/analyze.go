package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a check.
type Finding struct {
	// Pos locates the offending node.
	Pos token.Position
	// Check is the name of the check that produced the finding
	// ("detrand"), or "allow" for malformed suppression comments.
	Check string
	// Msg describes the violation and the fix direction.
	Msg string
	// SuppressedBy is empty for a live finding; for a finding silenced
	// by a //lint:allow comment it records the comment's "file:line"
	// (only populated by RunDetailed — Run drops suppressed findings).
	SuppressedBy string
}

// String formats the finding as "file:line: [check] message", the
// shape ogdplint prints and golden files record.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// RelativeTo returns a copy of the finding with its filename made
// relative to base when possible, for stable output across machines.
func (f Finding) RelativeTo(base string) Finding {
	if base == "" {
		return f
	}
	prefix := strings.TrimSuffix(base, "/") + "/"
	if rel, ok := strings.CutPrefix(f.Pos.Filename, prefix); ok {
		f.Pos.Filename = rel
	}
	if rel, ok := strings.CutPrefix(f.SuppressedBy, prefix); ok {
		f.SuppressedBy = rel
	}
	return f
}

// Check is one analyzer: a name (the token suppression comments
// reference), a one-line invariant statement, and a Run function that
// reports findings through the Pass.
type Check struct {
	Name string
	// Doc states the invariant the check encodes.
	Doc string
	Run func(*Pass)
}

// Pass is the per-(check, package) run state handed to Check.Run.
type Pass struct {
	Check *Check
	Pkg   *Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:   p.Pkg.Fset.Position(pos),
		Check: p.Check.Name,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Run executes every check over every package, applies
// //lint:allow(<check>) suppressions, and returns the surviving
// findings sorted by file, line, column, and check name. Malformed
// suppression comments (unknown check names) are reported as findings
// of the pseudo-check "allow" and cannot themselves be suppressed.
func Run(pkgs []*Package, checks []*Check) []Finding {
	var live []Finding
	for _, f := range RunDetailed(pkgs, checks) {
		if f.SuppressedBy == "" {
			live = append(live, f)
		}
	}
	return live
}

// RunDetailed is Run without the suppression filter: every finding is
// returned, and those silenced by a //lint:allow comment carry the
// comment's position in SuppressedBy. ogdplint -json emits this full
// ledger so CI artifacts record what each allow comment is absorbing.
func RunDetailed(pkgs []*Package, checks []*Check) []Finding {
	known := map[string]bool{}
	for _, c := range checks {
		known[c.Name] = true
	}

	var all []Finding
	for _, pkg := range pkgs {
		sup, badAllows := suppressions(pkg, known)
		var raw []Finding
		for _, c := range checks {
			c.Run(&Pass{Check: c, Pkg: pkg, findings: &raw})
		}
		for _, f := range raw {
			f.SuppressedBy = sup.allows(f)
			all = append(all, f)
		}
		all = append(all, badAllows...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return all
}

// allowRE matches //lint:allow(name) and //lint:allow(a, b) comments;
// trailing justification text after the closing parenthesis is
// encouraged and ignored.
var allowRE = regexp.MustCompile(`^//\s*lint:allow\(([^)]*)\)`)

// allowRule grants named checks a blind spot over a line range of one
// file: the comment's own line, or — when the comment sits in a
// function declaration's doc comment or on its first line — the whole
// declaration.
type allowRule struct {
	file     string
	from, to int // inclusive line range
	checks   map[string]bool
	pos      string // the allow comment's own "file:line"
}

type suppressionSet struct {
	rules []allowRule
}

// allows returns the "file:line" of the comment suppressing f, or ""
// when no rule matches.
func (s suppressionSet) allows(f Finding) string {
	for _, r := range s.rules {
		if r.checks[f.Check] && r.file == f.Pos.Filename && r.from <= f.Pos.Line && f.Pos.Line <= r.to {
			return r.pos
		}
	}
	return ""
}

// suppressions scans a package's comments for //lint:allow directives.
// It returns the resulting rule set plus one "allow" finding per
// unknown check name, so a typo in a suppression surfaces instead of
// silently suppressing nothing.
func suppressions(pkg *Package, known map[string]bool) (suppressionSet, []Finding) {
	var set suppressionSet
	var bad []Finding
	for _, file := range pkg.Files {
		// Map each line of a function declaration's doc comment
		// (and its opening line) to the declaration's full range,
		// so an allow there covers the whole function.
		funcRange := map[int][2]int{}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			from := pkg.Fset.Position(fd.Pos()).Line
			to := pkg.Fset.Position(fd.End()).Line
			funcRange[from] = [2]int{from, to}
			if fd.Doc != nil {
				for l := pkg.Fset.Position(fd.Doc.Pos()).Line; l < from; l++ {
					funcRange[l] = [2]int{from, to}
				}
			}
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rule := allowRule{
					file:   pos.Filename,
					from:   pos.Line,
					to:     pos.Line,
					checks: map[string]bool{},
					pos:    fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
				}
				if r, ok := funcRange[pos.Line]; ok {
					rule.from, rule.to = r[0], r[1]
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if !known[name] {
						bad = append(bad, Finding{
							Pos:   pos,
							Check: "allow",
							Msg:   fmt.Sprintf("unknown check %q in //lint:allow comment", name),
						})
						continue
					}
					rule.checks[name] = true
				}
				if len(rule.checks) > 0 {
					set.rules = append(set.rules, rule)
				}
			}
		}
	}
	return set, bad
}

// funcBodies returns every function body in the file — declarations
// and literals — paired with its position extent, innermost-last for
// any given position.
type funcBody struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
}

func funcBodies(file *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{fn, fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{fn, fn.Body})
		}
		return true
	})
	return out
}

// enclosingFunc returns the innermost function body containing pos,
// or nil.
func enclosingFunc(bodies []funcBody, pos token.Pos) *funcBody {
	var best *funcBody
	for i := range bodies {
		b := &bodies[i]
		if b.body.Pos() <= pos && pos < b.body.End() {
			if best == nil || (best.body.Pos() <= b.body.Pos() && b.body.End() <= best.body.End()) {
				best = b
			}
		}
	}
	return best
}
