package fd

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"ogdp/internal/table"
)

// dirtyCityTable has city -> province except for a few dirty rows.
func dirtyCityTable(dirty int) *table.Table {
	t := table.New("cities", []string{"id", "city", "province"})
	cities := []struct{ c, p string }{
		{"Waterloo", "ON"}, {"Toronto", "ON"}, {"Montreal", "QC"}, {"Vancouver", "BC"},
	}
	for i := 0; i < 100; i++ {
		c := cities[i%len(cities)]
		prov := c.p
		if i < dirty {
			prov = "XX" // data-entry error
		}
		t.AppendRow([]string{strconv.Itoa(i + 1), c.c, prov})
	}
	return t
}

func TestDiscoverApproximateRecoversDirtyFD(t *testing.T) {
	tb := dirtyCityTable(3)
	// Exact discovery must NOT find city -> province (3 violations).
	for _, f := range Discover(tb, MaxLHS) {
		if len(f.LHS) == 1 && f.LHS[0] == 1 && f.RHS == 2 {
			t.Fatal("exact discovery found the dirty FD")
		}
	}
	// Approximate discovery at 5% error must recover it.
	found := false
	for _, af := range DiscoverApproximate(tb, 2, 0.05) {
		if len(af.LHS) == 1 && af.LHS[0] == 1 && af.RHS == 2 {
			found = true
			if af.Error <= 0 || af.Error > 0.05 {
				t.Errorf("g3 error = %g, want (0, 0.05]", af.Error)
			}
		}
	}
	if !found {
		t.Error("approximate discovery missed the dirty city -> province FD")
	}
}

func TestApproximateIncludesExact(t *testing.T) {
	tb := dirtyCityTable(0)
	foundExact := false
	for _, af := range DiscoverApproximate(tb, 2, 0.05) {
		if len(af.LHS) == 1 && af.LHS[0] == 1 && af.RHS == 2 {
			foundExact = true
			if af.Error != 0 {
				t.Errorf("clean FD has error %g", af.Error)
			}
		}
	}
	if !foundExact {
		t.Error("exact FD missing from approximate results")
	}
}

func TestApproximateMinimality(t *testing.T) {
	tb := dirtyCityTable(0)
	for _, af := range DiscoverApproximate(tb, 3, 0.05) {
		if af.RHS == 2 && len(af.LHS) > 1 {
			for _, c := range af.LHS {
				if c == 1 {
					t.Errorf("non-minimal approximate FD: %v", af.FD)
				}
			}
		}
	}
}

func TestG3ErrorExactComputation(t *testing.T) {
	// Two groups: x -> y violated by exactly 2 of 6 rows.
	tb := table.FromRows("t", []string{"x", "y"}, [][]string{
		{"a", "1"}, {"a", "1"}, {"a", "2"},
		{"b", "3"}, {"b", "4"}, {"b", "3"},
	})
	got := G3Error(tb, FD{LHS: []int{0}, RHS: 1})
	want := 2.0 / 6.0
	if got != want {
		t.Errorf("g3 = %g, want %g", got, want)
	}
	if g := G3Error(table.New("e", []string{"a"}), FD{LHS: nil, RHS: 0}); g != 0 {
		t.Errorf("empty table g3 = %g", g)
	}
}

func TestG3ZeroIffHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		nCols := 2 + rng.Intn(3)
		nRows := 2 + rng.Intn(30)
		cols := make([]string, nCols)
		for c := range cols {
			cols[c] = fmt.Sprintf("c%d", c)
		}
		rows := make([][]string, nRows)
		for r := range rows {
			rows[r] = make([]string, nCols)
			for c := range rows[r] {
				rows[r][c] = strconv.Itoa(rng.Intn(3))
			}
		}
		tb := table.FromRows("t", cols, rows)
		f := FD{LHS: []int{0}, RHS: 1}
		holds := Holds(tb, f)
		g3 := G3Error(tb, f)
		if holds != (g3 == 0) {
			t.Fatalf("trial %d: Holds=%v but g3=%g", trial, holds, g3)
		}
	}
}

func TestPlausibilityRealVsAccidental(t *testing.T) {
	// Real: city -> province with strong support and name-independent
	// evidence.
	real := dirtyCityTable(0)
	realScore := Plausibility(real, FD{LHS: []int{1}, RHS: 2})

	// Accidental: two measure columns agreeing on a 4-row table.
	acc := table.FromRows("t", []string{"id", "m1", "m2"}, [][]string{
		{"1", "107", "3"}, {"2", "54", "9"}, {"3", "107", "3"}, {"4", "54", "9"},
	})
	accScore := Plausibility(acc, FD{LHS: []int{1}, RHS: 2})

	if realScore <= accScore {
		t.Errorf("real FD scored %.2f, accidental %.2f", realScore, accScore)
	}
	if realScore < 0.5 {
		t.Errorf("real FD score %.2f, want >= 0.5", realScore)
	}
	if accScore > 0.5 {
		t.Errorf("accidental FD score %.2f, want < 0.5", accScore)
	}
}

func TestPlausibilityNameAffinity(t *testing.T) {
	// fund_code -> fund_description: shared stem.
	var rows [][]string
	for i := 0; i < 60; i++ {
		code := i % 8
		rows = append(rows, []string{strconv.Itoa(i + 1), strconv.Itoa(code), fmt.Sprintf("Fund %d description", code)})
	}
	tb := table.FromRows("budget", []string{"line_id", "fund_code", "fund_description"}, rows)
	f := FD{LHS: []int{1}, RHS: 2}
	s := Plausibility(tb, f)
	if s < 0.7 {
		t.Errorf("fund_code -> fund_description scored %.2f, want high", s)
	}
}

func TestPlausibilityBounds(t *testing.T) {
	tb := dirtyCityTable(0)
	for _, f := range Discover(tb, MaxLHS) {
		s := Plausibility(tb, f)
		if s < 0 || s > 1 {
			t.Errorf("score %g out of [0,1] for %v", s, f)
		}
	}
	if Plausibility(table.New("e", []string{"a"}), FD{RHS: 0}) != 0 {
		t.Error("empty table should score 0")
	}
}

func BenchmarkDiscoverApproximate(b *testing.B) {
	tb := benchTable(2000, 8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiscoverApproximate(tb, 2, 0.02)
	}
}
