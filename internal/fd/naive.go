package fd

import (
	"ogdp/internal/table"
)

// DiscoverNaive finds the same minimal non-trivial FDs as Discover by
// exhaustively checking every (LHS, RHS) combination. It exists as a
// correctness baseline for cross-validation tests and for the
// FD-algorithm ablation bench; use Discover for real workloads.
func DiscoverNaive(t *table.Table, maxLHS int) []FD {
	nCols := t.NumCols()
	if nCols == 0 || nCols > MaxColumns || t.NumRows() == 0 || maxLHS < 1 {
		return nil
	}
	e := newEngine(t)
	nTotal := e.nRows

	var fds []FD
	minimalFor := make([][]attrset, nCols)
	emit := func(lhs attrset, rhs int) {
		for _, prev := range minimalFor[rhs] {
			if prev&lhs == prev {
				return
			}
		}
		minimalFor[rhs] = append(minimalFor[rhs], lhs)
		fds = append(fds, FD{LHS: lhs.members(nCols), RHS: rhs})
	}

	// Constants first (empty LHS).
	for a := 0; a < nCols; a++ {
		if e.card(attrset(0).with(a)) == 1 && nTotal > 1 {
			emit(0, a)
		}
	}

	// Enumerate LHS sets in size order so minimality checks see smaller
	// sets first.
	sets := enumerateSets(nCols, maxLHS)
	for _, x := range sets {
		cx := e.card(x)
		if cx == nTotal {
			continue // superkey LHS: trivial per the paper
		}
		for a := 0; a < nCols; a++ {
			if x.has(a) {
				continue
			}
			if e.card(x.with(a)) == cx {
				emit(x, a)
			}
		}
	}
	sortFDs(fds)
	return fds
}

// enumerateSets lists all non-empty attribute subsets of size ≤ maxSize
// in ascending size order.
func enumerateSets(nCols, maxSize int) []attrset {
	var out []attrset
	var rec func(start int, cur attrset, size, target int)
	rec = func(start int, cur attrset, size, target int) {
		if size == target {
			out = append(out, cur)
			return
		}
		for a := start; a < nCols; a++ {
			rec(a+1, cur.with(a), size+1, target)
		}
	}
	for target := 1; target <= maxSize && target <= nCols; target++ {
		rec(0, 0, 0, target)
	}
	return out
}
