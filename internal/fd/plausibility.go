package fd

import (
	"strings"

	"ogdp/internal/table"
	"ogdp/internal/values"
)

// Plausibility scores how likely a discovered FD reflects a real
// semantic dependency rather than a statistical accident of the
// instance — the open question the paper raises in §4.3 ("how to
// differentiate between accidental vs real FDs to identify high
// quality and useful sub-tables"). The score combines instance-level
// evidence with schema-level hints:
//
//   - support: an FD witnessed by many distinct LHS values is far less
//     likely to hold by chance than one witnessed by two;
//   - violation headroom: how far the RHS is from being independent of
//     the LHS (an FD over a near-key LHS is trivially easy to satisfy);
//   - name affinity: City → Province and FundCode → FundDescription
//     style dependencies usually share name tokens or link an id/code
//     column to a description;
//   - LHS size: single-attribute FDs are the paper's dominant real
//     pattern (Table 5); wide LHSs are more often coincidences;
//   - type pattern: code/text → text lookups are the classic real
//     shape, numeric measure → numeric measure agreements usually are
//     not.
//
// The result is in [0, 1]; values above ~0.5 behave like "probably
// real" on the synthetic corpora (see the tests for calibration).
func Plausibility(t *table.Table, f FD) float64 {
	if t.NumRows() == 0 || f.RHS >= t.NumCols() {
		return 0
	}
	var score float64

	// Support: distinct LHS groups, saturating at 30.
	support := t.DistinctCount(f.LHS)
	switch {
	case support >= 30:
		score += 0.30
	case support >= 10:
		score += 0.22
	case support >= 5:
		score += 0.12
	case support >= 3:
		score += 0.05
	}

	// Headroom: compare the LHS cardinality to the row count. A
	// near-key LHS (card ≈ rows) gives each group ~1 row, so any RHS
	// trivially "depends" on it.
	rows := t.NumRows()
	if rows > 0 {
		groupSize := float64(rows) / float64(max(1, support))
		switch {
		case groupSize >= 5:
			score += 0.25
		case groupSize >= 2:
			score += 0.15
		case groupSize > 1.2:
			score += 0.05
		}
	}

	// LHS size: |LHS| = 1 is the dominant real pattern.
	switch len(f.LHS) {
	case 0, 1:
		score += 0.15
	case 2:
		score += 0.07
	}

	// Name affinity between LHS and RHS columns.
	score += 0.15 * nameAffinity(t, f)

	// Type pattern.
	score += 0.15 * typePattern(t, f)

	if score > 1 {
		score = 1
	}
	return score
}

// nameAffinity returns 1 when an LHS column shares a name stem with
// the RHS (fund_code → fund_description), 0.5 for id/code → text
// naming, else 0.
func nameAffinity(t *table.Table, f FD) float64 {
	rhsTokens := nameTokens(t.Cols[f.RHS])
	best := 0.0
	for _, c := range f.LHS {
		lhsTokens := nameTokens(t.Cols[c])
		shared := 0
		for tok := range lhsTokens {
			if _, ok := rhsTokens[tok]; ok {
				shared++
			}
		}
		if shared > 0 {
			return 1
		}
		lhsName := strings.ToLower(t.Cols[c])
		rhsName := strings.ToLower(t.Cols[f.RHS])
		if (strings.Contains(lhsName, "code") || strings.Contains(lhsName, "id") || strings.Contains(lhsName, "number")) &&
			(strings.Contains(rhsName, "desc") || strings.Contains(rhsName, "name") || strings.Contains(rhsName, "type")) {
			best = 0.5
		}
	}
	return best
}

func nameTokens(name string) map[string]struct{} {
	out := map[string]struct{}{}
	for _, tok := range strings.FieldsFunc(strings.ToLower(name), func(r rune) bool {
		return !(r >= 'a' && r <= 'z')
	}) {
		if len(tok) >= 3 {
			out[tok] = struct{}{}
		}
	}
	return out
}

// typePattern scores the FD's column-type shape: categorical/code →
// text lookups are the classic real dependency; measure → measure
// agreements usually are not.
func typePattern(t *table.Table, f FD) float64 {
	rhs := t.Profile(f.RHS).Type
	rhsText := rhs.IsText()
	anyLookupLHS := false
	allNumericLHS := len(f.LHS) > 0
	for _, c := range f.LHS {
		lt := t.Profile(c).Type
		if lt == values.ColCategorical || lt == values.ColString || lt == values.ColInt {
			anyLookupLHS = true
		}
		if !lt.IsNumeric() {
			allNumericLHS = false
		}
	}
	switch {
	case anyLookupLHS && rhsText:
		return 1
	case anyLookupLHS:
		return 0.6
	case allNumericLHS && rhs.IsNumeric():
		return 0.1
	default:
		return 0.3
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
