// Package fd discovers minimal non-trivial functional dependencies,
// reproducing the paper's §4.2 analysis. The main engine implements
// the FUN algorithm of Novelli & Cicchetti ("FUN: An efficient
// algorithm for mining functional and embedded dependencies", ICDT
// 2001): a levelwise exploration of *free sets* driven entirely by
// cardinality (count-distinct) comparisons:
//
//   - X → A holds iff |π_X(T)| = |π_{X∪A}(T)|,
//   - an attribute set X is free iff no proper subset has the same
//     cardinality; free sets are downward closed, and every minimal FD
//     has a free left-hand side, so only free sets are expanded.
//
// Following the paper, an FD X → A is trivial when A ∈ X or X is a
// (super)key, and discovery is bounded at |LHS| ≤ 4 (MaxLHS).
package fd

import (
	"fmt"
	"sort"
	"strings"

	"ogdp/internal/table"
)

// MaxLHS is the paper's bound on the left-hand-side size.
const MaxLHS = 4

// MaxColumns is the widest table Discover accepts; the levelwise
// lattice is exponential in the column count, and the paper
// restricts the FD analysis to tables with at most 20 columns.
const MaxColumns = 64

// FD is a functional dependency LHS → RHS with a single right-hand
// attribute. Attributes are column indices. A nil/empty LHS means the
// RHS column is constant (determined by the empty set).
type FD struct {
	LHS []int
	RHS int
}

// String renders the FD with column indices, e.g. "[0 2] -> 3".
func (f FD) String() string {
	parts := make([]string, len(f.LHS))
	for i, a := range f.LHS {
		parts[i] = fmt.Sprint(a)
	}
	return "{" + strings.Join(parts, ",") + "} -> " + fmt.Sprint(f.RHS)
}

// Format renders the FD with column names from t.
func (f FD) Format(t *table.Table) string {
	parts := make([]string, len(f.LHS))
	for i, a := range f.LHS {
		parts[i] = t.Cols[a]
	}
	return strings.Join(parts, ", ") + " -> " + t.Cols[f.RHS]
}

// attrset is a bitmask over column indices (< MaxColumns).
type attrset uint64

func (s attrset) has(a int) bool        { return s&(1<<uint(a)) != 0 }
func (s attrset) with(a int) attrset    { return s | 1<<uint(a) }
func (s attrset) without(a int) attrset { return s &^ (1 << uint(a)) }
func (s attrset) size() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

func (s attrset) members(nCols int) []int {
	var out []int
	for a := 0; a < nCols; a++ {
		if s.has(a) {
			out = append(out, a)
		}
	}
	return out
}

func setOf(attrs []int) attrset {
	var s attrset
	for _, a := range attrs {
		s = s.with(a)
	}
	return s
}

// engine runs the lattice search over the table's shared canonical
// code streams (table.CanonCodes): per column, every null spelling is
// code 0 and distinct non-null values are dense codes. The encoding is
// built once per table and shared with every other analysis layer, so
// constructing an engine allocates nothing beyond the caches below.
type engine struct {
	nRows     int
	nCols     int
	codes     [][]uint32 // codes[c]: canonical code stream of column c
	codeSizes []int      // code-space size per column (distinct incl. the null code)
	cards     map[attrset]int
	scratch   map[uint64]struct{} // reused across card computations
}

func newEngine(t *table.Table) *engine {
	e := &engine{
		nRows:     t.NumRows(),
		nCols:     t.NumCols(),
		codes:     make([][]uint32, t.NumCols()),
		codeSizes: make([]int, t.NumCols()),
		cards:     make(map[attrset]int),
	}
	for c := 0; c < e.nCols; c++ {
		e.codes[c], e.codeSizes[c] = t.CanonCodes(c)
	}
	return e
}

// card returns the number of distinct tuples in the projection onto s,
// caching results across the lattice exploration.
func (e *engine) card(s attrset) int {
	if s == 0 {
		if e.nRows > 0 {
			return 1
		}
		return 0
	}
	if n, ok := e.cards[s]; ok {
		return n
	}
	cols := s.members(e.nCols)
	var n int
	if len(cols) == 1 {
		// Single columns read straight off the encoding: the canon code
		// space is dense, so the distinct count is its size, minus the
		// null bucket when no row uses it.
		c := cols[0]
		n = e.codeSizes[c] - 1
		for _, code := range e.codes[c] {
			if code == 0 { // a null row: the null bucket is populated
				n++
				break
			}
		}
	} else {
		if e.scratch == nil {
			e.scratch = make(map[uint64]struct{}, e.nRows)
		}
		seen := e.scratch
		for k := range seen {
			delete(seen, k)
		}
		for r := 0; r < e.nRows; r++ {
			var h uint64 = 14695981039346656037
			for _, c := range cols {
				h ^= uint64(e.codes[c][r])
				h *= 1099511628211
			}
			seen[h] = struct{}{}
		}
		n = len(seen)
	}
	e.cards[s] = n
	return n
}

// Discover returns all minimal non-trivial FDs of t with |LHS| ≤
// maxLHS (pass fd.MaxLHS for the paper's setting). Tables wider than
// MaxColumns or with no rows yield no FDs. Constant columns are
// reported as FDs with an empty LHS.
func Discover(t *table.Table, maxLHS int) []FD {
	fds, _ := DiscoverCost(t, maxLHS)
	return fds
}

// Cost summarizes the work one Discover call performed, for the
// observability layer. Both counts derive only from the table's
// contents and maxLHS, so they are deterministic.
type Cost struct {
	// Cardinalities is the number of distinct count-distinct
	// computations the FUN lattice exploration evaluated (cache
	// misses of the projection-cardinality cache).
	Cardinalities int
	// FDs is the number of minimal non-trivial FDs found.
	FDs int
}

// DiscoverCost is Discover plus the work counters the search accrued.
func DiscoverCost(t *table.Table, maxLHS int) ([]FD, Cost) {
	if t.NumCols() == 0 || t.NumCols() > MaxColumns || t.NumRows() == 0 || maxLHS < 1 {
		return nil, Cost{}
	}
	e := newEngine(t)
	fds := e.discover(maxLHS, false)
	return fds, Cost{Cardinalities: len(e.cards), FDs: len(fds)}
}

// HasNontrivialFD reports whether t has at least one non-trivial FD
// with |LHS| ≤ maxLHS, short-circuiting on the first hit.
func HasNontrivialFD(t *table.Table, maxLHS int) bool {
	if t.NumCols() == 0 || t.NumCols() > MaxColumns || t.NumRows() == 0 || maxLHS < 1 {
		return false
	}
	e := newEngine(t)
	return len(e.discover(maxLHS, true)) > 0
}

// discover runs the FUN levelwise search. With firstOnly it returns as
// soon as one FD is found.
func (e *engine) discover(maxLHS int, firstOnly bool) []FD {
	var fds []FD
	// minimalFor[a] holds emitted LHS sets per RHS, for minimality checks.
	minimalFor := make([][]attrset, e.nCols)

	emit := func(lhs attrset, rhs int) {
		for _, prev := range minimalFor[rhs] {
			if prev&lhs == prev { // prev ⊆ lhs: not minimal
				return
			}
		}
		minimalFor[rhs] = append(minimalFor[rhs], lhs)
		fds = append(fds, FD{LHS: lhs.members(e.nCols), RHS: rhs})
	}

	nTotal := e.nRows

	// Level 0: the empty set determines constant columns.
	for a := 0; a < e.nCols; a++ {
		if e.card(attrset(0).with(a)) == 1 && nTotal > 1 {
			emit(0, a)
			if firstOnly && len(fds) > 0 {
				return fds
			}
		}
	}

	// Level 1 free sets: non-constant, non-duplicate-cardinality is not
	// required at level 1 beyond excluding constants (card == card(∅)).
	level := make([]attrset, 0, e.nCols)
	free := make(map[attrset]bool, e.nCols*2)
	for a := 0; a < e.nCols; a++ {
		s := attrset(0).with(a)
		if e.card(s) > 1 || nTotal <= 1 {
			level = append(level, s)
			free[s] = true
		}
	}

	for size := 1; size <= maxLHS && len(level) > 0; size++ {
		// Emit FDs from this level's free sets.
		for _, x := range level {
			cx := e.card(x)
			if cx == nTotal {
				continue // X is a (super)key: all its FDs are trivial per the paper
			}
			for a := 0; a < e.nCols; a++ {
				if x.has(a) {
					continue
				}
				if e.card(x.with(a)) == cx {
					emit(x, a)
					if firstOnly && len(fds) > 0 {
						return fds
					}
				}
			}
		}
		if size == maxLHS {
			break
		}
		// Generate the next level of free sets.
		next := make([]attrset, 0, len(level))
		seen := make(map[attrset]bool, len(level)*2)
		for _, x := range level {
			cx := e.card(x)
			if cx == nTotal {
				continue // supersets of keys are never free
			}
			for a := 0; a < e.nCols; a++ {
				if x.has(a) {
					continue
				}
				cand := x.with(a)
				if seen[cand] {
					continue
				}
				seen[cand] = true
				if isFree(e, free, cand, e.nCols) {
					free[cand] = true
					next = append(next, cand)
				}
			}
		}
		level = next
	}

	sortFDs(fds)
	return fds
}

// isFree reports whether cand is a free set: every proper subset one
// level down must itself be free and have strictly smaller cardinality.
func isFree(e *engine, free map[attrset]bool, cand attrset, nCols int) bool {
	cCand := e.card(cand)
	for a := 0; a < nCols; a++ {
		if !cand.has(a) {
			continue
		}
		sub := cand.without(a)
		if !free[sub] {
			return false
		}
		if e.card(sub) >= cCand {
			return false
		}
	}
	return true
}

func sortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		a, b := fds[i], fds[j]
		if len(a.LHS) != len(b.LHS) {
			return len(a.LHS) < len(b.LHS)
		}
		for k := range a.LHS {
			if a.LHS[k] != b.LHS[k] {
				return a.LHS[k] < b.LHS[k]
			}
		}
		return a.RHS < b.RHS
	})
}

// SimpleFDs filters fds to those with a single-attribute LHS, the
// City → Province style dependencies the paper reports separately in
// Table 5.
func SimpleFDs(fds []FD) []FD {
	var out []FD
	for _, f := range fds {
		if len(f.LHS) == 1 {
			out = append(out, f)
		}
	}
	return out
}

// Holds verifies an FD directly against the table, treating all null
// spellings as one value (the canonical-code convention). Intended for
// tests and spot checks.
func Holds(t *table.Table, f FD) bool {
	n := t.NumRows()
	if n == 0 {
		return true
	}
	lhs := make([][]uint32, len(f.LHS))
	for i, c := range f.LHS {
		lhs[i], _ = t.CanonCodes(c)
	}
	rhs, _ := t.CanonCodes(f.RHS)
	seen := make(map[string]uint32)
	var key []byte
	for r := 0; r < n; r++ {
		key = key[:0]
		for _, col := range lhs {
			v := col[r]
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		if prev, ok := seen[string(key)]; ok {
			if prev != rhs[r] {
				return false
			}
		} else {
			seen[string(key)] = rhs[r]
		}
	}
	return true
}
