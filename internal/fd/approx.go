package fd

import (
	"sort"

	"ogdp/internal/table"
)

// ApproxFD is a functional dependency that holds after removing at
// most Error fraction of the rows (the g3 error measure). Real OGDP
// tables often contain a handful of dirty rows that break an otherwise
// real dependency; approximate discovery recovers those, one of the
// follow-up directions the paper's §4.3 discussion motivates.
type ApproxFD struct {
	FD
	// Error is the g3 measure: the minimum fraction of rows whose
	// removal makes the FD exact. 0 means the FD holds exactly.
	Error float64
}

// DiscoverApproximate finds FDs with g3 error ≤ maxError and
// |LHS| ≤ maxLHS. Exact FDs (error 0) are included. Minimality is with
// respect to the error threshold: an LHS is reported only if no proper
// subset already satisfies the threshold for the same RHS.
//
// The search enumerates LHS candidates levelwise; unlike exact
// discovery it cannot prune with cardinality comparisons alone, so it
// is more expensive — intended for the same bounded tables as the
// paper's FD analysis (≤ 20 columns, ≤ 10000 rows).
func DiscoverApproximate(t *table.Table, maxLHS int, maxError float64) []ApproxFD {
	nCols := t.NumCols()
	nRows := t.NumRows()
	if nCols == 0 || nCols > MaxColumns || nRows == 0 || maxLHS < 1 || maxError < 0 {
		return nil
	}
	e := newEngine(t)

	var out []ApproxFD
	minimalFor := make([][]attrset, nCols)
	emit := func(lhs attrset, rhs int, g3 float64) {
		for _, prev := range minimalFor[rhs] {
			if prev&lhs == prev {
				return
			}
		}
		minimalFor[rhs] = append(minimalFor[rhs], lhs)
		out = append(out, ApproxFD{FD: FD{LHS: lhs.members(nCols), RHS: rhs}, Error: g3})
	}

	for _, x := range enumerateSets(nCols, maxLHS) {
		if e.card(x) == nRows {
			continue // superkey LHS: trivial
		}
		for a := 0; a < nCols; a++ {
			if x.has(a) {
				continue
			}
			g3 := e.g3Error(x, a)
			if g3 <= maxError {
				emit(x, a, g3)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a.LHS) != len(b.LHS) {
			return len(a.LHS) < len(b.LHS)
		}
		for k := range a.LHS {
			if a.LHS[k] != b.LHS[k] {
				return a.LHS[k] < b.LHS[k]
			}
		}
		return a.RHS < b.RHS
	})
	return out
}

// g3Error computes the g3 measure of X → a: group rows by their X
// projection; within each group the rows that keep the majority a
// value stay, the rest must be removed.
func (e *engine) g3Error(x attrset, a int) float64 {
	cols := x.members(e.nCols)
	type groupKey = uint64
	// group hash -> (a-code -> count)
	groups := make(map[groupKey]map[uint32]int, 256)
	const prime64 = 1099511628211
	for r := 0; r < e.nRows; r++ {
		var h uint64 = 14695981039346656037
		for _, c := range cols {
			h ^= uint64(e.codes[c][r])
			h *= prime64
		}
		m := groups[h]
		if m == nil {
			m = make(map[uint32]int, 4)
			groups[h] = m
		}
		m[e.codes[a][r]]++
	}
	keep := 0
	for _, m := range groups {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		keep += best
	}
	return float64(e.nRows-keep) / float64(e.nRows)
}

// G3Error computes the g3 error of an arbitrary FD on a table: the
// minimum fraction of rows to remove for the FD to hold exactly.
func G3Error(t *table.Table, f FD) float64 {
	if t.NumRows() == 0 {
		return 0
	}
	e := newEngine(t)
	return e.g3Error(setOf(f.LHS), f.RHS)
}
