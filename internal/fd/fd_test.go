package fd

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"ogdp/internal/table"
)

// cityTable has the classic City -> Province FD plus a key column.
func cityTable() *table.Table {
	return table.FromRows("cities", []string{"id", "city", "province"}, [][]string{
		{"1", "Waterloo", "ON"},
		{"2", "Toronto", "ON"},
		{"3", "Montreal", "QC"},
		{"4", "Waterloo", "ON"},
		{"5", "Quebec City", "QC"},
	})
}

func fdStrings(fds []FD) []string {
	out := make([]string, len(fds))
	for i, f := range fds {
		out[i] = f.String()
	}
	return out
}

func TestDiscoverCityProvince(t *testing.T) {
	tb := cityTable()
	fds := Discover(tb, MaxLHS)
	// Expected minimal non-trivial FDs: city -> province. id is a key
	// (trivial LHS); province -/-> city (QC maps to two cities).
	want := FD{LHS: []int{1}, RHS: 2}
	found := false
	for _, f := range fds {
		if reflect.DeepEqual(f, want) {
			found = true
		}
		if len(f.LHS) == 1 && f.LHS[0] == 0 {
			t.Errorf("FD from key column must be excluded as trivial: %v", f)
		}
		if !Holds(tb, f) {
			t.Errorf("discovered FD does not hold: %v", f)
		}
	}
	if !found {
		t.Errorf("city -> province not found; got %v", fdStrings(fds))
	}
}

func TestDiscoverNoFDs(t *testing.T) {
	// All columns keys: every FD is trivial.
	tb := table.FromRows("t", []string{"a", "b"}, [][]string{
		{"1", "x"}, {"2", "y"}, {"3", "z"},
	})
	if fds := Discover(tb, MaxLHS); len(fds) != 0 {
		t.Errorf("expected no FDs, got %v", fdStrings(fds))
	}
	if HasNontrivialFD(tb, MaxLHS) {
		t.Error("HasNontrivialFD = true")
	}
}

func TestDiscoverConstantColumn(t *testing.T) {
	tb := table.FromRows("t", []string{"a", "const"}, [][]string{
		{"1", "same"}, {"2", "same"}, {"3", "same"},
	})
	fds := Discover(tb, MaxLHS)
	found := false
	for _, f := range fds {
		if len(f.LHS) == 0 && f.RHS == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("constant column FD (empty LHS) not found: %v", fdStrings(fds))
	}
}

func TestDiscoverCompositeLHS(t *testing.T) {
	// (a, b) -> c but neither a -> c nor b -> c.
	tb := table.FromRows("t", []string{"a", "b", "c", "id"}, [][]string{
		{"0", "0", "p", "1"},
		{"0", "1", "q", "2"},
		{"1", "0", "r", "3"},
		{"1", "1", "s", "4"},
		{"0", "0", "p", "5"},
		{"1", "1", "s", "6"},
	})
	fds := Discover(tb, MaxLHS)
	want := FD{LHS: []int{0, 1}, RHS: 2}
	found := false
	for _, f := range fds {
		if reflect.DeepEqual(f, want) {
			found = true
		}
	}
	if !found {
		t.Errorf("(a,b) -> c not found; got %v", fdStrings(fds))
	}
	// a -> c must NOT be reported (violated by rows 1,2).
	for _, f := range fds {
		if len(f.LHS) == 1 && f.LHS[0] == 0 && f.RHS == 2 {
			t.Errorf("a -> c wrongly reported")
		}
	}
}

func TestMinimality(t *testing.T) {
	// city -> province implies (city, extra) -> province; only the
	// minimal one may be reported.
	tb := table.FromRows("t", []string{"city", "province", "extra"}, [][]string{
		{"Waterloo", "ON", "1"},
		{"Toronto", "ON", "2"},
		{"Montreal", "QC", "3"},
		{"Waterloo", "ON", "4"},
	})
	fds := Discover(tb, MaxLHS)
	for _, f := range fds {
		if f.RHS == 1 && len(f.LHS) > 1 {
			t.Errorf("non-minimal FD reported: %v", f)
		}
	}
}

func TestMaxLHSBound(t *testing.T) {
	// FD requires 3 attributes on the LHS: parity bit determined by
	// (a, b, c) jointly.
	var rows [][]string
	for i := 0; i < 16; i++ {
		a, b, c := i&1, (i>>1)&1, (i>>2)&1
		rows = append(rows, []string{
			strconv.Itoa(a), strconv.Itoa(b), strconv.Itoa(c),
			strconv.Itoa(a ^ b ^ c), strconv.Itoa(i),
		})
	}
	tb := table.FromRows("t", []string{"a", "b", "c", "parity", "id"}, rows)
	fdsAt2 := Discover(tb, 2)
	for _, f := range fdsAt2 {
		if f.RHS == 3 {
			t.Errorf("parity FD found with maxLHS=2: %v", f)
		}
	}
	fdsAt3 := Discover(tb, 3)
	found := false
	for _, f := range fdsAt3 {
		if f.RHS == 3 && len(f.LHS) == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("parity FD not found with maxLHS=3: %v", fdStrings(fdsAt3))
	}
}

func TestNullsAreOneValue(t *testing.T) {
	// "" and "n/a" are the same (null) LHS value with conflicting RHS
	// values, so a -> b must not hold.
	tb := table.FromRows("t", []string{"a", "b", "id"}, [][]string{
		{"", "x", "1"},
		{"n/a", "y", "2"},
		{"v", "x", "3"},
	})
	for _, f := range Discover(tb, MaxLHS) {
		if len(f.LHS) == 1 && f.LHS[0] == 0 && f.RHS == 1 {
			t.Errorf("a -> b reported despite null conflict")
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if fds := Discover(table.New("e", []string{"a"}), MaxLHS); fds != nil {
		t.Errorf("empty table: %v", fds)
	}
	if fds := Discover(table.New("e", nil), MaxLHS); fds != nil {
		t.Errorf("no columns: %v", fds)
	}
	one := table.FromRows("one", []string{"a", "b"}, [][]string{{"x", "y"}})
	// Single-row tables: every column set is a key, so no non-trivial FDs.
	if fds := Discover(one, MaxLHS); len(fds) != 0 {
		t.Errorf("single row: %v", fdStrings(fds))
	}
}

func TestSimpleFDs(t *testing.T) {
	fds := []FD{
		{LHS: []int{1}, RHS: 2},
		{LHS: []int{0, 1}, RHS: 3},
		{LHS: nil, RHS: 4},
	}
	simple := SimpleFDs(fds)
	if len(simple) != 1 || simple[0].RHS != 2 {
		t.Errorf("SimpleFDs = %v", simple)
	}
}

func TestFormatAndString(t *testing.T) {
	tb := cityTable()
	f := FD{LHS: []int{1}, RHS: 2}
	if got := f.Format(tb); got != "city -> province" {
		t.Errorf("Format = %q", got)
	}
	if got := f.String(); got != "{1} -> 2" {
		t.Errorf("String = %q", got)
	}
}

// TestAgainstNaive cross-validates the FUN engine against exhaustive
// search on random tables.
func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nCols := 2 + rng.Intn(5)
		nRows := 2 + rng.Intn(40)
		domain := 1 + rng.Intn(5)
		cols := make([]string, nCols)
		for c := range cols {
			cols[c] = fmt.Sprintf("c%d", c)
		}
		rows := make([][]string, nRows)
		for r := range rows {
			rows[r] = make([]string, nCols)
			for c := range rows[r] {
				rows[r][c] = strconv.Itoa(rng.Intn(domain))
			}
		}
		tb := table.FromRows("t", cols, rows)
		got := Discover(tb, 3)
		want := DiscoverNaive(tb, 3)
		if !reflect.DeepEqual(fdStrings(got), fdStrings(want)) {
			t.Fatalf("trial %d mismatch:\nFUN:   %v\nnaive: %v\nrows: %v",
				trial, fdStrings(got), fdStrings(want), rows)
		}
		for _, f := range got {
			if !Holds(tb, f) {
				t.Fatalf("trial %d: FD %v does not hold", trial, f)
			}
		}
	}
}

func TestHasNontrivialFDAgreesWithDiscover(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		nCols := 2 + rng.Intn(4)
		nRows := 2 + rng.Intn(25)
		cols := make([]string, nCols)
		for c := range cols {
			cols[c] = fmt.Sprintf("c%d", c)
		}
		rows := make([][]string, nRows)
		for r := range rows {
			rows[r] = make([]string, nCols)
			for c := range rows[r] {
				rows[r][c] = strconv.Itoa(rng.Intn(3))
			}
		}
		tb := table.FromRows("t", cols, rows)
		if HasNontrivialFD(tb, 3) != (len(Discover(tb, 3)) > 0) {
			t.Fatalf("trial %d: HasNontrivialFD disagrees with Discover", trial)
		}
	}
}

func TestHoldsRejectsViolation(t *testing.T) {
	tb := table.FromRows("t", []string{"a", "b"}, [][]string{
		{"x", "1"}, {"x", "2"},
	})
	if Holds(tb, FD{LHS: []int{0}, RHS: 1}) {
		t.Error("Holds accepted a violated FD")
	}
}

func benchTable(nRows, nCols int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]string, nCols)
	for c := range cols {
		cols[c] = fmt.Sprintf("c%d", c)
	}
	rows := make([][]string, nRows)
	for r := range rows {
		rows[r] = make([]string, nCols)
		// Plant FDs: c0 determines c1; (c2, c3) determine c4.
		c0 := rng.Intn(40)
		rows[r][0] = strconv.Itoa(c0)
		rows[r][1] = strconv.Itoa(c0 % 7)
		c2, c3 := rng.Intn(12), rng.Intn(12)
		rows[r][2] = strconv.Itoa(c2)
		rows[r][3] = strconv.Itoa(c3)
		rows[r][4] = strconv.Itoa((c2*13 + c3) % 50)
		for c := 5; c < nCols; c++ {
			rows[r][c] = strconv.Itoa(rng.Intn(100))
		}
	}
	return table.FromRows("bench", cols, rows)
}

func BenchmarkDiscoverFUN(b *testing.B) {
	tb := benchTable(2000, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Discover(tb, MaxLHS)
	}
}

func BenchmarkDiscoverNaive(b *testing.B) {
	tb := benchTable(2000, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiscoverNaive(tb, MaxLHS)
	}
}
