package fd

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"ogdp/internal/table"
)

func TestTANECityProvince(t *testing.T) {
	tb := cityTable()
	fds := DiscoverTANE(tb, MaxLHS)
	found := false
	for _, f := range fds {
		if len(f.LHS) == 1 && f.LHS[0] == 1 && f.RHS == 2 {
			found = true
		}
		if !Holds(tb, f) {
			t.Errorf("TANE FD does not hold: %v", f)
		}
	}
	if !found {
		t.Errorf("city -> province not found: %v", fdStrings(fds))
	}
}

// TestTANEAgainstFUN cross-validates the three engines on random
// tables: TANE, FUN, and exhaustive search must agree exactly.
func TestTANEAgainstFUN(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		nCols := 2 + rng.Intn(5)
		nRows := 2 + rng.Intn(40)
		domain := 1 + rng.Intn(5)
		cols := make([]string, nCols)
		for c := range cols {
			cols[c] = fmt.Sprintf("c%d", c)
		}
		rows := make([][]string, nRows)
		for r := range rows {
			rows[r] = make([]string, nCols)
			for c := range rows[r] {
				rows[r][c] = strconv.Itoa(rng.Intn(domain))
			}
		}
		tb := table.FromRows("t", cols, rows)
		tane := DiscoverTANE(tb, 3)
		fun := Discover(tb, 3)
		if !reflect.DeepEqual(fdStrings(tane), fdStrings(fun)) {
			t.Fatalf("trial %d mismatch:\nTANE: %v\nFUN:  %v\nrows: %v",
				trial, fdStrings(tane), fdStrings(fun), rows)
		}
	}
}

func TestTANEWithNulls(t *testing.T) {
	tb := table.FromRows("t", []string{"a", "b", "id"}, [][]string{
		{"", "x", "1"},
		{"n/a", "y", "2"},
		{"v", "x", "3"},
	})
	tane := DiscoverTANE(tb, MaxLHS)
	fun := Discover(tb, MaxLHS)
	if !reflect.DeepEqual(fdStrings(tane), fdStrings(fun)) {
		t.Errorf("null handling differs:\nTANE: %v\nFUN:  %v", fdStrings(tane), fdStrings(fun))
	}
}

func TestTANEDegenerate(t *testing.T) {
	if got := DiscoverTANE(table.New("e", []string{"a"}), MaxLHS); got != nil {
		t.Errorf("empty table: %v", got)
	}
	one := table.FromRows("one", []string{"a", "b"}, [][]string{{"x", "y"}})
	if got := DiscoverTANE(one, MaxLHS); len(got) != 0 {
		t.Errorf("single row: %v", fdStrings(got))
	}
}

func TestTANEConstantColumn(t *testing.T) {
	tb := table.FromRows("t", []string{"a", "const"}, [][]string{
		{"1", "same"}, {"2", "same"}, {"3", "same"},
	})
	fds := DiscoverTANE(tb, MaxLHS)
	found := false
	for _, f := range fds {
		if len(f.LHS) == 0 && f.RHS == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("constant column FD missing: %v", fdStrings(fds))
	}
}

func TestTANEMaxLHSBound(t *testing.T) {
	var rows [][]string
	for i := 0; i < 16; i++ {
		a, b, c := i&1, (i>>1)&1, (i>>2)&1
		rows = append(rows, []string{
			strconv.Itoa(a), strconv.Itoa(b), strconv.Itoa(c),
			strconv.Itoa(a ^ b ^ c), strconv.Itoa(i),
		})
	}
	tb := table.FromRows("t", []string{"a", "b", "c", "parity", "id"}, rows)
	for _, f := range DiscoverTANE(tb, 2) {
		if len(f.LHS) > 2 {
			t.Errorf("LHS bound violated: %v", f)
		}
	}
	got3 := fdStrings(DiscoverTANE(tb, 3))
	want3 := fdStrings(Discover(tb, 3))
	if !reflect.DeepEqual(got3, want3) {
		t.Errorf("maxLHS=3 mismatch:\nTANE: %v\nFUN:  %v", got3, want3)
	}
}

func BenchmarkDiscoverTANE(b *testing.B) {
	tb := benchTable(2000, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiscoverTANE(tb, MaxLHS)
	}
}
