package fd

import (
	"ogdp/internal/table"
)

// DiscoverTANE finds the same minimal non-trivial FDs as Discover
// using the TANE algorithm (Huhtala, Kärkkäinen, Porkka, Toivonen,
// 1999): levelwise search over attribute sets with stripped-partition
// products for validity checking and C⁺ candidate sets for pruning.
// The paper's related work (§7, via [31]) notes any exact algorithm is
// interchangeable for its analysis; this implementation exists to
// demonstrate that and to serve as a second engine in the FD-algorithm
// ablation bench.
func DiscoverTANE(t *table.Table, maxLHS int) []FD {
	nCols := t.NumCols()
	nRows := t.NumRows()
	if nCols == 0 || nCols > MaxColumns || nRows == 0 || maxLHS < 1 {
		return nil
	}
	e := newEngine(t)

	full := attrset(0)
	for a := 0; a < nCols; a++ {
		full = full.with(a)
	}

	var fds []FD
	emit := func(lhs attrset, rhs int) {
		fds = append(fds, FD{LHS: lhs.members(nCols), RHS: rhs})
	}

	// Level 1: singleton partitions; C+(X) starts as the full schema.
	parts := map[attrset]*partition{}
	cplus := map[attrset]attrset{}
	var level []attrset
	cplus[0] = full
	for a := 0; a < nCols; a++ {
		s := attrset(0).with(a)
		parts[s] = singletonPartition(e.codes[a], nRows)
		level = append(level, s)
	}

	// The empty set's partition has one class of all rows; ∅ → A holds
	// iff A is constant. Handle it directly (TANE's level-1 special
	// case) so constant columns are reported with an empty LHS.
	for a := 0; a < nCols; a++ {
		s := attrset(0).with(a)
		if nRows > 1 && parts[s].errSum == nRows-1 {
			emit(0, a)
			// A is constant: no minimal FD with A on the LHS side adds
			// information, and X → A is non-minimal for any X ≠ ∅.
		}
	}

	computeCplus := func(x attrset) attrset {
		c := full
		for a := 0; a < nCols; a++ {
			if !x.has(a) {
				continue
			}
			sub, ok := cplus[x.without(a)]
			if !ok {
				return 0
			}
			c &= sub
		}
		return c
	}

	for size := 1; size <= maxLHS+1 && len(level) > 0; size++ {
		// Compute dependencies for this level.
		for _, x := range level {
			cplus[x] = computeCplus(x)
			cand := cplus[x] & x
			for a := 0; a < nCols; a++ {
				if !cand.has(a) {
					continue
				}
				lhs := x.without(a)
				if partitionsEqualError(parts, e, lhs, x) {
					// lhs → a is a valid minimal FD; suppress the paper's
					// trivial cases: constant columns were handled at ∅,
					// and superkey LHSs are trivial.
					lhsIsSuperkey := lhs == 0 || partErr(parts, e, lhs) == 0
					constant := nRows > 1 && partErr(parts, e, attrset(0).with(a)) == nRows-1
					if !lhsIsSuperkey && !constant && len(lhs.members(nCols)) <= maxLHS {
						emit(lhs, a)
					}
					cplus[x] = cplus[x].without(a)
					// Remove R \ X from C+(X).
					cplus[x] &= x
				}
			}
		}
		// Prune.
		var pruned []attrset
		for _, x := range level {
			if cplus[x] == 0 {
				continue
			}
			if partErr(parts, e, x) == 0 {
				// X is a (super)key: TANE would emit its dependents as
				// trivial FDs; the paper excludes them, so just prune.
				continue
			}
			pruned = append(pruned, x)
		}
		// Generate the next level by prefix join.
		if size >= maxLHS+1 {
			break
		}
		next := generateNextLevel(pruned, nCols)
		for _, x := range next {
			// π_X = π_Y · π_Z for two size-(k) subsets; use any split.
			a := firstMember(x, nCols)
			y := x.without(a)
			if parts[x] == nil && parts[y] != nil && parts[attrset(0).with(a)] != nil {
				parts[x] = productPartition(parts[y], parts[attrset(0).with(a)], nRows)
			}
		}
		level = next
	}

	// Deduplicate and sort: C+ pruning already guarantees minimality,
	// but emissions can arrive in any order.
	sortFDs(fds)
	return dedupeFDs(fds)
}

func dedupeFDs(fds []FD) []FD {
	var out []FD
	seen := map[string]bool{}
	for _, f := range fds {
		k := f.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

func firstMember(s attrset, nCols int) int {
	for a := 0; a < nCols; a++ {
		if s.has(a) {
			return a
		}
	}
	return -1
}

// generateNextLevel joins same-size sets sharing all but their last
// attribute (apriori prefix join) and keeps candidates whose every
// subset survived pruning.
func generateNextLevel(level []attrset, nCols int) []attrset {
	inLevel := map[attrset]bool{}
	for _, x := range level {
		inLevel[x] = true
	}
	seen := map[attrset]bool{}
	var next []attrset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			u := level[i] | level[j]
			if u.size() != level[i].size()+1 {
				continue
			}
			if seen[u] {
				continue
			}
			seen[u] = true
			ok := true
			for a := 0; a < nCols; a++ {
				if u.has(a) && !inLevel[u.without(a)] {
					ok = false
					break
				}
			}
			if ok {
				next = append(next, u)
			}
		}
	}
	return next
}

// partition is a stripped partition: only equivalence classes with at
// least two rows, plus the cached error Σ(|c|-1). The class count with
// singletons is nRows - errSum, so X → A holds iff errSum(X) ==
// errSum(X ∪ A).
type partition struct {
	classes [][]int32
	errSum  int
}

func singletonPartition(codes []uint32, nRows int) *partition {
	// Group rows in first-seen order rather than by ranging over a
	// map, so the class list is identical on every run (map iteration
	// order is randomized and would reorder classes).
	idx := make(map[uint32]int32, 64)
	var groups [][]int32
	for r := 0; r < nRows; r++ {
		g, ok := idx[codes[r]]
		if !ok {
			g = int32(len(groups))
			idx[codes[r]] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], int32(r))
	}
	p := &partition{}
	for _, g := range groups {
		if len(g) >= 2 {
			p.classes = append(p.classes, g)
			p.errSum += len(g) - 1
		}
	}
	return p
}

// productPartition computes the stripped partition of X ∪ Y from the
// partitions of X and Y (the TANE PRODUCT procedure, linear in the
// class sizes).
func productPartition(a, b *partition, nRows int) *partition {
	t := make([]int32, nRows)
	for i := range t {
		t[i] = -1
	}
	for i, cls := range a.classes {
		for _, r := range cls {
			t[r] = int32(i)
		}
	}
	// Bucket in first-seen order (see singletonPartition): the class
	// list must not inherit map iteration order.
	idx := make(map[int64]int32, 64)
	var groups [][]int32
	for j, cls := range b.classes {
		for _, r := range cls {
			if t[r] < 0 {
				continue // singleton in a: stays singleton in the product
			}
			key := int64(t[r])<<32 | int64(j)
			g, ok := idx[key]
			if !ok {
				g = int32(len(groups))
				idx[key] = g
				groups = append(groups, nil)
			}
			groups[g] = append(groups[g], r)
		}
	}
	p := &partition{}
	for _, g := range groups {
		if len(g) >= 2 {
			p.classes = append(p.classes, g)
			p.errSum += len(g) - 1
		}
	}
	return p
}

// partErr returns the partition error of x, computing (and caching)
// the partition from the engine's codes when the levelwise products
// did not materialize it.
func partErr(parts map[attrset]*partition, e *engine, x attrset) int {
	if x == 0 {
		if e.nRows == 0 {
			return 0
		}
		return e.nRows - 1
	}
	if p, ok := parts[x]; ok && p != nil {
		return p.errSum
	}
	// |π_X| = card(X) ⇒ errSum = nRows - card(X).
	return e.nRows - e.card(x)
}

func partitionsEqualError(parts map[attrset]*partition, e *engine, lhs, x attrset) bool {
	return partErr(parts, e, lhs) == partErr(parts, e, x)
}
