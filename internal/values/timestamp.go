package values

import (
	"strings"
	"time"
)

// timestampLayouts are the date/time layouts the study recognizes. They
// cover the formats that dominate OGDP CSVs: ISO dates, ISO datetimes,
// RFC 3339, North-American and European slash dates, and month-level
// dates such as "2006-01" used by periodically published tables.
var timestampLayouts = []string{
	"2006-01-02",
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05",
	time.RFC3339,
	"01/02/2006",
	"02/01/2006",
	"01/02/2006 15:04",
	"2006/01/02",
	"2006-01",
	"Jan 2, 2006",
	"2 Jan 2006",
	"January 2, 2006",
	"02-Jan-2006",
	"20060102",
}

// IsTimestamp reports whether s parses as a date or datetime in one of
// the recognized layouts. Bare integers are never timestamps (years such
// as "2020" are classified as integers, matching the paper's treatment
// of year columns as integer/incremental-integer domains).
func IsTimestamp(s string) bool {
	_, ok := ParseTimestamp(s)
	return ok
}

// ParseTimestamp parses s in the first matching recognized layout.
func ParseTimestamp(s string) (time.Time, bool) {
	s = strings.TrimSpace(s)
	if len(s) < 6 || len(s) > 35 {
		return time.Time{}, false
	}
	// Quick reject: must contain a separator or be an 8-digit basic date.
	if !strings.ContainsAny(s, "-/:, ") && !(len(s) == 8 && allDigits(s)) {
		return time.Time{}, false
	}
	for _, layout := range timestampLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}
