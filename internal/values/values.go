package values

import (
	"strconv"
	"strings"
)

// NullTokens is the manual list of values treated as nulls, from §3.3 of
// the paper: "n/a", "n/d", "nan", "null", "-", and "...". The empty
// string (an empty CSV cell) is also a null but is checked directly.
var NullTokens = []string{"n/a", "n/d", "nan", "null", "-", "..."}

var nullSet = func() map[string]struct{} {
	m := make(map[string]struct{}, len(NullTokens))
	for _, t := range NullTokens {
		m[t] = struct{}{}
	}
	return m
}()

// IsNull reports whether the raw CSV cell value denotes a missing value.
// Matching is case-insensitive and ignores surrounding whitespace.
func IsNull(s string) bool {
	if s == "" {
		return true
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return true
	}
	if len(s) > 4 { // longest token is "null"/"n/a" variants; avoids lowering long strings
		return false
	}
	_, ok := nullSet[strings.ToLower(s)]
	return ok
}

// Kind is the scalar kind of a single cell value.
type Kind int

// Scalar kinds, ordered roughly from most to least specific.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindTimestamp
	KindGeo
	KindString
)

var kindNames = [...]string{"null", "bool", "int", "float", "timestamp", "geo", "string"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// KindOf classifies a single raw cell value.
func KindOf(s string) Kind {
	if IsNull(s) {
		return KindNull
	}
	s = strings.TrimSpace(s)
	if isBool(s) {
		return KindBool
	}
	if _, ok := ParseInt(s); ok {
		return KindInt
	}
	if _, ok := ParseFloat(s); ok {
		return KindFloat
	}
	if IsTimestamp(s) {
		return KindTimestamp
	}
	if IsGeo(s) {
		return KindGeo
	}
	return KindString
}

func isBool(s string) bool {
	switch strings.ToLower(s) {
	case "true", "false", "yes", "no", "y", "n":
		return true
	}
	return false
}

// ParseInt parses s as an integer, tolerating thousands separators
// ("1,234") and a leading sign. It reports ok=false for anything else.
func ParseInt(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	if strings.ContainsRune(s, ',') {
		if !validThousands(s) {
			return 0, false
		}
		s = strings.ReplaceAll(s, ",", "")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// validThousands reports whether s is an integer with correctly placed
// thousands separators, e.g. "1,234,567".
func validThousands(s string) bool {
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		s = s[1:]
	}
	groups := strings.Split(s, ",")
	if len(groups) < 2 {
		return false
	}
	if len(groups[0]) == 0 || len(groups[0]) > 3 {
		return false
	}
	for _, g := range groups[1:] {
		if len(g) != 3 {
			return false
		}
	}
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			if g[i] < '0' || g[i] > '9' {
				return false
			}
		}
	}
	return true
}

// ParseFloat parses s as a floating point number (not an integer),
// tolerating thousands separators and a trailing '%'.
func ParseFloat(s string) (float64, bool) {
	if s == "" {
		return 0, false
	}
	if strings.HasSuffix(s, "%") {
		s = strings.TrimSuffix(s, "%")
	}
	if strings.ContainsRune(s, ',') {
		// Only strip commas when they look like thousands separators of
		// the integer part.
		intPart := s
		if i := strings.IndexByte(s, '.'); i >= 0 {
			intPart = s[:i]
		}
		if !validThousands(intPart) {
			return 0, false
		}
		s = strings.ReplaceAll(s, ",", "")
	}
	if !strings.ContainsAny(s, ".eE") {
		return 0, false // plain integers are KindInt, not KindFloat
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// IsNumeric reports whether the value parses as an integer or a float.
func IsNumeric(s string) bool {
	if _, ok := ParseInt(s); ok {
		return true
	}
	_, ok := ParseFloat(s)
	return ok
}
