// Package values implements the value-level model of the OGDP study:
// null detection, scalar parsing, and column data type inference.
//
// The paper (§3.3) detects nulls as empty cells plus a manual list of
// popular null spellings. Section 5.3 classifies join columns into the
// data types {incremental integer, integer, categorical, string,
// timestamp, geo-spatial}; Table 4 additionally groups columns into the
// two broad classes text and numeric. This package implements all three
// granularities.
package values
