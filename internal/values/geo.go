package values

import (
	"strconv"
	"strings"
)

// IsGeo reports whether s looks like a geo-spatial value. The study
// recognizes the spellings that occur in OGDP CSVs:
//
//   - "lat, lon" / "lat lon" coordinate pairs with plausible ranges,
//     e.g. "43.4723, -80.5449"
//   - WKT geometry fragments, e.g. "POINT (-80.54 43.47)"
//   - GeoJSON-ish fragments beginning with {"type": "Point"
//   - Parenthesized pairs, e.g. "(43.4723, -80.5449)"
func IsGeo(s string) bool {
	s = strings.TrimSpace(s)
	if len(s) < 4 {
		return false
	}
	upper := strings.ToUpper(s)
	for _, prefix := range []string{"POINT", "POLYGON", "LINESTRING", "MULTIPOINT", "MULTIPOLYGON", "MULTILINESTRING"} {
		if strings.HasPrefix(upper, prefix) {
			rest := strings.TrimSpace(s[len(prefix):])
			return strings.HasPrefix(rest, "(")
		}
	}
	if strings.HasPrefix(s, "{") && strings.Contains(s, `"type"`) && strings.Contains(s, `"coordinates"`) {
		return true
	}
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		s = strings.TrimSpace(s[1 : len(s)-1])
	}
	return isCoordPair(s)
}

// isCoordPair reports whether s is "a, b" or "a b" with a in [-90, 90]
// and b in [-180, 180], at least one of them fractional (to avoid
// classifying small integer pairs as coordinates).
func isCoordPair(s string) bool {
	var parts []string
	if strings.ContainsRune(s, ',') {
		parts = strings.SplitN(s, ",", 3)
	} else {
		parts = strings.Fields(s)
	}
	if len(parts) != 2 {
		return false
	}
	a, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	b, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err1 != nil || err2 != nil {
		return false
	}
	if a < -90 || a > 90 || b < -180 || b > 180 {
		return false
	}
	return strings.ContainsRune(parts[0], '.') || strings.ContainsRune(parts[1], '.')
}
