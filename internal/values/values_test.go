package values

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
)

func TestIsNull(t *testing.T) {
	nulls := []string{"", " ", "n/a", "N/A", "n/d", "nan", "NaN", "null", "NULL", "-", "...", "  null  "}
	for _, s := range nulls {
		if !IsNull(s) {
			t.Errorf("IsNull(%q) = false, want true", s)
		}
	}
	notNulls := []string{"0", "na", "none", "nil", "--", "a", "n/a/b", "1.5", "None of the above"}
	for _, s := range notNulls {
		if IsNull(s) {
			t.Errorf("IsNull(%q) = true, want false", s)
		}
	}
}

func TestKindOf(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
	}{
		{"", KindNull},
		{"n/a", KindNull},
		{"true", KindBool},
		{"No", KindBool},
		{"42", KindInt},
		{"-7", KindInt},
		{"+13", KindInt},
		{"1,234,567", KindInt},
		{"3.14", KindFloat},
		{"-0.5", KindFloat},
		{"1e6", KindFloat},
		{"12.5%", KindFloat},
		{"1,234.56", KindFloat},
		{"2021-03-15", KindTimestamp},
		{"2021-03-15 10:30:00", KindTimestamp},
		{"03/15/2021", KindTimestamp},
		{"Jan 2, 2021", KindTimestamp},
		{"2021-03", KindTimestamp},
		{"43.4723, -80.5449", KindGeo},
		{"POINT (-80.54 43.47)", KindGeo},
		{"(43.4723, -80.5449)", KindGeo},
		{"hello", KindString},
		{"Ontario", KindString},
		{"12 Main St", KindString},
		{"1,23", KindString},  // malformed thousands
		{"12,34", KindString}, // malformed thousands
	}
	for _, c := range cases {
		if got := KindOf(c.in); got != c.want {
			t.Errorf("KindOf(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseInt(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"-12", -12, true},
		{"1,234", 1234, true},
		{"12,345,678", 12345678, true},
		{"1,23", 0, false},
		{"", 0, false},
		{"abc", 0, false},
		{"1.5", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseInt(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseInt(%q) = (%d, %v), want (%d, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestParseIntRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		got, ok := ParseInt(strconv.FormatInt(n, 10))
		return ok && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseFloat(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"3.14", 3.14, true},
		{"-0.5", -0.5, true},
		{"1e3", 1000, true},
		{"50%", 0, false}, // "50" has no decimal point -> int territory
		{"50.5%", 50.5, true},
		{"1,234.5", 1234.5, true},
		{"42", 0, false}, // plain int is not a float
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseFloat(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseFloat(%q) = (%g, %v), want (%g, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestIsTimestamp(t *testing.T) {
	yes := []string{"2020-01-31", "2020-01-31 23:59:59", "2020-01-31T23:59:59Z", "12/25/2020", "2020/01/31", "2020-07", "20200131"}
	for _, s := range yes {
		if !IsTimestamp(s) {
			t.Errorf("IsTimestamp(%q) = false, want true", s)
		}
	}
	no := []string{"2020", "31", "hello", "1234567", "2020-13-45", "a/b/c"}
	for _, s := range no {
		if IsTimestamp(s) {
			t.Errorf("IsTimestamp(%q) = true, want false", s)
		}
	}
}

func TestIsGeo(t *testing.T) {
	yes := []string{
		"43.4723, -80.5449",
		"-33.8688 151.2093",
		"POINT (-80.54 43.47)",
		"POLYGON ((0 0, 1 0, 1 1, 0 0))",
		"(45.5, -73.6)",
		`{"type": "Point", "coordinates": [-80.5, 43.5]}`,
	}
	for _, s := range yes {
		if !IsGeo(s) {
			t.Errorf("IsGeo(%q) = false, want true", s)
		}
	}
	no := []string{"1, 2", "100, 200", "hello, world", "99.9", "500.5, 10.2", "POINTLESS"}
	for _, s := range no {
		if IsGeo(s) {
			t.Errorf("IsGeo(%q) = true, want false", s)
		}
	}
}

func seq(from, to int) []string {
	out := make([]string, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, strconv.Itoa(i))
	}
	return out
}

func TestInferIncrementalInt(t *testing.T) {
	if got := Infer(seq(1, 100)); got != ColIncrementalInt {
		t.Errorf("Infer(1..100) = %v, want incremental integer", got)
	}
	// Sparse integers are plain integers.
	sparse := []string{"3", "90", "417", "1200", "77", "5012", "8", "666"}
	if got := Infer(sparse); got != ColInt {
		t.Errorf("Infer(sparse ints) = %v, want integer", got)
	}
	// Order does not matter for incrementality.
	shuffled := []string{"5", "2", "4", "1", "3", "7", "6"}
	if got := Infer(shuffled); got != ColIncrementalInt {
		t.Errorf("Infer(shuffled 1..7) = %v, want incremental integer", got)
	}
}

func TestInferCategorical(t *testing.T) {
	var vals []string
	cats := []string{"Salmon", "Trout", "Lumpfish", "Cod"}
	for i := 0; i < 200; i++ {
		vals = append(vals, cats[i%len(cats)])
	}
	if got := Infer(vals); got != ColCategorical {
		t.Errorf("Infer(repeating categories) = %v, want categorical", got)
	}
}

func TestInferString(t *testing.T) {
	var vals []string
	for i := 0; i < 200; i++ {
		vals = append(vals, fmt.Sprintf("Free form description %d", i))
	}
	if got := Infer(vals); got != ColString {
		t.Errorf("Infer(unique strings) = %v, want string", got)
	}
}

func TestInferOtherTypes(t *testing.T) {
	cases := []struct {
		name string
		vals []string
		want ColumnType
	}{
		{"all null", []string{"", "n/a", "null", ""}, ColAllNull},
		{"empty", nil, ColAllNull},
		{"bool", []string{"yes", "no", "yes", "no", "yes"}, ColBool},
		{"float", []string{"1.5", "2.5", "3.25", "0.1"}, ColFloat},
		{"mixed int float is float", []string{"1", "2.5", "3", "0.1", "4", "7.5", "8", "2.25", "9", "1.75"}, ColFloat},
		{"timestamp", []string{"2020-01-01", "2020-02-01", "2020-03-01"}, ColTimestamp},
		{"geo", []string{"43.47, -80.54", "44.1, -79.2", "45.0, -75.5"}, ColGeo},
		{"nulls ignored", []string{"", "1.5", "n/a", "2.5", "3.5"}, ColFloat},
	}
	for _, c := range cases {
		if got := Infer(c.vals); got != c.want {
			t.Errorf("%s: Infer = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBroadClass(t *testing.T) {
	cases := []struct {
		t    ColumnType
		want string
	}{
		{ColIncrementalInt, "number"},
		{ColInt, "number"},
		{ColFloat, "number"},
		{ColString, "text"},
		{ColCategorical, "text"},
		{ColTimestamp, "text"},
		{ColGeo, "text"},
		{ColBool, "text"},
		{ColAllNull, "all-null"},
	}
	for _, c := range cases {
		if got := c.t.BroadClass(); got != c.want {
			t.Errorf("%v.BroadClass() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestKindOfNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_ = KindOf(s)
		_ = IsNull(s)
		_ = IsTimestamp(s)
		_ = IsGeo(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestColumnTypeString(t *testing.T) {
	for ct := ColUnknown; ct <= ColString; ct++ {
		if ct.String() == "invalid" {
			t.Errorf("ColumnType(%d) has no name", ct)
		}
	}
}
