package values

import (
	"fmt"
	"strconv"
	"testing"
)

func TestInferWithOptions(t *testing.T) {
	// Lower dominance: a column that is 80% integers types as integer
	// only when the threshold allows.
	vals := []string{"3", "90", "417", "1200", "77", "5012", "8", "666", "oops", "huh"}
	if got := InferWith(vals, InferOptions{}); got == ColInt {
		t.Error("default dominance 0.95 should reject 80% integers")
	}
	if got := InferWith(vals, InferOptions{Dominance: 0.75}); got != ColInt {
		t.Errorf("dominance 0.75: got %v, want integer", got)
	}

	// Incremental slack: a sequence with one gap per ten values.
	var sparse []string
	for i := 0; i < 50; i++ {
		sparse = append(sparse, strconv.Itoa(i+i/10)) // skips every 11th value
	}
	if got := InferWith(sparse, InferOptions{}); got != ColInt {
		t.Errorf("default slack: got %v, want plain integer", got)
	}
	if got := InferWith(sparse, InferOptions{IncrementalSlack: 1.2}); got != ColIncrementalInt {
		t.Errorf("slack 1.2: got %v, want incremental", got)
	}
}

func TestInferLookupCategorical(t *testing.T) {
	// One row per value over a small vocabulary: categorical even with
	// uniqueness 1.0 (closed-domain lookup table).
	var vals []string
	for i := 0; i < 30; i++ {
		vals = append(vals, fmt.Sprintf("Species %02d", i))
	}
	if got := Infer(vals); got != ColCategorical {
		t.Errorf("lookup column typed %v, want categorical", got)
	}
	// Long free-form values must not qualify even at low cardinality.
	var long []string
	for i := 0; i < 30; i++ {
		long = append(long, fmt.Sprintf("A considerably longer description of record number %d", i))
	}
	if got := Infer(long); got != ColString {
		t.Errorf("long values typed %v, want string", got)
	}
	// Too many distinct values must not qualify.
	var many []string
	for i := 0; i < 90; i++ {
		many = append(many, fmt.Sprintf("V%02d", i))
	}
	if got := Infer(many); got != ColString {
		t.Errorf("90-value lookup typed %v, want string", got)
	}
}

func TestTimestampLayoutsCoverage(t *testing.T) {
	yes := []string{
		"2021-06-30T12:00:00Z",
		"06/30/2021 12:30",
		"Jan 2, 2021",
		"2 Jan 2021",
		"January 2, 2021",
		"02-Jan-2021",
	}
	for _, s := range yes {
		if !IsTimestamp(s) {
			t.Errorf("IsTimestamp(%q) = false", s)
		}
	}
}

func TestParseTimestampRejectsLongAndShort(t *testing.T) {
	if IsTimestamp("20") {
		t.Error("too short accepted")
	}
	if IsTimestamp("2020-01-01T00:00:00.000000000+00:00 extra junk") {
		t.Error("too long accepted")
	}
}

func TestKindString(t *testing.T) {
	for k := KindNull; k <= KindString; k++ {
		if k.String() == "invalid" {
			t.Errorf("Kind(%d) unnamed", k)
		}
	}
	if Kind(99).String() != "invalid" {
		t.Error("out-of-range kind")
	}
}

func TestIsNumericHelper(t *testing.T) {
	if !IsNumeric("42") || !IsNumeric("4.2") || IsNumeric("x") {
		t.Error("IsNumeric wrong")
	}
}

func TestValidThousandsEdges(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"1,234", true},
		{"-1,234", true},
		{"+12,345,678", true},
		{"1234,5", false},
		{",123", false},
		{"1,23a", false},
		{"12,3456", false},
	}
	for _, c := range cases {
		_, ok := ParseInt(c.in)
		if ok != c.ok {
			t.Errorf("ParseInt(%q) ok=%v want %v", c.in, ok, c.ok)
		}
	}
}

func TestInferUnknownDominance(t *testing.T) {
	// A half-int, half-string column is text (string), not numeric.
	vals := []string{"1", "2", "x", "y", "1", "z"}
	got := Infer(vals)
	if got.BroadClass() != "text" {
		t.Errorf("mixed column class %v", got)
	}
}
