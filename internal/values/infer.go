package values

// ColumnType is the column-level data type used throughout the study.
// It refines the scalar Kind with the column-level distinctions of
// §5.3 of the paper: integer columns whose values form an incremental
// sequence are separated from general integers, and low-cardinality
// text columns are separated from free-form strings as categorical.
type ColumnType int

// Column-level types. The zero value is ColUnknown.
const (
	ColUnknown ColumnType = iota
	ColAllNull
	ColBool
	ColIncrementalInt
	ColInt
	ColFloat
	ColTimestamp
	ColGeo
	ColCategorical
	ColString
)

var colTypeNames = [...]string{
	"unknown", "all-null", "bool", "incremental integer", "integer",
	"float", "timestamp", "geo-spatial", "categorical", "string",
}

func (t ColumnType) String() string {
	if int(t) < len(colTypeNames) {
		return colTypeNames[t]
	}
	return "invalid"
}

// IsNumeric reports whether the column type belongs to the broad
// "number" class of Table 4 (integers, incremental integers, floats).
func (t ColumnType) IsNumeric() bool {
	switch t {
	case ColIncrementalInt, ColInt, ColFloat:
		return true
	}
	return false
}

// IsText reports whether the column type belongs to the broad "text"
// class of Table 4. Following the paper's two-way split, everything
// that is not numeric and not entirely null counts as text (timestamps
// and geo-spatial values are stored as text in CSVs).
func (t ColumnType) IsText() bool {
	switch t {
	case ColBool, ColTimestamp, ColGeo, ColCategorical, ColString:
		return true
	}
	return false
}

// BroadClass returns "text", "number", or "all-null" for Table 4
// style grouping.
func (t ColumnType) BroadClass() string {
	switch {
	case t.IsNumeric():
		return "number"
	case t == ColAllNull, t == ColUnknown:
		return "all-null"
	default:
		return "text"
	}
}

// categoricalMaxUnique is the largest distinct-value count a text
// column may have and still be considered categorical. Domains like
// species, fund codes, or industries have tens of values; free-form
// strings (names, descriptions) have many more.
const categoricalMaxUnique = 100

// categoricalMaxScore is the largest uniqueness score (distinct/total)
// a text column may have and still be considered categorical: values
// must actually repeat for the column to act as a category.
const categoricalMaxScore = 0.5

// categoricalLookupMaxUnique bounds the closed-domain lookup case: a
// text column whose table has roughly one row per value (a species or
// fund-code lookup table) is a categorical domain even though nothing
// repeats within the table.
const categoricalLookupMaxUnique = 60

// InferOptions tunes column type inference.
type InferOptions struct {
	// Dominance is the fraction of non-null values that must agree with
	// a kind for the column to take that type. Defaults to 0.95.
	Dominance float64
	// IncrementalSlack is the allowed gap ratio for incremental integer
	// detection: a column is incremental if its distinct values are
	// near-contiguous, i.e. (max-min+1) <= slack * distinct. Defaults to
	// 1.05.
	IncrementalSlack float64
}

func (o InferOptions) withDefaults() InferOptions {
	if o.Dominance <= 0 {
		o.Dominance = 0.95
	}
	if o.IncrementalSlack <= 0 {
		o.IncrementalSlack = 1.05
	}
	return o
}

// Infer determines the column-level type of the given raw values using
// default options.
func Infer(vals []string) ColumnType {
	return InferWith(vals, InferOptions{})
}

// InferWith determines the column-level type of the given raw values.
//
// The procedure mirrors the study's methodology: nulls are excluded,
// then the dominant scalar kind decides the base type; integer columns
// with near-contiguous distinct values become incremental integers;
// low-cardinality repetitive text becomes categorical.
func InferWith(vals []string, opts InferOptions) ColumnType {
	// Deduplicate first so each distinct value is classified once; every
	// signal below is an aggregate over (value, multiplicity) pairs, so
	// the result is identical to classifying each cell.
	idx := make(map[string]int, 64)
	var distinct []string
	var counts []int32
	for _, v := range vals {
		if i, ok := idx[v]; ok {
			counts[i]++
			continue
		}
		idx[v] = len(distinct)
		distinct = append(distinct, v)
		counts = append(counts, 1)
	}
	return InferCounted(distinct, counts, opts)
}

// InferCounted determines the column-level type from a column's
// dictionary encoding: the distinct raw values with their
// multiplicities. It returns exactly what InferWith returns on the
// expanded column but classifies each distinct value once, which is
// what makes profiling repetitive columns cheap.
func InferCounted(distinct []string, counts []int32, opts InferOptions) ColumnType {
	opts = opts.withDefaults()

	var (
		nonNull             int
		nBool, nInt, nFloat int
		nTime, nGeo         int
		intMin, intMax      int64
		intSeen             bool
		nDistinct           int
		intDistinct         int // distinct values ParseInt accepts, for isIncremental
		sumLen              int // total length of distinct non-null values, for shortValues
	)
	for i, v := range distinct {
		mult := 1
		if counts != nil {
			mult = int(counts[i])
		}
		if mult <= 0 || IsNull(v) {
			continue
		}
		nonNull += mult
		nDistinct++
		sumLen += len(v)
		if _, ok := ParseInt(v); ok {
			intDistinct++
		}
		switch KindOf(v) {
		case KindBool:
			nBool += mult
		case KindInt:
			nInt += mult
			n, _ := ParseInt(v)
			if !intSeen || n < intMin {
				intMin = n
			}
			if !intSeen || n > intMax {
				intMax = n
			}
			intSeen = true
		case KindFloat:
			nFloat += mult
		case KindTimestamp:
			nTime += mult
		case KindGeo:
			nGeo += mult
		}
	}
	if nonNull == 0 {
		return ColAllNull
	}
	need := int(opts.Dominance * float64(nonNull))
	if need < 1 {
		need = 1
	}
	switch {
	case nBool >= need:
		return ColBool
	case nInt >= need:
		if isIncremental(intDistinct, intMin, intMax, opts.IncrementalSlack) {
			return ColIncrementalInt
		}
		return ColInt
	case nInt+nFloat >= need:
		return ColFloat
	case nTime >= need:
		return ColTimestamp
	case nGeo >= need:
		return ColGeo
	}
	// Text column: categorical if it has few distinct values that
	// repeat, or if it is the column of a closed-domain lookup table
	// (roughly one row per value over a small vocabulary).
	score := float64(nDistinct) / float64(nonNull)
	if nDistinct <= categoricalMaxUnique && score <= categoricalMaxScore {
		return ColCategorical
	}
	if nDistinct <= categoricalLookupMaxUnique && nonNull <= 2*nDistinct && nDistinct > 0 && sumLen/nDistinct <= 24 {
		return ColCategorical
	}
	return ColString
}

// isIncremental reports whether the distinct integer values are
// near-contiguous, the signature of sequential identifier columns such
// as objectid (§5.2, Anecdote 1). n is the number of distinct values
// that parse as integers; at least 3 are required.
func isIncremental(n int, min, max int64, slack float64) bool {
	if n < 3 {
		return false
	}
	span := max - min + 1
	if span <= 0 { // overflow guard
		return false
	}
	return float64(span) <= slack*float64(n)
}
