// Package classify reproduces the paper's §5.3 usefulness study: the
// stratified sampling of joinable pairs (size buckets × key-combination
// buckets, same-schema pairs removed), labeling through a ground-truth
// oracle, the aggregation into Tables 7–10, and a signal-based
// predictor built from the paper's observations.
package classify

// Label is the paper's three-way annotation of a joinable pair.
type Label int

// Labels from §5.3.2.
const (
	// LabelUnknown means the oracle could not decide; such pairs are
	// excluded from the aggregates.
	LabelUnknown Label = iota
	// LabelUAcc: unrelated tables, accidental join (clear false
	// positive across domains).
	LabelUAcc
	// LabelRAcc: related tables, but the join output has no clear
	// interpretation.
	LabelRAcc
	// LabelUseful: the join output has a clear interpretation.
	LabelUseful
)

var labelNames = [...]string{"unknown", "U-Acc", "R-Acc", "useful"}

func (l Label) String() string {
	if int(l) < len(labelNames) {
		return labelNames[l]
	}
	return "invalid"
}

// Accidental reports whether the label is one of the accidental kinds.
func (l Label) Accidental() bool { return l == LabelUAcc || l == LabelRAcc }
