package classify

import (
	"math/rand"

	"ogdp/internal/join"
	"ogdp/internal/table"
	"ogdp/internal/values"
)

// JoinOracle supplies ground-truth labels for joinable pairs; in this
// repository the generator's provenance oracle (gen.Truth) plays the
// role of the paper's human annotators.
type JoinOracle interface {
	LabelJoin(p join.Pair) Label
}

// UnionOracle labels unionable table pairs.
type UnionOracle interface {
	LabelUnion(t1, t2 int) Label
}

// KeyCombo is the key/non-key combination of a join pair (§5.3.1).
type KeyCombo int

// Key combinations.
const (
	KeyKey KeyCombo = iota
	KeyNonkey
	NonkeyNonkey
)

var keyComboNames = [...]string{"key-key", "key-nonkey", "nonkey-nonkey"}

func (k KeyCombo) String() string {
	if int(k) < len(keyComboNames) {
		return keyComboNames[k]
	}
	return "invalid"
}

// ComboOf classifies a pair by its join columns' keyness.
func ComboOf(p join.Pair) KeyCombo {
	switch {
	case p.Key1 && p.Key2:
		return KeyKey
	case p.Key1 || p.Key2:
		return KeyNonkey
	default:
		return NonkeyNonkey
	}
}

// SizeBucket is the paper's T1 row-count bucket.
type SizeBucket int

// Size buckets: (10,100), [100,1000), >= 1000.
const (
	SizeSmall SizeBucket = iota
	SizeMedium
	SizeLarge
)

var sizeBucketNames = [...]string{"(10,100)", "[100,1000)", ">=1000"}

func (s SizeBucket) String() string {
	if int(s) < len(sizeBucketNames) {
		return sizeBucketNames[s]
	}
	return "invalid"
}

// bucketOf returns the bucket for a table with n rows, or ok=false for
// tables of 10 rows or fewer (excluded by the methodology).
func bucketOf(n int) (SizeBucket, bool) {
	switch {
	case n <= 10:
		return 0, false
	case n < 100:
		return SizeSmall, true
	case n < 1000:
		return SizeMedium, true
	default:
		return SizeLarge, true
	}
}

// JoinTypeGroup is the Table 10 data type grouping of a join column.
func JoinTypeGroup(t values.ColumnType) string {
	switch t {
	case values.ColIncrementalInt:
		return "incremental integer"
	case values.ColInt, values.ColFloat:
		return "integer"
	case values.ColCategorical, values.ColBool:
		return "categorical"
	case values.ColTimestamp:
		return "timestamp"
	case values.ColGeo:
		return "geo-spatial"
	default:
		return "string"
	}
}

// JoinTypeGroups lists the Table 10 groups in the paper's order.
var JoinTypeGroups = []string{
	"incremental integer", "categorical", "integer", "string",
	"timestamp", "geo-spatial",
}

// SampledPair is one annotated sample.
type SampledPair struct {
	Pair join.Pair
	// Bucket is the sampled T1's size bucket.
	Bucket SizeBucket
	// Combo is the key/non-key combination.
	Combo KeyCombo
	// IntraDataset reports whether both tables share a dataset.
	IntraDataset bool
	// TypeGroup is the Table 10 data type group of the join columns.
	TypeGroup string
	// Label is the oracle's annotation.
	Label Label
}

// SampleOptions tunes SampleJoinPairs.
type SampleOptions struct {
	// PerCell is the target number of samples per (bucket × combo)
	// cell; the paper used ~17 (≈ 50 per bucket, 150 per portal).
	PerCell int
	// MaxAttempts bounds the sampling loop; 0 means 200 × the total
	// target.
	MaxAttempts int
}

// SampleJoinPairs reproduces the paper's stratified sampling (§5.3.1):
// T1 uniform over joinable tables, c1 uniform over T1's joinable
// columns, T2 uniform over partners (taking the partner's
// highest-overlap column), same-schema pairs removed, with equal
// quotas per size bucket × key combination. Cells that the corpus
// cannot fill (e.g. no large nonkey-nonkey pairs) are left short.
func SampleJoinPairs(tables []*table.Table, pairs []join.Pair, oracle JoinOracle, opts SampleOptions, rng *rand.Rand) []SampledPair {
	if opts.PerCell <= 0 {
		opts.PerCell = 17
	}
	target := opts.PerCell * 9
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 200 * target
	}

	// Index joinable columns per table and partners per column.
	type colKey struct{ t, c int }
	partners := map[colKey][]join.Pair{}
	colsOf := map[int][]int{}
	seenCol := map[colKey]bool{}
	var joinableTables []int
	seenTable := map[int]bool{}
	for _, p := range pairs {
		a := colKey{p.T1, p.C1}
		b := colKey{p.T2, p.C2}
		partners[a] = append(partners[a], p)
		partners[b] = append(partners[b], p)
		for _, k := range []colKey{a, b} {
			if !seenCol[k] {
				seenCol[k] = true
				colsOf[k.t] = append(colsOf[k.t], k.c)
			}
			if !seenTable[k.t] {
				seenTable[k.t] = true
				joinableTables = append(joinableTables, k.t)
			}
		}
	}
	if len(joinableTables) == 0 {
		return nil
	}

	quota := map[[2]int]int{}
	used := map[[4]int]bool{}
	var out []SampledPair

	for attempt := 0; attempt < opts.MaxAttempts && len(out) < target; attempt++ {
		t1 := joinableTables[rng.Intn(len(joinableTables))]
		bucket, ok := bucketOf(tables[t1].NumRows())
		if !ok {
			continue
		}
		cols := colsOf[t1]
		c1 := cols[rng.Intn(len(cols))]
		cands := partners[colKey{t1, c1}]
		if len(cands) == 0 {
			continue
		}
		// Group candidates by partner table; per table keep the
		// highest-overlap column.
		best := map[int]join.Pair{}
		var partnerTables []int
		for _, p := range cands {
			pt := p.T1
			if pt == t1 {
				pt = p.T2
			}
			if cur, ok := best[pt]; !ok || p.Jaccard > cur.Jaccard {
				if !ok {
					partnerTables = append(partnerTables, pt)
				}
				best[pt] = p
			}
		}
		t2 := partnerTables[rng.Intn(len(partnerTables))]
		p := best[t2]
		// Same-schema pairs are covered by the unionability analysis.
		if tables[p.T1].SchemaKey() == tables[p.T2].SchemaKey() {
			continue
		}
		combo := ComboOf(p)
		cell := [2]int{int(bucket), int(combo)}
		if quota[cell] >= opts.PerCell {
			continue
		}
		key := [4]int{p.T1, p.C1, p.T2, p.C2}
		if used[key] {
			continue
		}
		used[key] = true
		quota[cell]++

		sp := SampledPair{
			Pair:         p,
			Bucket:       bucket,
			Combo:        combo,
			IntraDataset: tables[p.T1].DatasetID != "" && tables[p.T1].DatasetID == tables[p.T2].DatasetID,
			TypeGroup:    JoinTypeGroup(tables[p.T1].Profile(p.C1).Type),
		}
		if oracle != nil {
			sp.Label = oracle.LabelJoin(p)
		}
		out = append(out, sp)
	}
	return out
}

// LabelDist is one row of Tables 7–10: the distribution of labels in a
// group of samples.
type LabelDist struct {
	Group  string
	N      int
	UAcc   float64
	RAcc   float64
	Useful float64
}

// Accidental is the total accidental fraction.
func (d LabelDist) Accidental() float64 { return d.UAcc + d.RAcc }

func distOf(group string, samples []SampledPair) LabelDist {
	d := LabelDist{Group: group}
	for _, s := range samples {
		switch s.Label {
		case LabelUAcc:
			d.UAcc++
		case LabelRAcc:
			d.RAcc++
		case LabelUseful:
			d.Useful++
		default:
			continue
		}
		d.N++
	}
	if d.N > 0 {
		d.UAcc /= float64(d.N)
		d.RAcc /= float64(d.N)
		d.Useful /= float64(d.N)
	}
	return d
}

// Overall aggregates all samples (Table 7).
func Overall(samples []SampledPair) LabelDist { return distOf("all", samples) }

// ByDatasetLocality aggregates per inter/intra dataset (Table 8),
// returned as [inter, intra].
func ByDatasetLocality(samples []SampledPair) [2]LabelDist {
	var inter, intra []SampledPair
	for _, s := range samples {
		if s.IntraDataset {
			intra = append(intra, s)
		} else {
			inter = append(inter, s)
		}
	}
	return [2]LabelDist{distOf("inter", inter), distOf("intra", intra)}
}

// ByKeyCombo aggregates per key combination (Table 9), indexed by
// KeyCombo.
func ByKeyCombo(samples []SampledPair) [3]LabelDist {
	var groups [3][]SampledPair
	for _, s := range samples {
		groups[s.Combo] = append(groups[s.Combo], s)
	}
	var out [3]LabelDist
	for i := range groups {
		out[i] = distOf(KeyCombo(i).String(), groups[i])
	}
	return out
}

// ByTypeGroup aggregates per join-column data type (Table 10), in
// JoinTypeGroups order.
func ByTypeGroup(samples []SampledPair) []LabelDist {
	groups := map[string][]SampledPair{}
	for _, s := range samples {
		groups[s.TypeGroup] = append(groups[s.TypeGroup], s)
	}
	out := make([]LabelDist, 0, len(JoinTypeGroups))
	for _, g := range JoinTypeGroups {
		out = append(out, distOf(g, groups[g]))
	}
	return out
}

// BySizeBucket aggregates per T1 size bucket (the supplementary
// analysis the paper reports finding no clear correlation in).
func BySizeBucket(samples []SampledPair) [3]LabelDist {
	var groups [3][]SampledPair
	for _, s := range samples {
		groups[s.Bucket] = append(groups[s.Bucket], s)
	}
	var out [3]LabelDist
	for i := range groups {
		out[i] = distOf(SizeBucket(i).String(), groups[i])
	}
	return out
}
