package classify

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"ogdp/internal/join"
	"ogdp/internal/table"
	"ogdp/internal/union"
	"ogdp/internal/values"
)

// fixedOracle labels by a map of (t1,c1,t2,c2).
type fixedOracle map[[4]int]Label

func (o fixedOracle) LabelJoin(p join.Pair) Label {
	if l, ok := o[[4]int{p.T1, p.C1, p.T2, p.C2}]; ok {
		return l
	}
	return LabelUAcc
}

// corpus builds tables with controlled joinability: n tables sharing a
// key column domain 1..30 plus a payload.
func corpus(n int, rows int) []*table.Table {
	var out []*table.Table
	for i := 0; i < n; i++ {
		t := table.New(fmt.Sprintf("t%d.csv", i), []string{"id", fmt.Sprintf("payload%d", i)})
		t.DatasetID = fmt.Sprintf("ds%d", i/2) // two tables per dataset
		for r := 0; r < rows; r++ {
			t.AppendRow([]string{strconv.Itoa(r + 1), fmt.Sprintf("p%d-%d", i, r)})
		}
		out = append(out, t)
	}
	return out
}

func TestComboOf(t *testing.T) {
	cases := []struct {
		p    join.Pair
		want KeyCombo
	}{
		{join.Pair{Key1: true, Key2: true}, KeyKey},
		{join.Pair{Key1: true}, KeyNonkey},
		{join.Pair{Key2: true}, KeyNonkey},
		{join.Pair{}, NonkeyNonkey},
	}
	for _, c := range cases {
		if got := ComboOf(c.p); got != c.want {
			t.Errorf("ComboOf(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		n    int
		want SizeBucket
		ok   bool
	}{
		{5, 0, false}, {10, 0, false}, {11, SizeSmall, true}, {99, SizeSmall, true},
		{100, SizeMedium, true}, {999, SizeMedium, true}, {1000, SizeLarge, true},
	}
	for _, c := range cases {
		got, ok := bucketOf(c.n)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("bucketOf(%d) = (%v, %v)", c.n, got, ok)
		}
	}
}

func TestJoinTypeGroup(t *testing.T) {
	cases := []struct {
		t    values.ColumnType
		want string
	}{
		{values.ColIncrementalInt, "incremental integer"},
		{values.ColInt, "integer"},
		{values.ColFloat, "integer"},
		{values.ColCategorical, "categorical"},
		{values.ColString, "string"},
		{values.ColTimestamp, "timestamp"},
		{values.ColGeo, "geo-spatial"},
	}
	for _, c := range cases {
		if got := JoinTypeGroup(c.t); got != c.want {
			t.Errorf("JoinTypeGroup(%v) = %q", c.t, got)
		}
	}
}

func TestSampleJoinPairs(t *testing.T) {
	tables := corpus(10, 50)
	pairs := join.Find(tables, join.Options{}).Pairs
	if len(pairs) == 0 {
		t.Fatal("no pairs in synthetic corpus")
	}
	oracle := fixedOracle{}
	rng := rand.New(rand.NewSource(5))
	samples := SampleJoinPairs(tables, pairs, oracle, SampleOptions{PerCell: 3}, rng)
	if len(samples) == 0 {
		t.Fatal("no samples drawn")
	}
	// All tables have the same schema pairwise? No: payload column names
	// differ, so schemas differ and pairs survive. Verify fields are
	// populated and no duplicates.
	seen := map[[4]int]bool{}
	for _, s := range samples {
		k := [4]int{s.Pair.T1, s.Pair.C1, s.Pair.T2, s.Pair.C2}
		if seen[k] {
			t.Error("duplicate sample")
		}
		seen[k] = true
		if s.Bucket != SizeSmall {
			t.Errorf("bucket = %v for 50-row tables", s.Bucket)
		}
		if s.Combo != KeyKey {
			t.Errorf("combo = %v for key-key corpus", s.Combo)
		}
	}
}

func TestSampleExcludesSameSchema(t *testing.T) {
	// Identical schemas: every pair must be filtered out.
	var tables []*table.Table
	for i := 0; i < 4; i++ {
		tb := table.New(fmt.Sprintf("t%d.csv", i), []string{"id", "v"})
		for r := 0; r < 40; r++ {
			tb.AppendRow([]string{strconv.Itoa(r + 1), "x"})
		}
		tables = append(tables, tb)
	}
	pairs := join.Find(tables, join.Options{}).Pairs
	if len(pairs) == 0 {
		t.Fatal("expected joinable pairs")
	}
	samples := SampleJoinPairs(tables, pairs, fixedOracle{}, SampleOptions{PerCell: 2, MaxAttempts: 1000}, rand.New(rand.NewSource(1)))
	if len(samples) != 0 {
		t.Errorf("same-schema pairs sampled: %d", len(samples))
	}
}

func TestSampleQuotaRespected(t *testing.T) {
	tables := corpus(20, 50)
	pairs := join.Find(tables, join.Options{}).Pairs
	samples := SampleJoinPairs(tables, pairs, fixedOracle{}, SampleOptions{PerCell: 2}, rand.New(rand.NewSource(2)))
	counts := map[[2]int]int{}
	for _, s := range samples {
		counts[[2]int{int(s.Bucket), int(s.Combo)}]++
	}
	for cell, n := range counts {
		if n > 2 {
			t.Errorf("cell %v has %d samples, quota 2", cell, n)
		}
	}
}

func TestAggregations(t *testing.T) {
	samples := []SampledPair{
		{Label: LabelUAcc, Combo: KeyKey, Bucket: SizeSmall, IntraDataset: false, TypeGroup: "integer"},
		{Label: LabelRAcc, Combo: KeyNonkey, Bucket: SizeMedium, IntraDataset: true, TypeGroup: "categorical"},
		{Label: LabelUseful, Combo: KeyKey, Bucket: SizeSmall, IntraDataset: true, TypeGroup: "categorical"},
		{Label: LabelUseful, Combo: NonkeyNonkey, Bucket: SizeLarge, IntraDataset: false, TypeGroup: "string"},
	}
	all := Overall(samples)
	if all.N != 4 || all.Useful != 0.5 || all.Accidental() != 0.5 {
		t.Errorf("overall = %+v", all)
	}
	loc := ByDatasetLocality(samples)
	if loc[0].N != 2 || loc[1].N != 2 {
		t.Errorf("locality = %+v", loc)
	}
	if loc[1].Useful != 0.5 {
		t.Errorf("intra useful = %g", loc[1].Useful)
	}
	combos := ByKeyCombo(samples)
	if combos[KeyKey].N != 2 || combos[KeyKey].Useful != 0.5 {
		t.Errorf("key-key = %+v", combos[KeyKey])
	}
	types := ByTypeGroup(samples)
	foundCat := false
	for _, d := range types {
		if d.Group == "categorical" {
			foundCat = true
			if d.N != 2 || d.Useful != 0.5 {
				t.Errorf("categorical = %+v", d)
			}
		}
	}
	if !foundCat {
		t.Error("categorical group missing")
	}
	buckets := BySizeBucket(samples)
	if buckets[SizeSmall].N != 2 {
		t.Errorf("size buckets = %+v", buckets)
	}
}

func TestLabelString(t *testing.T) {
	if LabelUAcc.String() != "U-Acc" || LabelUseful.String() != "useful" {
		t.Error("label names wrong")
	}
	if !LabelRAcc.Accidental() || LabelUseful.Accidental() {
		t.Error("Accidental() wrong")
	}
}

func TestPredictor(t *testing.T) {
	tables := corpus(4, 50)
	pairs := join.Find(tables, join.Options{}).Pairs
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	p := Predictor{}
	// id columns are incremental integers: the predictor must reject.
	for _, pr := range pairs {
		if p.Predict(tables, pr) {
			t.Errorf("incremental integer pair predicted useful: %+v", pr)
		}
	}
	// A categorical key-key same-dataset pair should be accepted.
	a := table.New("a.csv", []string{"species"})
	b := table.New("b.csv", []string{"species"})
	a.DatasetID, b.DatasetID = "d", "d"
	for i := 0; i < 30; i++ {
		v := fmt.Sprintf("Species %c%d", 'A'+i%26, i)
		a.AppendRow([]string{v})
		b.AppendRow([]string{v})
	}
	pr := join.Find([]*table.Table{a, b}, join.Options{}).Pairs
	if len(pr) != 1 {
		t.Fatal("expected one pair")
	}
	if !p.Predict([]*table.Table{a, b}, pr[0]) {
		t.Errorf("string key-key same-dataset pair rejected: %+v", pr[0])
	}
}

func TestPredictorEvaluate(t *testing.T) {
	tables := corpus(4, 50)
	samples := []SampledPair{
		{Pair: join.Pair{T1: 0, C1: 0, T2: 1, C2: 0, Key1: true, Key2: true}, Label: LabelUseful},
		{Pair: join.Pair{T1: 2, C1: 0, T2: 3, C2: 0, Key1: true, Key2: true}, Label: LabelUAcc},
	}
	e := Predictor{}.Evaluate(tables, samples)
	if e.TP+e.FP+e.TN+e.FN != 2 {
		t.Errorf("evaluation counts = %+v", e)
	}
	be := BaselineOverlapOnly{}.Evaluate(tables, samples)
	if be.Precision() != 0.5 {
		t.Errorf("baseline precision = %g", be.Precision())
	}
	var zero Evaluation
	if zero.Precision() != 0 || zero.Recall() != 0 {
		t.Error("zero evaluation division")
	}
}

type fixedUnionOracle struct{}

func (fixedUnionOracle) LabelUnion(t1, t2 int) Label {
	if t1%2 == 0 {
		return LabelUseful
	}
	return LabelUAcc
}

func TestSampleUnionPairs(t *testing.T) {
	var tables []*table.Table
	for i := 0; i < 6; i++ {
		tb := table.FromRows(fmt.Sprintf("t%d", i), []string{"year", "value"}, [][]string{{"2020", "1.5"}})
		tb.DatasetID = fmt.Sprintf("d%d", i%3)
		tables = append(tables, tb)
	}
	ua := union.Find(tables)
	samples := SampleUnionPairs(ua, fixedUnionOracle{}, 5, rand.New(rand.NewSource(3)))
	if len(samples) == 0 {
		t.Fatal("no union samples")
	}
	for _, s := range samples {
		if s.T1 >= s.T2 {
			t.Error("unordered sample")
		}
	}
	d := UnionLabelDist(samples)
	if d.N != len(samples) {
		t.Errorf("dist N = %d", d.N)
	}
	if got := SampleUnionPairs(&union.Analysis{}, nil, 5, rand.New(rand.NewSource(1))); got != nil {
		t.Error("empty analysis should produce no samples")
	}
}
