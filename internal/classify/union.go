package classify

import (
	"math/rand"

	"ogdp/internal/union"
)

// SampledUnionPair is one annotated unionable pair (§6).
type SampledUnionPair struct {
	T1, T2        int
	SingleDataset bool
	Label         Label
}

// SampleUnionPairs reproduces the paper's union sampling: pick a
// shared schema uniformly at random, then a pair of its tables
// uniformly at random; n pairs total (the paper used 25 per portal).
func SampleUnionPairs(a *union.Analysis, oracle UnionOracle, n int, rng *rand.Rand) []SampledUnionPair {
	if len(a.Groups) == 0 || n <= 0 {
		return nil
	}
	used := map[[2]int]bool{}
	var out []SampledUnionPair
	for attempt := 0; attempt < n*50 && len(out) < n; attempt++ {
		g := a.Groups[rng.Intn(len(a.Groups))]
		i := rng.Intn(len(g.Tables))
		j := rng.Intn(len(g.Tables))
		if i == j {
			continue
		}
		t1, t2 := g.Tables[i], g.Tables[j]
		if t2 < t1 {
			t1, t2 = t2, t1
		}
		if used[[2]int{t1, t2}] {
			continue
		}
		used[[2]int{t1, t2}] = true
		sp := SampledUnionPair{
			T1: t1, T2: t2,
			SingleDataset: a.Tables[t1].DatasetID == a.Tables[t2].DatasetID,
		}
		if oracle != nil {
			sp.Label = oracle.LabelUnion(t1, t2)
		}
		out = append(out, sp)
	}
	return out
}

// UnionLabelDist aggregates union sample labels.
func UnionLabelDist(samples []SampledUnionPair) LabelDist {
	d := LabelDist{Group: "union"}
	for _, s := range samples {
		switch s.Label {
		case LabelUAcc:
			d.UAcc++
		case LabelRAcc:
			d.RAcc++
		case LabelUseful:
			d.Useful++
		default:
			continue
		}
		d.N++
	}
	if d.N > 0 {
		d.UAcc /= float64(d.N)
		d.RAcc /= float64(d.N)
		d.Useful /= float64(d.N)
	}
	return d
}
