package classify

import (
	"ogdp/internal/join"
	"ogdp/internal/stats"
	"ogdp/internal/table"
)

// Predictor implements the filtering the paper's summary of §5.3
// recommends for data integration systems: complement value overlap
// with non-value signals — prefer intra-dataset pairs, joins involving
// key columns, data types other than incremental integers, and small
// join expansions.
type Predictor struct {
	// MaxExpansion rejects pairs whose join would grow beyond this
	// ratio; the paper observes useful joins rarely exceed ~1.5.
	// Defaults to 2.
	MaxExpansion float64
	// RequireSameDataset restricts predictions to intra-dataset pairs.
	RequireSameDataset bool
}

// Predict reports whether the pair is likely a useful join.
func (p Predictor) Predict(tables []*table.Table, pr join.Pair) bool {
	maxExp := p.MaxExpansion
	if stats.ApproxEq(maxExp, 0) {
		maxExp = 2
	}
	if pr.Expansion > maxExp {
		return false
	}
	t1 := tables[pr.T1]
	t2 := tables[pr.T2]
	sameDataset := t1.DatasetID != "" && t1.DatasetID == t2.DatasetID
	if p.RequireSameDataset && !sameDataset {
		return false
	}
	typ := JoinTypeGroup(t1.Profile(pr.C1).Type)
	if typ == "incremental integer" {
		return false
	}
	// At least one key column, or an intra-dataset pair on a
	// non-incremental type.
	if pr.Key1 || pr.Key2 {
		return sameDataset || typ == "categorical" || typ == "timestamp" || typ == "geo-spatial"
	}
	return sameDataset && typ == "categorical"
}

// Evaluation summarizes a predictor against oracle labels.
type Evaluation struct {
	TP, FP, TN, FN int
}

// Precision of the useful class.
func (e Evaluation) Precision() float64 {
	if e.TP+e.FP == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FP)
}

// Recall of the useful class.
func (e Evaluation) Recall() float64 {
	if e.TP+e.FN == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FN)
}

// Evaluate scores the predictor on annotated samples.
func (p Predictor) Evaluate(tables []*table.Table, samples []SampledPair) Evaluation {
	var e Evaluation
	for _, s := range samples {
		pred := p.Predict(tables, s.Pair)
		actual := s.Label == LabelUseful
		switch {
		case pred && actual:
			e.TP++
		case pred && !actual:
			e.FP++
		case !pred && actual:
			e.FN++
		default:
			e.TN++
		}
	}
	return e
}

// BaselineOverlapOnly is the paper's straw man: trust value overlap
// alone and call every high-overlap pair useful.
type BaselineOverlapOnly struct{}

// Predict always returns true (every candidate pair already passed the
// 0.9 overlap threshold).
func (BaselineOverlapOnly) Predict([]*table.Table, join.Pair) bool { return true }

// Evaluate scores the baseline on annotated samples.
func (b BaselineOverlapOnly) Evaluate(tables []*table.Table, samples []SampledPair) Evaluation {
	var e Evaluation
	for _, s := range samples {
		if s.Label == LabelUseful {
			e.TP++
		} else {
			e.FP++
		}
	}
	return e
}
