package normalize

import "testing"

func TestSchemaNameSimilarity(t *testing.T) {
	for _, tc := range []struct {
		name     string
		a, b     []string
		min, max float64
	}{
		{"identical", []string{"species_id", "region"}, []string{"species_id", "region"}, 1, 1},
		{"case and separators fold", []string{"Species_ID"}, []string{"species id"}, 1, 1},
		{"numeric suffixes dropped", []string{"count_2019"}, []string{"count_2020"}, 1, 1},
		{"disjoint", []string{"species", "region"}, []string{"budget", "fund"}, 0, 0},
		{"partial overlap", []string{"station_id", "name"}, []string{"station_id", "count"}, 0.5, 0.5},
		{"empty side", nil, []string{"a"}, 0, 0},
		{"purely numeric names", []string{"2019"}, []string{"2019"}, 0, 0},
	} {
		got := SchemaNameSimilarity(tc.a, tc.b)
		if got < tc.min || got > tc.max {
			t.Errorf("%s: SchemaNameSimilarity(%v, %v) = %v, want in [%v, %v]",
				tc.name, tc.a, tc.b, got, tc.min, tc.max)
		}
	}
}

func TestSchemaNameSimilaritySymmetric(t *testing.T) {
	a := []string{"species_id", "landed_weight", "year"}
	b := []string{"species", "weight_kg"}
	x := SchemaNameSimilarity(a, b)
	y := SchemaNameSimilarity(b, a)
	if x < y || x > y {
		t.Errorf("not symmetric: %v vs %v", x, y)
	}
}
