// Package normalize decomposes tables with non-trivial functional
// dependencies into Boyce-Codd normal form, reproducing the paper's
// §4.3 analysis: the textbook BCNF algorithm, picking one remaining
// non-trivial FD X → A uniformly at random, splitting the table into
// T1 = X ∪ A and T2 = X ∪ (attr(T) \ A), and recursing until every
// sub-table is in BCNF. The package also measures the decomposition's
// effect on uniqueness scores (Table 5).
package normalize

import (
	"math/rand"

	"ogdp/internal/fd"
	"ogdp/internal/stats"
	"ogdp/internal/table"
)

// Result describes one BCNF decomposition.
type Result struct {
	// Original is the input table.
	Original *table.Table
	// Tables is the final decomposition; a single entry means the
	// original was already in BCNF.
	Tables []*table.Table
	// Steps is the number of decomposition steps performed.
	Steps int
	// originalCols maps final sub-table columns back to the original
	// column indices, parallel to Tables.
	originalCols [][]int
}

// InBCNF reports whether the original table was already in BCNF (with
// respect to FDs of bounded LHS size).
func (r *Result) InBCNF() bool { return len(r.Tables) == 1 && r.Steps == 0 }

// maxDepth caps the recursion as a safety net; the textbook algorithm
// terminates on its own because both sub-tables are strictly narrower.
const maxDepth = 64

// Decompose runs the BCNF decomposition of t using FDs with
// |LHS| ≤ maxLHS. The rng drives the uniformly random FD choice of the
// paper's methodology; it must not be nil.
func Decompose(t *table.Table, maxLHS int, rng *rand.Rand) *Result {
	res := &Result{Original: t}
	allCols := make([]int, t.NumCols())
	for i := range allCols {
		allCols[i] = i
	}
	type work struct {
		t    *table.Table
		orig []int // orig[i]: original column index of column i
	}
	stack := []work{{t: t, orig: allCols}}
	for depth := 0; len(stack) > 0 && depth < maxDepth; depth++ {
		var next []work
		for _, w := range stack {
			fds := fd.Discover(w.t, maxLHS)
			if len(fds) == 0 {
				res.Tables = append(res.Tables, w.t)
				res.originalCols = append(res.originalCols, w.orig)
				continue
			}
			chosen := fds[rng.Intn(len(fds))]
			t1, t2, o1, o2 := split(w.t, w.orig, chosen)
			res.Steps++
			next = append(next, work{t: t1, orig: o1}, work{t: t2, orig: o2})
		}
		stack = next
	}
	// Flush anything left if the safety cap was hit.
	for _, w := range stack {
		res.Tables = append(res.Tables, w.t)
		res.originalCols = append(res.originalCols, w.orig)
	}
	return res
}

// split applies one decomposition step for FD X → A:
// T1 = π_{X∪A}(T) and T2 = π_{X∪(attr\A)}(T), both deduplicated.
func split(t *table.Table, orig []int, f fd.FD) (t1, t2 *table.Table, o1, o2 []int) {
	var cols1, cols2 []int
	cols1 = append(cols1, f.LHS...)
	cols1 = append(cols1, f.RHS)
	for c := 0; c < t.NumCols(); c++ {
		if c != f.RHS {
			cols2 = append(cols2, c)
		}
	}
	t1 = dedupe(t.Project(cols1))
	t2 = dedupe(t.Project(cols2))
	for _, c := range cols1 {
		o1 = append(o1, orig[c])
	}
	for _, c := range cols2 {
		o2 = append(o2, orig[c])
	}
	return t1, t2, o1, o2
}

// dedupe returns a copy of t with duplicate rows removed (projection
// semantics). Rows are grouped by their canonical-code hashes and kept
// in first-seen order.
func dedupe(t *table.Table) *table.Table {
	n := t.NumRows()
	hashes := t.RowHashes(allIndices(t.NumCols()))
	seen := make(map[uint64]struct{}, n)
	keep := make([]int, 0, n/2+1)
	for r := 0; r < n; r++ {
		if _, ok := seen[hashes[r]]; ok {
			continue
		}
		seen[hashes[r]] = struct{}{}
		keep = append(keep, r)
	}
	return t.SelectRows(keep)
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// UniquenessGain computes the paper's "avg uniqueness score increase
// for unrepeated columns": for every original column that appears in
// exactly one final sub-table, the ratio of its uniqueness score after
// decomposition to its score before, averaged. Returns 1 when the
// table was already in BCNF or no column qualifies.
func (r *Result) UniquenessGain() float64 {
	if r.InBCNF() {
		return 1
	}
	// Count appearances of each original column across sub-tables.
	appear := make(map[int]int)
	where := make(map[int][2]int) // original col -> (table idx, col idx)
	for ti, cols := range r.originalCols {
		for ci, oc := range cols {
			appear[oc]++
			where[oc] = [2]int{ti, ci}
		}
	}
	var sum float64
	var n int
	for oc, cnt := range appear {
		if cnt != 1 {
			continue // repeated column (an FD LHS): excluded by the paper
		}
		before := r.Original.Profile(oc).Uniqueness()
		if stats.ApproxEq(before, 0) {
			continue
		}
		loc := where[oc]
		after := r.Tables[loc[0]].Profile(loc[1]).Uniqueness()
		sum += after / before
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
