package normalize

import (
	"sort"

	"ogdp/internal/fd"
	"ogdp/internal/table"
)

// ThreeNFResult is the outcome of 3NF synthesis.
type ThreeNFResult struct {
	// Original is the input table.
	Original *table.Table
	// Tables is the synthesized decomposition (deduplicated rows).
	Tables []*table.Table
	// Cover is the minimal cover the synthesis used.
	Cover []fd.FD
	// Key is a candidate key of the original schema with respect to
	// the discovered FDs; a relation containing it is added when no
	// synthesized relation does (losslessness).
	Key []int
	// KeyAdded reports whether the key relation had to be added.
	KeyAdded bool
}

// Synthesize3NF decomposes t into third normal form with the textbook
// synthesis algorithm: compute a minimal cover of the discovered FDs
// (|LHS| ≤ maxLHS), create one relation per left-hand side with all
// its dependents, add a candidate-key relation if none contains one,
// and drop subsumed relations. Unlike the paper's BCNF procedure
// (Decompose), synthesis is dependency-preserving: every discovered FD
// is checkable within a single sub-table. The two procedures together
// frame the paper's observation that published tables are pre-joined —
// 3NF synthesis recovers the base tables without losing constraints.
func Synthesize3NF(t *table.Table, maxLHS int) *ThreeNFResult {
	res := &ThreeNFResult{Original: t}
	fds := fd.Discover(t, maxLHS)
	if len(fds) == 0 {
		res.Tables = []*table.Table{t}
		return res
	}
	cover := minimalCover(fds, t.NumCols())
	res.Cover = cover

	// Group the cover by LHS.
	type group struct {
		lhs   []int
		attrs map[int]bool
	}
	groups := map[string]*group{}
	keyOf := func(lhs []int) string {
		k := ""
		for _, a := range lhs {
			k += string(rune('A' + a))
		}
		return k
	}
	for _, f := range cover {
		k := keyOf(f.LHS)
		g := groups[k]
		if g == nil {
			g = &group{lhs: f.LHS, attrs: map[int]bool{}}
			for _, a := range f.LHS {
				g.attrs[a] = true
			}
			groups[k] = g
		}
		g.attrs[f.RHS] = true
	}

	// Candidate key of the schema under the cover.
	res.Key = candidateKey(cover, t.NumCols())

	// Materialize relations (sorted for determinism), dropping those
	// subsumed by another.
	var schemas [][]int
	var gkeys []string
	for k := range groups {
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)
	for _, k := range gkeys {
		schemas = append(schemas, sortedAttrs(groups[k].attrs))
	}
	// Key relation if no schema contains the key.
	hasKey := false
	for _, s := range schemas {
		if containsAll(s, res.Key) {
			hasKey = true
			break
		}
	}
	if !hasKey {
		schemas = append(schemas, append([]int(nil), res.Key...))
		res.KeyAdded = true
	}
	schemas = dropSubsumed(schemas)

	for _, s := range schemas {
		res.Tables = append(res.Tables, dedupe(t.Project(s)))
	}
	return res
}

// minimalCover left-reduces each FD and removes redundant FDs.
func minimalCover(fds []fd.FD, nCols int) []fd.FD {
	cover := append([]fd.FD(nil), fds...)

	// Left-reduce: drop extraneous LHS attributes.
	for i := range cover {
		lhs := append([]int(nil), cover[i].LHS...)
		changed := true
		for changed {
			changed = false
			for j := 0; j < len(lhs); j++ {
				reduced := append(append([]int(nil), lhs[:j]...), lhs[j+1:]...)
				if inClosure(reduced, cover[i].RHS, cover, nCols) {
					lhs = reduced
					changed = true
					break
				}
			}
		}
		cover[i].LHS = lhs
	}

	// Remove redundant FDs: f is redundant when cover \ {f} implies it.
	for i := 0; i < len(cover); i++ {
		rest := append(append([]fd.FD(nil), cover[:i]...), cover[i+1:]...)
		if inClosure(cover[i].LHS, cover[i].RHS, rest, nCols) {
			cover = rest
			i--
		}
	}
	return cover
}

// inClosure reports whether rhs ∈ closure(lhs) under fds.
func inClosure(lhs []int, rhs int, fds []fd.FD, nCols int) bool {
	closure := make([]bool, nCols)
	for _, a := range lhs {
		closure[a] = true
	}
	changed := true
	for changed {
		changed = false
		for _, f := range fds {
			if closure[f.RHS] {
				continue
			}
			all := true
			for _, a := range f.LHS {
				if !closure[a] {
					all = false
					break
				}
			}
			if all {
				closure[f.RHS] = true
				changed = true
			}
		}
	}
	return closure[rhs]
}

// candidateKey finds a minimal attribute set whose closure is the full
// schema, by shrinking from all attributes.
func candidateKey(fds []fd.FD, nCols int) []int {
	key := make([]int, nCols)
	for i := range key {
		key[i] = i
	}
	for i := 0; i < len(key); {
		reduced := append(append([]int(nil), key[:i]...), key[i+1:]...)
		if closureIsFull(reduced, fds, nCols) {
			key = reduced
		} else {
			i++
		}
	}
	return key
}

func closureIsFull(lhs []int, fds []fd.FD, nCols int) bool {
	for a := 0; a < nCols; a++ {
		if !inClosure(lhs, a, fds, nCols) {
			return false
		}
	}
	return true
}

func sortedAttrs(set map[int]bool) []int {
	var out []int
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

func containsAll(super, sub []int) bool {
	in := map[int]bool{}
	for _, a := range super {
		in[a] = true
	}
	for _, a := range sub {
		if !in[a] {
			return false
		}
	}
	return true
}

// dropSubsumed removes schemas contained in another schema.
func dropSubsumed(schemas [][]int) [][]int {
	var out [][]int
	for i, s := range schemas {
		subsumed := false
		for j, o := range schemas {
			if i == j {
				continue
			}
			if len(s) < len(o) && containsAll(o, s) {
				subsumed = true
				break
			}
			if len(s) == len(o) && j < i && containsAll(o, s) {
				subsumed = true // exact duplicate: keep the first
				break
			}
		}
		if !subsumed {
			out = append(out, s)
		}
	}
	return out
}
