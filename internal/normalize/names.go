package normalize

import "strings"

// SchemaNameSimilarity measures how similar two schemas' column names
// are: the Jaccard similarity of their normalized name-token sets.
// Names are case-folded and split on non-alphanumeric runs, so
// "Species_ID" and "species id" contribute the same tokens; purely
// numeric tokens are dropped so periodic suffixes ("2019", "part2") do
// not dominate. The score is a ranked-search signal: schemas that
// describe the same kind of record share most name tokens even when
// column order or exact spelling differs, which is the schema-level
// half of an integration hypothesis (the value-level half is measured
// on the column contents).
func SchemaNameSimilarity(a, b []string) float64 {
	ta := schemaTokens(a)
	tb := schemaTokens(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for tok := range ta {
		if _, ok := tb[tok]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(ta)+len(tb)-inter)
}

// schemaTokens is the normalized token set of a column-name list.
func schemaTokens(cols []string) map[string]struct{} {
	out := map[string]struct{}{}
	for _, name := range cols {
		for _, tok := range nameTokens(name) {
			out[tok] = struct{}{}
		}
	}
	return out
}

// nameTokens splits one column name into normalized tokens: lower-case
// alphanumeric runs with purely numeric runs removed.
func nameTokens(name string) []string {
	fields := strings.FieldsFunc(strings.ToLower(name), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	out := fields[:0]
	for _, f := range fields {
		if isNumeric(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// isNumeric reports whether s is a non-empty digit run.
func isNumeric(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}
