package normalize

import (
	"strings"
	"testing"

	"ogdp/internal/fd"
	"ogdp/internal/table"
)

func TestSynthesize3NFCityProvince(t *testing.T) {
	tb := denormalized()
	res := Synthesize3NF(tb, fd.MaxLHS)
	if len(res.Tables) < 2 {
		t.Fatalf("synthesized %d tables", len(res.Tables))
	}
	// One relation must hold city -> province.
	found := false
	for _, st := range res.Tables {
		if st.ColumnIndex("city") >= 0 && st.ColumnIndex("province") >= 0 && st.NumCols() == 2 {
			found = true
		}
	}
	if !found {
		var all []string
		for _, st := range res.Tables {
			all = append(all, strings.Join(st.Cols, ","))
		}
		t.Errorf("no city/province relation: %v", all)
	}
}

func TestSynthesize3NFDependencyPreservation(t *testing.T) {
	tb := denormalized()
	res := Synthesize3NF(tb, fd.MaxLHS)
	// Every cover FD must be checkable inside one sub-table and hold
	// there.
	for _, f := range res.Cover {
		housed := false
		for _, st := range res.Tables {
			idx := map[int]int{}
			ok := true
			for _, a := range append(append([]int(nil), f.LHS...), f.RHS) {
				ci := st.ColumnIndex(tb.Cols[a])
				if ci < 0 {
					ok = false
					break
				}
				idx[a] = ci
			}
			if !ok {
				continue
			}
			housed = true
			local := fd.FD{RHS: idx[f.RHS]}
			for _, a := range f.LHS {
				local.LHS = append(local.LHS, idx[a])
			}
			if !fd.Holds(st, local) {
				t.Errorf("cover FD %v violated in sub-table %v", f.Format(tb), st.Cols)
			}
		}
		if !housed {
			t.Errorf("cover FD %v not preserved in any sub-table", f.Format(tb))
		}
	}
}

func TestSynthesize3NFLossless(t *testing.T) {
	tb := denormalized()
	res := Synthesize3NF(tb, fd.MaxLHS)
	joined := res.Tables[0]
	for i := 1; i < len(res.Tables); i++ {
		joined = naturalJoin(joined, res.Tables[i])
	}
	origSet := tupleSet(tb, tb.Cols)
	joinSet := tupleSet(joined, tb.Cols)
	if len(origSet) != len(joinSet) {
		t.Fatalf("tuple counts differ: %d vs %d", len(origSet), len(joinSet))
	}
	for k := range origSet {
		if _, ok := joinSet[k]; !ok {
			t.Fatal("tuple lost by 3NF synthesis")
		}
	}
}

func TestSynthesize3NFKeyRelation(t *testing.T) {
	tb := denormalized()
	res := Synthesize3NF(tb, fd.MaxLHS)
	if len(res.Key) == 0 {
		t.Fatal("no candidate key computed")
	}
	// The key must reach the whole schema under the cover.
	for a := 0; a < tb.NumCols(); a++ {
		ok := false
		for _, k := range res.Key {
			if k == a {
				ok = true
			}
		}
		if !ok && !inClosure(res.Key, a, res.Cover, tb.NumCols()) {
			t.Errorf("key %v does not determine column %d", res.Key, a)
		}
	}
	// Some relation contains the key.
	contained := false
	for _, st := range res.Tables {
		all := true
		for _, k := range res.Key {
			if st.ColumnIndex(tb.Cols[k]) < 0 {
				all = false
				break
			}
		}
		if all {
			contained = true
		}
	}
	if !contained {
		t.Error("no synthesized relation contains the candidate key")
	}
}

func TestSynthesize3NFNoFDs(t *testing.T) {
	tb := table.FromRows("t", []string{"id", "val"}, [][]string{
		{"1", "a"}, {"2", "b"},
	})
	res := Synthesize3NF(tb, fd.MaxLHS)
	if len(res.Tables) != 1 || res.Tables[0] != tb {
		t.Errorf("FD-free table should synthesize to itself")
	}
}

func TestMinimalCoverReduces(t *testing.T) {
	// (city, extra) -> province is implied by city -> province; the
	// cover must contain only minimal, non-redundant FDs.
	fds := []fd.FD{
		{LHS: []int{0}, RHS: 1},
		{LHS: []int{0, 2}, RHS: 1},
	}
	cover := minimalCover(fds, 3)
	if len(cover) != 1 || len(cover[0].LHS) != 1 || cover[0].LHS[0] != 0 {
		t.Errorf("cover = %v", cover)
	}
}

func TestCandidateKeyComputation(t *testing.T) {
	// a -> b, b -> c: key is {a}.
	fds := []fd.FD{
		{LHS: []int{0}, RHS: 1},
		{LHS: []int{1}, RHS: 2},
	}
	key := candidateKey(fds, 3)
	if len(key) != 1 || key[0] != 0 {
		t.Errorf("key = %v, want [0]", key)
	}
	// No FDs: key is everything.
	key = candidateKey(nil, 3)
	if len(key) != 3 {
		t.Errorf("FD-free key = %v", key)
	}
}

func TestSynthesize3NFBudget(t *testing.T) {
	// The Chicago budget shape: two independent lookup dimensions.
	var rows [][]string
	for i := 0; i < 60; i++ {
		fund := i % 6
		dept := i % 10
		rows = append(rows, []string{
			itoa(i + 1), itoa(fund), "Fund " + itoa(fund), itoa(dept), "Dept " + itoa(dept), itoa((i * 7) % 100),
		})
	}
	tb := table.FromRows("budget", []string{"line_id", "fund_code", "fund_desc", "dept_no", "dept_desc", "amount"}, rows)
	res := Synthesize3NF(tb, fd.MaxLHS)
	if len(res.Tables) < 3 {
		t.Errorf("budget synthesized into %d relations, want >= 3", len(res.Tables))
	}
	// Lookups must be compact.
	for _, st := range res.Tables {
		if st.ColumnIndex("fund_code") >= 0 && st.ColumnIndex("fund_desc") >= 0 && st.NumCols() == 2 {
			if st.NumRows() != 6 {
				t.Errorf("fund lookup has %d rows, want 6", st.NumRows())
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func BenchmarkSynthesize3NF(b *testing.B) {
	tb := denormalized()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synthesize3NF(tb, fd.MaxLHS)
	}
}
