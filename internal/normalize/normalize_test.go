package normalize

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ogdp/internal/fd"
	"ogdp/internal/table"
)

// denormalized builds a pre-joined table the way OGDPs publish them:
// one row per (grant, city) with the city's province repeated.
func denormalized() *table.Table {
	cities := []struct{ city, prov string }{
		{"Waterloo", "ON"}, {"Toronto", "ON"}, {"Montreal", "QC"},
		{"Quebec City", "QC"}, {"Vancouver", "BC"},
	}
	var rows [][]string
	for i := 0; i < 40; i++ {
		c := cities[i%len(cities)]
		rows = append(rows, []string{
			strconv.Itoa(i + 1), // grant id (key)
			c.city,
			c.prov,
			strconv.Itoa((i%7 + 1) * 1000), // amount
		})
	}
	return table.FromRows("grants", []string{"grant_id", "city", "province", "amount"}, rows)
}

func TestDecomposeSplitsCityProvince(t *testing.T) {
	tb := denormalized()
	rng := rand.New(rand.NewSource(1))
	res := Decompose(tb, fd.MaxLHS, rng)
	if res.InBCNF() {
		t.Fatal("denormalized table reported as BCNF")
	}
	if len(res.Tables) < 2 {
		t.Fatalf("decomposed into %d tables", len(res.Tables))
	}
	// One sub-table must be the city->province lookup.
	found := false
	for _, st := range res.Tables {
		names := strings.Join(st.Cols, ",")
		if names == "city,province" {
			found = true
			if st.NumRows() != 5 {
				t.Errorf("city/province sub-table has %d rows, want 5 (deduped)", st.NumRows())
			}
		}
	}
	if !found {
		var all []string
		for _, st := range res.Tables {
			all = append(all, strings.Join(st.Cols, ","))
		}
		t.Errorf("no city/province sub-table; got %v", all)
	}
}

func TestDecomposeBCNFInput(t *testing.T) {
	// All-distinct key/value pairs: already BCNF.
	tb := table.FromRows("t", []string{"id", "val"}, [][]string{
		{"1", "a"}, {"2", "b"}, {"3", "c"},
	})
	res := Decompose(tb, fd.MaxLHS, rand.New(rand.NewSource(1)))
	if !res.InBCNF() || len(res.Tables) != 1 || res.Steps != 0 {
		t.Errorf("BCNF input: tables=%d steps=%d", len(res.Tables), res.Steps)
	}
	if res.UniquenessGain() != 1 {
		t.Errorf("gain for BCNF table = %g, want 1", res.UniquenessGain())
	}
}

func TestSubTablesAreBCNF(t *testing.T) {
	tb := denormalized()
	res := Decompose(tb, fd.MaxLHS, rand.New(rand.NewSource(2)))
	for _, st := range res.Tables {
		if fds := fd.Discover(st, fd.MaxLHS); len(fds) != 0 {
			t.Errorf("sub-table %v still has FDs: %v", st.Cols, fds)
		}
	}
}

func TestLosslessness(t *testing.T) {
	// Joining the decomposition back must reproduce the original tuples
	// (lossless-join property of BCNF decomposition). We verify on the
	// two-table case by natural-joining the chain of sub-tables.
	tb := denormalized()
	res := Decompose(tb, fd.MaxLHS, rand.New(rand.NewSource(3)))

	joined := res.Tables[0]
	for i := 1; i < len(res.Tables); i++ {
		joined = naturalJoin(joined, res.Tables[i])
	}
	// Same column multiset (order may differ) and same distinct tuples.
	if joined.NumCols() != tb.NumCols() {
		t.Fatalf("joined has %d cols, want %d", joined.NumCols(), tb.NumCols())
	}
	origSet := tupleSet(tb, tb.Cols)
	joinSet := tupleSet(joined, tb.Cols)
	if len(origSet) != len(joinSet) {
		t.Fatalf("tuple counts differ: %d vs %d", len(origSet), len(joinSet))
	}
	for k := range origSet {
		if _, ok := joinSet[k]; !ok {
			t.Fatalf("tuple lost in decomposition: %q", k)
		}
	}
}

// naturalJoin joins two tables on all shared column names (test helper,
// quadratic).
func naturalJoin(a, b *table.Table) *table.Table {
	var sharedA, sharedB []int
	for ia, ca := range a.Cols {
		for ib, cb := range b.Cols {
			if ca == cb {
				sharedA = append(sharedA, ia)
				sharedB = append(sharedB, ib)
			}
		}
	}
	var extraB []int
	for ib := range b.Cols {
		used := false
		for _, s := range sharedB {
			if s == ib {
				used = true
			}
		}
		if !used {
			extraB = append(extraB, ib)
		}
	}
	cols := append([]string(nil), a.Cols...)
	for _, ib := range extraB {
		cols = append(cols, b.Cols[ib])
	}
	out := table.New("join", cols)
	for ra := 0; ra < a.NumRows(); ra++ {
		for rb := 0; rb < b.NumRows(); rb++ {
			match := true
			for i := range sharedA {
				if a.Data[sharedA[i]][ra] != b.Data[sharedB[i]][rb] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			row := make([]string, 0, len(cols))
			for c := range a.Cols {
				row = append(row, a.Data[c][ra])
			}
			for _, ib := range extraB {
				row = append(row, b.Data[ib][rb])
			}
			out.AppendRow(row)
		}
	}
	return out
}

func tupleSet(t *table.Table, colOrder []string) map[string]struct{} {
	idx := make([]int, len(colOrder))
	for i, name := range colOrder {
		idx[i] = t.ColumnIndex(name)
	}
	set := make(map[string]struct{})
	for r := 0; r < t.NumRows(); r++ {
		var b strings.Builder
		for _, c := range idx {
			b.WriteString(t.Data[c][r])
			b.WriteByte(0x1f)
		}
		set[b.String()] = struct{}{}
	}
	return set
}

func TestUniquenessGainIncreases(t *testing.T) {
	tb := denormalized()
	res := Decompose(tb, fd.MaxLHS, rand.New(rand.NewSource(4)))
	gain := res.UniquenessGain()
	if gain <= 1 {
		t.Errorf("uniqueness gain = %g, want > 1 for a denormalized table", gain)
	}
}

func TestDecomposeDeterministicWithSeed(t *testing.T) {
	tb := denormalized()
	shapes := func(seed int64) string {
		res := Decompose(tb, fd.MaxLHS, rand.New(rand.NewSource(seed)))
		var parts []string
		for _, st := range res.Tables {
			parts = append(parts, strings.Join(st.Cols, ","))
		}
		sort.Strings(parts)
		return strings.Join(parts, ";")
	}
	if shapes(7) != shapes(7) {
		t.Error("same seed produced different decompositions")
	}
}

func TestDecomposeConstantColumn(t *testing.T) {
	tb := table.FromRows("t", []string{"id", "const"}, [][]string{
		{"1", "x"}, {"2", "x"}, {"3", "x"},
	})
	res := Decompose(tb, fd.MaxLHS, rand.New(rand.NewSource(5)))
	if res.InBCNF() {
		t.Fatal("constant column table reported BCNF")
	}
	// The constant column must end up in a 1-row sub-table.
	for _, st := range res.Tables {
		if len(st.Cols) == 1 && st.Cols[0] == "const" && st.NumRows() != 1 {
			t.Errorf("constant sub-table has %d rows", st.NumRows())
		}
	}
}

func TestDecomposeManyFDs(t *testing.T) {
	// Chicago-budget style: FundCode -> FundDescription, FundType.
	var rows [][]string
	for i := 0; i < 60; i++ {
		fund := i % 6
		dept := i % 10
		rows = append(rows, []string{
			strconv.Itoa(i + 1),
			strconv.Itoa(fund),
			fmt.Sprintf("Fund %d description", fund),
			fmt.Sprintf("Type %d", fund%2),
			strconv.Itoa(dept),
			fmt.Sprintf("Department %d", dept),
			strconv.Itoa((i*37)%1000 + 1000),
		})
	}
	tb := table.FromRows("budget", []string{
		"line_id", "fund_code", "fund_description", "fund_type",
		"dept_number", "dept_description", "amount",
	}, rows)
	res := Decompose(tb, fd.MaxLHS, rand.New(rand.NewSource(6)))
	if len(res.Tables) < 3 {
		t.Errorf("budget table decomposed into only %d sub-tables", len(res.Tables))
	}
	for _, st := range res.Tables {
		if fds := fd.Discover(st, fd.MaxLHS); len(fds) != 0 {
			t.Errorf("sub-table %v not in BCNF", st.Cols)
		}
	}
}

func BenchmarkDecompose(b *testing.B) {
	tb := denormalized()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(tb, fd.MaxLHS, rng)
	}
}
