package csvio

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"ogdp/internal/table"
)

func TestReadSimple(t *testing.T) {
	in := "id,name,province\n1,Waterloo,ON\n2,Toronto,ON\n"
	tb, err := ReadBytes("t.csv", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumCols() != 3 || tb.NumRows() != 2 {
		t.Fatalf("shape = %d×%d", tb.NumCols(), tb.NumRows())
	}
	if tb.Cols[1] != "name" || tb.Data[1][1] != "Toronto" {
		t.Errorf("content wrong: %+v", tb.Data)
	}
}

func TestHeaderInferenceSkipsPreamble(t *testing.T) {
	// Publication style: title rows and blanks before the real header.
	in := "Annual Report,,\n,,\nid,name,province\n1,Waterloo,ON\n2,Toronto,ON\n"
	tb, err := ReadBytes("t.csv", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cols[0] != "id" || tb.NumRows() != 2 {
		t.Fatalf("header inference failed: cols=%v rows=%d", tb.Cols, tb.NumRows())
	}
}

func TestHeaderInferenceRejectsNullTokens(t *testing.T) {
	in := "id,n/a,province\nid,name,province\n1,Waterloo,ON\n"
	tb, err := ReadBytes("t.csv", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cols[1] != "name" {
		t.Errorf("header = %v, want the row without null tokens", tb.Cols)
	}
}

func TestNoHeader(t *testing.T) {
	in := "a,,c\n1,,3\n"
	_, err := ReadBytes("t.csv", []byte(in))
	if !errors.Is(err, ErrNoHeader) {
		t.Errorf("err = %v, want ErrNoHeader", err)
	}
}

func TestEmpty(t *testing.T) {
	_, err := ReadBytes("t.csv", nil)
	if !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestWideTableCutoff(t *testing.T) {
	cols := make([]string, 120)
	vals := make([]string, 120)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
		vals[i] = "x"
	}
	in := strings.Join(cols, ",") + "\n" + strings.Join(vals, ",") + "\n"
	_, err := ReadBytes("wide.csv", []byte(in))
	if !errors.Is(err, ErrTooWide) {
		t.Errorf("err = %v, want ErrTooWide", err)
	}
	// Cutoff disabled.
	tb, err := ReadWith("wide.csv", strings.NewReader(in), Options{MaxColumns: -1})
	if err != nil || tb.NumCols() != 120 {
		t.Errorf("disabled cutoff: tb=%v err=%v", tb, err)
	}
}

func TestTrailingEmptyColumnsRemoved(t *testing.T) {
	in := "id,name,x,y\n1,a,,\n2,b,,\n3,c,,n/a\n"
	tb, err := ReadBytes("t.csv", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumCols() != 2 {
		t.Errorf("cols = %v, want trailing empties removed", tb.Cols)
	}
	// Interior empty columns are kept.
	in2 := "id,x,name\n1,,a\n2,,b\n"
	tb2, _ := ReadBytes("t.csv", []byte(in2))
	if tb2.NumCols() != 3 {
		t.Errorf("interior empty column must be kept: %v", tb2.Cols)
	}
	// Option disables removal.
	tb3, _ := ReadWith("t.csv", strings.NewReader(in), Options{KeepEmptyTrailingColumns: true})
	if tb3.NumCols() != 4 {
		t.Errorf("KeepEmptyTrailingColumns ignored: %v", tb3.Cols)
	}
}

func TestRaggedRows(t *testing.T) {
	in := "a,b,c\n1,2\n1,2,3,4\n1,2,3\n"
	tb, err := ReadBytes("t.csv", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumCols() != 3 || tb.NumRows() != 3 {
		t.Fatalf("shape = %d×%d", tb.NumCols(), tb.NumRows())
	}
	if tb.Data[2][0] != "" { // short row padded
		t.Errorf("short row not padded: %v", tb.Data[2])
	}
	if tb.Data[2][1] != "3" { // long row truncated
		t.Errorf("long row not truncated: %v", tb.Data[2])
	}
}

func TestQuotedFields(t *testing.T) {
	in := "id,desc\n1,\"hello, world\"\n2,\"line\nbreak\"\n"
	tb, err := ReadBytes("t.csv", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Data[1][0] != "hello, world" || tb.Data[1][1] != "line\nbreak" {
		t.Errorf("quoted parsing wrong: %v", tb.Data[1])
	}
}

func TestBlankHeaderNamesFilled(t *testing.T) {
	// A header row with all cells non-null is required, so use MaxRows
	// trimming instead: header with whitespace-only name is null and the
	// header search moves on; verify unnamed columns never appear from a
	// valid header.
	in := "id , name \n1,a\n"
	tb, err := ReadBytes("t.csv", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cols[0] != "id" || tb.Cols[1] != "name" {
		t.Errorf("header names not trimmed: %v", tb.Cols)
	}
}

func TestMaxRows(t *testing.T) {
	var b strings.Builder
	b.WriteString("id\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	tb, err := ReadWith("t.csv", strings.NewReader(b.String()), Options{MaxRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 10 {
		t.Errorf("MaxRows: got %d rows", tb.NumRows())
	}
}

func TestTSV(t *testing.T) {
	in := "id\tname\n1\talpha\n"
	tb, err := ReadWith("t.tsv", strings.NewReader(in), Options{Comma: '\t'})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cols[1] != "name" || tb.Data[1][0] != "alpha" {
		t.Errorf("tsv parse wrong: %v %v", tb.Cols, tb.Data)
	}
}

func TestRoundTrip(t *testing.T) {
	orig := table.FromRows("t.csv", []string{"id", "desc"}, [][]string{
		{"1", "plain"},
		{"2", "with, comma"},
		{"3", "with \"quotes\""},
	})
	data := Bytes(orig)
	back, err := ReadBytes("t.csv", data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != orig.NumRows() || back.NumCols() != orig.NumCols() {
		t.Fatalf("round trip shape: %v", back)
	}
	for c := range orig.Data {
		for r := range orig.Data[c] {
			if back.Data[c][r] != orig.Data[c][r] {
				t.Errorf("cell (%d,%d): %q != %q", c, r, back.Data[c][r], orig.Data[c][r])
			}
		}
	}
}

func TestWriteError(t *testing.T) {
	tb := table.FromRows("t", []string{"a"}, [][]string{{"1"}})
	w := failWriter{}
	if err := Write(w, tb); err == nil {
		t.Error("Write to failing writer should error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestHeaderScanRowsOption(t *testing.T) {
	// Header appears after 3 preamble rows; a scan depth of 2 misses it.
	in := "x,,\ny,,\nz,,\nid,name,province\n1,a,ON\n"
	_, err := ReadWith("t.csv", strings.NewReader(in), Options{HeaderScanRows: 2})
	if !errors.Is(err, ErrNoHeader) {
		t.Errorf("shallow scan: err = %v, want ErrNoHeader", err)
	}
	tb, err := ReadWith("t.csv", strings.NewReader(in), Options{HeaderScanRows: 10})
	if err != nil || tb.Cols[0] != "id" {
		t.Errorf("deep scan failed: %v err=%v", tb, err)
	}
}

func BenchmarkRead(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("id,name,province,value\n")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "%d,city-%d,ON,%d.5\n", i, i%50, i)
	}
	data := []byte(sb.String())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBytes("t.csv", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	rows := make([][]string, 5000)
	for i := range rows {
		rows[i] = []string{fmt.Sprint(i), "name", "ON", "1.5"}
	}
	tb := table.FromRows("t", []string{"id", "name", "province", "value"}, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, tb); err != nil {
			b.Fatal(err)
		}
	}
}
