// Package csvio parses CSV resources into tables, reproducing the
// paper's processing pipeline (§2.2):
//
//  1. determine the number of columns from the first 500 rows,
//  2. pick the first row with no missing value as the header,
//  3. parse the remaining rows,
//  4. drop trailing entirely-empty columns,
//  5. reject very wide tables (≥ 100 columns by default), which are
//     overwhelmingly malformed or transposed publications.
package csvio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strings"

	"ogdp/internal/table"
	"ogdp/internal/values"
)

// Default pipeline parameters from the paper.
const (
	// DefaultHeaderScanRows is how many leading rows the header
	// inference examines.
	DefaultHeaderScanRows = 500
	// DefaultMaxColumns is the wide-table cutoff: tables with at least
	// this many columns are rejected.
	DefaultMaxColumns = 100
)

// Options configures Read.
type Options struct {
	// Comma is the field delimiter; 0 means ','.
	Comma rune
	// HeaderScanRows overrides DefaultHeaderScanRows; 0 keeps the default.
	HeaderScanRows int
	// MaxColumns overrides DefaultMaxColumns; 0 keeps the default,
	// negative disables the cutoff.
	MaxColumns int
	// MaxRows, when positive, truncates the table after that many data
	// rows (useful for sampling very large resources).
	MaxRows int
	// KeepEmptyTrailingColumns disables cleaning step 4.
	KeepEmptyTrailingColumns bool
}

func (o Options) withDefaults() Options {
	if o.Comma == 0 {
		o.Comma = ','
	}
	if o.HeaderScanRows == 0 {
		o.HeaderScanRows = DefaultHeaderScanRows
	}
	if o.MaxColumns == 0 {
		o.MaxColumns = DefaultMaxColumns
	}
	return o
}

// Pipeline failure modes. A resource that fails any step is not
// "readable" in the paper's terminology.
var (
	ErrEmpty    = errors.New("csvio: no rows")
	ErrNoHeader = errors.New("csvio: no plausible header row")
	ErrTooWide  = errors.New("csvio: table exceeds the wide-table cutoff")
)

// Read parses one CSV document into a table using default options.
func Read(name string, r io.Reader) (*table.Table, error) {
	return ReadWith(name, r, Options{})
}

// ReadBytes parses an in-memory CSV document.
func ReadBytes(name string, data []byte) (*table.Table, error) {
	return ReadWith(name, strings.NewReader(string(data)), Options{})
}

// ReadWith parses one CSV document into a table.
func ReadWith(name string, r io.Reader, opts Options) (*table.Table, error) {
	opts = opts.withDefaults()

	cr := csv.NewReader(r)
	cr.Comma = opts.Comma
	cr.FieldsPerRecord = -1 // tolerate ragged rows; we fix widths ourselves
	cr.LazyQuotes = true

	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: parsing %s: %w", name, err)
		}
		records = append(records, rec)
		if opts.MaxRows > 0 && len(records) > opts.MaxRows+opts.HeaderScanRows {
			break
		}
	}
	if len(records) == 0 {
		return nil, ErrEmpty
	}

	width := inferWidth(records, opts.HeaderScanRows)
	if opts.MaxColumns > 0 && width >= opts.MaxColumns {
		return nil, fmt.Errorf("%w: %d columns", ErrTooWide, width)
	}

	headerIdx := inferHeader(records, width, opts.HeaderScanRows)
	if headerIdx < 0 {
		return nil, ErrNoHeader
	}

	header := normalizeRow(records[headerIdx], width)
	for i, h := range header {
		header[i] = strings.TrimSpace(h)
		if header[i] == "" {
			header[i] = fmt.Sprintf("column_%d", i+1)
		}
	}

	t := table.New(name, header)
	for c := range t.Data {
		t.Data[c] = make([]string, 0, len(records)-headerIdx-1)
	}
	for r := headerIdx + 1; r < len(records); r++ {
		if d := len(records[r]) - width; d > 0 {
			t.Ragged.Truncated += d
		} else if d < 0 {
			t.Ragged.Padded -= d
		}
		row := normalizeRow(records[r], width)
		for c := 0; c < width; c++ {
			t.Data[c] = append(t.Data[c], row[c])
		}
		if opts.MaxRows > 0 && t.NumRows() >= opts.MaxRows {
			break
		}
	}

	if !opts.KeepEmptyTrailingColumns {
		trimTrailingEmptyColumns(t)
		if t.NumCols() == 0 {
			// Every column was entirely null: nothing readable remains.
			return nil, ErrEmpty
		}
	}
	return t, nil
}

// inferWidth determines the table's column count: the most common
// record length among the first scanRows records, ties broken toward
// the wider record (headers and data rows agree in well-formed files).
func inferWidth(records [][]string, scanRows int) int {
	n := len(records)
	if n > scanRows {
		n = scanRows
	}
	counts := make(map[int]int)
	for _, rec := range records[:n] {
		counts[len(rec)]++
	}
	best, bestN := 0, 0
	for w, c := range counts {
		if c > bestN || (c == bestN && w > best) {
			best, bestN = w, c
		}
	}
	return best
}

// inferHeader returns the index of the first record, among the first
// scanRows, that has exactly the inferred width and no missing value
// (§2.2 of the paper). Returns -1 when none qualifies.
func inferHeader(records [][]string, width int, scanRows int) int {
	n := len(records)
	if n > scanRows {
		n = scanRows
	}
	for i := 0; i < n; i++ {
		rec := records[i]
		if len(rec) != width {
			continue
		}
		ok := true
		for _, v := range rec {
			if values.IsNull(v) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// normalizeRow pads or truncates rec to width cells.
func normalizeRow(rec []string, width int) []string {
	if len(rec) == width {
		return rec
	}
	out := make([]string, width)
	copy(out, rec)
	return out
}

// trimTrailingEmptyColumns removes the suffix of columns whose every
// cell is null, a publication artifact the paper reports (§2.2).
func trimTrailingEmptyColumns(t *table.Table) {
	if t.NumRows() == 0 {
		return // a header-only table keeps its columns
	}
	keep := len(t.Cols)
	for keep > 0 {
		col := t.Data[keep-1]
		empty := true
		for _, v := range col {
			if !values.IsNull(v) {
				empty = false
				break
			}
		}
		if !empty {
			break
		}
		keep--
	}
	if keep < len(t.Cols) {
		t.Cols = t.Cols[:keep]
		t.Data = t.Data[:keep]
		t.InvalidateProfiles()
	}
}

// Write serializes a table as CSV (header first).
func Write(w io.Writer, t *table.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return err
	}
	// Column materializes encoding-backed tables before the cell loop.
	cols := make([][]string, t.NumCols())
	for c := range cols {
		cols[c] = t.Column(c)
	}
	row := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c := range row {
			row[c] = cols[c][r]
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bytes serializes a table as CSV into memory.
func Bytes(t *table.Table) []byte {
	var b strings.Builder
	if err := Write(&b, t); err != nil {
		// strings.Builder never fails; csv.Writer only reports writer errors.
		panic(err)
	}
	return []byte(b.String())
}
