package csvio

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ogdp/internal/table"
)

// TestRoundTripProperty: any table whose header row parses cleanly and
// whose trailing columns are non-empty survives Write → Read exactly.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alphabet := []rune("abz019 ,\"\n'é-")
	randCell := func() string {
		n := rng.Intn(8)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for trial := 0; trial < 200; trial++ {
		nCols := 1 + rng.Intn(5)
		nRows := 1 + rng.Intn(20)
		cols := make([]string, nCols)
		for c := range cols {
			cols[c] = "col" + string(rune('a'+c))
		}
		orig := table.New("t.csv", cols)
		for r := 0; r < nRows; r++ {
			row := make([]string, nCols)
			for c := range row {
				row[c] = randCell()
			}
			// Keep the last column non-null so trailing-column trimming
			// does not kick in, and avoid CR which encoding/csv
			// normalizes.
			row[nCols-1] = "keep"
			for c := range row {
				row[c] = strings.ReplaceAll(row[c], "\r", "")
			}
			orig.AppendRow(row)
		}
		back, err := ReadBytes("t.csv", Bytes(orig))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.NumRows() != orig.NumRows() || back.NumCols() != orig.NumCols() {
			t.Fatalf("trial %d: shape %dx%d -> %dx%d", trial,
				orig.NumCols(), orig.NumRows(), back.NumCols(), back.NumRows())
		}
		for c := range orig.Data {
			for r := range orig.Data[c] {
				if back.Data[c][r] != orig.Data[c][r] {
					t.Fatalf("trial %d: cell (%d,%d) %q -> %q", trial, c, r, orig.Data[c][r], back.Data[c][r])
				}
			}
		}
	}
}

// TestReadNeverPanics feeds arbitrary bytes through the full pipeline.
func TestReadNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = ReadBytes("fuzz.csv", data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestReadStructuredFuzz biases the fuzz toward CSV-looking inputs.
func TestReadStructuredFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pieces := []string{"a", "b,c", "\"x,y\"", "\n", ",", "\"", "n/a", "1", "", "\r\n", "é"}
	for trial := 0; trial < 2000; trial++ {
		var b strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		tb, err := ReadBytes("fuzz.csv", []byte(b.String()))
		if err != nil {
			continue
		}
		// Invariants on every successful parse.
		if tb.NumCols() == 0 {
			t.Fatalf("trial %d: parsed table with zero columns", trial)
		}
		for c := range tb.Data {
			if len(tb.Data[c]) != tb.NumRows() {
				t.Fatalf("trial %d: ragged internal columns", trial)
			}
		}
		for _, name := range tb.Cols {
			if name == "" {
				t.Fatalf("trial %d: empty header name survived", trial)
			}
		}
	}
}
