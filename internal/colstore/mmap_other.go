//go:build !unix

package colstore

import (
	"fmt"
	"io"
	"os"
)

// openMapping reads the whole file into memory on platforms without
// mmap support; the reader still aliases the buffer zero-copy.
func openMapping(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size < 0 || int64(int(size)) != size {
		return nil, nil, fmt.Errorf("colstore: %s: cannot read %d bytes", f.Name(), size)
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, nil, fmt.Errorf("colstore: read %s: %w", f.Name(), err)
	}
	return b, func() error { return nil }, nil
}
