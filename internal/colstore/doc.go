// Package colstore serializes a table's dictionary encodings into a
// versioned binary columnar file and reads them back as zero-copy
// views over a read-only memory mapping, so a saved corpus can be
// served to the study without re-parsing CSVs or materializing rows.
//
// # On-disk format (version 1, little-endian)
//
// A file is header, metadata, column blocks, footer:
//
//	offset  size  field
//	0       8     magic "OGDPCOL\x01"
//	8       4     format version (1)
//	12      4     column count
//	16      8     row count
//	24      8     content hash (FNV-64a of the CSV serialization)
//	32      8     ragged cells truncated at ingest
//	40      8     ragged cells padded at ingest
//	48      8     directory offset
//	56      8     data offset (start of the column blocks)
//	64      8     total file size (truncation guard)
//	72      8     header checksum
//	80      ...   table name (offset/length in the directory region)
//
// The directory holds one fixed-size entry per column giving the
// dictionary and hash-block sizes and the absolute offset of each
// block. All blocks are 8-byte aligned so integer views can be taken
// directly over the mapping. Per column, in file order:
//
//	dict offsets   (dictN+1) × uint32, prefix offsets into dict bytes
//	dict bytes     concatenated distinct values, ascending byte order
//	codes          nrows × uint32, one dictionary code per row
//	counts         dictN × int32 multiplicities
//	null bitmap    (dictN+7)/8 bytes, bit i set when entry i is null
//	value hashes   hashN × uint64 ascending distinct non-null hashes
//	hash counts    hashN × int32 multiplicities aligned with hashes
//
// The footer is the FNV-64a checksum of the column blocks followed by
// the end magic "OGDPEND\x01". The header checksum covers everything
// before the data offset (except the checksum field itself), so a
// reader validates structure before trusting any offset, and the body
// checksum detects bit rot in the blocks themselves.
//
// # Versioning rules
//
// The version field is bumped on any incompatible layout change;
// readers reject versions they do not know rather than guessing. New
// optional trailing blocks may be added without a bump only if older
// readers can ignore them through the existing offsets (the file size
// field guards the footer position, so additions require a bump in
// practice — prefer bumping).
//
// # Reading
//
// Load validates magic, version, size, and both checksums, then
// reconstructs one table.Encoding per column whose slices alias the
// mapping (dictionary strings via unsafe.String, integer vectors via
// unsafe.Slice). The mapping is read-only and intentionally lives for
// the remainder of the process once a table has been handed out;
// Encoding immutability does the rest. On platforms without mmap — or
// when the fallback buffer is misaligned — the same file is decoded by
// copying, trading memory for portability.
package colstore
