//go:build unix

package colstore

import (
	"fmt"
	"os"
	"syscall"
)

// openMapping maps the whole file read-only. The mapping survives the
// file descriptor being closed; unmap releases it (callers only do so
// when validation fails — see Load).
func openMapping(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, fmt.Errorf("colstore: %s: cannot map %d bytes", f.Name(), size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("colstore: mmap %s: %w", f.Name(), err)
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
