package colstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"ogdp/internal/table"
)

// Ext is the file extension of colstore files, kept alongside the CSV
// they were serialized from.
const Ext = ".col"

const (
	formatVersion = 1

	headerSize   = 80     // fixed header; strings region follows
	dirHeadSize  = 16     // table-name offset + length
	dirEntrySize = 12 * 8 // per-column directory entry
	footerSize   = 16     // body checksum + end magic
)

// Fixed header field offsets (see doc.go for the layout).
const (
	offMagic       = 0
	offVersion     = 8
	offNumCols     = 12
	offNumRows     = 16
	offContentHash = 24
	offTruncated   = 32
	offPadded      = 40
	offDirOff      = 48
	offDataOff     = 56
	offFileSize    = 64
	offHeaderSum   = 72
)

// Per-column directory entry field indices (each a uint64).
const (
	deDictN = iota
	deHashN
	deNameOff
	deNameLen
	deDictOffsOff
	deDictBytesOff
	deDictBytesLen
	deCodesOff
	deCountsOff
	deNullOff
	deHashesOff
	deHashCountsOff
)

var (
	magic    = []byte("OGDPCOL\x01")
	endMagic = []byte("OGDPEND\x01")
)

// FNV-64a, matching table.HashValue so content hashes computed by any
// layer agree.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// checksum is FNV-64a over the concatenation of the given byte ranges.
func checksum(parts ...[]byte) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range parts {
		for _, b := range p {
			h ^= uint64(b)
			h *= fnvPrime64
		}
	}
	return h
}

// HashBytes is FNV-64a over b: the hash stamped into the header as the
// content hash of the CSV serialization a colstore file was built from.
func HashBytes(b []byte) uint64 { return checksum(b) }

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// Marshal serializes the table's dictionary encodings into the
// version-1 binary format. contentHash identifies the raw serialization
// the encodings were derived from (typically HashBytes of the CSV); a
// reader hands it back so loaders can detect stale colstore files.
func Marshal(t *table.Table, contentHash uint64) ([]byte, error) {
	ncols := t.NumCols()
	nrows := t.NumRows()
	encs := make([]*table.Encoding, ncols)
	for c := range encs {
		encs[c] = t.Encoding(c)
	}

	// Lay out the metadata region: fixed header, strings (table name
	// then column names), directory, then the 8-aligned column blocks.
	cursor := uint64(headerSize)
	nameOff, nameLen := cursor, uint64(len(t.Name))
	cursor += nameLen
	colNameOff := make([]uint64, ncols)
	for c, n := range t.Cols {
		colNameOff[c] = cursor
		cursor += uint64(len(n))
	}
	dirOff := align8(cursor)
	dataOff := align8(dirOff + dirHeadSize + uint64(ncols)*dirEntrySize)

	dir := make([][12]uint64, ncols)
	cursor = dataOff
	block := func(size uint64) uint64 {
		off := align8(cursor)
		cursor = off + size
		return off
	}
	for c, e := range encs {
		dictN := uint64(len(e.Dict))
		var dictBytes uint64
		for _, v := range e.Dict {
			dictBytes += uint64(len(v))
		}
		if dictBytes > math.MaxUint32 {
			return nil, fmt.Errorf("colstore: %s column %q: dictionary of %d bytes exceeds the format's 4 GiB limit", t.Name, t.Cols[c], dictBytes)
		}
		hashN := uint64(len(e.ValueHashes()))
		d := &dir[c]
		d[deDictN] = dictN
		d[deHashN] = hashN
		d[deNameOff] = colNameOff[c]
		d[deNameLen] = uint64(len(t.Cols[c]))
		d[deDictOffsOff] = block((dictN + 1) * 4)
		d[deDictBytesOff] = block(dictBytes)
		d[deDictBytesLen] = dictBytes
		d[deCodesOff] = block(uint64(nrows) * 4)
		d[deCountsOff] = block(dictN * 4)
		d[deNullOff] = block((dictN + 7) / 8)
		d[deHashesOff] = block(hashN * 8)
		d[deHashCountsOff] = block(hashN * 4)
	}
	bodyEnd := align8(cursor)
	fileSize := bodyEnd + footerSize

	buf := make([]byte, fileSize)
	le := binary.LittleEndian
	copy(buf[offMagic:], magic)
	le.PutUint32(buf[offVersion:], formatVersion)
	le.PutUint32(buf[offNumCols:], uint32(ncols))
	le.PutUint64(buf[offNumRows:], uint64(nrows))
	le.PutUint64(buf[offContentHash:], contentHash)
	le.PutUint64(buf[offTruncated:], uint64(t.Ragged.Truncated))
	le.PutUint64(buf[offPadded:], uint64(t.Ragged.Padded))
	le.PutUint64(buf[offDirOff:], dirOff)
	le.PutUint64(buf[offDataOff:], dataOff)
	le.PutUint64(buf[offFileSize:], fileSize)

	copy(buf[nameOff:], t.Name)
	for c, n := range t.Cols {
		copy(buf[colNameOff[c]:], n)
	}
	le.PutUint64(buf[dirOff:], nameOff)
	le.PutUint64(buf[dirOff+8:], nameLen)
	for c := range dir {
		base := dirOff + dirHeadSize + uint64(c)*dirEntrySize
		for i, v := range dir[c] {
			le.PutUint64(buf[base+uint64(i)*8:], v)
		}
	}

	for c, e := range encs {
		d := &dir[c]
		var off uint32
		for i, v := range e.Dict {
			le.PutUint32(buf[d[deDictOffsOff]+uint64(i)*4:], off)
			copy(buf[d[deDictBytesOff]+uint64(off):], v)
			off += uint32(len(v))
		}
		le.PutUint32(buf[d[deDictOffsOff]+d[deDictN]*4:], off)
		for r, code := range e.Codes {
			le.PutUint32(buf[d[deCodesOff]+uint64(r)*4:], code)
		}
		for i, n := range e.DictCounts {
			le.PutUint32(buf[d[deCountsOff]+uint64(i)*4:], uint32(n))
		}
		for i, null := range e.DictNull {
			if null {
				buf[d[deNullOff]+uint64(i)/8] |= 1 << (uint(i) % 8)
			}
		}
		for i, h := range e.ValueHashes() {
			le.PutUint64(buf[d[deHashesOff]+uint64(i)*8:], h)
		}
		for i, n := range e.ValueHashCounts() {
			le.PutUint32(buf[d[deHashCountsOff]+uint64(i)*4:], uint32(n))
		}
	}

	le.PutUint64(buf[offHeaderSum:], checksum(buf[:offHeaderSum], buf[headerSize:dataOff]))
	le.PutUint64(buf[bodyEnd:], checksum(buf[dataOff:bodyEnd]))
	copy(buf[bodyEnd+8:], endMagic)
	return buf, nil
}

// WriteFile atomically serializes t to path (temp file in the same
// directory, then rename) and returns the number of bytes written.
func WriteFile(path string, t *table.Table, contentHash uint64) (int64, error) {
	b, err := Marshal(t, contentHash)
	if err != nil {
		return 0, err
	}
	if err := AtomicWrite(path, b, false); err != nil {
		return 0, err
	}
	return int64(len(b)), nil
}

// AtomicWrite writes data to path via a temp file in the same
// directory plus rename, so readers never observe a partial file. With
// sync set the file is fsynced before the rename, making the write
// crash-durable — reserve it for manifests, where losing the file
// would orphan the rest of the corpus.
func AtomicWrite(path string, data []byte, sync bool) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	return nil
}
