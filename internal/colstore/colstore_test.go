package colstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ogdp/internal/table"
)

func sampleTable() *table.Table {
	t := table.FromRows("permits.csv", []string{"id", "district", "issued", "fee"}, [][]string{
		{"1", "Innere Stadt", "2023-01-04", "120.50"},
		{"2", "Leopoldstadt", "2023-01-05", ""},
		{"3", "Innere Stadt", "2023-01-05", "98.00"},
		{"4", "NA", "2023-02-11", "120.50"},
		{"5", "Landstraße", "", "33.10"},
	})
	t.Ragged = table.RaggedCells{Truncated: 2, Padded: 1}
	return t
}

func writeSample(t *testing.T) (path string, src *table.Table) {
	t.Helper()
	src = sampleTable()
	path = filepath.Join(t.TempDir(), "permits.col")
	if _, err := WriteFile(path, src, 0xfeedbeef); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path, src
}

func TestRoundtrip(t *testing.T) {
	path, src := writeSample(t)
	got, hash, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if hash != 0xfeedbeef {
		t.Fatalf("content hash = %#x, want 0xfeedbeef", hash)
	}
	if got.Name != src.Name || !reflect.DeepEqual(got.Cols, src.Cols) {
		t.Fatalf("identity mismatch: %q %v", got.Name, got.Cols)
	}
	if got.Ragged != src.Ragged {
		t.Fatalf("Ragged = %+v, want %+v", got.Ragged, src.Ragged)
	}
	if !got.Encoded() {
		t.Fatal("loaded table should be encoding-backed")
	}
	for c := range src.Cols {
		se, ge := src.Encoding(c), got.Encoding(c)
		if !reflect.DeepEqual(se.Dict, ge.Dict) || !reflect.DeepEqual(se.Codes, ge.Codes) ||
			!reflect.DeepEqual(se.DictCounts, ge.DictCounts) || !reflect.DeepEqual(se.DictNull, ge.DictNull) {
			t.Fatalf("column %d encoding mismatch", c)
		}
		if !reflect.DeepEqual(se.ValueHashes(), ge.ValueHashes()) ||
			!reflect.DeepEqual(se.ValueHashCounts(), ge.ValueHashCounts()) {
			t.Fatalf("column %d hash block mismatch", c)
		}
		if se.Nulls() != ge.Nulls() {
			t.Fatalf("column %d nulls: %d vs %d", c, se.Nulls(), ge.Nulls())
		}
	}
	// Row materialization from the mapped dictionaries matches the source.
	if !reflect.DeepEqual(got.Rows(), src.Rows()) {
		t.Fatal("materialized rows differ from source")
	}
}

func TestRoundtripEmptyAndNarrow(t *testing.T) {
	dir := t.TempDir()
	for _, src := range []*table.Table{
		table.FromRows("empty.csv", nil, nil),
		table.FromRows("headeronly.csv", []string{"a", "b"}, nil),
	} {
		path := filepath.Join(dir, src.Name+Ext)
		if _, err := WriteFile(path, src, 7); err != nil {
			t.Fatalf("%s: WriteFile: %v", src.Name, err)
		}
		got, _, err := Load(path)
		if err != nil {
			t.Fatalf("%s: Load: %v", src.Name, err)
		}
		if got.NumRows() != 0 || got.NumCols() != src.NumCols() {
			t.Fatalf("%s: got %d×%d", src.Name, got.NumCols(), got.NumRows())
		}
	}
}

// corrupt loads the file, applies f, writes it back, and asserts Load
// fails with an error mentioning want.
func corrupt(t *testing.T, want string, f func(b []byte) []byte) {
	t.Helper()
	path, _ := writeSample(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(b), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Load(path)
	if err == nil {
		t.Fatalf("Load of corrupted file (%s) succeeded", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestCorruptTruncated(t *testing.T) {
	corrupt(t, "truncated", func(b []byte) []byte { return b[:len(b)/2] })
}

func TestCorruptTruncatedBelowHeader(t *testing.T) {
	corrupt(t, "truncated", func(b []byte) []byte { return b[:17] })
}

func TestCorruptBadMagic(t *testing.T) {
	corrupt(t, "bad magic", func(b []byte) []byte {
		b[0] = 'X'
		return b
	})
}

func TestCorruptBadVersion(t *testing.T) {
	corrupt(t, "unsupported format version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[offVersion:], 99)
		// Keep the header checksum valid so the version check is what fires.
		dataOff := binary.LittleEndian.Uint64(b[offDataOff:])
		binary.LittleEndian.PutUint64(b[offHeaderSum:], checksum(b[:offHeaderSum], b[headerSize:dataOff]))
		return b
	})
}

func TestCorruptHeaderChecksum(t *testing.T) {
	corrupt(t, "header checksum mismatch", func(b []byte) []byte {
		b[offNumRows] ^= 1
		return b
	})
}

func TestCorruptBodyChecksum(t *testing.T) {
	corrupt(t, "body checksum mismatch", func(b []byte) []byte {
		dataOff := binary.LittleEndian.Uint64(b[offDataOff:])
		b[dataOff] ^= 0xff
		return b
	})
}

func TestCorruptCodeOutOfRange(t *testing.T) {
	corrupt(t, "out of dictionary range", func(b []byte) []byte {
		le := binary.LittleEndian
		// Column 0's codes block: overwrite the first code with a value
		// beyond its dictionary, then re-stamp both checksums so only the
		// semantic validation can catch it.
		dirOff := le.Uint64(b[offDirOff:])
		base := dirOff + dirHeadSize
		codesOff := le.Uint64(b[base+deCodesOff*8:])
		le.PutUint32(b[codesOff:], 1<<30)
		dataOff := le.Uint64(b[offDataOff:])
		bodyEnd := uint64(len(b)) - footerSize
		le.PutUint64(b[bodyEnd:], checksum(b[dataOff:bodyEnd]))
		le.PutUint64(b[offHeaderSum:], checksum(b[:offHeaderSum], b[headerSize:dataOff]))
		return b
	})
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.col")
	if err := AtomicWrite(path, []byte("hello"), true); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "x.col" {
		t.Fatalf("directory has %v, want just x.col", ents)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
}
