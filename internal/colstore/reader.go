package colstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"unsafe"

	"ogdp/internal/table"
)

// nativeLE reports whether the host is little-endian; only then can
// integer vectors alias the file bytes directly.
var nativeLE = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// view wraps the mapped (or read) file bytes. When the base address is
// 8-byte aligned on a little-endian host, integer accessors return
// slices aliasing the mapping; otherwise they decode by copying.
type view struct {
	b     []byte
	alias bool
}

func newView(b []byte) *view {
	alias := nativeLE && len(b) > 0 && uintptr(unsafe.Pointer(&b[0]))%8 == 0
	return &view{b: b, alias: alias}
}

// bytes bounds-checks a block and returns it.
func (v *view) bytes(off, n uint64) ([]byte, error) {
	if off > uint64(len(v.b)) || n > uint64(len(v.b))-off {
		return nil, fmt.Errorf("block [%d, +%d) out of bounds (file is %d bytes)", off, n, len(v.b))
	}
	return v.b[off : off+n], nil
}

func (v *view) u32s(off, n uint64) ([]uint32, error) {
	b, err := v.bytes(off, n*4)
	if err != nil || n == 0 {
		return nil, err
	}
	if v.alias && off%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out, nil
}

func (v *view) i32s(off, n uint64) ([]int32, error) {
	b, err := v.bytes(off, n*4)
	if err != nil || n == 0 {
		return nil, err
	}
	if v.alias && off%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func (v *view) u64s(off, n uint64) ([]uint64, error) {
	b, err := v.bytes(off, n*8)
	if err != nil || n == 0 {
		return nil, err
	}
	if v.alias && off%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out, nil
}

// str returns a string aliasing the block (strings need no alignment).
func (v *view) str(off, n uint64) (string, error) {
	b, err := v.bytes(off, n)
	if err != nil || n == 0 {
		return "", err
	}
	return unsafe.String(&b[0], n), nil
}

// Load reads the colstore file at path, validates its structure and
// checksums, and returns an encoding-backed table whose column slices
// alias a read-only mapping of the file, plus the content hash stamped
// at write time. The mapping intentionally lives for the remainder of
// the process once the table has been handed out (its encodings are
// shared indefinitely); it is released only when validation fails.
func Load(path string) (*table.Table, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: %w", err)
	}
	data, unmap, err := openMapping(f, fi.Size())
	if err != nil {
		return nil, 0, err
	}
	t, hash, err := decode(data)
	if err != nil {
		unmap()
		return nil, 0, fmt.Errorf("colstore: %s: %w", path, err)
	}
	return t, hash, nil
}

// decode validates and decodes a complete colstore image.
func decode(b []byte) (*table.Table, uint64, error) {
	le := binary.LittleEndian
	if uint64(len(b)) < headerSize+footerSize {
		return nil, 0, fmt.Errorf("truncated: %d bytes is smaller than any valid file", len(b))
	}
	if string(b[offMagic:offMagic+8]) != string(magic) {
		return nil, 0, fmt.Errorf("bad magic %q", b[offMagic:offMagic+8])
	}
	if ver := le.Uint32(b[offVersion:]); ver != formatVersion {
		return nil, 0, fmt.Errorf("unsupported format version %d (reader knows %d)", ver, formatVersion)
	}
	if size := le.Uint64(b[offFileSize:]); size != uint64(len(b)) {
		return nil, 0, fmt.Errorf("truncated: header declares %d bytes, file has %d", size, len(b))
	}
	dirOff := le.Uint64(b[offDirOff:])
	dataOff := le.Uint64(b[offDataOff:])
	bodyEnd := uint64(len(b)) - footerSize
	if dirOff < headerSize || dataOff < dirOff || dataOff > bodyEnd {
		return nil, 0, fmt.Errorf("inconsistent layout: dir at %d, data at %d, body ends at %d", dirOff, dataOff, bodyEnd)
	}
	if got, want := checksum(b[:offHeaderSum], b[headerSize:dataOff]), le.Uint64(b[offHeaderSum:]); got != want {
		return nil, 0, fmt.Errorf("header checksum mismatch: computed %#x, stored %#x", got, want)
	}
	if string(b[bodyEnd+8:]) != string(endMagic) {
		return nil, 0, fmt.Errorf("bad end magic %q", b[bodyEnd+8:])
	}
	if got, want := checksum(b[dataOff:bodyEnd]), le.Uint64(b[bodyEnd:]); got != want {
		return nil, 0, fmt.Errorf("body checksum mismatch: computed %#x, stored %#x", got, want)
	}

	ncols := uint64(le.Uint32(b[offNumCols:]))
	nrows := le.Uint64(b[offNumRows:])
	contentHash := le.Uint64(b[offContentHash:])
	if dirOff+dirHeadSize+ncols*dirEntrySize > dataOff {
		return nil, 0, fmt.Errorf("directory for %d columns overruns the data region", ncols)
	}
	v := newView(b)

	name, err := v.str(le.Uint64(b[dirOff:]), le.Uint64(b[dirOff+8:]))
	if err != nil {
		return nil, 0, fmt.Errorf("table name: %w", err)
	}
	cols := make([]string, ncols)
	encs := make([]*table.Encoding, ncols)
	for c := uint64(0); c < ncols; c++ {
		var d [12]uint64
		base := dirOff + dirHeadSize + c*dirEntrySize
		for i := range d {
			d[i] = le.Uint64(b[base+uint64(i)*8:])
		}
		cols[c], err = v.str(d[deNameOff], d[deNameLen])
		if err != nil {
			return nil, 0, fmt.Errorf("column %d name: %w", c, err)
		}
		encs[c], err = decodeColumn(v, &d, nrows)
		if err != nil {
			return nil, 0, fmt.Errorf("column %q: %w", cols[c], err)
		}
	}
	t, err := table.FromEncodings(name, cols, encs)
	if err != nil {
		return nil, 0, err
	}
	t.Ragged.Truncated = int(le.Uint64(b[offTruncated:]))
	t.Ragged.Padded = int(le.Uint64(b[offPadded:]))
	return t, contentHash, nil
}

// decodeColumn reconstructs one column's Encoding from its directory
// entry, aliasing the mapping wherever alignment permits.
func decodeColumn(v *view, d *[12]uint64, nrows uint64) (*table.Encoding, error) {
	dictN, hashN := d[deDictN], d[deHashN]
	dictOffs, err := v.u32s(d[deDictOffsOff], dictN+1)
	if err != nil {
		return nil, fmt.Errorf("dict offsets: %w", err)
	}
	dictBytesLen := d[deDictBytesLen]
	dict := make([]string, dictN)
	prev := uint32(0)
	for i := uint64(0); i < dictN; i++ {
		lo, hi := dictOffs[i], dictOffs[i+1]
		if lo != prev || hi < lo || uint64(hi) > dictBytesLen {
			return nil, fmt.Errorf("dict offsets not monotonic at entry %d", i)
		}
		prev = hi
		dict[i], err = v.str(d[deDictBytesOff]+uint64(lo), uint64(hi-lo))
		if err != nil {
			return nil, fmt.Errorf("dict bytes: %w", err)
		}
	}
	codes, err := v.u32s(d[deCodesOff], nrows)
	if err != nil {
		return nil, fmt.Errorf("codes: %w", err)
	}
	counts, err := v.i32s(d[deCountsOff], dictN)
	if err != nil {
		return nil, fmt.Errorf("counts: %w", err)
	}
	nullBits, err := v.bytes(d[deNullOff], (dictN+7)/8)
	if err != nil {
		return nil, fmt.Errorf("null bitmap: %w", err)
	}
	nulls := make([]bool, dictN)
	for i := range nulls {
		nulls[i] = nullBits[i/8]&(1<<(uint(i)%8)) != 0
	}
	hashes, err := v.u64s(d[deHashesOff], hashN)
	if err != nil {
		return nil, fmt.Errorf("value hashes: %w", err)
	}
	hashCounts, err := v.i32s(d[deHashCountsOff], hashN)
	if err != nil {
		return nil, fmt.Errorf("hash counts: %w", err)
	}
	return table.EncodingFromParts(dict, codes, counts, nulls, hashes, hashCounts)
}
