// Package dict extracts data dictionaries — column → description
// mappings — from the metadata documents OGDPs publish. The paper
// (§3.4) finds that outside SG almost all dictionaries are in
// unstructured formats and calls automatic extraction "an important
// research topic"; this package implements extraction for the formats
// that dominate portals:
//
//   - structured CSV dictionaries ("column,description" rows),
//   - HTML definition lists (<dt>column</dt><dd>description</dd>),
//   - markdown-style bullet lists ("- column: description"),
//   - plain "column: description" or "column – description" lines.
//
// Extraction is heuristic by necessity; Coverage measures how much of
// a table's schema a candidate dictionary explains, which is the
// signal a data system would use to accept or reject an extraction.
package dict
