package dict

import (
	"testing"

	"ogdp/internal/gen"
	"ogdp/internal/table"
)

func TestExtractCSV(t *testing.T) {
	doc := "column,description\nid,Unique identifier\ncity,City name\nprovince,Province the city is in\n"
	d := Extract(doc)
	if d.Format != "csv" || len(d.Entries) != 3 {
		t.Fatalf("extract = %+v", d)
	}
	if desc, ok := d.Lookup("City"); !ok || desc != "City name" {
		t.Errorf("Lookup(City) = %q, %v", desc, ok)
	}
}

func TestExtractHTML(t *testing.T) {
	doc := `<html><body><h1>Dataset</h1><dl>
<dt>id</dt><dd>Unique identifier</dd>
<dt>species</dt><dd>The <b>species</b> recorded</dd>
</dl></body></html>`
	d := Extract(doc)
	if d.Format != "html" || len(d.Entries) != 2 {
		t.Fatalf("extract = %+v", d)
	}
	if desc, _ := d.Lookup("species"); desc != "The species recorded" {
		t.Errorf("tags not stripped: %q", desc)
	}
}

func TestExtractBullets(t *testing.T) {
	doc := "# Title\n\n- id: Unique identifier\n- `amount`: Dollar amount\n* year - Reporting year\n"
	d := Extract(doc)
	if d.Format != "bullets" || len(d.Entries) != 3 {
		t.Fatalf("extract = %+v", d)
	}
	if _, ok := d.Lookup("amount"); !ok {
		t.Error("backticked column not found")
	}
}

func TestExtractLines(t *testing.T) {
	doc := "Budget release notes.\n\nfund_code: Code of the fund\ndept number: Department number\n"
	d := Extract(doc)
	if len(d.Entries) != 2 {
		t.Fatalf("extract = %+v", d)
	}
}

func TestExtractNoise(t *testing.T) {
	doc := "This is just prose without any dictionary structure at all. Nothing here."
	d := Extract(doc)
	if len(d.Entries) != 0 {
		t.Errorf("noise produced entries: %+v", d.Entries)
	}
	if got := Extract(""); len(got.Entries) != 0 {
		t.Error("empty doc produced entries")
	}
}

func TestCoverage(t *testing.T) {
	tb := table.FromRows("t", []string{"id", "city", "province"}, [][]string{{"1", "a", "b"}})
	d := &Dictionary{Entries: []Entry{
		{Column: "ID", Description: "x"},
		{Column: "city", Description: "y"},
	}}
	if got := Coverage(d, tb); got != 2.0/3.0 {
		t.Errorf("coverage = %g", got)
	}
	if Coverage(d, table.New("e", nil)) != 0 {
		t.Error("empty table coverage should be 0")
	}
}

// TestRoundTripWithGenerator verifies the extraction pipeline end to
// end: generate a portal, render each dataset's metadata document in
// its (possibly messy) style, extract, and check the dictionary covers
// the dataset's tables.
func TestRoundTripWithGenerator(t *testing.T) {
	for _, prof := range []gen.PortalProfile{gen.SG(), gen.CA()} {
		corpus := gen.Generate(prof, 0.15, 5)
		documented, covered := 0, 0.0
		for _, ds := range corpus.Datasets {
			doc, ok := gen.MetadataDoc(corpus, ds.ID, 77)
			if !ok {
				continue
			}
			d := Extract(doc)
			if len(d.Entries) == 0 {
				t.Errorf("%s: dataset %s produced a doc but nothing extracted:\n%s", prof.Name, ds.ID, doc[:min(200, len(doc))])
				continue
			}
			for _, m := range corpus.Metas {
				if m.Dataset != ds.ID {
					continue
				}
				documented++
				covered += Coverage(d, m.Table)
			}
		}
		if documented == 0 {
			if prof.Name == "SG" {
				t.Errorf("SG: no documented datasets (all SG metadata is structured)")
			}
			continue
		}
		avg := covered / float64(documented)
		if avg < 0.9 {
			t.Errorf("%s: average dictionary coverage %.2f, want >= 0.9", prof.Name, avg)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	d := &Dictionary{Entries: []Entry{{Column: "a", Description: "x"}}}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("missing column found")
	}
}

// TestLookupIndexMatchesScan pins the indexed Lookup (built by
// Extract) to the literal-construction scan fallback: same
// case-insensitive matching, same first-entry-wins duplicate rule.
func TestLookupIndexMatchesScan(t *testing.T) {
	entries := []Entry{
		{Column: " ID ", Description: "first id"},
		{Column: "id", Description: "duplicate id"},
		{Column: "City", Description: "city name"},
	}
	indexed := &Dictionary{Entries: entries}
	indexed.index()
	scan := &Dictionary{Entries: entries}
	for _, col := range []string{"id", "ID", " id", "city", "CITY", "missing"} {
		di, oki := indexed.Lookup(col)
		ds, oks := scan.Lookup(col)
		if di != ds || oki != oks {
			t.Errorf("Lookup(%q): indexed = %q,%v scan = %q,%v", col, di, oki, ds, oks)
		}
	}
	if desc, _ := indexed.Lookup("id"); desc != "first id" {
		t.Errorf("duplicate rule broken: %q", desc)
	}
}

func BenchmarkLookup(b *testing.B) {
	var entries []Entry
	for i := 0; i < 200; i++ {
		entries = append(entries, Entry{Column: "col_" + string(rune('a'+i%26)) + string(rune('0'+i/26)), Description: "d"})
	}
	d := &Dictionary{Entries: entries}
	d.index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(entries[i%len(entries)].Column)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkExtract(b *testing.B) {
	corpus := gen.Generate(gen.CA(), 0.1, 5)
	var docs []string
	for _, ds := range corpus.Datasets {
		if doc, ok := gen.MetadataDoc(corpus, ds.ID, 77); ok {
			docs = append(docs, doc)
		}
	}
	if len(docs) == 0 {
		b.Skip("no docs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(docs[i%len(docs)])
	}
}
