package dict

import (
	"regexp"
	"strings"

	"ogdp/internal/table"
)

// Entry is one extracted dictionary row.
type Entry struct {
	Column      string
	Description string
}

// Dictionary is an extracted data dictionary.
type Dictionary struct {
	Entries []Entry
	// Format names the winning parser: "csv", "html", "bullets",
	// "lines", or "" when nothing parsed.
	Format string

	// byCanon indexes Entries by canonical column name (first entry
	// wins). Extract builds it; literal-constructed dictionaries leave
	// it nil and Lookup falls back to a scan, which keeps concurrent
	// lookups safe on a shared Dictionary.
	byCanon map[string]int
}

// Lookup returns the description for a column name
// (case-insensitively), or ok=false.
func (d *Dictionary) Lookup(column string) (string, bool) {
	needle := canonical(column)
	if d.byCanon != nil {
		if i, ok := d.byCanon[needle]; ok {
			return d.Entries[i].Description, true
		}
		return "", false
	}
	for _, e := range d.Entries {
		if canonical(e.Column) == needle {
			return e.Description, true
		}
	}
	return "", false
}

// index builds the canonical-name index; the earliest entry for a
// name wins, matching the scan order of Lookup's fallback.
func (d *Dictionary) index() {
	d.byCanon = make(map[string]int, len(d.Entries))
	for i := len(d.Entries) - 1; i >= 0; i-- {
		d.byCanon[canonical(d.Entries[i].Column)] = i
	}
}

func canonical(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// Extract parses a metadata document with every known format and
// returns the parse with the most entries.
func Extract(doc string) *Dictionary {
	best := &Dictionary{}
	for _, p := range []struct {
		name  string
		parse func(string) []Entry
	}{
		{"html", parseHTML},
		{"csv", parseCSV},
		{"bullets", parseBullets},
		{"lines", parseLines},
	} {
		entries := p.parse(doc)
		if len(entries) > len(best.Entries) {
			best = &Dictionary{Entries: entries, Format: p.name}
		}
	}
	best.index()
	return best
}

// Coverage is the fraction of the table's columns the dictionary
// describes.
func Coverage(d *Dictionary, t *table.Table) float64 {
	if t.NumCols() == 0 {
		return 0
	}
	n := 0
	for _, col := range t.Cols {
		if _, ok := d.Lookup(col); ok {
			n++
		}
	}
	return float64(n) / float64(t.NumCols())
}

var dtddRe = regexp.MustCompile(`(?is)<dt[^>]*>(.*?)</dt>\s*<dd[^>]*>(.*?)</dd>`)
var tagRe = regexp.MustCompile(`<[^>]+>`)

// parseHTML extracts <dt>/<dd> definition pairs.
func parseHTML(doc string) []Entry {
	var out []Entry
	for _, m := range dtddRe.FindAllStringSubmatch(doc, -1) {
		col := cleanCell(tagRe.ReplaceAllString(m[1], ""))
		desc := cleanCell(tagRe.ReplaceAllString(m[2], ""))
		if plausibleColumn(col) && desc != "" {
			out = append(out, Entry{Column: col, Description: desc})
		}
	}
	return out
}

// parseCSV extracts "column,description" rows, skipping an optional
// header row.
func parseCSV(doc string) []Entry {
	var out []Entry
	for i, line := range strings.Split(doc, "\n") {
		line = strings.TrimRight(line, "\r")
		idx := strings.IndexByte(line, ',')
		if idx <= 0 {
			continue
		}
		col := cleanCell(line[:idx])
		desc := cleanCell(line[idx+1:])
		if i == 0 && (canonical(col) == "column" || canonical(col) == "field" || canonical(col) == "name") {
			continue
		}
		// CSV dictionaries have simple one-token column cells; prose with
		// commas does not.
		if plausibleColumn(col) && desc != "" && !strings.ContainsAny(col, ":–-") {
			out = append(out, Entry{Column: col, Description: desc})
		}
	}
	return out
}

var bulletRe = regexp.MustCompile("^\\s*[-*•]\\s*`?([A-Za-z0-9_ ]{1,40})`?\\s*[:—–-]\\s+(.+)$")

// parseBullets extracts "- column: description" style lines.
func parseBullets(doc string) []Entry {
	var out []Entry
	for _, line := range strings.Split(doc, "\n") {
		m := bulletRe.FindStringSubmatch(strings.TrimRight(line, "\r"))
		if m == nil {
			continue
		}
		col := cleanCell(m[1])
		desc := cleanCell(m[2])
		if plausibleColumn(col) && desc != "" {
			out = append(out, Entry{Column: col, Description: desc})
		}
	}
	return out
}

var lineRe = regexp.MustCompile(`^\s*([A-Za-z][A-Za-z0-9_ ]{0,39})\s*[:—–]\s+(.+)$`)

// parseLines extracts bare "column: description" lines.
func parseLines(doc string) []Entry {
	var out []Entry
	for _, line := range strings.Split(doc, "\n") {
		m := lineRe.FindStringSubmatch(strings.TrimRight(line, "\r"))
		if m == nil {
			continue
		}
		col := cleanCell(m[1])
		desc := cleanCell(m[2])
		if plausibleColumn(col) && desc != "" {
			out = append(out, Entry{Column: col, Description: desc})
		}
	}
	return out
}

func cleanCell(s string) string {
	s = strings.TrimSpace(s)
	s = strings.Trim(s, `"`)
	return strings.TrimSpace(s)
}

// plausibleColumn filters extraction noise: column identifiers are
// short, start with a letter, and contain no sentence punctuation.
func plausibleColumn(s string) bool {
	if len(s) == 0 || len(s) > 40 {
		return false
	}
	if !(s[0] >= 'a' && s[0] <= 'z' || s[0] >= 'A' && s[0] <= 'Z') {
		return false
	}
	if strings.ContainsAny(s, ".!?;") {
		return false
	}
	return strings.Count(s, " ") <= 3
}
