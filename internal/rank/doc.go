// Package rank orders joinable and unionable candidates for
// suggestion, the open problem the paper closes §6 with: "even if
// multiple tables can be unioned with a target table because they have
// the same unionability score, they should still be ranked using other
// relatedness metrics". Join ranking combines the non-value signals
// §5.3 found predictive (dataset locality, key involvement, join-column
// type, expansion); union ranking scores candidates that share all but
// one partition dimension above those that differ everywhere (the
// housing-dataset example of §4.1: same council with a different house
// type beats a different council and a different house type).
package rank
