package rank

import (
	"fmt"
	"strconv"
	"testing"

	"ogdp/internal/join"
	"ogdp/internal/table"
	"ogdp/internal/union"
)

func TestScoreJoinSignals(t *testing.T) {
	// Two tables sharing a categorical key domain, same dataset.
	mk := func(name, ds string) *table.Table {
		tb := table.New(name, []string{"species"})
		tb.DatasetID = ds
		for i := 0; i < 30; i++ {
			tb.AppendRow([]string{fmt.Sprintf("Species %c%d", 'A'+i%26, i)})
		}
		return tb
	}
	good := []*table.Table{mk("a.csv", "d"), mk("b.csv", "d")}
	goodPairs := join.Find(good, join.Options{}).Pairs
	if len(goodPairs) != 1 {
		t.Fatal("expected one pair")
	}

	// Two unrelated tables overlapping on incremental ids with large
	// expansion.
	mkID := func(name, ds string) *table.Table {
		tb := table.New(name, []string{"id"})
		tb.DatasetID = ds
		for i := 0; i < 60; i++ {
			tb.AppendRow([]string{strconv.Itoa(i%20 + 1)}) // repeats -> expansion
		}
		return tb
	}
	bad := []*table.Table{mkID("x.csv", "d1"), mkID("y.csv", "d2")}
	badPairs := join.Find(bad, join.Options{}).Pairs
	if len(badPairs) != 1 {
		t.Fatal("expected one bad pair")
	}

	gs := ScoreJoin(good, goodPairs[0], JoinWeights{})
	bs := ScoreJoin(bad, badPairs[0], JoinWeights{})
	if gs <= bs {
		t.Errorf("useful-looking pair scored %.2f, accidental-looking %.2f", gs, bs)
	}
}

func TestRankJoinsOrdering(t *testing.T) {
	mk := func(name, ds, col string, vals []string) *table.Table {
		tb := table.New(name, []string{col})
		tb.DatasetID = ds
		for _, v := range vals {
			tb.AppendRow([]string{v})
		}
		return tb
	}
	var species []string
	var ids []string
	for i := 0; i < 25; i++ {
		species = append(species, fmt.Sprintf("Sp %c%d", 'A'+i%26, i))
		ids = append(ids, strconv.Itoa(i+1))
	}
	tables := []*table.Table{
		mk("m.csv", "d1", "species", species),
		mk("a.csv", "d1", "species", species),
		mk("p.csv", "d2", "id", ids),
		mk("q.csv", "d3", "id", ids),
	}
	pairs := join.Find(tables, join.Options{}).Pairs
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
	ranked := RankJoins(tables, pairs, JoinWeights{})
	top := ranked[0].Pair
	if tables[top.T1].Cols[top.C1] != "species" {
		t.Errorf("species same-dataset pair should rank first, got %v", top)
	}
	if ranked[0].Score <= ranked[1].Score {
		t.Error("scores not strictly ordered")
	}
}

// TestUnionHousingScenario reproduces the paper's housing example:
// tables partitioned on (house type × council). A candidate sharing
// the council or the house type must outrank one differing in both.
func TestUnionHousingScenario(t *testing.T) {
	mk := func(houseType, council string) *table.Table {
		name := fmt.Sprintf("housing-%s-%s.csv", houseType, council)
		tb := table.New(name, []string{"house_type", "council", "year", "starts"})
		tb.DatasetID = "housing"
		for y := 0; y < 15; y++ {
			tb.AppendRow([]string{houseType, council, strconv.Itoa(2005 + y), strconv.Itoa((y*37 + len(houseType)) % 500)})
		}
		return tb
	}
	target := mk("detached", "camden")
	sameCouncil := mk("flat", "camden")
	sameType := mk("detached", "hackney")
	neither := mk("terraced", "islington")
	tables := []*table.Table{target, sameCouncil, sameType, neither}

	ua := union.Find(tables)
	if len(ua.Groups) != 1 || len(ua.Groups[0].Tables) != 4 {
		t.Fatalf("union groups = %+v", ua.Groups)
	}
	ranked := RankUnionCandidates(ua, 0, UnionWeights{})
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	// "neither" must come last.
	if ranked[len(ranked)-1].Table != 3 {
		t.Errorf("candidate differing in both dimensions should rank last: %+v", ranked)
	}
	for _, r := range ranked[:2] {
		if r.Table == 3 {
			t.Errorf("one-dimension candidates should outrank the two-dimension one: %+v", ranked)
		}
	}
}

func TestRankUnionCandidatesNotUnionable(t *testing.T) {
	a := table.FromRows("a.csv", []string{"x"}, [][]string{{"1"}})
	b := table.FromRows("b.csv", []string{"y"}, [][]string{{"2"}})
	ua := union.Find([]*table.Table{a, b})
	if got := RankUnionCandidates(ua, 0, UnionWeights{}); got != nil {
		t.Errorf("non-unionable target ranked: %v", got)
	}
}

func TestNameOverlap(t *testing.T) {
	cases := []struct {
		a, b string
		want bool // > 0
	}{
		{"housing-starts-2019.csv", "housing-starts-2020.csv", true},
		{"fish-landings-part1.csv", "crime-stats-part2.csv", false},
		{"a.csv", "a.csv", true},
	}
	for _, c := range cases {
		got := nameOverlap(c.a, c.b)
		if (got > 0) != c.want {
			t.Errorf("nameOverlap(%q, %q) = %g", c.a, c.b, got)
		}
	}
	if nameOverlap("housing-2019.csv", "housing-2020.csv") != 1 {
		t.Error("year tokens should be ignored")
	}
}

func BenchmarkRankJoins(b *testing.B) {
	var tables []*table.Table
	for i := 0; i < 40; i++ {
		tb := table.New(fmt.Sprintf("t%d.csv", i), []string{"id"})
		tb.DatasetID = fmt.Sprintf("d%d", i/4)
		for r := 0; r < 100; r++ {
			tb.AppendRow([]string{strconv.Itoa(r + 1)})
		}
		tables = append(tables, tb)
	}
	pairs := join.Find(tables, join.Options{}).Pairs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankJoins(tables, pairs, JoinWeights{})
	}
}
