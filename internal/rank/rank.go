package rank

import (
	"sort"
	"strings"

	"ogdp/internal/classify"
	"ogdp/internal/join"
	"ogdp/internal/table"
	"ogdp/internal/union"
)

// JoinWeights weights the join-ranking signals. The zero value is
// replaced by DefaultJoinWeights.
type JoinWeights struct {
	// SameDataset rewards intra-dataset pairs (the strongest useful
	// signal in Table 8).
	SameDataset float64
	// KeyKey and KeyNonkey reward key involvement (Table 9).
	KeyKey    float64
	KeyNonkey float64
	// TypeWeight scales the per-type prior from Table 10.
	TypeWeight float64
	// ExpansionPenalty is subtracted per doubling of the expansion
	// ratio beyond 1 (high expansions mark accidental pairs, §5.2).
	ExpansionPenalty float64
	// Jaccard weights the raw overlap itself.
	Jaccard float64
}

// DefaultJoinWeights approximates the label frequencies of Tables 8-10.
func DefaultJoinWeights() JoinWeights {
	return JoinWeights{
		SameDataset:      0.35,
		KeyKey:           0.25,
		KeyNonkey:        0.12,
		TypeWeight:       0.20,
		ExpansionPenalty: 0.08,
		Jaccard:          0.10,
	}
}

// typePrior is the Table 10 usefulness prior per join-column type
// group, normalized to [0, 1].
var typePrior = map[string]float64{
	"incremental integer": 0.0,
	"categorical":         1.0,
	"integer":             0.5,
	"string":              0.7,
	"timestamp":           0.6,
	"geo-spatial":         0.8,
}

// ScoredJoin is a join pair with its ranking score.
type ScoredJoin struct {
	Pair  join.Pair
	Score float64
}

// ScoreJoin scores one pair in [roughly] 0..1; higher means more
// likely useful.
func ScoreJoin(tables []*table.Table, p join.Pair, w JoinWeights) float64 {
	if w == (JoinWeights{}) {
		w = DefaultJoinWeights()
	}
	var s float64
	t1, t2 := tables[p.T1], tables[p.T2]
	if t1.DatasetID != "" && t1.DatasetID == t2.DatasetID {
		s += w.SameDataset
	}
	switch classify.ComboOf(p) {
	case classify.KeyKey:
		s += w.KeyKey
	case classify.KeyNonkey:
		s += w.KeyNonkey
	}
	s += w.TypeWeight * typePrior[classify.JoinTypeGroup(t1.Profile(p.C1).Type)]
	s += w.Jaccard * p.Jaccard
	// Penalize growth: log2 of the expansion beyond 1.
	exp := p.Expansion
	for exp > 1 && w.ExpansionPenalty > 0 {
		s -= w.ExpansionPenalty
		exp /= 2
	}
	return s
}

// RankJoins scores and sorts all pairs, best first. Ties break on
// Jaccard, then on pair identity for determinism.
func RankJoins(tables []*table.Table, pairs []join.Pair, w JoinWeights) []ScoredJoin {
	out := make([]ScoredJoin, len(pairs))
	for i, p := range pairs {
		out[i] = ScoredJoin{Pair: p, Score: ScoreJoin(tables, p, w)}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score > out[j].Score {
			return true
		}
		if out[i].Score < out[j].Score {
			return false
		}
		return out[i].Pair.Jaccard > out[j].Pair.Jaccard
	})
	return out
}

// ScoredUnion is a union candidate with its relatedness score.
type ScoredUnion struct {
	// Table indexes the candidate in the analyzed corpus.
	Table int
	Score float64
}

// UnionWeights weights the union-ranking signals.
type UnionWeights struct {
	// SameDataset rewards candidates published under the target's
	// dataset.
	SameDataset float64
	// NameOverlap rewards shared table-name tokens (periodic series
	// share a stem: "housing-starts-2019" vs "housing-starts-2020").
	NameOverlap float64
	// ColumnOverlap rewards per-column value overlap with the target:
	// a candidate that differs in only one partition dimension shares
	// most column domains.
	ColumnOverlap float64
}

// DefaultUnionWeights balances the three relatedness signals.
func DefaultUnionWeights() UnionWeights {
	return UnionWeights{SameDataset: 0.3, NameOverlap: 0.2, ColumnOverlap: 0.5}
}

// RankUnionCandidates ranks the other members of target's unionable
// group by relatedness to target, best first. It returns nil when the
// target is not unionable.
func RankUnionCandidates(a *union.Analysis, target int, w UnionWeights) []ScoredUnion {
	if w == (UnionWeights{}) {
		w = DefaultUnionWeights()
	}
	var group *union.Group
	for i := range a.Groups {
		for _, t := range a.Groups[i].Tables {
			if t == target {
				group = &a.Groups[i]
				break
			}
		}
		if group != nil {
			break
		}
	}
	if group == nil {
		return nil
	}
	tt := a.Tables[target]
	var out []ScoredUnion
	for _, ci := range group.Tables {
		if ci == target {
			continue
		}
		cand := a.Tables[ci]
		var s float64
		if tt.DatasetID != "" && tt.DatasetID == cand.DatasetID {
			s += w.SameDataset
		}
		s += w.NameOverlap * nameOverlap(tt.Name, cand.Name)
		s += w.ColumnOverlap * columnOverlap(tt, cand)
		out = append(out, ScoredUnion{Table: ci, Score: s})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score > out[j].Score {
			return true
		}
		if out[i].Score < out[j].Score {
			return false
		}
		return out[i].Table < out[j].Table
	})
	return out
}

// nameOverlap is the Jaccard similarity of the tables' name tokens
// (split on non-alphanumerics, numbers dropped so periods don't
// dominate).
func nameOverlap(a, b string) float64 {
	ta := nameTokens(a)
	tb := nameTokens(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for tok := range ta {
		if _, ok := tb[tok]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(ta)+len(tb)-inter)
}

func nameTokens(name string) map[string]struct{} {
	out := map[string]struct{}{}
	tok := strings.FieldsFunc(strings.ToLower(name), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	for _, t := range tok {
		if t == "csv" || t == "" || isNumber(t) {
			continue
		}
		out[t] = struct{}{}
	}
	return out
}

func isNumber(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// columnOverlap averages the per-column Jaccard similarity of distinct
// value sets between two same-schema tables. Candidates partitioned
// along fewer dimensions from the target share more column domains and
// score higher.
func columnOverlap(a, b *table.Table) float64 {
	n := a.NumCols()
	if n == 0 || b.NumCols() != n {
		return 0
	}
	var sum float64
	for c := 0; c < n; c++ {
		ha := a.Profile(c).ValueHashes()
		hb := b.Profile(c).ValueHashes()
		inter := 0
		i, j := 0, 0
		for i < len(ha) && j < len(hb) {
			switch {
			case ha[i] == hb[j]:
				inter++
				i++
				j++
			case ha[i] < hb[j]:
				i++
			default:
				j++
			}
		}
		unionSize := len(ha) + len(hb) - inter
		if unionSize > 0 {
			sum += float64(inter) / float64(unionSize)
		}
	}
	return sum / float64(n)
}
