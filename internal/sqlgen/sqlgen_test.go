package sqlgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"ogdp/internal/fd"
	"ogdp/internal/normalize"
	"ogdp/internal/table"
)

func grants() *table.Table {
	t := table.New("grants.csv", []string{"grant_id", "city", "amount", "notes"})
	for i := 0; i < 30; i++ {
		notes := "ok"
		if i%5 == 0 {
			notes = ""
		}
		t.AppendRow([]string{
			strconv.Itoa(i + 1),
			[]string{"Waterloo", "Toronto", "Montreal"}[i%3],
			fmt.Sprintf("%d.5", 100+i),
			notes,
		})
	}
	return t
}

func TestSchemaBasics(t *testing.T) {
	ddl := Schema([]*table.Table{grants()}, Options{})
	wants := []string{
		`CREATE TABLE "grants" (`,
		`"grant_id" INTEGER NOT NULL`,
		`"city" TEXT NOT NULL`,
		`"amount" REAL NOT NULL`,
		`"notes" TEXT`, // has nulls: no NOT NULL
		`PRIMARY KEY ("grant_id")`,
	}
	for _, w := range wants {
		if !strings.Contains(ddl, w) {
			t.Errorf("DDL missing %q:\n%s", w, ddl)
		}
	}
	if strings.Contains(ddl, `"notes" TEXT NOT NULL`) {
		t.Error("nullable column marked NOT NULL")
	}
}

func TestSchemaPostgresTypes(t *testing.T) {
	ddl := Schema([]*table.Table{grants()}, Options{Dialect: "postgres"})
	if !strings.Contains(ddl, "BIGINT") || !strings.Contains(ddl, "DOUBLE PRECISION") {
		t.Errorf("postgres types missing:\n%s", ddl)
	}
}

func TestSchemaCompositeKey(t *testing.T) {
	tb := table.New("panel.csv", []string{"city", "year", "value"})
	for _, c := range []string{"Waterloo", "Toronto"} {
		for y := 2018; y <= 2022; y++ {
			tb.AppendRow([]string{c, strconv.Itoa(y), "1"})
		}
	}
	ddl := Schema([]*table.Table{tb}, Options{})
	if !strings.Contains(ddl, `PRIMARY KEY ("city", "year")`) {
		t.Errorf("composite key missing:\n%s", ddl)
	}
}

func TestSchemaForeignKeys(t *testing.T) {
	lookup := table.New("species.csv", []string{"species", "grp"})
	for i := 0; i < 20; i++ {
		lookup.AppendRow([]string{fmt.Sprintf("Species %02d", i), "G"})
	}
	facts := table.New("landings.csv", []string{"rec_id", "species", "weight"})
	for r := 0; r < 80; r++ {
		facts.AppendRow([]string{strconv.Itoa(r + 1), fmt.Sprintf("Species %02d", r%20), strconv.Itoa(r)})
	}
	ddl := Schema([]*table.Table{lookup, facts}, Options{ForeignKeys: true})
	if !strings.Contains(ddl, `FOREIGN KEY ("species") REFERENCES "species" ("species")`) {
		t.Errorf("foreign key missing:\n%s", ddl)
	}
}

func TestSchemaOfBCNFDecomposition(t *testing.T) {
	// End to end: decompose a denormalized table, emit its schema with
	// fks — the paper's "serve the base tables" suggestion.
	orig := table.New("awards.csv", []string{"award_id", "city", "province", "amount"})
	cities := []struct{ c, p string }{{"Waterloo", "ON"}, {"Toronto", "ON"}, {"Montreal", "QC"}}
	for i := 0; i < 60; i++ {
		c := cities[i%3]
		orig.AppendRow([]string{strconv.Itoa(i + 1), c.c, c.p, strconv.Itoa(1000 + i)})
	}
	res := normalize.Decompose(orig, fd.MaxLHS, rand.New(rand.NewSource(2)))
	if res.InBCNF() {
		t.Fatal("expected decomposition")
	}
	ddl := Schema(res.Tables, Options{ForeignKeys: true})
	if !strings.Contains(ddl, "CREATE TABLE") {
		t.Fatalf("no DDL:\n%s", ddl)
	}
	count := strings.Count(ddl, "CREATE TABLE")
	if count != len(res.Tables) {
		t.Errorf("CREATE TABLE count = %d, want %d", count, len(res.Tables))
	}
}

func TestIdentifier(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Fund Code", `"fund_code"`},
		{"fund_code", `"fund_code"`},
		{"  weird--name  ", `"weird_name"`},
		{"123abc", `"t_123abc"`},
		{"%%%", `"col"`},
		{"UPPER", `"upper"`},
	}
	for _, c := range cases {
		if got := Identifier(c.in); got != c.want {
			t.Errorf("Identifier(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestNoKeyTable(t *testing.T) {
	tb := table.FromRows("dup.csv", []string{"a", "b"}, [][]string{
		{"x", "y"}, {"x", "y"},
	})
	ddl := Schema([]*table.Table{tb}, Options{})
	if strings.Contains(ddl, "PRIMARY KEY") {
		t.Errorf("keyless table got a primary key:\n%s", ddl)
	}
}
