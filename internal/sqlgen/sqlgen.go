package sqlgen

import (
	"fmt"
	"sort"
	"strings"

	"ogdp/internal/ind"
	"ogdp/internal/keys"
	"ogdp/internal/table"
	"ogdp/internal/values"
)

// Options tunes Schema.
type Options struct {
	// Dialect is "sqlite" (default) or "postgres"; it only affects type
	// names.
	Dialect string
	// ForeignKeys derives FOREIGN KEY clauses from inclusion
	// dependencies between the given tables.
	ForeignKeys bool
}

// Schema renders CREATE TABLE statements for the tables. Tables
// sharing a file name (e.g. the sub-tables of one decomposition) get
// disambiguating suffixes.
func Schema(tables []*table.Table, opts Options) string {
	var b strings.Builder
	fks := map[int][]ind.IND{}
	if opts.ForeignKeys {
		// Small lookup domains are legitimate fk targets inside one
		// schema, so the corpus-level distinct filter is relaxed.
		inds := ind.Find(tables, ind.Options{MinDistinct: 2})
		for _, d := range ind.ForeignKeyCandidates(tables, inds) {
			fks[d.DepTable] = append(fks[d.DepTable], d)
		}
	}
	names := disambiguated(tables)
	for ti := range tables {
		if ti > 0 {
			b.WriteString("\n")
		}
		writeCreate(&b, tables, ti, names, fks[ti], opts)
	}
	return b.String()
}

// disambiguated assigns unique SQL table names: duplicates are
// suffixed with their key column when one exists, else a counter.
func disambiguated(tables []*table.Table) []string {
	names := make([]string, len(tables))
	used := map[string]int{}
	for ti, t := range tables {
		base := tableName(t.Name)
		used[base]++
		names[ti] = base
	}
	seen := map[string]int{}
	for ti, t := range tables {
		base := tableName(t.Name)
		if used[base] == 1 {
			continue
		}
		if ks := keys.KeyColumns(t); len(ks) > 0 {
			names[ti] = base + "_by_" + strings.ToLower(t.Cols[ks[0]])
		}
		seen[names[ti]]++
		if seen[names[ti]] > 1 {
			names[ti] = fmt.Sprintf("%s_%d", names[ti], seen[names[ti]])
		}
	}
	return names
}

func writeCreate(b *strings.Builder, tables []*table.Table, ti int, names []string, fks []ind.IND, opts Options) {
	t := tables[ti]
	fmt.Fprintf(b, "CREATE TABLE %s (\n", Identifier(names[ti]))

	var lines []string
	for c := range t.Cols {
		p := t.Profile(c)
		line := fmt.Sprintf("  %s %s", Identifier(t.Cols[c]), sqlType(p.Type, opts.Dialect))
		if p.Nulls == 0 && t.NumRows() > 0 {
			line += " NOT NULL"
		}
		lines = append(lines, line)
	}

	if ks := keys.KeyColumns(t); len(ks) > 0 {
		lines = append(lines, fmt.Sprintf("  PRIMARY KEY (%s)", Identifier(t.Cols[ks[0]])))
	} else if size := keys.MinCandidateKeySize(t, keys.MaxCandidateKeySize); size > 1 {
		if combo := compositeKey(t, size); combo != nil {
			var names []string
			for _, c := range combo {
				names = append(names, Identifier(t.Cols[c]))
			}
			lines = append(lines, fmt.Sprintf("  PRIMARY KEY (%s)", strings.Join(names, ", ")))
		}
	}

	// One FK per dependent column: prefer the reference with the
	// fewest rows (the most lookup-like target).
	seenDep := map[int]bool{}
	sort.Slice(fks, func(i, j int) bool {
		return tables[fks[i].RefTable].NumRows() < tables[fks[j].RefTable].NumRows()
	})
	for _, d := range fks {
		if seenDep[d.DepCol] {
			continue
		}
		seenDep[d.DepCol] = true
		ref := tables[d.RefTable]
		lines = append(lines, fmt.Sprintf("  FOREIGN KEY (%s) REFERENCES %s (%s)",
			Identifier(t.Cols[d.DepCol]), Identifier(names[d.RefTable]), Identifier(ref.Cols[d.RefCol])))
	}

	b.WriteString(strings.Join(lines, ",\n"))
	b.WriteString("\n);\n")
}

// compositeKey finds one minimal candidate key of the given size.
func compositeKey(t *table.Table, size int) []int {
	n := t.NumRows()
	var cols []int
	for c := range t.Cols {
		cols = append(cols, c)
	}
	combo := make([]int, size)
	var found []int
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == size {
			if t.DistinctCount(combo) == n {
				found = append([]int(nil), combo...)
				return true
			}
			return false
		}
		for i := start; i <= len(cols)-(size-depth); i++ {
			combo[depth] = cols[i]
			if rec(i+1, depth+1) {
				return true
			}
		}
		return false
	}
	rec(0, 0)
	return found
}

// sqlType maps an inferred column type to a SQL type name.
func sqlType(t values.ColumnType, dialect string) string {
	pg := dialect == "postgres"
	switch t {
	case values.ColIncrementalInt, values.ColInt:
		if pg {
			return "BIGINT"
		}
		return "INTEGER"
	case values.ColFloat:
		if pg {
			return "DOUBLE PRECISION"
		}
		return "REAL"
	case values.ColBool:
		return "BOOLEAN"
	case values.ColTimestamp:
		if pg {
			return "TIMESTAMP"
		}
		return "TEXT" // SQLite stores datetimes as text
	default:
		return "TEXT"
	}
}

// Identifier quotes a SQL identifier, normalizing it to
// lower_snake_case first.
func Identifier(name string) string {
	var b strings.Builder
	prevUnderscore := false
	for _, r := range strings.TrimSpace(strings.ToLower(name)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			prevUnderscore = false
		default:
			if !prevUnderscore && b.Len() > 0 {
				b.WriteByte('_')
				prevUnderscore = true
			}
		}
	}
	s := strings.Trim(b.String(), "_")
	if s == "" {
		s = "col"
	}
	if s[0] >= '0' && s[0] <= '9' {
		s = "t_" + s
	}
	return `"` + s + `"`
}

// tableName strips the .csv suffix.
func tableName(name string) string {
	return strings.TrimSuffix(name, ".csv")
}
