// Package sqlgen renders analyzed tables as SQL DDL: column types
// from inference (§3.3), primary keys from key discovery (§4.2), and
// foreign keys from inclusion-dependency analysis. The paper's §4.3
// suggests data systems should decompose OGDP tables and serve the
// base tables; exporting a decomposition as a relational schema (plus
// INSERT-ready column order) is the concrete form of that suggestion.
package sqlgen
