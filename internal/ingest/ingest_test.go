package ingest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ogdp/internal/csvio"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/gen"
	"ogdp/internal/query"
	"ogdp/internal/table"
)

// fixture saves a generated corpus and builds a snapshot directory
// derived from it with exactly one added, one updated, and one deleted
// table. Returns both directories and the victims' names.
func fixture(t *testing.T) (corpusDir, snapDir, updated, deleted string) {
	t.Helper()
	corpusDir = t.TempDir()
	snapDir = t.TempDir()
	c := gen.Generate(gen.CA(), 0.03, 9)
	if len(c.Metas) < 3 {
		t.Fatalf("fixture corpus too small: %d tables", len(c.Metas))
	}
	if _, err := gen.SaveCorpus(corpusDir, c); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".csv") {
			names = append(names, e.Name())
		}
	}
	updated, deleted = names[0], names[1]
	for _, name := range names {
		if name == deleted {
			continue
		}
		body, err := os.ReadFile(filepath.Join(corpusDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if name == updated {
			// Revise the table: append rows so content and profiles change.
			rev, err := parseSnapshot(name, body)
			if err != nil {
				t.Fatal(err)
			}
			row := make([]string, rev.NumCols())
			for i := range row {
				row[i] = fmt.Sprintf("revised-%d", i)
			}
			rev.AppendRow(row)
			body = csvBytes(t, rev)
		}
		if err := os.WriteFile(filepath.Join(snapDir, name), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	added := table.FromRows("zz-new-arrivals.csv", []string{"permit_id", "holder"}, [][]string{
		{"P-100", "alpha"}, {"P-101", "beta"}, {"P-102", "gamma"}, {"P-103", "delta"},
		{"P-104", "epsilon"}, {"P-105", "zeta"}, {"P-106", "eta"}, {"P-107", "theta"},
		{"P-108", "iota"}, {"P-109", "kappa"}, {"P-110", "lambda"}, {"P-111", "mu"},
	})
	if err := os.WriteFile(filepath.Join(snapDir, added.Name), csvBytes(t, added), 0o644); err != nil {
		t.Fatal(err)
	}
	return corpusDir, snapDir, updated, deleted
}

func csvBytes(t *testing.T, tb *table.Table) []byte {
	t.Helper()
	return csvio.Bytes(tb)
}

func service(t *testing.T, dir string) *query.Service {
	t.Helper()
	src, err := diskcorpus.LoadStudy(dir)
	if err != nil {
		t.Fatal(err)
	}
	return query.New(src, query.Options{})
}

// TestIncrementalIngestMatchesRebuild is the acceptance check for the
// delta path: detect a 1-add + 1-update + 1-delete snapshot, patch a
// live service in place, commit the delta to disk, and compare against
// a service rebuilt from scratch over the patched corpus — content
// hash and every rendered answer must be identical, with only the
// changed tables parsed.
func TestIncrementalIngestMatchesRebuild(t *testing.T) {
	corpusDir, snapDir, updated, deleted := fixture(t)
	patched := service(t, corpusDir)

	plan, err := Detect(corpusDir, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Added) != 1 || len(plan.Updated) != 1 || len(plan.Deleted) != 1 {
		t.Fatalf("plan = %s, want 1/1/1", plan.Summary())
	}
	if plan.Updated[0].Name != updated || plan.Deleted[0] != deleted {
		t.Fatalf("plan victims = %s/%s, want %s/%s",
			plan.Updated[0].Name, plan.Deleted[0], updated, deleted)
	}
	if plan.Unchanged == 0 {
		t.Fatal("fixture left no unchanged tables; proportionality check is vacuous")
	}
	if plan.Updated[0].DatasetID == "" {
		t.Fatal("updated table lost its dataset attribution")
	}

	if err := patched.ApplyDelta(QueryDelta(plan)); err != nil {
		t.Fatal(err)
	}
	if err := Apply(corpusDir, plan); err != nil {
		t.Fatal(err)
	}
	rebuilt := service(t, corpusDir)

	if patched.Hash() != rebuilt.Hash() {
		t.Fatalf("content hash: patched %s, rebuilt %s", patched.HashString(), rebuilt.HashString())
	}
	if patched.NumTables() != rebuilt.NumTables() || patched.NumIndexed() != rebuilt.NumIndexed() {
		t.Fatalf("patched %d tables/%d indexed, rebuilt %d/%d",
			patched.NumTables(), patched.NumIndexed(), rebuilt.NumTables(), rebuilt.NumIndexed())
	}
	if patched.TableIndex(deleted) != -1 {
		t.Fatalf("deleted table %s still resolvable", deleted)
	}

	ctx := context.Background()
	for _, info := range rebuilt.Tables() {
		for _, kind := range []string{query.KindJoin, query.KindUnion, query.KindRank, query.KindProfile} {
			req := query.Request{Kind: kind, Table: info.Name}
			got, gotErr := patched.Do(ctx, req)
			want, wantErr := rebuilt.Do(ctx, req)
			if (gotErr == nil) != (wantErr == nil) || got != want {
				t.Fatalf("%s %s: patched answer differs from rebuild\npatched err=%v:\n%s\nrebuilt err=%v:\n%s",
					kind, info.Name, gotErr, got, wantErr, want)
			}
		}
	}

	// Re-detecting against the same snapshot finds nothing left to do.
	again, err := Detect(corpusDir, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Fatalf("post-apply detect = %s, want empty", again.Summary())
	}
}

// TestApplyDeltaRejectsInconsistentDelta pins the all-or-nothing
// validation of the live patch path.
func TestApplyDeltaRejectsInconsistentDelta(t *testing.T) {
	corpusDir, snapDir, _, _ := fixture(t)
	svc := service(t, corpusDir)
	before := svc.Hash()

	plan, err := Detect(corpusDir, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	d := QueryDelta(plan)
	d.Deleted = append(d.Deleted, "no-such-table.csv")
	if err := svc.ApplyDelta(d); err == nil {
		t.Fatal("delta deleting an unknown table must be rejected")
	}
	if svc.Hash() != before {
		t.Fatal("failed ApplyDelta mutated the service")
	}

	dup := QueryDelta(plan)
	dup.Deleted = append(dup.Deleted, dup.Updated[0].Table.Name)
	if err := svc.ApplyDelta(dup); err == nil {
		t.Fatal("delta naming a table twice must be rejected")
	}
}
