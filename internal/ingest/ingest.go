// Package ingest implements incremental corpus maintenance: delta
// detection between a saved corpus and a fresh snapshot of its tables,
// committing the delta to the corpus directory, and projecting it into
// a query.Delta so a live service patches its indexes in place instead
// of rebuilding.
//
// Detection is hash-only: the saved corpus's provenance manifest
// carries each table's CSV content hash, so deciding what changed
// costs one file read and one FNV pass per snapshot table — no
// parsing. Only the added and updated tables are parsed and
// re-profiled; work is proportional to the delta, never the corpus.
package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ogdp/internal/colstore"
	"ogdp/internal/corpus"
	"ogdp/internal/csvio"
	"ogdp/internal/gen"
	"ogdp/internal/query"
	"ogdp/internal/table"
)

// Change is one added or updated table in a detected plan.
type Change struct {
	// Name is the table file name.
	Name string
	// Body is the snapshot's exact CSV bytes (stored verbatim).
	Body []byte
	// Hash is the FNV-64a content hash of Body.
	Hash uint64
	// Table is the parsed revision.
	Table *table.Table
	// DatasetID and Published carry the dataset attribution of the
	// table being revised (zero for added tables, which have none).
	DatasetID string
	Published time.Time
}

// Plan is the detected delta between a saved corpus and a snapshot
// directory: what to add, update, and delete to make the corpus match
// the snapshot.
type Plan struct {
	// Portal is the corpus's portal id.
	Portal string
	// Added are snapshot tables the corpus lacks, in file-name order.
	Added []Change
	// Updated are corpus tables whose snapshot bytes hash differently,
	// in provenance order.
	Updated []Change
	// Deleted are corpus tables absent from the snapshot, in
	// provenance order.
	Deleted []string
	// Unchanged counts the tables whose content hash matched.
	Unchanged int
}

// Empty reports whether the plan changes nothing.
func (p *Plan) Empty() bool {
	return len(p.Added) == 0 && len(p.Updated) == 0 && len(p.Deleted) == 0
}

// Summary renders the plan in one line.
func (p *Plan) Summary() string {
	return fmt.Sprintf("%d added, %d updated, %d deleted, %d unchanged",
		len(p.Added), len(p.Updated), len(p.Deleted), p.Unchanged)
}

// Detect compares a saved corpus against a snapshot directory holding
// the corpus's new table set (every *.csv in snapshotDir is the new
// truth: a corpus table with no snapshot file counts as deleted). Only
// tables whose content hash changed are parsed.
func Detect(corpusDir, snapshotDir string) (*Plan, error) {
	dig, err := gen.Digest(corpusDir)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	entries, err := os.ReadDir(snapshotDir)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	p := &Plan{Portal: dig.Portal}
	inSnapshot := make(map[string]bool, len(names))
	updated := make(map[string]Change)
	for _, name := range names {
		inSnapshot[name] = true
		body, err := os.ReadFile(filepath.Join(snapshotDir, name))
		if err != nil {
			return nil, fmt.Errorf("ingest: %w", err)
		}
		hash := colstore.HashBytes(body)
		old, known := dig.Hash[name]
		_, exists := dig.Dataset[name]
		if exists && known && old == hash {
			p.Unchanged++
			continue
		}
		t, err := parseSnapshot(name, body)
		if err != nil {
			return nil, err
		}
		ch := Change{Name: name, Body: body, Hash: hash, Table: t}
		if exists {
			ch.DatasetID = dig.Dataset[name]
			ch.Published = dig.Published[name]
			t.DatasetID = ch.DatasetID
			updated[name] = ch
		} else {
			p.Added = append(p.Added, ch)
		}
	}
	// Updated and Deleted in provenance order, so applying the plan
	// preserves the manifest's relative table order — which is what
	// makes a patched live service order results identically to a
	// from-scratch rebuild of the patched corpus.
	for _, f := range dig.Files {
		if ch, ok := updated[f]; ok {
			p.Updated = append(p.Updated, ch)
		}
		if !inSnapshot[f] {
			p.Deleted = append(p.Deleted, f)
		}
	}
	return p, nil
}

// parseSnapshot parses one snapshot CSV exactly the way gen's CSV
// fallback re-parses saved tables (no cleaning pipeline), so a table
// loaded later from its colstore file or from its stored CSV is
// cell-identical to the one ingested here.
func parseSnapshot(name string, body []byte) (*table.Table, error) {
	t, err := csvio.ReadWith(name, strings.NewReader(string(body)), csvio.Options{
		KeepEmptyTrailingColumns: true,
		MaxColumns:               -1,
	})
	if err != nil {
		return nil, fmt.Errorf("ingest: parsing %s: %w", name, err)
	}
	return t, nil
}

// Apply commits the plan to the corpus directory (see gen.PatchCorpus
// for the atomicity guarantees).
func Apply(corpusDir string, p *Plan) error {
	conv := func(chs []Change) []gen.IngestTable {
		out := make([]gen.IngestTable, len(chs))
		for i, ch := range chs {
			out[i] = gen.IngestTable{Table: ch.Table, Body: ch.Body, Hash: ch.Hash}
		}
		return out
	}
	if err := gen.PatchCorpus(corpusDir, conv(p.Added), conv(p.Updated), p.Deleted); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	return nil
}

// QueryDelta projects the plan into a query.Delta, for patching a live
// query.Service over the same corpus in place.
func QueryDelta(p *Plan) query.Delta {
	meta := func(ch Change) corpus.TableMeta {
		return corpus.TableMeta{
			Table:     ch.Table,
			DatasetID: ch.DatasetID,
			Published: ch.Published,
			RawSize:   int64(len(ch.Body)),
		}
	}
	var d query.Delta
	for _, ch := range p.Added {
		d.Added = append(d.Added, meta(ch))
	}
	for _, ch := range p.Updated {
		d.Updated = append(d.Updated, meta(ch))
	}
	d.Deleted = append(d.Deleted, p.Deleted...)
	return d
}
