// Package serve is the HTTP query surface over a loaded corpus: the
// handler behind cmd/ogdpserve. It wraps one immutable
// query.Service with the machinery a long-lived service needs —
// admission control with a bounded wait queue and 429 backpressure,
// per-request timeouts, an LRU result cache keyed on (corpus content
// hash, normalized query), and request metrics — while delegating
// every query to the shared renderer, so a served body stays
// byte-identical to the one-shot CLI output for the same question.
//
// The endpoint set is the service form of the paper's integration
// primitives: /join and /union expose the §4–§5 discovery
// operations, /profile the §3 column measurements, /fd the §6
// dependency checks, and /search the ranked table-search engine —
// the "give me tables worth integrating with this one" question the
// dataset-search systems surveyed in §2 answer. Because every
// renderer is deterministic, cached and uncached responses are
// byte-identical, and the cache needs no invalidation story beyond
// the corpus content hash in its key.
package serve
