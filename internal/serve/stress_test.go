package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressAdmissionEvictionDrain drives the three serve-layer
// mechanisms the endpoint tests only exercise pairwise — admission
// timeouts and 429 backpressure (two slots, two queue places, a 5ms
// deadline), LRU eviction (eight distinct cacheable queries over a
// four-entry cache), and SIGTERM-style drain (http.Server.Shutdown
// fired mid-burst) — all at once, so -race can observe their
// interleavings.
func TestStressAdmissionEvictionDrain(t *testing.T) {
	srv := fixtureServer(t, Options{
		MaxConcurrent: 2,
		QueueDepth:    2,
		Timeout:       5 * time.Millisecond,
		CacheEntries:  4,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Twice as many distinct query keys as cache entries keeps the LRU
	// evicting for the whole run while hits and misses interleave.
	paths := []string{
		"/profile?table=species.csv",
		"/profile?table=landings.csv",
		"/profile?table=parts-2019.csv",
		"/profile?table=parts-2020.csv",
		"/join?table=landings.csv&col=species",
		"/join?table=species.csv&col=species",
		"/union?table=parts-2019.csv",
		"/fd?table=landings.csv&lhs=2",
	}

	const (
		workers = 8
		drainAt = 150 // responses received before Shutdown fires
	)
	var (
		completed    atomic.Int64 // responses with any status
		ok200        atomic.Int64
		rejected429  atomic.Int64
		timedOut503  atomic.Int64
		unexpected   atomic.Int64
		earlyConnErr atomic.Int64 // transport errors before drain began
		drainStarted atomic.Bool
	)
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(base + paths[(w+i)%len(paths)])
				if err != nil {
					// Refused/reset connections are the expected shape
					// once drain has begun; before that they are bugs.
					if !drainStarted.Load() {
						earlyConnErr.Add(1)
						t.Errorf("worker %d: transport error before drain: %v", w, err)
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				completed.Add(1)
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					rejected429.Add(1)
				case http.StatusServiceUnavailable:
					timedOut503.Add(1)
				default:
					unexpected.Add(1)
					t.Errorf("worker %d: unexpected status %d on %s", w, resp.StatusCode, paths[(w+i)%len(paths)])
				}
			}
		}(w)
	}

	// Let the burst run, then drain mid-load the way the SIGTERM
	// handler does: Shutdown must wait out in-flight queries and
	// return cleanly while workers are still firing.
	deadline := time.Now().Add(10 * time.Second)
	for completed.Load() < drainAt {
		if time.Now().After(deadline) {
			t.Fatalf("only %d responses after 10s; admission gate may be wedged", completed.Load())
		}
		time.Sleep(time.Millisecond)
	}
	drainStarted.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Errorf("drain did not complete: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
	close(stop)
	wg.Wait()

	t.Logf("responses=%d ok=%d rejected=%d timedout=%d cacheLen=%d",
		completed.Load(), ok200.Load(), rejected429.Load(), timedOut503.Load(), srv.CacheLen())
	if ok200.Load() == 0 {
		t.Error("no request succeeded under stress; admission or cache path is broken")
	}
	if n := srv.CacheLen(); n > 4 {
		t.Errorf("cache holds %d entries, cap is 4: eviction failed under concurrency", n)
	}
	if unexpected.Load() > 0 || earlyConnErr.Load() > 0 {
		t.Errorf("%d unexpected statuses, %d pre-drain transport errors", unexpected.Load(), earlyConnErr.Load())
	}
}
