package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ogdp/internal/diskcorpus"
	"ogdp/internal/obs"
	"ogdp/internal/query"
)

// fixtureServer builds a Server over a small corpus with joinable,
// unionable, and FD structure.
func fixtureServer(t *testing.T, opts Options) *Server {
	t.Helper()
	dir := t.TempDir()
	var species strings.Builder
	species.WriteString("species_id,species,region,climate\n")
	var landings strings.Builder
	landings.WriteString("code,species,tonnage\n")
	climates := []string{"temperate", "arctic", "tropical"}
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&species, "S%02d,name-%02d,region-%d,%s\n", i, i, i%3, climates[i%3])
		fmt.Fprintf(&landings, "C%02d,name-%02d,%d\n", i, i, 10*i)
	}
	files := []struct{ name, content string }{
		{"species.csv", species.String()},
		{"landings.csv", landings.String()},
		{"parts-2019.csv", "city,country,count\na,AA,1\nb,BB,2\nc,AA,3\n"},
		{"parts-2020.csv", "city,country,count\nd,AA,4\ne,BB,5\nf,CC,6\n"},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := diskcorpus.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return New(query.New(c, query.Options{Workers: 2}), opts)
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestQueryEndpointsMatchService pins the byte-parity contract: every
// endpoint body equals query.Service.Do for the equivalent request,
// under concurrent mixed load.
func TestQueryEndpointsMatchService(t *testing.T) {
	reg := obs.NewRegistry()
	srv := fixtureServer(t, Options{Registry: reg})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		path string
		req  query.Request
	}{
		{"/join?table=landings.csv&col=species", query.Request{Kind: query.KindJoin, Table: "landings.csv", Col: "species"}},
		{"/union?table=parts-2019.csv", query.Request{Kind: query.KindUnion, Table: "parts-2019.csv"}},
		{"/profile?table=species.csv", query.Request{Kind: query.KindProfile, Table: "species.csv"}},
		{"/fd?table=species.csv&lhs=2", query.Request{Kind: query.KindFD, Table: "species.csv", MaxLHS: 2}},
		{"/search?table=landings.csv&k=3", query.Request{Kind: query.KindRank, Table: "landings.csv", K: 3}},
	}
	var wg sync.WaitGroup
	for _, tc := range cases {
		want, err := srv.Service().Do(context.Background(), tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(path, want string) {
				defer wg.Done()
				resp, body := get(t, ts, path)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
					return
				}
				if body != want {
					t.Errorf("%s: body differs from query.Service.Do:\n got %q\nwant %q", path, body, want)
				}
				if h := resp.Header.Get("X-Ogdp-Corpus"); h != srv.Service().HashString() {
					t.Errorf("%s: X-Ogdp-Corpus = %q", path, h)
				}
			}(tc.path, want)
		}
	}
	wg.Wait()
}

func TestCacheHitsAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	srv := fixtureServer(t, Options{Registry: reg})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp1, body1 := get(t, ts, "/profile?table=species.csv")
	if resp1.Header.Get("X-Ogdp-Cache") != "miss" {
		t.Errorf("first request cache header = %q", resp1.Header.Get("X-Ogdp-Cache"))
	}
	resp2, body2 := get(t, ts, "/profile?table=species.csv")
	if resp2.Header.Get("X-Ogdp-Cache") != "hit" {
		t.Errorf("second request cache header = %q", resp2.Header.Get("X-Ogdp-Cache"))
	}
	if body1 != body2 {
		t.Error("cached body differs from computed body")
	}
	// Normalization folds equivalent spellings into one entry: k on a
	// profile request is ignored, so this is a third hit, not a miss.
	if resp3, _ := get(t, ts, "/profile?table=species.csv&k=9"); resp3.Header.Get("X-Ogdp-Cache") != "hit" {
		t.Error("normalized-equivalent request missed the cache")
	}
	hits := reg.Counter("ogdp_serve_cache_hits_total", "").Value()
	misses := reg.Counter("ogdp_serve_cache_misses_total", "").Value()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	if srv.CacheLen() != 1 {
		t.Errorf("CacheLen = %d", srv.CacheLen())
	}
}

// TestSearchEndpointCached pins that ranked /search responses go
// through the same LRU as the other kinds: a repeat query hits, and
// the normalized key folds the default k into the explicit spelling.
func TestSearchEndpointCached(t *testing.T) {
	srv := fixtureServer(t, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp1, body1 := get(t, ts, "/search?table=landings.csv")
	if resp1.Header.Get("X-Ogdp-Cache") != "miss" {
		t.Errorf("first /search cache header = %q", resp1.Header.Get("X-Ogdp-Cache"))
	}
	resp2, body2 := get(t, ts, "/search?table=landings.csv&k=5")
	if resp2.Header.Get("X-Ogdp-Cache") != "hit" {
		t.Errorf("repeat /search cache header = %q", resp2.Header.Get("X-Ogdp-Cache"))
	}
	if body1 != body2 {
		t.Error("cached /search body differs from computed body")
	}
}

func TestErrorStatuses(t *testing.T) {
	srv := fixtureServer(t, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/join?table=nope.csv", http.StatusNotFound},
		{"/join?table=landings.csv&col=nope", http.StatusBadRequest},
		{"/join", http.StatusBadRequest}, // missing table
		{"/fd?table=species.csv&lhs=x", http.StatusBadRequest},
		{"/join?table=landings.csv&k=-3", http.StatusBadRequest},
	} {
		resp, body := get(t, ts, tc.path)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.path, resp.StatusCode, tc.want, strings.TrimSpace(body))
		}
	}
	resp, err := http.Post(ts.URL+"/join?table=landings.csv", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
}

// TestBackpressure429 fills every execution slot and queue place,
// then checks the next arrival bounces with 429 + Retry-After.
func TestBackpressure429(t *testing.T) {
	reg := obs.NewRegistry()
	srv := fixtureServer(t, Options{MaxConcurrent: 1, QueueDepth: 1, Registry: reg})
	// Occupy the only execution slot and the only queue place
	// directly; requests now find the server saturated.
	srv.sem <- struct{}{}
	srv.queue <- struct{}{}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := get(t, ts, "/profile?table=species.csv")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, strings.TrimSpace(body))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if v := reg.Counter("ogdp_serve_rejected_total", "").Value(); v != 1 {
		t.Errorf("rejected counter = %d", v)
	}
	if v := reg.Counter("ogdp_serve_requests_total", "", "endpoint", "/profile", "status", "429").Value(); v != 1 {
		t.Errorf("requests{profile,429} = %d", v)
	}

	// Free the slot: the same request now succeeds.
	<-srv.sem
	<-srv.queue
	if resp, _ := get(t, ts, "/profile?table=species.csv"); resp.StatusCode != http.StatusOK {
		t.Errorf("status after freeing slots = %d", resp.StatusCode)
	}
}

// TestQueueWaitTimeout parks a request in the wait queue with no slot
// ever freeing; the request's own deadline must fail it with 503.
func TestQueueWaitTimeout(t *testing.T) {
	srv := fixtureServer(t, Options{MaxConcurrent: 1, QueueDepth: 4, Timeout: 30 * time.Millisecond})
	srv.sem <- struct{}{} // slot never frees
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := get(t, ts, "/profile?table=species.csv")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, strings.TrimSpace(body))
	}
	<-srv.sem
}

func TestTablesAndHealthz(t *testing.T) {
	srv := fixtureServer(t, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := get(t, ts, "/tables")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("/tables status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{`"num_tables": 4`, `"landings.csv"`, `"corpus_hash"`, `"kinds": "join, union, profile, fd, rank"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/tables misses %s:\n%s", want, body)
		}
	}
	if resp, body := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}
}

func TestMetricsEndpointExposesServeSeries(t *testing.T) {
	reg := obs.NewRegistry()
	srv := fixtureServer(t, Options{Registry: reg})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get(t, ts, "/profile?table=species.csv")
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		`ogdp_serve_requests_total{endpoint="/profile",status="200"} 1`,
		"ogdp_serve_cache_misses_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics misses %q", want)
		}
	}
}

func TestCacheDisabledOption(t *testing.T) {
	srv := fixtureServer(t, Options{CacheEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	get(t, ts, "/profile?table=species.csv")
	if resp, _ := get(t, ts, "/profile?table=species.csv"); resp.Header.Get("X-Ogdp-Cache") != "miss" {
		t.Error("disabled cache still hit")
	}
	if srv.CacheLen() != 0 {
		t.Errorf("CacheLen = %d with caching disabled", srv.CacheLen())
	}
}
