package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ogdp/internal/obs"
	"ogdp/internal/query"
)

// Defaults for Options zero values.
const (
	DefaultMaxConcurrent = 4
	DefaultQueueDepth    = 16
	DefaultTimeout       = 30 * time.Second
	DefaultCacheEntries  = 256
)

// Options configures a Server. Zero values pick the defaults above;
// CacheEntries < 0 disables the result cache.
type Options struct {
	// Workers bounds per-request parallelism (0 = all CPUs).
	Workers int
	// MaxConcurrent caps queries executing at once.
	MaxConcurrent int
	// QueueDepth caps queries waiting for an execution slot; arrivals
	// beyond it are rejected with 429 and a Retry-After hint.
	QueueDepth int
	// Timeout bounds one query's execution (queue wait included).
	Timeout time.Duration
	// CacheEntries caps the LRU result cache (< 0 disables it).
	CacheEntries int
	// Registry receives request metrics; nil disables them (obs
	// metrics no-op on nil receivers).
	Registry *obs.Registry
}

// Server serves join/union/profile/fd queries over one loaded
// corpus. It is an http.Handler; all state after construction is
// either immutable (the query service) or internally synchronized
// (cache, admission channels, metrics), so one Server handles any
// number of concurrent requests.
type Server struct {
	svc     *query.Service
	mux     *http.ServeMux
	cache   *resultCache
	sem     chan struct{} // execution slots
	queue   chan struct{} // wait-queue slots
	timeout time.Duration

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	rejected    *obs.Counter
	queueDepth  *obs.Gauge
	inflight    *obs.Gauge
	requests    func(endpoint string, status int) *obs.Counter
	latency     func(endpoint string) *obs.Histogram
}

// New builds a Server over svc. The *obs.Registry in opts may be
// nil; every metric then degrades to a no-op.
func New(svc *query.Service, opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = DefaultMaxConcurrent
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.CacheEntries == 0 {
		opts.CacheEntries = DefaultCacheEntries
	}
	reg := opts.Registry
	s := &Server{
		svc:     svc,
		cache:   newResultCache(opts.CacheEntries),
		sem:     make(chan struct{}, opts.MaxConcurrent),
		queue:   make(chan struct{}, opts.QueueDepth),
		timeout: opts.Timeout,
		cacheHits: reg.Counter("ogdp_serve_cache_hits_total",
			"Queries answered from the result cache."),
		cacheMisses: reg.Counter("ogdp_serve_cache_misses_total",
			"Queries executed because the result cache missed."),
		rejected: reg.Counter("ogdp_serve_rejected_total",
			"Queries rejected with 429 because the wait queue was full."),
		queueDepth: reg.Gauge("ogdp_serve_queue_depth",
			"Queries currently waiting for an execution slot."),
		inflight: reg.Gauge("ogdp_serve_inflight",
			"Queries currently executing."),
		requests: func(endpoint string, status int) *obs.Counter {
			return reg.Counter("ogdp_serve_requests_total",
				"Requests served, by endpoint and HTTP status.",
				"endpoint", endpoint, "status", strconv.Itoa(status))
		},
		latency: func(endpoint string) *obs.Histogram {
			return reg.Histogram("ogdp_serve_request_seconds",
				"Request latency by endpoint.", obs.DurationBuckets,
				"endpoint", endpoint)
		},
	}
	s.mux = http.NewServeMux()
	// Endpoint paths mirror the kind names except ranked retrieval,
	// which serves under /search (the service the ROADMAP names).
	for _, ep := range []struct{ path, kind string }{
		{"/" + query.KindJoin, query.KindJoin},
		{"/" + query.KindUnion, query.KindUnion},
		{"/" + query.KindProfile, query.KindProfile},
		{"/" + query.KindFD, query.KindFD},
		{"/search", query.KindRank},
	} {
		ep := ep
		s.mux.HandleFunc(ep.path, func(w http.ResponseWriter, r *http.Request) {
			s.handleQuery(w, r, ep.path, ep.kind)
		})
	}
	s.mux.HandleFunc("/tables", s.handleTables)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	debug := obs.NewDebugHandler(reg)
	s.mux.Handle("/metrics", debug)
	s.mux.Handle("/debug/pprof/", debug)
	return s
}

// Service returns the underlying query service.
func (s *Server) Service() *query.Service { return s.svc }

// CacheLen reports the current number of cached results.
func (s *Server) CacheLen() int { return s.cache.Len() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleQuery is the common path of the query endpoints: parse,
// admit, consult the cache, execute, respond.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, endpoint, kind string) {
	start := time.Now()
	status := s.answerQuery(w, r, kind)
	s.requests(endpoint, status).Inc()
	s.latency(endpoint).ObserveDuration(time.Since(start))
}

// answerQuery writes the response and returns the HTTP status sent.
func (s *Server) answerQuery(w http.ResponseWriter, r *http.Request, kind string) int {
	if r.Method != http.MethodGet {
		return s.textError(w, http.StatusMethodNotAllowed, "only GET is supported")
	}
	q := r.URL.Query()
	req := query.Request{
		Kind:  kind,
		Table: q.Get("table"),
		Col:   q.Get("col"),
	}
	if req.Table == "" {
		return s.textError(w, http.StatusBadRequest, "missing table parameter")
	}
	var err error
	if req.K, err = intParam(q.Get("k")); err != nil {
		return s.textError(w, http.StatusBadRequest, fmt.Sprintf("bad k parameter: %v", err))
	}
	if req.MaxLHS, err = intParam(q.Get("lhs")); err != nil {
		return s.textError(w, http.StatusBadRequest, fmt.Sprintf("bad lhs parameter: %v", err))
	}
	req = req.Normalize()

	w.Header().Set("X-Ogdp-Corpus", s.svc.HashString())
	key := s.svc.HashString() + " " + req.Key()
	if body, ok := s.cache.Get(key); ok {
		s.cacheHits.Inc()
		w.Header().Set("X-Ogdp-Cache", "hit")
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, body)
		return http.StatusOK
	}
	s.cacheMisses.Inc()

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	release, admitted := s.admit(ctx)
	if !admitted {
		if ctx.Err() != nil {
			return s.textError(w, http.StatusServiceUnavailable, "timed out waiting for an execution slot")
		}
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		return s.textError(w, http.StatusTooManyRequests, "server saturated: execution slots and wait queue are full")
	}
	defer release()

	body, err := s.svc.Do(ctx, req)
	switch {
	case err == nil:
	case errors.Is(err, query.ErrNotFound):
		return s.textError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, query.ErrBadRequest):
		return s.textError(w, http.StatusBadRequest, err.Error())
	case ctx.Err() != nil:
		return s.textError(w, http.StatusServiceUnavailable, fmt.Sprintf("query timed out after %s", s.timeout))
	default:
		return s.textError(w, http.StatusInternalServerError, err.Error())
	}
	s.cache.Put(key, body)
	w.Header().Set("X-Ogdp-Cache", "miss")
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, body)
	return http.StatusOK
}

// admit acquires an execution slot, waiting in the bounded queue if
// none is free. It returns (release, true) on success; the caller
// must call release. A false return means either the queue was full
// (backpressure) or ctx expired while waiting.
func (s *Server) admit(ctx context.Context) (release func(), admitted bool) {
	select {
	case s.sem <- struct{}{}:
	default:
		// No free slot: try to take a place in the wait queue.
		select {
		case s.queue <- struct{}{}:
		default:
			return nil, false
		}
		s.queueDepth.Add(1)
		defer func() {
			s.queueDepth.Add(-1)
			<-s.queue
		}()
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, false
		}
	}
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		<-s.sem
	}, true
}

// tablesResponse is the /tables JSON document.
type tablesResponse struct {
	Portal    string            `json:"portal"`
	Corpus    string            `json:"corpus_hash"`
	NumTables int               `json:"num_tables"`
	Indexed   int               `json:"indexed_columns"`
	Kinds     string            `json:"kinds"`
	Tables    []query.TableInfo `json:"tables"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	if r.Method != http.MethodGet {
		status = s.textError(w, http.StatusMethodNotAllowed, "only GET is supported")
	} else {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Ogdp-Corpus", s.svc.HashString())
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tablesResponse{
			Portal:    s.svc.PortalID(),
			Corpus:    s.svc.HashString(),
			NumTables: s.svc.NumTables(),
			Indexed:   s.svc.NumIndexed(),
			Kinds:     query.Kinds(),
			Tables:    s.svc.Tables(),
		}); err != nil {
			status = http.StatusInternalServerError
		}
	}
	s.requests("/tables", status).Inc()
	s.latency("/tables").ObserveDuration(time.Since(start))
}

// textError writes a plain-text error response and returns the
// status for the request counter.
func (s *Server) textError(w http.ResponseWriter, status int, msg string) int {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintln(w, msg)
	return status
}

// intParam parses an optional non-negative integer query parameter;
// empty means 0 (the Normalize default).
func intParam(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%q is not an integer", v)
	}
	if n < 0 {
		return 0, fmt.Errorf("%d is negative", n)
	}
	return n, nil
}
