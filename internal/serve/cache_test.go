package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCachePutGet(t *testing.T) {
	c := newResultCache(2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", "1")
	c.Put("b", "2")
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Errorf("a = %q, %v", v, ok)
	}
	// a was just used, so inserting c evicts b.
	c.Put("c", "3")
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Errorf("a after eviction = %q, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", "old")
	c.Put("a", "new")
	if v, _ := c.Get("a"); v != "new" {
		t.Errorf("a = %q", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after double Put of one key", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put("a", "1")
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache must never hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				c.Put(k, k)
				if v, ok := c.Get(k); ok && v != k {
					t.Errorf("%s = %q", k, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}
