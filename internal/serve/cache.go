package serve

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU over rendered response bodies.
// Keys are "(corpus content hash) (normalized request key)" strings,
// so a cache survives nothing it should not: restarting on the same
// corpus reproduces the same keys, while any change to the loaded
// tables changes the hash and silently retires every stale entry.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	byK map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body string
}

// newResultCache returns a cache holding up to capacity entries; a
// capacity < 1 disables caching (every Get misses, Put is a no-op).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		byK: make(map[string]*list.Element),
	}
}

// Get returns the cached body for key and marks it most recently
// used.
func (c *resultCache) Get(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		return "", false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entry
// when the cache is full.
func (c *resultCache) Put(key, body string) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*cacheEntry).key)
	}
	c.byK[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
}

// Len reports the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
