package diskcorpus

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ogdp/internal/colstore"
	"ogdp/internal/corpus"
	"ogdp/internal/csvio"
	"ogdp/internal/gen"
	"ogdp/internal/sniff"
	"ogdp/internal/table"
)

// Skip records one input file the loader passed over, and why. A
// long-lived service cannot afford the old bare counter: when a
// corpus loads with 40 of 200 files missing, the operator needs the
// names and reasons at startup, not a number.
type Skip struct {
	// Name is the file name within the corpus directory.
	Name string
	// Reason says why the file was not loaded ("read: ...",
	// "undetected format ...", "csv: ...", "too wide ...", ...).
	Reason string
}

func (s Skip) String() string { return s.Name + ": " + s.Reason }

// Corpus is a loaded directory of tables.
type Corpus struct {
	// Dir is the source directory.
	Dir string
	// Tables are the readable tables, sorted by file name.
	Tables []*table.Table
	// Metas carries per-table corpus facts (dataset attribution,
	// publication date, raw size), parallel to Tables.
	Metas []corpus.TableMeta
	// Datasets are the dataset records from the manifest (nil without
	// one).
	Datasets []corpus.Dataset
	// Skipped counts files that failed sniffing or parsing.
	Skipped int
	// SkippedWide counts files rejected by the wide-table cutoff.
	SkippedWide int
	// Skips is the per-file skip ledger, in file-name order: every
	// counted skip (including wide-table rejections), every colstore
	// sidecar passed over (stale, truncated, corrupt — the CSV was
	// re-parsed instead), plus a malformed datasets.json, each with its
	// reason.
	Skips []Skip
	// Manifest reports whether a datasets.json manifest was found and
	// parsed.
	Manifest bool
}

// PortalID implements corpus.Source: the directory base name.
func (c *Corpus) PortalID() string { return filepath.Base(c.Dir) }

// TableMetas implements corpus.Source.
func (c *Corpus) TableMetas() []corpus.TableMeta { return c.Metas }

// DatasetMetas implements corpus.Source.
func (c *Corpus) DatasetMetas() []corpus.Dataset { return c.Datasets }

// ColumnEncoding implements corpus.ColumnSource: column-level access
// to the loaded tables without materializing rows. For tables served
// from colstore sidecars the encodings alias the read-only mapping.
func (c *Corpus) ColumnEncoding(ti, col int) *table.Encoding {
	return c.Tables[ti].Encoding(col)
}

// ByName returns the index of the table with the given file name, or
// -1.
func (c *Corpus) ByName(name string) int {
	for i, t := range c.Tables {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Load reads every *.csv file under dir (non-recursive).
func Load(dir string) (*Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcorpus: %w", err)
	}
	c := &Corpus{Dir: dir}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		body, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			c.Skips = append(c.Skips, Skip{Name: name, Reason: fmt.Sprintf("read: %v", err)})
			c.Skipped++
			continue
		}
		t, sidecarReason := loadSidecar(dir, name, body)
		if sidecarReason != "" {
			c.Skips = append(c.Skips, Skip{Name: name + colstore.Ext, Reason: sidecarReason})
		}
		if t == nil {
			var reason string
			var wide bool
			t, reason, wide = parse(name, body)
			if t == nil {
				c.Skips = append(c.Skips, Skip{Name: name, Reason: reason})
				if wide {
					c.SkippedWide++
				} else {
					c.Skipped++
				}
				continue
			}
		}
		c.Tables = append(c.Tables, t)
		c.Metas = append(c.Metas, corpus.TableMeta{Table: t, RawSize: int64(len(body))})
	}
	if err := c.attachManifest(); err != nil {
		c.Skips = append(c.Skips, Skip{Name: manifestFile, Reason: err.Error()})
	}
	return c, nil
}

// loadSidecar serves name from its colstore sidecar when one exists
// and its stamped content hash matches the CSV bytes on disk (the
// sidecar is then the exact table the CSV was written from, and its
// encodings alias a read-only mapping instead of being rebuilt). An
// absent sidecar returns (nil, ""); a present-but-unusable one —
// truncated, corrupt, or stale against an edited CSV — returns nil
// with the reason for the skip ledger, and the caller re-parses the
// CSV.
func loadSidecar(dir, name string, body []byte) (*table.Table, string) {
	path := filepath.Join(dir, name+colstore.Ext)
	if _, err := os.Stat(path); err != nil {
		return nil, ""
	}
	t, hash, err := colstore.Load(path)
	if err != nil {
		return nil, fmt.Sprintf("sidecar unusable (%v); re-parsed CSV", err)
	}
	if want := colstore.HashBytes(body); hash != want {
		return nil, fmt.Sprintf("sidecar stale (stamped %016x, CSV hashes to %016x); re-parsed CSV", hash, want)
	}
	if t.NumCols() == 0 || t.NumRows() == 0 {
		// Mirror parse's empty-table rejection so both paths skip the
		// file identically.
		return nil, ""
	}
	return t, ""
}

// LoadStudy loads dir as a study-ready corpus source: a directory
// written by ogdpgen/gen.SaveCorpus (recognized by its
// provenance.json) comes back as a full *gen.Corpus — provenance
// oracle and servable funnel portal included — while any other
// directory of CSVs loads through the generic pipeline above.
func LoadStudy(dir string) (corpus.Source, error) {
	src, _, err := LoadStudyNotes(dir)
	return src, err
}

// LoadStudyNotes is LoadStudy with the per-file load deviations
// surfaced: colstore fallbacks and skipped files, in Skip-ledger form,
// whichever loader ran. A corpus whose manifests reference tables
// that are missing or unreadable in both representations is rejected
// with a wrapped error.
func LoadStudyNotes(dir string) (corpus.Source, []Skip, error) {
	if _, err := os.Stat(filepath.Join(dir, gen.ProvenanceFile)); err == nil {
		c, notes, err := gen.LoadCorpusNotes(dir)
		if err != nil {
			return nil, nil, fmt.Errorf("diskcorpus: %s: %w", dir, err)
		}
		skips := make([]Skip, len(notes))
		for i, n := range notes {
			skips[i] = Skip{Name: n.File, Reason: n.Reason}
		}
		return c, skips, nil
	}
	c, err := Load(dir)
	if err != nil {
		return nil, nil, err
	}
	return c, c.Skips, nil
}

// parse runs the sniff/read pipeline. On failure t is nil, reason
// says why, and wide distinguishes the wide-table cutoff (its own
// counter) from the general skip counter. The body is wrapped in a
// bytes.Reader, not copied through a string: with corpora of
// thousands of CSVs, duplicating every file during load doubled the
// loader's transient footprint for nothing.
func parse(name string, body []byte) (t *table.Table, reason string, wide bool) {
	format := sniff.Detect(body)
	if !format.IsTabular() {
		return nil, fmt.Sprintf("undetected format (sniffed %s, want csv or tsv)", format), false
	}
	opts := csvio.Options{}
	if format == sniff.FormatTSV {
		opts.Comma = '\t'
	}
	parsed, err := csvio.ReadWith(name, bytes.NewReader(body), opts)
	if err != nil {
		if errors.Is(err, csvio.ErrTooWide) {
			return nil, fmt.Sprintf("too wide: %v", err), true
		}
		return nil, fmt.Sprintf("csv: %v", err), false
	}
	if parsed.NumCols() == 0 || parsed.NumRows() == 0 {
		return nil, "empty after parsing (no rows or no columns)", false
	}
	return parsed, "", false
}

// manifestDataset mirrors the ogdpgen manifest entry; minimal
// hand-written manifests (id + tables only) parse too.
type manifestDataset struct {
	ID        string    `json:"id"`
	Title     string    `json:"title"`
	Category  string    `json:"category"`
	Published time.Time `json:"published"`
	Metadata  string    `json:"metadata_style"`
	Tables    []string  `json:"tables"`
}

// metadataStyles maps the manifest's style spellings back to
// ckan.MetadataStyle values; unknown spellings mean "lacking".
var metadataStyles = map[string]int{
	"lacking": 0, "structured": 1, "unstructured": 2, "outside": 3,
}

// manifestFile is the dataset manifest ogdpgen writes next to the
// CSVs.
const manifestFile = "datasets.json"

// attachManifest folds datasets.json (when present) into the loaded
// tables: dataset attribution, publication dates, and metadata
// styles. A missing manifest is normal (any directory of CSVs loads
// without one); a present-but-unreadable or malformed one is an error
// for the caller's skip ledger — silently losing all dataset
// attribution used to be indistinguishable from having none.
func (c *Corpus) attachManifest() error {
	data, err := os.ReadFile(filepath.Join(c.Dir, manifestFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("manifest read: %w", err)
	}
	var manifest []manifestDataset
	if err := json.Unmarshal(data, &manifest); err != nil {
		return fmt.Errorf("malformed manifest: %w", err)
	}
	c.Manifest = true
	byName := map[string]*manifestDataset{}
	for i := range manifest {
		d := &manifest[i]
		c.Datasets = append(c.Datasets, corpus.Dataset{
			ID:        d.ID,
			Title:     d.Title,
			Category:  d.Category,
			Published: d.Published,
			Metadata:  metadataStyles[d.Metadata],
		})
		for _, t := range d.Tables {
			byName[t] = d
		}
	}
	for i, t := range c.Tables {
		d, ok := byName[t.Name]
		if !ok {
			continue
		}
		t.DatasetID = d.ID
		c.Metas[i].DatasetID = d.ID
		c.Metas[i].Published = d.Published
		c.Metas[i].Metadata = metadataStyles[d.Metadata]
	}
	return nil
}
