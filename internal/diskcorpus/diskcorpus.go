package diskcorpus

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ogdp/internal/csvio"
	"ogdp/internal/sniff"
	"ogdp/internal/table"
)

// Corpus is a loaded directory of tables.
type Corpus struct {
	// Dir is the source directory.
	Dir string
	// Tables are the readable tables, sorted by file name.
	Tables []*table.Table
	// Skipped counts files that failed sniffing or parsing.
	Skipped int
	// SkippedWide counts files rejected by the wide-table cutoff.
	SkippedWide int
	// Manifest reports whether a datasets.json manifest was found.
	Manifest bool
}

// ByName returns the index of the table with the given file name, or
// -1.
func (c *Corpus) ByName(name string) int {
	for i, t := range c.Tables {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Load reads every *.csv file under dir (non-recursive).
func Load(dir string) (*Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcorpus: %w", err)
	}
	c := &Corpus{Dir: dir}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		body, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			c.Skipped++
			continue
		}
		t, wide := parse(name, body)
		if wide {
			c.SkippedWide++
			continue
		}
		if t == nil {
			c.Skipped++
			continue
		}
		c.Tables = append(c.Tables, t)
	}
	c.Manifest = attachManifest(dir, c.Tables)
	return c, nil
}

// parse runs the sniff/read pipeline; wide reports a wide-table
// rejection.
func parse(name string, body []byte) (t *table.Table, wide bool) {
	format := sniff.Detect(body)
	if !format.IsTabular() {
		return nil, false
	}
	opts := csvio.Options{}
	if format == sniff.FormatTSV {
		opts.Comma = '\t'
	}
	parsed, err := csvio.ReadWith(name, strings.NewReader(string(body)), opts)
	if err != nil {
		if errors.Is(err, csvio.ErrTooWide) {
			return nil, true
		}
		return nil, false
	}
	if parsed.NumCols() == 0 || parsed.NumRows() == 0 {
		return nil, false
	}
	return parsed, false
}

// manifestDataset mirrors the ogdpgen manifest entry.
type manifestDataset struct {
	ID     string   `json:"id"`
	Tables []string `json:"tables"`
}

// attachManifest assigns DatasetIDs from datasets.json when present.
func attachManifest(dir string, tables []*table.Table) bool {
	data, err := os.ReadFile(filepath.Join(dir, "datasets.json"))
	if err != nil {
		return false
	}
	var manifest []manifestDataset
	if err := json.Unmarshal(data, &manifest); err != nil {
		return false
	}
	byName := map[string]string{}
	for _, d := range manifest {
		for _, t := range d.Tables {
			byName[t] = d.ID
		}
	}
	for _, t := range tables {
		t.DatasetID = byName[t.Name]
	}
	return true
}
