package diskcorpus

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"ogdp/internal/csvio"
	"ogdp/internal/gen"
)

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMixedDirectory(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "good.csv", "id,name\n1,a\n2,b\n")
	write(t, dir, "tsv-in-disguise.csv", "id\tname\n1\talpha\n2\tbeta\n")
	write(t, dir, "broken.csv", "<html><body>404</body></html>")
	write(t, dir, "notes.txt", "not a csv at all")
	wideCols := strings.Repeat("c,", 150) + "c\n" + strings.Repeat("1,", 150) + "1\n"
	write(t, dir, "wide.csv", wideCols)

	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables) != 2 {
		t.Fatalf("tables = %d, want 2 (got %v)", len(c.Tables), names(c))
	}
	if c.Skipped != 1 || c.SkippedWide != 1 {
		t.Errorf("skipped=%d wide=%d", c.Skipped, c.SkippedWide)
	}
	if c.Manifest {
		t.Error("no manifest should be detected")
	}
	if c.ByName("good.csv") < 0 || c.ByName("zzz.csv") != -1 {
		t.Error("ByName lookup wrong")
	}
	// TSV content parsed with tab delimiter.
	i := c.ByName("tsv-in-disguise.csv")
	if c.Tables[i].NumCols() != 2 {
		t.Errorf("tsv columns = %d", c.Tables[i].NumCols())
	}
	// The skip ledger names every passed-over file with a reason, in
	// file-name order (notes.txt is filtered by extension, not skipped).
	if len(c.Skips) != 2 {
		t.Fatalf("skip ledger = %v, want 2 entries", c.Skips)
	}
	if c.Skips[0].Name != "broken.csv" || !strings.Contains(c.Skips[0].Reason, "undetected format") ||
		!strings.Contains(c.Skips[0].Reason, "html") {
		t.Errorf("broken.csv skip = %+v, want undetected-format reason naming html", c.Skips[0])
	}
	if c.Skips[1].Name != "wide.csv" || !strings.Contains(c.Skips[1].Reason, "too wide") {
		t.Errorf("wide.csv skip = %+v, want wide-table reason", c.Skips[1])
	}
}

func TestSkipLedgerReasons(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "empty.csv", "")
	write(t, dir, "good.csv", "id,name\n1,a\n")
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables) != 1 || len(c.Skips) != 1 {
		t.Fatalf("tables=%d skips=%v", len(c.Tables), c.Skips)
	}
	if c.Skips[0].Name != "empty.csv" || !strings.Contains(c.Skips[0].Reason, "empty") {
		t.Errorf("empty.csv skip = %+v", c.Skips[0])
	}
	if got := c.Skips[0].String(); !strings.HasPrefix(got, "empty.csv: ") {
		t.Errorf("Skip.String() = %q", got)
	}
}

func TestMalformedManifestInLedger(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.csv", "id,name\n1,a\n2,b\n")
	write(t, dir, "datasets.json", `{"this is": "not a manifest array"`)
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Manifest {
		t.Error("malformed manifest must not count as detected")
	}
	found := false
	for _, s := range c.Skips {
		if s.Name == "datasets.json" && strings.Contains(s.Reason, "malformed manifest") {
			found = true
		}
	}
	if !found {
		t.Errorf("malformed datasets.json missing from ledger: %v", c.Skips)
	}
	// The tables themselves still load, attribution-free.
	if len(c.Tables) != 1 || c.Tables[0].DatasetID != "" {
		t.Errorf("tables = %d, dataset = %q", len(c.Tables), c.Tables[0].DatasetID)
	}
}

func TestLoadWithManifest(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.csv", "id\n1\n2\n")
	write(t, dir, "b.csv", "id\n3\n4\n")
	write(t, dir, "datasets.json", `[{"id": "ds-1", "tables": ["a.csv", "b.csv"]}]`)
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Manifest {
		t.Fatal("manifest not detected")
	}
	for _, tb := range c.Tables {
		if tb.DatasetID != "ds-1" {
			t.Errorf("%s dataset = %q", tb.Name, tb.DatasetID)
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load("/nonexistent-dir-xyz"); err == nil {
		t.Error("missing directory should error")
	}
}

func TestLoadDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "b.csv", "x,y\n1,2\n")
	write(t, dir, "a.csv", "x,y\n1,2\n")
	write(t, dir, "c.csv", "x,y\n1,2\n")
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(c); got != "a.csv,b.csv,c.csv" {
		t.Errorf("order = %s", got)
	}
}

// TestRoundTripWithGenerator writes a generated corpus to disk through
// csvio and loads it back.
func TestRoundTripWithGenerator(t *testing.T) {
	dir := t.TempDir()
	corpus := gen.Generate(gen.SG(), 0.1, 9)
	for _, m := range corpus.Metas {
		f, err := os.Create(filepath.Join(dir, m.Table.Name))
		if err != nil {
			t.Fatal(err)
		}
		if err := csvio.Write(f, m.Table); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables) != len(corpus.Metas) {
		t.Fatalf("loaded %d of %d tables (skipped %d)", len(c.Tables), len(corpus.Metas), c.Skipped)
	}
	for _, tb := range c.Tables {
		i := -1
		for j, m := range corpus.Metas {
			if m.Table.Name == tb.Name {
				i = j
				break
			}
		}
		if i < 0 {
			t.Fatalf("unknown table %s", tb.Name)
		}
		orig := corpus.Metas[i].Table
		if tb.NumRows() != orig.NumRows() || tb.NumCols() != orig.NumCols() {
			t.Errorf("%s shape %dx%d -> %dx%d", tb.Name, orig.NumCols(), orig.NumRows(), tb.NumCols(), tb.NumRows())
		}
	}
}

// TestParseDoesNotCopyBody pins the no-copy contract of parse: the
// file body is wrapped in a bytes.Reader, not duplicated through
// strings.NewReader(string(body)). The fixture uses few, large cells
// so the parser's own per-cell allocations stay near 1× the body
// (measured 1.06×); the old copy added exactly +1× more, so the 1.6×
// bound cleanly separates the two while tolerating parser overhead
// drift.
func TestParseDoesNotCopyBody(t *testing.T) {
	cell := strings.Repeat("x", 4<<10)
	body := []byte("a,b\n" + strings.Repeat(cell+","+cell+"\n", 512))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	tb, reason, wide := parse("big.csv", body)
	runtime.ReadMemStats(&after)
	if tb == nil {
		t.Fatalf("parse failed: %s (wide=%v)", reason, wide)
	}
	if tb.NumRows() != 512 || tb.NumCols() != 2 {
		t.Fatalf("parsed shape %dx%d", tb.NumCols(), tb.NumRows())
	}
	delta := after.TotalAlloc - before.TotalAlloc
	if limit := uint64(float64(len(body)) * 1.6); delta > limit {
		t.Errorf("parse allocated %d bytes for a %d-byte body (%.2fx, limit 1.6x): body is being copied",
			delta, len(body), float64(delta)/float64(len(body)))
	}
}

func names(c *Corpus) string {
	var out []string
	for _, t := range c.Tables {
		out = append(out, t.Name)
	}
	return strings.Join(out, ",")
}
