package diskcorpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ogdp/internal/csvio"
	"ogdp/internal/gen"
)

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMixedDirectory(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "good.csv", "id,name\n1,a\n2,b\n")
	write(t, dir, "tsv-in-disguise.csv", "id\tname\n1\talpha\n2\tbeta\n")
	write(t, dir, "broken.csv", "<html><body>404</body></html>")
	write(t, dir, "notes.txt", "not a csv at all")
	wideCols := strings.Repeat("c,", 150) + "c\n" + strings.Repeat("1,", 150) + "1\n"
	write(t, dir, "wide.csv", wideCols)

	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables) != 2 {
		t.Fatalf("tables = %d, want 2 (got %v)", len(c.Tables), names(c))
	}
	if c.Skipped != 1 || c.SkippedWide != 1 {
		t.Errorf("skipped=%d wide=%d", c.Skipped, c.SkippedWide)
	}
	if c.Manifest {
		t.Error("no manifest should be detected")
	}
	if c.ByName("good.csv") < 0 || c.ByName("zzz.csv") != -1 {
		t.Error("ByName lookup wrong")
	}
	// TSV content parsed with tab delimiter.
	i := c.ByName("tsv-in-disguise.csv")
	if c.Tables[i].NumCols() != 2 {
		t.Errorf("tsv columns = %d", c.Tables[i].NumCols())
	}
}

func TestLoadWithManifest(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.csv", "id\n1\n2\n")
	write(t, dir, "b.csv", "id\n3\n4\n")
	write(t, dir, "datasets.json", `[{"id": "ds-1", "tables": ["a.csv", "b.csv"]}]`)
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Manifest {
		t.Fatal("manifest not detected")
	}
	for _, tb := range c.Tables {
		if tb.DatasetID != "ds-1" {
			t.Errorf("%s dataset = %q", tb.Name, tb.DatasetID)
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load("/nonexistent-dir-xyz"); err == nil {
		t.Error("missing directory should error")
	}
}

func TestLoadDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "b.csv", "x,y\n1,2\n")
	write(t, dir, "a.csv", "x,y\n1,2\n")
	write(t, dir, "c.csv", "x,y\n1,2\n")
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(c); got != "a.csv,b.csv,c.csv" {
		t.Errorf("order = %s", got)
	}
}

// TestRoundTripWithGenerator writes a generated corpus to disk through
// csvio and loads it back.
func TestRoundTripWithGenerator(t *testing.T) {
	dir := t.TempDir()
	corpus := gen.Generate(gen.SG(), 0.1, 9)
	for _, m := range corpus.Metas {
		f, err := os.Create(filepath.Join(dir, m.Table.Name))
		if err != nil {
			t.Fatal(err)
		}
		if err := csvio.Write(f, m.Table); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables) != len(corpus.Metas) {
		t.Fatalf("loaded %d of %d tables (skipped %d)", len(c.Tables), len(corpus.Metas), c.Skipped)
	}
	for _, tb := range c.Tables {
		i := -1
		for j, m := range corpus.Metas {
			if m.Table.Name == tb.Name {
				i = j
				break
			}
		}
		if i < 0 {
			t.Fatalf("unknown table %s", tb.Name)
		}
		orig := corpus.Metas[i].Table
		if tb.NumRows() != orig.NumRows() || tb.NumCols() != orig.NumCols() {
			t.Errorf("%s shape %dx%d -> %dx%d", tb.Name, orig.NumCols(), orig.NumRows(), tb.NumCols(), tb.NumRows())
		}
	}
}

func names(c *Corpus) string {
	var out []string
	for _, t := range c.Tables {
		out = append(out, t.Name)
	}
	return strings.Join(out, ",")
}
