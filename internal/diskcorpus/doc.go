// Package diskcorpus loads a directory of CSV files into an analyzable
// corpus, applying the paper's acquisition pipeline (§3.1–§3.2, the
// funnel behind Table 1) to local files: content sniffing, header
// inference, cleaning, and the wide-table cutoff. It is the offline
// counterpart of the ckan fetch path — the same defects the portals
// serve over HTTP (preamble rows, trailing empty columns, non-CSV
// bodies behind .csv names) are handled here for files already on
// disk, so ogdpinspect and ogdpsearch study a directory exactly the
// way ogdpreport studies a live portal.
//
// When an ogdpgen manifest (datasets.json) is present, tables are
// attached to their datasets so intra-dataset signals — the dataset
// locality feature §5.3 finds predictive of useful joins — keep
// working offline.
package diskcorpus
