package diskcorpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ogdp/internal/colstore"
	"ogdp/internal/csvio"
	"ogdp/internal/gen"
	"ogdp/internal/table"
)

// genDir saves a small generated corpus (CSVs + colstore sidecars +
// manifests) into a temp dir.
func genDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	c := gen.Generate(gen.CA(), 0.03, 5)
	if _, err := gen.SaveCorpus(dir, c); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLoadPrefersSidecar(t *testing.T) {
	dir := t.TempDir()
	body := "id,name\n1,a\n2,b\n"
	write(t, dir, "good.csv", body)
	src := table.FromRows("good.csv", []string{"id", "name"}, [][]string{{"1", "a"}, {"2", "b"}})
	if _, err := colstore.WriteFile(filepath.Join(dir, "good.csv"+colstore.Ext), src, colstore.HashBytes([]byte(body))); err != nil {
		t.Fatal(err)
	}

	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables) != 1 || len(c.Skips) != 0 {
		t.Fatalf("tables=%d skips=%v", len(c.Tables), c.Skips)
	}
	if !c.Tables[0].Encoded() {
		t.Fatal("table should be served encoding-backed from the sidecar")
	}
	if got := csvio.Bytes(c.Tables[0]); string(got) != body {
		t.Fatalf("sidecar table serializes to %q, want %q", got, body)
	}
}

func TestLoadStaleSidecarFallsBack(t *testing.T) {
	dir := t.TempDir()
	src := table.FromRows("good.csv", []string{"id", "name"}, [][]string{{"1", "a"}})
	if _, err := colstore.WriteFile(filepath.Join(dir, "good.csv"+colstore.Ext), src, colstore.HashBytes(csvio.Bytes(src))); err != nil {
		t.Fatal(err)
	}
	// The CSV has since been edited; the sidecar's stamp no longer matches.
	write(t, dir, "good.csv", "id,name\n1,a\n2,b\n")

	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables) != 1 || c.Tables[0].NumRows() != 2 {
		t.Fatalf("want the 2-row CSV parse, got %v", c.Tables)
	}
	if c.Tables[0].Encoded() {
		t.Fatal("stale sidecar must not be served")
	}
	if len(c.Skips) != 1 || c.Skips[0].Name != "good.csv"+colstore.Ext ||
		!strings.Contains(c.Skips[0].Reason, "stale") {
		t.Fatalf("skip ledger = %v, want one stale-sidecar entry", c.Skips)
	}
}

func TestLoadCorruptSidecarFallsBack(t *testing.T) {
	dir := t.TempDir()
	body := "id,name\n1,a\n"
	write(t, dir, "good.csv", body)
	src := table.FromRows("good.csv", []string{"id", "name"}, [][]string{{"1", "a"}})
	path := filepath.Join(dir, "good.csv"+colstore.Ext)
	if _, err := colstore.WriteFile(path, src, colstore.HashBytes([]byte(body))); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables) != 1 || c.Tables[0].Encoded() {
		t.Fatalf("truncated sidecar should fall back to CSV parse")
	}
	if len(c.Skips) != 1 || !strings.Contains(c.Skips[0].Reason, "truncated") {
		t.Fatalf("skip ledger = %v, want truncated-sidecar entry", c.Skips)
	}
}

func TestLoadStudyNotesGenCorpus(t *testing.T) {
	dir := genDir(t)
	src, skips, err := LoadStudyNotes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skips) != 0 {
		t.Fatalf("clean corpus produced load notes: %v", skips)
	}
	gc, ok := src.(*gen.Corpus)
	if !ok {
		t.Fatalf("LoadStudyNotes returned %T, want *gen.Corpus", src)
	}
	for _, m := range gc.Metas {
		if !m.Table.Encoded() {
			t.Fatalf("%s not served from its colstore file", m.Table.Name)
		}
	}
}

func TestLoadStudyNotesCorruptColstoreFallsBack(t *testing.T) {
	dir := genDir(t)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), colstore.Ext) {
			victim = e.Name()
			break
		}
	}
	if victim == "" {
		t.Fatal("no colstore files written")
	}
	path := filepath.Join(dir, victim)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	src, skips, err := LoadStudyNotes(dir)
	if err != nil {
		t.Fatalf("corrupt colstore must fall back, not fail: %v", err)
	}
	if len(skips) != 1 || skips[0].Name != strings.TrimSuffix(victim, colstore.Ext) ||
		!strings.Contains(skips[0].Reason, "checksum mismatch") {
		t.Fatalf("skips = %v, want one checksum-mismatch note for %s", skips, victim)
	}
	gc := src.(*gen.Corpus)
	i := -1
	for j, m := range gc.Metas {
		if m.Table.Name == strings.TrimSuffix(victim, colstore.Ext) {
			i = j
		}
	}
	if i < 0 || gc.Metas[i].Table.Encoded() {
		t.Fatal("victim table should have been re-parsed from CSV")
	}
}

func TestLoadStudyRejectsMissingTable(t *testing.T) {
	dir := genDir(t)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".csv") {
			victim = e.Name()
			break
		}
	}
	// Remove both representations: the manifests now reference data the
	// corpus no longer has.
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, victim+colstore.Ext)); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadStudyNotes(dir)
	if err == nil {
		t.Fatal("corpus with missing table data should be rejected")
	}
	if !strings.Contains(err.Error(), victim) {
		t.Fatalf("error %q does not name the missing table %s", err, victim)
	}
}
