package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || !almostEq(s.Mean, 2.5) || !almostEq(s.Median, 2.5) || s.Sum != 10 {
		t.Errorf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {-5, 10}, {110, 50}, {10, 14},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want) {
			t.Errorf("Percentile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %g", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %g", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianMatchesSortMid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(99)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		got := Median(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		var want float64
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		if !almostEq(got, want) {
			t.Fatalf("n=%d median=%g want %g", n, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1, 5, 9, 10, 99, 100, 1000, 5000}
	b := Histogram(xs, []float64{0, 1, 10, 100, 1000})
	counts := []int{1, 3, 2, 3} // 0.5 | 1,5,9 | 10,99 | 100,1000,5000 (clamped)
	for i, want := range counts {
		if b[i].Count != want {
			t.Errorf("bucket %d [%g,%g): got %d want %d", i, b[i].Lo, b[i].Hi, b[i].Count, want)
		}
	}
	if got := Histogram(xs, []float64{0}); got != nil {
		t.Errorf("degenerate bounds should return nil")
	}
}

func TestHistogramTotalPreserved(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, math.Abs(x))
			}
		}
		b := Histogram(xs, []float64{0, 1, 10, 100, 1000, 1e6, 1e12})
		total := 0
		for _, bk := range b {
			total += bk.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogBounds(t *testing.T) {
	b := LogBounds(5000)
	want := []float64{0, 1, 10, 100, 1000, 10000}
	if len(b) != len(want) {
		t.Fatalf("LogBounds(5000) = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("LogBounds(5000) = %v, want %v", b, want)
		}
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 1, 2, 4})
	if len(pts) != 3 {
		t.Fatalf("CDF distinct points = %d, want 3", len(pts))
	}
	if pts[0].Value != 1 || !almostEq(pts[0].Frac, 0.5) {
		t.Errorf("pts[0] = %+v", pts[0])
	}
	if pts[2].Value != 4 || !almostEq(pts[2].Frac, 1) {
		t.Errorf("pts[2] = %+v", pts[2])
	}
}

func TestFracAtMostAtLeast(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FracAtMost(xs, 2); !almostEq(got, 0.5) {
		t.Errorf("FracAtMost = %g", got)
	}
	if got := FracAtLeast(xs, 3); !almostEq(got, 0.5) {
		t.Errorf("FracAtLeast = %g", got)
	}
	if FracAtMost(nil, 1) != 0 || FracAtLeast(nil, 1) != 0 {
		t.Error("empty sample should give 0")
	}
}

func TestLetterValueSummary(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	lv := LetterValueSummary(xs, 5)
	if !almostEq(lv.Median, 499.5) {
		t.Errorf("median = %g", lv.Median)
	}
	if len(lv.Pairs) < 3 {
		t.Fatalf("expected several letter value pairs, got %d", len(lv.Pairs))
	}
	// Boxes must nest: each deeper pair is wider.
	for i := 1; i < len(lv.Pairs); i++ {
		if lv.Pairs[i][0] > lv.Pairs[i-1][0] || lv.Pairs[i][1] < lv.Pairs[i-1][1] {
			t.Errorf("letter value pair %d does not nest: %v then %v", i, lv.Pairs[i-1], lv.Pairs[i])
		}
	}
	if got := LetterValueSummary(nil, 0); got.Median != 0 || got.Pairs != nil {
		t.Errorf("empty letter values = %+v", got)
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{95, "95"},
		{447, "447"},
		{4200, "4.2K"},
		{20700, "20.7K"},
		{1900000, "1.9M"},
		{409200000, "409.2M"},
		{2000000000, "2B"},
		{2.5, "2.50"},
	}
	for _, c := range cases {
		if got := FormatCount(c.in); got != c.want {
			t.Errorf("FormatCount(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestQuartiles(t *testing.T) {
	q1, q2, q3 := Quartiles([]float64{1, 2, 3, 4, 5})
	if q1 != 2 || q2 != 3 || q3 != 4 {
		t.Errorf("Quartiles = %g %g %g", q1, q2, q3)
	}
}

func TestFloatsConversions(t *testing.T) {
	if f := Floats([]int{1, 2}); f[0] != 1 || f[1] != 2 {
		t.Errorf("Floats = %v", f)
	}
	if f := Floats64([]int64{3, 4}); f[0] != 3 || f[1] != 4 {
		t.Errorf("Floats64 = %v", f)
	}
	if m := MedianInts([]int{1, 2, 3}); m != 2 {
		t.Errorf("MedianInts = %g", m)
	}
}
