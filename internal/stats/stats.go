// Package stats provides the descriptive statistics used by the study:
// means, medians, percentiles, histograms, and letter-value summaries
// (the boxen-plot statistic behind Figure 8 of the paper).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ApproxEq reports whether two floats are equal within a small
// absolute or relative tolerance (1e-9). It is the epsilon helper the
// floatcmp analyzer points score/threshold code at: the study's
// uniqueness ratios and Jaccard similarities are accumulated floats,
// so exact ==/!= would flip on rounding noise that never shows up in
// the printed tables.
func ApproxEq(a, b float64) bool {
	if a == b { //lint:allow(floatcmp) fast path; also makes equal infinities compare equal
		return true
	}
	const tol = 1e-9
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Summary holds the basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Sum    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted. It
// returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile on an already-sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles computes several percentiles in one pass over a single
// sorted copy. ps are percentile ranks in 0..100.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// Median is Percentile(xs, 50).
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MedianInts returns the median of an integer sample as a float.
func MedianInts(xs []int) float64 {
	return Median(Floats(xs))
}

// Floats converts an integer sample to float64s.
func Floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Floats64 converts an int64 sample to float64s.
func Floats64(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// CDFPoint is one point of an empirical CDF: Frac of the sample is
// <= Value.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical CDF of xs evaluated at each distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Emit at the last occurrence of each distinct value.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] { //lint:allow(floatcmp) exact on purpose: deduplicating identical sorted sample values
			continue
		}
		out = append(out, CDFPoint{Value: sorted[i], Frac: float64(i+1) / n})
	}
	return out
}

// FracAtMost returns the fraction of the sample that is <= v.
func FracAtMost(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FracAtLeast returns the fraction of the sample that is >= v.
func FracAtLeast(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Bucket is one histogram bucket covering [Lo, Hi).
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Histogram bins xs into the buckets delimited by bounds. A value x
// falls into bucket i when bounds[i] <= x < bounds[i+1]; values below
// bounds[0] and at or above bounds[len-1] are clamped into the first
// and last bucket respectively.
func Histogram(xs []float64, bounds []float64) []Bucket {
	if len(bounds) < 2 {
		return nil
	}
	buckets := make([]Bucket, len(bounds)-1)
	for i := range buckets {
		buckets[i].Lo = bounds[i]
		buckets[i].Hi = bounds[i+1]
	}
	for _, x := range xs {
		i := sort.SearchFloat64s(bounds, x)
		// SearchFloat64s returns the insertion point; adjust to bucket index.
		if i < len(bounds) && bounds[i] == x { //lint:allow(floatcmp) exact on purpose: SearchFloat64s found x at this bound
			// x equals a bound: belongs to the bucket starting at that bound.
		} else {
			i--
		}
		if i < 0 {
			i = 0
		}
		if i > len(buckets)-1 {
			i = len(buckets) - 1
		}
		buckets[i].Count++
	}
	return buckets
}

// LogBounds returns bucket bounds 0, 1, 10, 100, ... up to the first
// power of ten >= max (at least maxExp decades).
func LogBounds(max float64) []float64 {
	bounds := []float64{0, 1}
	v := 1.0
	for v < max {
		v *= 10
		bounds = append(bounds, v)
	}
	return bounds
}

// LetterValues is the letter-value summary used by boxen plots
// (Figure 8): the median plus successive "letter" quantile pairs at
// depths 1/4, 1/8, 1/16, ... from each tail.
type LetterValues struct {
	Median float64
	// Pairs[i] holds the lower and upper letter values at depth
	// 1/2^(i+2): Pairs[0] is the quartile box, Pairs[1] the eighths,
	// and so on.
	Pairs [][2]float64
}

// LetterValueSummary computes letter values down to boxes that would
// contain fewer than minBox points (minBox defaults to 5 when <= 0).
func LetterValueSummary(xs []float64, minBox int) LetterValues {
	if minBox <= 0 {
		minBox = 5
	}
	lv := LetterValues{}
	if len(xs) == 0 {
		return lv
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	lv.Median = percentileSorted(sorted, 50)
	depth := 0.25
	for float64(len(sorted))*depth >= float64(minBox) && depth > 1e-9 {
		lo := percentileSorted(sorted, depth*100)
		hi := percentileSorted(sorted, (1-depth)*100)
		lv.Pairs = append(lv.Pairs, [2]float64{lo, hi})
		depth /= 2
	}
	return lv
}

// Quartiles returns the 25th, 50th and 75th percentiles.
func Quartiles(xs []float64) (q1, q2, q3 float64) {
	qs := Percentiles(xs, 25, 50, 75)
	return qs[0], qs[1], qs[2]
}

// FormatCount renders n with SI-style suffixes the way the paper's
// tables do (e.g. 4.2K, 1.9M, 409.2M).
func FormatCount(n float64) string {
	abs := math.Abs(n)
	switch {
	case abs >= 1e9:
		return trimZero(fmt.Sprintf("%.1fB", n/1e9))
	case abs >= 1e6:
		return trimZero(fmt.Sprintf("%.1fM", n/1e6))
	case abs >= 1e3:
		return trimZero(fmt.Sprintf("%.1fK", n/1e3))
	default:
		if n == math.Trunc(n) { //lint:allow(floatcmp) exact on purpose: integer-valued counts render without decimals
			return fmt.Sprintf("%.0f", n)
		}
		return fmt.Sprintf("%.2f", n)
	}
}

func trimZero(s string) string {
	if i := len(s) - 1; i > 2 && s[i-2] == '.' && s[i-1] == '0' {
		return s[:i-2] + s[i:]
	}
	return s
}
