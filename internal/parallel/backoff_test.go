package parallel

import (
	"context"
	"testing"
	"time"
)

func TestHash01RangeAndDeterminism(t *testing.T) {
	seen := map[float64]bool{}
	for n := 0; n < 1000; n++ {
		v := Hash01(7, "key", n)
		if v < 0 || v >= 1 {
			t.Fatalf("Hash01(7, key, %d) = %v out of [0,1)", n, v)
		}
		if v != Hash01(7, "key", n) {
			t.Fatalf("Hash01 not deterministic at n=%d", n)
		}
		seen[v] = true
	}
	if len(seen) < 990 {
		t.Errorf("Hash01 spread too low: %d distinct of 1000", len(seen))
	}
	if Hash01(1, "a", 0) == Hash01(2, "a", 0) && Hash01(1, "a", 1) == Hash01(2, "a", 1) {
		t.Error("Hash01 ignores seed")
	}
	if Hash01(1, "a", 0) == Hash01(1, "b", 0) && Hash01(1, "a", 1) == Hash01(1, "b", 1) {
		t.Error("Hash01 ignores key")
	}
}

func TestBackoffDelayExponentialWithJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Seed: 3}
	for attempt := 1; attempt <= 6; attempt++ {
		nominal := b.Base << (attempt - 1)
		if nominal > b.Max {
			nominal = b.Max
		}
		d := b.Delay("unit", attempt)
		if d != b.Delay("unit", attempt) {
			t.Fatalf("Delay not deterministic at attempt %d", attempt)
		}
		if d < nominal/2 || d > nominal*3/2 {
			t.Errorf("attempt %d: delay %v outside 50–150%% of %v", attempt, d, nominal)
		}
	}
	if d := (Backoff{}).Delay("unit", 3); d != 0 {
		t.Errorf("zero-value Backoff delay = %v, want 0", d)
	}
	if d := b.Delay("unit", 0); d != 0 {
		t.Errorf("attempt 0 delay = %v, want 0", d)
	}
	a1, b1 := b.Delay("a", 1), b.Delay("b", 1)
	a2, b2 := b.Delay("a", 2), b.Delay("b", 2)
	if a1 == b1 && a2 == b2 {
		t.Error("jitter ignores the work-unit key")
	}
}

func TestBackoffSleepHonorsContext(t *testing.T) {
	b := Backoff{Base: time.Hour, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := b.Sleep(ctx, "unit", 1); err == nil {
		t.Error("Sleep on canceled context should return the context error")
	}
	if time.Since(start) > time.Second {
		t.Error("Sleep ignored cancellation")
	}
	// A disabled backoff returns without waiting.
	if err := (Backoff{}).Sleep(context.Background(), "unit", 1); err != nil {
		t.Errorf("zero-value Sleep = %v", err)
	}
}
