package parallel

import "sync/atomic"

// Observer receives pool telemetry. It is defined here (and satisfied
// structurally by obs.PoolStats) so the pool stays dependency-free.
//
// The callbacks report scheduling facts — which worker ran a task,
// how many tasks were still unclaimed — that are inherently
// nondeterministic across worker counts. Install an observer only for
// diagnostics (the CLIs' -trace flag does); never feed its output
// into anything covered by the byte-identical snapshot contract.
type Observer interface {
	// PoolStart is called once per ForEach/Map batch that dispatches
	// work, with the batch's pool name (see WithPool; "anon" when the
	// context carries none), the task count, and the worker count
	// actually used.
	PoolStart(pool string, tasks, workers int)
	// TaskDone is called after each completed task with the pool name,
	// the 0-based index of the worker that ran it (the sequential fast
	// path is worker 0), and the number of tasks not yet claimed.
	TaskDone(pool string, worker, remaining int)
}

// observer holds the installed Observer; atomic so installation never
// races with running pools.
var observer atomic.Value // of obsBox

// obsBox keeps atomic.Value happy when storing different concrete
// Observer types (including nil).
type obsBox struct{ o Observer }

// SetObserver installs (or, with nil, removes) the process-wide pool
// observer. Intended to be called once at CLI startup, before any
// pools run.
func SetObserver(o Observer) {
	observer.Store(obsBox{o: o})
}

func currentObserver() Observer {
	if b, ok := observer.Load().(obsBox); ok {
		return b.o
	}
	return nil
}
