package parallel

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"time"
)

// Hash01 maps (seed, key, n) to a uniform float64 in [0, 1) through a
// 64-bit FNV-1a hash. It is a pure function, so concurrent callers can
// make reproducible pseudo-random decisions (retry jitter, injected
// fault schedules) without sharing a rand.Rand or depending on call
// order — the same properties the pool's per-index rng streams give
// the analysis layers.
func Hash01(seed int64, key string, n int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(key))
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	// Keep 53 bits so the quotient is exact in a float64.
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Backoff is a deterministic exponential backoff policy with seeded
// jitter. Delay is a pure function of (Seed, key, attempt): the
// nominal delay doubles per attempt and is jittered to 50–150% of that
// value by Hash01, so retry schedules are byte-reproducible across
// runs and independent of goroutine interleaving.
type Backoff struct {
	// Base is the nominal delay before the first retry; later retries
	// double it. Zero or negative disables waiting entirely.
	Base time.Duration
	// Max caps the nominal (pre-jitter) delay. Zero means no cap.
	Max time.Duration
	// Seed salts the jitter hash.
	Seed int64
}

// Delay returns the jittered pause before retry attempt (1-based) of
// the work unit identified by key.
func (b Backoff) Delay(key string, attempt int) time.Duration {
	if b.Base <= 0 || attempt < 1 {
		return 0
	}
	d := b.Base
	for i := 1; i < attempt; i++ {
		if b.Max > 0 && d >= b.Max {
			break
		}
		if d > (1<<62)/2*time.Nanosecond {
			break
		}
		d *= 2
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	jitter := 0.5 + Hash01(b.Seed, key, attempt)
	return time.Duration(float64(d) * jitter)
}

// Sleep blocks for Delay(key, attempt) or until ctx is done, in which
// case it returns ctx.Err() immediately.
func (b Backoff) Sleep(ctx context.Context, key string, attempt int) error {
	d := b.Delay(key, attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
