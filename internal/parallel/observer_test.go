package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// recordingObserver captures the pool names and counts handed to the
// observer callbacks.
type recordingObserver struct {
	mu     sync.Mutex
	starts []string
	tasks  int
	dones  map[string]int
}

func (r *recordingObserver) PoolStart(pool string, tasks, workers int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts = append(r.starts, pool)
	r.tasks = tasks
}

func (r *recordingObserver) TaskDone(pool string, worker, remaining int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dones == nil {
		r.dones = map[string]int{}
	}
	r.dones[pool]++
}

func TestPoolNameDefaultsToAnon(t *testing.T) {
	if got := PoolName(context.Background()); got != "anon" {
		t.Errorf("PoolName(background) = %q, want anon", got)
	}
	if got := PoolName(WithPool(context.Background(), "fd")); got != "fd" {
		t.Errorf("PoolName(WithPool) = %q", got)
	}
	if got := PoolName(WithPool(context.Background(), "")); got != "anon" {
		t.Errorf(`PoolName(WithPool "") = %q, want anon`, got)
	}
}

// TestObserverReceivesPoolName checks both the sequential fast path
// (workers=1) and the pooled path attribute their batches to the
// WithPool name.
func TestObserverReceivesPoolName(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := &recordingObserver{}
		SetObserver(rec)
		const n = 50
		err := ForEach(WithPool(context.Background(), "precompute"), n, workers, func(i int) {})
		SetObserver(nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rec.starts) != 1 || rec.starts[0] != "precompute" || rec.tasks != n {
			t.Errorf("workers=%d: PoolStart saw %v (tasks=%d), want one precompute batch of %d",
				workers, rec.starts, rec.tasks, n)
		}
		if rec.dones["precompute"] != n {
			t.Errorf("workers=%d: %d TaskDone events for pool, want %d",
				workers, rec.dones["precompute"], n)
		}
	}
}

func TestMustPassesNilAndPanicsOnError(t *testing.T) {
	Must(nil) // must not panic

	defer func() {
		if recover() == nil {
			t.Error("Must(err) did not panic")
		}
	}()
	Must(errors.New("context canceled"))
}

func TestMustMapUnwraps(t *testing.T) {
	got := MustMap(Map(context.Background(), 3, 1, func(i int) int { return i * 2 }))
	if len(got) != 3 || got[2] != 4 {
		t.Errorf("MustMap = %v", got)
	}
}
