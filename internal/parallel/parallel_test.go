package parallel

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", Workers(0))
	}
	if Workers(-3) != Workers(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", Workers(-3))
	}
	if Workers(7) != 7 {
		t.Errorf("Workers(7) = %d", Workers(7))
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 1000
		counts := make([]int32, n)
		if err := ForEach(context.Background(), n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) int { return i*i + 7 }
	want, err := Map(context.Background(), 500, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Map(context.Background(), 500, workers, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: result differs from sequential", workers)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(i int) int { return i })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				if workers > 1 {
					wp, ok := r.(*WorkerPanic)
					if !ok {
						t.Fatalf("workers=%d: recovered %T, want *WorkerPanic", workers, r)
					}
					if wp.Value != "boom" || len(wp.Stack) == 0 {
						t.Fatalf("workers=%d: panic payload %v lost", workers, wp.Value)
					}
				}
			}()
			ForEach(context.Background(), 100, workers, func(i int) {
				if i == 42 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 10000, 4, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
		time.Sleep(time.Microsecond)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 10000 {
		t.Error("cancellation did not stop dispatch")
	}
}
