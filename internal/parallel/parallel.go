// Package parallel is the bounded worker pool shared by the study's
// hot layers: index-addressed fan-out over a fixed-size work list with
// deterministic result placement, context cancellation, and panic
// propagation.
//
// Determinism is the design center. Work units are addressed by index,
// workers communicate only through per-index result slots, and callers
// merge results in index order, so output never depends on goroutine
// scheduling. A workers value of 1 degenerates to a plain sequential
// loop on the caller's goroutine, reproducing single-threaded
// behaviour exactly; 0 selects runtime.GOMAXPROCS(0).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values ≤ 0 select
// runtime.GOMAXPROCS(0); anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// poolNameKey carries the pool name set by WithPool through a context.
type poolNameKey struct{}

// WithPool tags ctx with a pool name, so observer telemetry (batch
// counts, per-pool queue depth) can attribute ForEach/Map batches to
// the pipeline stage that dispatched them. The name has no effect on
// scheduling or results.
func WithPool(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, poolNameKey{}, name)
}

// PoolName returns the pool name attached by WithPool, or "anon".
func PoolName(ctx context.Context) string {
	if name, ok := ctx.Value(poolNameKey{}).(string); ok && name != "" {
		return name
	}
	return "anon"
}

// Must panics on a non-nil fan-out error. Study pipelines run their
// pools under context.Background(), where ForEach/Map can only return
// a non-nil error if that contract is broken (a cancelable context
// reached a study pool); panicking loudly there beats silently
// dropping the error, and worker panics already propagate on their
// own as *WorkerPanic. Callers that pass a cancelable context must
// handle the error instead of using Must.
func Must(err error) {
	if err != nil {
		panic(fmt.Sprintf("parallel: fan-out under a never-canceled context returned %v", err))
	}
}

// MustMap unwraps a Map result the way Must unwraps a ForEach error:
// use for study fan-outs whose context is never canceled.
func MustMap[T any](out []T, err error) []T {
	Must(err)
	return out
}

// WorkerPanic carries a panic recovered on a pool goroutine back to
// the caller, preserving the original value and worker stack.
type WorkerPanic struct {
	// Value is the value originally passed to panic.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.Value, p.Stack)
}

// ForEach invokes fn(i) for every i in [0, n), using at most workers
// goroutines (Workers-normalized). Indices are claimed atomically, so
// fn must be safe to call concurrently for distinct indices; writes
// must be index-addressed for deterministic output.
//
// If fn panics, the first panic is captured, remaining indices are
// abandoned, and the panic is re-raised on the caller's goroutine as a
// *WorkerPanic. If ctx is canceled, no new indices are dispatched
// (in-flight calls complete) and the context error is returned.
func ForEach(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	obs := currentObserver()
	pool := ""
	if obs != nil {
		pool = PoolName(ctx)
		obs.PoolStart(pool, n, workers)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
			if obs != nil {
				obs.TaskDone(pool, 0, n-1-i)
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stop    atomic.Bool
		panicMu sync.Mutex
		caught  *WorkerPanic
		wg      sync.WaitGroup
	)
	next.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if caught == nil {
								caught = &WorkerPanic{Value: r, Stack: debug.Stack()}
							}
							panicMu.Unlock()
							stop.Store(true)
						}
					}()
					fn(i)
				}()
				if obs != nil {
					remaining := n - 1 - int(next.Load())
					if remaining < 0 {
						remaining = 0
					}
					obs.TaskDone(pool, worker, remaining)
				}
			}
		}(w)
	}
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
	return ctx.Err()
}

// Map invokes fn(i) for every i in [0, n) on up to workers goroutines
// and returns the results in index order, so the output is identical
// for every worker count. Error and panic semantics match ForEach; on
// a context error the returned slice is partially filled.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, error) {
	out := make([]T, max(n, 0))
	err := ForEach(ctx, n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out, err
}
