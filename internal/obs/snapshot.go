package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of a Registry, ordered by
// canonical series id (name plus sorted labels), so rendering it in
// any format is deterministic.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Metric is one series in a snapshot.
type Metric struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Type   string  `json:"type"`
	Labels []Label `json:"labels,omitempty"`
	// Value is the counter or gauge value; zero for histograms.
	Value float64 `json:"value,omitempty"`
	// Histogram fields.
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`

	id string
}

// Bucket is one histogram bucket: the count of samples ≤ UpperBound.
// The +Inf bucket is rendered with UpperBound = +Inf (JSON: omitted).
type Bucket struct {
	UpperBound float64 `json:"le,omitempty"`
	Count      int64   `json:"count"`
}

// Snapshot copies the registry's current state. The result is sorted
// by series id, so two registries that recorded the same values render
// byte-identically regardless of registration or scheduling order.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	for _, m := range r.metrics {
		s.Metrics = append(s.Metrics, m.export())
	}
	r.mu.Unlock()
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].id < s.Metrics[j].id })
	return s
}

func (m *metric) export() Metric {
	out := Metric{Name: m.name, Help: m.help, Type: m.kind, Labels: m.labels, id: m.id}
	switch m.kind {
	case "counter":
		out.Value = float64(m.value.Load())
	case "gauge":
		out.Value = float64(m.value.Load()) / 1e6
	case "histogram":
		h := (*Histogram)(m)
		out.Count = h.Count()
		out.Sum = h.Sum()
		out.Buckets = make([]Bucket, 0, len(m.buckets))
		for i := range m.buckets {
			b := Bucket{Count: m.buckets[i].Load()}
			if i < len(m.bounds) {
				b.UpperBound = m.bounds[i]
			} else {
				b.UpperBound = inf()
			}
			out.Buckets = append(out.Buckets, b)
		}
	}
	return out
}

func inf() float64 { return math.Inf(1) }

// Value returns the value of the named counter or gauge series, or
// (0, false) when it is not in the snapshot. Labels are alternating
// name, value pairs, as in Registry.Counter.
func (s *Snapshot) Value(name string, labels ...string) (float64, bool) {
	id, _ := seriesID(name, labels)
	for i := range s.Metrics {
		if s.Metrics[i].id == id {
			return s.Metrics[i].Value, true
		}
	}
	return 0, false
}

// series renders the id for display; the stored id already carries
// the canonical label order.
func (m *Metric) series() string { return m.id }

// WriteText renders the snapshot as aligned human-readable text.
func (s *Snapshot) WriteText(w io.Writer) {
	width := 0
	for i := range s.Metrics {
		if n := len(s.Metrics[i].series()); n > width {
			width = n
		}
	}
	for i := range s.Metrics {
		m := &s.Metrics[i]
		switch m.Type {
		case "histogram":
			fmt.Fprintf(w, "%-*s  count=%d sum=%s\n", width, m.series(), m.Count, formatFloat(m.Sum))
			for _, b := range m.Buckets {
				if b.UpperBound >= inf() {
					fmt.Fprintf(w, "    >%-12s %d\n", formatFloat(lastBound(m)), b.Count)
				} else {
					fmt.Fprintf(w, "    ≤%-12s %d\n", formatFloat(b.UpperBound), b.Count)
				}
			}
		default:
			fmt.Fprintf(w, "%-*s  %s\n", width, m.series(), formatFloat(m.Value))
		}
	}
}

func lastBound(m *Metric) float64 {
	if len(m.Buckets) < 2 {
		return 0
	}
	return m.Buckets[len(m.Buckets)-2].UpperBound
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// MarshalJSON keeps the +Inf bucket encodable: JSON has no Inf, so
// the terminal bucket drops its le field.
func (b Bucket) MarshalJSON() ([]byte, error) {
	if b.UpperBound >= inf() {
		return []byte(fmt.Sprintf(`{"le":"+Inf","count":%d}`, b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, formatFloat(b.UpperBound), b.Count)), nil
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE pair per metric
// family followed by its series; histograms expand into _bucket
// (cumulative, with le labels), _sum, and _count series.
func (s *Snapshot) WritePrometheus(w io.Writer) {
	lastFamily := ""
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != lastFamily {
			lastFamily = m.Name
			if m.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type)
		}
		switch m.Type {
		case "histogram":
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				le := "+Inf"
				if b.UpperBound < inf() {
					le = formatFloat(b.UpperBound)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(m.Labels, "le", le), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(m.Labels), formatFloat(m.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels), m.Count)
		default:
			fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(m.Labels), formatFloat(m.Value))
		}
	}
}

// promLabels renders a label set ({a="x",le="5"} or ""), appending
// any extra alternating name, value pairs.
func promLabels(labels []Label, extra ...string) string {
	all := labels
	if len(extra) > 0 {
		all = append([]Label{}, labels...)
		for i := 0; i+1 < len(extra); i += 2 {
			all = append(all, Label{Name: extra[i], Value: extra[i+1]})
		}
	}
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float with the shortest exact decimal form,
// the same spelling for every run and platform.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
