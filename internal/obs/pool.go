package obs

import (
	"fmt"
	"sync"
)

// PoolStats records worker-pool telemetry — batch sizes, per-worker
// task counts, and the observed queue depth, all labeled by the pool
// name the dispatching stage attached via parallel.WithPool — into a
// registry. It implements internal/parallel's Observer interface
// structurally, so parallel never imports obs.
//
// This telemetry is scheduling-dependent by nature (which worker ran
// a task, how deep the queue was when it finished), so it sits
// outside the deterministic snapshot contract: the cmd/ layer only
// installs a PoolStats when the operator asks for diagnostics
// (-trace), never in the default -metrics mode.
type PoolStats struct {
	mu      sync.Mutex
	series  map[string]*poolSeries
	workers map[string]*Counter // keyed by pool + "\x00" + worker
	reg     *Registry
}

// poolSeries holds one pool's labeled metrics.
type poolSeries struct {
	batches *Counter
	tasks   *Histogram
	depth   *Gauge
}

// NewPoolStats creates pool telemetry backed by r.
func NewPoolStats(r *Registry) *PoolStats {
	return &PoolStats{
		series:  make(map[string]*poolSeries),
		workers: make(map[string]*Counter),
		reg:     r,
	}
}

// PoolStart is called once per batch with the pool name and the task
// and worker counts.
func (p *PoolStats) PoolStart(pool string, tasks, workers int) {
	if p == nil {
		return
	}
	s := p.pool(pool)
	s.batches.Inc()
	s.tasks.Observe(float64(tasks))
}

// TaskDone is called after each completed task with the pool name, the
// index of the worker that ran it, and the number of tasks not yet
// claimed — the per-pool queue-depth gauge this keeps current.
func (p *PoolStats) TaskDone(pool string, worker, remaining int) {
	if p == nil {
		return
	}
	p.pool(pool).depth.Set(float64(remaining))
	p.workerCounter(pool, worker).Inc()
}

func (p *PoolStats) pool(pool string) *poolSeries {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.series[pool]
	if !ok {
		s = &poolSeries{
			batches: p.reg.Counter("ogdp_pool_batches_total",
				"worker-pool batches dispatched (ForEach/Map calls with work)",
				"pool", pool),
			tasks: p.reg.Histogram("ogdp_pool_batch_tasks",
				"tasks per worker-pool batch", CountBuckets,
				"pool", pool),
			depth: p.reg.Gauge("ogdp_pool_queue_depth",
				"unclaimed tasks in the pool's most recently sampled batch",
				"pool", pool),
		}
		p.series[pool] = s
	}
	return s
}

func (p *PoolStats) workerCounter(pool string, worker int) *Counter {
	key := pool + "\x00" + fmt.Sprintf("%02d", worker)
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.workers[key]
	if !ok {
		c = p.reg.Counter("ogdp_pool_tasks_total",
			"tasks completed per pool worker",
			"pool", pool,
			"worker", fmt.Sprintf("%02d", worker))
		p.workers[key] = c
	}
	return c
}
