package obs

import (
	"fmt"
	"sync"
)

// PoolStats records worker-pool telemetry — batch sizes, per-worker
// task counts, and the observed queue depth — into a registry. It
// implements internal/parallel's Observer interface structurally, so
// parallel never imports obs.
//
// This telemetry is scheduling-dependent by nature (which worker ran
// a task, how deep the queue was when it finished), so it sits
// outside the deterministic snapshot contract: the cmd/ layer only
// installs a PoolStats when the operator asks for diagnostics
// (-trace), never in the default -metrics mode.
type PoolStats struct {
	batches *Counter
	tasks   *Histogram
	depth   *Gauge

	mu        sync.Mutex
	perWorker map[int]*Counter
	reg       *Registry
}

// NewPoolStats creates pool telemetry backed by r.
func NewPoolStats(r *Registry) *PoolStats {
	return &PoolStats{
		batches: r.Counter("ogdp_pool_batches_total",
			"worker-pool batches dispatched (ForEach/Map calls with work)"),
		tasks: r.Histogram("ogdp_pool_batch_tasks",
			"tasks per worker-pool batch", CountBuckets),
		depth: r.Gauge("ogdp_pool_queue_depth",
			"unclaimed tasks in the most recently sampled batch"),
		perWorker: make(map[int]*Counter),
		reg:       r,
	}
}

// PoolStart is called once per batch with the task and worker counts.
func (p *PoolStats) PoolStart(tasks, workers int) {
	if p == nil {
		return
	}
	p.batches.Inc()
	p.tasks.Observe(float64(tasks))
}

// TaskDone is called after each completed task with the index of the
// worker that ran it and the number of tasks not yet claimed.
func (p *PoolStats) TaskDone(worker, remaining int) {
	if p == nil {
		return
	}
	p.workerCounter(worker).Inc()
	p.depth.Set(float64(remaining))
}

func (p *PoolStats) workerCounter(worker int) *Counter {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.perWorker[worker]
	if !ok {
		c = p.reg.Counter("ogdp_pool_tasks_total",
			"tasks completed per pool worker",
			"worker", fmt.Sprintf("%02d", worker))
		p.perWorker[worker] = c
	}
	return c
}
