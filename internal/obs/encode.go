package obs

import "time"

// WaitBuckets bounds lock-wait/build-duration histograms, in
// microseconds (10µs … 10s).
var WaitBuckets = []float64{10, 100, 1000, 10000, 100000, 1e6, 1e7}

// EncodeStats records the table layer's slow-path cache telemetry: an
// ogdp_encode_wait_micros histogram of how long goroutines spent
// inside the build-or-wait window of each lazy cache (dictionary
// encoding, profile, canonical codes, schema key), split by whether
// the goroutine built the value or waited out a racing builder, plus
// an ogdp_encode_builds_total counter of actual builds.
//
// It implements internal/table's BuildObserver interface structurally,
// so table never imports obs. Wait durations and waited-event counts
// are scheduling-dependent, which is why the cmd/ layer installs an
// EncodeStats only under -trace (diagnostics), never in the
// deterministic -metrics mode; the clock is injected for the same
// reason obs never reads one itself.
//
// After the lock-free publication refactor, a healthy study shows
// every "waited" bucket near zero outside the initial precompute
// fan-out: any regrowth of waited time is a contention regression made
// visible here before it flattens the scaling curve.
type EncodeStats struct {
	reg   *Registry
	clock func() time.Time
}

// NewEncodeStats creates build/wait telemetry backed by r, timing
// windows with the given clock (pass time.Now from the cmd/ layer).
func NewEncodeStats(r *Registry, clock func() time.Time) *EncodeStats {
	return &EncodeStats{reg: r, clock: clock}
}

// BuildStart opens one build-or-wait window of the given cache kind;
// the returned func closes it.
func (s *EncodeStats) BuildStart(kind string) func(built bool) {
	if s == nil {
		return func(bool) {}
	}
	start := s.clock()
	return func(built bool) {
		wait := s.clock().Sub(start)
		outcome := "waited"
		if built {
			outcome = "built"
			s.reg.Counter("ogdp_encode_builds_total",
				"lazy table-cache values built (exactly once per column per kind)",
				"kind", kind).Inc()
		}
		s.reg.Histogram("ogdp_encode_wait_micros",
			"time spent in the slow-path build-or-wait window of the table layer's lazy caches, in microseconds",
			WaitBuckets, "kind", kind, "outcome", outcome).
			Observe(float64(wait.Microseconds()))
	}
}
