package obs

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildSnapshot produces a snapshot exercising every Prometheus
// rendering path: bare counter, labeled counter family with multiple
// series, gauge, histogram, and label values needing escaping.
func buildSnapshot() *Snapshot {
	r := NewRegistry()
	r.Counter("ogdp_tables_total", "Tables profiled.").Add(42)
	r.Counter("ogdp_fetch_requests_total", "HTTP attempts.", "stage", "download").Add(15)
	r.Counter("ogdp_fetch_requests_total", "HTTP attempts.", "stage", "package_show").Add(9)
	r.Gauge("ogdp_corpus_datasets", "Datasets in the generated corpus.").Set(31)
	h := r.Histogram("ogdp_fetch_body_bytes", "Response body sizes.", SizeBuckets, "portal", "SG")
	for _, v := range []float64{100, 5000, 5000, 2 << 20} {
		h.Observe(v)
	}
	r.Counter("ogdp_weird_total", "Help with\nnewline and \\ backslash.",
		"path", `C:\data "quoted"`).Inc()
	return r.Snapshot()
}

// TestPrometheusFormat validates the exposition output line by line
// against the text format 0.0.4 grammar: every line is a comment or a
// sample, names and labels are well-formed, each family has exactly one
// TYPE line preceding its samples, and histogram buckets are cumulative
// and end at +Inf.
func TestPrometheusFormat(t *testing.T) {
	var b strings.Builder
	buildSnapshot().WritePrometheus(&b)
	out := b.String()

	var (
		nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$`)
	)
	typed := map[string]string{} // family -> type
	sampled := map[string]bool{} // families that emitted samples

	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Error("blank line in exposition output")
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Errorf("malformed comment: %q", line)
				continue
			}
			if !nameRe.MatchString(parts[2]) {
				t.Errorf("bad metric name in comment: %q", line)
			}
			if parts[1] == "TYPE" {
				if _, dup := typed[parts[2]]; dup {
					t.Errorf("duplicate TYPE for %s", parts[2])
				}
				if sampled[parts[2]] {
					t.Errorf("TYPE for %s after its samples", parts[2])
				}
				switch parts[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Errorf("unknown type %q", parts[3])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" {
			t.Errorf("unparseable sample value %q in %q", value, line)
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if typed[family] == "" && typed[name] == "" {
			t.Errorf("sample %q has no preceding TYPE", line)
		}
		sampled[family] = true
		for _, l := range splitLabels(t, labels) {
			if !labelRe.MatchString(l.Name) {
				t.Errorf("bad label name %q in %q", l.Name, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Histogram structure: buckets cumulative, terminal le="+Inf",
	// +Inf bucket equals _count.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var cum []int64
	var infCount, count int64 = -1, -1
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "ogdp_fetch_body_bytes_bucket"):
			n, _ := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			cum = append(cum, n)
			if strings.Contains(line, `le="+Inf"`) {
				infCount = n
			}
		case strings.HasPrefix(line, "ogdp_fetch_body_bytes_count"):
			count, _ = strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		}
	}
	if len(cum) != len(SizeBuckets)+1 {
		t.Fatalf("bucket lines = %d, want %d", len(cum), len(SizeBuckets)+1)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("buckets not cumulative: %v", cum)
		}
	}
	if infCount != count || count != 4 {
		t.Errorf("+Inf bucket = %d, _count = %d; want both 4", infCount, count)
	}

	// Escaping: the quoted label value must round-trip as a Go quoted
	// string (Prometheus label escaping is a subset of Go's).
	if !strings.Contains(out, `path="C:\\data \"quoted\""`) {
		t.Errorf("label escaping missing from output:\n%s", out)
	}
}

// TestPrometheusDeterministic renders the same logical state from two
// independently built registries and requires identical bytes.
func TestPrometheusDeterministic(t *testing.T) {
	var a, b strings.Builder
	buildSnapshot().WritePrometheus(&a)
	buildSnapshot().WritePrometheus(&b)
	if a.String() != b.String() {
		t.Error("two identical registries rendered differently")
	}
}

// TestJSONRoundTrip checks the snapshot's JSON form is valid and the
// +Inf bucket is encoded as the string "+Inf" (JSON has no Inf).
func TestJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := buildSnapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"le": "+Inf"`) {
		t.Error("terminal bucket must encode le as \"+Inf\"")
	}
	var c strings.Builder
	if err := buildSnapshot().WriteJSON(&c); err != nil {
		t.Fatal(err)
	}
	if b.String() != c.String() {
		t.Error("JSON rendering not deterministic")
	}
}

// splitLabels parses a {a="x",b="y"} block. Values were escaped by
// promLabels, so an unescaped parse of name= boundaries suffices for
// validating label names.
func splitLabels(t *testing.T, block string) []Label {
	t.Helper()
	if block == "" {
		return nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	var out []Label
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq < 0 || eq+1 >= len(inner) || inner[eq+1] != '"' {
			t.Errorf("malformed label block %q", block)
			return out
		}
		name := inner[:eq]
		rest := inner[eq+2:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			t.Errorf("unterminated label value in %q", block)
			return out
		}
		out = append(out, Label{Name: name, Value: rest[:end]})
		inner = strings.TrimPrefix(rest[end+1:], ",")
	}
	return out
}
