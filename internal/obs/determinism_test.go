package obs_test

import (
	"net/http/httptest"
	"strings"
	"testing"

	"ogdp/internal/ckan"
	"ogdp/internal/gen"
	"ogdp/internal/obs"
)

// crawl runs a full fetch against a freshly built faulty portal with
// the given worker count and renders the resulting metrics snapshot
// and span tree as text plus the snapshot as JSON.
func crawl(t *testing.T, workers int) (text, jsonOut, tree string) {
	t.Helper()
	prof, ok := gen.ProfileByName("SG")
	if !ok {
		t.Fatal("SG portal profile missing")
	}
	corpus := gen.Generate(prof, 0.1, 1)
	server := ckan.NewServer(gen.BuildPortal(corpus, 1))
	server.InjectFaults(ckan.Faults{
		Seed:        7,
		PackageShow: ckan.FaultSpec{Rate500: 0.3},
		Download:    ckan.FaultSpec{Rate500: 0.3, TruncateRate: 0.1},
	})
	srv := httptest.NewServer(server)
	defer srv.Close()

	reg := obs.NewRegistry()
	root := obs.NewTrace("fetch")
	client := ckan.NewClient(srv.URL)
	client.Workers = workers
	client.Seed = 1
	client.Retries = 6
	client.Backoff = -1
	client.Metrics = reg
	client.MetricLabels = []string{"portal", "SG"}
	client.Trace = root

	if _, _, err := client.FetchAll(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	var a, b, c strings.Builder
	snap.WriteText(&a)
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	root.WriteTree(&c)
	return a.String(), b.String(), c.String()
}

// TestSnapshotDeterministicAcrossWorkers is the package's acceptance
// criterion end to end: a crawl against a portal injecting ~30%
// transient faults must produce byte-identical metrics text, metrics
// JSON, and span trees for Workers=1 and Workers=8. Everything the
// registry records — request attempts, retries, backoff histograms,
// failure kinds, funnel counters — is a pure function of (portal,
// seeds), never of scheduling.
func TestSnapshotDeterministicAcrossWorkers(t *testing.T) {
	text1, json1, tree1 := crawl(t, 1)
	text8, json8, tree8 := crawl(t, 8)

	if text1 != text8 {
		t.Errorf("metrics text differs between workers=1 and workers=8:\n--- w1 ---\n%s--- w8 ---\n%s", text1, text8)
	}
	if json1 != json8 {
		t.Error("metrics JSON differs between workers=1 and workers=8")
	}
	if tree1 != tree8 {
		t.Errorf("span tree differs between workers=1 and workers=8:\n--- w1 ---\n%s--- w8 ---\n%s", tree1, tree8)
	}

	// The run must actually have exercised the interesting paths:
	// faults were injected, so retries and failure counters are
	// non-zero, and all three fetch stages appear in the tree.
	if !strings.Contains(text1, "ogdp_fetch_retries_total") {
		t.Error("no retry counters recorded under 30% faults")
	}
	if !strings.Contains(text1, `ogdp_fetch_attempt_failures_total{kind="status_5xx"`) {
		t.Error("no 5xx failure counters recorded under Rate500 faults")
	}
	for _, stage := range []string{ckan.StagePackageList, ckan.StagePackageShow, ckan.StageDownload} {
		if !strings.Contains(tree1, stage) {
			t.Errorf("span tree missing stage %q:\n%s", stage, tree1)
		}
	}
	if strings.Contains(tree1, "wall=") || strings.Contains(text1, "request_seconds") {
		t.Error("deterministic run must not record wall time (no clock was injected)")
	}
}

// TestSnapshotDeterministicRepeatRuns re-runs the same configuration
// and requires byte-identical output — the same contract the CLI's
// -metrics flag promises across invocations.
func TestSnapshotDeterministicRepeatRuns(t *testing.T) {
	textA, jsonA, treeA := crawl(t, 4)
	textB, jsonB, treeB := crawl(t, 4)
	if textA != textB || jsonA != jsonB || treeA != treeB {
		t.Error("repeat runs with identical configuration rendered differently")
	}
}
