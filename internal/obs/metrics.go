package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Shared fixed bucket sets. Buckets are upper bounds (≤), with an
// implicit +Inf bucket after the last; fixing them package-wide keeps
// snapshots comparable across runs and PRs.
var (
	// DurationBuckets bounds duration histograms, in seconds
	// (1ms … 60s).
	DurationBuckets = []float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 60}
	// SizeBuckets bounds byte-size histograms (256B … 256MiB).
	SizeBuckets = []float64{256, 4096, 65536, 1 << 20, 16 << 20, 256 << 20}
	// CountBuckets bounds cardinality histograms (rows, columns,
	// tasks per batch).
	CountBuckets = []float64{1, 5, 10, 50, 100, 1000, 10000, 100000}
)

// Registry holds a process's metrics. Metrics are registered lazily
// and identified by (name, label set); re-registering the same
// identity returns the existing metric. All methods are safe for
// concurrent use and tolerate a nil receiver (every operation becomes
// a no-op), so instrumented code never branches on "is observability
// enabled".
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed by canonical series id
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	labels []Label
	id     string // canonical sort/identity key

	value   atomic.Int64 // counter count / gauge micro-units
	bounds  []float64    // histogram upper bounds
	buckets []atomic.Int64
	sumMu   sync.Mutex
	sumMic  int64 // histogram sum in integer micro-units
	count   atomic.Int64
}

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// seriesID canonicalizes (name, labels) into a stable identity and
// returns the sorted label set. Labels are passed as alternating
// name, value strings; a trailing odd name is ignored.
func seriesID(name string, labels []string) (string, []Label) {
	ls := make([]Label, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		ls = append(ls, Label{Name: labels[i], Value: labels[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	if len(ls) == 0 {
		return name, nil
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String(), ls
}

// register returns the metric for (name, labels), creating it with
// the given kind on first use. Registering an existing series with a
// different kind panics: that is a programming error, not input.
func (r *Registry) register(kind, name, help string, bounds []float64, labels []string) *metric {
	if r == nil {
		return nil
	}
	id, ls := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", id, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: ls, id: id, bounds: bounds}
	if kind == "histogram" {
		m.buckets = make([]atomic.Int64, len(bounds)+1)
	}
	r.metrics[id] = m
	return m
}

// Counter registers (or finds) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return (*Counter)(r.register("counter", name, help, nil, labels))
}

// Gauge registers (or finds) a gauge: a value that can go up and down.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return (*Gauge)(r.register("gauge", name, help, nil, labels))
}

// Histogram registers (or finds) a fixed-bucket histogram. buckets
// are inclusive upper bounds in ascending order; an implicit +Inf
// bucket catches the rest. The bound slice is captured, not copied:
// pass one of the package bucket sets or a dedicated literal.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return (*Histogram)(r.register("histogram", name, help, buckets, labels))
}

// Counter is a monotonically increasing integer metric. The zero of
// observability is a nil *Counter, whose methods no-op.
type Counter metric

// Add increases the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.value.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.value.Load()
}

// Gauge is a metric that can move both ways, stored in integer
// micro-units so concurrent updates stay exact.
type Gauge metric

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.value.Store(micros(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.value.Add(micros(delta))
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return float64(g.value.Load()) / 1e6
}

// Histogram is a fixed-bucket distribution. Observations accumulate
// per-bucket counts and an integer micro-unit sum, so snapshots are
// independent of the order concurrent observations landed in.
type Histogram metric

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumMu.Lock()
	h.sumMic += micros(v)
	h.sumMu.Unlock()
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.sumMu.Lock()
	defer h.sumMu.Unlock()
	return float64(h.sumMic) / 1e6
}

// micros converts a float value to integer micro-units, rounding half
// away from zero. Accumulating in integers keeps concurrent sums
// associative, which is what makes snapshots byte-identical across
// worker counts.
func micros(v float64) int64 {
	if v >= 0 {
		return int64(v*1e6 + 0.5)
	}
	return -int64(-v*1e6 + 0.5)
}
