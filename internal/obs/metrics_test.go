package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestRegisterSameSeriesReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "portal", "SG")
	b := r.Counter("x_total", "", "portal", "SG")
	a.Inc()
	b.Inc()
	if a != b {
		t.Fatal("same (name, labels) must return the same metric")
	}
	if a.Value() != 2 {
		t.Errorf("value = %d, want 2", a.Value())
	}
	// Label order must not matter for identity.
	c := r.Counter("y_total", "", "a", "1", "b", "2")
	d := r.Counter("y_total", "", "b", "2", "a", "1")
	if c != d {
		t.Error("label order must not change series identity")
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 5, 10})
	// Bounds are inclusive upper bounds: a sample exactly on a bound
	// lands in that bound's bucket, not the next one.
	for _, v := range []float64{0.5, 1, 1.0000001, 5, 9.99, 10, 11, 1e9} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	m := snap.Metrics[0]
	want := []struct {
		le    float64
		count int64
	}{
		{1, 2},     // 0.5, 1
		{5, 2},     // 1.0000001, 5
		{10, 2},    // 9.99, 10
		{inf(), 2}, // 11, 1e9
	}
	if len(m.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(m.Buckets), len(want))
	}
	for i, w := range want {
		if m.Buckets[i].UpperBound != w.le || m.Buckets[i].Count != w.count {
			t.Errorf("bucket %d = {le=%v n=%d}, want {le=%v n=%d}",
				i, m.Buckets[i].UpperBound, m.Buckets[i].Count, w.le, w.count)
		}
	}
	if m.Count != 8 {
		t.Errorf("count = %d, want 8", m.Count)
	}
}

func TestHistogramSumMicroUnits(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", DurationBuckets)
	h.ObserveDuration(1500 * time.Millisecond)
	h.ObserveDuration(250 * time.Microsecond)
	if got, want := h.Sum(), 1.50025; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestSnapshotSortedByID(t *testing.T) {
	r := NewRegistry()
	// Register in deliberately unsorted order.
	r.Counter("z_total", "").Inc()
	r.Counter("a_total", "", "portal", "UK").Inc()
	r.Counter("a_total", "", "portal", "CA").Inc()
	r.Gauge("m", "").Set(1)
	snap := r.Snapshot()
	var ids []string
	for i := range snap.Metrics {
		ids = append(ids, snap.Metrics[i].series())
	}
	want := []string{`a_total{portal="CA"}`, `a_total{portal="UK"}`, "m", "z_total"}
	if strings.Join(ids, "|") != strings.Join(want, "|") {
		t.Errorf("snapshot order = %v, want %v", ids, want)
	}
}

func TestSnapshotValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "stage", "download").Add(7)
	snap := r.Snapshot()
	if v, ok := snap.Value("c_total", "stage", "download"); !ok || v != 7 {
		t.Errorf("Value = %v, %v; want 7, true", v, ok)
	}
	if _, ok := snap.Value("c_total", "stage", "other"); ok {
		t.Error("lookup of an unrecorded series must report ok=false")
	}
}

func TestNilSafety(t *testing.T) {
	// A nil registry hands out nil metrics whose methods all no-op;
	// instrumented code never branches on "is observability enabled".
	var r *Registry
	c := r.Counter("c", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter must read zero")
	}
	g := r.Gauge("g", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge must read zero")
	}
	h := r.Histogram("h", "", CountBuckets)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram must read zero")
	}
	if snap := r.Snapshot(); len(snap.Metrics) != 0 {
		t.Error("nil registry snapshot must be empty")
	}

	var s *Span
	if c := s.Child("x"); c != nil {
		t.Error("nil span's child must be nil")
	}
	s.End()
	s.AddDuration(time.Second)
	s.AddTasks(1)
	s.AddItems(1)
	s.AddBytes(1)
	if s.Timed() {
		t.Error("nil span is not timed")
	}
	s.WriteTree(&strings.Builder{})
}

func TestStopwatchZeroValueInert(t *testing.T) {
	var sw Stopwatch
	if sw.Elapsed() != 0 {
		t.Error("clockless stopwatch must read zero")
	}
	if sw.String() != "0.000s" {
		t.Errorf("clockless stopwatch String = %q, want 0.000s", sw.String())
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0.000s"},
		{-time.Second, "0.000s"},
		{time.Millisecond, "0.001s"},
		{1499 * time.Microsecond, "0.001s"}, // rounds half away: 1.499ms -> 1ms
		{1500 * time.Microsecond, "0.002s"},
		{1234 * time.Millisecond, "1.234s"},
		{93120 * time.Millisecond, "93.120s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
