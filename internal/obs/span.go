package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one stage of a run: a named node in a trace tree carrying
// task, item, and byte counts, and — when the trace was built with a
// clock — wall time. Spans are safe for concurrent counter updates;
// children must be created from a single goroutine per parent (the
// pipeline creates stage spans sequentially before fanning out), which
// is what keeps the rendered tree byte-identical across worker counts.
//
// All methods tolerate a nil receiver, so un-instrumented runs pass a
// nil span through the same code paths at no cost.
type Span struct {
	name  string
	now   func() time.Time // nil in deterministic traces
	start time.Time

	elapsed atomic.Int64 // nanoseconds; set by End or AddDuration
	tasks   atomic.Int64
	items   atomic.Int64
	bytes   atomic.Int64

	mu       sync.Mutex
	children []*Span
}

// NewTrace creates a root span with no clock: the tree records
// counts and bytes only, and renders byte-identically across runs and
// worker counts.
func NewTrace(name string) *Span {
	return &Span{name: name}
}

// NewTimedTrace creates a root span whose descendants measure wall
// time through now (inject time.Now from the cmd/ layer; study
// packages never read the clock themselves). Timed trees are
// diagnostic output: their rendering varies run to run.
func NewTimedTrace(name string, now func() time.Time) *Span {
	s := &Span{name: name, now: now}
	if now != nil {
		s.start = now()
	}
	return s
}

// Child creates and attaches a sub-span. Nil-safe: a nil parent
// yields a nil child, so call sites never branch.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, now: s.now}
	if c.now != nil {
		c.start = c.now()
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End records the span's wall time, when its trace carries a clock.
// Without one, End is a no-op beyond marking completion.
func (s *Span) End() {
	if s == nil || s.now == nil {
		return
	}
	s.elapsed.Store(int64(s.now().Sub(s.start)))
}

// AddDuration attributes an externally measured duration to the span
// (the "durations flow in from the caller" side of the contract).
func (s *Span) AddDuration(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.elapsed.Add(int64(d))
}

// AddTasks adds n to the span's task count (work units dispatched).
func (s *Span) AddTasks(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.tasks.Add(int64(n))
}

// AddItems adds n to the span's item count (results produced: pairs,
// FDs, groups, rows — whatever the stage emits).
func (s *Span) AddItems(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.items.Add(int64(n))
}

// AddBytes adds n bytes processed to the span.
func (s *Span) AddBytes(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.bytes.Add(n)
}

// Timed reports whether the span's trace carries a clock.
func (s *Span) Timed() bool { return s != nil && s.now != nil }

// WriteTree renders the span tree with box-drawing connectors, one
// line per span with its non-zero attributes:
//
//	study
//	├─ portal:SG [tasks=56 bytes=1203441]
//	│  └─ profile [tasks=56]
//	└─ portal:CA [tasks=131]
//
// Wall times appear only on timed traces.
func (s *Span) WriteTree(w io.Writer) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "%s%s\n", s.name, s.attrs())
	s.writeChildren(w, "")
}

func (s *Span) writeChildren(w io.Writer, prefix string) {
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for i, c := range children {
		connector, childPrefix := "├─ ", prefix+"│  "
		if i == len(children)-1 {
			connector, childPrefix = "└─ ", prefix+"   "
		}
		fmt.Fprintf(w, "%s%s%s%s\n", prefix, connector, c.name, c.attrs())
		c.writeChildren(w, childPrefix)
	}
}

// attrs renders the bracketed attribute list, omitting zero values so
// deterministic traces never print wall time.
func (s *Span) attrs() string {
	var parts []string
	if d := time.Duration(s.elapsed.Load()); d > 0 {
		parts = append(parts, "wall="+FormatDuration(d))
	}
	if n := s.tasks.Load(); n > 0 {
		parts = append(parts, fmt.Sprintf("tasks=%d", n))
	}
	if n := s.items.Load(); n > 0 {
		parts = append(parts, fmt.Sprintf("items=%d", n))
	}
	if n := s.bytes.Load(); n > 0 {
		parts = append(parts, fmt.Sprintf("bytes=%d", n))
	}
	if len(parts) == 0 {
		return ""
	}
	out := " ["
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out + "]"
}
