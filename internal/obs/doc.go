// Package obs is the study pipeline's observability layer: typed
// counters, gauges, and fixed-bucket histograms collected in a
// [Registry], plus stage-scoped [Span] trees threaded through
// core.Run/RunPortal, the CKAN fetch pipeline, and the worker pool.
// It is dependency-free (stdlib only) and exports snapshots in human
// text, JSON, and the Prometheus text exposition format.
//
// # Determinism contract
//
// obs is bound by the same ogdplint determinism contract as the study
// packages (core, join, fd, ...): nothing in this package reads the
// wall clock. Two consequences shape the API:
//
//   - [Registry.Snapshot] emits metrics in sorted-name order, counter
//     values are integers, and histogram sums accumulate in integer
//     micro-units, so the rendered snapshot is byte-identical across
//     reruns and worker counts whenever the recorded values are
//     themselves deterministic (task counts, bytes, retry outcomes,
//     seeded backoff delays — never measured wall time).
//   - durations flow in from the caller. A [Span] only accumulates
//     wall time when its trace was built with [NewTimedTrace], whose
//     clock the cmd/ layer injects (the -trace flag arms time.Now);
//     the default [NewTrace] records counts and bytes only, so the
//     span tree printed by -metrics stays byte-identical too.
//
// Diagnostic telemetry that is inherently scheduling-dependent —
// per-worker task counts, queue depth ([PoolStats]), measured request
// latencies — is only recorded when the operator arms it, keeping the
// default -metrics output inside the contract.
//
// # Serving
//
// [NewDebugHandler] exposes the registry at /metrics (Prometheus text
// format) alongside the net/http/pprof profiles; the long-running
// CLIs (ogdpfetch, ogdpjoin, ogdpfd) mount it behind -debug-addr.
//
// The paper (Usta, Liu, Salihoğlu, EDBT 2024) reports per-portal,
// per-stage funnel numbers (Tables 1–2); this package is how the
// reproduction accounts for the same stages mechanically.
package obs
