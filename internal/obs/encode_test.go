package obs

import (
	"testing"
	"time"
)

// fakeClock is a deterministic clock: every reading advances it by
// step, so one BuildStart/done window spans exactly step.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.now = c.now.Add(c.step)
	return c.now
}

func TestEncodeStatsRecordsBuildsAndWaits(t *testing.T) {
	r := NewRegistry()
	clock := &fakeClock{now: time.Unix(1000, 0), step: 250 * time.Microsecond}
	s := NewEncodeStats(r, clock.Now)

	s.BuildStart("encode")(true)
	s.BuildStart("encode")(false)
	s.BuildStart("canon")(true)

	snap := r.Snapshot()
	if v, ok := snap.Value("ogdp_encode_builds_total", "kind", "encode"); !ok || v != 1 {
		t.Errorf("encode builds = %v, %v; want 1", v, ok)
	}
	if v, ok := snap.Value("ogdp_encode_builds_total", "kind", "canon"); !ok || v != 1 {
		t.Errorf("canon builds = %v, %v; want 1", v, ok)
	}
	if _, ok := snap.Value("ogdp_encode_builds_total", "kind", "profile"); ok {
		t.Error("profile builds series must not exist: none were recorded")
	}

	// One window each lands in the histogram under its outcome label;
	// the fake clock makes each window exactly 250µs, the second
	// WaitBuckets bound's bucket.
	for _, c := range []struct {
		kind, outcome string
		want          int64
	}{
		{"encode", "built", 1},
		{"encode", "waited", 1},
		{"canon", "built", 1},
	} {
		h := r.Histogram("ogdp_encode_wait_micros", "", WaitBuckets,
			"kind", c.kind, "outcome", c.outcome)
		if h.Count() != c.want {
			t.Errorf("wait histogram {kind=%s outcome=%s} count = %d, want %d",
				c.kind, c.outcome, h.Count(), c.want)
		}
		if h.Sum() != 250 {
			t.Errorf("wait histogram {kind=%s outcome=%s} sum = %v µs, want 250",
				c.kind, c.outcome, h.Sum())
		}
	}
}

func TestEncodeStatsNilSafe(t *testing.T) {
	var s *EncodeStats
	s.BuildStart("encode")(true) // must not panic
}

func TestPoolStatsLabelsSeriesByPool(t *testing.T) {
	r := NewRegistry()
	p := NewPoolStats(r)

	p.PoolStart("precompute", 10, 4)
	p.TaskDone("precompute", 0, 9)
	p.TaskDone("precompute", 1, 8)
	p.PoolStart("keys+fd", 6, 2)
	p.TaskDone("keys+fd", 0, 5)

	snap := r.Snapshot()
	if v, ok := snap.Value("ogdp_pool_batches_total", "pool", "precompute"); !ok || v != 1 {
		t.Errorf("precompute batches = %v, %v; want 1", v, ok)
	}
	if v, ok := snap.Value("ogdp_pool_batches_total", "pool", "keys+fd"); !ok || v != 1 {
		t.Errorf("keys+fd batches = %v, %v; want 1", v, ok)
	}
	if v, ok := snap.Value("ogdp_pool_queue_depth", "pool", "precompute"); !ok || v != 8 {
		t.Errorf("precompute queue depth = %v, %v; want 8 (last sample)", v, ok)
	}
	if v, ok := snap.Value("ogdp_pool_queue_depth", "pool", "keys+fd"); !ok || v != 5 {
		t.Errorf("keys+fd queue depth = %v, %v; want 5", v, ok)
	}
	if v, ok := snap.Value("ogdp_pool_tasks_total", "pool", "precompute", "worker", "00"); !ok || v != 1 {
		t.Errorf("precompute worker 00 tasks = %v, %v; want 1", v, ok)
	}
	if v, ok := snap.Value("ogdp_pool_tasks_total", "pool", "precompute", "worker", "01"); !ok || v != 1 {
		t.Errorf("precompute worker 01 tasks = %v, %v; want 1", v, ok)
	}
}
