package obs

import (
	"net/http"
	"net/http/pprof"
)

// NewDebugHandler returns an http.Handler serving the registry at
// /metrics in the Prometheus text exposition format and the standard
// runtime profiles under /debug/pprof/ (index, cmdline, profile,
// symbol, trace, plus the named pprof.Handler profiles via the
// index). The long-running CLIs mount it behind -debug-addr; it is
// deliberately not wired into http.DefaultServeMux, so importing obs
// never changes a server's surface.
func NewDebugHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
