package obs

import (
	"fmt"
	"time"
)

// FormatDuration renders d as seconds with fixed millisecond
// precision ("1.234s", "0.050s", "93.120s"). time.Duration's String
// changes unit and precision with magnitude (500ms, 1.5s, 1m3.2s);
// a single fixed spelling keeps timing lines greppable with one
// pattern and diff-stripping recipes exact.
func FormatDuration(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	ms := (d + time.Millisecond/2) / time.Millisecond
	return fmt.Sprintf("%d.%03ds", ms/1000, ms%1000)
}

// Stopwatch measures elapsed time through an injected clock. The
// zero value (no clock) always reads zero, so deterministic code can
// hold a Stopwatch without ever touching wall time; the cmd/ layer
// constructs real ones with time.Now.
type Stopwatch struct {
	now   func() time.Time
	start time.Time
}

// NewStopwatch starts a stopwatch on the given clock; a nil clock
// yields the inert zero value.
func NewStopwatch(now func() time.Time) Stopwatch {
	if now == nil {
		return Stopwatch{}
	}
	return Stopwatch{now: now, start: now()}
}

// Elapsed returns the time since the stopwatch started, rounded to
// the millisecond; zero when no clock was injected.
func (s Stopwatch) Elapsed() time.Duration {
	if s.now == nil {
		return 0
	}
	return s.now().Sub(s.start).Round(time.Millisecond)
}

// String renders the elapsed time in the fixed FormatDuration form.
func (s Stopwatch) String() string { return FormatDuration(s.Elapsed()) }
