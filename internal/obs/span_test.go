package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteTreeGolden renders a representative trace — the shape the
// study pipeline produces — against a checked-in golden file. Update
// with: go test ./internal/obs -run WriteTreeGolden -update
func TestWriteTreeGolden(t *testing.T) {
	root := NewTrace("study")
	sg := root.Child("portal:SG")
	sg.AddTasks(56)
	sg.AddBytes(1203441)
	prof := sg.Child("profile")
	prof.AddTasks(56)
	prof.AddItems(212)
	funnel := prof.Child("funnel")
	funnel.AddTasks(3)
	keys := sg.Child("keys+fd")
	keys.AddTasks(41)
	keys.AddItems(77)
	ca := root.Child("portal:CA")
	ca.AddTasks(131)
	ca.Child("profile").AddItems(504)
	join := ca.Child("join")
	join.AddTasks(131)
	empty := root.Child("portal:UK")
	_ = empty // a span with no attributes renders bare

	var b strings.Builder
	root.WriteTree(&b)
	got := b.String()

	golden := filepath.Join("testdata", "span_tree.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("tree mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSpanCountersConcurrent checks that counter updates from many
// goroutines accumulate exactly: spans only require single-goroutine
// child creation, not single-goroutine counting.
func TestSpanCountersConcurrent(t *testing.T) {
	s := NewTrace("root").Child("stage")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.AddTasks(1)
				s.AddItems(2)
				s.AddBytes(3)
			}
		}()
	}
	wg.Wait()
	var b strings.Builder
	s.WriteTree(&b)
	want := "stage [tasks=8000 items=16000 bytes=24000]\n"
	if b.String() != want {
		t.Errorf("tree = %q, want %q", b.String(), want)
	}
}

// TestTimedTrace checks that a clock-carrying trace records wall time
// on End and renders it — and that an unclocked trace never does, even
// when AddDuration is not used.
func TestTimedTrace(t *testing.T) {
	tick := time.Unix(1000, 0)
	clock := func() time.Time {
		tick = tick.Add(250 * time.Millisecond)
		return tick
	}
	root := NewTimedTrace("run", clock)
	c := root.Child("stage")
	c.End() // one tick between Child and End: 250ms
	if !c.Timed() {
		t.Fatal("child of a timed trace must be timed")
	}
	var b strings.Builder
	c.WriteTree(&b)
	if want := "stage [wall=0.250s]\n"; b.String() != want {
		t.Errorf("timed tree = %q, want %q", b.String(), want)
	}

	plain := NewTrace("run").Child("stage")
	plain.End()
	plain.AddTasks(1)
	b.Reset()
	plain.WriteTree(&b)
	if want := "stage [tasks=1]\n"; b.String() != want {
		t.Errorf("deterministic tree = %q, want %q", b.String(), want)
	}
}

// TestAddDuration checks that externally measured durations flow into
// unclocked spans — the contract that lets deterministic code attribute
// time handed to it without ever reading a clock.
func TestAddDuration(t *testing.T) {
	s := NewTrace("root").Child("io")
	s.AddDuration(1200 * time.Millisecond)
	s.AddDuration(34 * time.Millisecond)
	s.AddDuration(-time.Second) // ignored
	var b strings.Builder
	s.WriteTree(&b)
	if want := "io [wall=1.234s]\n"; b.String() != want {
		t.Errorf("tree = %q, want %q", b.String(), want)
	}
}
