package union

import (
	"fmt"
	"strconv"
	"testing"

	"ogdp/internal/table"
)

func TestFindFuzzyRenamedColumns(t *testing.T) {
	a := table.FromRows("a.csv", []string{"year", "province", "housing_starts"}, [][]string{
		{"2020", "ON", "120"}, {"2021", "QC", "90"},
	})
	b := table.FromRows("b.csv", []string{"Year", "prov", "housing starts"}, [][]string{
		{"2018", "BC", "70"}, {"2019", "AB", "88"},
	})
	pairs := FindFuzzy([]*table.Table{a, b}, FuzzyOptions{})
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	fp := pairs[0]
	if len(fp.Matches) != 3 {
		t.Errorf("matches = %d, want 3: %+v", len(fp.Matches), fp.Matches)
	}
	if fp.Score <= 0.5 {
		t.Errorf("score = %g", fp.Score)
	}
}

func TestFindFuzzyReorderedColumns(t *testing.T) {
	// Exact identity (Find) requires order; fuzzy matching must not.
	a := table.FromRows("a.csv", []string{"year", "value"}, [][]string{{"2020", "1.5"}})
	b := table.FromRows("b.csv", []string{"value", "year"}, [][]string{{"2.5", "2021"}})
	if got := Find([]*table.Table{a, b}); len(got.Groups) != 0 {
		t.Fatal("exact identity should not match reordered schemas")
	}
	pairs := FindFuzzy([]*table.Table{a, b}, FuzzyOptions{})
	if len(pairs) != 1 || len(pairs[0].Matches) != 2 {
		t.Errorf("fuzzy should match reordered schemas: %+v", pairs)
	}
}

func TestFindFuzzyRejectsDifferentSchemas(t *testing.T) {
	a := table.FromRows("a.csv", []string{"year", "province", "starts"}, [][]string{{"2020", "ON", "12"}})
	b := table.FromRows("b.csv", []string{"year", "species", "weight", "vessel"}, [][]string{{"2020", "Cod", "30", "V1"}})
	// They share "year" (blocking passes) but only 1-2 of 4 columns can
	// match.
	pairs := FindFuzzy([]*table.Table{a, b}, FuzzyOptions{})
	if len(pairs) != 0 {
		t.Errorf("dissimilar schemas matched: %+v", pairs)
	}
}

func TestFindFuzzyTypeCompatibility(t *testing.T) {
	// Same names, incompatible broad types: no match.
	a := table.FromRows("a.csv", []string{"year", "value"}, [][]string{{"2020", "1.5"}, {"2021", "2.0"}})
	b := table.FromRows("b.csv", []string{"year", "value"}, [][]string{{"2020", "high"}, {"2021", "low"}})
	pairs := FindFuzzy([]*table.Table{a, b}, FuzzyOptions{})
	if len(pairs) != 0 {
		t.Errorf("type-incompatible schemas matched: %+v", pairs)
	}
}

func TestFindFuzzyIncludesExactPairs(t *testing.T) {
	a := table.FromRows("a.csv", []string{"year", "value"}, [][]string{{"2020", "1.5"}})
	b := table.FromRows("b.csv", []string{"year", "value"}, [][]string{{"2021", "2.5"}})
	pairs := FindFuzzy([]*table.Table{a, b}, FuzzyOptions{})
	if len(pairs) != 1 || pairs[0].Score != 1 {
		t.Errorf("exact pair = %+v", pairs)
	}
}

func TestFindFuzzyWidthBlocking(t *testing.T) {
	narrow := table.FromRows("n.csv", []string{"year"}, [][]string{{"2020"}})
	wide := table.FromRows("w.csv", []string{"year", "a", "b", "c", "d", "e"}, [][]string{{"2020", "1", "2", "3", "4", "5"}})
	pairs := FindFuzzy([]*table.Table{narrow, wide}, FuzzyOptions{})
	if len(pairs) != 0 {
		t.Errorf("width-incompatible pair matched: %+v", pairs)
	}
}

func TestNameSimilarity(t *testing.T) {
	cases := []struct {
		a, b string
		lo   float64
	}{
		{"province", "province", 1},
		{"Province", "province", 1},
		{"housing_starts", "housing starts", 1},
		{"prov", "province", 0.4},
		{"fund_code", "fund code", 1},
	}
	for _, c := range cases {
		if got := nameSimilarity(c.a, c.b); got < c.lo {
			t.Errorf("nameSimilarity(%q, %q) = %g, want >= %g", c.a, c.b, got, c.lo)
		}
	}
	if got := nameSimilarity("species", "amount"); got > 0.2 {
		t.Errorf("unrelated names score %g", got)
	}
}

func TestFindFuzzyGainOverExact(t *testing.T) {
	// A periodic series whose publisher renamed a column one year: the
	// exact metric splits the series, fuzzy matching keeps it together.
	var tables []*table.Table
	for y := 0; y < 4; y++ {
		cols := []string{"year", "council", "amount"}
		if y == 3 {
			cols = []string{"Year", "council_name", "amount"}
		}
		tb := table.New(fmt.Sprintf("spend-%d.csv", 2018+y), cols)
		for r := 0; r < 12; r++ {
			tb.AppendRow([]string{strconv.Itoa(2018 + y), fmt.Sprintf("Council %d", r), strconv.Itoa(100 + r)})
		}
		tables = append(tables, tb)
	}
	exact := Find(tables)
	if exact.UnionableTables() != 3 {
		t.Fatalf("exact unionable = %d, want 3 (renamed year split off)", exact.UnionableTables())
	}
	fuzzy := FindFuzzy(tables, FuzzyOptions{})
	inFuzzy := map[int]bool{}
	for _, p := range fuzzy {
		inFuzzy[p.T1] = true
		inFuzzy[p.T2] = true
	}
	if len(inFuzzy) != 4 {
		t.Errorf("fuzzy matching should recover all 4 tables, got %d", len(inFuzzy))
	}
}

func BenchmarkFindFuzzy(b *testing.B) {
	var tables []*table.Table
	for i := 0; i < 150; i++ {
		cols := []string{"year", "council", "amount"}
		if i%3 == 0 {
			cols = []string{"Year", "council name", "amount_total"}
		}
		tb := table.New(fmt.Sprintf("t%d.csv", i), cols)
		for r := 0; r < 30; r++ {
			tb.AppendRow([]string{strconv.Itoa(2000 + r%20), fmt.Sprintf("C%d", r), strconv.Itoa(r * 7)})
		}
		tables = append(tables, tb)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindFuzzy(tables, FuzzyOptions{})
	}
}
