package union

import (
	"fmt"
	"strconv"
	"testing"

	"ogdp/internal/table"
)

func yearValueTable(name, dataset string, startYear int) *table.Table {
	t := table.New(name, []string{"year", "value"})
	t.DatasetID = dataset
	for i := 0; i < 5; i++ {
		t.AppendRow([]string{strconv.Itoa(startYear + i), fmt.Sprintf("%d.5", i)})
	}
	return t
}

func TestFindGroups(t *testing.T) {
	corpus := []*table.Table{
		yearValueTable("a-2010.csv", "ds1", 2010),
		yearValueTable("a-2015.csv", "ds1", 2015),
		yearValueTable("b.csv", "ds2", 1990),
		table.FromRows("other.csv", []string{"id", "name"}, [][]string{{"1", "x"}}),
	}
	a := Find(corpus)
	if len(a.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(a.Groups))
	}
	g := a.Groups[0]
	if len(g.Tables) != 3 {
		t.Errorf("group size = %d, want 3", len(g.Tables))
	}
	if g.Datasets != 2 || g.SingleDataset() {
		t.Errorf("datasets = %d", g.Datasets)
	}
	if a.UniqueSchemas != 2 {
		t.Errorf("unique schemas = %d, want 2", a.UniqueSchemas)
	}
	if a.UnionableTables() != 3 {
		t.Errorf("unionable tables = %d", a.UnionableTables())
	}
}

func TestTypeMattersForSchema(t *testing.T) {
	// Same column names, different broad types: not unionable.
	num := table.FromRows("n.csv", []string{"year", "value"}, [][]string{
		{"2020", "1.5"}, {"2021", "2.5"},
	})
	txt := table.FromRows("t.csv", []string{"year", "value"}, [][]string{
		{"2020", "high"}, {"2021", "low"},
	})
	a := Find([]*table.Table{num, txt})
	if len(a.Groups) != 0 {
		t.Errorf("different-typed schemas grouped: %v", a.Groups)
	}
}

func TestDegrees(t *testing.T) {
	corpus := []*table.Table{
		yearValueTable("a.csv", "d", 2010),
		yearValueTable("b.csv", "d", 2011),
		yearValueTable("c.csv", "d", 2012),
	}
	a := Find(corpus)
	degs := a.Degrees()
	if len(degs) != 3 {
		t.Fatalf("degrees = %v", degs)
	}
	for _, d := range degs {
		if d != 2 {
			t.Errorf("degree = %d, want 2", d)
		}
	}
	if a.SingleDatasetGroups() != 1 {
		t.Errorf("single-dataset groups = %d", a.SingleDatasetGroups())
	}
}

func TestUnionConcatenates(t *testing.T) {
	corpus := []*table.Table{
		yearValueTable("a.csv", "d", 2010),
		yearValueTable("b.csv", "d", 2015),
	}
	a := Find(corpus)
	u := a.Union(a.Groups[0])
	if u.NumRows() != 10 || u.NumCols() != 2 {
		t.Errorf("union shape = %d×%d", u.NumCols(), u.NumRows())
	}
	if u.Data[0][0] != "2010" || u.Data[0][5] != "2015" {
		t.Errorf("union order wrong: %v", u.Data[0])
	}
	if got := a.Union(Group{}); got.NumRows() != 0 {
		t.Error("empty group union should be empty")
	}
}

func TestEmptyTablesIgnored(t *testing.T) {
	corpus := []*table.Table{
		table.New("empty1.csv", nil),
		table.New("empty2.csv", nil),
	}
	a := Find(corpus)
	if len(a.Groups) != 0 || a.UniqueSchemas != 0 {
		t.Errorf("no-column tables must be skipped: %+v", a)
	}
}

func TestGroupsSortedBySize(t *testing.T) {
	var corpus []*table.Table
	// 2-member group of schema A; 4-member group of schema B.
	for i := 0; i < 2; i++ {
		corpus = append(corpus, table.FromRows(fmt.Sprintf("a%d", i), []string{"x"}, [][]string{{"foo"}}))
	}
	for i := 0; i < 4; i++ {
		corpus = append(corpus, yearValueTable(fmt.Sprintf("b%d", i), "d", 2000+i))
	}
	a := Find(corpus)
	if len(a.Groups) != 2 || len(a.Groups[0].Tables) != 4 {
		t.Errorf("groups not sorted by size: %v", a.Groups)
	}
}

func BenchmarkFind(b *testing.B) {
	var corpus []*table.Table
	for i := 0; i < 500; i++ {
		corpus = append(corpus, yearValueTable(fmt.Sprintf("t%d", i), fmt.Sprintf("ds%d", i%100), 2000+i%20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Find(corpus)
	}
}
