package union

import (
	"sort"
	"strings"

	"ogdp/internal/stats"
	"ogdp/internal/table"
)

// FuzzyOptions tunes FindFuzzy.
type FuzzyOptions struct {
	// MinColumnScore is the minimum name-similarity for two columns to
	// be considered a match (q-gram Jaccard; 1.0 = identical names).
	// Defaults to 0.55.
	MinColumnScore float64
	// MinMatchedFrac is the fraction of the wider schema that must be
	// matched. Defaults to 0.8.
	MinMatchedFrac float64
}

func (o FuzzyOptions) withDefaults() FuzzyOptions {
	if stats.ApproxEq(o.MinColumnScore, 0) {
		o.MinColumnScore = 0.55
	}
	if stats.ApproxEq(o.MinMatchedFrac, 0) {
		o.MinMatchedFrac = 0.8
	}
	return o
}

// ColumnMatch aligns a column of T1 with a column of T2.
type ColumnMatch struct {
	C1, C2 int
	Score  float64
}

// FuzzyPair is a pair of tables unionable under approximate schema
// matching: column names may differ in spelling or order, but most
// columns align by q-gram name similarity with compatible broad types.
// This implements the relaxed unionability of the systems the paper
// cites ([7], [26]) — the paper itself uses exact schema identity
// (Find), and contrasting the two shows what the relaxation buys.
type FuzzyPair struct {
	T1, T2  int
	Matches []ColumnMatch
	// Score is the mean matched-column similarity.
	Score float64
}

// FindFuzzy reports table pairs whose schemas align approximately.
// Exact-identity pairs (already reported by Find) are included too;
// callers can subtract them to see the relaxation's net gain.
func FindFuzzy(tables []*table.Table, opts FuzzyOptions) []FuzzyPair {
	opts = opts.withDefaults()

	// Blocking: candidate pairs must share at least one exact
	// normalized column name and have compatible widths.
	byName := map[string][]int{}
	for ti, t := range tables {
		seen := map[string]bool{}
		for _, c := range t.Cols {
			n := normalizeName(c)
			if n == "" || seen[n] {
				continue
			}
			seen[n] = true
			byName[n] = append(byName[n], ti)
		}
	}
	cand := map[[2]int]bool{}
	for _, ids := range byName {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				na, nb := tables[a].NumCols(), tables[b].NumCols()
				if na == 0 || nb == 0 {
					continue
				}
				if 5*min(na, nb) < 4*max(na, nb) { // width ratio < 0.8
					continue
				}
				cand[[2]int{a, b}] = true
			}
		}
	}

	var out []FuzzyPair
	for pair := range cand {
		if fp, ok := matchSchemas(tables[pair[0]], tables[pair[1]], opts); ok {
			fp.T1, fp.T2 = pair[0], pair[1]
			out = append(out, fp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T1 != out[j].T1 {
			return out[i].T1 < out[j].T1
		}
		return out[i].T2 < out[j].T2
	})
	return out
}

// matchSchemas greedily aligns columns by name similarity, requiring
// compatible broad types.
func matchSchemas(a, b *table.Table, opts FuzzyOptions) (FuzzyPair, bool) {
	type cell struct {
		c1, c2 int
		score  float64
	}
	var cells []cell
	for i := range a.Cols {
		for j := range b.Cols {
			if a.Profile(i).Type.BroadClass() != b.Profile(j).Type.BroadClass() {
				continue
			}
			s := nameSimilarity(a.Cols[i], b.Cols[j])
			if s >= opts.MinColumnScore {
				cells = append(cells, cell{i, j, s})
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].score > cells[j].score {
			return true
		}
		if cells[i].score < cells[j].score {
			return false
		}
		if cells[i].c1 != cells[j].c1 {
			return cells[i].c1 < cells[j].c1
		}
		return cells[i].c2 < cells[j].c2
	})
	used1 := map[int]bool{}
	used2 := map[int]bool{}
	var fp FuzzyPair
	var sum float64
	for _, c := range cells {
		if used1[c.c1] || used2[c.c2] {
			continue
		}
		used1[c.c1] = true
		used2[c.c2] = true
		fp.Matches = append(fp.Matches, ColumnMatch{C1: c.c1, C2: c.c2, Score: c.score})
		sum += c.score
	}
	wider := max(a.NumCols(), b.NumCols())
	if wider == 0 || float64(len(fp.Matches)) < opts.MinMatchedFrac*float64(wider) {
		return fp, false
	}
	fp.Score = sum / float64(len(fp.Matches))
	return fp, true
}

// nameSimilarity is the Jaccard similarity of 3-gram sets of the
// normalized names, with fast paths for equality and containment.
func nameSimilarity(a, b string) float64 {
	na, nb := normalizeName(a), normalizeName(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	// Containment (prov vs province): a strong signal on its own, so
	// score well above the bare length ratio.
	if strings.HasPrefix(na, nb) || strings.HasPrefix(nb, na) {
		shorter, longer := na, nb
		if len(shorter) > len(longer) {
			shorter, longer = longer, shorter
		}
		if len(shorter) >= 3 {
			return 0.5 + 0.5*float64(len(shorter))/float64(len(longer))
		}
	}
	ga, gb := qgrams(na), qgrams(nb)
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range ga {
		if _, ok := gb[g]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(ga)+len(gb)-inter)
}

func normalizeName(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func qgrams(s string) map[string]struct{} {
	out := map[string]struct{}{}
	if len(s) < 3 {
		out[s] = struct{}{}
		return out
	}
	for i := 0; i+3 <= len(s); i++ {
		out[s[i:i+3]] = struct{}{}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
