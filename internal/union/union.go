// Package union finds unionable tables the way the paper does (§6):
// two tables are unionable when their schemas — column names and data
// types, in order — are exactly the same. The analysis groups tables
// by schema identity and reports the statistics of Table 11: how many
// tables are unionable, the degree (set size) distribution, how many
// distinct schemas exist, how many are shared, and whether a shared
// schema's tables all live in one dataset.
package union

import (
	"sort"

	"ogdp/internal/table"
)

// Group is one set of mutually unionable tables (≥ 2 members).
type Group struct {
	// SchemaKey is the canonical schema identity.
	SchemaKey string
	// Tables are indices into the analyzed corpus.
	Tables []int
	// Datasets is the number of distinct datasets the members are
	// published under.
	Datasets int
}

// SingleDataset reports whether every member of the group is published
// under the same dataset.
func (g *Group) SingleDataset() bool { return g.Datasets == 1 }

// Analysis is the result of the unionability study over a corpus.
type Analysis struct {
	// Tables is the analyzed corpus.
	Tables []*table.Table
	// Groups are the unionable sets, largest first.
	Groups []Group
	// UniqueSchemas is the number of distinct schemas in the corpus.
	UniqueSchemas int
}

// Find groups the corpus by exact schema identity.
func Find(tables []*table.Table) *Analysis {
	a := &Analysis{Tables: tables}
	bySchema := make(map[string][]int)
	for i, t := range tables {
		if t.NumCols() == 0 {
			continue
		}
		key := t.SchemaKey()
		bySchema[key] = append(bySchema[key], i)
	}
	a.UniqueSchemas = len(bySchema)
	for key, members := range bySchema {
		if len(members) < 2 {
			continue
		}
		datasets := make(map[string]struct{})
		for _, ti := range members {
			datasets[tables[ti].DatasetID] = struct{}{}
		}
		sort.Ints(members)
		a.Groups = append(a.Groups, Group{
			SchemaKey: key,
			Tables:    members,
			Datasets:  len(datasets),
		})
	}
	sort.Slice(a.Groups, func(i, j int) bool {
		if len(a.Groups[i].Tables) != len(a.Groups[j].Tables) {
			return len(a.Groups[i].Tables) > len(a.Groups[j].Tables)
		}
		return a.Groups[i].SchemaKey < a.Groups[j].SchemaKey
	})
	return a
}

// UnionableTables returns the number of tables that belong to some
// unionable group.
func (a *Analysis) UnionableTables() int {
	n := 0
	for _, g := range a.Groups {
		n += len(g.Tables)
	}
	return n
}

// Degrees returns, for every unionable table, the number of other
// tables it unions with (group size − 1).
func (a *Analysis) Degrees() []int {
	var out []int
	for _, g := range a.Groups {
		for range g.Tables {
			out = append(out, len(g.Tables)-1)
		}
	}
	return out
}

// SingleDatasetGroups counts unionable groups confined to one dataset.
func (a *Analysis) SingleDatasetGroups() int {
	n := 0
	for _, g := range a.Groups {
		if g.SingleDataset() {
			n++
		}
	}
	return n
}

// Union concatenates the rows of the group's member tables into one
// table (the union-all of the set). All members must share the schema;
// the first member supplies the column names.
func (a *Analysis) Union(g Group) *table.Table {
	if len(g.Tables) == 0 {
		return table.New("union", nil)
	}
	first := a.Tables[g.Tables[0]]
	out := table.New("union", first.Cols)
	for _, ti := range g.Tables {
		out.AppendTable(a.Tables[ti])
	}
	return out
}
