package query

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ogdp/internal/diskcorpus"
)

// fixtureDir writes a small corpus with known joinable, unionable,
// and FD structure.
func fixtureDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	var species strings.Builder
	species.WriteString("species_id,species,region,climate\n")
	var landings strings.Builder
	landings.WriteString("code,species,tonnage\n")
	climates := []string{"temperate", "arctic", "tropical"}
	for i := 0; i < 20; i++ {
		// climate is a function of region (and region is no key), so
		// region -> climate is a minimal non-trivial FD.
		fmt.Fprintf(&species, "S%02d,name-%02d,region-%d,%s\n", i, i, i%3, climates[i%3])
		// 15 of the 20 species values overlap.
		if i < 15 {
			fmt.Fprintf(&landings, "C%02d,name-%02d,%d\n", i, i, 10*i)
		} else {
			fmt.Fprintf(&landings, "C%02d,other-%02d,%d\n", i, i, 10*i)
		}
	}
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("species.csv", species.String())
	write("landings.csv", landings.String())
	// Two tables with the identical schema: a unionable pair.
	write("parts-2019.csv", "city,country,count\na,AA,1\nb,BB,2\nc,AA,3\n")
	write("parts-2020.csv", "city,country,count\nd,AA,4\ne,BB,5\nf,CC,6\n")
	return dir
}

func serviceFromDir(t *testing.T, dir string, workers int) *Service {
	t.Helper()
	c, err := diskcorpus.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Skips) > 0 {
		t.Fatalf("fixture skips: %v", c.Skips)
	}
	return New(c, Options{Workers: workers})
}

func fixtureService(t *testing.T, workers int) *Service {
	t.Helper()
	return serviceFromDir(t, fixtureDir(t), workers)
}

func TestDoJoin(t *testing.T) {
	s := fixtureService(t, 0)
	got, err := s.Do(context.Background(), Request{Kind: KindJoin, Table: "landings.csv", Col: "species"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got, "query: landings.csv.species (20 distinct values)\n\ntop-5 joinable columns") {
		t.Errorf("join output header wrong:\n%s", got)
	}
	if !strings.Contains(got, "species.csv.species") || !strings.Contains(got, "overlap=15") {
		t.Errorf("join output misses the planted overlap:\n%s", got)
	}
	// The body is exactly what the renderers compose — the contract
	// that keeps the server and the one-shot CLI byte-identical.
	ti := s.TableIndex("landings.csv")
	ci, err := s.PickColumn(ti, "species")
	if err != nil {
		t.Fatal(err)
	}
	if want := s.HeaderText(ti, ci) + "\n" + s.JoinText(ti, ci, DefaultK); got != want {
		t.Errorf("Do(join) != HeaderText+JoinText:\n%q\n%q", got, want)
	}
}

func TestDoUnion(t *testing.T) {
	s := fixtureService(t, 0)
	got, err := s.Do(context.Background(), Request{Kind: KindUnion, Table: "parts-2019.csv"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "parts-2020.csv") {
		t.Errorf("union misses the schema twin:\n%s", got)
	}
	// A table with a unique schema has no candidates.
	got, err = s.Do(context.Background(), Request{Kind: KindUnion, Table: "species.csv"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "  none\n") {
		t.Errorf("union of unique schema should say none:\n%s", got)
	}
}

func TestDoProfile(t *testing.T) {
	s := fixtureService(t, 0)
	got, err := s.Do(context.Background(), Request{Kind: KindProfile, Table: "species.csv"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"table: species.csv (20 rows × 4 columns)",
		"[0] species_id",
		"single-column keys: species_id, species",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("profile output misses %q:\n%s", want, got)
		}
	}
}

func TestDoFD(t *testing.T) {
	s := fixtureService(t, 0)
	got, err := s.Do(context.Background(), Request{Kind: KindFD, Table: "species.csv"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "functional dependencies of species.csv (max LHS 4):") {
		t.Errorf("fd header wrong:\n%s", got)
	}
	if !strings.Contains(got, "region -> climate") {
		t.Errorf("fd output misses region -> climate:\n%s", got)
	}
}

func TestDoErrors(t *testing.T) {
	s := fixtureService(t, 0)
	ctx := context.Background()
	if _, err := s.Do(ctx, Request{Kind: KindJoin, Table: "nope.csv"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown table: err = %v, want ErrNotFound", err)
	}
	if _, err := s.Do(ctx, Request{Kind: "drop", Table: "species.csv"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown kind: err = %v, want ErrBadRequest", err)
	}
	if _, err := s.Do(ctx, Request{Kind: KindJoin, Table: "species.csv", Col: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown column: err = %v, want ErrBadRequest", err)
	}
	// parts-2019.csv has 3 rows: no column reaches the 10-distinct
	// join-eligibility bar.
	if _, err := s.Do(ctx, Request{Kind: KindJoin, Table: "parts-2019.csv"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("no eligible column: err = %v, want ErrBadRequest", err)
	}
}

func TestRequestKeyCanonical(t *testing.T) {
	a := Request{Kind: "JOIN", Table: " landings.csv ", Col: "species", K: 0, MaxLHS: 3}
	b := Request{Kind: "join", Table: "landings.csv", Col: "species", K: 5}
	if a.Key() != b.Key() {
		t.Errorf("equivalent join spellings differ: %q vs %q", a.Key(), b.Key())
	}
	// Fields a kind ignores must not split the cache.
	p1 := Request{Kind: KindProfile, Table: "t.csv", Col: "x", K: 9, MaxLHS: 2}
	p2 := Request{Kind: KindProfile, Table: "t.csv"}
	if p1.Key() != p2.Key() {
		t.Errorf("profile keys differ on ignored fields: %q vs %q", p1.Key(), p2.Key())
	}
	// Different questions must not collide.
	if (Request{Kind: KindJoin, Table: "t.csv"}).Key() == (Request{Kind: KindUnion, Table: "t.csv"}).Key() {
		t.Error("join and union share a key")
	}
}

func TestHashStableAndContentSensitive(t *testing.T) {
	dir := fixtureDir(t)
	load := func(d string) *Service {
		c, err := diskcorpus.Load(d)
		if err != nil {
			t.Fatal(err)
		}
		return New(c, Options{})
	}
	s1, s2 := load(dir), load(dir)
	if s1.Hash() != s2.Hash() {
		t.Errorf("same corpus hashes differ: %016x vs %016x", s1.Hash(), s2.Hash())
	}
	if s1.HashString() != fmt.Sprintf("%016x", s1.Hash()) {
		t.Errorf("HashString = %q", s1.HashString())
	}
	// Corpus directories load with the directory base name as portal
	// id, so compare content sensitivity within one directory: change
	// one cell and reload.
	if err := os.WriteFile(filepath.Join(dir, "parts-2019.csv"),
		[]byte("city,country,count\na,AA,1\nb,BB,2\nc,ZZ,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if load(dir).Hash() == s1.Hash() {
		t.Error("hash unchanged after a cell edit")
	}
}

// TestWorkerCountInvariance pins the determinism contract at the
// query surface: every response is byte-identical at Workers=1 and
// Workers=8, concurrent or not.
func TestWorkerCountInvariance(t *testing.T) {
	dir := fixtureDir(t)
	s1 := serviceFromDir(t, dir, 1)
	s8 := serviceFromDir(t, dir, 8)
	reqs := []Request{
		{Kind: KindJoin, Table: "landings.csv", Col: "species"},
		{Kind: KindUnion, Table: "parts-2019.csv"},
		{Kind: KindProfile, Table: "species.csv"},
		{Kind: KindFD, Table: "species.csv"},
		{Kind: KindRank, Table: "landings.csv"},
		{Kind: KindRank, Table: "parts-2019.csv"},
	}
	if s1.Hash() != s8.Hash() {
		t.Errorf("hash differs across worker counts")
	}
	var wg sync.WaitGroup
	for _, req := range reqs {
		a, err := s1.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		// Fire the same query at the 8-worker service from several
		// goroutines at once; all must match the sequential answer.
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(req Request, want string) {
				defer wg.Done()
				got, err := s8.Do(context.Background(), req)
				if err != nil {
					t.Errorf("%s: %v", req.Key(), err)
					return
				}
				if got != want {
					t.Errorf("%s: workers-8 response differs from workers-1", req.Key())
				}
			}(req, a)
		}
	}
	wg.Wait()
}

func TestTablesListing(t *testing.T) {
	s := fixtureService(t, 0)
	infos := s.Tables()
	if len(infos) != 4 || s.NumTables() != 4 {
		t.Fatalf("tables = %d", len(infos))
	}
	if infos[0].Name != "landings.csv" || infos[0].Rows != 20 || len(infos[0].Cols) != 3 {
		t.Errorf("first table info = %+v", infos[0])
	}
	if s.NumIndexed() == 0 {
		t.Error("no columns indexed")
	}
	if s.TableIndex("landings.csv") != 0 || s.TableIndex("nope") != -1 {
		t.Error("TableIndex lookup wrong")
	}
}

func TestCanceledContext(t *testing.T) {
	s := fixtureService(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Do(ctx, Request{Kind: KindProfile, Table: "species.csv"}); err == nil {
		t.Error("profile under a canceled context should fail")
	}
}
