package query

import (
	"context"
	"fmt"

	"ogdp/internal/corpus"
	"ogdp/internal/parallel"
	"ogdp/internal/search"
	"ogdp/internal/table"
	"ogdp/internal/union"
)

// Delta is an incremental corpus change: a set of added, updated, and
// deleted tables observed between two corpus snapshots. Names are the
// table file names (the corpus's identity key); a name may appear in at
// most one of the three lists.
type Delta struct {
	// Added are tables new to the corpus.
	Added []corpus.TableMeta
	// Updated are revisions of existing tables, matched by Table.Name.
	Updated []corpus.TableMeta
	// Deleted names the tables removed from the corpus.
	Deleted []string
	// Datasets are dataset records referenced by added or updated
	// tables that the corpus had not seen before (their categories feed
	// the ranked-search metadata signal).
	Datasets []corpus.Dataset
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Updated) == 0 && len(d.Deleted) == 0
}

// Counts renders the delta size as "a added, u updated, d deleted".
func (d Delta) Counts() string {
	return fmt.Sprintf("%d added, %d updated, %d deleted", len(d.Added), len(d.Updated), len(d.Deleted))
}

// validate rejects a delta naming tables inconsistently with the
// current corpus before any state is touched, so a failed ApplyDelta
// leaves the service unchanged.
func (s *Service) validateDelta(d Delta) error {
	seen := make(map[string]string, len(d.Added)+len(d.Updated)+len(d.Deleted))
	note := func(name, op string) error {
		if name == "" {
			return fmt.Errorf("%w: delta %s entry with empty table name", ErrBadRequest, op)
		}
		if prev, dup := seen[name]; dup {
			return fmt.Errorf("%w: table %q appears twice in the delta (%s and %s)", ErrBadRequest, name, prev, op)
		}
		seen[name] = op
		return nil
	}
	for _, name := range d.Deleted {
		if err := note(name, "delete"); err != nil {
			return err
		}
		if _, ok := s.byName[name]; !ok {
			return fmt.Errorf("%w: delete %q: not in corpus", ErrBadRequest, name)
		}
	}
	for _, m := range d.Updated {
		if err := note(m.Table.Name, "update"); err != nil {
			return err
		}
		if _, ok := s.byName[m.Table.Name]; !ok {
			return fmt.Errorf("%w: update %q: not in corpus", ErrBadRequest, m.Table.Name)
		}
	}
	for _, m := range d.Added {
		if err := note(m.Table.Name, "add"); err != nil {
			return err
		}
		if _, ok := s.byName[m.Table.Name]; ok {
			return fmt.Errorf("%w: add %q: already in corpus (use an update)", ErrBadRequest, m.Table.Name)
		}
	}
	return nil
}

// ApplyDelta patches the service in place: deleted tables leave the
// search index, updated and added tables are profiled and indexed, and
// the corpus content hash is XOR-patched table by table — work is
// proportional to the changed tables, never the corpus. The patched
// hash equals the hash a from-scratch Service over the patched corpus
// computes, so every result cache keyed on (hash, request) invalidates
// exactly when answers can change.
//
// ApplyDelta is a maintenance-window operation: it must not run
// concurrently with Do or any other Service method. It validates the
// whole delta up front and returns ErrBadRequest-wrapped errors
// without touching state when the delta is inconsistent with the
// current corpus.
func (s *Service) ApplyDelta(d Delta) error {
	if err := s.validateDelta(d); err != nil {
		return err
	}
	// Profile the incoming revisions up front (parallel, like New):
	// indexing and hashing below read the published profiles lock-free.
	incoming := make([]*table.Table, 0, len(d.Added)+len(d.Updated))
	for _, m := range d.Updated {
		incoming = append(incoming, m.Table)
	}
	for _, m := range d.Added {
		incoming = append(incoming, m.Table)
	}
	parallel.Must(parallel.ForEach(parallel.WithPool(context.Background(), "query-delta-profile"),
		len(incoming), s.workers, func(i int) {
			incoming[i].Profiles()
		}))
	for _, ds := range d.Datasets {
		s.cats[ds.ID] = ds.Category
	}

	for _, name := range d.Deleted {
		ti := s.byName[name]
		s.hash ^= tableTermOf(s.tables[ti])
		s.eng.RemoveTable(ti)
		s.tables[ti] = table.New(name, nil)
		delete(s.byName, name)
	}
	for _, m := range d.Updated {
		ti := s.byName[m.Table.Name]
		s.hash ^= tableTermOf(s.tables[ti])
		s.eng.UpdateTable(ti, m.Table, s.deltaMeta(m))
		s.tables[ti] = m.Table
		s.hash ^= tableTermOf(m.Table)
	}
	for _, m := range d.Added {
		ti := s.eng.AddTable(m.Table, s.deltaMeta(m))
		s.tables = append(s.tables, m.Table)
		s.byName[m.Table.Name] = ti
		s.hash ^= tableTermOf(m.Table)
	}
	// Union grouping runs over schema keys only — cheap enough to
	// rebuild outright rather than patch.
	s.ua = union.Find(s.tables)
	return nil
}

// deltaMeta projects one incoming table's corpus metadata into the
// search engine's per-table signal, resolving the dataset category
// through the service's dataset map.
func (s *Service) deltaMeta(m corpus.TableMeta) search.TableMeta {
	return search.TableMeta{DatasetID: m.DatasetID, Category: s.cats[m.DatasetID]}
}
