package query

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"ogdp/internal/corpus"
	"ogdp/internal/fd"
	"ogdp/internal/keys"
	"ogdp/internal/obs"
	"ogdp/internal/parallel"
	"ogdp/internal/rank"
	"ogdp/internal/search"
	"ogdp/internal/table"
	"ogdp/internal/union"
)

// Error sentinels the HTTP layer maps to status codes.
var (
	// ErrNotFound marks a query naming a table the corpus lacks.
	ErrNotFound = errors.New("not found")
	// ErrBadRequest marks a malformed query (unknown kind, missing or
	// ineligible column).
	ErrBadRequest = errors.New("bad request")
)

// Query kinds.
const (
	KindJoin    = "join"
	KindUnion   = "union"
	KindProfile = "profile"
	KindFD      = "fd"
	KindRank    = "rank"
)

// Request is one normalized query. The zero values of the optional
// fields select defaults (Normalize pins them), so a Request's Key is
// canonical: two spellings of the same question share a cache slot.
type Request struct {
	// Kind is one of the Kind constants.
	Kind string
	// Table is the query table's file name within the corpus.
	Table string
	// Col is the join query column ("" = first join-eligible column).
	Col string
	// K bounds join/union result lists (0 = DefaultK).
	K int
	// MaxLHS bounds FD discovery (0 = fd.MaxLHS).
	MaxLHS int
}

// DefaultK is the result-list bound when a request does not set one.
const DefaultK = 5

// Normalize pins the request's defaulted fields and drops the fields
// its kind ignores, so Key collapses equivalent spellings.
func (r Request) Normalize() Request {
	r.Kind = strings.ToLower(strings.TrimSpace(r.Kind))
	r.Table = strings.TrimSpace(r.Table)
	r.Col = strings.TrimSpace(r.Col)
	if r.K <= 0 {
		r.K = DefaultK
	}
	if r.MaxLHS <= 0 || r.MaxLHS > fd.MaxLHS {
		r.MaxLHS = fd.MaxLHS
	}
	switch r.Kind {
	case KindJoin:
		r.MaxLHS = 0
	case KindUnion:
		r.Col, r.MaxLHS = "", 0
	case KindProfile:
		r.Col, r.K, r.MaxLHS = "", 0, 0
	case KindFD:
		r.Col, r.K = "", 0
	case KindRank:
		r.Col, r.MaxLHS = "", 0
	}
	return r
}

// Key is the canonical cache key of the normalized request. The
// result cache keys on (corpus hash, Key), so the spelling here is
// load-bearing: it must identify the query and nothing else.
func (r Request) Key() string {
	r = r.Normalize()
	return fmt.Sprintf("%s?col=%s&k=%d&lhs=%d&table=%s", r.Kind, r.Col, r.K, r.MaxLHS, r.Table)
}

// TableInfo describes one corpus table for discovery surfaces
// (the /tables endpoint, the load generator's query pool).
type TableInfo struct {
	Name string   `json:"name"`
	Rows int      `json:"rows"`
	Cols []string `json:"cols"`
}

// Options configures Service construction and per-request fan-outs.
type Options struct {
	// Workers bounds every parallel fan-out (0 = all CPUs).
	Workers int
	// Registry receives the search engine's index-coverage and
	// candidate/verification counters (nil disables them).
	Registry *obs.Registry
}

// Service answers queries over one loaded corpus. The corpus is
// immutable between explicit patches: ApplyDelta (delta.go) revises it
// in place during a quiesced maintenance window; at all other times
// every method is safe for concurrent use.
type Service struct {
	src     corpus.Source
	tables  []*table.Table
	byName  map[string]int
	cats    map[string]string // dataset id -> category, for delta metas
	eng     *search.Engine
	ua      *union.Analysis
	hash    uint64
	workers int
}

// New builds the query service: profiles every column (fanned out
// over the worker pool), indexes the join-eligible columns, groups
// the unionable schemas, and fingerprints the corpus content. The
// source must be immutable afterwards; all Service methods are then
// safe for concurrent use.
func New(src corpus.Source, opts Options) *Service {
	s := &Service{
		src:     src,
		tables:  corpus.Tables(src),
		byName:  make(map[string]int),
		workers: opts.Workers,
	}
	for i, t := range s.tables {
		if _, dup := s.byName[t.Name]; !dup {
			s.byName[t.Name] = i
		}
	}
	// Precompute profiles (and with them the dictionary encodings)
	// before anything else: the engine build, the content hash, and
	// every query below read them lock-free once published.
	parallel.Must(parallel.ForEach(parallel.WithPool(context.Background(), "query-profile"),
		len(s.tables), s.workers, func(i int) {
			s.tables[i].Profiles()
		}))
	s.cats = datasetCategories(src)
	s.eng = search.NewWithOptions(s.tables, search.Options{
		MinUnique: search.MinUniqueDefault,
		Meta:      searchMetas(src, s.cats),
		Registry:  opts.Registry,
	})
	s.ua = union.Find(s.tables)
	s.hash = contentHash(src)
	return s
}

// datasetCategories maps dataset ids to their subject categories.
func datasetCategories(src corpus.Source) map[string]string {
	cat := make(map[string]string)
	for _, d := range src.DatasetMetas() {
		cat[d.ID] = d.Category
	}
	return cat
}

// searchMetas projects the source's dataset metadata into the search
// engine's per-table metadata signals (dataset identity plus the
// dataset's subject category).
func searchMetas(src corpus.Source, cat map[string]string) []search.TableMeta {
	metas := src.TableMetas()
	out := make([]search.TableMeta, len(metas))
	for i, m := range metas {
		out[i] = search.TableMeta{DatasetID: m.DatasetID, Category: cat[m.DatasetID]}
	}
	return out
}

// contentHash fingerprints the corpus: portal id, table names,
// schemas, and every column's distinct-value hashes with their
// multiplicities. Two corpora with the same hash answer every query
// identically, which is what lets cached results survive a server
// restart onto the same corpus and die with a changed one.
//
// The combination is an XOR of per-table terms (each avalanche-mixed so
// XOR does not cancel structure), which makes the fingerprint
// order-independent and incrementally patchable: ApplyDelta XORs out
// the terms of removed revisions and XORs in their replacements, and
// lands on exactly the hash a from-scratch build over the patched
// corpus computes. Column encodings are read through the source's
// ColumnSource capability when it has one, so hashing an mmap-backed
// corpus touches no row data.
func contentHash(src corpus.Source) uint64 {
	h := mix64(strHash(src.PortalID()))
	metas := src.TableMetas()
	for i := range metas {
		t := metas[i].Table
		h ^= tableTerm(t.Name, t.Cols, corpus.ColumnEncodings(src, i))
	}
	return h
}

// tableTerm is one table's contribution to the corpus content hash:
// an FNV digest of its name, column names, and every column's
// distinct-value hashes with multiplicities, finalized through mix64
// so the XOR combination in contentHash keeps full avalanche.
func tableTerm(name string, cols []string, encs []*table.Encoding) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writeStr(name)
	for _, c := range cols {
		writeStr(c)
	}
	for _, e := range encs {
		counts := e.ValueHashCounts()
		for i, v := range e.ValueHashes() {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], uint64(counts[i]))
			h.Write(buf[:])
		}
	}
	return mix64(h.Sum64())
}

// tableTermOf is tableTerm over a table's own lazy encodings.
func tableTermOf(t *table.Table) uint64 {
	encs := make([]*table.Encoding, t.NumCols())
	for c := range encs {
		encs[c] = t.Encoding(c)
	}
	return tableTerm(t.Name, t.Cols, encs)
}

// strHash is FNV-64a of a string.
func strHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche mix,
// so that XOR-combining per-table terms never cancels shared structure
// between similar tables.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash returns the corpus content fingerprint.
func (s *Service) Hash() uint64 { return s.hash }

// HashString is Hash in the fixed 16-hex-digit spelling used in cache
// keys, response headers, and logs.
func (s *Service) HashString() string { return fmt.Sprintf("%016x", s.hash) }

// NumTables returns the corpus size (deleted-table placeholders left
// behind by ApplyDelta are not counted).
func (s *Service) NumTables() int {
	n := 0
	for _, t := range s.tables {
		if t.NumCols() > 0 {
			n++
		}
	}
	return n
}

// NumIndexed returns how many join-eligible columns the engine
// indexed.
func (s *Service) NumIndexed() int { return s.eng.NumIndexed() }

// IndexSkips reports the search engine's index-coverage ledger: how
// many corpus columns the index build passed over, by reason.
func (s *Service) IndexSkips() search.SkipStats { return s.eng.Skips() }

// PortalID names the served corpus.
func (s *Service) PortalID() string { return s.src.PortalID() }

// Tables lists the corpus tables in canonical order. Slots deleted by
// ApplyDelta (placeholder tables with no columns) are omitted.
func (s *Service) Tables() []TableInfo {
	out := make([]TableInfo, 0, len(s.tables))
	for _, t := range s.tables {
		if t.NumCols() == 0 {
			continue
		}
		out = append(out, TableInfo{Name: t.Name, Rows: t.NumRows(), Cols: append([]string(nil), t.Cols...)})
	}
	return out
}

// TableIndex returns the index of the named table, or -1.
func (s *Service) TableIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// PickColumn resolves the join query column: the named column, or the
// first join-eligible one when name is empty (the ogdpsearch rule).
func (s *Service) PickColumn(ti int, name string) (int, error) {
	t := s.tables[ti]
	if name != "" {
		ci := t.ColumnIndex(name)
		if ci < 0 {
			return -1, fmt.Errorf("%w: column %q not in table %s", ErrBadRequest, name, t.Name)
		}
		return ci, nil
	}
	for c := range t.Cols {
		if t.Profile(c).Distinct >= search.MinUniqueDefault {
			return c, nil
		}
	}
	return -1, fmt.Errorf("%w: no join-eligible column in table %s (need >= %d distinct values)",
		ErrBadRequest, t.Name, search.MinUniqueDefault)
}

// Do executes a normalized request and returns the rendered response
// body. Concurrent calls are safe; ctx bounds the per-request
// fan-outs.
func (s *Service) Do(ctx context.Context, req Request) (string, error) {
	req = req.Normalize()
	ti := s.TableIndex(req.Table)
	if ti < 0 {
		return "", fmt.Errorf("%w: table %q not in corpus %s", ErrNotFound, req.Table, s.src.PortalID())
	}
	switch req.Kind {
	case KindJoin:
		ci, err := s.PickColumn(ti, req.Col)
		if err != nil {
			return "", err
		}
		return s.HeaderText(ti, ci) + "\n" + s.JoinText(ti, ci, req.K), nil
	case KindUnion:
		return s.UnionText(ti, req.K), nil
	case KindProfile:
		return s.ProfileText(ctx, ti)
	case KindFD:
		return s.FDText(ctx, ti, req.MaxLHS)
	case KindRank:
		return s.RankText(ti, req.K), nil
	default:
		return "", fmt.Errorf("%w: unknown query kind %q", ErrBadRequest, req.Kind)
	}
}

// HeaderText renders the query-identification line ogdpsearch prints
// before its result sections.
func (s *Service) HeaderText(ti, ci int) string {
	t := s.tables[ti]
	return fmt.Sprintf("query: %s.%s (%d distinct values)\n", t.Name, t.Cols[ci], t.Profile(ci).Distinct)
}

// JoinText renders the top-k joinable columns of the query column by
// exact value overlap — JOSIE's semantics, byte-identical to the
// ogdpsearch join section.
func (s *Service) JoinText(ti, ci, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "top-%d joinable columns by exact overlap (JOSIE semantics):\n", k)
	for _, r := range s.eng.TopKJoinable(s.tables[ti], ci, k, ti) {
		c := s.tables[r.Ref.Table]
		fmt.Fprintf(&b, "  overlap=%-5d J=%.3f containment=%.3f  %s.%s\n",
			r.Overlap, r.Jaccard, r.Containment, c.Name, c.Cols[r.Ref.Column])
	}
	return b.String()
}

// RankText renders the top-k ranked integration hypotheses for the
// query table — value overlap, schema similarity, and dataset
// metadata combined into one weighted score (Eberius et al.'s
// integration hypotheses), byte-identical to the ogdpsearch
// -mode rank output.
func (s *Service) RankText(ti, k int) string {
	q := s.tables[ti]
	var b strings.Builder
	fmt.Fprintf(&b, "top-%d integration hypotheses for %s (value+schema+metadata evidence):\n", k, q.Name)
	hs := s.eng.RankTables(q, k, ti)
	if len(hs) == 0 {
		b.WriteString("  none\n")
	}
	for _, h := range hs {
		c := s.tables[h.Table]
		fmt.Fprintf(&b, "  score=%.3f  %s", h.Score, c.Name)
		if h.QueryCol >= 0 {
			fmt.Fprintf(&b, "  join %s~%s overlap=%d containment=%.3f",
				q.Cols[h.QueryCol], c.Cols[h.CandCol], h.Overlap, h.Containment)
		}
		if h.SameSchema {
			b.WriteString("  union-compatible")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// UnionText renders the tables unionable with the query table (exact
// schema identity), ranked by relatedness — byte-identical to the
// ogdpsearch union section.
func (s *Service) UnionText(ti, k int) string {
	var b strings.Builder
	b.WriteString("unionable tables (exact schema identity), ranked by relatedness:\n")
	ranked := rank.RankUnionCandidates(s.ua, ti, rank.UnionWeights{})
	if len(ranked) == 0 {
		b.WriteString("  none\n")
	}
	for i, r := range ranked {
		if i == k {
			break
		}
		fmt.Fprintf(&b, "  score=%.2f  %s\n", r.Score, s.tables[r.Table].Name)
	}
	return b.String()
}

// ProfileText renders the per-column profile of one table: type,
// distinct count, null ratio, uniqueness, and key flag per column,
// plus the single-column key list. Column stats are computed in a
// request-scoped fan-out bounded by ctx.
func (s *Service) ProfileText(ctx context.Context, ti int) (string, error) {
	t := s.tables[ti]
	lines := make([]string, t.NumCols())
	nameW := 0
	for _, c := range t.Cols {
		if len(c) > nameW {
			nameW = len(c)
		}
	}
	if err := parallel.ForEach(parallel.WithPool(ctx, "query-profile-render"),
		t.NumCols(), s.workers, func(c int) {
			p := t.Profile(c)
			key := ""
			if p.IsKey() {
				key = "  key"
			}
			lines[c] = fmt.Sprintf("  [%d] %-*s  %-8s distinct=%-6d nulls=%.1f%%  unique=%.3f%s",
				c, nameW, t.Cols[c], p.Type, p.Distinct, 100*p.NullRatio(), p.Uniqueness(), key)
		}); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "table: %s (%d rows × %d columns)\n", t.Name, t.NumRows(), t.NumCols())
	if t.DatasetID != "" {
		fmt.Fprintf(&b, "dataset: %s\n", t.DatasetID)
	}
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	kc := keys.KeyColumns(t)
	if len(kc) == 0 {
		b.WriteString("single-column keys: none\n")
	} else {
		names := make([]string, len(kc))
		for i, c := range kc {
			names[i] = t.Cols[c]
		}
		fmt.Fprintf(&b, "single-column keys: %s\n", strings.Join(names, ", "))
	}
	return b.String(), nil
}

// FDText renders the table's minimal functional dependencies (bounded
// at maxLHS) with their plausibility scores, computed in a
// request-scoped fan-out bounded by ctx.
func (s *Service) FDText(ctx context.Context, ti, maxLHS int) (string, error) {
	t := s.tables[ti]
	if t.NumCols() > fd.MaxColumns {
		return "", fmt.Errorf("%w: table %s has %d columns; FD discovery accepts at most %d",
			ErrBadRequest, t.Name, t.NumCols(), fd.MaxColumns)
	}
	fds := fd.Discover(t, maxLHS)
	scores := make([]float64, len(fds))
	if err := parallel.ForEach(parallel.WithPool(ctx, "query-fd-plausibility"),
		len(fds), s.workers, func(i int) {
			scores[i] = fd.Plausibility(t, fds[i])
		}); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "functional dependencies of %s (max LHS %d): %d minimal FDs\n", t.Name, maxLHS, len(fds))
	for i, f := range fds {
		fmt.Fprintf(&b, "  %s   (plausibility %.2f)\n", f.Format(t), scores[i])
	}
	return b.String(), nil
}

// Kinds names the supported query kinds, for flag help and error
// text.
func Kinds() string {
	return strings.Join([]string{KindJoin, KindUnion, KindProfile, KindFD, KindRank}, ", ")
}
