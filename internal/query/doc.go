// Package query is the shared execution-and-rendering layer behind
// the interactive query surfaces: the ogdpserve HTTP service and the
// one-shot ogdpsearch CLI both answer join-search, union-search,
// ranked table-search, profile, and FD queries through the one
// Service here, which is what makes the server's response bodies
// byte-identical to the CLI's output for the same query — the
// contract the serve tests pin.
//
// The query kinds mirror the integration operations the paper's
// dataset-search survey (§2) treats as primitives: joinability and
// unionability discovery (§4–§5, the Auctus/JOSIE operations),
// column profiling (§3's design-smell measurements), and functional-
// dependency plausibility (§6). KindRank is the ranked composite —
// one table in, a scored list of integration hypotheses out — built
// on internal/search's ranked tier.
//
// A Service is built once over an immutable corpus.Source: the
// inverted join index (internal/search), the unionability grouping
// (internal/union), and every column profile are computed at
// construction, so query execution never mutates shared state and is
// safe for concurrent callers. Construction fans out over
// internal/parallel; per-request work (profile rendering, FD
// plausibility) fans out too, bounded by the same Workers knob, and
// honors context cancellation.
package query
