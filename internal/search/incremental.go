package search

import (
	"ogdp/internal/minhash"
	"ogdp/internal/table"
)

// Incremental index maintenance. A corpus snapshot rarely changes
// wholesale: the ingest path observes a handful of added, updated, and
// deleted tables and patches the engine in place instead of rebuilding
// the postings and signatures for every unchanged column. The
// operations preserve the engine's determinism contract:
//
//   - Column ids grow monotonically and are never reused, so posting
//     lists stay in ascending id order (removal splices, insertion
//     appends fresh maximal ids) and the LSH index — whose ids are
//     assigned by the same appends — stays 1:1 with column ids.
//   - A removed table's slot is replaced by an empty placeholder table
//     rather than compacted away, so surviving table indices (the
//     tie-break key of every ranked result order) keep their relative
//     order, which is exactly the order a from-scratch rebuild of the
//     patched corpus produces.
//   - The skip ledger is reverted for the removed table's gated columns
//     and re-accumulated for its replacement, so Skips always describes
//     the current corpus, not the build history.
//
// None of these methods are safe for use concurrent with queries:
// callers quiesce the engine (or swap a fresh Service) around a patch.

// indexTableColumns runs the build-loop gates over every column of
// tables[ti], appending eligible ones to the index — and to the LSH
// index when banding is active, keeping signature ids aligned with
// column ids.
func (e *Engine) indexTableColumns(ti int) {
	t := e.tables[ti]
	for ci := range t.Cols {
		p := t.Profile(ci)
		// An empty column is "no values" regardless of the gate; the
		// ledger must not blame the distinct-value bar for it.
		if p.Distinct == 0 {
			e.skips.Empty++
			continue
		}
		if e.minUnique > 0 && p.Distinct < e.minUnique {
			e.skips.MinUnique++
			continue
		}
		id := int32(len(e.columns))
		e.columns = append(e.columns, ColumnRef{Table: ti, Column: ci})
		e.distinct = append(e.distinct, p.Distinct)
		e.profiles = append(e.profiles, p)
		// The profile's hash set is already sorted, so posting lists
		// fill in ascending column-id order with ascending hashes.
		for _, h := range p.ValueHashes() {
			e.postings[h] = append(e.postings[h], id)
		}
		if e.lsh != nil {
			e.lsh.Add(minhash.Sketch(p.ValueHashes(), e.sigSize))
		}
	}
}

// unindex removes one indexed column: its id is spliced out of every
// posting list it appears in (preserving ascending order), its profile
// slot is tombstoned, and its LSH signature is retired.
func (e *Engine) unindex(id int32) {
	p := e.profiles[id]
	for _, h := range p.ValueHashes() {
		ids := e.postings[h]
		for k, v := range ids {
			if v == id {
				ids = append(ids[:k], ids[k+1:]...)
				break
			}
		}
		if len(ids) == 0 {
			delete(e.postings, h)
		} else {
			e.postings[h] = ids
		}
	}
	e.profiles[id] = nil
	e.distinct[id] = 0
	if e.lsh != nil {
		e.lsh.Remove(int(id))
	}
}

// RemoveTable deletes the table at index ti from the engine: its
// columns leave the postings and LSH index, its skip-ledger
// contributions are reverted, and the slot is replaced by an empty
// placeholder (same name, no columns) so surviving table indices are
// undisturbed. Removing an already-removed slot is a no-op.
func (e *Engine) RemoveTable(ti int) {
	old := e.tables[ti]
	for ci := range old.Cols {
		p := old.Profile(ci)
		if p.Distinct == 0 {
			e.skips.Empty--
		} else if e.minUnique > 0 && p.Distinct < e.minUnique {
			e.skips.MinUnique--
		}
	}
	for id := range e.columns {
		if e.columns[id].Table == ti && e.profiles[id] != nil {
			e.unindex(int32(id))
		}
	}
	e.tables[ti] = table.New(old.Name, nil)
	if e.meta != nil && ti < len(e.meta) {
		e.meta[ti] = TableMeta{}
	}
}

// AddTable appends a table to the engine and indexes its eligible
// columns, returning the new table index. The new columns receive
// fresh maximal ids, so every existing posting list and signature is
// untouched.
func (e *Engine) AddTable(t *table.Table, meta TableMeta) int {
	ti := len(e.tables)
	e.tables = append(e.tables, t)
	e.setMeta(ti, meta)
	e.indexTableColumns(ti)
	return ti
}

// UpdateTable replaces the table at index ti with a new revision:
// the old columns are removed exactly as RemoveTable does, then the
// revision is indexed in the same slot (preserving its position in
// every table-index tie-break) under fresh column ids.
func (e *Engine) UpdateTable(ti int, t *table.Table, meta TableMeta) {
	e.RemoveTable(ti)
	e.tables[ti] = t
	e.setMeta(ti, meta)
	e.indexTableColumns(ti)
}

// setMeta records per-table metadata at slot ti, materializing the
// metadata slice on first use and padding it to the table count.
func (e *Engine) setMeta(ti int, m TableMeta) {
	if e.meta == nil {
		if m == (TableMeta{}) {
			return
		}
		e.meta = make([]TableMeta, 0, len(e.tables))
	}
	for len(e.meta) < len(e.tables) {
		e.meta = append(e.meta, TableMeta{})
	}
	e.meta[ti] = m
}
