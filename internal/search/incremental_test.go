package search

import (
	"reflect"
	"strconv"
	"testing"

	"ogdp/internal/table"
)

// mkOverlap builds an id/payload table covering [from, to].
func mkOverlap(name string, from, to int) *table.Table {
	t := table.New(name, []string{"id", "payload"})
	for i := from; i <= to; i++ {
		t.AppendRow([]string{strconv.Itoa(i), name})
	}
	return t
}

// sameResults asserts both engines answer the full query battery
// identically: top-k join, thresholded join, ranked hypotheses, and
// union twins, for every live table and an external query.
func sameResults(t *testing.T, patched, rebuilt *Engine, tables []*table.Table) {
	t.Helper()
	if patched.NumIndexed() != rebuilt.NumIndexed() {
		t.Fatalf("indexed columns: patched %d, rebuilt %d", patched.NumIndexed(), rebuilt.NumIndexed())
	}
	if patched.Skips() != rebuilt.Skips() {
		t.Fatalf("skip ledger: patched %+v, rebuilt %+v", patched.Skips(), rebuilt.Skips())
	}
	queries := append([]*table.Table{mkOverlap("external.csv", 5, 40)}, tables...)
	for qi, q := range queries {
		if q.NumCols() == 0 {
			continue
		}
		exclude := qi - 1 // tables[qi-1]; the external query excludes nothing
		if got, want := patched.TopKJoinable(q, 0, 10, exclude), rebuilt.TopKJoinable(q, 0, 10, exclude); !reflect.DeepEqual(got, want) {
			t.Errorf("TopKJoinable(%s): patched %+v, rebuilt %+v", q.Name, got, want)
		}
		if got, want := patched.JoinableFor(q, 0, 0.2, exclude), rebuilt.JoinableFor(q, 0, 0.2, exclude); !reflect.DeepEqual(got, want) {
			t.Errorf("JoinableFor(%s): patched %+v, rebuilt %+v", q.Name, got, want)
		}
		if got, want := patched.RankTables(q, 10, exclude), rebuilt.RankTables(q, 10, exclude); !reflect.DeepEqual(got, want) {
			t.Errorf("RankTables(%s): patched %+v, rebuilt %+v", q.Name, got, want)
		}
		if got, want := patched.UnionableFor(q, exclude), rebuilt.UnionableFor(q, exclude); !reflect.DeepEqual(got, want) {
			t.Errorf("UnionableFor(%s): patched %+v, rebuilt %+v", q.Name, got, want)
		}
	}
}

// TestIncrementalMatchesRebuild patches an engine through one
// add + update + delete round and checks every query surface against
// an engine built from scratch over the patched table set, on both
// candidate paths (exact postings scan and LSH banding).
func TestIncrementalMatchesRebuild(t *testing.T) {
	for _, cutoff := range []int{DefaultExactCutoff, 1} {
		name := "exact"
		if cutoff == 1 {
			name = "lsh"
		}
		t.Run(name, func(t *testing.T) {
			build := func(tables []*table.Table) *Engine {
				return NewWithOptions(tables, Options{
					MinUnique:   MinUniqueDefault,
					ExactCutoff: cutoff,
					Meta: []TableMeta{
						{DatasetID: "d0", Category: "transport"},
						{DatasetID: "d1", Category: "transport"},
						{DatasetID: "d2", Category: "health"},
					}[:min(3, len(tables))],
				})
			}
			initial := []*table.Table{
				mkOverlap("a.csv", 1, 30),
				mkOverlap("b.csv", 10, 40),
				mkOverlap("c.csv", 20, 60),
			}
			e := build(initial)

			// Delete b, update c to a new value range, add d.
			e.RemoveTable(1)
			updatedC := mkOverlap("c.csv", 25, 80)
			e.UpdateTable(2, updatedC, TableMeta{DatasetID: "d2", Category: "health"})
			added := mkOverlap("d.csv", 1, 50)
			if ti := e.AddTable(added, TableMeta{DatasetID: "d3", Category: "transport"}); ti != 3 {
				t.Fatalf("AddTable slot = %d, want 3", ti)
			}

			patchedTables := []*table.Table{
				initial[0],
				table.New("b.csv", nil), // deleted placeholder
				updatedC,
				added,
			}
			rebuilt := NewWithOptions(patchedTables, Options{
				MinUnique:   MinUniqueDefault,
				ExactCutoff: cutoff,
				Meta: []TableMeta{
					{DatasetID: "d0", Category: "transport"},
					{},
					{DatasetID: "d2", Category: "health"},
					{DatasetID: "d3", Category: "transport"},
				},
			})
			sameResults(t, e, rebuilt, patchedTables)
		})
	}
}

// TestRemoveTableRevertsSkips pins the skip-ledger bookkeeping: a
// removed table takes its gated columns' skip counts with it, and an
// update replaces them with the revision's.
func TestRemoveTableRevertsSkips(t *testing.T) {
	few := table.New("few.csv", []string{"id", "empty"})
	for i := 0; i < 3; i++ { // below MinUniqueDefault, plus an all-null column
		few.AppendRow([]string{strconv.Itoa(i), ""})
	}
	// big.csv: id indexed, constant payload below the bar; few.csv: id
	// below the bar, empty column with no values.
	e := NewWithOptions([]*table.Table{mkOverlap("big.csv", 1, 30), few},
		Options{MinUnique: MinUniqueDefault})
	if e.Skips() != (SkipStats{MinUnique: 2, Empty: 1}) {
		t.Fatalf("initial skips = %+v", e.Skips())
	}
	if e.NumIndexed() != 1 {
		t.Fatalf("initial indexed = %d, want 1", e.NumIndexed())
	}
	e.RemoveTable(1)
	if e.Skips() != (SkipStats{MinUnique: 1}) {
		t.Errorf("skips after remove = %+v, want only big.csv's payload", e.Skips())
	}
	e.UpdateTable(0, few, TableMeta{})
	if e.Skips() != (SkipStats{MinUnique: 1, Empty: 1}) {
		t.Errorf("skips after update = %+v", e.Skips())
	}
	if e.NumIndexed() != 0 {
		t.Errorf("indexed after update = %d, want 0", e.NumIndexed())
	}
}
