package search

import (
	"fmt"
	"strconv"
	"testing"

	"ogdp/internal/join"
	"ogdp/internal/table"
)

// corpus: tables with controlled overlap against a query id column
// covering 1..30.
func buildCorpus() []*table.Table {
	mk := func(name string, from, to int) *table.Table {
		t := table.New(name, []string{"id", "payload"})
		for i := from; i <= to; i++ {
			t.AppendRow([]string{strconv.Itoa(i), name})
		}
		return t
	}
	return []*table.Table{
		mk("full.csv", 1, 30),    // overlap 30
		mk("most.csv", 4, 30),    // overlap 27
		mk("half.csv", 16, 45),   // overlap 15
		mk("none.csv", 100, 140), // overlap 0
	}
}

func queryTable() *table.Table {
	t := table.New("query.csv", []string{"id"})
	for i := 1; i <= 30; i++ {
		t.AppendRow([]string{strconv.Itoa(i)})
	}
	return t
}

func TestTopKJoinable(t *testing.T) {
	corpus := buildCorpus()
	e := New(corpus, MinUniqueDefault)
	q := queryTable()

	res := e.TopKJoinable(q, 0, 2, -1)
	if len(res) != 2 {
		t.Fatalf("top-2 = %d results", len(res))
	}
	if res[0].Ref.Table != 0 || res[0].Overlap != 30 {
		t.Errorf("top result = %+v, want full.csv overlap 30", res[0])
	}
	if res[1].Ref.Table != 1 || res[1].Overlap != 27 {
		t.Errorf("second result = %+v, want most.csv overlap 27", res[1])
	}
	if res[0].Jaccard != 1.0 || res[0].Containment != 1.0 {
		t.Errorf("full overlap metrics: %+v", res[0])
	}
}

func TestTopKOrdering(t *testing.T) {
	corpus := buildCorpus()
	e := New(corpus, MinUniqueDefault)
	res := e.TopKJoinable(queryTable(), 0, 10, -1)
	for i := 1; i < len(res); i++ {
		if res[i].Overlap > res[i-1].Overlap {
			t.Fatalf("results not sorted by overlap: %+v", res)
		}
	}
	// none.csv shares no values and must be absent.
	for _, r := range res {
		if r.Ref.Table == 3 {
			t.Error("zero-overlap column returned")
		}
	}
}

func TestJoinableForThreshold(t *testing.T) {
	corpus := buildCorpus()
	e := New(corpus, MinUniqueDefault)
	q := queryTable()

	res := e.JoinableFor(q, 0, 0.9, -1)
	if len(res) != 2 { // full (1.0) and most (27/33 = 0.818... no!)
		// 27 shared of |Q|=30, |C|=27 -> union 30 -> J = 0.9 exactly.
		t.Fatalf("threshold results = %+v", res)
	}
	if res[0].Jaccard < res[1].Jaccard {
		t.Error("not sorted by Jaccard")
	}
}

// TestAgreesWithJoinFind: searching each corpus column must recover
// exactly the pairs join.Find reports.
func TestAgreesWithJoinFind(t *testing.T) {
	var corpus []*table.Table
	for i := 0; i < 8; i++ {
		tb := table.New(fmt.Sprintf("t%d.csv", i), []string{"id"})
		base := (i % 3) * 2
		for r := 0; r < 40; r++ {
			tb.AppendRow([]string{strconv.Itoa(base + r)})
		}
		corpus = append(corpus, tb)
	}
	want := map[[4]int]bool{}
	for _, p := range join.Find(corpus, join.Options{}).Pairs {
		want[[4]int{p.T1, p.C1, p.T2, p.C2}] = true
	}
	e := New(corpus, MinUniqueDefault)
	got := map[[4]int]bool{}
	for ti, tb := range corpus {
		for _, r := range e.JoinableFor(tb, 0, join.DefaultMinJaccard, ti) {
			a := [4]int{ti, 0, r.Ref.Table, r.Ref.Column}
			if a[2] < a[0] {
				a = [4]int{a[2], a[3], a[0], a[1]}
			}
			got[a] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("search found %d pairs, join.Find %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("pair %v missed by search", k)
		}
	}
}

func TestMinUniqueFilterApplied(t *testing.T) {
	small := table.New("small.csv", []string{"flag"})
	for i := 0; i < 20; i++ {
		small.AppendRow([]string{strconv.Itoa(i % 2)})
	}
	e := New([]*table.Table{small}, MinUniqueDefault)
	if e.NumIndexed() != 0 {
		t.Errorf("low-cardinality column indexed: %d", e.NumIndexed())
	}
	e2 := New([]*table.Table{small}, 0)
	if e2.NumIndexed() != 1 {
		t.Errorf("filter disabled but column not indexed")
	}
}

func TestExcludeTable(t *testing.T) {
	corpus := buildCorpus()
	e := New(corpus, MinUniqueDefault)
	res := e.TopKJoinable(corpus[0], 0, 10, 0)
	for _, r := range res {
		if r.Ref.Table == 0 {
			t.Error("excluded table returned")
		}
	}
}

func TestUnionableFor(t *testing.T) {
	a := table.FromRows("a.csv", []string{"year", "value"}, [][]string{{"2020", "1.5"}})
	b := table.FromRows("b.csv", []string{"year", "value"}, [][]string{{"1999", "2.5"}})
	c := table.FromRows("c.csv", []string{"year", "name"}, [][]string{{"2020", "x"}})
	e := New([]*table.Table{a, b, c}, 0)
	got := e.UnionableFor(a, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("UnionableFor = %v", got)
	}
	q := table.FromRows("ext.csv", []string{"year", "value"}, [][]string{{"1901", "7.5"}})
	if got := e.UnionableFor(q, -1); len(got) != 2 {
		t.Errorf("external query unionable = %v", got)
	}
}

func TestEmptyQuery(t *testing.T) {
	e := New(buildCorpus(), MinUniqueDefault)
	empty := table.New("e.csv", []string{"id"})
	if res := e.TopKJoinable(empty, 0, 5, -1); res != nil {
		t.Errorf("empty query returned %v", res)
	}
	if res := e.JoinableFor(empty, 0, 0.5, -1); res != nil {
		t.Errorf("empty query returned %v", res)
	}
}

func BenchmarkTopKJoinable(b *testing.B) {
	var corpus []*table.Table
	for i := 0; i < 200; i++ {
		tb := table.New(fmt.Sprintf("t%d.csv", i), []string{"id", "state"})
		for r := 0; r < 200; r++ {
			tb.AppendRow([]string{strconv.Itoa(r + i*3), fmt.Sprintf("state-%d", (r+i)%40)})
		}
		corpus = append(corpus, tb)
	}
	e := New(corpus, MinUniqueDefault)
	q := corpus[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TopKJoinable(q, 0, 10, 0)
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	var corpus []*table.Table
	for i := 0; i < 100; i++ {
		tb := table.New(fmt.Sprintf("t%d.csv", i), []string{"id"})
		for r := 0; r < 300; r++ {
			tb.AppendRow([]string{strconv.Itoa(r + i)})
		}
		corpus = append(corpus, tb)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(corpus, MinUniqueDefault)
	}
}
