package search

import (
	"sort"
	"sync/atomic"

	"ogdp/internal/classify"
	"ogdp/internal/minhash"
	"ogdp/internal/normalize"
	"ogdp/internal/obs"
	"ogdp/internal/table"
)

// Ranked-retrieval defaults. The band/row setting is recall-safe: with
// 64 bands of 2 rows over a 128-permutation signature, a candidate
// pair of Jaccard similarity s survives banding with probability
// 1-(1-s²)⁶⁴ — above 99.8% at s ≥ 0.3, which is why the ranked output
// stays byte-identical to the exhaustive scan on the study corpora
// (pinned by TestLSHAgreesWithExactOnStudyCorpora) while verifying far
// fewer candidates on large ones.
const (
	// DefaultBands and DefaultRows are the recall-safe LSH banding
	// parameters.
	DefaultBands = 64
	DefaultRows  = 2
	// DefaultExactCutoff is the indexed-column count below which
	// candidate generation keeps the exact postings scan: under a few
	// hundred columns the scan is already cheap, and skipping the
	// signature build keeps small-corpus construction fast.
	DefaultExactCutoff = 512
	// DefaultEvidenceJaccard is the Jaccard floor below which a column
	// pair does not count as join evidence. The floor serves two ends
	// at once: overlap this thin is accidental-join noise (year
	// columns, city names — the paper's R-Acc/U-Acc patterns), and it
	// is what makes the LSH path's output identical to the exact scan —
	// at 64×2 banding a pair at the floor is missed with probability
	// (1-0.45²)⁶⁴ < 10⁻⁶, and ever more rarely above it, while pairs
	// below the floor are discarded by both paths anyway.
	DefaultEvidenceJaccard = 0.45
)

// TableMeta carries the dataset-level metadata signals the hypothesis
// scorer weighs, parallel to the indexed table slice. The zero value
// (no metadata) degrades the metadata signal to same-dataset identity
// from table.DatasetID alone.
type TableMeta struct {
	// DatasetID attributes the table to its dataset.
	DatasetID string
	// Category is the dataset's subject category.
	Category string
}

// SkipStats counts the columns the index build passed over, by reason
// — the index-coverage ledger (diskcorpus keeps the same kind of
// ledger for files). Before this existed, columns vanishing at the
// minUnique gate or the empty-profile check were silently invisible.
type SkipStats struct {
	// MinUnique counts columns below the distinct-value eligibility bar.
	MinUnique int
	// Empty counts columns that passed the gate but hold no non-null
	// values (Distinct == 0), so there is nothing to index.
	Empty int
}

// Options configures NewWithOptions. Zero values select the package
// defaults, so Options{} is a valid full-default configuration.
type Options struct {
	// MinUnique is the distinct-value eligibility bar
	// (MinUniqueDefault for the paper's filter; ≤ 0 indexes all
	// non-empty columns).
	MinUnique int
	// Weights drive the hypothesis scorer; the zero value selects
	// DefaultHypothesisWeights.
	Weights HypothesisWeights
	// Meta is optional per-table dataset metadata, parallel to the
	// table slice; nil disables the category half of the metadata
	// signal.
	Meta []TableMeta
	// SignatureSize is the MinHash signature length (default
	// minhash.SignatureSize). Bands*Rows must not exceed it.
	SignatureSize int
	// Bands and Rows set the LSH banding (defaults DefaultBands,
	// DefaultRows).
	Bands, Rows int
	// ExactCutoff is the indexed-column count below which ranked
	// candidate generation uses the exact postings scan instead of LSH
	// (default DefaultExactCutoff). Pass 1 to band every corpus, or a
	// value larger than the corpus to force the exact path.
	ExactCutoff int
	// EvidenceJaccard is the Jaccard floor for join evidence (default
	// DefaultEvidenceJaccard; pass a tiny positive value to keep all
	// overlapping pairs).
	EvidenceJaccard float64
	// Registry receives index-coverage and candidate/verification
	// counters; nil disables them.
	Registry *obs.Registry
}

// withDefaults pins the zero-value fields.
func (o Options) withDefaults() Options {
	if o.Weights == (HypothesisWeights{}) {
		o.Weights = DefaultHypothesisWeights()
	}
	if o.SignatureSize <= 0 {
		o.SignatureSize = minhash.SignatureSize
	}
	if o.Bands <= 0 {
		o.Bands = DefaultBands
	}
	if o.Rows <= 0 {
		o.Rows = DefaultRows
	}
	if o.ExactCutoff <= 0 {
		o.ExactCutoff = DefaultExactCutoff
	}
	if o.EvidenceJaccard <= 0 {
		o.EvidenceJaccard = DefaultEvidenceJaccard
	}
	return o
}

// HypothesisWeights weights the signals of an integration hypothesis
// (Eberius et al.: combine value overlap, schema similarity, and
// metadata into one weighted score). The zero value is replaced by
// DefaultHypothesisWeights.
type HypothesisWeights struct {
	// Containment weights |Q ∩ C| / |Q| of the best column pair, the
	// LSH-Ensemble metric robust to asymmetric set sizes.
	Containment float64
	// Jaccard weights the symmetric overlap of the best column pair.
	Jaccard float64
	// SchemaName weights the normalized column-name token overlap of
	// the two schemas.
	SchemaName float64
	// SameSchema is the exact schema-identity bonus (the paper's §6
	// unionability evidence).
	SameSchema float64
	// TypeCompat weights type agreement of the best column pair (or of
	// the whole schema for union-only hypotheses).
	TypeCompat float64
	// Metadata weights the dataset-metadata signal: same dataset
	// scores 1, same category 0.5.
	Metadata float64
}

// DefaultHypothesisWeights balances the signals the way the paper's
// labeling study orders them: value evidence first (Tables 8-10),
// then metadata locality, then schema agreement.
func DefaultHypothesisWeights() HypothesisWeights {
	return HypothesisWeights{
		Containment: 0.35,
		Jaccard:     0.10,
		SchemaName:  0.15,
		SameSchema:  0.15,
		TypeCompat:  0.05,
		Metadata:    0.20,
	}
}

// typeInformativeness is the Table 10 usefulness prior per join-column
// type group, scaling the value-overlap evidence: overlap on an
// incremental-integer column carries no integration signal no matter
// how large, while overlap on categorical or string values does.
var typeInformativeness = map[string]float64{
	"incremental integer": 0.0,
	"categorical":         1.0,
	"integer":             0.5,
	"string":              0.9,
	"timestamp":           0.7,
	"geo-spatial":         0.8,
}

// Hypothesis is one scored integration hypothesis: a candidate corpus
// table with the evidence for integrating the query table with it.
type Hypothesis struct {
	// Table indexes the candidate in the engine's table slice.
	Table int
	// QueryCol/CandCol identify the best joinable column pair, or -1
	// when the hypothesis rests on schema evidence alone.
	QueryCol, CandCol int
	// Overlap, Containment, Jaccard describe the best pair's exact
	// value overlap (zero without a pair).
	Overlap     int
	Containment float64
	Jaccard     float64
	// SchemaName is the normalized column-name token similarity.
	SchemaName float64
	// TypeCompat measures type agreement of the evidence columns.
	TypeCompat float64
	// Metadata is the dataset-metadata signal (1 same dataset, 0.5
	// same category, 0 otherwise).
	Metadata float64
	// SameSchema marks an exact schema-key match (unionable, §6).
	SameSchema bool
	// Score is the weighted combination; hypotheses are ranked by it.
	Score float64
}

// engineStats accumulates candidate/verification work counters across
// the engine's lifetime; safe for concurrent queries.
type engineStats struct {
	queries    atomic.Uint64
	candidates atomic.Uint64
	verified   atomic.Uint64

	// Mirrored obs counters (nil-safe no-ops without a registry).
	cQueries    *obs.Counter
	cCandidates *obs.Counter
	cVerified   *obs.Counter
}

// Stats is a snapshot of the engine's ranked-query work counters.
type Stats struct {
	// Path names the candidate-generation strategy: "exact" below the
	// corpus-size cutoff, "lsh" above it.
	Path string
	// Queries counts ranked column lookups (one per eligible query
	// column per RankTables call).
	Queries uint64
	// Candidates counts candidate columns generated (postings hits on
	// the exact path, band collisions on the LSH path).
	Candidates uint64
	// Verified counts exact-overlap computations performed. On the
	// exact path every candidate is verified by construction; the LSH
	// path's saving is exactly the gap between an exhaustive scan's
	// candidate count and this.
	Verified uint64
}

// Path reports the candidate-generation strategy the engine settled
// on at build time.
func (e *Engine) Path() string {
	if e.lsh != nil {
		return "lsh"
	}
	return "exact"
}

// Stats snapshots the engine's cumulative ranked-query work counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Path:       e.Path(),
		Queries:    e.stats.queries.Load(),
		Candidates: e.stats.candidates.Load(),
		Verified:   e.stats.verified.Load(),
	}
}

// Skips reports the index-coverage ledger: how many corpus columns the
// build skipped, by reason.
func (e *Engine) Skips() SkipStats { return e.skips }

// registerMetrics publishes the index-coverage counters and binds the
// per-query work counters to the registry (all nil-safe).
func (e *Engine) registerMetrics(reg *obs.Registry) {
	path := e.Path()
	reg.Counter("ogdp_search_index_columns_total",
		"Columns indexed for ranked search.").Add(int64(len(e.columns)))
	reg.Counter("ogdp_search_index_skipped_total",
		"Columns the search index build passed over, by reason.",
		"reason", "below-min-unique").Add(int64(e.skips.MinUnique))
	reg.Counter("ogdp_search_index_skipped_total",
		"Columns the search index build passed over, by reason.",
		"reason", "no-values").Add(int64(e.skips.Empty))
	e.stats.cQueries = reg.Counter("ogdp_search_rank_queries_total",
		"Ranked candidate lookups, by candidate-generation path.", "path", path)
	e.stats.cCandidates = reg.Counter("ogdp_search_rank_candidates_total",
		"Candidate columns generated for ranked queries, by path.", "path", path)
	e.stats.cVerified = reg.Counter("ogdp_search_rank_verified_total",
		"Exact-overlap verifications performed for ranked queries, by path.", "path", path)
}

// note records one candidate lookup's work in the lifetime stats and
// the mirrored obs counters.
func (s *engineStats) note(candidates, verified int) {
	s.queries.Add(1)
	s.candidates.Add(uint64(candidates))
	s.verified.Add(uint64(verified))
	s.cQueries.Inc()
	s.cCandidates.Add(int64(candidates))
	s.cVerified.Add(int64(verified))
}

// colOverlap pairs an indexed column id with its exact overlap against
// the query column.
type colOverlap struct {
	id      int32
	overlap int
}

// rankCandidates generates and verifies the candidate columns for one
// query column: the exact postings scan below the corpus-size cutoff,
// LSH band collisions above it with exact overlap computed only for
// collision survivors. Results come back in ascending column-id order
// (deterministic regardless of path), with zero-overlap survivors
// dropped.
func (e *Engine) rankCandidates(q *table.ColumnProfile, exclude int) []colOverlap {
	if e.lsh == nil {
		counts := e.overlaps(q, exclude)
		out := make([]colOverlap, 0, len(counts))
		for id, n := range counts {
			out = append(out, colOverlap{id: id, overlap: n})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
		e.stats.note(len(counts), len(counts))
		return out
	}
	sig := minhash.Sketch(q.ValueHashes(), e.sigSize)
	ids := e.lsh.Candidates(sig)
	verified := 0
	var out []colOverlap
	for _, id := range ids {
		if exclude >= 0 && e.columns[id].Table == exclude {
			continue
		}
		verified++
		if n := intersectSize(q.ValueHashes(), e.profiles[id].ValueHashes()); n > 0 {
			out = append(out, colOverlap{id: int32(id), overlap: n})
		}
	}
	e.stats.note(len(ids), verified)
	return out
}

// intersectSize counts common elements of two ascending hash slices.
func intersectSize(a, b []uint64) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// pairEvidence is the best joinable column pair found for one
// candidate table during candidate generation.
type pairEvidence struct {
	qc, cc  int
	id      int32 // indexed-column id of cc, to resolve its profile
	overlap int
	cont    float64
	jac     float64
	value   float64 // type-weighted value evidence, the comparison key
	found   bool
}

// better reports whether a beats b as a candidate table's join
// evidence, with a deterministic total order on ties.
func (a pairEvidence) better(b pairEvidence) bool {
	if !b.found {
		return true
	}
	if a.value > b.value {
		return true
	}
	if a.value < b.value {
		return false
	}
	if a.overlap != b.overlap {
		return a.overlap > b.overlap
	}
	if a.qc != b.qc {
		return a.qc < b.qc
	}
	return a.cc < b.cc
}

// RankTables returns the top-k integration hypotheses for the query
// table: every corpus table with verified value overlap on an eligible
// column pair or an exact schema match, scored by the weighted signal
// combination and ranked best-first. excludeTable removes a corpus
// table from the results (pass the query's own index when querying
// corpus members, or -1). The ranking is deterministic: ties break
// toward higher containment, then higher overlap, then lower table
// index.
func (e *Engine) RankTables(q *table.Table, k, excludeTable int) []Hypothesis {
	return e.RankTablesSpan(q, k, excludeTable, nil)
}

// RankTablesSpan is RankTables with stage spans: candidate counts,
// verification counts, and scored-hypothesis counts are attributed to
// child spans of span (nil span disables tracing at no cost).
func (e *Engine) RankTablesSpan(q *table.Table, k, excludeTable int, span *obs.Span) []Hypothesis {
	if k <= 0 || q.NumCols() == 0 {
		return nil
	}
	candSpan := span.Child("candidates")
	before := Stats{Candidates: e.stats.candidates.Load(), Verified: e.stats.verified.Load()}

	// Stage 1: per eligible query column, generate candidates and keep
	// the best verified pair per candidate table.
	evidence := map[int]pairEvidence{}
	w := e.weights
	for qc := range q.Cols {
		qp := q.Profile(qc)
		if qp.Distinct == 0 || (e.minUnique > 0 && qp.Distinct < e.minUnique) {
			continue
		}
		for _, co := range e.rankCandidates(qp, excludeTable) {
			ref := e.columns[co.id]
			cp := e.profiles[co.id]
			ev := pairEvidence{
				qc:      qc,
				cc:      ref.Column,
				id:      co.id,
				overlap: co.overlap,
				found:   true,
			}
			union := qp.Distinct + cp.Distinct - co.overlap
			if union > 0 {
				ev.jac = float64(co.overlap) / float64(union)
			}
			// Overlap below the evidence floor is accidental-join noise;
			// dropping it here (on both candidate paths) is also what
			// keeps the LSH output identical to the exact scan — see
			// DefaultEvidenceJaccard.
			if ev.jac < e.minEvJac {
				continue
			}
			if qp.Distinct > 0 {
				ev.cont = float64(co.overlap) / float64(qp.Distinct)
			}
			prior := typeInformativeness[classify.JoinTypeGroup(cp.Type)]
			ev.value = prior * (w.Containment*ev.cont + w.Jaccard*ev.jac)
			if ev.better(evidence[ref.Table]) {
				evidence[ref.Table] = ev
			}
		}
	}
	after := Stats{Candidates: e.stats.candidates.Load(), Verified: e.stats.verified.Load()}
	candSpan.AddTasks(int(after.Candidates - before.Candidates))
	candSpan.AddItems(int(after.Verified - before.Verified))
	candSpan.End()

	// Stage 2: exact schema twins are hypotheses even without value
	// evidence (§6 unionability).
	key := q.SchemaKey()
	for ti, t := range e.tables {
		if ti == excludeTable || t.NumCols() == 0 {
			continue
		}
		if t.SchemaKey() == key {
			if _, ok := evidence[ti]; !ok {
				evidence[ti] = pairEvidence{qc: -1, cc: -1}
			}
		}
	}

	// Stage 3: score and rank.
	scoreSpan := span.Child("score")
	out := make([]Hypothesis, 0, len(evidence))
	for ti, ev := range evidence {
		ct := e.tables[ti]
		h := Hypothesis{Table: ti, QueryCol: -1, CandCol: -1}
		if ev.found {
			h.QueryCol, h.CandCol = ev.qc, ev.cc
			h.Overlap, h.Containment, h.Jaccard = ev.overlap, ev.cont, ev.jac
		}
		h.SameSchema = ct.NumCols() > 0 && ct.SchemaKey() == key
		h.SchemaName = normalize.SchemaNameSimilarity(q.Cols, ct.Cols)
		h.TypeCompat = e.typeCompat(q, ev, h.SameSchema)
		h.Metadata = e.metaScore(q, excludeTable, ti)
		h.Score = ev.value +
			w.SchemaName*h.SchemaName +
			w.TypeCompat*h.TypeCompat +
			w.Metadata*h.Metadata
		if h.SameSchema {
			h.Score += w.SameSchema
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score > out[j].Score {
			return true
		}
		if out[i].Score < out[j].Score {
			return false
		}
		if out[i].Containment > out[j].Containment {
			return true
		}
		if out[i].Containment < out[j].Containment {
			return false
		}
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		return out[i].Table < out[j].Table
	})
	if len(out) > k {
		out = out[:k]
	}
	scoreSpan.AddItems(len(out))
	scoreSpan.End()
	return out
}

// typeCompat scores type agreement: exact column-type identity of the
// best pair scores 1, broad-class agreement 0.5, disagreement 0;
// union-only hypotheses inherit 1 from the schema key (which embeds
// broad classes).
func (e *Engine) typeCompat(q *table.Table, ev pairEvidence, sameSchema bool) float64 {
	if !ev.found {
		if sameSchema {
			return 1
		}
		return 0
	}
	qt := q.Profile(ev.qc).Type
	ct := e.profiles[ev.id].Type
	if qt == ct {
		return 1
	}
	if qt.BroadClass() == ct.BroadClass() {
		return 0.5
	}
	return 0
}

// metaScore is the dataset-metadata signal: same dataset 1, same
// category 0.5, otherwise 0. The query's category is known only for
// corpus members (via excludeTable); external query tables fall back
// to dataset identity from table.DatasetID.
func (e *Engine) metaScore(q *table.Table, excludeTable, ti int) float64 {
	cand := e.tables[ti]
	if q.DatasetID != "" && q.DatasetID == cand.DatasetID {
		return 1
	}
	if e.meta == nil || ti >= len(e.meta) {
		return 0
	}
	qcat := ""
	if excludeTable >= 0 && excludeTable < len(e.meta) {
		qcat = e.meta[excludeTable].Category
	}
	if qcat != "" && e.meta[ti].Category == qcat {
		return 0.5
	}
	return 0
}
