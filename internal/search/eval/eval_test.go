package eval

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ogdp/internal/gen"
	"ogdp/internal/search"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestGoldenMetrics pins the oracle metrics on a seeded corpus: the
// generator, the oracle, and the engine are all deterministic, so the
// full evaluation result must reproduce byte-for-byte. Run with
// -update after an intentional scoring change.
func TestGoldenMetrics(t *testing.T) {
	c := gen.Generate(gen.SG(), 0.05, 1)
	grades := Grades(c)
	res := Evaluate(c, grades, search.Options{MinUnique: search.MinUniqueDefault}, DefaultK, 0)

	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "sg-0.05-seed1.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("metrics drifted from golden file:\n got %s\nwant %s", got, want)
	}
}

// TestEvaluateWorkerInvariance pins that the eval fan-out is
// deterministic: identical Result for 1 and 8 workers.
func TestEvaluateWorkerInvariance(t *testing.T) {
	c := gen.Generate(gen.SG(), 0.05, 1)
	grades := Grades(c)
	opts := search.Options{MinUnique: search.MinUniqueDefault}
	r1 := Evaluate(c, grades, opts, DefaultK, 1)
	r8 := Evaluate(c, grades, opts, DefaultK, 8)
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("eval differs across worker counts:\n1: %+v\n8: %+v", r1, r8)
	}
}

// TestLSHPathQualityAndWork pins the tradeoff the ISSUE names: at the
// recall-safe banding the LSH path matches the exact path's quality
// metrics on a study corpus while verifying strictly fewer candidates.
func TestLSHPathQualityAndWork(t *testing.T) {
	c := gen.Generate(gen.SG(), 0.05, 1)
	grades := Grades(c)
	exact := Evaluate(c, grades, search.Options{
		MinUnique: search.MinUniqueDefault, ExactCutoff: math.MaxInt}, DefaultK, 0)
	lsh := Evaluate(c, grades, search.Options{
		MinUnique: search.MinUniqueDefault, ExactCutoff: 1}, DefaultK, 0)
	if exact.Path != "exact" || lsh.Path != "lsh" {
		t.Fatalf("paths = %s/%s", exact.Path, lsh.Path)
	}
	if lsh.NDCG < exact.NDCG {
		t.Errorf("LSH NDCG %.4f below exact %.4f at the recall-safe banding", lsh.NDCG, exact.NDCG)
	}
	if lsh.Verified >= exact.Verified {
		t.Errorf("LSH verified %d >= exact %d", lsh.Verified, exact.Verified)
	}
}

func TestGradesShape(t *testing.T) {
	c := gen.Generate(gen.SG(), 0.05, 1)
	g := Grades(c)
	if len(g) != len(c.Metas) {
		t.Fatalf("grades rows = %d, tables = %d", len(g), len(c.Metas))
	}
	anyRelevant := false
	for q := range g {
		if g[q][q] != 0 {
			t.Errorf("diagonal grade [%d][%d] = %d", q, q, g[q][q])
		}
		for _, v := range g[q] {
			if v < 0 || v > 2 {
				t.Fatalf("grade out of range: %d", v)
			}
			if v > 0 {
				anyRelevant = true
			}
		}
	}
	if !anyRelevant {
		t.Error("oracle graded no pair relevant on a generated corpus")
	}
}
