// Package eval scores the ranked table-search engine against the
// generator's planted ground truth. Because internal/gen plants its
// integration structure on purpose — entity-key joins, date-key joins
// between event statistics, partition families, periodic and duplicate
// republications — the labeling oracle (gen.Truth) can grade every
// query/candidate table pair without manual annotation, which is the
// evaluation design of Glass et al.'s table-search corpus (PAPERS.md)
// run over this repo's synthetic portals. The package reports the
// standard ranked-retrieval metrics — precision@k, recall@k, NDCG@k —
// macro-averaged over the query tables that have at least one
// relevant partner, plus the engine's candidate/verification work
// counters, so quality and work can be compared across candidate
// generation settings (exact scan vs LSH band configurations).
package eval

import (
	"context"
	"math"

	"ogdp/internal/gen"
	"ogdp/internal/parallel"
	"ogdp/internal/search"
)

// DefaultK is the ranking depth the study evaluates at.
const DefaultK = 10

// Grades builds the ground-truth relevance matrix for a generated
// corpus: grades[q][c] is the oracle's integration grade of candidate
// table c for query table q (2 useful, 1 defensible, 0 irrelevant;
// the diagonal is 0).
func Grades(c *gen.Corpus) [][]int {
	o := gen.Truth(c)
	n := len(c.Metas)
	out := make([][]int, n)
	for q := 0; q < n; q++ {
		row := make([]int, n)
		for t := 0; t < n; t++ {
			row[t] = o.IntegrationGrade(q, t)
		}
		out[q] = row
	}
	return out
}

// SearchMetas projects a generated corpus's provenance into the
// search engine's metadata signals.
func SearchMetas(c *gen.Corpus) []search.TableMeta {
	out := make([]search.TableMeta, len(c.Metas))
	for i, m := range c.Metas {
		out[i] = search.TableMeta{DatasetID: m.Dataset, Category: m.Category}
	}
	return out
}

// Result is one evaluation run: quality metrics macro-averaged over
// the evaluable queries, plus the engine's work counters.
type Result struct {
	// Path is the candidate-generation strategy the engine used
	// ("exact" or "lsh").
	Path string `json:"path"`
	// K is the ranking depth evaluated.
	K int `json:"k"`
	// Tables is the corpus size; Queries counts the query tables with
	// at least one relevant partner (the macro-average denominator).
	Tables  int `json:"tables"`
	Queries int `json:"queries"`
	// IndexedColumns is the engine's index size.
	IndexedColumns int `json:"indexed_columns"`
	// Precision, Recall, and NDCG are the @k metrics, macro-averaged.
	Precision float64 `json:"precision_at_k"`
	Recall    float64 `json:"recall_at_k"`
	NDCG      float64 `json:"ndcg_at_k"`
	// Candidates and Verified are the engine's cumulative work
	// counters over the whole run: candidate columns generated and
	// exact-overlap verifications performed.
	Candidates uint64 `json:"candidates"`
	Verified   uint64 `json:"verified"`
}

// Evaluate ranks every corpus table against the rest of the corpus
// under opts and scores the rankings against the grades matrix (from
// Grades). Queries fan out over the worker pool; results are
// deterministic for any worker count.
func Evaluate(c *gen.Corpus, grades [][]int, opts search.Options, k, workers int) Result {
	if k <= 0 {
		k = DefaultK
	}
	tables := c.Tables()
	if opts.Meta == nil {
		opts.Meta = SearchMetas(c)
	}
	eng := search.NewWithOptions(tables, opts)

	type perQuery struct {
		evaluable bool
		p, r, n   float64
	}
	rows := make([]perQuery, len(tables))
	parallel.Must(parallel.ForEach(parallel.WithPool(context.Background(), "search-eval"),
		len(tables), workers, func(q int) {
			relevant, ideal := relevanceOf(grades[q])
			if relevant == 0 {
				return
			}
			hs := eng.RankTables(tables[q], k, q)
			hits, dcg := 0, 0.0
			for i, h := range hs {
				g := grades[q][h.Table]
				if g > 0 {
					hits++
				}
				dcg += float64(g) / math.Log2(float64(i)+2)
			}
			rows[q] = perQuery{
				evaluable: true,
				p:         float64(hits) / float64(k),
				r:         float64(hits) / float64(relevant),
				n:         dcg / idealDCG(ideal, k),
			}
		}))

	res := Result{
		Path:           eng.Path(),
		K:              k,
		Tables:         len(tables),
		IndexedColumns: eng.NumIndexed(),
	}
	for _, row := range rows {
		if !row.evaluable {
			continue
		}
		res.Queries++
		res.Precision += row.p
		res.Recall += row.r
		res.NDCG += row.n
	}
	if res.Queries > 0 {
		res.Precision /= float64(res.Queries)
		res.Recall /= float64(res.Queries)
		res.NDCG /= float64(res.Queries)
	}
	st := eng.Stats()
	res.Candidates = st.Candidates
	res.Verified = st.Verified
	return res
}

// relevanceOf summarizes one grades row: how many candidates are
// relevant (grade > 0), and the grade histogram [count of grade 1,
// count of grade 2] for the ideal-DCG computation.
func relevanceOf(row []int) (relevant int, hist [3]int) {
	for _, g := range row {
		if g > 0 {
			relevant++
		}
		if g >= 0 && g < len(hist) {
			hist[g]++
		}
	}
	return relevant, hist
}

// idealDCG is the DCG of the best possible ranking at depth k: all
// grade-2 candidates first, then grade-1.
func idealDCG(hist [3]int, k int) float64 {
	dcg, pos := 0.0, 0
	for g := 2; g >= 1; g-- {
		for i := 0; i < hist[g] && pos < k; i++ {
			dcg += float64(g) / math.Log2(float64(pos)+2)
			pos++
		}
	}
	if dcg > 0 {
		return dcg
	}
	return 1 // unreachable for evaluable queries; guards division
}
