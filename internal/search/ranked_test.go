package search

import (
	"fmt"
	"math"
	"reflect"
	"strconv"
	"testing"

	"ogdp/internal/gen"
	"ogdp/internal/obs"
	"ogdp/internal/table"
)

// rankCorpus builds a small corpus with planted structure: a master
// table, a transaction table sharing its id column, a schema twin of
// the transaction table, and an unrelated table.
func rankCorpus() []*table.Table {
	master := table.New("master.csv", []string{"station_id", "name"})
	for i := 0; i < 30; i++ {
		master.AppendRow([]string{strconv.Itoa(1000 + i), fmt.Sprintf("station %d", i)})
	}
	tx := table.New("tx-2019.csv", []string{"station_id", "count"})
	twin := table.New("tx-2020.csv", []string{"station_id", "count"})
	for i := 0; i < 30; i++ {
		tx.AppendRow([]string{strconv.Itoa(1000 + i), strconv.Itoa(i * 3)})
		twin.AppendRow([]string{strconv.Itoa(1000 + i), strconv.Itoa(i * 5)})
	}
	other := table.New("other.csv", []string{"color", "weight"})
	for i := 0; i < 30; i++ {
		other.AppendRow([]string{fmt.Sprintf("color-%d", i), strconv.Itoa(i)})
	}
	return []*table.Table{master, tx, twin, other}
}

func TestRankTablesOrdersPlantedStructure(t *testing.T) {
	corpus := rankCorpus()
	e := New(corpus, MinUniqueDefault)
	hs := e.RankTables(corpus[1], 10, 1) // query: tx-2019.csv

	if len(hs) < 2 {
		t.Fatalf("RankTables = %d hypotheses, want at least master and twin", len(hs))
	}
	// The schema twin shares values AND the exact schema; it must come
	// first, with the master (value overlap only) next. The unrelated
	// table shares nothing and must be absent.
	if hs[0].Table != 2 || !hs[0].SameSchema {
		t.Errorf("top hypothesis = %+v, want schema twin table 2", hs[0])
	}
	if hs[1].Table != 0 || hs[1].SameSchema {
		t.Errorf("second hypothesis = %+v, want master table 0", hs[1])
	}
	for _, h := range hs {
		if h.Table == 3 {
			t.Errorf("unrelated table ranked: %+v", h)
		}
		if h.Table == 1 {
			t.Errorf("excluded query table ranked: %+v", h)
		}
	}
	if hs[0].QueryCol != 0 || hs[0].CandCol != 0 || hs[0].Overlap != 30 {
		t.Errorf("twin join evidence = %+v, want station_id~station_id overlap 30", hs[0])
	}
	if hs[0].Containment < 1 {
		t.Errorf("twin containment = %v, want 1", hs[0].Containment)
	}
}

func TestRankTablesDeterministicAcrossBuilds(t *testing.T) {
	corpus := rankCorpus()
	a := New(corpus, MinUniqueDefault)
	b := NewWithOptions(corpus, Options{MinUnique: MinUniqueDefault})
	for ti := range corpus {
		ha := a.RankTables(corpus[ti], 10, ti)
		hb := b.RankTables(corpus[ti], 10, ti)
		if !reflect.DeepEqual(ha, hb) {
			t.Errorf("table %d: rankings differ across engine builds:\n%+v\n%+v", ti, ha, hb)
		}
	}
}

// TestLSHAgreesWithExactOnStudyCorpora pins the recall-safe claim:
// at the default 64×2 banding the LSH candidate path returns the same
// ranked hypothesis lists as the exhaustive scan on a generated study
// corpus, while performing strictly less verification work.
func TestLSHAgreesWithExactOnStudyCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a corpus")
	}
	c := gen.Generate(gen.SG(), 0.1, 1)
	tables := c.Tables()
	exact := NewWithOptions(tables, Options{MinUnique: MinUniqueDefault, ExactCutoff: math.MaxInt})
	lsh := NewWithOptions(tables, Options{MinUnique: MinUniqueDefault, ExactCutoff: 1})
	if exact.Path() != "exact" || lsh.Path() != "lsh" {
		t.Fatalf("paths = %s/%s, want exact/lsh", exact.Path(), lsh.Path())
	}
	for ti := range tables {
		he := exact.RankTables(tables[ti], 10, ti)
		hl := lsh.RankTables(tables[ti], 10, ti)
		if !reflect.DeepEqual(he, hl) {
			t.Errorf("table %d (%s): LSH ranking differs from exact:\nexact %+v\nlsh   %+v",
				ti, tables[ti].Name, he, hl)
		}
	}
	se, sl := exact.Stats(), lsh.Stats()
	if sl.Verified >= se.Verified {
		t.Errorf("LSH verified %d >= exact %d: banding saved no work", sl.Verified, se.Verified)
	}
}

// TestMegaCorpusLSHDoesLessWork pins the sublinearity claim on a
// worst case for the exact path: every column shares one common value,
// so the postings scan touches every indexed column for every query,
// while banding only surfaces the genuinely similar ones.
func TestMegaCorpusLSHDoesLessWork(t *testing.T) {
	var corpus []*table.Table
	const n = 600
	for i := 0; i < n; i++ {
		tb := table.New(fmt.Sprintf("t%d.csv", i), []string{"id"})
		tb.AppendRow([]string{"common"}) // shared by every column
		for r := 0; r < 20; r++ {
			tb.AppendRow([]string{fmt.Sprintf("v-%d-%d", i, r)})
		}
		corpus = append(corpus, tb)
	}
	exact := NewWithOptions(corpus, Options{ExactCutoff: math.MaxInt})
	lsh := NewWithOptions(corpus, Options{ExactCutoff: 1})

	exact.RankTables(corpus[0], 10, 0)
	lsh.RankTables(corpus[0], 10, 0)

	se, sl := exact.Stats(), lsh.Stats()
	if se.Verified != n-1 {
		t.Fatalf("exact path verified %d candidates, want %d (every other column)", se.Verified, n-1)
	}
	if sl.Verified*10 > se.Verified {
		t.Errorf("LSH verified %d of %d: banding should prune the one-value overlaps", sl.Verified, se.Verified)
	}
}

// TestSkipLedger pins the index-coverage bugfix: columns skipped at
// the minUnique gate and empty columns are both counted, and the
// counts surface through the obs registry.
func TestSkipLedger(t *testing.T) {
	low := table.New("low.csv", []string{"flag", "id"})
	for i := 0; i < 20; i++ {
		low.AppendRow([]string{strconv.Itoa(i % 2), strconv.Itoa(i)})
	}
	empty := table.New("empty.csv", []string{"blank", "id"})
	for i := 0; i < 20; i++ {
		empty.AppendRow([]string{"", strconv.Itoa(100 + i)})
	}
	reg := obs.NewRegistry()
	e := NewWithOptions([]*table.Table{low, empty},
		Options{MinUnique: MinUniqueDefault, Registry: reg})

	if e.NumIndexed() != 2 {
		t.Errorf("indexed %d columns, want the two id columns", e.NumIndexed())
	}
	sk := e.Skips()
	if sk.MinUnique != 1 || sk.Empty != 1 {
		t.Errorf("Skips = %+v, want MinUnique:1 Empty:1", sk)
	}
	if v := reg.Counter("ogdp_search_index_skipped_total", "", "reason", "below-min-unique").Value(); v != 1 {
		t.Errorf("below-min-unique counter = %d", v)
	}
	if v := reg.Counter("ogdp_search_index_skipped_total", "", "reason", "no-values").Value(); v != 1 {
		t.Errorf("no-values counter = %d", v)
	}
	if v := reg.Counter("ogdp_search_index_columns_total", "").Value(); v != 2 {
		t.Errorf("indexed-columns counter = %d", v)
	}
}

// TestRankCountersThroughRegistry pins that ranked-query work is
// mirrored into the registry with the path label.
func TestRankCountersThroughRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	corpus := rankCorpus()
	e := NewWithOptions(corpus, Options{MinUnique: MinUniqueDefault, Registry: reg})
	e.RankTables(corpus[1], 10, 1)
	st := e.Stats()
	if st.Queries == 0 || st.Verified == 0 {
		t.Fatalf("Stats = %+v, want nonzero work", st)
	}
	if v := reg.Counter("ogdp_search_rank_queries_total", "", "path", "exact").Value(); uint64(v) != st.Queries {
		t.Errorf("queries counter = %d, stats %d", v, st.Queries)
	}
	if v := reg.Counter("ogdp_search_rank_verified_total", "", "path", "exact").Value(); uint64(v) != st.Verified {
		t.Errorf("verified counter = %d, stats %d", v, st.Verified)
	}
}

func TestRankTablesEmptyAndBounds(t *testing.T) {
	corpus := rankCorpus()
	e := New(corpus, MinUniqueDefault)
	if hs := e.RankTables(corpus[1], 0, 1); hs != nil {
		t.Errorf("k=0 returned %+v", hs)
	}
	empty := table.New("e.csv", nil)
	if hs := e.RankTables(empty, 5, -1); hs != nil {
		t.Errorf("empty query returned %+v", hs)
	}
	if hs := e.RankTables(corpus[1], 1, 1); len(hs) != 1 {
		t.Errorf("k=1 returned %d hypotheses", len(hs))
	}
}
