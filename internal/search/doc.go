// Package search provides the query-table discovery operations the
// dataset search systems discussed in the paper (§2, §5–§6) expose —
// Auctus, Toronto Open Data Search, JOSIE — in two tiers.
//
// The exact tier is the original scanner: given a query table — not
// necessarily part of the corpus — find the columns it can join with,
// ranked top-k by exact value overlap (JOSIE's semantics, the ground
// truth behind the §5 joinability study), and the tables it can union
// with (§4). An inverted index over distinct column values answers
// those queries without rescanning the corpus.
//
// The ranked tier (RankTables) turns the scanner into a retrieval
// engine: it scores whole candidate tables against the query table
// and returns a ranked Hypothesis list, blending value evidence
// (containment and Jaccard of the best joinable column pair, weighted
// by how informative the column's type group is — the paper's §5
// observation that incremental-integer overlap is meaningless while
// categorical overlap is strong evidence), schema-name similarity
// (internal/normalize), type compatibility, union compatibility over
// normalized schema keys, and dataset-metadata affinity. Weights live
// in HypothesisWeights; scoring is pure arithmetic over index state,
// so rankings are deterministic and byte-identical across worker
// counts.
//
// Candidate generation has two paths with identical output. Small
// corpora (below Options.ExactCutoff columns) scan the inverted
// index exhaustively. Larger corpora go through an LSH banding stage
// over the engine's MinHash signatures (internal/minhash): only
// columns sharing a band bucket with the query column are verified
// against the index, which makes candidate generation sublinear in
// corpus size. The recall-safe default banding (64 bands × 2 rows)
// together with the evidence floor (DefaultEvidenceJaccard — overlap
// thinner than it is accidental-join noise either way) keeps the LSH
// path's rankings byte-identical to the exact path's on the study
// corpora; the eval harness (internal/search/eval) measures both
// quality and verification work for every band setting.
package search
