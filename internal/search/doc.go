// Package search provides the query-table discovery operations the
// dataset search systems discussed in the paper (§2, §5–§6) expose —
// Auctus, Toronto Open Data Search, JOSIE: given a query table — not
// necessarily part of the corpus — find the columns it can join with,
// ranked top-k by exact value overlap (JOSIE's semantics, the ground
// truth behind the §5 joinability study), and the tables it can union
// with (§4). An inverted index over distinct column values answers
// queries without rescanning the corpus.
package search
