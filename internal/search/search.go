package search

import (
	"sort"

	"ogdp/internal/join"
	"ogdp/internal/minhash"
	"ogdp/internal/table"
)

// ColumnRef identifies a corpus column.
type ColumnRef struct {
	Table  int
	Column int
}

// Result is one joinability search hit.
type Result struct {
	Ref ColumnRef
	// Overlap is the exact intersection size of distinct values.
	Overlap int
	// Jaccard is the exact Jaccard similarity.
	Jaccard float64
	// Containment is |Q ∩ C| / |Q|: how much of the query column the
	// candidate covers (the LSH-Ensemble metric, more robust for
	// asymmetric sizes).
	Containment float64
}

// Engine is an inverted index over a corpus's eligible columns, with
// an optional LSH candidate stage for ranked retrieval (see ranked.go).
type Engine struct {
	tables    []*table.Table
	minUnique int
	columns   []ColumnRef
	distinct  []int
	profiles  []*table.ColumnProfile // indexed-column profiles, by id
	postings  map[uint64][]int32     // value hash -> ids into columns

	// Ranked-retrieval state (ranked.go).
	meta     []TableMeta
	weights  HypothesisWeights
	sigSize  int
	minEvJac float64
	lsh      *minhash.Index
	skips    SkipStats
	stats    engineStats
}

// New indexes all columns of the corpus with at least minUnique
// distinct values (pass join.DefaultMinUnique for the paper's filter;
// minUnique ≤ 0 indexes everything).
func New(tables []*table.Table, minUnique int) *Engine {
	return NewWithOptions(tables, Options{MinUnique: minUnique, ExactCutoff: DefaultExactCutoff})
}

// NewWithOptions indexes the corpus under explicit ranked-retrieval
// options; see Options for the defaults the zero value selects.
func NewWithOptions(tables []*table.Table, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		tables:    tables,
		minUnique: opts.MinUnique,
		postings:  make(map[uint64][]int32),
		meta:      opts.Meta,
		weights:   opts.Weights,
		sigSize:   opts.SignatureSize,
		minEvJac:  opts.EvidenceJaccard,
	}
	for ti := range tables {
		e.indexTableColumns(ti)
	}
	// Candidate generation goes through LSH banding only when the
	// corpus is large enough for banding to beat the exact postings
	// scan; small corpora keep the exact path (and skip the signature
	// build entirely).
	if len(e.columns) >= opts.ExactCutoff {
		e.lsh = minhash.NewIndex(opts.Bands, opts.Rows)
		for _, p := range e.profiles {
			e.lsh.Add(minhash.Sketch(p.ValueHashes(), opts.SignatureSize))
		}
	}
	e.registerMetrics(opts.Registry)
	return e
}

// NumIndexed returns how many columns the engine currently indexes
// (columns of removed tables no longer count).
func (e *Engine) NumIndexed() int {
	n := 0
	for _, p := range e.profiles {
		if p != nil {
			n++
		}
	}
	return n
}

// overlaps computes the exact intersection size between the query
// column's distinct values and every indexed column sharing at least
// one value.
func (e *Engine) overlaps(q *table.ColumnProfile, exclude int) map[int32]int {
	counts := make(map[int32]int)
	for _, h := range q.ValueHashes() {
		for _, id := range e.postings[h] {
			if exclude >= 0 && e.columns[id].Table == exclude {
				continue
			}
			counts[id]++
		}
	}
	return counts
}

// TopKJoinable returns the k corpus columns with the largest exact
// value overlap with the query column (JOSIE's top-k overlap set
// similarity search). excludeTable removes a corpus table from the
// results (pass the query's own index when querying corpus members,
// or -1). Ties break toward higher Jaccard, then lower ids.
func (e *Engine) TopKJoinable(query *table.Table, col, k, excludeTable int) []Result {
	q := query.Profile(col)
	if q.Distinct == 0 || k <= 0 {
		return nil
	}
	counts := e.overlaps(q, excludeTable)
	out := make([]Result, 0, len(counts))
	for id, inter := range counts {
		out = append(out, e.result(id, q, inter))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		if out[i].Jaccard > out[j].Jaccard {
			return true
		}
		if out[i].Jaccard < out[j].Jaccard {
			return false
		}
		if out[i].Ref.Table != out[j].Ref.Table {
			return out[i].Ref.Table < out[j].Ref.Table
		}
		return out[i].Ref.Column < out[j].Ref.Column
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// JoinableFor returns all corpus columns whose Jaccard similarity with
// the query column is at least minJaccard (the paper's thresholded
// search), sorted by Jaccard descending.
func (e *Engine) JoinableFor(query *table.Table, col int, minJaccard float64, excludeTable int) []Result {
	q := query.Profile(col)
	if q.Distinct == 0 {
		return nil
	}
	counts := e.overlaps(q, excludeTable)
	var out []Result
	for id, inter := range counts {
		r := e.result(id, q, inter)
		if r.Jaccard >= minJaccard {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Jaccard > out[j].Jaccard {
			return true
		}
		if out[i].Jaccard < out[j].Jaccard {
			return false
		}
		if out[i].Ref.Table != out[j].Ref.Table {
			return out[i].Ref.Table < out[j].Ref.Table
		}
		return out[i].Ref.Column < out[j].Ref.Column
	})
	return out
}

func (e *Engine) result(id int32, q *table.ColumnProfile, inter int) Result {
	union := q.Distinct + e.distinct[id] - inter
	r := Result{Ref: e.columns[id], Overlap: inter}
	if union > 0 {
		r.Jaccard = float64(inter) / float64(union)
	}
	if q.Distinct > 0 {
		r.Containment = float64(inter) / float64(q.Distinct)
	}
	return r
}

// UnionableFor returns the corpus tables sharing the query table's
// exact schema (column names and broad types, in order).
func (e *Engine) UnionableFor(query *table.Table, excludeTable int) []int {
	key := query.SchemaKey()
	var out []int
	for ti, t := range e.tables {
		if ti == excludeTable {
			continue
		}
		if t.NumCols() > 0 && t.SchemaKey() == key {
			out = append(out, ti)
		}
	}
	return out
}

// MinUniqueDefault re-exports the paper's distinct-value filter for
// convenience.
const MinUniqueDefault = join.DefaultMinUnique
