package report

import (
	"strings"
	"testing"

	"ogdp/internal/core"
	"ogdp/internal/gen"
)

var cached *core.StudyResult

func study(t *testing.T) *core.StudyResult {
	t.Helper()
	if cached == nil {
		cached = core.Run(gen.Profiles(), core.Options{
			Scale: 0.08, Seed: 3, MaxFDTables: 25, SamplePerCell: 4, UnionSamples: 8,
		})
	}
	return cached
}

func TestAllRendersEverySection(t *testing.T) {
	var b strings.Builder
	All(&b, study(t))
	out := b.String()
	wantSections := []string{
		"Table 1:", "Figure 1:", "Figure 2:", "Table 2:", "Figure 3:",
		"Figure 4:", "Table 3:", "Figure 5:", "Table 4:", "Figure 6:",
		"Table 5:", "Figure 7:", "Table 6:", "Figure 8:", "Table 7:",
		"Table 8:", "Table 9:", "Table 10:", "Table 11:", "Union pair labels",
	}
	for _, s := range wantSections {
		if !strings.Contains(out, s) {
			t.Errorf("output missing section %q", s)
		}
	}
	for _, portal := range []string{"SG", "CA", "UK", "US"} {
		if !strings.Contains(out, portal) {
			t.Errorf("output missing portal %s", portal)
		}
	}
	if !strings.Contains(out, "paper:") {
		t.Error("output missing paper reference notes")
	}
}

func TestSGExcludedFromLabelTables(t *testing.T) {
	var b strings.Builder
	Table7(&b, study(t))
	// The header row of Table 7 must not include SG (paper §5.3.1).
	lines := strings.Split(b.String(), "\n")
	for _, ln := range lines {
		if strings.Contains(ln, "Table 7") {
			continue
		}
		if strings.Contains(ln, "SG") {
			t.Errorf("Table 7 includes SG: %q", ln)
		}
	}
}

func TestSummary(t *testing.T) {
	var b strings.Builder
	Summary(&b, study(t))
	out := b.String()
	if !strings.Contains(out, "joinable tables") || !strings.Contains(out, "expansion median") {
		t.Errorf("summary incomplete:\n%s", out)
	}
}
