// Package report renders every table and figure of the paper's
// evaluation from a core.StudyResult, printing measured values next to
// the values the paper reports so the reproduction can be compared at
// a glance. Absolute numbers are not expected to match (the corpus is
// a calibrated synthetic stand-in, scaled down); shapes — who wins, by
// what rough factor, where crossovers fall — should.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ogdp/internal/classify"
	"ogdp/internal/core"
	"ogdp/internal/stats"
)

// portalOrder is the paper's column order.
var portalOrder = []string{"SG", "CA", "UK", "US"}

// byName indexes portal results in paper order.
func byName(res *core.StudyResult) []core.PortalResult {
	out := make([]core.PortalResult, 0, len(portalOrder))
	for _, name := range portalOrder {
		for _, p := range res.Portals {
			if p.Portal == name {
				out = append(out, p)
			}
		}
	}
	if len(out) == 0 {
		return res.Portals
	}
	return out
}

// writer wraps an io.Writer with formatting helpers.
type writer struct{ w io.Writer }

func (w writer) printf(format string, args ...interface{}) {
	fmt.Fprintf(w.w, format, args...)
}

func (w writer) section(title string) {
	fmt.Fprintf(w.w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

func (w writer) row(label string, cells ...string) {
	fmt.Fprintf(w.w, "  %-46s", label)
	for _, c := range cells {
		fmt.Fprintf(w.w, " %14s", c)
	}
	fmt.Fprintln(w.w)
}

func pct(f float64) string      { return fmt.Sprintf("%.1f%%", f*100) }
func count(n int) string        { return stats.FormatCount(float64(n)) }
func f2(f float64) string       { return fmt.Sprintf("%.2f", f) }
func mib(b int64) string        { return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20)) }
func paperNote(s string) string { return "(paper: " + s + ")" }

// All renders every table and figure to w.
func All(w io.Writer, res *core.StudyResult) {
	Table1(w, res)
	Figure1(w, res)
	Figure2(w, res)
	Table2(w, res)
	Figure3(w, res)
	Figure4(w, res)
	Table3(w, res)
	Figure5(w, res)
	Table4(w, res)
	Figure6(w, res)
	Table5(w, res)
	Figure7(w, res)
	Table6(w, res)
	Figure8(w, res)
	Table7(w, res)
	Table8(w, res)
	Table9(w, res)
	Table10(w, res)
	Table11(w, res)
	UnionLabels(w, res)
	PredictorReport(w, res)
	Supplementary(w, res)
	Extensions(w, res)
}

// Table1 prints portal size statistics.
func Table1(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Table 1: Portal size statistics " + paperNote("US largest: 1933 GiB raw, 433 GiB compressed; CA only 41% downloadable"))
	header(w, ps)
	w.row("total # datasets", mapCells(ps, func(p core.PortalResult) string { return count(p.Sizes.Datasets) })...)
	w.row("avg # tables per dataset", mapCells(ps, func(p core.PortalResult) string { return f2(p.Sizes.AvgTablesPerDS) })...)
	w.row("max # tables per dataset", mapCells(ps, func(p core.PortalResult) string { return count(p.Sizes.MaxTablesPerDS) })...)
	w.row("total # tables", mapCells(ps, func(p core.PortalResult) string { return count(p.Sizes.Tables) })...)
	w.row("total # downloadable tables", mapCells(ps, func(p core.PortalResult) string { return count(p.Sizes.Downloadable) })...)
	w.row("total # readable tables", mapCells(ps, func(p core.PortalResult) string { return count(p.Sizes.Readable) })...)
	w.row("total # columns", mapCells(ps, func(p core.PortalResult) string { return count(p.Sizes.Columns) })...)
	w.row("total size", mapCells(ps, func(p core.PortalResult) string { return mib(p.Sizes.TotalBytes) })...)
	if ps[0].Sizes.CompressedBytes > 0 {
		w.row("total compressed size", mapCells(ps, func(p core.PortalResult) string { return mib(p.Sizes.CompressedBytes) })...)
		w.row("compression ratio", mapCells(ps, func(p core.PortalResult) string {
			if p.Sizes.CompressedBytes == 0 {
				return "-"
			}
			return fmt.Sprintf("1:%.1f", float64(p.Sizes.TotalBytes)/float64(p.Sizes.CompressedBytes))
		})...)
	}
	w.row("size of largest table", mapCells(ps, func(p core.PortalResult) string { return mib(p.Sizes.LargestTableBytes) })...)
}

func header(w writer, ps []core.PortalResult) {
	cells := make([]string, len(ps))
	for i, p := range ps {
		cells[i] = p.Portal
	}
	w.row("", cells...)
}

func mapCells(ps []core.PortalResult, f func(core.PortalResult) string) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = f(p)
	}
	return out
}

// Figure1 prints the size-percentile curves.
func Figure1(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	w.section("Figure 1: Cut-off table size and cumulative size per percentile " + paperNote("dropping the top 10% shrinks US from 1.9TB to 24GB"))
	ps := byName(res)
	header(w, ps)
	if len(ps) == 0 || len(ps[0].SizePercentiles) == 0 {
		return
	}
	for i := range ps[0].SizePercentiles {
		p := ps[0].SizePercentiles[i].Percentile
		w.row(fmt.Sprintf("p%.0f cumulative", p), mapCells(ps, func(pr core.PortalResult) string {
			return mib(pr.SizePercentiles[i].Cumulative)
		})...)
	}
}

// Figure2 prints the UK growth curve.
func Figure2(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	w.section("Figure 2: Annual growth of cumulative UK portal size " + paperNote("slow, roughly linear growth"))
	for _, p := range byName(res) {
		if p.Portal != "UK" {
			continue
		}
		for _, g := range p.Growth {
			bar := strings.Repeat("#", int(40*float64(g.Cumulative)/float64(p.Growth[len(p.Growth)-1].Cumulative)))
			w.printf("  %d %10s %s\n", g.Year, mib(g.Cumulative), bar)
		}
	}
}

// Table2 prints table size statistics.
func Table2(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Table 2: Table size statistics " + paperNote("median cols 4-10; median rows 86-447, US largest"))
	header(w, ps)
	w.row("avg # columns per table", mapCells(ps, func(p core.PortalResult) string { return f2(p.TableSizes.AvgCols) })...)
	w.row("median # columns per table", mapCells(ps, func(p core.PortalResult) string { return fmt.Sprintf("%.0f", p.TableSizes.MedianCols) })...)
	w.row("max # columns per table", mapCells(ps, func(p core.PortalResult) string { return count(p.TableSizes.MaxCols) })...)
	w.row("avg # rows per table", mapCells(ps, func(p core.PortalResult) string { return stats.FormatCount(p.TableSizes.AvgRows) })...)
	w.row("median # rows per table", mapCells(ps, func(p core.PortalResult) string { return fmt.Sprintf("%.0f", p.TableSizes.MedianRows) })...)
	w.row("max # rows per table", mapCells(ps, func(p core.PortalResult) string { return count(p.TableSizes.MaxRows) })...)
}

// Figure3 prints row/column histograms.
func Figure3(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Figure 3: Distribution of table sizes (tuples, columns) " + paperNote("most tables <1000 rows; >95% of tables ≤50 columns"))
	for _, p := range ps {
		w.printf("  %s columns: ", p.Portal)
		for _, b := range p.ColsHist {
			w.printf("[%g,%g):%d ", b.Lo, b.Hi, b.Count)
		}
		w.printf("\n  %s rows:    ", p.Portal)
		for _, b := range p.RowsHist {
			w.printf("[%s,%s):%d ", stats.FormatCount(b.Lo), stats.FormatCount(b.Hi), b.Count)
		}
		w.printf("\n")
	}
}

// Figure4 prints null value analysis.
func Figure4(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Figure 4: Null value ratios " + paperNote("SG nearly null-free; elsewhere half of columns have nulls, ~3% entirely null"))
	header(w, ps)
	w.row("% columns with nulls", mapCells(ps, func(p core.PortalResult) string { return pct(p.Nulls.FracColsWithNulls) })...)
	w.row("% columns > half null", mapCells(ps, func(p core.PortalResult) string { return pct(p.Nulls.FracColsHalfEmpty) })...)
	w.row("% columns entirely null", mapCells(ps, func(p core.PortalResult) string { return pct(p.Nulls.FracColsAllNull) })...)
}

// Table3 prints metadata availability.
func Table3(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Table 3: Metadata file availability " + paperNote("SG 100% structured; US 0/0/27/73; UK 88% lacking"))
	header(w, ps)
	w.row("structured", mapCells(ps, func(p core.PortalResult) string { return pct(p.Metadata.Structured) })...)
	w.row("unstructured", mapCells(ps, func(p core.PortalResult) string { return pct(p.Metadata.Unstructured) })...)
	w.row("outside portal", mapCells(ps, func(p core.PortalResult) string { return pct(p.Metadata.Outside) })...)
	w.row("lacking", mapCells(ps, func(p core.PortalResult) string { return pct(p.Metadata.Lacking) })...)
}

// Figure5 prints unique-count and uniqueness-score distributions.
func Figure5(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Figure 5: Unique value counts and uniqueness scores " + paperNote("median uniques 10-30 despite hundreds of rows"))
	header(w, ps)
	w.row("median unique values per column", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%.0f", p.Uniqueness["all"].MedianUnique)
	})...)
	w.row("median uniqueness score", mapCells(ps, func(p core.PortalResult) string {
		return f2(p.Uniqueness["all"].MedianUniqueness)
	})...)
	w.row("% columns with score < 0.1", mapCells(ps, func(p core.PortalResult) string {
		return pct(p.Uniqueness["all"].FracBelowTenthSco)
	})...)
}

// Table4 prints uniqueness statistics by broad type.
func Table4(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Table 4: Uniqueness statistics by column class " + paperNote("text repeats far more than numeric; e.g. US medians 14 vs 55"))
	header(w, ps)
	for _, class := range []string{"text", "number", "all"} {
		w.row("# "+class+" columns", mapCells(ps, func(p core.PortalResult) string { return count(p.Uniqueness[class].Columns) })...)
		w.row("  median unique values", mapCells(ps, func(p core.PortalResult) string {
			return fmt.Sprintf("%.0f", p.Uniqueness[class].MedianUnique)
		})...)
		w.row("  median uniqueness score", mapCells(ps, func(p core.PortalResult) string {
			return f2(p.Uniqueness[class].MedianUniqueness)
		})...)
	}
}

// Figure6 prints the candidate key size distribution.
func Figure6(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Figure 6: Minimum candidate key sizes " + paperNote("33-58% lack a single-column key; ~10% lack any key ≤ 3"))
	header(w, ps)
	for size := 1; size <= 3; size++ {
		s := size
		w.row(fmt.Sprintf("min key size %d", s), mapCells(ps, func(p core.PortalResult) string {
			return pctOfDist(p.KeySizeDist, s)
		})...)
	}
	w.row("no key of size <= 3", mapCells(ps, func(p core.PortalResult) string {
		return pctOfDist(p.KeySizeDist, 0)
	})...)
}

func pctOfDist(dist []int, idx int) string {
	total := 0
	for _, n := range dist {
		total += n
	}
	if total == 0 || idx >= len(dist) {
		return "-"
	}
	return pct(float64(dist[idx]) / float64(total))
}

// Table5 prints FD and decomposition statistics.
func Table5(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Table 5: FD and BCNF decomposition statistics " + paperNote("54-84% of tables have a non-trivial FD; 2.4-3.4 sub-tables; 2.2-3.0x uniqueness gains"))
	header(w, ps)
	w.row("total # tables (subset)", mapCells(ps, func(p core.PortalResult) string { return count(p.FD.Tables) })...)
	w.row("avg # columns per table", mapCells(ps, func(p core.PortalResult) string { return f2(p.FD.AvgCols) })...)
	w.row("% tables with a non-trivial FD", mapCells(ps, func(p core.PortalResult) string { return pct(p.FD.WithFDPct) })...)
	w.row("% tables with an FD s.t. |LHS|=1", mapCells(ps, func(p core.PortalResult) string { return pct(p.FD.WithSimpleFDPct) })...)
	w.row("avg # tables after decomposition", mapCells(ps, func(p core.PortalResult) string { return f2(p.FD.AvgDecomposed) })...)
	w.row("avg # columns in partitions", mapCells(ps, func(p core.PortalResult) string { return f2(p.FD.AvgPartitionCols) })...)
	w.row("avg uniqueness gain (unrepeated cols)", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%.2fx", p.FD.AvgUniquenessGain)
	})...)
}

// Figure7 prints the decomposition count distribution.
func Figure7(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Figure 7: Number of decomposed tables " + paperNote("many tables split into 3+ sub-tables, up to 11"))
	header(w, ps)
	maxK := 1
	for _, p := range ps {
		for k := range p.FD.DecompositionDist {
			if k > maxK {
				maxK = k
			}
		}
	}
	for k := 1; k <= maxK; k++ {
		kk := k
		w.row(fmt.Sprintf("decomposed into %d", kk), mapCells(ps, func(p core.PortalResult) string {
			return fmt.Sprintf("%d", p.FD.DecompositionDist[kk])
		})...)
	}
}

// Table6 prints joinability statistics.
func Table6(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Table 6: Joinable pair statistics " + paperNote("48-66% of tables joinable; 76-82% of joinable columns are non-key"))
	header(w, ps)
	w.row("total # joinable pairs", mapCells(ps, func(p core.PortalResult) string { return count(p.Join.Pairs) })...)
	w.row("total # tables", mapCells(ps, func(p core.PortalResult) string { return count(p.Join.Tables) })...)
	w.row("# joinable tables", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%s (%s)", count(p.Join.JoinableTables), pct(p.Join.JoinableTablesPct))
	})...)
	w.row("median degree per joinable table", mapCells(ps, func(p core.PortalResult) string { return fmt.Sprintf("%.0f", p.Join.MedianTableDegree) })...)
	w.row("max degree per joinable table", mapCells(ps, func(p core.PortalResult) string { return count(p.Join.MaxTableDegree) })...)
	w.row("total # columns", mapCells(ps, func(p core.PortalResult) string { return count(p.Join.Columns) })...)
	w.row("# joinable columns", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%s (%s)", count(p.Join.JoinableCols), pct(p.Join.JoinableColsPct))
	})...)
	w.row("# key joinable columns", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%s (%s)", count(p.Join.KeyJoinable), pct(p.Join.KeyJoinablePct))
	})...)
	w.row("# non-key joinable columns", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%s (%s)", count(p.Join.NonkeyJoinable), pct(p.Join.NonkeyJoinablePct))
	})...)
	w.row("median degree per joinable column", mapCells(ps, func(p core.PortalResult) string { return fmt.Sprintf("%.0f", p.Join.MedianColDegree) })...)
	w.row("max degree per joinable column", mapCells(ps, func(p core.PortalResult) string { return count(p.Join.MaxColDegree) })...)
}

// Figure8 prints the expansion ratio letter-value summary.
func Figure8(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Figure 8: Join expansion ratios (letter values) " + paperNote("medians: SG 2, CA 1, UK 1, US 24; US upper quartile > 100"))
	header(w, ps)
	w.row("median expansion", mapCells(ps, func(p core.PortalResult) string { return f2(p.Join.ExpansionLV.Median) })...)
	labels := []string{"quartiles", "eighths", "sixteenths"}
	for i, lbl := range labels {
		idx := i
		w.row(lbl, mapCells(ps, func(p core.PortalResult) string {
			if idx >= len(p.Join.ExpansionLV.Pairs) {
				return "-"
			}
			pr := p.Join.ExpansionLV.Pairs[idx]
			return fmt.Sprintf("%.1f..%.1f", pr[0], pr[1])
		})...)
	}
}

// labelPortals filters to CA/UK/US, the portals the paper labels (SG is
// removed in §5.3.1 because its sampled pairs were uniformly the
// standardized-schema kind).
func labelPortals(res *core.StudyResult) []core.PortalResult {
	var out []core.PortalResult
	for _, p := range byName(res) {
		if p.Portal != "SG" {
			out = append(out, p)
		}
	}
	return out
}

func distCells(d classify.LabelDist) string {
	return fmt.Sprintf("%s/%s/%s", pct(d.UAcc), pct(d.RAcc), pct(d.Useful))
}

// Table7 prints the overall label distribution.
func Table7(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := labelPortals(res)
	w.section("Table 7: Accidental vs useful labels (U-Acc/R-Acc/useful) " + paperNote("accidental 80.8-86.7%"))
	header(w, ps)
	w.row("all sampled pairs", mapCells(ps, func(p core.PortalResult) string { return distCells(p.Labels.Overall) })...)
	w.row("total accidental", mapCells(ps, func(p core.PortalResult) string { return pct(p.Labels.Overall.Accidental()) })...)
	w.row("sample size", mapCells(ps, func(p core.PortalResult) string { return fmt.Sprintf("%d", p.Labels.Samples) })...)
}

// Table8 prints labels by dataset locality.
func Table8(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := labelPortals(res)
	w.section("Table 8: Labels for inter- vs intra-dataset pairs " + paperNote("useful: inter 6-15%, intra 29-53%"))
	header(w, ps)
	w.row("inter-dataset useful", mapCells(ps, func(p core.PortalResult) string { return pct(p.Labels.Locality[0].Useful) })...)
	w.row("intra-dataset useful", mapCells(ps, func(p core.PortalResult) string { return pct(p.Labels.Locality[1].Useful) })...)
}

// Table9 prints labels by key combination.
func Table9(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := labelPortals(res)
	w.section("Table 9: Labels by key combination " + paperNote("useful: key-key 22-34%, nonkey-nonkey 2-4%"))
	header(w, ps)
	for combo := 0; combo < 3; combo++ {
		cb := combo
		w.row(classify.KeyCombo(cb).String()+" useful", mapCells(ps, func(p core.PortalResult) string {
			return pct(p.Labels.Combos[cb].Useful)
		})...)
	}
}

// Table10 prints labels by join-column data type.
func Table10(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := labelPortals(res)
	w.section("Table 10: Labels by join column data type " + paperNote("incremental integer useful 0-5%; categorical 23-32%"))
	header(w, ps)
	for i, group := range classify.JoinTypeGroups {
		gi := i
		w.row(group+" useful", mapCells(ps, func(p core.PortalResult) string {
			d := p.Labels.Types[gi]
			if d.N == 0 {
				return "-"
			}
			return fmt.Sprintf("%s (n=%d)", pct(d.Useful), d.N)
		})...)
	}
}

// Table11 prints unionability statistics.
func Table11(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("Table 11: Unionable table statistics " + paperNote(">57% of tables unionable; 14-25% of schemas shared"))
	header(w, ps)
	w.row("total # tables", mapCells(ps, func(p core.PortalResult) string { return count(p.Union.Tables) })...)
	w.row("# unionable tables", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%s (%s)", count(p.Union.UnionableTables), pct(p.Union.UnionableTablesPct))
	})...)
	w.row("median degree per unionable table", mapCells(ps, func(p core.PortalResult) string { return fmt.Sprintf("%.0f", p.Union.MedianDegree) })...)
	w.row("max degree per unionable table", mapCells(ps, func(p core.PortalResult) string { return count(p.Union.MaxDegree) })...)
	w.row("# unique schemas", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%s (%.2f)", count(p.Union.UniqueSchemas), p.Union.AvgTablesPerSchema)
	})...)
	w.row("# unionable schemas", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%s (%s)", count(p.Union.UnionableSchemas), pct(p.Union.UnionableSchemasPct))
	})...)
	w.row("unionable schemas w/ single dataset", mapCells(ps, func(p core.PortalResult) string {
		return fmt.Sprintf("%s (%s)", count(p.Union.SingleDatasetGroups), pct(p.Union.SingleDatasetPct))
	})...)
}

// UnionLabels prints the §6 labeling summary.
func UnionLabels(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	w.section("§6 Union pair labels " + paperNote("overwhelmingly useful; accidental: SG standardized schemas, US duplicates"))
	header(w, ps)
	w.row("useful", mapCells(ps, func(p core.PortalResult) string { return pct(p.UnionLabels.Useful) })...)
	w.row("accidental", mapCells(ps, func(p core.PortalResult) string { return pct(p.UnionLabels.Accidental()) })...)
}

// PredictorReport prints the recommended-signal filter vs overlap-only.
func PredictorReport(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := labelPortals(res)
	w.section("Extension: paper-recommended signals vs overlap-only suggestions (precision of 'useful')")
	header(w, ps)
	w.row("overlap-only precision", mapCells(ps, func(p core.PortalResult) string { return pct(p.Labels.Baseline.Precision()) })...)
	w.row("signal-filter precision", mapCells(ps, func(p core.PortalResult) string { return pct(p.Labels.Predictor.Precision()) })...)
	w.row("signal-filter recall", mapCells(ps, func(p core.PortalResult) string { return pct(p.Labels.Predictor.Recall()) })...)
}

// Supplementary prints the paper's supplementary analyses: the
// expansion-ratio distribution at the relaxed Jaccard threshold of 0.7
// (the paper reports it matches Figure 8) and the label distribution
// by T1 size bucket (the paper reports no clear correlation).
func Supplementary(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	ps := byName(res)
	if len(ps) > 0 && ps[0].JoinAt07 != nil {
		w.section("Supplementary: expansion ratios at Jaccard >= 0.7 " + paperNote("similar picture as the 0.9 threshold"))
		header(w, ps)
		w.row("pairs at 0.7 / at 0.9", mapCells(ps, func(p core.PortalResult) string {
			if p.JoinAt07 == nil {
				return "-"
			}
			return fmt.Sprintf("%s / %s", count(p.JoinAt07.Pairs), count(p.Join.Pairs))
		})...)
		w.row("median expansion at 0.7", mapCells(ps, func(p core.PortalResult) string {
			if p.JoinAt07 == nil {
				return "-"
			}
			return f2(p.JoinAt07.ExpansionLV.Median)
		})...)
		w.row("median expansion at 0.9", mapCells(ps, func(p core.PortalResult) string {
			return f2(p.Join.ExpansionLV.Median)
		})...)
	}

	lps := labelPortals(res)
	w.section("Supplementary: labels by T1 size bucket " + paperNote("no clear correlation with table size"))
	header2 := make([]string, len(lps))
	for i, p := range lps {
		header2[i] = p.Portal
	}
	w.row("", header2...)
	for b := 0; b < 3; b++ {
		bb := b
		w.row(classify.SizeBucket(bb).String()+" useful", mapCells(lps, func(p core.PortalResult) string {
			d := p.Labels.Buckets[bb]
			if d.N == 0 {
				return "-"
			}
			return fmt.Sprintf("%s (n=%d)", pct(d.Useful), d.N)
		})...)
	}
}

// Extensions prints the beyond-the-paper analyses when the study
// computed them (core.Options.Extensions).
func Extensions(out io.Writer, res *core.StudyResult) {
	ps := byName(res)
	any := false
	for _, p := range ps {
		if p.Ext != nil {
			any = true
		}
	}
	if !any {
		return
	}
	w := writer{out}
	w.section("Extensions: inclusion dependencies, fuzzy unions, FD plausibility")
	header(w, ps)
	w.row("exact unary INDs", mapCells(ps, func(p core.PortalResult) string {
		if p.Ext == nil {
			return "-"
		}
		return count(p.Ext.INDs)
	})...)
	w.row("foreign-key candidates", mapCells(ps, func(p core.PortalResult) string {
		if p.Ext == nil {
			return "-"
		}
		return count(p.Ext.ForeignKeyCandidates)
	})...)
	w.row("fk candidates matching planted fks", mapCells(ps, func(p core.PortalResult) string {
		if p.Ext == nil {
			return "-"
		}
		return pct(p.Ext.PlantedFKRecovered)
	})...)
	w.row("unionable tables exact / fuzzy", mapCells(ps, func(p core.PortalResult) string {
		if p.Ext == nil {
			return "-"
		}
		return fmt.Sprintf("%d / %d", p.Ext.ExactUnionTables, p.Ext.FuzzyUnionTables)
	})...)
	w.row("mean FD plausibility", mapCells(ps, func(p core.PortalResult) string {
		if p.Ext == nil {
			return "-"
		}
		return f2(p.Ext.MeanFDPlausibility)
	})...)
}

// Summary prints the one-paragraph shape checklist.
func Summary(out io.Writer, res *core.StudyResult) {
	w := writer{out}
	w.section("Shape summary (measured vs paper)")
	ps := byName(res)
	var joinables, unionables []string
	for _, p := range ps {
		joinables = append(joinables, fmt.Sprintf("%s %.0f%%", p.Portal, p.Join.JoinableTablesPct*100))
		unionables = append(unionables, fmt.Sprintf("%s %.0f%%", p.Portal, p.Union.UnionableTablesPct*100))
	}
	sort.Strings(joinables)
	w.printf("  joinable tables: %s (paper 48-66%%)\n", strings.Join(joinables, ", "))
	w.printf("  unionable tables: %s (paper 57-77%%)\n", strings.Join(unionables, ", "))
	for _, p := range ps {
		w.printf("  %s: FD prevalence %.0f%%, accidental joins %.0f%%, expansion median %.1f\n",
			p.Portal, p.FD.WithFDPct*100, p.Labels.Overall.Accidental()*100, p.Join.ExpansionLV.Median)
	}
}
