package sniff

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
	"testing/quick"
)

func TestDetectMagicBytes(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want Format
	}{
		{"pdf", []byte("%PDF-1.7 blah"), FormatPDF},
		{"zip", []byte("PK\x03\x04somezipdata"), FormatZIP},
		{"xlsx", []byte("PK\x03\x04...[Content_Types].xml..."), FormatXLSX},
		{"empty", nil, FormatEmpty},
		{"whitespace only", []byte("   \n\t  "), FormatEmpty},
	}
	for _, c := range cases {
		if got := Detect(c.data); got != c.want {
			t.Errorf("%s: Detect = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDetectGzip(t *testing.T) {
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	w.Write([]byte("a,b\n1,2\n"))
	w.Close()
	if got := Detect(buf.Bytes()); got != FormatGZIP {
		t.Errorf("Detect(gzip) = %v", got)
	}
}

func TestDetectMarkup(t *testing.T) {
	cases := []struct {
		data string
		want Format
	}{
		{"<!DOCTYPE html><html><body>404</body></html>", FormatHTML},
		{"<html><head><title>err</title></head></html>", FormatHTML},
		{"  \n<HTML>upper</HTML>", FormatHTML},
		{`<?xml version="1.0"?><root/>`, FormatXML},
		{`{"key": "value"}`, FormatJSON},
		{`[{"a": 1}, {"a": 2}]`, FormatJSON},
		{`[1, 2, 3]`, FormatJSON},
	}
	for _, c := range cases {
		if got := Detect([]byte(c.data)); got != c.want {
			t.Errorf("Detect(%q) = %v, want %v", c.data[:min(20, len(c.data))], got, c.want)
		}
	}
}

func TestDetectCSV(t *testing.T) {
	csv := "id,name,province\n1,Waterloo,ON\n2,Toronto,ON\n3,Montreal,QC\n"
	if got := Detect([]byte(csv)); got != FormatCSV {
		t.Errorf("Detect(csv) = %v", got)
	}
	quoted := "id,desc\n1,\"hello, world\"\n2,\"a,b,c\"\n"
	if got := Detect([]byte(quoted)); got != FormatCSV {
		t.Errorf("Detect(quoted csv) = %v", got)
	}
	tsv := "id\tname\n1\talpha\n2\tbeta\n"
	if got := Detect([]byte(tsv)); got != FormatTSV {
		t.Errorf("Detect(tsv) = %v", got)
	}
	single := "name\nalpha\nbeta\ngamma\n"
	if got := Detect([]byte(single)); got != FormatCSV {
		t.Errorf("Detect(single column) = %v", got)
	}
}

func TestDetectBinary(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i % 7) // includes NULs and control chars
	}
	if got := Detect(data); got != FormatBinary {
		t.Errorf("Detect(binary) = %v", got)
	}
}

func TestIsTabular(t *testing.T) {
	if !FormatCSV.IsTabular() || !FormatTSV.IsTabular() {
		t.Error("CSV/TSV must be tabular")
	}
	if FormatHTML.IsTabular() || FormatPDF.IsTabular() {
		t.Error("HTML/PDF must not be tabular")
	}
}

func TestDetectLargeInputTruncated(t *testing.T) {
	// A valid CSV much larger than the sniff limit must still detect;
	// the truncated final line must not confuse the detector.
	var b strings.Builder
	b.WriteString("a,b,c\n")
	for i := 0; i < 20000; i++ {
		b.WriteString("1,2,3\n")
	}
	if got := Detect([]byte(b.String())); got != FormatCSV {
		t.Errorf("Detect(large csv) = %v", got)
	}
}

func TestDetectNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_ = Detect(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFormatString(t *testing.T) {
	for f := FormatUnknown; f <= FormatBinary; f++ {
		if f.String() == "invalid" {
			t.Errorf("Format(%d) has no name", f)
		}
	}
	if Format(99).String() != "invalid" {
		t.Error("out-of-range format should be invalid")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
