// Package sniff detects the true format of a downloaded resource from
// its content, standing in for the libmagic step of the paper's
// pipeline (§2.2): resources advertised as CSV in portal metadata are
// frequently HTML error pages, PDFs, spreadsheets, or archives, and
// must be filtered out before parsing.
package sniff

import (
	"bytes"
	"strings"
)

// Format is a detected file format.
type Format int

// Detected formats.
const (
	FormatUnknown Format = iota
	FormatEmpty
	FormatCSV
	FormatTSV
	FormatHTML
	FormatXML
	FormatJSON
	FormatPDF
	FormatZIP
	FormatGZIP
	FormatXLSX
	FormatBinary
)

var formatNames = [...]string{
	"unknown", "empty", "csv", "tsv", "html", "xml", "json",
	"pdf", "zip", "gzip", "xlsx", "binary",
}

func (f Format) String() string {
	if int(f) < len(formatNames) {
		return formatNames[f]
	}
	return "invalid"
}

// IsTabular reports whether the format is parseable as delimited text.
func (f Format) IsTabular() bool { return f == FormatCSV || f == FormatTSV }

// sniffLimit bounds how much of the content Detect inspects.
const sniffLimit = 64 << 10

// Detect determines the format of data by magic bytes first and content
// heuristics second.
func Detect(data []byte) Format {
	if len(data) == 0 {
		return FormatEmpty
	}
	if len(data) > sniffLimit {
		data = data[:sniffLimit]
	}

	switch {
	case bytes.HasPrefix(data, []byte("%PDF")):
		return FormatPDF
	case bytes.HasPrefix(data, []byte{0x1f, 0x8b}):
		return FormatGZIP
	case bytes.HasPrefix(data, []byte("PK\x03\x04")):
		if looksLikeXLSX(data) {
			return FormatXLSX
		}
		return FormatZIP
	}

	trimmed := bytes.TrimLeft(data, " \t\r\n\uFEFF")
	if len(trimmed) == 0 {
		return FormatEmpty
	}
	lower := bytes.ToLower(trimmed)
	switch {
	case bytes.HasPrefix(lower, []byte("<!doctype html")),
		bytes.HasPrefix(lower, []byte("<html")),
		bytes.HasPrefix(lower, []byte("<head")),
		bytes.HasPrefix(lower, []byte("<body")):
		return FormatHTML
	case bytes.HasPrefix(lower, []byte("<?xml")), bytes.HasPrefix(lower, []byte("<rss")):
		return FormatXML
	}
	if trimmed[0] == '{' || trimmed[0] == '[' {
		if looksLikeJSON(trimmed) {
			return FormatJSON
		}
	}

	if !looksLikeText(data) {
		return FormatBinary
	}
	if f, ok := sniffDelimited(string(data)); ok {
		return f
	}
	return FormatUnknown
}

// looksLikeXLSX detects the xlsx container: a zip whose first entry is
// [Content_Types].xml or that mentions the xl/ directory.
func looksLikeXLSX(data []byte) bool {
	return bytes.Contains(data, []byte("[Content_Types].xml")) || bytes.Contains(data, []byte("xl/"))
}

// looksLikeJSON cheaply verifies that the bracket structure opens a
// plausible JSON document (quote or bracket follows the opener).
func looksLikeJSON(data []byte) bool {
	for _, b := range data[1:] {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '"', '{', '[', '}', ']':
			return true
		default:
			// JSON arrays may start with numbers/true/false/null.
			return data[0] == '[' && (b == '-' || (b >= '0' && b <= '9') || b == 't' || b == 'f' || b == 'n')
		}
	}
	return false
}

// looksLikeText reports whether the sample is overwhelmingly printable
// text (allowing standard whitespace); control and NUL bytes mark the
// content binary.
func looksLikeText(data []byte) bool {
	if len(data) == 0 {
		return false
	}
	bad := 0
	for _, b := range data {
		switch {
		case b == 0:
			return false
		case b == '\n' || b == '\r' || b == '\t':
		case b < 0x20:
			bad++
		}
	}
	return float64(bad) <= 0.01*float64(len(data))
}

// sniffDelimited decides between CSV and TSV by checking for a
// consistent delimiter count across the first lines.
func sniffDelimited(s string) (Format, bool) {
	lines := strings.Split(s, "\n")
	if len(lines) > 20 {
		lines = lines[:20]
	}
	// Drop a trailing partial line (we may have truncated mid-line).
	if len(lines) > 1 {
		lines = lines[:len(lines)-1]
	}
	var kept []string
	for _, ln := range lines {
		ln = strings.TrimRight(ln, "\r")
		if ln != "" {
			kept = append(kept, ln)
		}
	}
	if len(kept) == 0 {
		return FormatUnknown, false
	}
	if consistentDelimiter(kept, ',') {
		return FormatCSV, true
	}
	if consistentDelimiter(kept, '\t') {
		return FormatTSV, true
	}
	// A single-column CSV has no delimiters at all; accept short lines
	// with no structure only if there are several of them.
	if len(kept) >= 3 {
		single := true
		for _, ln := range kept {
			if strings.ContainsAny(ln, ",\t<>{}") || len(ln) > 200 {
				single = false
				break
			}
		}
		if single {
			return FormatCSV, true
		}
	}
	return FormatUnknown, false
}

// consistentDelimiter reports whether at least 80% of lines contain the
// delimiter and the per-line counts (outside quotes) agree with the
// most common count.
func consistentDelimiter(lines []string, delim byte) bool {
	counts := make(map[int]int)
	withDelim := 0
	for _, ln := range lines {
		c := countOutsideQuotes(ln, delim)
		counts[c]++
		if c > 0 {
			withDelim++
		}
	}
	if float64(withDelim) < 0.8*float64(len(lines)) {
		return false
	}
	best, bestN := 0, 0
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	if best == 0 {
		return false
	}
	return float64(bestN) >= 0.6*float64(len(lines))
}

func countOutsideQuotes(s string, delim byte) int {
	n := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case delim:
			if !inQuote {
				n++
			}
		}
	}
	return n
}
