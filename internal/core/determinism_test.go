package core

import (
	"reflect"
	"testing"

	"ogdp/internal/gen"
)

// TestStudyDeterministicAcrossWorkers is the determinism contract of
// the parallel execution layer: the full study over an SG+US corpus
// must be byte-identical between a sequential run (Workers=1) and a
// heavily oversubscribed parallel run (Workers=8). Options and the
// corpus pointers are normalized before comparison — Options differs
// by construction (it records Workers) and the two runs generate
// separate (deeply equal, but profile-cache-bearing) corpora.
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	profs := []gen.PortalProfile{gen.SG(), gen.US()}
	base := Options{
		Scale:         0.08,
		Seed:          5,
		MaxFDTables:   30,
		SamplePerCell: 4,
		UnionSamples:  8,
		Sensitivity:   true,
	}
	if raceEnabled {
		// The race detector is what matters here (the DeepEqual runs
		// again without it); shrink the corpus to keep -race fast.
		base.Scale = 0.04
		base.MaxFDTables = 12
		base.Sensitivity = false
	}

	run := func(workers int) *StudyResult {
		o := base
		o.Workers = workers
		res := Run(profs, o)
		res.Options = Options{}
		for i := range res.Portals {
			res.Portals[i].Corpus = nil
		}
		return res
	}

	seq := run(1)
	par := run(8)

	if len(seq.Portals) != len(par.Portals) {
		t.Fatalf("portal counts differ: %d vs %d", len(seq.Portals), len(par.Portals))
	}
	for i := range seq.Portals {
		if !reflect.DeepEqual(seq.Portals[i], par.Portals[i]) {
			s, p := seq.Portals[i], par.Portals[i]
			t.Errorf("portal %s differs between Workers=1 and Workers=8", s.Portal)
			// Narrow the diff for debuggability.
			for _, f := range []struct {
				name string
				a, b any
			}{
				{"Sizes", s.Sizes, p.Sizes},
				{"SizePercentiles", s.SizePercentiles, p.SizePercentiles},
				{"TableSizes", s.TableSizes, p.TableSizes},
				{"Nulls", s.Nulls, p.Nulls},
				{"Uniqueness", s.Uniqueness, p.Uniqueness},
				{"KeySizeDist", s.KeySizeDist, p.KeySizeDist},
				{"FD", s.FD, p.FD},
				{"Join", s.Join, p.Join},
				{"JoinAt07", s.JoinAt07, p.JoinAt07},
				{"Labels", s.Labels, p.Labels},
				{"Union", s.Union, p.Union},
				{"UnionLabels", s.UnionLabels, p.UnionLabels},
			} {
				if !reflect.DeepEqual(f.a, f.b) {
					t.Errorf("  field %s: %+v != %+v", f.name, f.a, f.b)
				}
			}
		}
	}
	if !reflect.DeepEqual(seq, par) && !t.Failed() {
		t.Error("StudyResult differs outside portal fields")
	}

	// Sanity: the comparison must not be vacuous.
	if seq.Portals[0].Join.Pairs == 0 || seq.Portals[0].Labels.Samples == 0 {
		t.Fatal("determinism comparison is vacuous (no pairs or samples)")
	}
}
